// Shared setup for the experiment harnesses: the paper-scale synthetic
// corpus (PCHome substitute), environment-based scaling, and table printing.
//
// Every harness honours two environment variables so CI or a laptop can run
// reduced-scale versions:
//   HYPERKWS_OBJECTS  corpus size       (default 131180, the paper's count)
//   HYPERKWS_QUERIES  query-log volume  (default 178000, one paper "day")
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "workload/corpus_generator.hpp"
#include "workload/query_generator.hpp"

namespace hkws::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline std::size_t object_count() {
  return env_size("HYPERKWS_OBJECTS", 131180);
}

inline std::size_t query_count() {
  return env_size("HYPERKWS_QUERIES", 178000);
}

/// The paper-scale corpus (mean 7.3 keywords, Zipf keyword popularity).
inline workload::Corpus paper_corpus(std::size_t objects = object_count()) {
  workload::CorpusConfig cfg;
  cfg.object_count = objects;
  return workload::CorpusGenerator(cfg).generate();
}

/// A paper-scale query log generator over `corpus` (top-10 ~ 60% of volume).
inline workload::QueryLogGenerator paper_queries(
    const workload::Corpus& corpus, std::size_t volume = query_count()) {
  workload::QueryLogConfig cfg;
  cfg.query_count = volume;
  return workload::QueryLogGenerator(corpus, cfg);
}

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace hkws::bench
