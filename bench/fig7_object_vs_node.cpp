// Figure 7 — object distribution vs node distribution by |One(u)|, for
// r = 6, 8, 10, 11, 12, 13, 14, 16 (the paper's eight charts), plus the
// analytic prediction (Eq. (1) mixed over the keyword-set-size histogram)
// and the paper's r-selection rule.
//
// Expected shape: the node curve is binomial centred at r/2; the object
// curve peaks near E[|One|] (~6 for mean 7.3 keywords); the two are closest
// around r = 10, where Fig. 6 showed the best balance.
#include <cstdio>

#include "analysis/load_metrics.hpp"
#include "analysis/occupancy.hpp"
#include "bench_util.hpp"
#include "index/logical_index.hpp"

int main() {
  using namespace hkws;
  const auto corpus = bench::paper_corpus();
  const auto sizes = corpus.keyword_size_histogram();

  for (int r : {6, 8, 10, 11, 12, 13, 14, 16}) {
    index::LogicalIndex idx({.r = r});
    for (const auto& rec : corpus.records())
      idx.insert(rec.id, rec.keywords);
    const auto object_frac = analysis::load_fraction_by_one_bits(idx.loads(), r);
    const auto node_frac = analysis::node_fraction_by_one_bits(r);
    const auto predicted = analysis::object_one_bits_distribution(r, sizes);

    char title[64];
    std::snprintf(title, sizeof title, "Figure 7 — r = %d", r);
    bench::banner(title);
    std::printf("%-6s %10s %10s %12s\n", "x", "node%", "object%",
                "predicted%");
    for (int x = 0; x <= r; ++x) {
      std::printf("%-6d %9.2f%% %9.2f%% %11.2f%%\n", x,
                  100.0 * node_frac[static_cast<std::size_t>(x)],
                  100.0 * object_frac[static_cast<std::size_t>(x)],
                  100.0 * predicted[static_cast<std::size_t>(x)]);
    }
    std::printf("TV(node, object) = %.4f\n",
                analysis::total_variation(node_frac, object_frac));
  }

  bench::banner("Dimension selection (paper §4: \"choosing r\")");
  const int best = analysis::recommend_dimension(sizes, 6, 16);
  std::printf("recommended r in [6,16] = %d   (paper observed best: ~10)\n",
              best);
  return 0;
}
