// Substrate validation under continuous churn: the keyword layer's
// guarantees assume the DHT below keeps routing correctly while nodes come
// and go. This bench drives both overlays with interleaved joins, graceful
// leaves, and abrupt failures at varying intensity, with one maintenance
// pass per round, and measures lookup correctness and hop inflation.
//
// Expected shape: correctness stays ~100% for churn rates up to several
// membership events per maintenance round (successor-list / leaf-set
// redundancy absorbs unrepaired state), and average hops stay O(log n).
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "dht/pastry_network.hpp"

namespace {

using namespace hkws;

constexpr std::size_t kInitialPeers = 128;
constexpr int kRounds = 120;
constexpr int kLookupsPerRound = 30;

struct Result {
  double correct = 0;
  double hops = 0;
  std::uint64_t lookups = 0;
};

template <typename OverlayT, typename MaintainFn>
Result run(int events_per_round, MaintainFn&& maintain) {
  sim::EventQueue clock;
  sim::Network net(clock);
  auto overlay = OverlayT::build(net, kInitialPeers, {});
  Rng rng(42);
  sim::EndpointId next_endpoint = kInitialPeers + 1;

  Result result;
  for (int round = 0; round < kRounds; ++round) {
    for (int e = 0; e < events_per_round; ++e) {
      const auto action = rng.next_below(3);
      const auto ids = overlay.live_ids();
      if (action == 0 || ids.size() < kInitialPeers / 2) {
        overlay.join(next_endpoint++,
                     overlay.endpoint_of(ids[rng.next_below(ids.size())]));
      } else {
        const auto victim =
            overlay.endpoint_of(ids[rng.next_below(ids.size())]);
        if (action == 1)
          overlay.leave(victim);
        else
          overlay.fail(victim);
      }
    }
    maintain(overlay);
    const auto ids = overlay.live_ids();
    for (int l = 0; l < kLookupsPerRound; ++l) {
      const auto key = overlay.space().clamp(rng.next_u64());
      const auto start = ids[rng.next_below(ids.size())];
      const auto r = overlay.lookup_now(start, key, "churn");
      ++result.lookups;
      result.hops += r.hops;
      if (r.owner == overlay.owner_of(key)) result.correct += 1;
    }
  }
  result.correct /= static_cast<double>(result.lookups);
  result.hops /= static_cast<double>(result.lookups);
  return result;
}

}  // namespace

int main() {
  bench::banner("Lookup correctness under continuous churn (128 peers)");
  std::printf("%-18s %10s %12s %10s\n", "overlay", "churn/round", "correct",
              "avg hops");
  for (int events : {1, 2, 4, 8}) {
    const auto chord = run<dht::ChordNetwork>(
        events, [](dht::ChordNetwork& o) { o.stabilize_all(); });
    std::printf("%-18s %10d %11.2f%% %10.2f\n", "Chord", events,
                100.0 * chord.correct, chord.hops);
  }
  for (int events : {1, 2, 4, 8}) {
    const auto pastry = run<dht::PastryNetwork>(
        events, [](dht::PastryNetwork& o) { o.repair_all(); });
    std::printf("%-18s %10d %11.2f%% %10.2f\n", "Pastry", events,
                100.0 * pastry.correct, pastry.hops);
  }
  std::printf("\nlog2(128) = %.1f; hops should stay in that vicinity and\n"
              "correctness near 100%% while maintenance keeps pace.\n",
              std::log2(128.0));
  return 0;
}
