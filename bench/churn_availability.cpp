// Availability under failures — quantifying the paper's fault-tolerance
// arguments (§1, §3.4): what fraction of the true result set does a
// superset search still return after a fraction of peers fail abruptly?
//
//   plain        single index entry per object, no reference replication
//   dolr-rep     reference replication (DOLR, factor 3), single index entry
//   mirrored     + secondary hypercube (independent h', g') for the index
//   anti-entropy single index entry, but publishers re-assert entries after
//                the failure (the repair path)
//
// The paper's qualitative claims: a single node failure cannot block a
// keyword (many nodes per keyword); index replication via a secondary
// hypercube and DOLR replication each remove a failure mode.
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "index/mirrored.hpp"
#include "index/overlay_index.hpp"

namespace {

using namespace hkws;

constexpr std::size_t kPeers = 64;
constexpr int kR = 8;

enum class Mode { kPlain, kDolrRep, kMirrored, kAntiEntropy };

struct Stack {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<dht::Dolr> dolr;
  std::unique_ptr<index::OverlayIndex> plain;
  std::unique_ptr<index::MirroredIndex> mirrored;
  Mode mode;

  explicit Stack(Mode m) : mode(m) {
    net = std::make_unique<sim::Network>(clock);
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, kPeers, {}));
    const int rep = (m == Mode::kPlain) ? 1 : 3;
    dolr = std::make_unique<dht::Dolr>(*dht,
                                       dht::Dolr::Config{rep});
    if (m == Mode::kMirrored)
      mirrored = std::make_unique<index::MirroredIndex>(
          *dolr, index::OverlayIndex::Config{.r = kR});
    else
      plain = std::make_unique<index::OverlayIndex>(
          *dolr, index::OverlayIndex::Config{.r = kR});
  }

  void publish(ObjectId id, const KeywordSet& k) {
    const auto peer = 1 + id % kPeers;
    if (mirrored)
      mirrored->publish(peer, id, k);
    else
      plain->publish(peer, id, k);
  }

  std::set<ObjectId> query(sim::EndpointId searcher, const KeywordSet& q) {
    std::optional<index::SearchResult> result;
    auto cb = [&](const index::SearchResult& r) { result = r; };
    if (mirrored)
      mirrored->superset_search(searcher, q, 0,
                                index::SearchStrategy::kTopDownSequential, cb);
    else
      plain->superset_search(searcher, q, 0,
                             index::SearchStrategy::kTopDownSequential, cb);
    clock.run();
    std::set<ObjectId> ids;
    if (result)
      for (const auto& h : result->hits) ids.insert(h.object);
    return ids;
  }
};

}  // namespace

int main() {
  const auto corpus = bench::paper_corpus(3000);
  const auto gen = bench::paper_queries(corpus, 500);
  std::vector<KeywordSet> queries;
  for (std::size_t m = 1; m <= 2; ++m)
    for (const auto& q : gen.popular_sets(m, 10)) queries.push_back(q);

  // Ground truth from the corpus itself.
  auto oracle = [&](const KeywordSet& q) {
    std::set<ObjectId> out;
    for (const auto& rec : corpus.records())
      if (q.subset_of(rec.keywords)) out.insert(rec.id);
    return out;
  };

  bench::banner("Search recall after abrupt peer failures (64 peers, r = 8)");
  std::printf("%-14s", "failures");
  for (const char* name : {"plain", "dolr-rep", "mirrored", "anti-entropy"})
    std::printf(" %13s", name);
  std::printf("\n");

  constexpr int kTrials = 3;  // average over distinct victim sets
  for (const double fail_frac : {0.05, 0.10, 0.20, 0.30}) {
    std::printf("%13.0f%%", 100.0 * fail_frac);
    for (const Mode mode :
         {Mode::kPlain, Mode::kDolrRep, Mode::kMirrored, Mode::kAntiEntropy}) {
      double trial_sum = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        Stack s(mode);
        for (const auto& rec : corpus.records())
          s.publish(rec.id, rec.keywords);
        s.clock.run();

        // Fail a deterministic random subset of peers (never peer 1, the
        // searcher/bootstrap).
        Rng rng(1000 + static_cast<std::uint64_t>(trial));
        const auto kill = static_cast<std::size_t>(fail_frac * kPeers);
        std::size_t killed = 0;
        while (killed < kill) {
          const auto ids = s.dht->live_ids();
          const auto victim =
              s.dht->endpoint_of(ids[rng.next_below(ids.size())]);
          if (victim == 1) continue;
          s.dht->fail(victim);
          ++killed;
        }
        for (int round = 0; round < 60; ++round) s.dht->stabilize_all();
        if (s.mirrored) {
          s.mirrored->purge_dead();
          s.mirrored->repair_placement();
        } else {
          s.plain->purge_dead();
          s.plain->repair_placement();
        }
        s.dolr->repair_replicas();
        s.clock.run();
        if (mode == Mode::kAntiEntropy) {
          for (const auto& rec : corpus.records())
            s.plain->reindex(1, rec.id, rec.keywords);
          s.clock.run();
        }

        double recall_sum = 0;
        for (const auto& q : queries) {
          const auto expected = oracle(q);
          if (expected.empty()) continue;
          const auto got = s.query(1, q);
          std::size_t found = 0;
          for (ObjectId o : expected)
            if (got.contains(o)) ++found;
          recall_sum += static_cast<double>(found) /
                        static_cast<double>(expected.size());
        }
        trial_sum += recall_sum / static_cast<double>(queries.size());
      }
      std::printf(" %12.1f%%", 100.0 * trial_sum / kTrials);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check: plain recall degrades ~linearly with the failed\n"
      "fraction (each object has one index entry); the mirror keeps recall\n"
      "near 1-f^2; anti-entropy reindexing restores ~100%%.\n");
  return 0;
}
