// Equation (1) and §3.5 — the occupancy distribution P(|One(F_h(K))| = j)
// and the expected superset-search space it induces: analytic (stable
// recurrence), the paper's literal Eq. (1), and Monte-Carlo hashing of real
// keyword strings, side by side.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "analysis/occupancy.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "index/keyword_hash.hpp"

int main() {
  using namespace hkws;
  constexpr int kR = 10;
  constexpr int kTrials = 100000;

  for (int m : {1, 2, 3, 5, 7, 10, 20}) {
    char title[64];
    std::snprintf(title, sizeof title,
                  "Eq. (1) — r = %d, m = %d keywords", kR, m);
    bench::banner(title);

    // Monte Carlo with the production keyword hash over synthetic words.
    index::KeywordHasher hasher(kR);
    Rng rng(1234 + static_cast<std::uint64_t>(m));
    std::vector<int> counts(kR + 1, 0);
    for (int t = 0; t < kTrials; ++t) {
      std::uint64_t mask = 0;
      for (int i = 0; i < m; ++i) {
        mask |= 1ULL << hasher.dim_of(
                    "w" + std::to_string(rng.next_u64() % 1000000));
      }
      ++counts[std::popcount(mask)];
    }

    std::printf("%-4s %12s %12s %12s\n", "j", "analytic", "eq1", "measured");
    for (int j = 0; j <= std::min(kR, m); ++j) {
      std::printf("%-4d %12.6f %12.6f %12.6f\n", j,
                  analysis::occupancy_pmf(kR, m, j),
                  analysis::occupancy_pmf_eq1(kR, m, j),
                  static_cast<double>(counts[j]) / kTrials);
    }
    const double expected = analysis::occupancy_expected(kR, m);
    std::printf("E[|One|] = %.4f  ->  expected search space 2^(r-E) = %.1f "
                "nodes of %d\n",
                expected, std::pow(2.0, kR - expected), 1 << kR);
  }

  bench::banner("Dimension recommendation from the corpus histogram");
  const auto corpus = bench::paper_corpus(
      std::min<std::size_t>(bench::object_count(), 20000));
  const auto sizes = corpus.keyword_size_histogram();
  std::printf("%-4s %18s\n", "r", "TV(object,node)");
  for (int r = 6; r <= 16; ++r) {
    const double tv = analysis::total_variation(
        analysis::object_one_bits_distribution(r, sizes),
        analysis::node_one_bits_distribution(r));
    std::printf("%-4d %18.4f\n", r, tv);
  }
  std::printf("recommended r = %d (paper: ~10)\n",
              analysis::recommend_dimension(sizes, 6, 16));
  return 0;
}
