// Ablations over the design choices DESIGN.md calls out:
//  * exploration strategy: top-down vs bottom-up vs level-parallel
//    (messages, sequential rounds, and what the first results look like)
//  * cumulative browsing vs repeated one-shot searches
//  * single hypercube vs decomposed (§3.4) indexing
//  * query cache on/off at fixed threshold
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "index/decomposed.hpp"
#include "index/logical_index.hpp"
#include "index/ranking.hpp"

int main() {
  using namespace hkws;
  using index::SearchStrategy;
  const auto corpus = bench::paper_corpus(
      std::min<std::size_t>(bench::object_count(), 40000));
  const auto queries = bench::paper_queries(corpus, 1000);

  index::LogicalIndex idx({.r = 10});
  for (const auto& rec : corpus.records()) idx.insert(rec.id, rec.keywords);

  bench::banner("Strategy ablation (threshold = 20, 30 popular queries)");
  std::printf("%-14s %10s %10s %10s %14s\n", "strategy", "nodes", "msgs",
              "rounds", "avg extra kw");
  for (auto [name, strategy] :
       std::vector<std::pair<const char*, SearchStrategy>>{
           {"top-down", SearchStrategy::kTopDownSequential},
           {"bottom-up", SearchStrategy::kBottomUpSequential},
           {"level-par", SearchStrategy::kLevelParallel}}) {
    double nodes = 0, msgs = 0, rounds = 0, extra = 0, hits = 0;
    int n = 0;
    for (std::size_t m = 1; m <= 3; ++m) {
      for (const auto& q : queries.popular_sets(m, 10)) {
        const auto r = idx.superset_search(q, 20, strategy);
        nodes += static_cast<double>(r.stats.nodes_contacted);
        msgs += static_cast<double>(r.stats.messages);
        rounds += static_cast<double>(r.stats.rounds);
        for (const auto& h : r.hits)
          extra += static_cast<double>(h.keywords.size() - q.size());
        hits += static_cast<double>(r.hits.size());
        ++n;
      }
    }
    std::printf("%-14s %10.1f %10.1f %10.1f %14.2f\n", name, nodes / n,
                msgs / n, rounds / n, hits > 0 ? extra / hits : 0.0);
  }
  std::printf("(top-down returns general objects first -> low avg extra;\n"
              " bottom-up returns specific objects first -> high avg extra)\n");

  bench::banner("Cumulative browsing vs repeated one-shot (page size 10)");
  {
    const auto q = queries.popular_sets(1, 1).front();
    const auto full = idx.superset_search(q);
    const std::size_t pages =
        std::min<std::size_t>(5, (full.hits.size() + 9) / 10);
    // One-shot: each page re-runs the search with a larger threshold.
    double oneshot_nodes = 0;
    for (std::size_t p = 1; p <= pages; ++p)
      oneshot_nodes += static_cast<double>(
          idx.superset_search(q, 10 * p).stats.nodes_contacted);
    // Cumulative: the root keeps the queue between pages.
    auto session = idx.begin_cumulative(q);
    double cumulative_nodes = 0;
    for (std::size_t p = 0; p < pages && !session.exhausted(); ++p)
      cumulative_nodes +=
          static_cast<double>(session.next(10).stats.nodes_contacted);
    std::printf("query [%s], %zu results, %zu pages of 10\n",
                q.to_string().c_str(), full.hits.size(), pages);
    std::printf("one-shot   nodes contacted = %.0f\n", oneshot_nodes);
    std::printf("cumulative nodes contacted = %.0f\n", cumulative_nodes);
  }

  bench::banner("Decomposed (4 x r=6) vs monolithic (r=10), full recall");
  {
    auto decomposed = index::DecomposedIndex::hashed(4, 6);
    for (const auto& rec : corpus.records())
      decomposed.insert(rec.id, rec.keywords);
    double mono_nodes = 0, deco_nodes = 0;
    int n = 0;
    for (std::size_t m = 1; m <= 2; ++m) {
      for (const auto& q : queries.popular_sets(m, 10)) {
        mono_nodes +=
            static_cast<double>(idx.superset_search(q).stats.nodes_contacted);
        deco_nodes += static_cast<double>(
            decomposed.superset_search(q).stats.nodes_contacted);
        ++n;
      }
    }
    std::printf("monolithic avg nodes = %.1f of %llu\n", mono_nodes / n,
                static_cast<unsigned long long>(idx.cube().node_count()));
    std::printf("decomposed avg nodes = %.1f of %d per group cube\n",
                deco_nodes / n, 1 << 6);
  }

  bench::banner("Query cache off/on (repeat factor ~ top-10 60% log)");
  {
    index::LogicalIndex cached({.r = 10, .cache_capacity = 64});
    for (const auto& rec : corpus.records())
      cached.insert(rec.id, rec.keywords);
    const auto log = bench::paper_queries(corpus, 4000).generate();
    double cold_nodes = 0, warm_nodes = 0;
    for (const auto& q : log.queries()) {
      cold_nodes += static_cast<double>(
          idx.superset_search(q.keywords, 20).stats.nodes_contacted);
      warm_nodes += static_cast<double>(
          cached.superset_search(q.keywords, 20).stats.nodes_contacted);
    }
    const auto stats = cached.cache_stats();
    std::printf("cache off: avg nodes/query = %.2f\n",
                cold_nodes / static_cast<double>(log.size()));
    std::printf("cache on:  avg nodes/query = %.2f (hit rate %.1f%%)\n",
                warm_nodes / static_cast<double>(log.size()),
                100.0 * static_cast<double>(stats.hits) /
                    static_cast<double>(stats.hits + stats.misses));
  }
  return 0;
}
