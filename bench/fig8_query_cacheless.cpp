// Figure 8 — cacheless superset-search cost: percentage of hypercube nodes
// contacted vs recall rate, for r = 8, 10, 12 and query sizes m = 1..5
// (popular keyword sets sampled from the query-log universe, as the paper
// samples from the PCHome logs).
//
// Expected shape (paper): at 100% recall the contacted fraction is ~2^-m
// for r = 10 and 12 (the query's subhypercube), higher than 2^-m for r = 8;
// the fraction grows roughly linearly with the recall rate because the
// index load is evenly spread.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/occupancy.hpp"
#include "bench_util.hpp"
#include "index/logical_index.hpp"

namespace {

using hkws::Keyword;
using hkws::KeywordSet;

// "Popular keyword sets of size m" (paper: sampled from the query logs by
// popularity): sets with the largest keyword-set frequency |O_K|. We build
// candidates from the records themselves — each record's m globally most
// frequent keywords — and let the caller rank them by measured |O_K|.
std::vector<KeywordSet> popular_candidates(const hkws::workload::Corpus& corpus,
                                           std::size_t m,
                                           std::size_t max_candidates) {
  std::unordered_map<Keyword, std::uint64_t> df;
  for (const auto& [w, c] : corpus.keyword_frequencies()) df[w] = c;
  std::unordered_set<KeywordSet, hkws::KeywordSetHash> seen;
  std::vector<KeywordSet> out;
  const std::size_t stride = std::max<std::size_t>(1, corpus.size() / 4000);
  for (std::size_t i = 0; i < corpus.size() && out.size() < max_candidates;
       i += stride) {
    const auto& words = corpus[i].keywords.words();
    if (words.size() < m) continue;
    std::vector<Keyword> sorted = words;
    std::sort(sorted.begin(), sorted.end(),
              [&](const Keyword& a, const Keyword& b) { return df[a] > df[b]; });
    sorted.resize(m);
    KeywordSet candidate(std::move(sorted));
    if (seen.insert(candidate).second) out.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace

int main() {
  using namespace hkws;
  const auto corpus = bench::paper_corpus();
  constexpr std::size_t kQueriesPerSize = 20;
  const std::vector<int> kRecalls = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};

  for (int r : {8, 10, 12}) {
    index::LogicalIndex idx({.r = r});
    for (const auto& rec : corpus.records())
      idx.insert(rec.id, rec.keywords);
    const double nodes = static_cast<double>(idx.cube().node_count());

    char title[64];
    std::snprintf(title, sizeof title, "Figure 8 — r = %d (cacheless)", r);
    bench::banner(title);
    std::printf("%-8s", "recall");
    for (std::size_t m = 1; m <= 5; ++m) std::printf("      m=%zu", m);
    std::printf("\n");

    // One profile per query; every recall point is a prefix of it. Rank
    // candidates by |O_K| and keep the most popular sets of each size.
    std::vector<std::vector<index::LogicalIndex::TraversalProfile>> profiles(6);
    for (std::size_t m = 1; m <= 5; ++m) {
      std::vector<index::LogicalIndex::TraversalProfile> candidates;
      for (const auto& q : popular_candidates(corpus, m, 150))
        candidates.push_back(idx.traversal_profile(q));
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) {
                  return a.total_hits > b.total_hits;
                });
      if (candidates.size() > kQueriesPerSize)
        candidates.resize(kQueriesPerSize);
      profiles[m] = std::move(candidates);
    }

    for (int recall : kRecalls) {
      std::printf("%6d%% ", recall);
      for (std::size_t m = 1; m <= 5; ++m) {
        double mean_pct = 0;
        std::size_t n = 0;
        for (const auto& p : profiles[m]) {
          if (p.total_hits == 0) continue;
          const auto target = static_cast<std::uint64_t>(std::ceil(
              recall / 100.0 * static_cast<double>(p.total_hits)));
          mean_pct +=
              100.0 * static_cast<double>(p.nodes_to_collect(target)) / nodes;
          ++n;
        }
        std::printf(" %8.3f", n == 0 ? 0.0 : mean_pct / static_cast<double>(n));
      }
      std::printf("\n");
    }
    std::printf("2^-m ref ");
    for (std::size_t m = 1; m <= 5; ++m)
      std::printf(" %8.3f", 100.0 / std::pow(2.0, static_cast<double>(m)));
    std::printf("   (paper's rule of thumb at 100%% recall)\n");
    std::printf("Eq1 ref  ");
    for (std::size_t m = 1; m <= 5; ++m)
      std::printf(" %8.3f", 100.0 * hkws::analysis::expected_search_fraction(
                                        r, static_cast<int>(m)));
    std::printf("   (exact E[2^-|One|] for this r)\n");
  }
  return 0;
}
