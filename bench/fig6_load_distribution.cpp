// Figure 6 — load distribution: nodes ranked heavy-to-light, cumulative
// share of indexed objects vs share of nodes.
//
// Series reproduced:
//  * Hypercube-r (our scheme) for r = 6, 8, 10, 12, 14, 16
//  * DHT-r (objects hashed directly to nodes) — the balance target
//  * DII-r (distributed inverted index) for r = 10, 12, 14 — the skewed
//    baseline
//  * Perfect — the diagonal
//
// Expected shape (paper): Hypercube-10 hugs DHT-10; r < 10 and r > 12
// deviate; DII is dramatically more concentrated than everything else.
#include <cstdio>
#include <vector>

#include "analysis/load_metrics.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "dii/inverted_index.hpp"
#include "index/logical_index.hpp"

namespace {

const std::vector<double> kNodeFractions = {0.05, 0.10, 0.20, 0.30, 0.40,
                                            0.50, 0.60, 0.80, 1.00};

// Cumulative load share at each of kNodeFractions, from a full curve.
std::vector<double> sample_curve(const std::vector<std::size_t>& loads) {
  const auto curve =
      hkws::ranked_load_curve(hkws::analysis::to_double_loads(loads));
  std::vector<double> out;
  std::size_t pos = 0;
  for (double f : kNodeFractions) {
    while (pos + 1 < curve.size() && curve[pos].node_fraction < f) ++pos;
    out.push_back(curve[pos].load_fraction);
  }
  return out;
}

void print_row(const char* name, const std::vector<std::size_t>& loads) {
  std::printf("%-14s", name);
  for (double v : sample_curve(loads)) std::printf(" %6.1f%%", 100.0 * v);
  std::printf("   %.3f\n", hkws::gini(hkws::analysis::to_double_loads(loads)));
}

}  // namespace

int main() {
  using namespace hkws;
  const auto corpus = bench::paper_corpus();

  bench::banner("Figure 6 — cumulative load vs ranked node share");
  std::printf("%-14s", "scheme");
  for (double f : kNodeFractions) std::printf(" %6.0f%%", 100.0 * f);
  std::printf("   gini\n");

  // Perfect balance: every node equal.
  print_row("Perfect", std::vector<std::size_t>(1024, 1));

  char name[32];
  for (int r : {6, 8, 10, 12, 14, 16}) {
    index::LogicalIndex idx({.r = r});
    for (const auto& rec : corpus.records())
      idx.insert(rec.id, rec.keywords);
    std::snprintf(name, sizeof name, "Hypercube-%d", r);
    print_row(name, idx.loads());
  }
  for (int r : {6, 8, 10, 12, 14, 16}) {
    std::snprintf(name, sizeof name, "DHT-%d", r);
    print_row(name, analysis::direct_hash_loads(corpus.size(), r,
                                                /*seed=*/99 + r));
  }
  for (int r : {10, 12, 14}) {
    dii::InvertedIndex idx({.r = r});
    for (const auto& rec : corpus.records())
      idx.insert(rec.id, rec.keywords);
    std::snprintf(name, sizeof name, "DII-%d", r);
    print_row(name, idx.loads());
  }

  std::printf(
      "\nShape check: Hypercube-10 should track DHT-10; DII rows should\n"
      "concentrate most load in the first few percent of nodes.\n");
  return 0;
}
