// Micro-benchmarks (google-benchmark) for the primitives every operation is
// built from: hashing, hypercube math, SBT traversal, index-table access,
// searches, and DHT lookups.
#include <benchmark/benchmark.h>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "cube/sbt.hpp"
#include "analysis/occupancy.hpp"
#include "dht/chord_network.hpp"
#include "dht/pastry_network.hpp"
#include "index/keyword_hash.hpp"
#include "index/logical_index.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace hkws;

void BM_Mix64(benchmark::State& state) {
  std::uint64_t x = 0x12345;
  for (auto _ : state) benchmark::DoNotOptimize(x = mix64(x));
}
BENCHMARK(BM_Mix64);

void BM_HashKeyword(benchmark::State& state) {
  const std::string word = "telecommunication";
  for (auto _ : state)
    benchmark::DoNotOptimize(hash_bytes(word, seeds::kKeywordHash));
}
BENCHMARK(BM_HashKeyword);

void BM_ResponsibleNode(benchmark::State& state) {
  index::KeywordHasher hasher(static_cast<int>(state.range(0)));
  const KeywordSet keywords(
      {"isp", "telecom", "network", "download", "news", "tv", "sports"});
  for (auto _ : state)
    benchmark::DoNotOptimize(hasher.responsible_node(keywords));
}
BENCHMARK(BM_ResponsibleNode)->Arg(10)->Arg(16);

void BM_SbtBfsOrder(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  cube::Hypercube cube(r);
  cube::SpanningBinomialTree sbt(cube, 0b11);
  for (auto _ : state) benchmark::DoNotOptimize(sbt.bfs_order());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sbt.size()));
}
BENCHMARK(BM_SbtBfsOrder)->Arg(10)->Arg(14);

void BM_SubcubeEnumeration(benchmark::State& state) {
  cube::Hypercube cube(static_cast<int>(state.range(0)));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    cube.for_each_in_subcube(0b101, [&](cube::CubeId w) { acc ^= w; });
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SubcubeEnumeration)->Arg(10)->Arg(14);

index::LogicalIndex& bench_index() {
  static index::LogicalIndex idx = [] {
    index::LogicalIndex built({.r = 10});
    Rng rng(5);
    for (ObjectId o = 1; o <= 20000; ++o) {
      std::vector<Keyword> words;
      const int n = 1 + static_cast<int>(rng.next_below(9));
      for (int i = 0; i < n; ++i)
        words.push_back("kw" + std::to_string(rng.next_below(5000)));
      built.insert(o, KeywordSet(std::move(words)));
    }
    return built;
  }();
  return idx;
}

void BM_IndexInsertRemove(benchmark::State& state) {
  auto& idx = bench_index();
  const KeywordSet k({"bench", "insert", "remove"});
  ObjectId o = 1000000;
  for (auto _ : state) {
    idx.insert(o, k);
    idx.remove(o, k);
    ++o;
  }
}
BENCHMARK(BM_IndexInsertRemove);

void BM_PinSearch(benchmark::State& state) {
  auto& idx = bench_index();
  const KeywordSet k({"kw1", "kw2"});
  for (auto _ : state) benchmark::DoNotOptimize(idx.pin_search(k));
}
BENCHMARK(BM_PinSearch);

void BM_SupersetSearchThreshold(benchmark::State& state) {
  auto& idx = bench_index();
  const KeywordSet q({"kw1"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idx.superset_search(q, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_SupersetSearchThreshold)->Arg(10)->Arg(100)->Arg(0);

void BM_TraversalProfile(benchmark::State& state) {
  auto& idx = bench_index();
  const KeywordSet q({"kw2", "kw3"});
  for (auto _ : state) benchmark::DoNotOptimize(idx.traversal_profile(q));
}
BENCHMARK(BM_TraversalProfile);

void BM_ChordLookup(benchmark::State& state) {
  static sim::EventQueue clock;
  static sim::Network net(clock);
  static dht::ChordNetwork dht = dht::ChordNetwork::build(
      net, static_cast<std::size_t>(1024), {});
  const auto ids = dht.live_ids();
  Rng rng(7);
  for (auto _ : state) {
    const auto key = dht.space().clamp(rng.next_u64());
    const auto start = ids[rng.next_below(ids.size())];
    benchmark::DoNotOptimize(dht.lookup_now(start, key, "bench"));
  }
}
BENCHMARK(BM_ChordLookup);

void BM_PastryLookup(benchmark::State& state) {
  static sim::EventQueue clock;
  static sim::Network net(clock);
  static dht::PastryNetwork dht = dht::PastryNetwork::build(
      net, static_cast<std::size_t>(1024), {});
  const auto ids = dht.live_ids();
  Rng rng(7);
  for (auto _ : state) {
    const auto key = dht.space().clamp(rng.next_u64());
    const auto start = ids[rng.next_below(ids.size())];
    benchmark::DoNotOptimize(dht.lookup_now(start, key, "bench"));
  }
}
BENCHMARK(BM_PastryLookup);

void BM_OccupancyDistribution(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::occupancy_distribution(
        static_cast<int>(state.range(0)), 7));
}
BENCHMARK(BM_OccupancyDistribution)->Arg(10)->Arg(32);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int acc = 0;
    for (int i = 0; i < 1000; ++i)
      q.schedule_in(static_cast<sim::Time>(i % 17), [&acc] { ++acc; });
    q.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace
