// Serving-latency benchmark — the query-serving engine under open-loop
// Poisson load. Three parts:
//
//  A. Offered-QPS sweep (lossless, heavy-tailed LogNormal link latency):
//     the engine replays the Zipf query log at several offered rates and
//     reports p50/p95/p99 end-to-end latency, achieved QPS, in-flight and
//     backlog high-water marks, and shed/timeout counts. One run repeats
//     the middle rate with the query cache off to expose its latency win.
//     Sweep runs serve under adaptive (AIMD) admission; the headline
//     number is sustained_qps_at_slo — the highest offered rate served
//     with zero shed, zero timeouts, and steady-state p99 end-to-end
//     latency under kSloP99 ticks. "Steady-state" drops queries submitted
//     during the first quarter of the replay horizon: the AIMD limit ramps
//     from its cold-start value over the first few service intervals, and
//     that warm-up backlog is a property of the ramp, not of the sustained
//     rate under test.
//  B. Dimension sweep: the middle rate at r = 8 and r = 12.
//  C. Loss correctness: 1% message loss with retransmission enabled; every
//     query that did not time out must return exactly the result set of a
//     serial lossless baseline. A mismatch fails the benchmark (exit 1).
//  D. Churn sweep: the middle rate on a mirrored deployment while peers are
//     killed mid-run, with the self-healing maintenance plane racing the
//     load (plus one no-heal control). Every run reports availability
//     (= served/submitted, served = completed + degraded) and the
//     completeness rate among served queries (= completed/served).
//  E. Hot-spot pair: the middle rate on a log whose Zipf head is sharpened
//     so ~85% of queries hit its 3 most frequent keyword sets, once with
//     hot-cell replication off and once with the maintenance plane's
//     replication ticker promoting hot cells mid-run. The headline is the
//     max/mean scan-skew cut (and the CI gate pins the replicated run's
//     skew in bench/baselines/ci_perf.json).
//
// Scale knobs (independent of the generic HYPERKWS_* ones so CI reduction
// does not void the acceptance criteria):
//   HYPERKWS_SERVING_OBJECTS  corpus size         (default 25000)
//   HYPERKWS_SERVING_QUERIES  queries per run     (default 12000)
//   HYPERKWS_SERVING_LOSSQ    loss-phase queries  (default 1500)
//
// Machine-readable results land in BENCH_serving.json (cwd).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "engine/load_driver.hpp"
#include "engine/query_engine.hpp"
#include "maint/maintenance.hpp"
#include "obs/trace.hpp"
#include "obs/windowed.hpp"
#include "workload/arrivals.hpp"

namespace {

using namespace hkws;

constexpr std::size_t kPeers = 224;
constexpr std::size_t kSearchers = 32;
constexpr double kLatencyMedian = 30.0;  // ticks (~ms): WAN-ish one-way
constexpr double kLatencySigma = 0.45;

struct Setup {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<index::KeywordSearchService> service;

  Setup(index::KeywordSearchService::Options opts, std::uint64_t seed) {
    net = std::make_unique<sim::Network>(
        clock, std::make_unique<sim::LogNormalLatency>(kLatencyMedian,
                                                       kLatencySigma),
        seed);
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, kPeers, {}));
    service = std::make_unique<index::KeywordSearchService>(*dht, opts);
  }

  void publish(const workload::Corpus& corpus) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const auto& rec = corpus[i];
      service->publish(1 + i % kPeers, rec.id, rec.keywords);
      // Keep the event heap shallow: drain while publishing.
      if (i % 512 == 511) clock.run();
    }
    clock.run();
  }
};

std::vector<sim::EndpointId> searcher_pool() {
  std::vector<sim::EndpointId> out;
  for (std::size_t i = 1; i <= kSearchers; ++i) out.push_back(i);
  return out;
}

/// Windowed time-series bucket width: 1 kilotick = 1 s at 1 tick = 1 ms.
constexpr sim::Time kWindowWidth = 1000;

/// Serving SLO for the headline: steady-state p99 end-to-end latency bound
/// (ticks), judged on queries submitted after the warm-up fraction of the
/// replay horizon.
constexpr double kSloP99 = 4000.0;
constexpr double kWarmupFraction = 0.25;

struct RunResult {
  std::string name;
  double offered_qps = 0;
  int r = 10;
  bool cache = true;
  engine::EngineReport report;
  std::string timeseries;  ///< obs::WindowedMetrics::to_json()
  /// Steady-state view (queries submitted after the warm-up fraction of the
  /// replay horizon): latency p50/p99 and completion rate. Zero when the
  /// steady window served nothing.
  double steady_p50 = 0;
  double steady_p99 = 0;
  double steady_qps = 0;
  // Part D (zero/true defaults for the non-churn runs, so every run object
  // in BENCH_serving.json carries the same columns):
  std::size_t kills = 0;      ///< peers killed mid-run
  bool self_healing = true;   ///< maintenance plane active
  bool converged = true;      ///< plane drained its backlog post-load
  std::uint64_t repair_work = 0;  ///< entries re-homed + replicas pushed
  /// Outstanding repair work when the run ended: 0 once the plane has
  /// converged; without it, the churn damage (stranded entries, lost
  /// replicas) that stays in the index — the mirror masks it from
  /// searches, but the next kill is unprotected.
  std::size_t backlog_end = 0;
};

/// Fraction of submitted queries that were served at all (completed or
/// degraded). Sheds, timeouts, and protocol failures all count against it.
double availability(const engine::EngineReport& rep) {
  if (rep.submitted == 0) return 1.0;
  return static_cast<double>(rep.completed + rep.degraded) /
         static_cast<double>(rep.submitted);
}

/// Among served queries, the fraction served complete (not via failover /
/// single-cube degraded mode).
double completeness_rate(const engine::EngineReport& rep) {
  const std::uint64_t served = rep.completed + rep.degraded;
  if (served == 0) return 1.0;
  return static_cast<double>(rep.completed) / static_cast<double>(served);
}

/// Whether a run met the serving SLO: nothing rejected or expired across
/// the whole run, and steady-state p99 bounded. An engine falling behind
/// the offered rate shows up here as unbounded backlog wait, so no separate
/// throughput criterion is needed.
bool slo_ok(const RunResult& run) {
  const engine::EngineReport& rep = run.report;
  return rep.shed == 0 && rep.timed_out == 0 && rep.failed == 0 &&
         run.steady_p99 > 0 && run.steady_p99 <= kSloP99;
}

/// Fills the steady-state fields of `run` from the finished records:
/// latency quantiles and completion rate over served queries submitted
/// after the warm-up fraction of the submission horizon.
void steady_state_view(const engine::QueryEngine& engine, RunResult& run) {
  const auto& records = engine.records();
  if (records.empty()) return;
  sim::Time first = records.front().submitted, last = first;
  for (const auto& rec : records) {
    first = std::min(first, rec.submitted);
    last = std::max(last, rec.submitted);
  }
  const sim::Time cutoff =
      first + static_cast<sim::Time>(kWarmupFraction *
                                     static_cast<double>(last - first));
  std::vector<double> lat;
  sim::Time last_finish = cutoff;
  for (const auto& rec : records) {
    if (rec.submitted < cutoff) continue;
    if (rec.outcome != engine::QueryOutcome::kCompleted &&
        rec.outcome != engine::QueryOutcome::kDegraded)
      continue;
    lat.push_back(static_cast<double>(rec.latency()));
    last_finish = std::max(last_finish, rec.finished);
  }
  if (lat.empty()) return;
  std::sort(lat.begin(), lat.end());
  const auto q = [&](double p) {
    return lat[static_cast<std::size_t>(p * static_cast<double>(lat.size() - 1))];
  };
  run.steady_p50 = q(0.50);
  run.steady_p99 = q(0.99);
  if (last_finish > cutoff)
    run.steady_qps = 1000.0 * static_cast<double>(lat.size()) /
                     static_cast<double>(last_finish - cutoff);
}

/// One open-loop serving run: fresh cluster, publish, replay at `qps`.
/// When `tracer` is non-null the engine's spans and (post-publish) the wire
/// sends of this run are captured into it.
RunResult serve_run(const std::string& name, const workload::Corpus& corpus,
                    const workload::QueryLog& log, double qps, int r,
                    bool cache, obs::Tracer* tracer = nullptr) {
  index::KeywordSearchService::Options opts;
  opts.r = r;
  opts.cache_capacity = cache ? 64 : 0;
  Setup setup(opts, 0xbe7c5 + static_cast<std::uint64_t>(qps));
  setup.publish(corpus);
  // Attach after publishing so the trace captures serving traffic only.
  if (tracer != nullptr) obs::attach_network(*tracer, *setup.net);

  obs::WindowedMetrics windows(kWindowWidth);
  engine::EngineConfig cfg;
  cfg.max_in_flight = 64;  // the AIMD controller's starting point
  cfg.max_backlog = 2000;  // floor of the adaptive backlog bound
  // Adaptive admission: the limit climbs while completions land under the
  // service-latency target and halves on overload, so the sweep finds the
  // serving capacity instead of pinning it at a guessed constant.
  cfg.adaptive.enabled = true;
  cfg.adaptive.latency_target = 4000;
  cfg.search.limit = 64;
  cfg.search.strategy = index::SearchStrategy::kLevelParallel;
  cfg.latency_reservoir = 4096;  // bounded memory over long runs
  cfg.record_traces = false;     // too many queries to keep full traces
  cfg.tracer = tracer;
  cfg.windows = &windows;
  engine::QueryEngine engine(*setup.service, setup.clock, cfg);

  workload::PoissonArrivals arrivals(qps, 0xa11c + static_cast<std::uint64_t>(qps));
  engine::LoadDriver driver(engine, setup.clock, searcher_pool());
  driver.start(log, arrivals);
  setup.clock.run();

  RunResult result;
  result.name = name;
  result.offered_qps = qps;
  result.r = r;
  result.cache = cache;
  result.report = engine.report();
  result.timeseries = windows.to_json();
  steady_state_view(engine, result);

  std::printf("\n--- %s (offered %.0f qps, r=%d, cache=%s) ---\n",
              name.c_str(), qps, r, cache ? "on" : "off");
  std::fputs(result.report.to_string().c_str(), stdout);
  std::printf("steady: p50=%.0f p99=%.0f qps=%.1f -> slo=%s (p99 <= %.0f, "
              "zero shed/timeouts)\n",
              result.steady_p50, result.steady_p99, result.steady_qps,
              slo_ok(result) ? "met" : "MISSED", kSloP99);
  return result;
}

/// Part D: open-loop load on a mirrored deployment while `kills` peers die
/// mid-run. With `heal` the maintenance plane (heartbeat detection +
/// budgeted background repair) races the workload; without it the failures
/// stay unrepaired and serving leans on degraded mode for the rest of the
/// run. Repair budgets are raised above the torture-harness defaults — at
/// bench corpus sizes a kill strands thousands of entries, and the point
/// here is the availability/completeness trade, not repair pacing.
RunResult churn_run(const std::string& name, const workload::Corpus& corpus,
                    const workload::QueryLog& log, double qps,
                    std::size_t kills, bool heal) {
  obs::WindowedMetrics windows(kWindowWidth);  // shared: engine+plane+index
  index::KeywordSearchService::Options opts;
  opts.r = 10;
  opts.cache_capacity = 0;  // cached hits would mask degraded serving
  opts.mirror_index = true;
  opts.replication_factor = 3;
  opts.step_timeout = 800;  // >> p99 round trip at median 30
  opts.max_retries = 4;
  opts.failover_after = 2;
  opts.windows = &windows;
  Setup setup(opts, 0xc4a0 + kills * 2 + (heal ? 1 : 0));
  setup.publish(corpus);

  dht::ChordNetwork* chord = setup.dht.get();
  index::KeywordSearchService* svc = setup.service.get();
  maint::MaintenancePlane::Config mcfg;
  // The detector defaults assume near-instant links; this bench runs WAN-ish
  // LogNormal latency (median 30, sigma 0.45), so the ping timeout must sit
  // well above the p99.9 round trip or every probe "times out" and the
  // detector confirms healthy peers dead by the hundreds.
  mcfg.detector.period = 500;
  mcfg.detector.timeout = 400;
  mcfg.entries_per_tick = 64;
  mcfg.refs_per_tick = 64;
  maint::MaintenancePlane plane(
      *setup.net, mcfg, [chord] { chord->stabilize_all(); },
      [svc](std::size_t entries, std::size_t refs) {
        return svc->repair_step(entries, refs);
      },
      [svc] { return svc->repair_backlog(); });
  plane.set_windows(&windows);
  if (heal) {
    std::vector<sim::EndpointId> members;
    for (dht::RingId id : chord->live_ids())
      members.push_back(chord->endpoint_of(id));
    plane.start(members);
  }

  engine::EngineConfig cfg;
  cfg.max_in_flight = 64;
  cfg.max_backlog = 2000;
  cfg.deadline = 30000;  // bounds queries racing a kill, loose enough that
                         // backlog wait alone does not burn it
  cfg.search.limit = 64;
  cfg.search.strategy = index::SearchStrategy::kLevelParallel;
  cfg.latency_reservoir = 4096;
  cfg.record_traces = false;
  cfg.windows = &windows;
  engine::QueryEngine engine(*setup.service, setup.clock, cfg);

  // Kills spread across the first half of the replay horizon (so a healing
  // plane has the second half to win back completeness), never a searcher
  // endpoint, deterministic victim choice.
  const sim::Time horizon = static_cast<sim::Time>(
      1000.0 * static_cast<double>(log.size()) / qps);
  for (std::size_t i = 0; i < kills; ++i) {
    const sim::EndpointId victim =
        kSearchers + 1 + (i * 29) % (kPeers - kSearchers);
    const sim::Time at = horizon * (i + 1) / (2 * (kills + 1));
    setup.clock.schedule_in(at, [chord, &plane, victim, heal] {
      if (!chord->is_live(victim)) return;
      if (heal) plane.note_true_failure(victim);
      chord->fail(victim);
    });
  }

  workload::PoissonArrivals arrivals(qps,
                                     0xc0a1 + static_cast<std::uint64_t>(qps));
  engine::LoadDriver driver(engine, setup.clock, searcher_pool());
  driver.start(log, arrivals);
  // run() would never return while the plane's heartbeat timers are armed;
  // drive the clock in windows until the replay drains (bounded).
  const sim::Time load_deadline = setup.clock.now() + horizon + 400000;
  while ((!driver.done() || engine.in_flight() != 0 ||
          engine.backlog() != 0) &&
         setup.clock.now() < load_deadline)
    setup.clock.run_until(setup.clock.now() + kWindowWidth);

  // Give the plane a bounded post-load convergence window, then stop it
  // and drain whatever is still on the wire.
  bool converged = !heal || plane.converged();
  for (int w = 0; heal && !converged && w < 400; ++w) {
    setup.clock.run_until(setup.clock.now() + 100);
    converged = plane.converged();
  }
  plane.stop();
  setup.clock.run();

  RunResult result;
  result.name = name;
  result.offered_qps = qps;
  result.r = opts.r;
  result.cache = false;
  result.report = engine.report();
  result.timeseries = windows.to_json();
  result.kills = kills;
  result.self_healing = heal;
  result.repair_work = plane.repair_work_done();
  result.backlog_end = svc->repair_backlog();
  // "Converged" means no outstanding damage, so the no-heal control
  // honestly reports false while its stranded backlog persists.
  result.converged = converged && result.backlog_end == 0;

  std::printf("\n--- %s (offered %.0f qps, kills=%zu, heal=%s) ---\n",
              name.c_str(), qps, kills, heal ? "on" : "off");
  std::fputs(result.report.to_string().c_str(), stdout);
  std::printf("availability=%.4f completeness_rate=%.4f converged=%s "
              "repair_work=%llu backlog_end=%zu\n",
              availability(result.report), completeness_rate(result.report),
              result.converged ? "yes" : "NO",
              static_cast<unsigned long long>(result.repair_work),
              result.backlog_end);
  return result;
}

/// Part E workload: sharpen the log's Zipf head so ~85% of queries hit its
/// three most frequent keyword sets — the skew profile PR-7's serving runs
/// exposed (one peer scanning ~50x the mean).
workload::QueryLog sharpen_hot_head(const workload::QueryLog& log) {
  const auto freq = log.frequencies();
  std::vector<KeywordSet> head;
  for (std::size_t i = 0; i < freq.size() && head.size() < 3; ++i)
    head.push_back(freq[i].first);
  Rng rng(0x407c311);
  std::vector<workload::Query> out = log.queries();
  if (!head.empty())
    for (auto& q : out)
      if (rng.next_bool(0.85))
        q.keywords = head[rng.next_below(head.size())];
  return workload::QueryLog(std::move(out));
}

/// Part E: the hot-head workload under open-loop load, with the
/// maintenance plane's always-on replication ticker promoting hot cells in
/// the background (or idling, for the control). The runs differ ONLY in
/// Options::hot_cells.enabled, so the skew cut and the message overhead of
/// replication read off the off/on pair directly. Query cache off: cached
/// answers would absorb exactly the recurring head the skew measurement
/// needs on the wire.
RunResult hotspot_run(const std::string& name, const workload::Corpus& corpus,
                      const workload::QueryLog& log, double qps,
                      bool replication) {
  obs::WindowedMetrics windows(kWindowWidth);  // shared: engine+plane+index
  index::KeywordSearchService::Options opts;
  opts.r = 10;
  opts.cache_capacity = 0;
  opts.step_timeout = 800;  // >> p99 round trip at median 30
  opts.max_retries = 4;
  opts.failover_after = 2;
  opts.hot_cells.enabled = replication;
  // Level-parallel head queries touch hundreds of cells each, so the hot
  // set is wide and moderately hot rather than narrow and extreme: promote
  // early (low min_scans) and cap generously, and use enough replicas that
  // the owner's 1/(replicas+1) residual share sits near the mean.
  opts.hot_cells.replicas = 7;
  opts.hot_cells.window = 20000;  // sliding: a scan counts for 20-40 s
  opts.hot_cells.min_scans = 8;
  opts.hot_cells.max_hot = 768;
  opts.windows = &windows;
  Setup setup(opts, 0x407 + (replication ? 1 : 0));
  setup.publish(corpus);

  dht::ChordNetwork* chord = setup.dht.get();
  index::KeywordSearchService* svc = setup.service.get();
  maint::MaintenancePlane::Config mcfg;
  mcfg.detector.period = 500;  // WAN-ish latency: see churn_run
  mcfg.detector.timeout = 400;
  // Promote fast: at 160 qps the whole replay fits in ~7500 ticks, so a
  // lazy ticker would leave most of the load unspread.
  mcfg.replication_interval = 250;
  mcfg.replica_entries_per_tick = 8192;
  maint::MaintenancePlane plane(
      *setup.net, mcfg, [chord] { chord->stabilize_all(); },
      [svc](std::size_t entries, std::size_t refs) {
        return svc->repair_step(entries, refs);
      },
      [svc] { return svc->repair_backlog(); });
  plane.set_replication(
      [svc](std::size_t n) { return svc->replication_step(n); });
  plane.set_windows(&windows);
  {
    std::vector<sim::EndpointId> members;
    for (dht::RingId id : chord->live_ids())
      members.push_back(chord->endpoint_of(id));
    plane.start(members);
  }

  engine::EngineConfig cfg;
  cfg.max_in_flight = 64;
  cfg.max_backlog = 2000;
  cfg.adaptive.enabled = true;
  cfg.adaptive.latency_target = 4000;
  cfg.search.limit = 64;
  cfg.search.strategy = index::SearchStrategy::kLevelParallel;
  cfg.latency_reservoir = 4096;
  cfg.record_traces = false;
  cfg.windows = &windows;
  engine::QueryEngine engine(*setup.service, setup.clock, cfg);

  workload::PoissonArrivals arrivals(qps,
                                     0x407a + static_cast<std::uint64_t>(qps));
  engine::LoadDriver driver(engine, setup.clock, searcher_pool());
  driver.start(log, arrivals);
  // run() would never return while the plane's timers are armed; drive the
  // clock in windows until the replay drains (bounded).
  const sim::Time horizon = static_cast<sim::Time>(
      1000.0 * static_cast<double>(log.size()) / qps);
  const sim::Time load_deadline = setup.clock.now() + horizon + 400000;
  while ((!driver.done() || engine.in_flight() != 0 ||
          engine.backlog() != 0) &&
         setup.clock.now() < load_deadline)
    setup.clock.run_until(setup.clock.now() + kWindowWidth);
  plane.stop();
  setup.clock.run();

  RunResult result;
  result.name = name;
  result.offered_qps = qps;
  result.r = opts.r;
  result.cache = false;
  result.report = engine.report();
  result.timeseries = windows.to_json();
  steady_state_view(engine, result);

  std::printf("\n--- %s (offered %.0f qps, replication=%s) ---\n",
              name.c_str(), qps, replication ? "on" : "off");
  std::fputs(result.report.to_string().c_str(), stdout);
  std::printf("steady: p50=%.0f p99=%.0f qps=%.1f\n", result.steady_p50,
              result.steady_p99, result.steady_qps);
  return result;
}

std::set<ObjectId> id_set(const std::vector<index::Hit>& hits) {
  std::set<ObjectId> ids;
  for (const auto& h : hits) ids.insert(h.object);
  return ids;
}

struct LossCheck {
  std::size_t queries = 0;
  std::size_t compared = 0;
  std::size_t matched = 0;
  std::size_t timed_out = 0;
  std::size_t failed = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t messages_lost = 0;
  bool ok = false;
};

/// Part C: exhaustive searches under 1% loss vs a serial lossless baseline.
LossCheck loss_correctness(const workload::Corpus& corpus,
                           const workload::QueryLog& log) {
  index::KeywordSearchService::Options opts;
  opts.r = 10;
  opts.cache_capacity = 64;
  opts.step_timeout = 800;  // >> p99 round trip at median 30
  opts.max_retries = 6;

  // Serial lossless baseline over the distinct queries of the log.
  std::map<KeywordSet, std::set<ObjectId>> expected;
  {
    Setup base(opts, 0x5e41a1);
    base.publish(corpus);
    for (const auto& q : log.queries()) {
      if (expected.count(q.keywords)) continue;
      auto& slot = expected[q.keywords];
      base.service->search(
          1, q.keywords,
          {.limit = 0, .strategy = index::SearchStrategy::kLevelParallel},
          [&slot](const index::KeywordSearchService::Answer& a) {
            slot = id_set(a.hits);
          });
      base.clock.run();  // serial: one query at a time
    }
  }

  // The same cluster seeds, now with 1% loss switched on after publishing.
  Setup lossy(opts, 0x5e41a1);
  lossy.publish(corpus);
  lossy.net->set_drop_model(std::make_unique<sim::BernoulliDrop>(0.01));

  engine::EngineConfig cfg;
  cfg.max_in_flight = 128;
  cfg.max_backlog = 4000;
  cfg.deadline = 15000;
  cfg.search.limit = 0;  // exhaustive, so results are comparable
  cfg.search.strategy = index::SearchStrategy::kLevelParallel;
  cfg.record_traces = false;
  engine::QueryEngine engine(*lossy.service, lossy.clock, cfg);

  LossCheck check;
  check.queries = log.size();
  engine.set_on_finished([&](const engine::QueryRecord& rec) {
    switch (rec.outcome) {
      case engine::QueryOutcome::kTimedOut: ++check.timed_out; return;
      case engine::QueryOutcome::kFailed: ++check.failed; return;
      case engine::QueryOutcome::kShed: return;
      case engine::QueryOutcome::kCompleted: break;
    }
  });

  workload::PoissonArrivals arrivals(40.0, 0xfeed);
  engine::LoadDriver driver(engine, lossy.clock, searcher_pool());
  driver.start(log, arrivals);
  lossy.clock.run();

  // Hit-count comparison for every completed query (the engine records the
  // delivered result size), plus a full id-set comparison replayed serially
  // on the still-lossy cluster for the distinct queries.
  for (const auto& rec : engine.records()) {
    if (rec.outcome != engine::QueryOutcome::kCompleted) continue;
    const auto& q = log[static_cast<std::size_t>(rec.id - 1)].keywords;
    ++check.compared;
    if (rec.hits == expected[q].size()) ++check.matched;
  }

  // Exact id-level verification on the lossy cluster, serially.
  bool ids_ok = true;
  for (const auto& [q, want] : expected) {
    std::set<ObjectId> got;
    bool done = false;
    lossy.service->search(
        1, q,
        {.limit = 0, .strategy = index::SearchStrategy::kLevelParallel},
        [&](const index::KeywordSearchService::Answer& a) {
          if (!a.stats.failed) got = id_set(a.hits);
          done = !a.stats.failed;
        });
    lossy.clock.run();
    if (done && got != want) {
      ids_ok = false;
      std::printf("MISMATCH for query [%s]: got %zu ids, want %zu\n",
                  q.to_string().c_str(), got.size(), want.size());
    }
  }

  check.retransmits = engine.report().retransmits;
  check.messages_lost = lossy.net->messages_lost();
  check.ok = ids_ok && check.matched == check.compared && check.compared > 0;

  std::printf("\n--- loss correctness (1%% loss, exhaustive) ---\n");
  std::printf(
      "queries=%zu compared=%zu matched=%zu timed_out=%zu failed=%zu "
      "retransmits=%llu lost=%llu ok=%s\n",
      check.queries, check.compared, check.matched, check.timed_out,
      check.failed, static_cast<unsigned long long>(check.retransmits),
      static_cast<unsigned long long>(check.messages_lost),
      check.ok ? "yes" : "NO");
  return check;
}

}  // namespace

int main() {
  const std::size_t objects =
      bench::env_size("HYPERKWS_SERVING_OBJECTS", 25000);
  const std::size_t queries =
      bench::env_size("HYPERKWS_SERVING_QUERIES", 12000);
  const std::size_t loss_queries =
      bench::env_size("HYPERKWS_SERVING_LOSSQ", 1500);

  bench::banner("Serving latency under open-loop load");
  std::printf("objects=%zu queries/run=%zu loss-phase=%zu peers=%zu\n",
              objects, queries, loss_queries, kPeers);

  const auto corpus = bench::paper_corpus(objects);
  const auto generator = bench::paper_queries(corpus, queries);
  const workload::QueryLog log = generator.generate();

  std::vector<RunResult> runs;
  // The first sweep run is span-traced end to end; the trace file feeds
  // tools/traceview and the CI smoke check (docs/OBSERVABILITY.md).
  obs::Tracer tracer(400000);
  // Part A: offered-QPS sweep, cache on; middle rate repeated cache-off.
  bool trace_this = true;
  for (double qps : {40.0, 160.0, 640.0}) {
    runs.push_back(serve_run("sweep", corpus, log, qps, 10, true,
                             trace_this ? &tracer : nullptr));
    trace_this = false;
  }
  runs.push_back(serve_run("cacheless", corpus, log, 160.0, 10, false));
  // Part B: hypercube dimension at the middle rate.
  for (int r : {8, 12})
    runs.push_back(serve_run("dimension", corpus, log, 160.0, r, true));
  // Part D: churn sweep at the middle rate — self-healing at two kill
  // counts, plus the no-heal control at the heavier one.
  for (std::size_t kills : {4u, 8u})
    runs.push_back(churn_run("churn", corpus, log, 160.0, kills, true));
  runs.push_back(churn_run("churn-noheal", corpus, log, 160.0, 8, false));
  // Part E: hot-head workload at the middle rate, replication off and on.
  const workload::QueryLog hot_log = sharpen_hot_head(log);
  runs.push_back(
      hotspot_run("hotspot-noreplication", corpus, hot_log, 160.0, false));
  runs.push_back(hotspot_run("hotspot", corpus, hot_log, 160.0, true));

  // Part C: loss correctness on a truncated log.
  std::vector<workload::Query> head(
      log.queries().begin(),
      log.queries().begin() +
          static_cast<std::ptrdiff_t>(std::min(loss_queries, log.size())));
  const LossCheck check = loss_correctness(corpus, workload::QueryLog(head));

  // Headline: the highest offered rate the sweep served within the SLO.
  double sustained = 0.0;
  for (const RunResult& run : runs)
    if (run.name == "sweep" && slo_ok(run))
      sustained = std::max(sustained, run.offered_qps);
  std::printf("\nsustained_qps_at_slo=%.0f (zero shed/timeouts, steady p99 "
              "<= %.0f)\n",
              sustained, kSloP99);

  // Hot-spot headline: max/mean scan skew without and with replication.
  double skew_off = 0.0, skew_on = 0.0;
  for (const RunResult& run : runs) {
    if (run.name == "hotspot-noreplication")
      skew_off = run.report.scan_skew_max_over_mean;
    if (run.name == "hotspot") skew_on = run.report.scan_skew_max_over_mean;
  }
  std::printf("hot-spot scan skew: off=%.1fx on=%.1fx (%.1fx reduction)\n",
              skew_off, skew_on, skew_on > 0 ? skew_off / skew_on : 0.0);

  std::ofstream json("BENCH_serving.json");
  json << "{\"objects\":" << objects << ",\"queries\":" << queries
       << ",\"peers\":" << kPeers
       << ",\"sustained_qps_at_slo\":" << sustained
       << ",\"hot_spot\":{\"scan_skew_noreplication\":" << skew_off
       << ",\"scan_skew_replication\":" << skew_on << "}"
       << ",\"slo\":{\"p99_max\":" << kSloP99
       << ",\"warmup_fraction\":" << kWarmupFraction << "},\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) json << ",";
    json << "{\"name\":\"" << runs[i].name
         << "\",\"offered_qps\":" << runs[i].offered_qps
         << ",\"r\":" << runs[i].r
         << ",\"cache\":" << (runs[i].cache ? "true" : "false")
         << ",\"slo_ok\":" << (slo_ok(runs[i]) ? "true" : "false")
         << ",\"steady_p50\":" << runs[i].steady_p50
         << ",\"steady_p99\":" << runs[i].steady_p99
         << ",\"steady_qps\":" << runs[i].steady_qps
         << ",\"availability\":" << availability(runs[i].report)
         << ",\"completeness_rate\":" << completeness_rate(runs[i].report)
         << ",\"kills\":" << runs[i].kills
         << ",\"self_healing\":" << (runs[i].self_healing ? "true" : "false")
         << ",\"converged\":" << (runs[i].converged ? "true" : "false")
         << ",\"repair_work\":" << runs[i].repair_work
         << ",\"repair_backlog_end\":" << runs[i].backlog_end
         << ",\"report\":" << runs[i].report.to_json()
         << ",\"timeseries\":" << runs[i].timeseries << "}";
  }
  json << "],\"loss_check\":{\"queries\":" << check.queries
       << ",\"compared\":" << check.compared
       << ",\"matched\":" << check.matched
       << ",\"timed_out\":" << check.timed_out
       << ",\"failed\":" << check.failed
       << ",\"retransmits\":" << check.retransmits
       << ",\"messages_lost\":" << check.messages_lost
       << ",\"ok\":" << (check.ok ? "true" : "false") << "}}\n";
  json.close();
  std::printf("\nwrote BENCH_serving.json\n");

  tracer.write_chrome_json("BENCH_serving_trace.json");
  std::printf("wrote BENCH_serving_trace.json (%zu events, %llu dropped)\n",
              tracer.events().size(),
              static_cast<unsigned long long>(tracer.dropped()));

  return check.ok ? 0 : 1;
}
