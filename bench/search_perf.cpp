// Search-cost benchmark for the superset-search fast path: what one
// level-parallel superset search costs on the wire and in table-scan work,
// swept over hypercube dimension r, query size, and co-host visit
// coalescing on/off. Per cell it reports:
//
//   - messages/query and bytes/query (wire cost, from the network counters)
//   - visits/query and rounds/query (traversal size, from SearchStats)
//   - coalesced batches and coalesced visits per query (fast-path uptake)
//   - end-to-end latency p50/p90/p99 under heavy-tailed link latency
//   - table-scan work per query: posting-list candidates examined,
//     signature rejects, exact subset checks, and matches delivered, next
//     to `linear_equivalent` — the entries a full-table linear scan would
//     have touched for the same queries (the pre-signature baseline)
//
// The same seeded query log drives the coalesce-on and coalesce-off runs
// of a cell, and the benchmark fails (exit 1) if any query's hit sequence
// differs between them, if coalescing costs wire messages on warm
// contacts, or if the signature index fails to beat the linear baseline.
//
// Scale knobs:
//   HYPERKWS_SEARCH_OBJECTS  corpus size        (default 12000)
//   HYPERKWS_SEARCH_QUERIES  queries per cell   (default 200)
//   HYPERKWS_SEARCH_PEERS    physical peers     (default 48)
//
// Machine-readable results land in BENCH_search.json (cwd).
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dht/chord_network.hpp"
#include "index/overlay_index.hpp"

namespace {

using namespace hkws;

constexpr double kLatencyMedian = 30.0;  // ticks (~ms): WAN-ish one-way
constexpr double kLatencySigma = 0.45;

std::size_t peer_count() {
  return bench::env_size("HYPERKWS_SEARCH_PEERS", 48);
}

struct Deployment {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<dht::Dolr> dolr;
  std::unique_ptr<index::OverlayIndex> index;

  Deployment(int r, bool coalesce, const workload::Corpus& corpus) {
    const std::size_t peers = peer_count();
    net = std::make_unique<sim::Network>(
        clock,
        std::make_unique<sim::LogNormalLatency>(kLatencyMedian,
                                                kLatencySigma),
        /*seed=*/7);
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, peers, {}));
    dolr = std::make_unique<dht::Dolr>(*dht);
    index = std::make_unique<index::OverlayIndex>(
        *dolr, index::OverlayIndex::Config{.r = r,
                                           .coalesce_visits = coalesce});
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const auto& rec = corpus[i];
      index->publish(1 + i % peers, rec.id, rec.keywords);
      if (i % 512 == 511) clock.run();  // keep the event heap shallow
    }
    clock.run();
  }

  index::SearchResult search(const KeywordSet& query) {
    std::optional<index::SearchResult> result;
    index->superset_search(2, query, 0,
                           index::SearchStrategy::kLevelParallel,
                           [&](const index::SearchResult& r) { result = r; });
    clock.run();
    return result.value_or(index::SearchResult{});
  }
};

/// Queries of exactly `size` keywords, sampled from real corpus records so
/// they land in populated subcubes. Seeded per (r, size): the coalesce-on
/// and coalesce-off runs of a cell replay the identical log.
std::vector<KeywordSet> make_queries(const workload::Corpus& corpus,
                                     std::size_t size, std::size_t count,
                                     std::uint64_t seed) {
  std::vector<KeywordSet> out;
  Rng rng(seed);
  while (out.size() < count) {
    const auto& rec = corpus[rng.next_below(corpus.size())];
    const auto& words = rec.keywords.words();
    if (words.size() < size) continue;
    std::vector<Keyword> pick;
    while (pick.size() < size) {
      const Keyword& w = words[rng.next_below(words.size())];
      bool dup = false;
      for (const Keyword& p : pick) dup |= (p == w);
      if (!dup) pick.push_back(w);
    }
    out.emplace_back(std::move(pick));
  }
  return out;
}

/// 64-bit digest of a hit sequence (objects and keyword sets, in order) —
/// enough to prove the coalesce-on and coalesce-off sequences identical.
std::uint64_t digest(const std::vector<index::Hit>& hits) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const index::Hit& hit : hits) {
    h = mix64(h ^ hit.object);
    h = mix64(h ^ hit.keywords.hash());
  }
  return h;
}

struct Cell {
  int r = 0;
  std::size_t query_size = 0;
  bool coalesce = false;
  double messages = 0, bytes = 0, visits = 0, rounds = 0;
  double batches = 0, batched_visits = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  double candidates = 0, rejects = 0, checks = 0, matches = 0, linear = 0;
  std::vector<std::uint64_t> digests;
};

Cell run_cell(Deployment& dep, const std::vector<KeywordSet>& queries, int r,
              std::size_t query_size, bool coalesce) {
  Cell cell{.r = r, .query_size = query_size, .coalesce = coalesce};
  // Warm pass: resolves every contact through the DHT so the measured pass
  // sees steady-state routing (and, coalesce-on, actually coalesces).
  for (const KeywordSet& q : queries) dep.search(q);

  dep.index->reset_scan_stats();
  const std::uint64_t msg0 = dep.net->messages_sent();
  const std::uint64_t bytes0 = dep.net->metrics().counter("net.bytes");
  std::vector<double> latencies;
  latencies.reserve(queries.size());
  for (const KeywordSet& q : queries) {
    const sim::Time t0 = dep.clock.now();
    const index::SearchResult res = dep.search(q);
    latencies.push_back(static_cast<double>(dep.clock.now() - t0));
    cell.visits += static_cast<double>(res.stats.nodes_contacted);
    cell.rounds += static_cast<double>(res.stats.rounds);
    cell.batches += static_cast<double>(res.stats.coalesced_batches);
    cell.batched_visits += static_cast<double>(res.stats.coalesced_visits);
    cell.digests.push_back(digest(res.hits));
  }
  const double n = static_cast<double>(queries.size());
  cell.messages = static_cast<double>(dep.net->messages_sent() - msg0) / n;
  cell.bytes =
      static_cast<double>(dep.net->metrics().counter("net.bytes") - bytes0) /
      n;
  cell.visits /= n;
  cell.rounds /= n;
  cell.batches /= n;
  cell.batched_visits /= n;
  const std::vector<double> ps = percentiles(latencies, {0.5, 0.9, 0.99});
  cell.p50 = ps[0];
  cell.p90 = ps[1];
  cell.p99 = ps[2];
  const index::IndexTable::ScanStats scan = dep.index->scan_stats();
  cell.candidates = static_cast<double>(scan.candidates) / n;
  cell.rejects = static_cast<double>(scan.signature_rejects) / n;
  cell.checks = static_cast<double>(scan.subset_checks) / n;
  cell.matches = static_cast<double>(scan.matches) / n;
  cell.linear = static_cast<double>(scan.linear_equivalent) / n;
  return cell;
}

void print_cell(const Cell& c) {
  std::printf(
      "r=%-2d |q|=%zu coalesce=%-3s  msg/q %8.1f  bytes/q %10.0f  "
      "visits/q %7.1f  batches/q %6.1f  p50 %5.0f p99 %6.0f  "
      "cand/q %8.1f  linear/q %10.1f\n",
      c.r, c.query_size, c.coalesce ? "on" : "off", c.messages, c.bytes,
      c.visits, c.batches, c.p50, c.p99, c.candidates, c.linear);
}

}  // namespace

int main() {
  const std::size_t objects =
      hkws::bench::env_size("HYPERKWS_SEARCH_OBJECTS", 12000);
  const std::size_t queries =
      hkws::bench::env_size("HYPERKWS_SEARCH_QUERIES", 200);
  hkws::bench::banner("search_perf: superset-search wire and scan cost");
  std::printf("objects=%zu queries/cell=%zu peers=%zu\n", objects, queries,
              peer_count());

  const workload::Corpus corpus = hkws::bench::paper_corpus(objects);
  std::vector<Cell> cells;
  bool identical_hits = true;
  bool coalesce_saves = true;
  bool signature_sublinear = true;

  for (const int r : {8, 10}) {
    Deployment on(r, true, corpus);
    Deployment off(r, false, corpus);
    for (const std::size_t qsize : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}}) {
      const std::vector<KeywordSet> log = make_queries(
          corpus, qsize, queries,
          0x5ea4c4ULL ^ (static_cast<std::uint64_t>(r) << 8) ^ qsize);
      Cell a = run_cell(on, log, r, qsize, true);
      Cell b = run_cell(off, log, r, qsize, false);
      print_cell(a);
      print_cell(b);
      if (a.digests != b.digests) {
        std::printf("FAIL: hit sequences differ (r=%d |q|=%zu)\n", r, qsize);
        identical_hits = false;
      }
      if (a.messages > b.messages) {
        std::printf("FAIL: coalescing costs messages (r=%d |q|=%zu)\n", r,
                    qsize);
        coalesce_saves = false;
      }
      for (const Cell& c : {a, b})
        if (c.candidates >= c.linear && c.linear > 0) {
          std::printf("FAIL: signature scan not sublinear (r=%d |q|=%zu)\n",
                      r, qsize);
          signature_sublinear = false;
        }
      cells.push_back(std::move(a));
      cells.push_back(std::move(b));
    }
  }

  std::ofstream json("BENCH_search.json");
  json << "{\"objects\":" << objects << ",\"queries_per_cell\":" << queries
       << ",\"peers\":" << peer_count() << ",\"strategy\":\"level_parallel\""
       << ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (i) json << ",";
    json << "{\"r\":" << c.r << ",\"query_size\":" << c.query_size
         << ",\"coalesce\":" << (c.coalesce ? "true" : "false")
         << ",\"messages_per_query\":" << c.messages
         << ",\"bytes_per_query\":" << c.bytes
         << ",\"visits_per_query\":" << c.visits
         << ",\"rounds_per_query\":" << c.rounds
         << ",\"coalesced_batches_per_query\":" << c.batches
         << ",\"coalesced_visits_per_query\":" << c.batched_visits
         << ",\"latency_p50\":" << c.p50 << ",\"latency_p90\":" << c.p90
         << ",\"latency_p99\":" << c.p99
         << ",\"scan\":{\"candidates_per_query\":" << c.candidates
         << ",\"signature_rejects_per_query\":" << c.rejects
         << ",\"subset_checks_per_query\":" << c.checks
         << ",\"matches_per_query\":" << c.matches
         << ",\"linear_equivalent_per_query\":" << c.linear << "}}";
  }
  json << "],\"checks\":{\"identical_hits\":"
       << (identical_hits ? "true" : "false")
       << ",\"coalesce_saves_messages\":"
       << (coalesce_saves ? "true" : "false") << ",\"signature_sublinear\":"
       << (signature_sublinear ? "true" : "false") << "}}\n";
  json.close();
  std::printf("wrote BENCH_search.json\n");

  const bool ok = identical_hits && coalesce_saves && signature_sublinear;
  if (!ok) std::printf("search_perf: FAILED acceptance checks\n");
  return ok ? 0 : 1;
}
