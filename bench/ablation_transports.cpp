// Ablation: the same keyword-index workload on the three substrates the
// paper admits (§2.1, §3.2, §3.4):
//   * Chord-mapped   — hypercube nodes hashed onto a successor-routing DHT
//   * Pastry-mapped  — same, over prefix routing (generalized-DHT claim)
//   * HyperCuP       — physical hypercube, tree-forwarding search
//   * Mirrored       — Chord-mapped with a secondary hypercube (§3.4)
// Reported: total simulated network messages per publish and per superset
// query, and the search latency proxy (sequential rounds / tree depth).
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "cubenet/hypercup_index.hpp"
#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "dht/pastry_network.hpp"
#include "index/mirrored.hpp"
#include "index/overlay_index.hpp"

namespace {

using namespace hkws;

constexpr int kR = 8;
constexpr std::size_t kPeers = 64;
constexpr std::size_t kObjects = 4000;

struct Sample {
  double publish_msgs = 0;
  double query_msgs = 0;
  double query_rounds = 0;
  double query_hits = 0;
};

template <typename PublishFn, typename QueryFn>
Sample run_workload(sim::EventQueue& clock, sim::Network& net,
                    const workload::Corpus& corpus,
                    const std::vector<KeywordSet>& queries,
                    PublishFn&& publish, QueryFn&& query) {
  Sample s;
  const auto before_publish = net.metrics().counter("net.messages");
  for (const auto& rec : corpus.records()) publish(rec);
  clock.run();
  s.publish_msgs =
      static_cast<double>(net.metrics().counter("net.messages") -
                          before_publish) /
      static_cast<double>(corpus.size());

  double rounds = 0, hits = 0;
  const auto before_query = net.metrics().counter("net.messages");
  for (const auto& q : queries) {
    const index::SearchResult r = query(q);
    rounds += static_cast<double>(std::max(r.stats.rounds, r.stats.levels));
    hits += static_cast<double>(r.hits.size());
  }
  s.query_msgs = static_cast<double>(net.metrics().counter("net.messages") -
                                     before_query) /
                 static_cast<double>(queries.size());
  s.query_rounds = rounds / static_cast<double>(queries.size());
  s.query_hits = hits / static_cast<double>(queries.size());
  return s;
}

void print_row(const char* name, const Sample& s) {
  std::printf("%-14s %14.1f %13.1f %13.1f %11.1f\n", name, s.publish_msgs,
              s.query_msgs, s.query_rounds, s.query_hits);
}

}  // namespace

int main() {
  const auto corpus = bench::paper_corpus(kObjects);
  const auto gen = bench::paper_queries(corpus, 1000);
  std::vector<KeywordSet> queries;
  for (std::size_t m = 1; m <= 3; ++m)
    for (const auto& q : gen.popular_sets(m, 7)) queries.push_back(q);

  bench::banner("Transport ablation — same index workload, four substrates");
  std::printf("%-14s %14s %13s %13s %11s\n", "substrate", "publish msg/obj",
              "query msgs", "latency", "hits");

  {  // Chord-mapped
    sim::EventQueue clock;
    sim::Network net(clock);
    auto chord = dht::ChordNetwork::build(net, kPeers, {});
    dht::Dolr dolr(chord);
    index::OverlayIndex idx(dolr, {.r = kR});
    const auto s = run_workload(
        clock, net, corpus, queries,
        [&](const workload::ObjectRecord& rec) {
          idx.publish(1 + rec.id % kPeers, rec.id, rec.keywords);
        },
        [&](const KeywordSet& q) {
          std::optional<index::SearchResult> out;
          idx.superset_search(1, q, 0,
                              index::SearchStrategy::kTopDownSequential,
                              [&](const index::SearchResult& r) { out = r; });
          clock.run();
          return out.value_or(index::SearchResult{});
        });
    print_row("Chord", s);
  }
  {  // Pastry-mapped
    sim::EventQueue clock;
    sim::Network net(clock);
    auto pastry = dht::PastryNetwork::build(net, kPeers, {});
    dht::Dolr dolr(pastry);
    index::OverlayIndex idx(dolr, {.r = kR});
    const auto s = run_workload(
        clock, net, corpus, queries,
        [&](const workload::ObjectRecord& rec) {
          idx.publish(1 + rec.id % kPeers, rec.id, rec.keywords);
        },
        [&](const KeywordSet& q) {
          std::optional<index::SearchResult> out;
          idx.superset_search(1, q, 0,
                              index::SearchStrategy::kTopDownSequential,
                              [&](const index::SearchResult& r) { out = r; });
          clock.run();
          return out.value_or(index::SearchResult{});
        });
    print_row("Pastry", s);
  }
  {  // Physical hypercube (2^r peers)
    sim::EventQueue clock;
    sim::Network net(clock);
    cubenet::HyperCupNetwork cup(net, {.r = kR});
    cubenet::HyperCupIndex idx(cup, {});
    const auto s = run_workload(
        clock, net, corpus, queries,
        [&](const workload::ObjectRecord& rec) {
          idx.insert(rec.id % cup.size(), rec.id, rec.keywords);
        },
        [&](const KeywordSet& q) {
          std::optional<index::SearchResult> out;
          idx.superset_search(0, q, 0,
                              [&](const index::SearchResult& r) { out = r; });
          clock.run();
          return out.value_or(index::SearchResult{});
        });
    print_row("HyperCuP", s);
  }
  {  // Mirrored (secondary hypercube) over Chord
    sim::EventQueue clock;
    sim::Network net(clock);
    auto chord = dht::ChordNetwork::build(net, kPeers, {});
    dht::Dolr dolr(chord);
    index::MirroredIndex idx(dolr, {.r = kR});
    const auto s = run_workload(
        clock, net, corpus, queries,
        [&](const workload::ObjectRecord& rec) {
          idx.publish(1 + rec.id % kPeers, rec.id, rec.keywords);
        },
        [&](const KeywordSet& q) {
          std::optional<index::SearchResult> out;
          idx.superset_search(1, q, 0,
                              index::SearchStrategy::kTopDownSequential,
                              [&](const index::SearchResult& r) { out = r; });
          clock.run();
          return out.value_or(index::SearchResult{});
        });
    print_row("Mirrored", s);
  }

  std::printf(
      "\nShape check: Chord and Pastry agree on hits; HyperCuP spends\n"
      "fewer messages per query (tree edges instead of DHT routing) at\n"
      "tree-depth latency; Mirrored costs ~2x messages for fault\n"
      "tolerance of the index itself.\n");
  return 0;
}
