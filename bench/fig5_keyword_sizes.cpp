// Figure 5 + Table 1 — the distribution of keyword set sizes in the corpus
// (paper: 131,180 PCHome records, mean 7.3 keywords) and sample records.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace hkws;
  const auto corpus = bench::paper_corpus();

  bench::banner("Table 1 — sample records (synthetic PCHome substitute)");
  std::printf("%-8s %-12s %-32s %-12s %s\n", "ID", "Title", "URL", "Category",
              "Keywords");
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& rec = corpus[i * 11];
    std::printf("%-8llu %-12s %-32s %-12s %s\n",
                static_cast<unsigned long long>(rec.id), rec.title.c_str(),
                rec.url.c_str(), rec.category.c_str(),
                rec.keywords.to_string().c_str());
  }

  bench::banner("Figure 5 — distribution of keyword set sizes");
  const auto hist = corpus.keyword_size_histogram();
  std::printf("objects             = %llu\n",
              static_cast<unsigned long long>(hist.total()));
  std::printf("mean keywords       = %.2f   (paper: 7.3)\n",
              corpus.mean_keywords());
  std::printf("distinct keywords   = %llu\n",
              static_cast<unsigned long long>(corpus.vocabulary_size()));
  std::printf("\n%-6s %-10s %-8s %s\n", "size", "objects", "pct", "histogram");
  for (const auto& [size, count] : hist.bins()) {
    const double pct = 100.0 * hist.fraction(size);
    std::string bar(static_cast<std::size_t>(pct * 2.0), '#');
    std::printf("%-6lld %-10llu %6.2f%% %s\n", static_cast<long long>(size),
                static_cast<unsigned long long>(count), pct, bar.c_str());
  }
  return 0;
}
