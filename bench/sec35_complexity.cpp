// §3.5 — complexity of the operations, validated on the real message
// protocol over the Chord overlay (not the cost model):
//
//   pin search       1 routed query (O(log n) hops) + 1 direct reply
//   insert / delete  1 reference placement + 1 index-entry message
//   superset search  <= 2 * 2^(r - |One(F_h(K))|) coordination messages;
//                    sequential time ~ subcube size; level-parallel time
//                    r - |One| rounds
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "index/overlay_index.hpp"

int main() {
  using namespace hkws;
  constexpr std::size_t kPeers = 64;
  constexpr int kR = 8;

  sim::EventQueue clock;
  sim::Network net(clock);
  auto dht = dht::ChordNetwork::build(net, kPeers, {});
  dht::Dolr dolr(dht);
  index::OverlayIndex overlay(dolr, {.r = kR, .cache_capacity = 0});

  const auto corpus = bench::paper_corpus(2000);

  bench::banner("Insert cost (paper: one lookup for the reference, one for "
                "the index entry)");
  double dolr_hops = 0, index_hops = 0;
  std::size_t indexed = 0;
  for (const auto& rec : corpus.records()) {
    overlay.publish(1 + rec.id % kPeers, rec.id, rec.keywords,
                    [&](const index::OverlayIndex::PublishResult& r) {
                      dolr_hops += r.dolr_hops;
                      index_hops += r.index_hops;
                      indexed += r.indexed ? 1 : 0;
                    });
  }
  clock.run();
  std::printf("objects published      = %zu (all first copies: %zu)\n",
              corpus.size(), indexed);
  std::printf("avg reference hops     = %.2f (O(log %zu) ~ %.1f)\n",
              dolr_hops / static_cast<double>(corpus.size()), kPeers,
              std::log2(static_cast<double>(kPeers)));
  std::printf("avg index-entry hops   = %.2f\n",
              index_hops / static_cast<double>(corpus.size()));

  bench::banner("Pin search (paper: 1 query message + 1 result message)");
  double pin_msgs = 0, pin_nodes = 0;
  int pins = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    std::optional<index::SearchResult> res;
    overlay.pin_search(1, corpus[i * 17].keywords,
                       [&](const index::SearchResult& r) { res = r; });
    clock.run();
    if (!res) continue;
    pin_msgs += static_cast<double>(res->stats.messages);
    pin_nodes += static_cast<double>(res->stats.nodes_contacted);
    ++pins;
  }
  std::printf("avg messages = %.2f (= routed hops + direct reply)\n",
              pin_msgs / pins);
  std::printf("avg index nodes touched = %.2f (paper: exactly 1)\n",
              pin_nodes / pins);

  bench::banner("Superset search vs the 2 * 2^(r-|One|) message bound");
  std::printf("%-4s %-6s %-9s %-9s %-10s %-10s %-8s %-8s\n", "m", "|One|",
              "subcube", "nodes", "messages", "bound", "seqRnds", "parLvls");
  const auto queries = bench::paper_queries(corpus, 1000);
  for (std::size_t m = 1; m <= 4; ++m) {
    const auto sets = queries.popular_sets(m, 5);
    for (const auto& q : sets) {
      const auto root = overlay.responsible_node(q);
      const auto ones = cube::Hypercube::one_count(root);
      const auto subcube = overlay.cube().subcube_size(root);

      // Warm the contact caches so coordination messages are direct, as in
      // the paper's cost model; then measure.
      std::optional<index::SearchResult> warmup;
      overlay.superset_search(1, q, 0,
                              index::SearchStrategy::kTopDownSequential,
                              [&](const index::SearchResult& r) { warmup = r; });
      clock.run();
      std::optional<index::SearchResult> seq, par;
      overlay.superset_search(1, q, 0,
                              index::SearchStrategy::kTopDownSequential,
                              [&](const index::SearchResult& r) { seq = r; });
      clock.run();
      overlay.superset_search(1, q, 0, index::SearchStrategy::kLevelParallel,
                              [&](const index::SearchResult& r) { par = r; });
      clock.run();
      if (!seq || !par) continue;
      std::printf("%-4zu %-6d %-9llu %-9zu %-10zu %-10llu %-8zu %-8zu\n", m,
                  ones, static_cast<unsigned long long>(subcube),
                  seq->stats.nodes_contacted, seq->stats.messages,
                  static_cast<unsigned long long>(2 * subcube + 2),
                  seq->stats.rounds, par->stats.levels);
    }
  }
  std::printf("\nlevel-parallel rounds should equal r - |One| + 1 = the\n"
              "subcube dimension + 1 (the paper's r - |One| speed-up).\n");

  // --- Simulated wall-clock latency under random per-message delays -------
  bench::banner("Search latency in simulated time (per-message delay 1-10)");
  {
    sim::EventQueue clock2;
    sim::Network net2(clock2, std::make_unique<sim::UniformLatency>(1, 10),
                      7);
    auto dht2 = dht::ChordNetwork::build(net2, kPeers, {});
    dht::Dolr dolr2(dht2);
    index::OverlayIndex idx(dolr2, {.r = kR});
    for (const auto& rec : corpus.records())
      idx.publish(1 + rec.id % kPeers, rec.id, rec.keywords);
    clock2.run();

    std::printf("%-4s %-9s %14s %14s %8s\n", "m", "subcube", "sequential",
                "parallel", "ratio");
    for (std::size_t m = 1; m <= 3; ++m) {
      for (const auto& q : queries.popular_sets(m, 3)) {
        const auto subcube =
            idx.cube().subcube_size(idx.responsible_node(q));
        // Warm contacts so both strategies pay direct-message latencies.
        std::optional<index::SearchResult> tmp;
        idx.superset_search(1, q, 0,
                            index::SearchStrategy::kTopDownSequential,
                            [&](const index::SearchResult& r) { tmp = r; });
        clock2.run();
        const auto t0 = clock2.now();
        idx.superset_search(1, q, 0,
                            index::SearchStrategy::kTopDownSequential,
                            [&](const index::SearchResult& r) { tmp = r; });
        clock2.run();
        const auto seq_time = clock2.now() - t0;
        const auto t1 = clock2.now();
        idx.superset_search(1, q, 0, index::SearchStrategy::kLevelParallel,
                            [&](const index::SearchResult& r) { tmp = r; });
        clock2.run();
        const auto par_time = clock2.now() - t1;
        std::printf("%-4zu %-9llu %14llu %14llu %7.1fx\n", m,
                    static_cast<unsigned long long>(subcube),
                    static_cast<unsigned long long>(seq_time),
                    static_cast<unsigned long long>(par_time),
                    par_time == 0
                        ? 0.0
                        : static_cast<double>(seq_time) /
                              static_cast<double>(par_time));
      }
    }
    std::printf("(sequential time grows with the subcube size; parallel\n"
                "time with its dimension — the paper's §3.5 distinction)\n");
  }
  return 0;
}
