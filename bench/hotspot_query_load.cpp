// Hot-spot experiment (paper §1 + §3.4 remarks): how is the *query* load —
// messages received per node — distributed across nodes over a day of
// skewed queries?
//
//  * DII: every query on keyword w hits the single node owning w, so the
//    nodes owning popular keywords are hammered ("the system is vulnerable
//    to hot spots").
//  * Hypercube, cacheless: a query spreads over its whole subhypercube, so
//    query load is diffused across many nodes.
//  * Hypercube, cached: repeats collapse onto the query's root node — the
//    residual hot spot the paper §3.4 acknowledges for "very popular
//    keyword sets" — but each contact is a cheap cached answer rather than
//    a posting-list shipment; the per-node byte load stays low.
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "analysis/load_metrics.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "dii/inverted_index.hpp"
#include "index/logical_index.hpp"
#include "index/query_cache.hpp"

namespace {

using namespace hkws;

struct LoadSummary {
  double gini = 0;
  double top_share = 0;       // heaviest node's share of all contacts
  double top5pct_share = 0;   // share of the heaviest 5% of nodes
};

LoadSummary summarize(const std::vector<double>& loads) {
  LoadSummary s;
  s.gini = gini(loads);
  double total = 0, top = 0;
  for (double l : loads) {
    total += l;
    top = std::max(top, l);
  }
  s.top_share = total > 0 ? top / total : 0;
  const auto curve = ranked_load_curve(loads);
  for (const auto& p : curve) {
    if (p.node_fraction >= 0.05) {
      s.top5pct_share = p.load_fraction;
      break;
    }
  }
  return s;
}

void print_row(const char* name, const LoadSummary& s) {
  std::printf("%-24s %8.3f %12.2f%% %14.1f%%\n", name, s.gini,
              100.0 * s.top_share, 100.0 * s.top5pct_share);
}

}  // namespace

int main() {
  constexpr int kR = 10;
  const auto corpus = bench::paper_corpus();

  workload::QueryLogConfig qcfg;
  qcfg.query_count = bench::query_count();
  qcfg.max_keyword_df = 0.0005;  // discriminative query terms
  workload::QueryLogGenerator gen(corpus, qcfg);
  const auto log = gen.generate();

  index::LogicalIndex idx({.r = kR});
  dii::InvertedIndex dii({.r = kR});
  for (const auto& rec : corpus.records()) {
    idx.insert(rec.id, rec.keywords);
    dii.insert(rec.id, rec.keywords);
  }

  // Per-distinct-query traversal profiles (visited prefix is deterministic).
  std::unordered_map<KeywordSet, index::LogicalIndex::TraversalProfile,
                     KeywordSetHash>
      profiles;
  for (const auto& q : gen.universe())
    profiles.emplace(q, idx.traversal_profile(q));
  // Precompute each distinct query's full BFS visit order once.
  std::unordered_map<KeywordSet, std::vector<cube::CubeId>, KeywordSetHash>
      orders;
  for (const auto& q : gen.universe()) {
    const auto& p = profiles.at(q);
    orders.emplace(q, cube::SpanningBinomialTree(idx.cube(), p.root)
                          .bfs_order());
  }

  const std::size_t nodes = 1ULL << kR;
  std::vector<double> cacheless(nodes, 0), cached(nodes, 0),
      dii_load(nodes, 0), dii_bytes(nodes, 0), cached_bytes(nodes, 0);

  // Hypercube, cacheless: every query touches its full subcube (100%
  // recall); bytes ~ entries scanned are omitted (contact count is the
  // paper's unit).
  for (const auto& q : log.queries()) {
    const auto& order = orders.at(q.keywords);
    for (cube::CubeId w : order) cacheless[static_cast<std::size_t>(w)] += 1;
  }

  // Hypercube with the alpha = 1/6 result cache (as in Fig. 9).
  {
    const auto capacity = static_cast<std::size_t>(
        (1.0 / 6.0) * static_cast<double>(corpus.size()) /
        static_cast<double>(nodes));
    std::unordered_map<cube::CubeId, index::QueryCache> caches;
    for (const auto& q : log.queries()) {
      const auto& p = profiles.at(q.keywords);
      auto cit = caches.try_emplace(p.root, capacity).first;
      const index::CachedTraversal* hit = cit->second.lookup(q.keywords);
      if (hit != nullptr && hit->complete) {
        cached[static_cast<std::size_t>(p.root)] += 1;  // root answers alone
        cached_bytes[static_cast<std::size_t>(p.root)] +=
            static_cast<double>(p.total_hits);
      } else {
        const auto& order = orders.at(q.keywords);
        for (cube::CubeId w : order) cached[static_cast<std::size_t>(w)] += 1;
        index::CachedTraversal summary;
        summary.contributors.emplace_back(
            p.root, static_cast<std::uint32_t>(p.total_hits));
        summary.complete = true;
        cit->second.insert(q.keywords, std::move(summary));
      }
    }
  }

  // DII: one contact per query keyword at the keyword's node; bytes = the
  // posting list it ships back.
  {
    // Byte proxy per contact: the keyword's posting-list length (what the
    // node ships to the searcher for intersection).
    std::unordered_map<Keyword, std::uint64_t> df;
    for (const auto& [w, c] : corpus.keyword_frequencies()) df[w] = c;
    for (const auto& q : log.queries()) {
      for (const auto& w : q.keywords) {
        const auto n = static_cast<std::size_t>(dii.node_of(w));
        dii_load[n] += 1;
        dii_bytes[n] += static_cast<double>(df[w]);
      }
    }
  }

  bench::banner("Query-load distribution across nodes (one day of queries)");
  std::printf("%-24s %8s %13s %15s\n", "scheme", "gini", "hottest node",
              "top-5% nodes");
  print_row("Hypercube (no cache)", summarize(cacheless));
  print_row("Hypercube (cache 1/6)", summarize(cached));
  print_row("DII", summarize(dii_load));

  bench::banner("Result-shipping volume (entries sent; absolute counts)");
  auto shipping_row = [&](const char* name, const std::vector<double>& v) {
    double total = 0, hottest = 0;
    for (double x : v) {
      total += x;
      hottest = std::max(hottest, x);
    }
    std::printf("%-24s %14.0f %18.0f\n", name, total, hottest);
  };
  std::printf("%-24s %14s %18s\n", "scheme", "total entries",
              "hottest node sends");
  shipping_row("Hypercube (cache 1/6)", cached_bytes);
  shipping_row("DII (posting lists)", dii_bytes);

  std::printf(
      "\nShape check: DII concentrates query contacts on the popular\n"
      "keywords' nodes (hottest node tens of times the hypercube's share),\n"
      "and every contact ships a full posting list, several times the\n"
      "total volume the hypercube ships. The hypercube's residual shipping\n"
      "hot spot is the root of the most popular query (§3.4's caveat),\n"
      "which sends exact result sets rather than raw posting lists.\n");
  return 0;
}
