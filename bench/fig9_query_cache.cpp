// Figure 9 — superset-search cost with per-node FIFO caches, as a function
// of the relative cache capacity alpha (capacity = alpha * |O| / 2^r cached
// result entries per node).
//
// Policy reproduced (paper §3.4/§4): the root node of a query caches the
// query's results; a repeated query is answered by the root alone, so only
// the cache-miss traffic explores the subhypercube. FIFO replacement,
// occupancy counted in cached result entries — the same unit as the index
// size the capacity is expressed in.
//
// Expected shape (paper): the contacted fraction collapses as alpha grows;
// with alpha ~ 1/6 of the average index size, under a query log whose
// top-10 queries are >60% of the volume, fewer than ~1% of nodes are
// contacted per query even at 100% recall.
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "index/logical_index.hpp"
#include "index/query_cache.hpp"

namespace {

using hkws::index::CachedTraversal;
using hkws::index::LogicalIndex;
using hkws::index::QueryCache;

// Cache-occupancy accounting for one cached query result. The paper's
// capacity unit ("alpha x the average index size") is ambiguous between:
//  * per-object accounting — every cached result object is one record,
//    exactly like the |O|/2^r index-size figure counts objects; and
//  * combined-entry accounting — a whole cached result list is one entry,
//    the way index tables combine <K, {sigma_1..sigma_n}> (paper §3.3).
// The harness reports both; they bracket the paper's setting.
CachedTraversal result_summary(const LogicalIndex::TraversalProfile& p,
                               std::uint64_t nodes_visited,
                               bool per_object_accounting) {
  CachedTraversal summary;
  std::uint64_t cached_hits = 0;
  for (const auto& c : p.contributors) {
    if (c.position >= nodes_visited) break;
    cached_hits += c.count;
    if (per_object_accounting) {
      for (std::uint32_t i = 0; i < c.count; ++i)
        summary.contributors.emplace_back(c.node, 1u);
    }
  }
  if (!per_object_accounting && cached_hits > 0)
    summary.contributors.emplace_back(p.root,
                                      static_cast<std::uint32_t>(cached_hits));
  summary.complete = nodes_visited >= p.total_nodes;
  return summary;
}

// Results available in a cached summary (works under both accountings).
std::uint64_t cached_total(const CachedTraversal& c) {
  std::uint64_t total = 0;
  for (const auto& [node, count] : c.contributors) total += count;
  return total;
}

}  // namespace

int main() {
  using namespace hkws;
  const auto corpus = bench::paper_corpus();

  // Query-eligible keywords are discriminative (df-capped): real users
  // query specific terms, and this is what makes result caching effective.
  workload::QueryLogConfig qcfg;
  qcfg.query_count = bench::query_count();
  // Selectivity calibration: directory queries resolve to a handful of
  // entries (PCHome queries are specific site names/topics), so query
  // keywords are capped at ~0.01% document frequency and multi-keyword
  // queries dominate. This is what lets popular results fit a small cache.
  qcfg.max_keyword_df = 0.0001;
  qcfg.size_weights = {0.25, 0.35, 0.25, 0.10, 0.05};
  // Repeat-rate calibration: the paper reports only the top-10 share
  // (>60%/day); the distinct-query count per day is the remaining free
  // parameter and bounds the best achievable hit rate from below
  // (first occurrences always miss). ~2000 distinct queries/day gives a
  // ~1% unavoidable-miss floor at 178k queries.
  qcfg.distinct_queries = 2000;
  workload::QueryLogGenerator gen(corpus, qcfg);
  const auto log = gen.generate();
  std::printf("query log: %zu queries, %zu distinct, top-10 share %.1f%%\n",
              log.size(), gen.universe().size(), 100.0 * log.top_share(10));

  const std::vector<double> kAlphas = {0.0,      1.0 / 24, 1.0 / 12, 1.0 / 6,
                                       1.0 / 3,  1.0 / 2,  1.0,      2.0};
  for (int r : {10, 12}) {
    LogicalIndex idx({.r = r});
    for (const auto& rec : corpus.records())
      idx.insert(rec.id, rec.keywords);
    const double nodes = static_cast<double>(idx.cube().node_count());
    const double avg_index =
        static_cast<double>(corpus.size()) / nodes;  // |O| / 2^r

    // One traversal profile per distinct query (cost is deterministic).
    std::unordered_map<KeywordSet, LogicalIndex::TraversalProfile,
                       KeywordSetHash>
        profiles;
    for (const auto& q : gen.universe())
      profiles.emplace(q, idx.traversal_profile(q));

    for (const bool per_object : {true, false}) {
      char title[128];
      std::snprintf(title, sizeof title,
                    "Figure 9 — r = %d, %s accounting (avg index size %.0f "
                    "entries/node)",
                    r, per_object ? "per-object" : "combined-entry",
                    avg_index);
      bench::banner(title);
      std::printf("%-10s %16s %16s %12s\n", "alpha", "recall=100%",
                  "recall=50%", "hit-rate");

      for (double alpha : kAlphas) {
        const auto capacity = static_cast<std::size_t>(alpha * avg_index);
        double sums[2] = {0, 0};
        double hit_rate_100 = 0;
        const double recalls[2] = {1.0, 0.5};
        for (int ri = 0; ri < 2; ++ri) {
          std::unordered_map<cube::CubeId, QueryCache> caches;
          std::uint64_t hits = 0;
          double total_pct = 0;
          for (const auto& q : log.queries()) {
            const auto& p = profiles.at(q.keywords);
            const auto target = static_cast<std::uint64_t>(std::ceil(
                recalls[ri] * static_cast<double>(p.total_hits)));
            auto cit = caches.try_emplace(p.root, capacity).first;
            const CachedTraversal* cached = cit->second.lookup(q.keywords);
            if (cached != nullptr &&
                (cached->complete || cached_total(*cached) >= target)) {
              // Served by the root from its cached results: 1 node.
              total_pct += 1.0 / nodes;
              ++hits;
            } else {
              const std::uint64_t visited = p.nodes_to_collect(target);
              total_pct += static_cast<double>(visited) / nodes;
              cit->second.insert(q.keywords,
                                 result_summary(p, visited, per_object));
            }
          }
          sums[ri] = 100.0 * total_pct / static_cast<double>(log.size());
          if (ri == 0)
            hit_rate_100 = 100.0 * static_cast<double>(hits) /
                           static_cast<double>(log.size());
        }
        std::printf("%-10.4f %15.3f%% %15.3f%% %11.1f%%\n", alpha, sums[0],
                    sums[1], hit_rate_100);
      }
    }
  }
  std::printf(
      "\nShape check: at alpha >= 1/6 and 100%% recall the contacted\n"
      "fraction should fall to ~1%% or below (paper: <1%%).\n");
  return 0;
}
