// The paper's generality claim (§2.1): the keyword-search layer sits on a
// *generalized* DHT. These tests run the same DOLR and hypercube-index
// workloads over both overlay implementations (Chord successor routing and
// Pastry prefix routing) and assert identical search semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "dht/pastry_network.hpp"
#include "index/logical_index.hpp"
#include "index/mirrored.hpp"
#include "index/overlay_index.hpp"

namespace hkws {
namespace {

using index::Hit;
using index::SearchResult;

std::set<ObjectId> ids_of(const std::vector<Hit>& hits) {
  std::set<ObjectId> out;
  for (const Hit& h : hits) out.insert(h.object);
  return out;
}

enum class Kind { kChord, kPastry };

// A full stack over either overlay, selected at construction.
struct Stack {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::Overlay> overlay;
  std::unique_ptr<dht::Dolr> dolr;
  std::unique_ptr<index::OverlayIndex> index;

  Stack(Kind kind, std::size_t peers, index::OverlayIndex::Config cfg) {
    net = std::make_unique<sim::Network>(clock);
    if (kind == Kind::kChord) {
      overlay = std::make_unique<dht::ChordNetwork>(
          dht::ChordNetwork::build(*net, peers, {}));
    } else {
      overlay = std::make_unique<dht::PastryNetwork>(
          dht::PastryNetwork::build(*net, peers, {}));
    }
    dolr = std::make_unique<dht::Dolr>(*overlay, dht::Dolr::Config{3});
    index = std::make_unique<index::OverlayIndex>(*dolr, cfg);
  }

  SearchResult superset(const KeywordSet& q, std::size_t t = 0) {
    std::optional<SearchResult> result;
    index->superset_search(1, q, t,
                           index::SearchStrategy::kTopDownSequential,
                           [&](const SearchResult& r) { result = r; });
    clock.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(SearchResult{});
  }
};

std::map<ObjectId, KeywordSet> random_objects(std::size_t n,
                                              std::uint64_t seed) {
  std::map<ObjectId, KeywordSet> out;
  Rng rng(seed);
  for (ObjectId id = 1; id <= n; ++id) {
    std::vector<Keyword> words;
    const int size = 1 + static_cast<int>(rng.next_below(5));
    for (int i = 0; i < size; ++i)
      words.push_back("w" + std::to_string(rng.next_below(25)));
    out[id] = KeywordSet(std::move(words));
  }
  return out;
}

class OverlayGenerality : public ::testing::TestWithParam<Kind> {};

TEST_P(OverlayGenerality, DolrRoundTrip) {
  Stack s(GetParam(), 32, {.r = 6});
  s.dolr->insert(3, 42);
  s.clock.run();
  std::optional<dht::Dolr::ReadResult> read;
  s.dolr->read(7, 42, [&](const auto& r) { read = r; });
  s.clock.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->holders, std::vector<sim::EndpointId>{3});
  std::optional<dht::Dolr::DeleteResult> del;
  s.dolr->remove(3, 42, [&](const auto& r) { del = r; });
  s.clock.run();
  EXPECT_TRUE(del->last_copy);
}

TEST_P(OverlayGenerality, SearchMatchesOracle) {
  Stack s(GetParam(), 24, {.r = 6});
  const auto objects = random_objects(150, 41);
  std::size_t i = 0;
  for (const auto& [id, k] : objects)
    s.index->publish(1 + (i++ % 24), id, k);
  s.clock.run();

  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    auto it = objects.begin();
    std::advance(it, rng.next_below(objects.size()));
    const KeywordSet query({it->second.words().front()});
    std::set<ObjectId> expected;
    for (const auto& [id, k] : objects)
      if (query.subset_of(k)) expected.insert(id);
    EXPECT_EQ(ids_of(s.superset(query).hits), expected) << query.to_string();
  }
}

TEST_P(OverlayGenerality, PinSearchExact) {
  Stack s(GetParam(), 16, {.r = 6});
  s.index->publish(1, 1, KeywordSet({"a", "b"}));
  s.index->publish(2, 2, KeywordSet({"a", "b", "c"}));
  s.clock.run();
  std::optional<SearchResult> result;
  s.index->pin_search(3, KeywordSet({"a", "b"}),
                      [&](const SearchResult& r) { result = r; });
  s.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ids_of(result->hits), (std::set<ObjectId>{1}));
}

TEST_P(OverlayGenerality, ReplicationSurvivesOwnerFailure) {
  Stack s(GetParam(), 30, {.r = 6});
  std::optional<dht::Dolr::InsertResult> ins;
  s.dolr->insert(3, 99, [&](const auto& r) { ins = r; });
  s.clock.run();
  const auto owner_ep = s.overlay->endpoint_of(ins->owner);
  if (owner_ep == 3) return;  // publisher is the owner; skip this seed
  if (GetParam() == Kind::kChord) {
    auto& chord = dynamic_cast<dht::ChordNetwork&>(*s.overlay);
    chord.fail(owner_ep);
    for (int round = 0; round < 30; ++round) chord.stabilize_all();
  } else {
    auto& pastry = dynamic_cast<dht::PastryNetwork&>(*s.overlay);
    pastry.fail(owner_ep);
    pastry.repair_all();
  }
  std::optional<dht::Dolr::ReadResult> read;
  s.dolr->read(3, 99, [&](const auto& r) { read = r; });
  s.clock.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->holders, std::vector<sim::EndpointId>{3});
}

INSTANTIATE_TEST_SUITE_P(Overlays, OverlayGenerality,
                         ::testing::Values(Kind::kChord, Kind::kPastry),
                         [](const auto& info) {
                           return info.param == Kind::kChord ? "Chord"
                                                             : "Pastry";
                         });

TEST_P(OverlayGenerality, MirroredIndexWorksOnEitherOverlay) {
  Stack s(GetParam(), 24, {.r = 6});
  index::MirroredIndex mirrored(*s.dolr, {.r = 6});
  const auto objects = random_objects(80, 45);
  std::size_t i = 0;
  for (const auto& [id, k] : objects) mirrored.publish(1 + (i++ % 24), id, k);
  s.clock.run();
  const KeywordSet query({objects.begin()->second.words().front()});
  std::set<ObjectId> expected;
  for (const auto& [id, k] : objects)
    if (query.subset_of(k)) expected.insert(id);
  std::optional<SearchResult> result;
  mirrored.superset_search(1, query, 0,
                           index::SearchStrategy::kTopDownSequential,
                           [&](const SearchResult& r) { result = r; });
  s.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ids_of(result->hits), expected);
}

TEST_P(OverlayGenerality, CumulativeSessionWorksOnEitherOverlay) {
  Stack s(GetParam(), 16, {.r = 6});
  std::map<ObjectId, KeywordSet> objects;
  for (ObjectId o = 1; o <= 25; ++o)
    objects[o] = KeywordSet({"page", "v" + std::to_string(o)});
  std::size_t i = 0;
  for (const auto& [id, k] : objects) s.index->publish(1 + (i++ % 16), id, k);
  s.clock.run();

  const auto session = s.index->open_cumulative(1, KeywordSet({"page"}));
  std::set<ObjectId> collected;
  while (!s.index->cumulative_exhausted(session)) {
    std::optional<SearchResult> batch;
    s.index->cumulative_next(session, 6,
                             [&](const SearchResult& r) { batch = r; });
    s.clock.run();
    ASSERT_TRUE(batch.has_value());
    for (const auto& h : batch->hits)
      EXPECT_TRUE(collected.insert(h.object).second);
    if (batch->hits.empty()) break;
  }
  EXPECT_EQ(collected.size(), objects.size());
}

TEST(OverlayGenerality, BothOverlaysReturnIdenticalHitSets) {
  // Same objects, same queries, different routing substrate: the keyword
  // layer's answers must be identical.
  Stack chord(Kind::kChord, 24, {.r = 8});
  Stack pastry(Kind::kPastry, 24, {.r = 8});
  const auto objects = random_objects(200, 43);
  std::size_t i = 0;
  for (const auto& [id, k] : objects) {
    chord.index->publish(1 + (i % 24), id, k);
    pastry.index->publish(1 + (i % 24), id, k);
    ++i;
  }
  chord.clock.run();
  pastry.clock.run();

  Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    auto it = objects.begin();
    std::advance(it, rng.next_below(objects.size()));
    const KeywordSet query({it->second.words().front()});
    const auto a = chord.superset(query);
    const auto b = pastry.superset(query);
    EXPECT_EQ(ids_of(a.hits), ids_of(b.hits)) << query.to_string();
    // The logical traversal is identical too: same cube nodes visited.
    EXPECT_EQ(a.stats.nodes_contacted, b.stats.nodes_contacted);
  }
}

}  // namespace
}  // namespace hkws
