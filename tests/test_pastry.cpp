#include "dht/pastry_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.hpp"

namespace hkws::dht {
namespace {

struct PastryNet {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<PastryNetwork> dht;

  explicit PastryNet(std::size_t n, PastryNetwork::Config cfg = {}) {
    net = std::make_unique<sim::Network>(clock);
    dht = std::make_unique<PastryNetwork>(PastryNetwork::build(*net, n, cfg));
  }
};

TEST(PastryConfig, RejectsBadParameters) {
  sim::EventQueue clock;
  sim::Network net(clock);
  EXPECT_THROW(PastryNetwork(net, {.id_bits = 0}), std::invalid_argument);
  EXPECT_THROW(PastryNetwork(net, {.id_bits = 30, .digit_bits = 4}),
               std::invalid_argument);  // not a multiple
  EXPECT_THROW(PastryNetwork(net, {.leaf_size = 3}), std::invalid_argument);
  EXPECT_NO_THROW(PastryNetwork(net, {.id_bits = 32, .digit_bits = 4}));
}

TEST(PastryDigits, DigitExtractionMostSignificantFirst) {
  PastryNet t(1);
  // id_bits=32, digit_bits=4 -> 8 hex digits.
  EXPECT_EQ(t.dht->digit_count(), 8);
  const RingId id = 0xA1B2C3D4;
  EXPECT_EQ(t.dht->digit_at(id, 0), 0xA);
  EXPECT_EQ(t.dht->digit_at(id, 1), 0x1);
  EXPECT_EQ(t.dht->digit_at(id, 7), 0x4);
}

TEST(PastryDigits, SharedPrefixDigits) {
  PastryNet t(1);
  EXPECT_EQ(t.dht->shared_prefix_digits(0xA1B2C3D4, 0xA1B2C3D4), 8);
  EXPECT_EQ(t.dht->shared_prefix_digits(0xA1B2C3D4, 0xA1B2C3D5), 7);
  EXPECT_EQ(t.dht->shared_prefix_digits(0xA1B2C3D4, 0xA1FF0000), 2);
  EXPECT_EQ(t.dht->shared_prefix_digits(0xA0000000, 0xB0000000), 0);
}

TEST(PastryDigits, CircularDistanceIsSymmetricMin) {
  PastryNet t(1);
  EXPECT_EQ(t.dht->circular_distance(10, 20), 10u);
  EXPECT_EQ(t.dht->circular_distance(20, 10), 10u);
  // Near the wrap point the short way goes around zero.
  const RingId a = 0xFFFFFFF0, b = 0x10;
  EXPECT_EQ(t.dht->circular_distance(a, b), 0x20u);
}

TEST(PastryOwner, IsNumericallyClosestNode) {
  PastryNet t(40);
  const auto ids = t.dht->live_ids();
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId owner = t.dht->owner_of(key);
    for (RingId other : ids) {
      EXPECT_LE(t.dht->circular_distance(owner, key),
                t.dht->circular_distance(other, key))
          << "key " << key;
    }
  }
}

TEST(PastryBuild, LeafSetsAreNearestNeighbors) {
  PastryNet t(32);
  const auto ids = t.dht->live_ids();  // ascending
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const PastryNode& n = t.dht->node(ids[i]);
    ASSERT_EQ(n.leaf_cw().size(), 4u);
    ASSERT_EQ(n.leaf_ccw().size(), 4u);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(n.leaf_cw()[static_cast<std::size_t>(k)],
                ids[(i + static_cast<std::size_t>(k) + 1) % ids.size()]);
      EXPECT_EQ(n.leaf_ccw()[static_cast<std::size_t>(k)],
                ids[(i + ids.size() - static_cast<std::size_t>(k) - 1) %
                    ids.size()]);
    }
  }
}

TEST(PastryBuild, RoutingTableEntriesHaveCorrectPrefixes) {
  PastryNet t(64);
  for (RingId id : t.dht->live_ids()) {
    const PastryNode& n = t.dht->node(id);
    for (int row = 0; row < n.rows(); ++row) {
      for (int col = 0; col < n.columns(); ++col) {
        const auto entry = n.table_entry(row, col);
        if (!entry) continue;
        EXPECT_GE(t.dht->shared_prefix_digits(id, *entry), row);
        EXPECT_EQ(t.dht->digit_at(*entry, row), col);
      }
    }
  }
}

TEST(PastryLookup, ReachesOwnerFromEveryStart) {
  PastryNet t(64);
  Rng rng(2);
  for (int trial = 0; trial < 60; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId owner = t.dht->owner_of(key);
    for (RingId start : t.dht->live_ids()) {
      const auto r = t.dht->lookup_now(start, key, "test");
      EXPECT_EQ(r.owner, owner) << "start " << start << " key " << key;
    }
  }
}

TEST(PastryLookup, HopCountIsLogBase16) {
  PastryNet t(512);
  Rng rng(3);
  const auto ids = t.dht->live_ids();
  double total = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    total += t.dht->lookup_now(ids[rng.next_below(ids.size())], key, "t").hops;
  }
  const double avg = total / 500;
  // log_16(512) ~ 2.25; prefix routing should stay in that ballpark.
  EXPECT_LT(avg, 2.0 * std::log2(512.0) / 4.0 + 1.0);
  EXPECT_GT(avg, 0.5);
}

TEST(PastryRoute, AsyncAgreesWithSyncLookup) {
  PastryNet t(48);
  Rng rng(4);
  const auto ids = t.dht->live_ids();
  for (int trial = 0; trial < 40; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    const auto sync = t.dht->lookup_now(start, key, "sync");
    bool called = false;
    t.dht->route(t.dht->endpoint_of(start), key, "async", 8,
                 [&](const Overlay::RouteResult& r) {
                   called = true;
                   EXPECT_EQ(r.owner, sync.owner);
                   EXPECT_EQ(r.hops, sync.hops);
                 });
    t.clock.run();
    EXPECT_TRUE(called);
  }
}

TEST(PastrySingleNode, OwnsEverything) {
  PastryNet t(1);
  const RingId only = t.dht->live_ids().front();
  EXPECT_EQ(t.dht->owner_of(0), only);
  EXPECT_EQ(t.dht->owner_of(~0ULL), only);
  const auto r = t.dht->lookup_now(only, 42, "t");
  EXPECT_EQ(r.owner, only);
  EXPECT_EQ(r.hops, 0);
}

TEST(PastryJoin, IntegratesAndRoutesCorrectly) {
  sim::EventQueue clock;
  sim::Network net(clock);
  PastryNetwork dht(net, {});
  dht.create(1);
  for (sim::EndpointId e = 2; e <= 24; ++e) dht.join(e, 1);
  dht.repair_all();
  EXPECT_EQ(dht.size(), 24u);
  Rng rng(5);
  const auto ids = dht.live_ids();
  for (int trial = 0; trial < 200; ++trial) {
    const RingId key = dht.space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    EXPECT_EQ(dht.lookup_now(start, key, "t").owner, dht.owner_of(key));
  }
}

TEST(PastryJoin, TakesOverClosestKeys) {
  sim::EventQueue clock;
  sim::Network net(clock);
  PastryNetwork dht(net, {});
  const RingId first = dht.create(1);
  for (std::uint64_t k = 0; k < 64; ++k)
    dht.node(first).add_ref(
        StoredRef{dht.space().clamp(k * 0x04040404ULL), k, 1});
  const std::size_t before = dht.node(first).ref_count();
  dht.join(2, 1);
  std::size_t total = 0;
  for (RingId id : dht.live_ids()) {
    for (const auto& ref : dht.node(id).all_refs())
      EXPECT_EQ(dht.owner_of(ref.key), id) << "misplaced ref";
    total += dht.node(id).ref_count();
  }
  EXPECT_EQ(total, before);
}

TEST(PastryLeave, HandsOffReferences) {
  PastryNet t(10);
  const auto ids = t.dht->live_ids();
  const RingId leaver = ids[4];
  t.dht->node(leaver).add_ref(StoredRef{leaver, 77, 5});
  t.dht->leave(t.dht->endpoint_of(leaver));
  EXPECT_EQ(t.dht->size(), 9u);
  const RingId new_owner = t.dht->owner_of(leaver);
  EXPECT_FALSE(t.dht->node(new_owner).refs_of(77).empty());
}

TEST(PastryFail, RepairRestoresRouting) {
  PastryNet t(64);
  Rng rng(6);
  for (int k = 0; k < 12; ++k) {
    const auto live = t.dht->live_ids();
    t.dht->fail(t.dht->endpoint_of(live[rng.next_below(live.size())]));
  }
  t.dht->repair_all();
  EXPECT_EQ(t.dht->size(), 52u);
  const auto ids = t.dht->live_ids();
  for (int trial = 0; trial < 200; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    EXPECT_EQ(t.dht->lookup_now(start, key, "t").owner, t.dht->owner_of(key));
  }
}

TEST(PastryFail, RoutingSurvivesUnrepairedFailures) {
  // Between a failure and the next repair pass, live nodes still hold
  // pointers to dead ones; next-hop selection must skip them and still
  // reach the correct surviving owner via the leaf sets.
  PastryNet t(64);
  Rng rng(7);
  for (int k = 0; k < 5; ++k) {
    const auto live = t.dht->live_ids();
    t.dht->fail(t.dht->endpoint_of(live[rng.next_below(live.size())]));
  }
  // NO repair_all() here.
  const auto ids = t.dht->live_ids();
  int reached = 0, total = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    const auto r = t.dht->lookup_now(start, key, "t");
    ++total;
    if (r.owner == t.dht->owner_of(key)) ++reached;
  }
  // Leaf-set fallback should keep nearly all lookups correct; a handful
  // may land on a live neighbor of the true owner when the dead node was
  // the only routing-table entry for a prefix region.
  EXPECT_GE(reached, total * 95 / 100) << reached << "/" << total;
}

TEST(PastryReplicas, TargetsAreLeafNeighbors) {
  PastryNet t(20);
  const RingId owner = t.dht->live_ids()[3];
  const auto targets = t.dht->replica_targets(owner, 4);
  ASSERT_EQ(targets.size(), 4u);
  const PastryNode& n = t.dht->node(owner);
  for (RingId x : targets) {
    const bool in_leaf =
        std::find(n.leaf_cw().begin(), n.leaf_cw().end(), x) !=
            n.leaf_cw().end() ||
        std::find(n.leaf_ccw().begin(), n.leaf_ccw().end(), x) !=
            n.leaf_ccw().end();
    EXPECT_TRUE(in_leaf);
    EXPECT_NE(x, owner);
  }
}

class PastryScales : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PastryScales, LookupCorrectAtEveryScale) {
  PastryNet t(GetParam());
  Rng rng(8);
  const auto ids = t.dht->live_ids();
  for (int trial = 0; trial < 100; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    EXPECT_EQ(t.dht->lookup_now(start, key, "t").owner, t.dht->owner_of(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, PastryScales,
                         ::testing::Values(1, 2, 3, 5, 17, 100, 257));

}  // namespace
}  // namespace hkws::dht
