// TcpTransport runtime tests: delivery over real loopback sockets, the
// dispatch strand's serialization guarantee, timers, and — the property the
// rest of the repo depends on — counter-for-counter accounting parity with
// the simulator backend for the same send sequence.
//
// These tests exercise real threads and sockets; the CI tsan job runs this
// binary under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace hkws::net {
namespace {

using namespace std::chrono_literals;

constexpr auto kIdle = 5s;  // generous; loopback settles in milliseconds

TcpTransport::Config fast_config() {
  TcpTransport::Config cfg;
  cfg.tick = std::chrono::microseconds{100};
  return cfg;
}

TEST(TcpTransport, LocalSendIsFreeAndAsync) {
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  std::atomic<int> ran{0};
  t.send(1, 1, "kws.t_query", 64, [&] { ++ran; });
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(t.metrics().counter("net.local"), 1u);
  EXPECT_EQ(t.metrics().counter("net.messages"), 0u);
  EXPECT_EQ(t.metrics().counter("net.bytes"), 0u);
  EXPECT_EQ(t.metrics().counter("net.delivered"), 0u);
}

TEST(TcpTransport, UnregisteredDestinationDrops) {
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  std::atomic<int> ran{0};
  t.send(1, 99, "dolr.read", 32, [&] { ++ran; });
  t.register_endpoint(2);
  t.unregister_endpoint(2);
  t.send(1, 2, "dolr.read", 32, [&] { ++ran; });
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(t.metrics().counter("net.dropped"), 2u);
  EXPECT_EQ(t.metrics().counter("net.dropped.dolr.read"), 2u);
  EXPECT_EQ(t.metrics().counter("net.messages"), 0u);
}

TEST(TcpTransport, WireSendDeliversThroughSocketAndCounts) {
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  std::atomic<int> ran{0};
  t.send(1, 2, "kws.t_query", 200, [&] { ++ran; });
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(t.metrics().counter("net.messages"), 1u);
  EXPECT_EQ(t.metrics().counter("net.bytes"), 200u);
  EXPECT_EQ(t.metrics().counter("msg.kws.t_query"), 1u);
  EXPECT_EQ(t.metrics().counter("net.delivered"), 1u);
  EXPECT_GT(t.metrics().counter("net.wire_bytes"), 0u);  // real frames moved
  EXPECT_EQ(t.decode_errors(), 0u);
}

TEST(TcpTransport, OpaqueKindCrossesWire) {
  // Kinds without a registered wire id (ad-hoc maintenance pings) travel as
  // kOpaque envelopes carrying the label inline.
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  std::atomic<int> ran{0};
  t.send(1, 2, "maint.ping", 16, [&] { ++ran; });
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(t.metrics().counter("msg.maint.ping"), 1u);
  EXPECT_EQ(t.decode_errors(), 0u);
}

TEST(TcpTransport, ObserverSeesEveryWireSend) {
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  std::mutex mu;
  std::vector<SendRecord> seen;
  t.set_send_observer([&](const std::string& kind, const SendRecord& rec) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(kind, "dolr.insert");
    seen.push_back(rec);
  });
  for (int i = 0; i < 5; ++i) t.send(1, 2, "dolr.insert", 48, [] {});
  ASSERT_TRUE(t.wait_idle(kIdle));
  std::lock_guard<std::mutex> lk(mu);
  ASSERT_EQ(seen.size(), 5u);
  for (const SendRecord& r : seen) {
    EXPECT_EQ(r.from, 1u);
    EXPECT_EQ(r.to, 2u);
    EXPECT_EQ(r.bytes, 48u);
    EXPECT_FALSE(r.lost);
  }
}

TEST(TcpTransport, HandlersAreSerializedOnTheStrand) {
  // Many threads send concurrently; handlers must never overlap (the
  // protocol state machines are not thread-safe — the strand is the
  // guarantee that lets them run unchanged on this backend).
  TcpTransport t(fast_config());
  for (EndpointId id = 1; id <= 8; ++id) t.register_endpoint(id);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<int> ran{0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> senders;
  for (int th = 0; th < kThreads; ++th) {
    senders.emplace_back([&, th] {
      for (int i = 0; i < kPerThread; ++i) {
        const EndpointId from = static_cast<EndpointId>(1 + th);
        const EndpointId to = static_cast<EndpointId>(5 + (i % 4));
        t.send(from, to, "kws.t_query", 64, [&] {
          const int now_inside = ++inside;
          int prev = max_inside.load();
          while (now_inside > prev &&
                 !max_inside.compare_exchange_weak(prev, now_inside)) {
          }
          std::this_thread::yield();
          --inside;
          ++ran;
        });
      }
    });
  }
  for (auto& th : senders) th.join();
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
  EXPECT_EQ(max_inside.load(), 1);  // strict serialization
  EXPECT_EQ(t.metrics().counter("net.messages"),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(t.metrics().counter("net.delivered"),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(t.decode_errors(), 0u);
}

TEST(TcpTransport, TimersFireInDeadlineOrderAndCancel) {
  TcpTransport t(fast_config());
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> order;
  auto mark = [&](int v) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(v);
    cv.notify_all();
  };
  t.set_timer(40, [&] { mark(3); });
  t.set_timer(10, [&] { mark(1); });
  const auto cancelled = t.set_timer(20, [&] { mark(99); });
  t.set_timer(25, [&] { mark(2); });
  EXPECT_TRUE(t.cancel_timer(cancelled));
  EXPECT_FALSE(t.cancel_timer(cancelled));  // already gone
  EXPECT_FALSE(t.cancel_timer(0));
  std::unique_lock<std::mutex> lk(mu);
  ASSERT_TRUE(cv.wait_for(lk, kIdle, [&] { return order.size() >= 3; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TcpTransport, ScheduleInRunsOnStrandAndNowAdvances) {
  TcpTransport t(fast_config());
  const Time t0 = t.now();
  std::atomic<bool> ran{false};
  t.schedule_in(5, [&] { ran = true; });
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_TRUE(ran.load());
  EXPECT_GE(t.now(), t0 + 5);
}

TEST(TcpTransport, StopIsIdempotentAndJoins) {
  auto t = std::make_unique<TcpTransport>(fast_config());
  t->register_endpoint(1);
  t->register_endpoint(2);
  t->send(1, 2, "kws.done", 8, [] {});
  t->wait_idle(kIdle);
  t->stop();
  t->stop();
  t.reset();  // destructor stops again: no crash, no double close
}

// The connection-death accounting fix. Before it, a frame hitting a dead
// wire vanished silently: counted sent, never delivered, never lost — the
// conservation identity net.messages == net.delivered + net.lost broke, and
// no liveness signal fired. Now the loss is positive: net.dropped.conn +
// net.lost(.kind), the observer sees SendRecord.lost = true, and the
// peer-down hook fires (once per endpoint) for the failure detector.
TEST(TcpTransport, ConnectionDeathIsAccountedAsLoss) {
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  std::mutex mu;
  std::vector<SendRecord> seen;
  t.set_send_observer([&](const std::string& kind, const SendRecord& rec) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(kind, "kws.t_query");
    seen.push_back(rec);
  });
  t.send(1, 2, "kws.t_query", 64, [] {});
  ASSERT_TRUE(t.wait_idle(kIdle));

  t.sever_wire();
  std::atomic<int> ran{0};
  t.send(1, 2, "kws.t_query", 64, [&] { ++ran; });
  t.send(2, 1, "kws.t_query", 64, [&] { ++ran; });
  ASSERT_TRUE(t.wait_idle(kIdle));

  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(t.metrics().counter("net.messages"), 3u);
  EXPECT_EQ(t.metrics().counter("net.delivered"), 1u);
  EXPECT_EQ(t.metrics().counter("net.lost"), 2u);
  EXPECT_EQ(t.metrics().counter("net.lost.kws.t_query"), 2u);
  EXPECT_EQ(t.metrics().counter("net.dropped.conn"), 2u);
  // Conservation closes even across the wire's death.
  EXPECT_EQ(t.metrics().counter("net.messages"),
            t.metrics().counter("net.delivered") +
                t.metrics().counter("net.lost"));
  std::lock_guard<std::mutex> lk(mu);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_FALSE(seen[0].lost);
  EXPECT_TRUE(seen[1].lost);
  EXPECT_TRUE(seen[2].lost);
}

TEST(TcpTransport, PeerDownObserverFiresOncePerEndpoint) {
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  t.register_endpoint(3);
  std::mutex mu;
  std::vector<EndpointId> down;
  t.set_peer_down_observer([&](EndpointId ep) {
    std::lock_guard<std::mutex> lk(mu);
    down.push_back(ep);
  });
  t.sever_wire();
  // Several frames into the same dead connection: one report per endpoint,
  // not a storm.
  for (int i = 0; i < 4; ++i) t.send(1, 2, "kws.t_query", 16, [] {});
  t.send(1, 3, "kws.t_query", 16, [] {});
  ASSERT_TRUE(t.wait_idle(kIdle));
  {
    std::lock_guard<std::mutex> lk(mu);
    std::vector<EndpointId> sorted = down;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<EndpointId>{2, 3}));
  }
  // Re-registration resets the once-latch: the peer "came back", so a new
  // death must be reported again.
  t.register_endpoint(2);
  t.send(1, 2, "kws.t_query", 16, [] {});
  ASSERT_TRUE(t.wait_idle(kIdle));
  std::lock_guard<std::mutex> lk(mu);
  EXPECT_EQ(down.size(), 3u);
  EXPECT_EQ(down.back(), 2u);
}

TEST(TcpTransport, DrainAndStopCompletesPendingWorkThenStops) {
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) t.send(1, 2, "kws.t_query", 64, [&] { ++ran; });
  t.schedule_in(3, [&] { ++ran; });
  EXPECT_TRUE(t.drain_and_stop(std::chrono::milliseconds{5000}));
  EXPECT_EQ(ran.load(), 21);
  // After stop, the runtime refuses new timers instead of leaking them.
  EXPECT_EQ(t.set_timer(10, [] {}), 0u);
  EXPECT_FALSE(t.cancel_timer(1));
}

// TSan stress for the timer table: concurrent set/cancel/schedule from many
// threads racing the dispatch strand that fires them, plus live_timer_count
// reads — every shared-state path in the scheduler under contention.
TEST(TcpTransport, TimerStressConcurrentSetCancelFire) {
  TcpTransport t(fast_config());
  std::atomic<int> fired{0};
  std::atomic<int> cancelled{0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int th = 0; th < kThreads; ++th) {
    workers.emplace_back([&, th] {
      for (int i = 0; i < kPerThread; ++i) {
        // Mix near-immediate timers (race the strand's firing) with far
        // ones that the same thread cancels; every other iteration also
        // posts a plain event and polls the live count.
        const auto id = t.set_timer(1 + (i % 7), [&] { ++fired; });
        if (i % 2 == 0) {
          const auto far = t.set_timer(1000000, [] {});
          if (t.cancel_timer(far)) ++cancelled;
        }
        if (i % 3 == 0) t.schedule_in(0, [&] { ++fired; });
        if (i % 5 == 0) (void)t.live_timer_count();
        if (i % 11 == th) (void)t.cancel_timer(id);
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(t.wait_idle(kIdle));
  // Every far timer the loop armed was cancelled; nothing may still be
  // pending except near timers that already fired.
  EXPECT_EQ(cancelled, kThreads * (kPerThread / 2));
  EXPECT_GT(fired.load(), 0);
  // Let any last near-deadline timers fire, then the count must be zero.
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  EXPECT_EQ(t.live_timer_count(), 0u);
}

// The parity oracle: the exact send sequence, replayed against both
// backends, must produce identical protocol-level counters. (Wire-only
// counters — net.wire_bytes — are excluded: the simulator moves no frames.)
TEST(TransportParity, SimAndTcpCountIdentically) {
  struct Send {
    EndpointId from, to;
    const char* kind;
    std::size_t bytes;
  };
  const std::vector<Send> script = {
      {1, 2, "kws.t_query", 120}, {2, 1, "kws.t_cont", 17},
      {1, 1, "kws.results", 300}, {1, 42, "dolr.read", 32},  // 42 unregistered
      {2, 3, "maint.ping", 8},    {3, 2, "dolr.insert", 64},
      {1, 3, "kws.t_query", 120}, {3, 3, "kws.done", 8},
  };
  const std::vector<std::string> keys = {
      "net.messages", "net.bytes",  "net.local",
      "net.dropped",  "net.dropped.dolr.read",
      "msg.kws.t_query", "msg.kws.t_cont", "msg.kws.results",
      "msg.maint.ping",  "msg.dolr.insert", "msg.kws.done",
      "net.delivered"};

  sim::EventQueue clock;
  sim::Network simnet(clock);
  for (EndpointId id = 1; id <= 3; ++id) simnet.register_endpoint(id);
  for (const Send& s : script) simnet.send(s.from, s.to, s.kind, s.bytes, [] {});
  simnet.clock().run();

  TcpTransport tcp(fast_config());
  for (EndpointId id = 1; id <= 3; ++id) tcp.register_endpoint(id);
  for (const Send& s : script) tcp.send(s.from, s.to, s.kind, s.bytes, [] {});
  ASSERT_TRUE(tcp.wait_idle(kIdle));

  for (const std::string& key : keys) {
    EXPECT_EQ(tcp.metrics().counter(key), simnet.metrics().counter(key))
        << key;
  }
}

// Both backends satisfy the same abstract interface; drive them through
// Transport& only, the way every protocol layer does.
TEST(TransportParity, PolymorphicUseThroughTheInterface) {
  sim::EventQueue clock;
  sim::Network simnet(clock);
  TcpTransport tcp(fast_config());
  std::vector<Transport*> backends = {&simnet, &tcp};
  for (Transport* tr : backends) {
    tr->register_endpoint(7);
    EXPECT_TRUE(tr->is_registered(7));
    EXPECT_FALSE(tr->is_registered(8));
    std::atomic<int> ran{0};
    tr->send(7, 7, "kws.pin", 10, [&] { ++ran; });
    tr->schedule_in(1, [&] { ++ran; });
    const auto timer = tr->set_timer(1000000, [] {});
    EXPECT_TRUE(tr->cancel_timer(timer));
    if (tr == &simnet) {
      simnet.clock().run();
    } else {
      ASSERT_TRUE(tcp.wait_idle(kIdle));
    }
    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(tr->metrics().counter("net.local"), 1u);
  }
}

// Satellite of the runtime work: the obs tracing hook is written against
// the Transport interface, so the same attach_network() instruments wire
// sends on either backend. (The sim side is covered in test_obs; this
// pins the socket side.)
TEST(TransportParity, ObsTracingAttachesToBothBackends) {
  obs::Tracer tracer;
  TcpTransport tcp(fast_config());
  attach_network(tracer, tcp);  // through Transport&, not a concrete type
  tcp.register_endpoint(1);
  tcp.register_endpoint(2);
  tcp.send(1, 2, "kws.t_query", 64, [] {});
  tcp.send(2, 1, "kws.results", 32, [] {});
  ASSERT_TRUE(tcp.wait_idle(kIdle));
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].name, "kws.t_query");
  EXPECT_EQ(tracer.events()[1].name, "kws.results");
  EXPECT_EQ(tcp.metrics().counter("msg.kws.t_query"), 1u);
  EXPECT_EQ(tcp.metrics().counter("msg.kws.results"), 1u);
}

// --- Satellite regressions --------------------------------------------------

// Regression for the per-peer counter data race: sends bump PeerState
// counters under the shared (reader) side of peers_mu_, so two threads
// sending from the same endpoint raced on `++sent` before the counters
// became atomic. Run under TSan (the CI tsan job builds this binary) this
// test fails on the pre-fix code.
TEST(TcpTransport, ConcurrentSendsFromManyThreadsAreRaceFree) {
  TcpTransport t(fast_config());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  for (EndpointId id = 1; id <= kThreads + 1; ++id) t.register_endpoint(id);
  std::atomic<int> ran{0};
  std::vector<std::thread> senders;
  senders.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    senders.emplace_back([&t, &ran, i] {
      // Half the sends share endpoint 1 as the source — the exact shape of
      // the original race — and all target the same destination.
      const EndpointId from = (i % 2 == 0) ? 1 : static_cast<EndpointId>(i + 1);
      for (int j = 0; j < kPerThread; ++j)
        t.send(from, kThreads + 1, "kws.t_query", 32, [&ran] { ++ran; });
    });
  }
  for (std::thread& th : senders) th.join();
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
  EXPECT_EQ(t.metrics().counter("net.messages"),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(t.metrics().counter("net.delivered"),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(t.metrics().counter("net.lost"), 0u);
}

// Regression for the parked-handler leak: a frame that dies on the read
// side of the wire used to strand its parked entry forever — inflight_
// never decremented, so drain_and_stop() wedged until its timeout. The
// deadline sweep now reclaims the entry as a connection loss. Pre-fix,
// this test fails: wait_idle times out and net.dropped.conn stays 0.
TEST(TcpTransport, ParkedHandlerSweepReclaimsFramesDeadOnTheWire) {
  TcpTransport::Config cfg = fast_config();
  cfg.parked_ttl = std::chrono::milliseconds{100};  // fast sweep for the test
  TcpTransport t(cfg);
  t.register_endpoint(1);
  t.register_endpoint(2);
  t.drop_inbound(1);  // the io thread kills the next inbound frame
  std::atomic<int> ran{0};
  t.send(1, 2, "kws.t_query", 64, [&ran] { ++ran; });
  // The sweep must release the stranded slot well within the idle budget.
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 0);  // the handler was released, never executed
  EXPECT_EQ(t.metrics().counter("net.messages"), 1u);
  EXPECT_EQ(t.metrics().counter("net.delivered"), 0u);
  EXPECT_EQ(t.metrics().counter("net.lost"), 1u);
  EXPECT_EQ(t.metrics().counter("net.lost.kws.t_query"), 1u);
  EXPECT_EQ(t.metrics().counter("net.dropped.conn"), 1u);
  EXPECT_EQ(t.metrics().counter("net.dropped.fault"), 0u);
  // Conservation closes: the swallowed frame is attributed, not leaked.
  EXPECT_EQ(t.metrics().counter("net.messages"),
            t.metrics().counter("net.delivered") +
                t.metrics().counter("net.lost"));
  // A lost frame is packet death, not peer death: drain still succeeds.
  EXPECT_TRUE(t.drain_and_stop(std::chrono::milliseconds{2000}));
}

// Regression for the lane-selection division by zero: send() racing stop()
// used to compute `round_robin_ % out_fds_.size()` after the lanes were
// torn down. Sends after stop must be counted losses, not crashes.
TEST(TcpTransport, SendAfterStopIsCountedLossNotCrash) {
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  t.send(1, 2, "kws.t_query", 16, [] {});
  ASSERT_TRUE(t.wait_idle(kIdle));
  t.stop();
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    t.send(1, 2, "kws.t_query", 16, [&ran] { ++ran; });
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(t.metrics().counter("net.messages"), 9u);
  EXPECT_EQ(t.metrics().counter("net.delivered"), 1u);
  EXPECT_EQ(t.metrics().counter("net.lost"), 8u);
  EXPECT_EQ(t.metrics().counter("net.dropped.conn"), 8u);
  EXPECT_EQ(t.metrics().counter("net.messages"),
            t.metrics().counter("net.delivered") +
                t.metrics().counter("net.lost"));
}

// --- Cross-process payload delivery -----------------------------------------

// Two transport instances, each owning endpoints of one overlay, exchange
// real serialized messages: the peer-address table routes send_payload() to
// the owning instance, which decodes the inner frame and dispatches it to
// its payload handler. Accounting closes per instance: the sender counts
// net.messages + net.delivered + net.remote.out; the receiver counts only
// net.remote.in.
TEST(TcpTransport, PayloadCrossesBetweenInstancesBothDirections) {
  TcpTransport a(fast_config());
  TcpTransport b(fast_config());
  a.register_endpoint(1);
  b.register_endpoint(2);
  ASSERT_TRUE(a.set_peer_address(2, PeerAddr{"127.0.0.1", b.port()}));
  ASSERT_TRUE(b.set_peer_address(1, PeerAddr{"127.0.0.1", a.port()}));
  EXPECT_TRUE(a.has_peer_address(2));
  EXPECT_FALSE(a.has_peer_address(1));

  std::mutex mu;
  std::condition_variable cv;
  std::vector<QueryMsg> at_b;
  std::vector<HitsMsg> at_a;
  b.set_payload_handler([&](EndpointId from, EndpointId to, MsgKind kind,
                            const WireMessage& msg) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(from, 1u);
    EXPECT_EQ(to, 2u);
    EXPECT_EQ(kind, MsgKind::kKwsTQuery);
    at_b.push_back(std::get<QueryMsg>(msg));
    cv.notify_all();
  });
  a.set_payload_handler([&](EndpointId from, EndpointId to, MsgKind kind,
                            const WireMessage& msg) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(from, 2u);
    EXPECT_EQ(to, 1u);
    EXPECT_EQ(kind, MsgKind::kKwsResults);
    at_a.push_back(std::get<HitsMsg>(msg));
    cv.notify_all();
  });

  const QueryMsg query{7, 3, 1, 10, 0, {"keyword", "search"}};
  a.send_payload(1, 2, MsgKind::kKwsTQuery, WireMessage{query});
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, kIdle, [&] { return !at_b.empty(); }));
    EXPECT_EQ(at_b.front(), query);
  }

  HitsMsg hits;
  hits.request = 7;
  hits.node = 3;
  hits.hits.push_back(WireHit{99, {"keyword", "search", "extra"}});
  b.send_payload(2, 1, MsgKind::kKwsResults, WireMessage{hits});
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, kIdle, [&] { return !at_a.empty(); }));
    EXPECT_EQ(at_a.front(), hits);
  }
  ASSERT_TRUE(a.wait_idle(kIdle));
  ASSERT_TRUE(b.wait_idle(kIdle));

  // Sender-side conservation: a originated one wire message and the wire
  // accepted it; the receiving process does not count it delivered again.
  EXPECT_EQ(a.metrics().counter("net.messages"), 1u);
  EXPECT_EQ(a.metrics().counter("net.delivered"), 1u);
  EXPECT_EQ(a.metrics().counter("net.remote.out"), 1u);
  EXPECT_EQ(a.metrics().counter("net.remote.in"), 1u);
  EXPECT_EQ(a.metrics().counter("net.remote.in.kws.results"), 1u);
  EXPECT_EQ(a.metrics().counter("msg.kws.t_query"), 1u);
  EXPECT_EQ(b.metrics().counter("net.messages"), 1u);
  EXPECT_EQ(b.metrics().counter("net.delivered"), 1u);
  EXPECT_EQ(b.metrics().counter("net.remote.out"), 1u);
  EXPECT_EQ(b.metrics().counter("net.remote.in"), 1u);
  EXPECT_EQ(b.metrics().counter("net.remote.in.kws.t_query"), 1u);
  EXPECT_EQ(b.metrics().counter("msg.kws.results"), 1u);
  EXPECT_EQ(a.decode_errors(), 0u);
  EXPECT_EQ(b.decode_errors(), 0u);
}

// send_payload() to an endpoint with no peer address serializes through the
// local self-wire instead: same codec coverage, local accounting (no
// net.remote.*), handler dispatched on this instance's strand.
TEST(TcpTransport, PayloadWithoutAddressLoopsThroughLocalWire) {
  TcpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ControlMsg> got;
  t.set_payload_handler([&](EndpointId from, EndpointId to, MsgKind kind,
                            const WireMessage& msg) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(from, 1u);
    EXPECT_EQ(to, 2u);
    EXPECT_EQ(kind, MsgKind::kKwsTCont);
    got.push_back(std::get<ControlMsg>(msg));
    cv.notify_all();
  });
  const ControlMsg cont{5, 9, 2, false};
  t.send_payload(1, 2, MsgKind::kKwsTCont, WireMessage{cont});
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, kIdle, [&] { return !got.empty(); }));
    EXPECT_EQ(got.front(), cont);
  }
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(t.metrics().counter("net.messages"), 1u);
  EXPECT_EQ(t.metrics().counter("net.delivered"), 1u);
  EXPECT_EQ(t.metrics().counter("msg.kws.t_cont"), 1u);
  EXPECT_EQ(t.metrics().counter("net.remote.out"), 0u);
  EXPECT_EQ(t.metrics().counter("net.remote.in"), 0u);
  EXPECT_EQ(t.decode_errors(), 0u);
}

}  // namespace
}  // namespace hkws::net
