#include "dht/node_id.hpp"

#include <gtest/gtest.h>

namespace hkws::dht {
namespace {

TEST(RingSpace, ClampMasksHighBits) {
  RingSpace s(8);
  EXPECT_EQ(s.clamp(0x1FF), 0xFFu);
  EXPECT_EQ(s.clamp(0x100), 0u);
  RingSpace full(64);
  EXPECT_EQ(full.clamp(~0ULL), ~0ULL);
}

TEST(RingSpace, DistanceWrapsClockwise) {
  RingSpace s(8);
  EXPECT_EQ(s.distance(10, 20), 10u);
  EXPECT_EQ(s.distance(20, 10), 246u);  // 256 - 10
  EXPECT_EQ(s.distance(5, 5), 0u);
}

TEST(RingSpace, AddPow2Wraps) {
  RingSpace s(8);
  EXPECT_EQ(s.add_pow2(250, 3), (250 + 8) % 256);
  EXPECT_EQ(s.add_pow2(0, 7), 128u);
}

TEST(RingSpace, IntervalOcBasic) {
  RingSpace s(8);
  // (10, 20]
  EXPECT_FALSE(s.in_interval_oc(10, 10, 20));
  EXPECT_TRUE(s.in_interval_oc(11, 10, 20));
  EXPECT_TRUE(s.in_interval_oc(20, 10, 20));
  EXPECT_FALSE(s.in_interval_oc(21, 10, 20));
  EXPECT_FALSE(s.in_interval_oc(5, 10, 20));
}

TEST(RingSpace, IntervalOcWrapsAroundZero) {
  RingSpace s(8);
  // (250, 5]
  EXPECT_TRUE(s.in_interval_oc(255, 250, 5));
  EXPECT_TRUE(s.in_interval_oc(0, 250, 5));
  EXPECT_TRUE(s.in_interval_oc(5, 250, 5));
  EXPECT_FALSE(s.in_interval_oc(250, 250, 5));
  EXPECT_FALSE(s.in_interval_oc(6, 250, 5));
  EXPECT_FALSE(s.in_interval_oc(100, 250, 5));
}

TEST(RingSpace, IntervalOcFullCircleWhenEqual) {
  RingSpace s(8);
  // lo == hi: full circle (single-node ring owns every key).
  EXPECT_TRUE(s.in_interval_oc(0, 7, 7));
  EXPECT_TRUE(s.in_interval_oc(7, 7, 7));
  EXPECT_TRUE(s.in_interval_oc(200, 7, 7));
}

TEST(RingSpace, IntervalOoBasic) {
  RingSpace s(8);
  EXPECT_FALSE(s.in_interval_oo(10, 10, 20));
  EXPECT_TRUE(s.in_interval_oo(11, 10, 20));
  EXPECT_FALSE(s.in_interval_oo(20, 10, 20));
  EXPECT_TRUE(s.in_interval_oo(19, 10, 20));
}

TEST(RingSpace, IntervalOoWrap) {
  RingSpace s(8);
  EXPECT_TRUE(s.in_interval_oo(0, 250, 5));
  EXPECT_FALSE(s.in_interval_oo(5, 250, 5));
  EXPECT_FALSE(s.in_interval_oo(250, 250, 5));
}

TEST(RingSpace, IntervalOoEqualEndpointsIsAllButPoint) {
  RingSpace s(8);
  EXPECT_FALSE(s.in_interval_oo(9, 9, 9));
  EXPECT_TRUE(s.in_interval_oo(10, 9, 9));
  EXPECT_TRUE(s.in_interval_oo(8, 9, 9));
}

class RingSpaceBits : public ::testing::TestWithParam<int> {};

TEST_P(RingSpaceBits, ExhaustiveIntervalConsistency) {
  // For every (x, lo, hi) on a tiny ring: x in (lo,hi] iff x in (lo,hi) or
  // x == hi (when hi != lo).
  const int bits = GetParam();
  RingSpace s(bits);
  const std::uint64_t n = 1ULL << bits;
  for (std::uint64_t lo = 0; lo < n; ++lo)
    for (std::uint64_t hi = 0; hi < n; ++hi)
      for (std::uint64_t x = 0; x < n; ++x) {
        const bool oc = s.in_interval_oc(x, lo, hi);
        const bool oo = s.in_interval_oo(x, lo, hi);
        if (lo != hi) {
          EXPECT_EQ(oc, oo || x == hi)
              << "x=" << x << " lo=" << lo << " hi=" << hi;
        }
        if (oo) EXPECT_TRUE(oc);
      }
}

INSTANTIATE_TEST_SUITE_P(SmallRings, RingSpaceBits, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace hkws::dht
