#include "common/keyword.hpp"

#include <gtest/gtest.h>

namespace hkws {
namespace {

TEST(KeywordSet, CanonicalizesSortedUnique) {
  KeywordSet k({"news", "tv", "news", "anime"});
  ASSERT_EQ(k.size(), 3u);
  EXPECT_EQ(k.words()[0], "anime");
  EXPECT_EQ(k.words()[1], "news");
  EXPECT_EQ(k.words()[2], "tv");
}

TEST(KeywordSet, ConstructionOrderIrrelevant) {
  EXPECT_EQ(KeywordSet({"a", "b", "c"}), KeywordSet({"c", "a", "b"}));
}

TEST(KeywordSet, EmptySet) {
  KeywordSet k;
  EXPECT_TRUE(k.empty());
  EXPECT_EQ(k.size(), 0u);
  EXPECT_TRUE(k.subset_of(KeywordSet({"a"})));
  EXPECT_TRUE(k.subset_of(k));
}

TEST(KeywordSet, SubsetSuperset) {
  const KeywordSet small({"isp", "network"});
  const KeywordSet big({"download", "isp", "network", "telecom"});
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(big.superset_of(small));
  EXPECT_TRUE(small.subset_of(small));
}

TEST(KeywordSet, DisjointSetsAreNotSubsets) {
  const KeywordSet a({"x", "y"});
  const KeywordSet b({"p", "q"});
  EXPECT_FALSE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
}

TEST(KeywordSet, Contains) {
  const KeywordSet k({"news", "tvbs"});
  EXPECT_TRUE(k.contains("news"));
  EXPECT_FALSE(k.contains("sports"));
  EXPECT_FALSE(k.contains(""));
}

TEST(KeywordSet, UnionWith) {
  const KeywordSet a({"a", "b"});
  const KeywordSet b({"b", "c"});
  EXPECT_EQ(a.union_with(b), KeywordSet({"a", "b", "c"}));
  EXPECT_EQ(a.union_with(KeywordSet{}), a);
}

TEST(KeywordSet, Difference) {
  const KeywordSet a({"a", "b", "c"});
  const KeywordSet b({"b"});
  EXPECT_EQ(a.difference(b), KeywordSet({"a", "c"}));
  EXPECT_EQ(b.difference(a), KeywordSet{});
  EXPECT_EQ(a.difference(KeywordSet{}), a);
}

TEST(KeywordSet, HashIsOrderIndependentAndSeedDependent) {
  const KeywordSet a({"x", "y", "z"});
  const KeywordSet b({"z", "y", "x"});
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(1), a.hash(2));
  EXPECT_NE(a.hash(), KeywordSet({"x", "y"}).hash());
}

TEST(KeywordSet, HashDistinguishesSplitWords) {
  // {"ab"} vs {"a","b"} must differ (per-word hashing, not concatenation).
  EXPECT_NE(KeywordSet({"ab"}).hash(), KeywordSet({"a", "b"}).hash());
}

TEST(KeywordSet, ToString) {
  EXPECT_EQ(KeywordSet({"b", "a"}).to_string(), "a,b");
  EXPECT_EQ(KeywordSet{}.to_string(), "");
}

TEST(KeywordSet, OrderingIsLexicographic) {
  EXPECT_LT(KeywordSet({"a"}), KeywordSet({"b"}));
  EXPECT_LT(KeywordSet({"a"}), KeywordSet({"a", "b"}));
}

TEST(KeywordSet, SubsetTransitivityProperty) {
  const KeywordSet a({"1"});
  const KeywordSet b({"1", "2"});
  const KeywordSet c({"1", "2", "3"});
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_TRUE(b.subset_of(c));
  EXPECT_TRUE(a.subset_of(c));
}

}  // namespace
}  // namespace hkws
