#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace hkws::sim {
namespace {

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  m.count("a");
  m.count("a", 4);
  EXPECT_EQ(m.counter("a"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
}

TEST(Metrics, SamplesAndMean) {
  Metrics m;
  m.observe("lat", 1.0);
  m.observe("lat", 3.0);
  EXPECT_EQ(m.samples("lat").size(), 2u);
  EXPECT_DOUBLE_EQ(m.sample_mean("lat"), 2.0);
  EXPECT_EQ(m.sample_mean("none"), 0.0);
}

TEST(Metrics, ResetClearsEverything) {
  Metrics m;
  m.count("a");
  m.observe("b", 1);
  m.reset();
  EXPECT_EQ(m.counter("a"), 0u);
  EXPECT_TRUE(m.samples("b").empty());
}

TEST(Network, DeliversAfterLatency) {
  EventQueue clock;
  Network net(clock, std::make_unique<FixedLatency>(5));
  net.register_endpoint(1);
  net.register_endpoint(2);
  Time delivered_at = 0;
  net.send(1, 2, "test", 10, [&] { delivered_at = clock.now(); });
  clock.run();
  EXPECT_EQ(delivered_at, 5u);
}

TEST(Network, CountsMessagesBytesAndKinds) {
  EventQueue clock;
  Network net(clock);
  net.register_endpoint(1);
  net.register_endpoint(2);
  net.send(1, 2, "ping", 100, [] {});
  net.send(2, 1, "pong", 50, [] {});
  clock.run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.metrics().counter("net.bytes"), 150u);
  EXPECT_EQ(net.metrics().counter("msg.ping"), 1u);
  EXPECT_EQ(net.metrics().counter("msg.pong"), 1u);
}

TEST(Network, LocalSendIsFreeButStillAsync) {
  EventQueue clock;
  Network net(clock);
  net.register_endpoint(1);
  bool delivered = false;
  net.send(1, 1, "self", 10, [&] { delivered = true; });
  EXPECT_FALSE(delivered);  // not synchronous
  clock.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.metrics().counter("net.local"), 1u);
}

TEST(Network, DropsToUnregisteredEndpoint) {
  EventQueue clock;
  Network net(clock);
  net.register_endpoint(1);
  bool delivered = false;
  net.send(1, 99, "lost", 10, [&] { delivered = true; });
  clock.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.metrics().counter("net.dropped"), 1u);
  EXPECT_EQ(net.metrics().counter("net.dropped.lost"), 1u);
  EXPECT_EQ(net.messages_sent(), 0u);
}

TEST(Network, UnregisterStopsFutureDeliveries) {
  EventQueue clock;
  Network net(clock);
  net.register_endpoint(1);
  net.register_endpoint(2);
  net.unregister_endpoint(2);
  EXPECT_FALSE(net.is_registered(2));
  bool delivered = false;
  net.send(1, 2, "x", 1, [&] { delivered = true; });
  clock.run();
  EXPECT_FALSE(delivered);
}

TEST(Network, UniformLatencyStaysInBounds) {
  EventQueue clock;
  Network net(clock, std::make_unique<UniformLatency>(2, 6), 99);
  net.register_endpoint(1);
  net.register_endpoint(2);
  for (int i = 0; i < 50; ++i) {
    const Time sent = clock.now();
    Time got = 0;
    net.send(1, 2, "m", 1, [&, sent] { got = clock.now() - sent; });
    clock.run();
    EXPECT_GE(got, 2u);
    EXPECT_LE(got, 6u);
  }
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    EventQueue clock;
    Network net(clock, std::make_unique<UniformLatency>(1, 9), 7);
    net.register_endpoint(1);
    net.register_endpoint(2);
    std::vector<Time> arrivals;
    for (int i = 0; i < 20; ++i)
      net.send(1, 2, "m", 1, [&] { arrivals.push_back(clock.now()); });
    clock.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hkws::sim
