#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "sim/metrics.hpp"

namespace hkws::sim {
namespace {

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  m.count("a");
  m.count("a", 4);
  EXPECT_EQ(m.counter("a"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
}

TEST(Metrics, SamplesAndMean) {
  Metrics m;
  m.observe("lat", 1.0);
  m.observe("lat", 3.0);
  EXPECT_EQ(m.samples("lat").size(), 2u);
  EXPECT_DOUBLE_EQ(m.sample_mean("lat"), 2.0);
  EXPECT_EQ(m.sample_mean("none"), 0.0);
}

TEST(Metrics, ResetClearsEverything) {
  Metrics m;
  m.count("a");
  m.observe("b", 1);
  m.reset();
  EXPECT_EQ(m.counter("a"), 0u);
  EXPECT_TRUE(m.samples("b").empty());
}

TEST(Network, DeliversAfterLatency) {
  EventQueue clock;
  Network net(clock, std::make_unique<FixedLatency>(5));
  net.register_endpoint(1);
  net.register_endpoint(2);
  Time delivered_at = 0;
  net.send(1, 2, "test", 10, [&] { delivered_at = clock.now(); });
  clock.run();
  EXPECT_EQ(delivered_at, 5u);
}

TEST(Network, CountsMessagesBytesAndKinds) {
  EventQueue clock;
  Network net(clock);
  net.register_endpoint(1);
  net.register_endpoint(2);
  net.send(1, 2, "ping", 100, [] {});
  net.send(2, 1, "pong", 50, [] {});
  clock.run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.metrics().counter("net.bytes"), 150u);
  EXPECT_EQ(net.metrics().counter("msg.ping"), 1u);
  EXPECT_EQ(net.metrics().counter("msg.pong"), 1u);
}

TEST(Network, LocalSendIsFreeButStillAsync) {
  EventQueue clock;
  Network net(clock);
  net.register_endpoint(1);
  bool delivered = false;
  net.send(1, 1, "self", 10, [&] { delivered = true; });
  EXPECT_FALSE(delivered);  // not synchronous
  clock.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.metrics().counter("net.local"), 1u);
}

TEST(Network, DropsToUnregisteredEndpoint) {
  EventQueue clock;
  Network net(clock);
  net.register_endpoint(1);
  bool delivered = false;
  net.send(1, 99, "lost", 10, [&] { delivered = true; });
  clock.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.metrics().counter("net.dropped"), 1u);
  EXPECT_EQ(net.metrics().counter("net.dropped.lost"), 1u);
  EXPECT_EQ(net.messages_sent(), 0u);
}

TEST(Network, UnregisterStopsFutureDeliveries) {
  EventQueue clock;
  Network net(clock);
  net.register_endpoint(1);
  net.register_endpoint(2);
  net.unregister_endpoint(2);
  EXPECT_FALSE(net.is_registered(2));
  bool delivered = false;
  net.send(1, 2, "x", 1, [&] { delivered = true; });
  clock.run();
  EXPECT_FALSE(delivered);
}

TEST(Network, UniformLatencyStaysInBounds) {
  EventQueue clock;
  Network net(clock, std::make_unique<UniformLatency>(2, 6), 99);
  net.register_endpoint(1);
  net.register_endpoint(2);
  for (int i = 0; i < 50; ++i) {
    const Time sent = clock.now();
    Time got = 0;
    net.send(1, 2, "m", 1, [&, sent] { got = clock.now() - sent; });
    clock.run();
    EXPECT_GE(got, 2u);
    EXPECT_LE(got, 6u);
  }
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    EventQueue clock;
    Network net(clock, std::make_unique<UniformLatency>(1, 9), 7);
    net.register_endpoint(1);
    net.register_endpoint(2);
    std::vector<Time> arrivals;
    for (int i = 0; i < 20; ++i)
      net.send(1, 2, "m", 1, [&] { arrivals.push_back(clock.now()); });
    clock.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Network, BernoulliDropLosesAndCounts) {
  EventQueue clock;
  Network net(clock, std::make_unique<FixedLatency>(1), 3);
  net.register_endpoint(1);
  net.register_endpoint(2);
  net.set_drop_model(std::make_unique<BernoulliDrop>(0.5));
  EXPECT_TRUE(net.lossy());
  int delivered = 0;
  const int kSends = 400;
  for (int i = 0; i < kSends; ++i)
    net.send(1, 2, "m", 1, [&] { ++delivered; });
  clock.run();
  const auto lost = net.messages_lost();
  EXPECT_GT(lost, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered) + lost,
            static_cast<std::uint64_t>(kSends));
  // Lost messages still count as sent (they were put on the wire)...
  EXPECT_EQ(net.messages_sent(), static_cast<std::uint64_t>(kSends));
  // ...and are attributed per kind.
  EXPECT_EQ(net.metrics().counter("net.lost.m"), lost);
  // Roughly half at p=0.5 (fixed seed keeps this deterministic).
  EXPECT_GT(lost, 120u);
  EXPECT_LT(lost, 280u);
}

TEST(Network, LocalSendsAreExemptFromLoss) {
  EventQueue clock;
  Network net(clock, nullptr, 3);
  net.register_endpoint(1);
  net.set_drop_model(std::make_unique<BernoulliDrop>(1.0));  // drop all
  int delivered = 0;
  for (int i = 0; i < 10; ++i) net.send(1, 1, "m", 1, [&] { ++delivered; });
  clock.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(net.messages_lost(), 0u);
}

TEST(Network, LossyNetworkConvenienceDrops) {
  EventQueue clock;
  LossyNetwork net(clock, 1.0);  // every remote send vanishes
  net.register_endpoint(1);
  net.register_endpoint(2);
  int delivered = 0;
  net.send(1, 2, "m", 1, [&] { ++delivered; });
  clock.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.messages_lost(), 1u);
}

TEST(Network, LossIsDeterministicPerSeed) {
  auto run_once = [] {
    EventQueue clock;
    LossyNetwork net(clock, 0.3, nullptr, 17);
    net.register_endpoint(1);
    net.register_endpoint(2);
    std::vector<int> delivered;
    for (int i = 0; i < 50; ++i)
      net.send(1, 2, "m", 1, [&, i] { delivered.push_back(i); });
    clock.run();
    return delivered;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(LogNormalLatency, SamplesArePositiveAndMedianish) {
  Rng rng(5);
  LogNormalLatency model(30.0, 0.5);
  std::vector<double> xs;
  std::size_t below = 0;
  for (int i = 0; i < 4000; ++i) {
    const Time t = model.latency(1, 2, rng);
    EXPECT_GE(t, 1u);
    if (t < 30) ++below;
    xs.push_back(static_cast<double>(t));
  }
  // About half the mass below the median parameter.
  EXPECT_GT(below, 4000u * 40 / 100);
  EXPECT_LT(below, 4000u * 60 / 100);
  // Heavy tail: the max is far above the median.
  EXPECT_GT(*std::max_element(xs.begin(), xs.end()), 90.0);
}

TEST(LogNormalLatency, CapBoundsTheTail) {
  Rng rng(5);
  LogNormalLatency model(30.0, 0.8, 100);
  for (int i = 0; i < 2000; ++i) {
    const Time t = model.latency(1, 2, rng);
    EXPECT_GE(t, 1u);
    EXPECT_LE(t, 100u);
  }
}

TEST(Metrics, ReservoirCapsRetentionButKeepsExactCountAndMean) {
  Metrics m;
  m.set_reservoir("lat", 64);
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    m.observe("lat", i);
    sum += i;
  }
  EXPECT_EQ(m.samples("lat").size(), 64u);
  EXPECT_EQ(m.sample_count("lat"), 1000u);
  EXPECT_DOUBLE_EQ(m.sample_mean("lat"), sum / 1000.0);
  // The reservoir is a plausible uniform subsample: its mean is in the
  // bulk of the distribution, not stuck at either end.
  double rmean = 0;
  for (double v : m.samples("lat")) rmean += v;
  rmean /= 64.0;
  EXPECT_GT(rmean, 250.0);
  EXPECT_LT(rmean, 750.0);
}

TEST(Metrics, SetReservoirSubsamplesExistingSeries) {
  Metrics m;
  for (int i = 0; i < 500; ++i) m.observe("lat", i);
  EXPECT_EQ(m.samples("lat").size(), 500u);
  m.set_reservoir("lat", 10);
  EXPECT_EQ(m.samples("lat").size(), 10u);
  EXPECT_EQ(m.sample_count("lat"), 500u);
}

TEST(Metrics, DefaultReservoirAppliesToNewSeries) {
  Metrics m;
  m.set_default_reservoir(8);
  for (int i = 0; i < 100; ++i) m.observe("a", i);
  EXPECT_EQ(m.samples("a").size(), 8u);
  EXPECT_EQ(m.sample_count("a"), 100u);
}

TEST(Metrics, ReservoirShrinkPropertyHolds) {
  // Property: after shrinking a series via set_reservoir, (a) every retained
  // value is one of the observed values, (b) no observed value is retained
  // more often than it was observed, (c) count and mean stay exact, and
  // (d) further observations never grow retention past the cap.
  Metrics m;
  for (int i = 0; i < 1000; ++i) m.observe("lat", i);  // distinct values
  m.set_reservoir("lat", 37);
  std::vector<double> kept = m.samples("lat");
  EXPECT_EQ(kept.size(), 37u);
  std::sort(kept.begin(), kept.end());
  EXPECT_EQ(std::unique(kept.begin(), kept.end()), kept.end())
      << "a shrink must not duplicate observations";
  for (double v : kept) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1000.0);
    EXPECT_DOUBLE_EQ(v, std::floor(v));  // only observed (integer) values
  }
  EXPECT_EQ(m.sample_count("lat"), 1000u);
  EXPECT_DOUBLE_EQ(m.sample_mean("lat"), 999.0 / 2.0);
  for (int i = 1000; i < 2000; ++i) m.observe("lat", i);
  EXPECT_EQ(m.samples("lat").size(), 37u);
  EXPECT_EQ(m.sample_count("lat"), 2000u);
}

// --- Fault-injection plumbing -------------------------------------------------

/// Scripted per-sequence-number faults, keyed on the wire sequence number.
class ScriptedFaults final : public FaultModel {
 public:
  std::map<std::uint64_t, FaultActions> script;
  FaultActions inspect(EndpointId, EndpointId, const std::string&,
                       std::uint64_t seq, Rng&) override {
    const auto it = script.find(seq);
    return it == script.end() ? FaultActions{} : it->second;
  }
};

TEST(Network, FaultModelDropDupDelayAndConservation) {
  EventQueue clock;
  Network net(clock, std::make_unique<FixedLatency>(5));
  net.register_endpoint(1);
  net.register_endpoint(2);
  auto faults = std::make_unique<ScriptedFaults>();
  faults->script[0] = FaultActions{.drop = true};
  faults->script[1] = FaultActions{.duplicates = 2};
  faults->script[2] = FaultActions{.extra_delay = 40};
  net.set_fault_model(std::move(faults));

  int arrivals = 0;
  Time last_at = 0;
  for (int i = 0; i < 4; ++i)
    net.send(1, 2, "t", 8, [&] {
      ++arrivals;
      last_at = clock.now();
    });
  clock.run();
  // seq 0 dropped; seq 1 delivered 3x (original + 2 dups); seq 2 delayed to
  // t=45 (the latest arrival); seq 3 untouched.
  EXPECT_EQ(arrivals, 5);
  EXPECT_EQ(last_at, 45u);
  EXPECT_EQ(net.metrics().counter("net.dup"), 2u);
  EXPECT_EQ(net.metrics().counter("net.delayed"), 1u);
  EXPECT_EQ(net.messages_lost(), 1u);
  // Conservation: every wire message (duplicates included) was either
  // delivered or lost.
  EXPECT_EQ(net.messages_sent(), 6u);  // 4 sends + 2 duplicate copies
  EXPECT_EQ(net.messages_sent(), net.messages_delivered() + net.messages_lost());
}

TEST(Network, ConservationHoldsUnderRandomDropAndFaults) {
  EventQueue clock;
  LossyNetwork net(clock, 0.2, std::make_unique<UniformLatency>(1, 9), 7);
  net.register_endpoint(1);
  net.register_endpoint(2);

  /// Seeded random faults on every message kind.
  class RandomFaults final : public FaultModel {
   public:
    FaultActions inspect(EndpointId, EndpointId, const std::string&,
                         std::uint64_t, Rng& rng) override {
      FaultActions a;
      a.drop = rng.next_bool(0.1);
      if (rng.next_bool(0.1)) a.duplicates = 1 + rng.next_below(2);
      if (rng.next_bool(0.1)) a.extra_delay = rng.next_below(50);
      return a;
    }
  };
  net.set_fault_model(std::make_unique<RandomFaults>());
  for (int i = 0; i < 500; ++i) net.send(1, 2, "t", 8, [] {});
  clock.run();
  EXPECT_EQ(net.messages_sent(), net.messages_delivered() + net.messages_lost());
  EXPECT_GT(net.messages_lost(), 0u);
  EXPECT_GT(net.metrics().counter("net.dup"), 0u);
}

}  // namespace
}  // namespace hkws::sim
