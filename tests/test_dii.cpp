#include "dii/inverted_index.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/zipf.hpp"
#include "index/logical_index.hpp"

namespace hkws::dii {
namespace {

std::set<ObjectId> ids_of(const std::vector<index::Hit>& hits) {
  std::set<ObjectId> out;
  for (const auto& h : hits) out.insert(h.object);
  return out;
}

TEST(Dii, RejectsBadInput) {
  EXPECT_THROW(InvertedIndex({.r = 0}), std::invalid_argument);
  InvertedIndex idx({.r = 4});
  EXPECT_THROW(idx.insert(1, KeywordSet{}), std::invalid_argument);
  EXPECT_THROW(idx.search(KeywordSet{}), std::invalid_argument);
}

TEST(Dii, SingleKeywordQuery) {
  InvertedIndex idx({.r = 6});
  idx.insert(1, KeywordSet({"news", "tv"}));
  idx.insert(2, KeywordSet({"news"}));
  idx.insert(3, KeywordSet({"sports"}));
  const auto result = idx.search(KeywordSet({"news"}));
  EXPECT_EQ(ids_of(result.hits), (std::set<ObjectId>{1, 2}));
  EXPECT_EQ(result.stats.nodes_contacted, 1u);
  EXPECT_EQ(result.stats.messages, 2u);
}

TEST(Dii, ConjunctiveQueryIntersects) {
  InvertedIndex idx({.r = 8});
  idx.insert(1, KeywordSet({"a", "b", "c"}));
  idx.insert(2, KeywordSet({"a", "b"}));
  idx.insert(3, KeywordSet({"a", "c"}));
  EXPECT_EQ(ids_of(idx.search(KeywordSet({"a", "b"})).hits),
            (std::set<ObjectId>{1, 2}));
  EXPECT_EQ(ids_of(idx.search(KeywordSet({"a", "b", "c"})).hits),
            (std::set<ObjectId>{1}));
  EXPECT_TRUE(idx.search(KeywordSet({"b", "z"})).hits.empty());
}

TEST(Dii, HitsCarryFullKeywordSets) {
  InvertedIndex idx({.r = 6});
  idx.insert(1, KeywordSet({"a", "b", "c"}));
  const auto result = idx.search(KeywordSet({"a"}));
  ASSERT_EQ(result.hits.size(), 1u);
  EXPECT_EQ(result.hits[0].keywords, KeywordSet({"a", "b", "c"}));
}

TEST(Dii, InsertCostsOneNodePerKeyword) {
  InvertedIndex idx({.r = 10});
  const KeywordSet k({"k1", "k2", "k3", "k4", "k5"});
  idx.insert(1, k);
  std::size_t total = 0;
  for (std::size_t l : idx.loads()) total += l;
  EXPECT_EQ(total, 5u);  // one posting per keyword — the paper's k-fold cost
}

TEST(Dii, RemoveErasesAllPostings) {
  InvertedIndex idx({.r = 8});
  const KeywordSet k({"x", "y"});
  idx.insert(1, k);
  EXPECT_TRUE(idx.remove(1, k));
  EXPECT_FALSE(idx.remove(1, k));
  std::size_t total = 0;
  for (std::size_t l : idx.loads()) total += l;
  EXPECT_EQ(total, 0u);
  EXPECT_EQ(idx.object_count(), 0u);
}

TEST(Dii, ThresholdTruncates) {
  InvertedIndex idx({.r = 6});
  for (ObjectId o = 1; o <= 50; ++o)
    idx.insert(o, KeywordSet({"common", "u" + std::to_string(o)}));
  const auto result = idx.search(KeywordSet({"common"}), 7);
  EXPECT_EQ(result.hits.size(), 7u);
  EXPECT_FALSE(result.stats.complete);
}

TEST(Dii, MatchesOracleOnRandomCorpus) {
  InvertedIndex idx({.r = 8});
  std::map<ObjectId, KeywordSet> oracle;
  Rng rng(13);
  for (ObjectId o = 1; o <= 400; ++o) {
    std::vector<Keyword> words;
    const int n = 1 + static_cast<int>(rng.next_below(6));
    for (int i = 0; i < n; ++i)
      words.push_back("w" + std::to_string(rng.next_below(50)));
    oracle[o] = KeywordSet(std::move(words));
    idx.insert(o, oracle[o]);
  }
  for (int trial = 0; trial < 60; ++trial) {
    auto it = oracle.begin();
    std::advance(it, rng.next_below(oracle.size()));
    const KeywordSet query({it->second.words().front()});
    std::set<ObjectId> expected;
    for (const auto& [o, k] : oracle)
      if (query.subset_of(k)) expected.insert(o);
    EXPECT_EQ(ids_of(idx.search(query).hits), expected);
  }
}

TEST(Dii, HotSpotIsFarHeavierThanHypercubeUnderZipf) {
  // The paper's central load claim (Fig. 6): under Zipf keyword popularity
  // the DII concentrates load on the nodes owning popular keywords. The
  // robust signature is the heaviest node's share of total load: the DII's
  // hottest node carries the most popular keyword's full posting list,
  // while the hypercube scheme spreads those objects across the subcube.
  constexpr int kR = 8;
  InvertedIndex dii({.r = kR});
  index::LogicalIndex cube({.r = kR});
  Rng rng(14);
  ZipfDistribution zipf(2000, 1.0);
  for (ObjectId o = 1; o <= 5000; ++o) {
    std::set<std::size_t> ranks;
    const std::size_t n = 1 + rng.next_below(8);
    while (ranks.size() < n) ranks.insert(zipf.sample(rng));
    std::vector<Keyword> words;
    for (auto rank : ranks) words.push_back("kw" + std::to_string(rank));
    const KeywordSet k(std::move(words));
    dii.insert(o, k);
    cube.insert(o, k);
  }
  auto max_share = [](const std::vector<std::size_t>& loads) {
    std::size_t total = 0, max = 0;
    for (std::size_t l : loads) {
      total += l;
      max = std::max(max, l);
    }
    return static_cast<double>(max) / static_cast<double>(total);
  };
  const double dii_hot = max_share(dii.loads());
  const double cube_hot = max_share(cube.loads());
  EXPECT_GT(dii_hot, 2.0 * cube_hot)
      << "dii=" << dii_hot << " cube=" << cube_hot;
}

}  // namespace
}  // namespace hkws::dii
