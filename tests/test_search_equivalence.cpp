// Byte-identical equivalence of the superset-search fast path: the
// signature-indexed tables and the co-host VisitBatch coalescing are pure
// optimisations, so on seeded lossless runs the distributed OverlayIndex
// must produce the exact hit sequence (objects AND keyword sets, in order)
// of the in-process LogicalIndex reference — with coalescing on, with it
// off, with cold and with warm contact caches, and regardless of message
// latency, because hit assembly is deterministic in visit order. Ranking
// is applied on top and must agree too.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "cube/sbt.hpp"
#include "dht/chord_network.hpp"
#include "index/keyword_hash.hpp"
#include "index/logical_index.hpp"
#include "index/overlay_index.hpp"
#include "index/ranking.hpp"
#include "net/tcp_transport.hpp"

namespace hkws::index {
namespace {

constexpr int kR = 6;
constexpr std::size_t kPeers = 16;
constexpr std::size_t kObjects = 160;
constexpr std::size_t kVocab = 12;

std::map<ObjectId, KeywordSet> corpus(std::uint64_t seed) {
  std::map<ObjectId, KeywordSet> out;
  Rng rng(seed);
  for (ObjectId id = 1; id <= kObjects; ++id) {
    std::vector<Keyword> words;
    const std::size_t n = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < n; ++i)
      words.push_back("w" + std::to_string(rng.next_below(kVocab)));
    out[id] = KeywordSet(std::move(words));
  }
  return out;
}

struct Deployment {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<dht::Dolr> dolr;
  std::unique_ptr<OverlayIndex> index;

  Deployment(bool coalesce, std::unique_ptr<sim::LatencyModel> latency) {
    net = std::make_unique<sim::Network>(clock, std::move(latency));
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, kPeers, {}));
    dolr = std::make_unique<dht::Dolr>(*dht);
    index = std::make_unique<OverlayIndex>(
        *dolr, OverlayIndex::Config{.r = kR, .coalesce_visits = coalesce});
    for (const auto& [id, k] : corpus(0xc0ffee)) index->publish(1, id, k);
    clock.run();
  }

  SearchResult search(const KeywordSet& query, std::size_t threshold,
                      SearchStrategy strategy) {
    std::optional<SearchResult> result;
    index->superset_search(2, query, threshold, strategy,
                           [&](const SearchResult& r) { result = r; });
    clock.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(SearchResult{});
  }
};

std::vector<KeywordSet> probe_queries() {
  return {
      KeywordSet({"w0"}),       KeywordSet({"w3"}),
      KeywordSet({"w7"}),       KeywordSet({"w1", "w4"}),
      KeywordSet({"w2", "w8"}), KeywordSet({"w0", "w5", "w9"}),
  };
}

const std::vector<SearchStrategy> kStrategies = {
    SearchStrategy::kTopDownSequential,
    SearchStrategy::kBottomUpSequential,
    SearchStrategy::kLevelParallel,
};

// The distributed bottom-up traversal differs from LogicalIndex in exactly
// one documented way: the root scans its own table when the T_QUERY arrives
// (paper step 0), so its hits lead the sequence, whereas the in-process
// reference collects the root last. Reconstruct the overlay's expected
// sequence from the exhaustive reference: group hits by their home node
// F_h(K) (within-node order is table order either way), then concatenate
// root-first followed by the deepest-first visit order, cutting at the
// threshold the way the per-node room accounting does.
std::vector<Hit> bottom_up_reference(const std::vector<Hit>& exhaustive,
                                     const KeywordSet& query,
                                     std::size_t threshold) {
  const KeywordHasher hasher(kR);
  const cube::Hypercube cube(kR);
  const cube::CubeId root = hasher.responsible_node(query);
  std::map<cube::CubeId, std::vector<Hit>> groups;
  for (const Hit& h : exhaustive)
    groups[hasher.responsible_node(h.keywords)].push_back(h);
  std::vector<cube::CubeId> order{root};
  for (cube::CubeId w :
       cube::SpanningBinomialTree(cube, root).bottom_up_order())
    if (w != root) order.push_back(w);
  std::vector<Hit> out;
  for (cube::CubeId w : order) {
    const auto it = groups.find(w);
    if (it == groups.end()) continue;
    for (const Hit& h : it->second) {
      if (threshold != 0 && out.size() >= threshold) return out;
      out.push_back(h);
    }
  }
  return out;
}

std::vector<Hit> reference_hits(LogicalIndex& logical, const KeywordSet& q,
                                std::size_t threshold,
                                SearchStrategy strategy) {
  if (strategy == SearchStrategy::kBottomUpSequential) {
    const SearchResult full =
        logical.superset_search(q, 0, SearchStrategy::kTopDownSequential);
    return bottom_up_reference(full.hits, q, threshold);
  }
  return logical.superset_search(q, threshold, strategy).hits;
}

void expect_identical(const std::vector<Hit>& got, const std::vector<Hit>& ref,
                      const KeywordSet& query, const char* label) {
  ASSERT_EQ(got.size(), ref.size()) << label << " query=" << query.to_string();
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], ref[i])
        << label << " query=" << query.to_string() << " position " << i;
  }
  // Ranking is a stable sort over the sequence: identical input order means
  // identical ranked order, checked explicitly for both preferences.
  for (const auto pref :
       {RankingPreference::kGeneralFirst, RankingPreference::kSpecificFirst}) {
    std::vector<Hit> a = got, b = ref;
    order_hits(a, query, pref);
    order_hits(b, query, pref);
    ASSERT_EQ(a, b) << label << " ranked query=" << query.to_string();
  }
}

// Exhaustive searches: every strategy, coalescing on and off, cold and
// warm contact caches, against the LogicalIndex reference hit-for-hit.
TEST(SearchEquivalence, ExhaustiveMatchesLogicalByteForByte) {
  LogicalIndex logical({.r = kR});
  for (const auto& [id, k] : corpus(0xc0ffee)) logical.insert(id, k);

  Deployment on(true, nullptr), off(false, nullptr);
  std::size_t coalesced_batches = 0;
  for (const SearchStrategy strategy : kStrategies) {
    for (const KeywordSet& q : probe_queries()) {
      const std::vector<Hit> ref = reference_hits(logical, q, 0, strategy);
      // Two rounds: the first resolves contacts through the DHT (no
      // coalescing opportunities yet), the second runs on warm contacts
      // where co-hosted level nodes share one VisitBatch.
      for (int round = 0; round < 2; ++round) {
        const SearchResult a = on.search(q, 0, strategy);
        const SearchResult b = off.search(q, 0, strategy);
        expect_identical(a.hits, ref, q, "coalesce-on vs logical");
        expect_identical(b.hits, ref, q, "coalesce-off vs logical");
        EXPECT_TRUE(a.stats.complete);
        EXPECT_TRUE(b.stats.complete);
        coalesced_batches += a.stats.coalesced_batches;
        EXPECT_EQ(b.stats.coalesced_batches, 0u);
        if (round == 1 && strategy == SearchStrategy::kLevelParallel) {
          // Coalescing must not cost messages, and on warm contacts with
          // co-hosted nodes it must save some.
          EXPECT_LE(a.stats.messages, b.stats.messages)
              << "query=" << q.to_string();
        }
      }
    }
  }
  // The fast path actually engaged somewhere in the sweep.
  EXPECT_GT(coalesced_batches, 0u);
}

// Same equivalence under randomized per-message latency: visit-order hit
// assembly makes the sequence independent of arrival order.
TEST(SearchEquivalence, RandomLatencyDoesNotReorderHits) {
  LogicalIndex logical({.r = kR});
  for (const auto& [id, k] : corpus(0xc0ffee)) logical.insert(id, k);

  Deployment on(true, std::make_unique<sim::UniformLatency>(1, 23));
  Deployment off(false, std::make_unique<sim::UniformLatency>(2, 17));
  for (const SearchStrategy strategy : kStrategies) {
    for (const KeywordSet& q : probe_queries()) {
      const std::vector<Hit> ref = reference_hits(logical, q, 0, strategy);
      for (int round = 0; round < 2; ++round) {
        expect_identical(on.search(q, 0, strategy).hits, ref, q,
                         "coalesce-on random-latency");
        expect_identical(off.search(q, 0, strategy).hits, ref, q,
                         "coalesce-off random-latency");
      }
    }
  }
}

// Thresholded searches. Sequential strategies visit nodes one at a time,
// so the early-stopped prefix is deterministic and must match the logical
// reference exactly. Level-parallel scan timing is arrival-dependent by
// design, so there the coalesced and uncoalesced runs are held to the
// threshold contract rather than byte-compared against the reference.
TEST(SearchEquivalence, ThresholdedSequentialMatchesLogical) {
  LogicalIndex logical({.r = kR});
  for (const auto& [id, k] : corpus(0xc0ffee)) logical.insert(id, k);

  Deployment on(true, nullptr), off(false, nullptr);
  for (const SearchStrategy strategy : {SearchStrategy::kTopDownSequential,
                                        SearchStrategy::kBottomUpSequential}) {
    for (const KeywordSet& q : probe_queries()) {
      for (const std::size_t threshold : {std::size_t{3}, std::size_t{9}}) {
        const std::vector<Hit> ref =
            reference_hits(logical, q, threshold, strategy);
        for (int round = 0; round < 2; ++round) {
          expect_identical(on.search(q, threshold, strategy).hits, ref, q,
                           "thresholded coalesce-on");
          expect_identical(off.search(q, threshold, strategy).hits, ref, q,
                           "thresholded coalesce-off");
        }
      }
    }
  }
}

TEST(SearchEquivalence, ThresholdedLevelParallelHonorsContract) {
  LogicalIndex logical({.r = kR});
  for (const auto& [id, k] : corpus(0xc0ffee)) logical.insert(id, k);

  Deployment on(true, nullptr), off(false, nullptr);
  for (const KeywordSet& q : probe_queries()) {
    const SearchResult ref =
        logical.superset_search(q, 0, SearchStrategy::kLevelParallel);
    const std::size_t total = ref.hits.size();
    if (total == 0) continue;
    const std::size_t threshold = 1 + total / 2;
    std::set<ObjectId> all;
    for (const Hit& h : ref.hits) all.insert(h.object);
    for (int round = 0; round < 2; ++round) {
      for (Deployment* d : {&on, &off}) {
        const SearchResult r =
            d->search(q, threshold, SearchStrategy::kLevelParallel);
        EXPECT_GE(r.hits.size(), std::min(threshold, total));
        for (const Hit& h : r.hits) EXPECT_TRUE(all.contains(h.object));
      }
    }
  }
}

// Hot-cell replication is a pure load optimization: replica tables are
// write-through copies of the owner's, and the coordinator round-robins
// visits across owner + replicas. So a warmed-up deployment with
// replication promoted must keep returning the LogicalIndex reference
// sequence byte for byte no matter which replica serves each visit — even
// for entries published AFTER promotion.
TEST(SearchEquivalence, ReplicaSpreadKeepsHitSequencesByteIdentical) {
  constexpr int kReplicas = 2;
  LogicalIndex logical({.r = kR});
  for (const auto& [id, k] : corpus(0xc0ffee)) logical.insert(id, k);

  sim::EventQueue clock;
  sim::Network net(clock, nullptr);
  auto dht = dht::ChordNetwork::build(net, kPeers, {});
  dht::Dolr dolr(dht);
  OverlayIndex::Config cfg;
  cfg.r = kR;
  cfg.cache_capacity = 0;  // every search must reach the (replica) tables
  cfg.hot.enabled = true;
  cfg.hot.replicas = kReplicas;
  cfg.hot.window = 1 << 20;  // one popularity window covers the whole test
  cfg.hot.min_scans = 2;
  OverlayIndex index(dolr, cfg);
  for (const auto& [id, k] : corpus(0xc0ffee)) index.publish(1, id, k);
  clock.run();

  const auto run_search = [&](const KeywordSet& q) {
    std::optional<SearchResult> result;
    index.superset_search(2, q, 0, SearchStrategy::kTopDownSequential,
                          [&](const SearchResult& r) { result = r; });
    clock.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(SearchResult{});
  };

  const KeywordSet q({"w1", "w4"});
  // Heat the query's cells past min_scans, then promote.
  for (int i = 0; i < 4; ++i) run_search(q);
  index.replication_step(std::numeric_limits<std::size_t>::max());
  const auto promoted = index.hot_cell_stats();
  ASSERT_GT(promoted.promotions, 0u);
  ASSERT_GT(promoted.replica_holders, 0u);

  // Write-through: a publish AFTER promotion lands in the replica tables
  // immediately — the next replication round finds nothing left to copy.
  const ObjectId extra = kObjects + 1;
  logical.insert(extra, q);
  index.publish(1, extra, q);
  clock.run();
  EXPECT_EQ(index.replication_step(std::numeric_limits<std::size_t>::max()),
            0u);
  EXPECT_EQ(index.replication_backlog(), 0u);

  // 2*(k+1) searches cycle the round-robin through every replica slot
  // twice; each sequence must match the reference byte for byte.
  const std::vector<Hit> ref =
      reference_hits(logical, q, 0, SearchStrategy::kTopDownSequential);
  ASSERT_FALSE(ref.empty());
  for (int i = 0; i < 2 * (kReplicas + 1); ++i)
    expect_identical(run_search(q).hits, ref, q, "replica spread");
  EXPECT_GT(index.hot_cell_stats().spread_visits, 0u);
}

// --- The same state machines on the real-socket backend ---------------------
//
// The cluster below is byte-for-byte the sim Deployment — same overlay
// build, same corpus, same searches — but every message crosses a real
// loopback TCP socket via net::TcpTransport, handlers run on its dispatch
// strand, and "time" is wall-clock ticks. The protocol's visit-order hit
// assembly makes the hit sequence independent of arrival timing, so the
// distributed results must STILL match the in-process LogicalIndex
// reference byte for byte. This is the acceptance oracle for the runtime:
// if the transport reordered, dropped, duplicated, or raced anything, the
// pinned sequences would differ.
struct TcpDeployment {
  net::TcpTransport tcp;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<dht::Dolr> dolr;
  std::unique_ptr<OverlayIndex> index;

  static constexpr std::chrono::seconds kSettle{30};

  explicit TcpDeployment(bool coalesce) {
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(tcp, kPeers, {}));
    dolr = std::make_unique<dht::Dolr>(*dht);
    index = std::make_unique<OverlayIndex>(
        *dolr, OverlayIndex::Config{.r = kR, .coalesce_visits = coalesce});
    // Protocol state machines are strand-confined: initiate the publishes
    // on the strand, then wait for the resulting message storm to drain.
    std::mutex mu;
    std::condition_variable cv;
    bool initiated = false;
    tcp.schedule_in(0, [&] {
      for (const auto& [id, k] : corpus(0xc0ffee)) index->publish(1, id, k);
      std::lock_guard<std::mutex> lk(mu);
      initiated = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lk(mu);
    cv.wait_for(lk, kSettle, [&] { return initiated; });
    EXPECT_TRUE(initiated);
    EXPECT_TRUE(tcp.wait_idle(kSettle));
  }

  SearchResult search(const KeywordSet& query, std::size_t threshold,
                      SearchStrategy strategy) {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<SearchResult> result;
    tcp.schedule_in(0, [&] {
      index->superset_search(2, query, threshold, strategy,
                             [&](const SearchResult& r) {
                               std::lock_guard<std::mutex> lk(mu);
                               result = r;
                               cv.notify_all();
                             });
    });
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait_for(lk, kSettle, [&] { return result.has_value(); });
    }
    EXPECT_TRUE(result.has_value()) << query.to_string();
    // Drain trailing traffic (stop fan-out, late results) so the next
    // search starts from a quiet wire.
    EXPECT_TRUE(tcp.wait_idle(kSettle));
    return result.value_or(SearchResult{});
  }
};

TEST(SearchEquivalenceTcp, ExhaustiveMatchesLogicalOverRealSockets) {
  LogicalIndex logical({.r = kR});
  for (const auto& [id, k] : corpus(0xc0ffee)) logical.insert(id, k);

  TcpDeployment on(true), off(false);
  std::size_t coalesced_batches = 0;
  for (const SearchStrategy strategy : kStrategies) {
    for (const KeywordSet& q : probe_queries()) {
      const std::vector<Hit> ref = reference_hits(logical, q, 0, strategy);
      for (int round = 0; round < 2; ++round) {
        const SearchResult a = on.search(q, 0, strategy);
        const SearchResult b = off.search(q, 0, strategy);
        expect_identical(a.hits, ref, q, "tcp coalesce-on vs logical");
        expect_identical(b.hits, ref, q, "tcp coalesce-off vs logical");
        EXPECT_TRUE(a.stats.complete);
        EXPECT_TRUE(b.stats.complete);
        coalesced_batches += a.stats.coalesced_batches;
      }
    }
  }
  EXPECT_GT(coalesced_batches, 0u);  // the fast path engaged over TCP too
  // Real frames moved through real sockets; nothing failed to decode.
  EXPECT_GT(on.tcp.metrics().counter("net.wire_bytes"), 0u);
  EXPECT_EQ(on.tcp.decode_errors(), 0u);
  EXPECT_EQ(off.tcp.decode_errors(), 0u);
}

TEST(SearchEquivalenceTcp, ThresholdedSequentialMatchesLogical) {
  LogicalIndex logical({.r = kR});
  for (const auto& [id, k] : corpus(0xc0ffee)) logical.insert(id, k);

  TcpDeployment on(true);
  for (const SearchStrategy strategy : {SearchStrategy::kTopDownSequential,
                                        SearchStrategy::kBottomUpSequential}) {
    for (const KeywordSet& q : probe_queries()) {
      for (const std::size_t threshold : {std::size_t{3}, std::size_t{9}}) {
        const std::vector<Hit> ref =
            reference_hits(logical, q, threshold, strategy);
        expect_identical(on.search(q, threshold, strategy).hits, ref, q,
                         "tcp thresholded");
      }
    }
  }
}

}  // namespace
}  // namespace hkws::index
