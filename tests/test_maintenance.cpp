// Self-healing maintenance plane: heartbeat failure detection, budgeted
// background repair, and convergence — all on the sim event queue, no
// oracle in the detection path.
#include "maint/maintenance.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dht/chord_network.hpp"
#include "index/service.hpp"
#include "obs/windowed.hpp"

namespace hkws::maint {
namespace {

using index::KeywordSearchService;

struct Plant {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<KeywordSearchService> service;
  std::unique_ptr<MaintenancePlane> plane;

  explicit Plant(KeywordSearchService::Options opts = {.r = 6},
                 MaintenancePlane::Config cfg = {}) {
    net = std::make_unique<sim::Network>(clock);
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, 24, {}));
    service = std::make_unique<KeywordSearchService>(*dht, opts);
    plane = std::make_unique<MaintenancePlane>(
        *net, cfg, [this] { dht->stabilize_all(); },
        [this](std::size_t entries, std::size_t refs) {
          return service->repair_step(entries, refs);
        },
        [this] { return service->repair_backlog(); });
  }

  std::vector<sim::EndpointId> members() const {
    std::vector<sim::EndpointId> eps;
    for (dht::RingId id : dht->live_ids()) eps.push_back(dht->endpoint_of(id));
    return eps;
  }

  void seed_corpus() {
    for (ObjectId o = 1; o <= 12; ++o)
      service->publish(2 + (o % 20), o,
                       KeywordSet({"doc", "k" + std::to_string(o % 4)}));
    clock.run();
  }

  /// Kills the holder of an index entry (never the searcher, endpoint 1).
  sim::EndpointId kill_one_entry_holder() {
    sim::EndpointId victim = 0;
    service->primary_index().for_each_entry(
        [&](cube::CubeId, const KeywordSet&, ObjectId, sim::EndpointId ep) {
          if (victim == 0 && ep != 1) victim = ep;
        });
    EXPECT_NE(victim, 0u);
    plane->note_true_failure(victim);
    dht->fail(victim);
    return victim;
  }

  /// Pumps the clock in bounded windows until pred() or the time budget
  /// runs out (the plane's perpetual timers make clock.run() unusable).
  bool pump_until(const std::function<bool()>& pred,
                  sim::Time budget = 20000) {
    const sim::Time end = clock.now() + budget;
    while (clock.now() < end) {
      if (pred()) return true;
      clock.run_until(clock.now() + 50);
    }
    return pred();
  }
};

TEST(FailureDetector, ConfirmsDeadPeerWithinDetectionWindow) {
  Plant t;
  t.seed_corpus();
  t.plane->start(t.members());
  const sim::Time failed_at = t.clock.now();
  t.kill_one_entry_holder();
  const auto& det = t.plane->detector();
  ASSERT_TRUE(t.pump_until([&] { return det.confirmed_count() == 1; }));
  // Probing is round-paced, so the worst case is one period before the
  // first ping, one more period per additional required miss, the final
  // ack timeout, and latency slack.
  const auto& cfg = det.config();
  const sim::Time bound =
      static_cast<sim::Time>(cfg.confirmations + 1) * cfg.period +
      cfg.timeout + 8;
  EXPECT_LE(t.clock.now() - failed_at, bound);
  EXPECT_GE(t.net->metrics().sample_count("maint.detect_latency"), 1u);
  t.plane->stop();
  t.clock.run();
}

// The transport fast path: a positive connection-death signal from
// TcpTransport (wired through its peer-down observer) confirms the member
// immediately — no heartbeat rounds, no suspicion ladder — and counts
// maint.transport_down. Unknown endpoints and repeat signals are no-ops.
TEST(FailureDetector, TransportDownConfirmsImmediately) {
  Plant t;
  t.seed_corpus();
  t.plane->start(t.members());
  const sim::Time before = t.clock.now();
  const sim::EndpointId victim = t.kill_one_entry_holder();
  auto& det = t.plane->detector();
  det.note_transport_down(victim);
  EXPECT_EQ(det.confirmed_count(), 1u);
  EXPECT_EQ(t.clock.now(), before);  // zero detection latency
  EXPECT_EQ(t.net->metrics().counter("maint.transport_down"), 1u);
  // Already confirmed: a second signal (more frames on the dead wire)
  // changes nothing; neither does a never-monitored endpoint.
  det.note_transport_down(victim);
  det.note_transport_down(9999);
  EXPECT_EQ(det.confirmed_count(), 1u);
  EXPECT_EQ(t.net->metrics().counter("maint.transport_down"), 1u);
  // The plane still heals to convergence off the fast-path confirmation.
  ASSERT_TRUE(t.pump_until([&] { return t.plane->converged(); }));
  t.plane->stop();
  t.clock.run();
}

TEST(FailureDetector, NoFalsePositivesOnHealthyNetwork) {
  Plant t;
  t.plane->start(t.members());
  t.clock.run_until(t.clock.now() + 5000);
  EXPECT_EQ(t.plane->detector().confirmed_count(), 0u);
  EXPECT_EQ(t.plane->detector().suspected_count(), 0u);
  EXPECT_GT(t.net->metrics().counter("msg.maint.ping"), 0u);
  t.plane->stop();
  t.clock.run();
}

TEST(MaintenancePlane, HealsToConvergenceAfterFailure) {
  obs::WindowedMetrics windows(200);
  // Mirrored: lost primary entries are recoverable from the mirror cube,
  // so a death always leaves real repair work behind.
  Plant t({.r = 6, .mirror_index = true});
  t.plane->set_windows(&windows);
  t.seed_corpus();
  t.plane->start(t.members());
  t.kill_one_entry_holder();
  ASSERT_TRUE(t.pump_until([&] { return t.plane->converged(); }));
  EXPECT_EQ(t.service->repair_backlog(), 0u);
  EXPECT_GT(t.plane->repair_work_done(), 0u);
  // Backlog gauge and confirmation count made it into the windows.
  bool saw_confirm = false;
  for (const auto& [k, w] : windows.windows())
    if (w.counters.contains("detector.confirmed")) saw_confirm = true;
  EXPECT_TRUE(saw_confirm);
  // Post-convergence, searches are complete again.
  std::optional<KeywordSearchService::Answer> answer;
  t.service->search(1, KeywordSet({"doc"}), {},
                    [&](const KeywordSearchService::Answer& a) { answer = a; });
  ASSERT_TRUE(t.pump_until([&] { return answer.has_value(); }));
  EXPECT_TRUE(answer->stats.complete);
  EXPECT_FALSE(answer->stats.failed);
  t.plane->stop();
  t.clock.run();
  // With the queue drained, the conservation identity holds once the
  // plane's synchronous stabilize charges are added back.
  EXPECT_EQ(t.net->messages_sent(),
            t.net->messages_delivered() + t.net->messages_lost() +
                t.plane->synthetic_messages());
}

TEST(MaintenancePlane, RepairIsRateLimitedPerTick) {
  MaintenancePlane::Config cfg;
  cfg.entries_per_tick = 1;
  cfg.refs_per_tick = 1;
  Plant t({.r = 6, .mirror_index = true}, cfg);
  t.seed_corpus();
  t.plane->start(t.members());
  t.kill_one_entry_holder();
  const std::size_t initial_backlog = [&] {
    // Let detection finish first so purge creates the backlog.
    t.pump_until([&] { return t.plane->detector().confirmed_count() == 1; });
    return t.service->repair_backlog();
  }();
  ASSERT_TRUE(t.pump_until([&] { return t.plane->converged(); }));
  // With budget 1+1 per slice, the work must have been spread over at
  // least backlog/2 repair ticks.
  EXPECT_GE(t.plane->repair_work_done(), initial_backlog);
  t.plane->stop();
  t.clock.run();
}

TEST(MaintenancePlane, StopCancelsEveryTimer) {
  Plant t;
  t.seed_corpus();
  t.plane->start(t.members());
  t.kill_one_entry_holder();
  t.clock.run_until(t.clock.now() + 500);
  EXPECT_GT(t.plane->armed_timers(), 0u);
  t.plane->stop();
  EXPECT_EQ(t.plane->armed_timers(), 0u);
  EXPECT_EQ(t.clock.live_timer_count(), 0u);
  // Draining the in-flight deliveries after stop() must be a no-op for the
  // detector (epoch guard) — no new confirmations, no new timers.
  const std::size_t confirmed = t.plane->detector().confirmed_count();
  t.clock.run();
  EXPECT_EQ(t.plane->detector().confirmed_count(), confirmed);
  EXPECT_EQ(t.clock.live_timer_count(), 0u);
}

TEST(MaintenancePlane, TickerDisarmsWhenIdleAndRearmsOnNextDeath) {
  Plant t({.r = 6, .mirror_index = true});
  t.seed_corpus();
  t.plane->start(t.members());
  t.kill_one_entry_holder();
  ASSERT_TRUE(t.pump_until([&] { return t.plane->converged(); }));
  // Give the ticker its idle slices to disarm: only detector timers left.
  t.clock.run_until(t.clock.now() + 2000);
  EXPECT_EQ(t.plane->armed_timers(), t.plane->detector().armed_timers());
  const std::uint64_t work_before = t.plane->repair_work_done();
  t.kill_one_entry_holder();
  ASSERT_TRUE(t.pump_until([&] { return t.plane->converged(); }));
  EXPECT_GT(t.plane->repair_work_done(), work_before);
  t.plane->stop();
  t.clock.run();
}

}  // namespace
}  // namespace hkws::maint
