#include "index/keyword_hash.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hkws::index {
namespace {

TEST(KeywordHasher, RejectsBadDimension) {
  EXPECT_THROW(KeywordHasher(0), std::invalid_argument);
  EXPECT_THROW(KeywordHasher(64), std::invalid_argument);
}

TEST(KeywordHasher, DimInRange) {
  KeywordHasher h(10);
  for (int i = 0; i < 1000; ++i) {
    const int d = h.dim_of("word" + std::to_string(i));
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 10);
  }
}

TEST(KeywordHasher, DeterministicAcrossInstances) {
  KeywordHasher a(12), b(12);
  EXPECT_EQ(a.dim_of("news"), b.dim_of("news"));
  EXPECT_EQ(a.responsible_node(KeywordSet({"a", "b", "c"})),
            b.responsible_node(KeywordSet({"a", "b", "c"})));
}

TEST(KeywordHasher, SeedChangesMapping) {
  KeywordHasher a(12, 1), b(12, 2);
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a.dim_of("w" + std::to_string(i)) != b.dim_of("w" + std::to_string(i)))
      ++differing;
  EXPECT_GT(differing, 50);
}

TEST(KeywordHasher, EmptySetMapsToZeroNode) {
  KeywordHasher h(8);
  EXPECT_EQ(h.responsible_node(KeywordSet{}), 0u);
}

TEST(KeywordHasher, ResponsibleNodeIsOrOfDims) {
  KeywordHasher h(10);
  const KeywordSet k({"isp", "telecom", "network"});
  cube::CubeId expected = 0;
  for (const auto& w : k) expected |= 1ULL << h.dim_of(w);
  EXPECT_EQ(h.responsible_node(k), expected);
}

TEST(KeywordHasher, OneBitsAtMostSetSize) {
  KeywordHasher h(16);
  for (int n = 1; n <= 20; ++n) {
    std::vector<Keyword> words;
    for (int i = 0; i < n; ++i) words.push_back("kw" + std::to_string(i));
    const KeywordSet k(words);
    const int ones = cube::Hypercube::one_count(h.responsible_node(k));
    EXPECT_LE(ones, n);
    EXPECT_LE(ones, 16);
    EXPECT_GE(ones, 1);
  }
}

TEST(KeywordHasher, SubsetMapsIntoSubcube) {
  // Lemma 3.3's premise: K1 ⊆ K2 implies F_h(K2) contains F_h(K1).
  KeywordHasher h(10);
  const KeywordSet k1({"a", "b"});
  const KeywordSet k2({"a", "b", "c", "d"});
  EXPECT_TRUE(cube::Hypercube::contains(h.responsible_node(k2),
                                        h.responsible_node(k1)));
  EXPECT_TRUE(h.maps_into_subcube(k1, k2));
}

TEST(KeywordHasher, SubsetPropertyHoldsForRandomSets) {
  KeywordHasher h(12);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Keyword> words;
    const int n = 1 + static_cast<int>(rng.next_below(10));
    for (int i = 0; i < n; ++i)
      words.push_back("w" + std::to_string(rng.next_below(1000)));
    const KeywordSet big(words);
    // Random subset.
    std::vector<Keyword> sub;
    for (const auto& w : big)
      if (rng.next_bool(0.5)) sub.push_back(w);
    const KeywordSet small(sub);
    EXPECT_TRUE(cube::Hypercube::contains(h.responsible_node(big),
                                          h.responsible_node(small)));
  }
}

TEST(KeywordHasher, DimsAreRoughlyUniform) {
  KeywordHasher h(8);
  std::vector<int> counts(8, 0);
  constexpr int kWords = 16000;
  for (int i = 0; i < kWords; ++i) ++counts[h.dim_of("u" + std::to_string(i))];
  for (int c : counts) {
    EXPECT_GT(c, kWords / 8 * 85 / 100);
    EXPECT_LT(c, kWords / 8 * 115 / 100);
  }
}

}  // namespace
}  // namespace hkws::index
