#include "cube/sbt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace hkws::cube {
namespace {

// Binomial coefficient for small arguments.
std::uint64_t choose(int n, int k) {
  if (k < 0 || k > n) return 0;
  std::uint64_t r = 1;
  for (int i = 1; i <= k; ++i)
    r = r * static_cast<std::uint64_t>(n - k + i) /
        static_cast<std::uint64_t>(i);
  return r;
}

TEST(Sbt, RejectsInvalidConstruction) {
  Hypercube h(4);
  EXPECT_THROW(SpanningBinomialTree(h, 0x10), std::invalid_argument);
  EXPECT_THROW(SpanningBinomialTree(0b0100, 0b0110), std::invalid_argument);
}

TEST(Sbt, RootHasNoParentAndAllFreeDimsAsChildren) {
  Hypercube h(4);
  SpanningBinomialTree sbt(h, 0b0100);
  EXPECT_FALSE(sbt.parent(0b0100).has_value());
  // Def. 3.2, p = -1 case: children flip every free dimension.
  EXPECT_EQ(sbt.children(0b0100),
            (std::vector<CubeId>{0b0101, 0b0110, 0b1100}));
}

TEST(Sbt, PaperFigure4Structure) {
  // SBT_{H_4}(0100): check a few parent/child relations visible in Fig. 4.
  Hypercube h(4);
  SpanningBinomialTree sbt(h, 0b0100);
  EXPECT_EQ(*sbt.parent(0b0101), 0b0100u);
  EXPECT_EQ(*sbt.parent(0b0110), 0b0100u);
  EXPECT_EQ(*sbt.parent(0b1100), 0b0100u);
  EXPECT_EQ(*sbt.parent(0b0111), 0b0110u);
  EXPECT_EQ(*sbt.parent(0b1101), 0b1100u);
  EXPECT_EQ(*sbt.parent(0b1110), 0b1100u);
  EXPECT_EQ(*sbt.parent(0b1111), 0b1110u);
  // 1110's children flip free dims below its lowest differing bit (bit 1):
  // only dim 0.
  EXPECT_EQ(sbt.children(0b1110), (std::vector<CubeId>{0b1111}));
  // Leaf: 0101 (lowest differing bit 0) has no children.
  EXPECT_TRUE(sbt.children(0b0101).empty());
}

TEST(Sbt, DepthEqualsHammingDistance) {
  Hypercube h(6);
  SpanningBinomialTree sbt(h, 0b000100);
  for (CubeId w : sbt.bfs_order())
    EXPECT_EQ(sbt.depth(w), Hypercube::hamming(w, 0b000100));
}

TEST(Sbt, BfsOrderVisitsEachMemberOnceInDepthOrder) {
  Hypercube h(5);
  SpanningBinomialTree sbt(h, 0b00010);
  const auto order = sbt.bfs_order();
  EXPECT_EQ(order.size(), sbt.size());
  std::set<CubeId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), order.size());
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(sbt.depth(order[i - 1]), sbt.depth(order[i]));
  // All members are covered.
  for (CubeId w : h.subcube_members(0b00010)) EXPECT_TRUE(seen.contains(w));
}

TEST(Sbt, LevelsHaveBinomialSizes) {
  Hypercube h(6);
  SpanningBinomialTree sbt(h, 0b001000);  // 5 free dims
  const auto levels = sbt.levels();
  ASSERT_EQ(levels.size(), 6u);
  for (int d = 0; d <= 5; ++d)
    EXPECT_EQ(levels[static_cast<std::size_t>(d)].size(), choose(5, d))
        << "depth " << d;
}

TEST(Sbt, BottomUpIsReversedByLevel) {
  Hypercube h(4);
  SpanningBinomialTree sbt(h, 0b0001);
  const auto order = sbt.bottom_up_order();
  EXPECT_EQ(order.size(), sbt.size());
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(sbt.depth(order[i - 1]), sbt.depth(order[i]));
  EXPECT_EQ(order.back(), 0b0001u);  // root last
}

TEST(Sbt, MembershipPredicate) {
  Hypercube h(4);
  SpanningBinomialTree sbt(h, 0b0100);
  EXPECT_TRUE(sbt.is_member(0b0100));
  EXPECT_TRUE(sbt.is_member(0b1111));
  EXPECT_FALSE(sbt.is_member(0b0010));  // does not contain the root
}

TEST(Sbt, FullCubeTreeFromZeroRoot) {
  Hypercube h(3);
  SpanningBinomialTree sbt(h, 0);
  EXPECT_EQ(sbt.size(), 8u);
  const auto order = sbt.bfs_order();
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(std::set<CubeId>(order.begin(), order.end()).size(), 8u);
}

TEST(Sbt, SingletonTreeWhenRootIsFull) {
  Hypercube h(3);
  SpanningBinomialTree sbt(h, 0b111);
  EXPECT_EQ(sbt.size(), 1u);
  EXPECT_EQ(sbt.bfs_order(), (std::vector<CubeId>{0b111}));
  EXPECT_TRUE(sbt.children(0b111).empty());
}

class SbtProperty : public ::testing::TestWithParam<std::pair<int, CubeId>> {};

TEST_P(SbtProperty, ParentChildInverseAndSpanning) {
  const auto [r, root_raw] = GetParam();
  Hypercube h(r);
  const CubeId root = root_raw & h.full_mask();
  SpanningBinomialTree sbt(h, root);

  std::size_t nodes = 0;
  std::map<CubeId, CubeId> parent_of;
  for (CubeId w : sbt.bfs_order()) {
    ++nodes;
    for (CubeId c : sbt.children(w)) {
      EXPECT_TRUE(sbt.is_member(c));
      ASSERT_TRUE(sbt.parent(c).has_value());
      EXPECT_EQ(*sbt.parent(c), w);
      EXPECT_TRUE(parent_of.emplace(c, w).second)
          << "node reached twice: " << c;
      EXPECT_EQ(sbt.depth(c), sbt.depth(w) + 1);
    }
  }
  // Spanning: every member except the root has exactly one parent edge.
  EXPECT_EQ(nodes, sbt.size());
  EXPECT_EQ(parent_of.size(), sbt.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(
    RootsAndDims, SbtProperty,
    ::testing::Values(std::pair{3, CubeId{0}}, std::pair{4, CubeId{0b0100}},
                      std::pair{5, CubeId{0b10001}},
                      std::pair{7, CubeId{0b1010101}},
                      std::pair{10, CubeId{0b11}},
                      std::pair{12, CubeId{0b100000000001}}));

}  // namespace
}  // namespace hkws::cube
