#include "workload/query_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/corpus_generator.hpp"

namespace hkws::workload {
namespace {

const Corpus& test_corpus() {
  static const Corpus corpus = [] {
    CorpusConfig cfg;
    cfg.object_count = 15000;
    cfg.vocabulary_size = 6000;
    return CorpusGenerator(cfg).generate();
  }();
  return corpus;
}

QueryLogConfig small_config() {
  QueryLogConfig cfg;
  cfg.query_count = 40000;
  cfg.distinct_queries = 1500;
  return cfg;
}

TEST(QueryGen, SolvesZipfExponentForTopShare) {
  const double s = QueryLogGenerator::solve_zipf_exponent(2000, 10, 0.60);
  // Verify directly: top-10 mass at the solved exponent is ~60%.
  double top = 0, total = 0;
  for (std::size_t k = 1; k <= 2000; ++k) {
    const double w = std::pow(static_cast<double>(k), -s);
    total += w;
    if (k <= 10) top += w;
  }
  EXPECT_NEAR(top / total, 0.60, 0.01);
  EXPECT_GT(s, 1.0);
}

TEST(QueryGen, EveryQueryHasAtLeastOneMatch) {
  QueryLogGenerator gen(test_corpus(), small_config());
  for (const auto& q : gen.universe()) {
    bool matched = false;
    for (std::size_t i = 0; i < test_corpus().size() && !matched; ++i)
      matched = q.subset_of(test_corpus()[i].keywords);
    EXPECT_TRUE(matched) << q.to_string();
    if (!matched) break;  // avoid noise
  }
}

TEST(QueryGen, QuerySizesWithinConfiguredRange) {
  QueryLogGenerator gen(test_corpus(), small_config());
  const auto log = gen.generate();
  for (const auto& q : log.queries()) {
    EXPECT_GE(q.keywords.size(), 1u);
    EXPECT_LE(q.keywords.size(), 5u);
  }
}

TEST(QueryGen, TopTenShareIsNearTarget) {
  QueryLogGenerator gen(test_corpus(), small_config());
  const auto log = gen.generate();
  EXPECT_NEAR(log.top_share(10), 0.60, 0.06);
}

TEST(QueryGen, LogHasRequestedVolume) {
  QueryLogGenerator gen(test_corpus(), small_config());
  const auto log = gen.generate();
  EXPECT_EQ(log.size(), 40000u);
  EXPECT_GT(log.distinct_count(), 100u);
  EXPECT_LE(log.distinct_count(), 1500u);
}

TEST(QueryGen, ArrivalTimesAreSequential) {
  QueryLogGenerator gen(test_corpus(), small_config());
  const auto log = gen.generate();
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(log[i].time, i);
}

TEST(QueryGen, PopularSetsFilterBySize) {
  QueryLogGenerator gen(test_corpus(), small_config());
  for (std::size_t m = 1; m <= 3; ++m) {
    const auto sets = gen.popular_sets(m, 10);
    EXPECT_FALSE(sets.empty()) << "m=" << m;
    for (const auto& s : sets) EXPECT_EQ(s.size(), m);
  }
}

TEST(QueryGen, DeterministicPerSeed) {
  QueryLogGenerator a(test_corpus(), small_config());
  QueryLogGenerator b(test_corpus(), small_config());
  const auto la = a.generate();
  const auto lb = b.generate();
  for (std::size_t i = 0; i < 200; ++i)
    EXPECT_EQ(la[i].keywords, lb[i].keywords);
}

TEST(QueryGen, DocumentFrequencyCapExcludesHotKeywords) {
  QueryLogConfig cfg = small_config();
  cfg.max_keyword_df = 0.002;  // keywords in > 0.2% of objects are banned
  QueryLogGenerator gen(test_corpus(), cfg);
  const auto limit = static_cast<std::uint64_t>(0.002 * test_corpus().size());
  // Build the document-frequency table once.
  std::map<Keyword, std::uint64_t> df;
  for (const auto& [w, c] : test_corpus().keyword_frequencies()) df[w] = c;
  for (const auto& q : gen.universe())
    for (const auto& w : q)
      EXPECT_LE(df[w], limit) << w;
}

TEST(QueryGen, RejectsEmptyCorpus) {
  const Corpus empty;
  EXPECT_THROW(QueryLogGenerator(empty, small_config()),
               std::invalid_argument);
}

TEST(QueryLog, TopShareAndFrequencies) {
  std::vector<Query> qs;
  for (int i = 0; i < 6; ++i) qs.push_back({KeywordSet({"hot"}), 0});
  for (int i = 0; i < 4; ++i)
    qs.push_back({KeywordSet({"cold" + std::to_string(i)}), 0});
  const QueryLog log(std::move(qs));
  EXPECT_EQ(log.distinct_count(), 5u);
  EXPECT_DOUBLE_EQ(log.top_share(1), 0.6);
  EXPECT_DOUBLE_EQ(log.top_share(100), 1.0);
  EXPECT_EQ(log.frequencies().front().first, KeywordSet({"hot"}));
}

}  // namespace
}  // namespace hkws::workload
