// UdpTransport runtime tests: datagram delivery through a real loopback
// socket, the seeded drop model (loss as the medium's native failure mode),
// and the accounting identities the torture harness enforces —
// net.messages == net.delivered + net.lost with every loss attributed to
// exactly one cause counter.
//
// These tests exercise real threads and sockets; the CI tsan job runs this
// binary under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "net/udp_transport.hpp"

namespace hkws::net {
namespace {

using namespace std::chrono_literals;

constexpr auto kIdle = 5s;  // generous; loopback settles in milliseconds

UdpTransport::Config fast_config() {
  UdpTransport::Config cfg;
  cfg.tick = std::chrono::microseconds{100};
  return cfg;
}

std::uint64_t counter(const UdpTransport& t, const std::string& key) {
  return t.metrics().counter(key);
}

TEST(UdpTransport, WireSendDeliversThroughDatagramAndCounts) {
  UdpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  std::atomic<int> ran{0};
  t.send(1, 1, "kws.pin", 8, [&ran] { ++ran; });  // local: free
  t.send(1, 2, "kws.t_query", 200, [&ran] { ++ran; });
  t.send(1, 99, "dolr.read", 32, [&ran] { ++ran; });  // unregistered
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(counter(t, "net.local"), 1u);
  EXPECT_EQ(counter(t, "net.messages"), 1u);
  EXPECT_EQ(counter(t, "net.bytes"), 200u);
  EXPECT_EQ(counter(t, "msg.kws.t_query"), 1u);
  EXPECT_EQ(counter(t, "net.delivered"), 1u);
  EXPECT_EQ(counter(t, "net.dropped"), 1u);
  EXPECT_EQ(counter(t, "net.dropped.unregistered"), 1u);
  EXPECT_GT(counter(t, "net.wire_bytes"), 0u);
  EXPECT_EQ(t.decode_errors(), 0u);
}

// The headline property: under seeded Bernoulli loss the conservation
// identity closes exactly, every loss attributed to the drop model
// (net.dropped.fault) — and packet loss is never reported as peer death.
TEST(UdpTransport, SeededLossIsAttributedAndConserved) {
  UdpTransport::Config cfg = fast_config();
  cfg.drop_rate = 0.3;
  cfg.seed = 42;
  UdpTransport t(cfg);
  t.register_endpoint(1);
  t.register_endpoint(2);
  std::atomic<int> peer_down{0};
  t.set_peer_down_observer([&peer_down](EndpointId) { ++peer_down; });

  constexpr std::uint64_t kSends = 200;
  std::atomic<std::uint64_t> ran{0};
  for (std::uint64_t i = 0; i < kSends; ++i)
    t.send(1, 2, "kws.t_query", 64, [&ran] { ++ran; });
  ASSERT_TRUE(t.wait_idle(kIdle));

  const std::uint64_t delivered = counter(t, "net.delivered");
  const std::uint64_t lost = counter(t, "net.lost");
  EXPECT_EQ(counter(t, "net.messages"), kSends);
  EXPECT_EQ(delivered + lost, kSends);  // conservation closes exactly
  EXPECT_EQ(ran.load(), delivered);     // a lost frame never runs its handler
  EXPECT_GT(lost, 0u);                  // 30% of 200: the model really fired
  EXPECT_GT(delivered, 0u);
  // Attribution: every loss is the drop model's, none a connection death.
  EXPECT_EQ(counter(t, "net.dropped.fault"), lost);
  EXPECT_EQ(counter(t, "net.dropped.conn"), 0u);
  EXPECT_EQ(counter(t, "net.lost.kws.t_query"), lost);
  EXPECT_EQ(peer_down.load(), 0);  // packet loss is not peer death
}

// Two identically-seeded instances lose exactly the same frames: the drop
// model is deterministic, so loss-recovery tests are reproducible.
TEST(UdpTransport, SeededLossIsDeterministic) {
  std::vector<std::uint64_t> lost_counts;
  for (int run = 0; run < 2; ++run) {
    UdpTransport::Config cfg = fast_config();
    cfg.drop_rate = 0.25;
    cfg.seed = 7;
    UdpTransport t(cfg);
    t.register_endpoint(1);
    t.register_endpoint(2);
    for (int i = 0; i < 100; ++i) t.send(1, 2, "dolr.insert", 16, [] {});
    ASSERT_TRUE(t.wait_idle(kIdle));
    lost_counts.push_back(counter(t, "net.lost"));
  }
  EXPECT_EQ(lost_counts[0], lost_counts[1]);
  EXPECT_GT(lost_counts[0], 0u);
}

// set_drop_rate() re-arms the model at runtime: tests publish lossless,
// then arm loss for the query phase (UDP gives no ordering guarantee, so
// this is the supported way to keep the publish phase intact).
TEST(UdpTransport, DropRateArmsAndDisarmsAtRuntime) {
  UdpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  for (int i = 0; i < 20; ++i) t.send(1, 2, "kws.insert", 32, [] {});
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(counter(t, "net.lost"), 0u);  // disarmed: lossless

  t.set_drop_rate(1.0);  // certain loss
  for (int i = 0; i < 10; ++i) t.send(1, 2, "kws.t_query", 32, [] {});
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(counter(t, "net.lost"), 10u);
  EXPECT_EQ(counter(t, "net.dropped.fault"), 10u);

  t.set_drop_rate(0.0);  // disarm again
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) t.send(1, 2, "kws.t_query", 32, [&ran] { ++ran; });
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(counter(t, "net.lost"), 10u);
  EXPECT_EQ(counter(t, "net.messages"),
            counter(t, "net.delivered") + counter(t, "net.lost"));
}

// The parked-handler sweep (shared SocketTransport base) reclaims a
// datagram the read side swallowed — the UDP analogue of kernel-side
// buffer loss. Without the sweep this wedges wait_idle forever.
TEST(UdpTransport, SweepReclaimsSwallowedDatagram) {
  UdpTransport::Config cfg = fast_config();
  cfg.parked_ttl = std::chrono::milliseconds{100};
  UdpTransport t(cfg);
  t.register_endpoint(1);
  t.register_endpoint(2);
  t.drop_inbound(1);
  std::atomic<int> ran{0};
  t.send(1, 2, "kws.t_query", 64, [&ran] { ++ran; });
  ASSERT_TRUE(t.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(counter(t, "net.lost"), 1u);
  EXPECT_EQ(counter(t, "net.dropped.conn"), 1u);  // wire death, not fault
  EXPECT_EQ(counter(t, "net.dropped.fault"), 0u);
  EXPECT_TRUE(t.drain_and_stop(2000ms));
}

// Cross-process payload delivery over datagrams, both directions, with the
// per-instance accounting split (sender: net.messages + net.delivered +
// net.remote.out; receiver: net.remote.in only).
TEST(UdpTransport, PayloadCrossesBetweenInstances) {
  UdpTransport a(fast_config());
  UdpTransport b(fast_config());
  a.register_endpoint(1);
  b.register_endpoint(2);
  ASSERT_TRUE(a.set_peer_address(2, PeerAddr{"127.0.0.1", b.port()}));
  ASSERT_TRUE(b.set_peer_address(1, PeerAddr{"127.0.0.1", a.port()}));

  std::mutex mu;
  std::condition_variable cv;
  std::vector<EntryMsg> at_b;
  std::vector<ControlMsg> at_a;
  b.set_payload_handler([&](EndpointId from, EndpointId to, MsgKind kind,
                            const WireMessage& msg) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(from, 1u);
    EXPECT_EQ(to, 2u);
    EXPECT_EQ(kind, MsgKind::kKwsInsert);
    at_b.push_back(std::get<EntryMsg>(msg));
    cv.notify_all();
  });
  a.set_payload_handler([&](EndpointId from, EndpointId to, MsgKind kind,
                            const WireMessage& msg) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(kind, MsgKind::kKwsTCont);
    at_a.push_back(std::get<ControlMsg>(msg));
    cv.notify_all();
  });

  const EntryMsg entry{314, {"peer", "to", "peer"}};
  a.send_payload(1, 2, MsgKind::kKwsInsert, WireMessage{entry});
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, kIdle, [&] { return !at_b.empty(); }));
    EXPECT_EQ(at_b.front(), entry);
  }
  const ControlMsg cont{314, 2, 1, false};
  b.send_payload(2, 1, MsgKind::kKwsTCont, WireMessage{cont});
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, kIdle, [&] { return !at_a.empty(); }));
    EXPECT_EQ(at_a.front(), cont);
  }
  ASSERT_TRUE(a.wait_idle(kIdle));
  ASSERT_TRUE(b.wait_idle(kIdle));

  EXPECT_EQ(counter(a, "net.messages"), 1u);
  EXPECT_EQ(counter(a, "net.delivered"), 1u);
  EXPECT_EQ(counter(a, "net.remote.out"), 1u);
  EXPECT_EQ(counter(a, "net.remote.in"), 1u);
  EXPECT_EQ(counter(a, "net.remote.in.kws.t_cont"), 1u);
  EXPECT_EQ(counter(b, "net.messages"), 1u);
  EXPECT_EQ(counter(b, "net.remote.in"), 1u);
  EXPECT_EQ(counter(b, "net.remote.in.kws.insert"), 1u);
  EXPECT_EQ(a.decode_errors(), 0u);
  EXPECT_EQ(b.decode_errors(), 0u);
}

// An armed drop model applies to cross-process payload frames too, and the
// sender's conservation identity still closes (the loss is the sender's).
TEST(UdpTransport, PayloadLossIsAccountedAtTheSender) {
  UdpTransport a(fast_config());
  UdpTransport b(fast_config());
  a.register_endpoint(1);
  b.register_endpoint(2);
  ASSERT_TRUE(a.set_peer_address(2, PeerAddr{"127.0.0.1", b.port()}));
  b.set_payload_handler([](EndpointId, EndpointId, MsgKind,
                           const WireMessage&) { FAIL() << "frame delivered"; });
  a.set_drop_rate(1.0);
  const EntryMsg entry{1, {"doomed"}};
  for (int i = 0; i < 5; ++i)
    a.send_payload(1, 2, MsgKind::kKwsInsert, WireMessage{entry});
  ASSERT_TRUE(a.wait_idle(kIdle));
  EXPECT_EQ(counter(a, "net.messages"), 5u);
  EXPECT_EQ(counter(a, "net.delivered"), 0u);
  EXPECT_EQ(counter(a, "net.lost"), 5u);
  EXPECT_EQ(counter(a, "net.dropped.fault"), 5u);
  EXPECT_EQ(counter(a, "net.remote.out"), 5u);
  ASSERT_TRUE(b.wait_idle(kIdle));
  EXPECT_EQ(counter(b, "net.remote.in"), 0u);
}

// A frame too large for one datagram cannot be carried: counted as a
// connection loss at send, conservation intact, no crash.
TEST(UdpTransport, OversizedPayloadFrameIsConnLoss) {
  UdpTransport a(fast_config());
  UdpTransport b(fast_config());
  a.register_endpoint(1);
  b.register_endpoint(2);
  ASSERT_TRUE(a.set_peer_address(2, PeerAddr{"127.0.0.1", b.port()}));
  EntryMsg huge;
  huge.object = 1;
  huge.keywords.assign(100, std::string(1024, 'k'));  // ~100 KB > kMaxDatagram
  a.send_payload(1, 2, MsgKind::kKwsInsert, WireMessage{huge});
  ASSERT_TRUE(a.wait_idle(kIdle));
  EXPECT_EQ(counter(a, "net.messages"), 1u);
  EXPECT_EQ(counter(a, "net.delivered"), 0u);
  EXPECT_EQ(counter(a, "net.lost"), 1u);
  EXPECT_EQ(counter(a, "net.dropped.conn"), 1u);
}

// stop() racing late sends: losses, not crashes (the shared lane-guard
// regression, pinned on the UDP backend too).
TEST(UdpTransport, SendAfterStopIsCountedLossNotCrash) {
  UdpTransport t(fast_config());
  t.register_endpoint(1);
  t.register_endpoint(2);
  t.stop();
  for (int i = 0; i < 4; ++i) t.send(1, 2, "kws.t_query", 16, [] {});
  EXPECT_EQ(counter(t, "net.messages"), 4u);
  EXPECT_EQ(counter(t, "net.lost"), 4u);
  EXPECT_EQ(counter(t, "net.dropped.conn"), 4u);
}

}  // namespace
}  // namespace hkws::net
