#include "index/decomposed.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"

namespace hkws::index {
namespace {

std::set<ObjectId> ids_of(const std::vector<Hit>& hits) {
  std::set<ObjectId> out;
  for (const Hit& h : hits) out.insert(h.object);
  return out;
}

// Two explicit attribute groups: "type:*" keywords vs everything else.
DecomposedIndex typed_index() {
  return DecomposedIndex(
      {DecomposedIndex::GroupSpec{4}, DecomposedIndex::GroupSpec{8}},
      [](const Keyword& w) {
        return w.rfind("type:", 0) == 0 ? std::size_t{0} : std::size_t{1};
      });
}

TEST(Decomposed, RequiresAtLeastOneGroup) {
  EXPECT_THROW(
      DecomposedIndex({}, [](const Keyword&) { return std::size_t{0}; }),
      std::invalid_argument);
}

TEST(Decomposed, RejectsOutOfRangeGroupFn) {
  DecomposedIndex idx({DecomposedIndex::GroupSpec{4}},
                      [](const Keyword&) { return std::size_t{7}; });
  EXPECT_THROW(idx.insert(1, KeywordSet({"a"})), std::out_of_range);
  EXPECT_THROW(idx.projection(KeywordSet({"a"}), 0), std::out_of_range);
}

TEST(Decomposed, ProjectionSplitsByGroup) {
  auto idx = typed_index();
  const KeywordSet k({"type:video", "madonna", "music"});
  EXPECT_EQ(idx.projection(k, 0), KeywordSet({"type:video"}));
  EXPECT_EQ(idx.projection(k, 1), KeywordSet({"madonna", "music"}));
}

TEST(Decomposed, SingleGroupQueryFindsSupersets) {
  auto idx = typed_index();
  idx.insert(1, KeywordSet({"type:video", "madonna"}));
  idx.insert(2, KeywordSet({"type:audio", "madonna"}));
  idx.insert(3, KeywordSet({"type:video", "opera"}));
  EXPECT_EQ(ids_of(idx.superset_search(KeywordSet({"madonna"})).hits),
            (std::set<ObjectId>{1, 2}));
  EXPECT_EQ(ids_of(idx.superset_search(KeywordSet({"type:video"})).hits),
            (std::set<ObjectId>{1, 3}));
}

TEST(Decomposed, CrossGroupQueryIntersectsCorrectly) {
  auto idx = typed_index();
  idx.insert(1, KeywordSet({"type:video", "madonna"}));
  idx.insert(2, KeywordSet({"type:audio", "madonna"}));
  idx.insert(3, KeywordSet({"type:video", "opera"}));
  const auto result =
      idx.superset_search(KeywordSet({"type:video", "madonna"}));
  EXPECT_EQ(ids_of(result.hits), (std::set<ObjectId>{1}));
  // Hits carry the full keyword set, not just the projection.
  EXPECT_EQ(result.hits[0].keywords, KeywordSet({"type:video", "madonna"}));
}

TEST(Decomposed, PinSearchRequiresExactFullSet) {
  auto idx = typed_index();
  idx.insert(1, KeywordSet({"type:video", "madonna"}));
  idx.insert(2, KeywordSet({"type:video", "madonna", "music"}));
  EXPECT_EQ(ids_of(idx.pin_search(KeywordSet({"type:video", "madonna"})).hits),
            (std::set<ObjectId>{1}));
  EXPECT_TRUE(idx.pin_search(KeywordSet({"madonna"})).hits.empty());
}

TEST(Decomposed, RemoveErasesFromAllGroups) {
  auto idx = typed_index();
  const KeywordSet k({"type:video", "madonna"});
  idx.insert(1, k);
  EXPECT_TRUE(idx.remove(1, k));
  EXPECT_FALSE(idx.remove(1, k));
  EXPECT_TRUE(idx.superset_search(KeywordSet({"madonna"})).hits.empty());
  EXPECT_TRUE(idx.superset_search(KeywordSet({"type:video"})).hits.empty());
}

TEST(Decomposed, ThresholdAppliesAfterFiltering) {
  auto idx = typed_index();
  for (ObjectId o = 1; o <= 20; ++o)
    idx.insert(o, KeywordSet({"type:video", "m" + std::to_string(o)}));
  const auto result = idx.superset_search(KeywordSet({"type:video"}), 5);
  EXPECT_EQ(result.hits.size(), 5u);
  EXPECT_FALSE(result.stats.complete);
}

TEST(Decomposed, HashedEquivalentToBruteForce) {
  auto idx = DecomposedIndex::hashed(3, 6);
  std::map<ObjectId, KeywordSet> oracle;
  Rng rng(11);
  for (ObjectId o = 1; o <= 300; ++o) {
    std::vector<Keyword> words;
    const int n = 1 + static_cast<int>(rng.next_below(6));
    for (int i = 0; i < n; ++i)
      words.push_back("w" + std::to_string(rng.next_below(40)));
    oracle[o] = KeywordSet(std::move(words));
    idx.insert(o, oracle[o]);
  }
  for (int trial = 0; trial < 60; ++trial) {
    auto it = oracle.begin();
    std::advance(it, rng.next_below(oracle.size()));
    std::vector<Keyword> q;
    for (const auto& w : it->second)
      if (rng.next_bool(0.5)) q.push_back(w);
    if (q.empty()) q.push_back(it->second.words().front());
    const KeywordSet query(q);
    std::set<ObjectId> expected;
    for (const auto& [o, k] : oracle)
      if (query.subset_of(k)) expected.insert(o);
    EXPECT_EQ(ids_of(idx.superset_search(query).hits), expected)
        << query.to_string();
  }
}

TEST(Decomposed, SmallerCubesSearchFewerNodes) {
  // The §3.4 point: decomposition shrinks the per-query search space.
  LogicalIndex mono({.r = 12});
  auto decomposed = DecomposedIndex::hashed(4, 6);
  Rng rng(12);
  for (ObjectId o = 1; o <= 200; ++o) {
    std::vector<Keyword> words{"shared"};
    for (int i = 0; i < 4; ++i)
      words.push_back("w" + std::to_string(rng.next_below(50)));
    const KeywordSet k(words);
    mono.insert(o, k);
    decomposed.insert(o, k);
  }
  const auto m = mono.superset_search(KeywordSet({"shared"}));
  const auto d = decomposed.superset_search(KeywordSet({"shared"}));
  EXPECT_EQ(ids_of(m.hits), ids_of(d.hits));
  EXPECT_LT(d.stats.nodes_contacted, m.stats.nodes_contacted);
}

}  // namespace
}  // namespace hkws::index
