#include "engine/query_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dht/chord_network.hpp"
#include "engine/load_driver.hpp"
#include "obs/windowed.hpp"
#include "workload/arrivals.hpp"
#include "workload/query_log.hpp"

namespace hkws::engine {
namespace {

// --- Fixture ----------------------------------------------------------------

struct EngineNet {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<index::KeywordSearchService> service;

  explicit EngineNet(index::KeywordSearchService::Options opts = {.r = 6},
                     std::unique_ptr<sim::LatencyModel> latency = nullptr,
                     std::uint64_t seed = 1) {
    net = std::make_unique<sim::Network>(clock, std::move(latency), seed);
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, 24, {}));
    service = std::make_unique<index::KeywordSearchService>(*dht, opts);
  }
};

/// Deterministic catalogue over a 6-word vocabulary: every subset query has
/// a brute-force ground truth.
std::vector<KeywordSet> catalogue_sets() {
  const std::vector<std::string> vocab = {"alpha", "beta",    "gamma",
                                          "delta", "epsilon", "zeta"};
  std::vector<KeywordSet> sets;
  Rng rng(42);
  for (int i = 0; i < 40; ++i) {
    std::set<std::string> kws;
    const std::size_t want = 2 + rng.next_below(3);  // 2..4 keywords
    while (kws.size() < want) kws.insert(vocab[rng.next_below(vocab.size())]);
    sets.emplace_back(std::vector<Keyword>(kws.begin(), kws.end()));
  }
  return sets;
}

void publish_catalogue(EngineNet& t, const std::vector<KeywordSet>& sets) {
  for (std::size_t i = 0; i < sets.size(); ++i)
    t.service->publish(2 + i % 10, static_cast<ObjectId>(i + 1), sets[i]);
  t.clock.run();
}

std::set<ObjectId> ground_truth(const std::vector<KeywordSet>& sets,
                                const KeywordSet& query) {
  std::set<ObjectId> ids;
  for (std::size_t i = 0; i < sets.size(); ++i)
    if (query.subset_of(sets[i])) ids.insert(static_cast<ObjectId>(i + 1));
  return ids;
}

std::vector<KeywordSet> test_queries() {
  return {
      KeywordSet{"alpha"},
      KeywordSet{"beta"},
      KeywordSet{"gamma"},
      KeywordSet{"delta"},
      KeywordSet{"epsilon"},
      KeywordSet{"zeta"},
      KeywordSet{"alpha", "beta"},
      KeywordSet{"beta", "gamma"},
      KeywordSet{"gamma", "delta"},
      KeywordSet{"delta", "epsilon"},
      KeywordSet{"epsilon", "zeta"},
      KeywordSet{"alpha", "gamma"},
      KeywordSet{"beta", "delta"},
      KeywordSet{"alpha", "beta", "gamma"},
      KeywordSet{"delta", "epsilon", "zeta"},
  };
}

// --- Concurrent interleaved searches ---------------------------------------

TEST(QueryEngine, ConcurrentInterleavedSearchesAreExact) {
  // Randomized per-message latency interleaves N overlapping traversals;
  // a small in-flight cap forces backlog churn on top.
  EngineNet t({.r = 6}, std::make_unique<sim::UniformLatency>(1, 20), 99);
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  EngineConfig cfg;
  cfg.max_in_flight = 8;
  cfg.max_backlog = 1000;
  cfg.search.limit = 0;  // exhaustive, so results are comparable
  QueryEngine engine(*t.service, t.clock, cfg);

  const auto queries = test_queries();
  std::vector<KeywordSet> submitted;
  for (int round = 0; round < 2; ++round)
    for (const auto& q : queries) submitted.push_back(q);

  engine.set_on_finished([&](const QueryRecord& rec) {
    EXPECT_EQ(rec.outcome, QueryOutcome::kCompleted);
  });
  for (std::size_t i = 0; i < submitted.size(); ++i)
    engine.submit(1 + i % 5, submitted[i]);
  t.clock.run();

  ASSERT_EQ(engine.records().size(), submitted.size());
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_EQ(engine.backlog(), 0u);
  // Hit counts must match brute force; exact ids are checked in the lossy
  // test below through the service directly.
  for (const auto& rec : engine.records()) {
    const std::size_t idx = static_cast<std::size_t>(rec.id - 1);
    EXPECT_EQ(rec.hits, ground_truth(sets, submitted[idx]).size())
        << "query " << submitted[idx].to_string();
    EXPECT_TRUE(rec.stats.complete);
    EXPECT_GE(rec.admitted, rec.submitted);
  }
  const EngineReport report = engine.report();
  EXPECT_EQ(report.completed, submitted.size());
  EXPECT_EQ(report.in_flight_high_water, 8u);
  EXPECT_GT(report.backlog_high_water, 0u);
  EXPECT_FALSE(report.scans_per_peer.empty());
}

// The skew denominator must be the mean over ALL live peers — idle peers
// are exactly what a load-imbalance number has to count. (The old report
// divided by the number of peers that happened to serve a scan, which
// understates the skew whenever part of the ring sits idle.)
TEST(QueryEngine, ScanSkewCountsIdlePeersInTheMean) {
  EngineNet t({.r = 6});
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  EngineConfig cfg;
  cfg.search.limit = 0;
  QueryEngine engine(*t.service, t.clock, cfg);

  // A narrow repeated query touches only its own subtree's owners, so most
  // of the 24-peer ring serves nothing.
  for (int i = 0; i < 4; ++i)
    engine.submit(1, KeywordSet{"alpha", "beta", "gamma"});
  t.clock.run();

  const EngineReport report = engine.report();
  ASSERT_FALSE(report.scans_per_peer.empty());
  ASSERT_EQ(report.live_peers, 24u);
  const std::size_t serving = report.scans_per_peer.bins().size();
  ASSERT_LT(serving, report.live_peers);

  std::uint64_t max_load = 0;
  for (const auto& [peer, n] : report.scans_per_peer.bins())
    max_load = std::max(max_load, n);
  const double total = static_cast<double>(report.scans_per_peer.total());
  EXPECT_DOUBLE_EQ(
      report.scan_skew_max_over_mean,
      static_cast<double>(max_load) /
          (total / static_cast<double>(report.live_peers)));
  // Strictly larger than the serving-only mean would make it — the exact
  // regression the all-peers denominator fixes.
  EXPECT_GT(report.scan_skew_max_over_mean,
            static_cast<double>(max_load) /
                (total / static_cast<double>(serving)));
  // And the field is exported for the bench/CI gate.
  EXPECT_NE(report.to_json().find("\"scan_skew_max_over_mean\":"),
            std::string::npos);
}

// --- Loss + retransmission --------------------------------------------------

TEST(QueryEngine, LossyNetworkYieldsExactResultsViaRetransmission) {
  EngineNet t({.r = 6, .step_timeout = 200, .max_retries = 6},
              std::make_unique<sim::UniformLatency>(1, 20), 7);
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);  // publish losslessly, then break the network
  t.net->set_drop_model(std::make_unique<sim::BernoulliDrop>(0.08));

  EngineConfig cfg;
  cfg.max_in_flight = 6;
  cfg.search.limit = 0;
  QueryEngine engine(*t.service, t.clock, cfg);

  // Exact result sets observed through the service layer: the engine hook
  // checks outcome, the service callback is exercised by the engine itself,
  // so verify via an independent serial pass afterwards.
  const auto queries = test_queries();
  for (std::size_t i = 0; i < queries.size(); ++i)
    engine.submit(1 + i % 5, queries[i]);
  t.clock.run();

  ASSERT_EQ(engine.records().size(), queries.size());
  for (const auto& rec : engine.records()) {
    ASSERT_EQ(rec.outcome, QueryOutcome::kCompleted);
    const std::size_t idx = static_cast<std::size_t>(rec.id - 1);
    EXPECT_EQ(rec.hits, ground_truth(sets, queries[idx]).size())
        << "query " << queries[idx].to_string();
  }
  // Loss actually happened and was repaired.
  EXPECT_GT(t.net->messages_lost(), 0u);
  EXPECT_GT(engine.report().retransmits, 0u);
  EXPECT_EQ(t.service->primary_index().in_flight_requests(), 0u);
}

// --- Admission control -------------------------------------------------------

TEST(QueryEngine, ShedsWhenBacklogFull) {
  EngineNet t({.r = 6});
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  EngineConfig cfg;
  cfg.max_in_flight = 2;
  cfg.max_backlog = 2;
  cfg.search.limit = 0;
  QueryEngine engine(*t.service, t.clock, cfg);

  const KeywordSet q{"alpha"};
  for (int i = 0; i < 10; ++i) engine.submit(1, q);
  // Four were accepted (2 in flight + 2 queued); six shed synchronously.
  std::size_t shed = 0;
  for (const auto& rec : engine.records())
    if (rec.outcome == QueryOutcome::kShed) ++shed;
  EXPECT_EQ(shed, 6u);
  EXPECT_EQ(engine.in_flight(), 2u);
  EXPECT_EQ(engine.backlog(), 2u);

  t.clock.run();
  const EngineReport report = engine.report();
  EXPECT_EQ(report.submitted, 10u);
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.shed, 6u);
  EXPECT_EQ(report.backlog_high_water, 2u);
}

TEST(QueryEngine, PriorityBacklogServesHighPriorityFirst) {
  EngineNet t({.r = 6});
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  EngineConfig cfg;
  cfg.max_in_flight = 1;
  cfg.max_backlog = 10;
  cfg.policy = BacklogPolicy::kPriority;
  cfg.search.limit = 0;
  QueryEngine engine(*t.service, t.clock, cfg);

  const std::uint64_t filler = engine.submit(1, KeywordSet{"alpha"}, 0);
  const std::uint64_t low = engine.submit(1, KeywordSet{"beta"}, 0);
  const std::uint64_t high = engine.submit(1, KeywordSet{"gamma"}, 5);
  t.clock.run();

  ASSERT_EQ(engine.records().size(), 3u);
  EXPECT_EQ(engine.records()[0].id, filler);
  EXPECT_EQ(engine.records()[1].id, high);  // jumped the FIFO
  EXPECT_EQ(engine.records()[2].id, low);
}

// --- Deadlines ---------------------------------------------------------------

TEST(QueryEngine, DeadlineTimesOutAndCancelsCleanly) {
  EngineNet t({.r = 6}, std::make_unique<sim::FixedLatency>(10));
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  {
    EngineConfig cfg;
    cfg.max_in_flight = 4;
    cfg.deadline = 5;  // < one network hop: nothing can finish in time
    cfg.search.limit = 0;
    QueryEngine engine(*t.service, t.clock, cfg);
    for (int i = 0; i < 8; ++i) engine.submit(1, KeywordSet{"alpha"});
    t.clock.run();

    ASSERT_EQ(engine.records().size(), 8u);
    for (const auto& rec : engine.records()) {
      EXPECT_EQ(rec.outcome, QueryOutcome::kTimedOut);
      EXPECT_EQ(rec.latency(), 5u);
    }
    EXPECT_EQ(engine.report().timed_out, 8u);
    // Cancellation dropped all coordinator state.
    EXPECT_EQ(t.service->primary_index().in_flight_requests(), 0u);
    EXPECT_EQ(engine.in_flight(), 0u);
  }

  // The service still works after mass cancellation.
  QueryEngine after(*t.service, t.clock,
                    EngineConfig{.max_in_flight = 4, .search = {.limit = 0}});
  after.submit(1, KeywordSet{"alpha"});
  t.clock.run();
  ASSERT_EQ(after.records().size(), 1u);
  EXPECT_EQ(after.records()[0].outcome, QueryOutcome::kCompleted);
  EXPECT_EQ(after.records()[0].hits,
            ground_truth(sets, KeywordSet{"alpha"}).size());
}

TEST(QueryEngine, BacklogEntriesPastDeadlineTimeOutWithoutLaunching) {
  EngineNet t({.r = 6}, std::make_unique<sim::FixedLatency>(50));
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  EngineConfig cfg;
  cfg.max_in_flight = 1;
  cfg.max_backlog = 10;
  cfg.deadline = 60;  // the in-flight query consumes the whole budget
  cfg.search.limit = 0;
  QueryEngine engine(*t.service, t.clock, cfg);
  for (int i = 0; i < 4; ++i) engine.submit(1, KeywordSet{"alpha"});
  t.clock.run();

  ASSERT_EQ(engine.records().size(), 4u);
  std::size_t timed_out = 0;
  for (const auto& rec : engine.records())
    if (rec.outcome == QueryOutcome::kTimedOut) ++timed_out;
  EXPECT_GE(timed_out, 3u);  // the queued ones can never make it
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_EQ(engine.backlog(), 0u);
}

// Regression: the outcome taxonomy is a partition. Every submitted query
// gets exactly one record, the five buckets are disjoint, and they sum to
// submitted. Exercised through the path that used to double-count: a
// priority backlog whose low-priority entries expire while stranded behind
// a stream of high-priority work. Those entries must be reported kTimedOut
// with their *true* expiry time (latency == deadline, never admitted) — not
// silently kept as phantom occupancy that sheds live newcomers, and not
// sealed with the later pop time.
TEST(QueryEngine, BacklogExpiryTaxonomyIsDisjointAndBackdated) {
  const auto sets = catalogue_sets();
  // Measure the (deterministic) cold service time of the probe query.
  sim::Time service_l = 0;
  {
    EngineNet t({.r = 6, .cache_capacity = 0},
                std::make_unique<sim::FixedLatency>(10));
    publish_catalogue(t, sets);
    QueryEngine probe(*t.service, t.clock,
                      EngineConfig{.search = {.limit = 0}});
    probe.submit(1, KeywordSet{"alpha"});
    t.clock.run();
    ASSERT_EQ(probe.records().size(), 1u);
    service_l = probe.records()[0].latency();
    ASSERT_GT(service_l, 0u);
  }
  const sim::Time kL = service_l;
  const sim::Time kDeadline = 3 * kL + kL / 2;
  const sim::Time kStop = kDeadline + 2 * kL;  // when the chain stops

  EngineNet t({.r = 6, .cache_capacity = 0},
              std::make_unique<sim::FixedLatency>(10));
  publish_catalogue(t, sets);
  EngineConfig cfg;
  cfg.max_in_flight = 1;
  cfg.max_backlog = 2;
  cfg.deadline = kDeadline;
  cfg.policy = BacklogPolicy::kPriority;
  cfg.search.limit = 0;
  QueryEngine engine(*t.service, t.clock, cfg);

  const KeywordSet q{"alpha"};
  // Every completion immediately submits a successor: the single slot is
  // handed from query to query at the completion tick itself (submission
  // beats the backlog pump), so the priority-0 entries B and C stay
  // stranded in the backlog past their deadline.
  engine.set_on_finished([&](const QueryRecord& rec) {
    if (rec.outcome == QueryOutcome::kCompleted && t.clock.now() < kStop)
      engine.submit(1, q, 5);
  });
  engine.submit(1, q, 0);  // A: takes the slot, starts the chain
  std::vector<std::uint64_t> stranded;
  stranded.push_back(engine.submit(1, q, 0));  // B
  stranded.push_back(engine.submit(1, q, 0));  // C
  // Pre-expiry pressure: backlog [B, C] is genuinely full of *live*
  // entries, so this submission must shed.
  std::uint64_t shed_id = 0;
  t.clock.schedule_at(kL + kL / 2, [&] { shed_id = engine.submit(1, q, 5); });
  // Post-expiry pressure: B and C are stale now. The old code shed this
  // live submission against their phantom occupancy; the fix times them
  // out (their true outcome) and admits the newcomer.
  std::uint64_t late_id = 0;
  t.clock.schedule_at(kDeadline + kL, [&] {
    late_id = engine.submit(1, q, 0);
  });
  t.clock.run();

  const EngineReport report = engine.report();
  // Exactly one record per submission; buckets partition the submissions.
  ASSERT_EQ(engine.records().size(), report.submitted);
  EXPECT_EQ(report.completed + report.degraded + report.timed_out +
                report.failed + report.shed,
            report.submitted);
  std::map<QueryOutcome, std::uint64_t> by_outcome;
  for (const auto& rec : engine.records()) ++by_outcome[rec.outcome];
  EXPECT_EQ(by_outcome[QueryOutcome::kCompleted], report.completed);
  EXPECT_EQ(by_outcome[QueryOutcome::kTimedOut], report.timed_out);
  EXPECT_EQ(by_outcome[QueryOutcome::kShed], report.shed);

  EXPECT_EQ(report.timed_out, 2u);            // exactly B and C
  EXPECT_EQ(report.timed_out_in_backlog, 2u); // both expired while queued
  EXPECT_EQ(report.shed, 1u);                 // only the pre-expiry probe
  EXPECT_GE(report.completed, 4u);            // A, chain, and the late query

  ASSERT_NE(shed_id, 0u);
  ASSERT_NE(late_id, 0u);
  for (const auto& rec : engine.records()) {
    const bool is_stranded = std::find(stranded.begin(), stranded.end(),
                                       rec.id) != stranded.end();
    if (is_stranded) {
      // Timed out in the backlog: sealed at the true expiry (latency reads
      // exactly the deadline, not the later sweep time), never admitted.
      EXPECT_EQ(rec.outcome, QueryOutcome::kTimedOut);
      EXPECT_EQ(rec.latency(), kDeadline);
      EXPECT_EQ(rec.admitted, 0u);
    } else if (rec.id == shed_id) {
      EXPECT_EQ(rec.outcome, QueryOutcome::kShed);
    } else {
      EXPECT_EQ(rec.outcome, QueryOutcome::kCompleted)
          << "query " << rec.id;
    }
  }
}

// Pre-fix-failing: high-water marks and the windowed in_flight/backlog
// gauges must track every transition. The old code sampled the windowed
// gauges on submission entry — before the backlog push — so the exported
// peak under-read the true high water.
TEST(QueryEngine, GaugesTrackPeaksOnEveryTransition) {
  EngineNet t({.r = 6, .cache_capacity = 0},
              std::make_unique<sim::FixedLatency>(10));
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  obs::WindowedMetrics windows(1u << 30);  // one window spans the whole run
  EngineConfig cfg;
  cfg.max_in_flight = 1;
  cfg.max_backlog = 10;
  cfg.search.limit = 0;
  cfg.windows = &windows;
  QueryEngine engine(*t.service, t.clock, cfg);
  for (int i = 0; i < 4; ++i) engine.submit(1, KeywordSet{"alpha"});
  const EngineReport mid = engine.report();
  EXPECT_EQ(mid.backlog_high_water, 3u);
  t.clock.run();

  const EngineReport report = engine.report();
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.in_flight_high_water, 1u);
  EXPECT_EQ(report.backlog_high_water, 3u);
  double gauge_backlog_max = 0.0;
  double gauge_in_flight_max = 0.0;
  for (const auto& [k, w] : windows.windows()) {
    const auto bl = w.gauges.find("backlog");
    if (bl != w.gauges.end())
      gauge_backlog_max = std::max(gauge_backlog_max, bl->second);
    const auto fl = w.gauges.find("in_flight");
    if (fl != w.gauges.end())
      gauge_in_flight_max = std::max(gauge_in_flight_max, fl->second);
  }
  // The exported peaks agree with the report's high-water marks.
  EXPECT_EQ(gauge_backlog_max,
            static_cast<double>(report.backlog_high_water));
  EXPECT_EQ(gauge_in_flight_max,
            static_cast<double>(report.in_flight_high_water));
}

// --- Adaptive admission ------------------------------------------------------

// Overload recovery: drive the adaptive engine past saturation (sheds and
// in-flight timeouts), then drop the load and assert the backlog drains,
// shedding stops, and the AIMD limit resumes growing — no hysteresis
// lock-up at the floor.
TEST(QueryEngine, AdaptiveAdmissionRecoversAfterOverload) {
  const auto sets = catalogue_sets();
  // Cold (first-ever) and warm (contact caches primed) service latency of
  // the probe query — both deterministic under fixed link latency.
  sim::Time cold_l = 0, warm_l = 0;
  {
    EngineNet t({.r = 6, .cache_capacity = 0},
                std::make_unique<sim::FixedLatency>(10));
    publish_catalogue(t, sets);
    QueryEngine probe(*t.service, t.clock,
                      EngineConfig{.search = {.limit = 0}});
    for (int i = 0; i < 3; ++i) {
      probe.submit(1, KeywordSet{"alpha"});
      t.clock.run();
    }
    ASSERT_EQ(probe.records().size(), 3u);
    cold_l = probe.records()[0].latency();
    warm_l = probe.records()[2].latency();
  }
  // The scenario needs cold queries to finish within the deadline while
  // backlogged queries (whose budget the queue wait burned) cannot.
  ASSERT_LT(cold_l, 2 * warm_l);
  ASSERT_GT(cold_l, warm_l);

  EngineNet t({.r = 6, .cache_capacity = 0},
              std::make_unique<sim::FixedLatency>(10));
  publish_catalogue(t, sets);
  EngineConfig cfg;
  cfg.max_in_flight = 8;  // the controller's starting point
  cfg.max_backlog = 40;
  cfg.deadline = 2 * warm_l;
  cfg.adaptive.enabled = true;
  cfg.adaptive.min_in_flight = 2;
  cfg.adaptive.max_in_flight = 64;
  cfg.adaptive.latency_target = 2 * warm_l;
  cfg.adaptive.backlog_per_slot = 2.0;
  cfg.search.limit = 0;
  QueryEngine engine(*t.service, t.clock, cfg);
  EXPECT_EQ(engine.in_flight_limit(), 8u);
  const sim::Time kL = cold_l;

  // Saturation burst: far more than in-flight + backlog capacity.
  const KeywordSet q{"alpha"};
  for (int i = 0; i < 60; ++i) engine.submit(1, q);
  t.clock.run();

  const EngineReport burst = engine.report();
  EXPECT_GT(burst.shed, 0u);       // admission actually saturated
  EXPECT_GT(burst.timed_out, 0u);  // stale queries timed out, not served
  EXPECT_GT(burst.completed, 0u);
  EXPECT_EQ(burst.completed + burst.degraded + burst.timed_out +
                burst.failed + burst.shed,
            burst.submitted);
  // The overload signal fired at least once.
  EXPECT_GE(engine.metrics().counter("engine.admit_decrease"), 1u);
  EXPECT_EQ(engine.backlog(), 0u);
  EXPECT_EQ(engine.in_flight(), 0u);
  const std::size_t limit_after_burst = engine.in_flight_limit();
  EXPECT_GE(limit_after_burst, cfg.adaptive.min_in_flight);

  // Recovery: a light trickle, well spaced. Everything must complete and
  // the limit must climb again (additive increase still alive).
  const std::uint64_t first_trickle_id = burst.submitted + 1;
  for (sim::Time k = 0; k < 24; ++k)
    t.clock.schedule_at(t.clock.now() + 1 + k * 3 * kL,
                        [&] { engine.submit(1, q); });
  t.clock.run();

  const EngineReport after = engine.report();
  EXPECT_EQ(after.submitted, burst.submitted + 24);
  EXPECT_EQ(after.shed, burst.shed);            // shedding stopped
  EXPECT_EQ(after.timed_out, burst.timed_out);  // no lingering timeouts
  EXPECT_EQ(engine.backlog(), 0u);              // backlog drained
  for (const auto& rec : engine.records())
    if (rec.id >= first_trickle_id)
      EXPECT_EQ(rec.outcome, QueryOutcome::kCompleted);
  EXPECT_GT(engine.in_flight_limit(), limit_after_burst);
}

// --- Trace records -----------------------------------------------------------

TEST(QueryEngine, TraceRecordsCoverQueryLifecycle) {
  EngineNet t({.r = 6});
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  EngineConfig cfg;
  cfg.search.limit = 0;
  cfg.search.strategy = index::SearchStrategy::kLevelParallel;
  QueryEngine engine(*t.service, t.clock, cfg);
  engine.submit(1, KeywordSet{"alpha"});
  t.clock.run();

  ASSERT_EQ(engine.records().size(), 1u);
  const auto& trace = engine.records()[0].trace;
  auto has = [&](const char* point) {
    return std::any_of(trace.begin(), trace.end(), [&](const TracePoint& p) {
      return std::string(p.point) == point;
    });
  };
  EXPECT_TRUE(has("submit"));
  EXPECT_TRUE(has("admit"));
  EXPECT_TRUE(has("root"));
  EXPECT_TRUE(has("level"));
  EXPECT_TRUE(has("scan"));
  EXPECT_TRUE(has("complete"));
  // Timestamps are monotone.
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].at, trace[i - 1].at);
}

// --- Mirrored service --------------------------------------------------------

TEST(QueryEngine, MirroredServiceSmoke) {
  EngineNet t({.r = 6, .mirror_index = true});
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  EngineConfig cfg;
  cfg.max_in_flight = 4;
  cfg.search.limit = 0;
  QueryEngine engine(*t.service, t.clock, cfg);
  const auto queries = test_queries();
  for (std::size_t i = 0; i < 6; ++i) engine.submit(1, queries[i]);
  t.clock.run();

  ASSERT_EQ(engine.records().size(), 6u);
  for (const auto& rec : engine.records()) {
    EXPECT_EQ(rec.outcome, QueryOutcome::kCompleted);
    const std::size_t idx = static_cast<std::size_t>(rec.id - 1);
    EXPECT_EQ(rec.hits, ground_truth(sets, queries[idx]).size());
  }
}

// --- Degraded-mode SLO accounting --------------------------------------------

// Regression for the outcome split: deadline misses (kTimedOut), protocol
// give-ups (kFailed), and failover-served answers (kDegraded) must land in
// separate report buckets. The degraded bucket is produced
// deterministically via the stale-contact failover path: a first round of
// queries warms the per-peer contact caches, then a contacted peer dies
// *without any repair* — the next traversal that reaches for the cached
// contact finds it stale, re-routes to the surrogate owner, and the answer
// is flagged degraded instead of failing.
TEST(QueryEngine, DegradedOutcomesAccountedSeparately) {
  const auto sets = catalogue_sets();
  const auto queries = test_queries();
  // The right victim depends on the placement hashes, so scan candidates
  // deterministically until one of them degrades at least one query.
  for (sim::EndpointId victim = 2; victim <= 24; ++victim) {
    // Query caching off: round two must re-traverse, not answer from cache.
    EngineNet t({.r = 6,
                 .mirror_index = true,
                 .cache_capacity = 0,
                 .step_timeout = 200,
                 .max_retries = 2},
                std::make_unique<sim::UniformLatency>(1, 20), 7);
    publish_catalogue(t, sets);

    EngineConfig cfg;
    cfg.max_in_flight = 4;
    cfg.search.limit = 0;
    QueryEngine engine(*t.service, t.clock, cfg);
    for (std::size_t i = 0; i < queries.size(); ++i)
      engine.submit(1, queries[i]);  // warm contact caches
    t.clock.run();
    t.dht->fail(victim);
    for (std::size_t i = 0; i < queries.size(); ++i)
      engine.submit(1, queries[i]);  // these hit stale contacts
    t.clock.run();

    const EngineReport report = engine.report();
    if (report.degraded == 0) continue;  // victim was never a contact

    ASSERT_EQ(engine.records().size(), 2 * queries.size());
    EXPECT_EQ(report.completed + report.degraded + report.failed,
              report.submitted);
    EXPECT_EQ(report.timed_out, 0u);
    EXPECT_EQ(report.shed, 0u);
    std::uint64_t degraded = 0, completed = 0;
    for (const auto& rec : engine.records()) {
      if (rec.outcome == QueryOutcome::kDegraded) {
        ++degraded;
        // Round one is pristine; only post-failure queries may degrade.
        EXPECT_GT(rec.id, queries.size());
        EXPECT_TRUE(rec.stats.degraded);
        EXPECT_FALSE(rec.stats.failed);
        EXPECT_GE(rec.stats.failovers, 1u);
      } else if (rec.outcome == QueryOutcome::kCompleted) {
        ++completed;
        EXPECT_FALSE(rec.stats.degraded);
      }
    }
    EXPECT_EQ(report.degraded, degraded);
    EXPECT_EQ(report.completed, completed);
    // The mid-query failovers behind the degraded answers were counted.
    EXPECT_GE(report.failovers, report.degraded);
    EXPECT_EQ(std::string(to_string(QueryOutcome::kDegraded)), "degraded");
    return;
  }
  FAIL() << "no victim degraded any query; failover path never exercised";
}

// --- Load driver -------------------------------------------------------------

TEST(LoadDriver, ReplaysWholeLogOpenLoop) {
  EngineNet t({.r = 6});
  const auto sets = catalogue_sets();
  publish_catalogue(t, sets);

  EngineConfig cfg;
  cfg.max_in_flight = 4;
  cfg.search.limit = 0;
  QueryEngine engine(*t.service, t.clock, cfg);

  std::vector<workload::Query> qs;
  const auto queries = test_queries();
  for (std::size_t i = 0; i < 10; ++i)
    qs.push_back({queries[i % queries.size()], i});
  workload::QueryLog log(qs);
  workload::FixedArrivals gaps(5);
  LoadDriver driver(engine, t.clock, {1, 2, 3});
  driver.start(log, gaps);
  t.clock.run();

  EXPECT_TRUE(driver.done());
  EXPECT_EQ(driver.submitted(), 10u);
  ASSERT_EQ(engine.records().size(), 10u);
  for (const auto& rec : engine.records())
    EXPECT_EQ(rec.outcome, QueryOutcome::kCompleted);
  // Open-loop pacing: submissions 5 ticks apart regardless of service.
  std::vector<sim::Time> submits;
  for (const auto& rec : engine.records()) submits.push_back(rec.submitted);
  std::sort(submits.begin(), submits.end());
  for (std::size_t i = 1; i < submits.size(); ++i)
    EXPECT_EQ(submits[i] - submits[i - 1], 5u);
}

TEST(PoissonArrivals, MeanGapMatchesRate) {
  workload::PoissonArrivals arrivals(100.0, 11);  // 100 q/kilotick => mean 10
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    total += static_cast<double>(arrivals.next_gap());
  const double mean_gap = total / n;
  EXPECT_NEAR(mean_gap, 10.0, 0.5);
}

}  // namespace
}  // namespace hkws::engine
