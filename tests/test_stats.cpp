#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hkws {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(gini({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(Stats, PercentileValidatesInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, GiniUniformIsZero) {
  EXPECT_NEAR(gini({5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(Stats, GiniConcentratedApproachesOne) {
  std::vector<double> xs(100, 0.0);
  xs[0] = 1000;
  EXPECT_GT(gini(xs), 0.95);
}

TEST(Stats, GiniIsScaleInvariant) {
  const std::vector<double> a{1, 2, 3, 10};
  std::vector<double> b;
  for (double x : a) b.push_back(x * 37);
  EXPECT_NEAR(gini(a), gini(b), 1e-12);
}

TEST(Stats, GiniAllZeroLoadsIsZero) {
  EXPECT_EQ(gini({0, 0, 0}), 0.0);
}

TEST(LoadCurve, EndpointsAndMonotonicity) {
  const auto curve = ranked_load_curve({3, 1, 4, 1, 5, 9, 2, 6});
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().node_fraction, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().load_fraction, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().node_fraction, 1.0);
  EXPECT_NEAR(curve.back().load_fraction, 1.0, 1e-12);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].node_fraction, curve[i - 1].node_fraction);
    EXPECT_GE(curve[i].load_fraction, curve[i - 1].load_fraction);
  }
}

TEST(LoadCurve, IsConcaveBecauseSortedDescending) {
  // Heaviest-first accumulation implies the curve lies above the diagonal.
  const auto curve = ranked_load_curve({10, 8, 5, 2, 1});
  for (const auto& p : curve)
    EXPECT_GE(p.load_fraction, p.node_fraction - 1e-12);
}

TEST(LoadCurve, PerfectBalanceIsDiagonal) {
  const auto curve = ranked_load_curve({2, 2, 2, 2});
  for (const auto& p : curve)
    EXPECT_NEAR(p.load_fraction, p.node_fraction, 1e-12);
}

TEST(LoadCurve, DownsamplingKeepsEndpoints) {
  std::vector<double> loads(1000);
  for (std::size_t i = 0; i < loads.size(); ++i)
    loads[i] = static_cast<double>(i % 17);
  const auto curve = ranked_load_curve(loads, 50);
  EXPECT_LE(curve.size(), 55u);
  EXPECT_DOUBLE_EQ(curve.front().node_fraction, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().node_fraction, 1.0);
}

TEST(LoadCurve, EmptyInputGivesEmptyCurve) {
  EXPECT_TRUE(ranked_load_curve({}).empty());
}

TEST(LoadCurve, DownsamplingRespectsMaxPoints) {
  // Regression: the step was computed with truncating division, so e.g.
  // 1999 loads at max_points=1000 gave step 1 and ~2000 points — double
  // the cap. A ceiling step keeps the curve within max_points (+ the two
  // forced endpoints).
  std::vector<double> loads(1999);
  for (std::size_t i = 0; i < loads.size(); ++i)
    loads[i] = static_cast<double>(i % 13);
  const auto curve = ranked_load_curve(loads, 1000);
  EXPECT_LE(curve.size(), 1002u);
  EXPECT_DOUBLE_EQ(curve.front().node_fraction, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().node_fraction, 1.0);
}

TEST(Percentiles, MatchesSingleCalls) {
  const std::vector<double> xs{9, 1, 4, 7, 2, 8, 3, 5, 6};
  const std::vector<double> ps{0, 25, 50, 90, 100};
  const auto got = percentiles(xs, ps);
  ASSERT_EQ(got.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_DOUBLE_EQ(got[i], percentile(xs, ps[i])) << "p=" << ps[i];
}

TEST(Percentiles, ValidatesInput) {
  EXPECT_THROW(percentiles({}, {50}), std::invalid_argument);
  EXPECT_THROW(percentiles({1.0}, {-1}), std::invalid_argument);
  EXPECT_THROW(percentiles({1.0}, {50, 101}), std::invalid_argument);
  EXPECT_TRUE(percentiles({1.0}, {}).empty());
}

TEST(Histogram, CountsAndFractions) {
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(7, 2);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 2u);
  EXPECT_EQ(h.count(99), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.5);
  EXPECT_DOUBLE_EQ(h.hist_mean(), 5.0);
  EXPECT_EQ(h.min_value(), 3);
  EXPECT_EQ(h.max_value(), 7);
}

TEST(Histogram, EmptyBehaviour) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.fraction(1), 0.0);
  EXPECT_EQ(h.hist_mean(), 0.0);
}

TEST(Histogram, EmptyMinMaxThrow) {
  // Regression: min_value()/max_value() dereferenced begin()/rbegin() of an
  // empty map — undefined behaviour instead of a diagnosable error.
  Histogram h;
  EXPECT_THROW(h.min_value(), std::logic_error);
  EXPECT_THROW(h.max_value(), std::logic_error);
  h.add(5);
  EXPECT_EQ(h.min_value(), 5);
  EXPECT_EQ(h.max_value(), 5);
}

}  // namespace
}  // namespace hkws
