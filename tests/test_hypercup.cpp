#include "cubenet/hypercup_index.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/rng.hpp"
#include "index/logical_index.hpp"

namespace hkws::cubenet {
namespace {

std::set<ObjectId> ids_of(const std::vector<index::Hit>& hits) {
  std::set<ObjectId> out;
  for (const auto& h : hits) out.insert(h.object);
  return out;
}

struct CupNet {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<HyperCupNetwork> cup;
  std::unique_ptr<HyperCupIndex> index;

  explicit CupNet(int r) {
    net = std::make_unique<sim::Network>(clock);
    cup = std::make_unique<HyperCupNetwork>(*net, HyperCupNetwork::Config{r});
    index = std::make_unique<HyperCupIndex>(*cup, HyperCupIndex::Config{});
  }

  index::SearchResult superset(cube::CubeId searcher, const KeywordSet& q,
                               std::size_t t = 0) {
    std::optional<index::SearchResult> result;
    index->superset_search(searcher, q, t,
                           [&](const index::SearchResult& r) { result = r; });
    clock.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(index::SearchResult{});
  }
};

TEST(HyperCupNetwork, RejectsOversizedCube) {
  sim::EventQueue clock;
  sim::Network net(clock);
  EXPECT_THROW(HyperCupNetwork(net, {.r = 21}), std::invalid_argument);
}

TEST(HyperCupNetwork, RouteCostsHammingDistance) {
  CupNet t(6);
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const cube::CubeId a = rng.next_below(64);
    const cube::CubeId b = rng.next_below(64);
    std::optional<int> hops;
    t.cup->route(a, b, "test", 8, [&](int h) { hops = h; });
    t.clock.run();
    ASSERT_TRUE(hops.has_value());
    EXPECT_EQ(*hops, cube::Hypercube::hamming(a, b));
  }
}

TEST(HyperCupNetwork, SelfRouteIsFree) {
  CupNet t(4);
  std::optional<int> hops;
  t.cup->route(5, 5, "test", 8, [&](int h) { hops = h; });
  t.clock.run();
  EXPECT_EQ(*hops, 0);
}

TEST(HyperCupNetwork, SendEdgeRequiresNeighbors) {
  CupNet t(4);
  EXPECT_NO_THROW(t.cup->send_edge(0b0000, 0b0001, "e", 1, [] {}));
  EXPECT_THROW(t.cup->send_edge(0b0000, 0b0011, "e", 1, [] {}),
               std::invalid_argument);
  EXPECT_THROW(t.cup->send_edge(0b0101, 0b0101, "e", 1, [] {}),
               std::invalid_argument);
  t.clock.run();
}

TEST(HyperCupIndex, InsertCostsHammingToResponsibleNode) {
  CupNet t(6);
  const KeywordSet k({"news", "tv"});
  const auto u = t.index->responsible_node(k);
  std::optional<int> hops;
  t.index->insert(0, 1, k, [&](int h) { hops = h; });
  t.clock.run();
  EXPECT_EQ(*hops, cube::Hypercube::hamming(0, u));
  EXPECT_EQ(t.index->table_at(u).exact(k), std::vector<ObjectId>{1});
}

TEST(HyperCupIndex, PinSearchExactMatch) {
  CupNet t(6);
  t.index->insert(0, 1, KeywordSet({"a", "b"}));
  t.index->insert(0, 2, KeywordSet({"a", "b", "c"}));
  t.clock.run();
  std::optional<index::SearchResult> result;
  t.index->pin_search(3, KeywordSet({"a", "b"}),
                      [&](const index::SearchResult& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ids_of(result->hits), (std::set<ObjectId>{1}));
}

TEST(HyperCupIndex, SupersetMatchesLogicalIndex) {
  CupNet t(8);
  index::LogicalIndex logical({.r = 8});
  Rng rng(2);
  std::map<ObjectId, KeywordSet> objects;
  for (ObjectId id = 1; id <= 200; ++id) {
    std::vector<Keyword> words;
    const int n = 1 + static_cast<int>(rng.next_below(5));
    for (int i = 0; i < n; ++i)
      words.push_back("w" + std::to_string(rng.next_below(30)));
    objects[id] = KeywordSet(std::move(words));
    t.index->insert(rng.next_below(256), id, objects[id]);
    logical.insert(id, objects[id]);
  }
  t.clock.run();

  for (int trial = 0; trial < 25; ++trial) {
    auto it = objects.begin();
    std::advance(it, rng.next_below(objects.size()));
    const KeywordSet query({it->second.words().front()});
    const auto physical = t.superset(rng.next_below(256), query);
    const auto reference = logical.superset_search(query);
    EXPECT_EQ(ids_of(physical.hits), ids_of(reference.hits))
        << query.to_string();
    EXPECT_TRUE(physical.stats.complete);
    // Tree forwarding touches every subcube node, like the reference.
    EXPECT_EQ(physical.stats.nodes_contacted,
              reference.stats.nodes_contacted);
  }
}

TEST(HyperCupIndex, TreeForwardingLatencyIsSubcubeDepth) {
  CupNet t(10);
  t.index->insert(0, 1, KeywordSet({"a", "b"}));
  t.clock.run();
  const KeywordSet query({"a", "b"});
  const auto root = t.index->responsible_node(query);
  const auto result = t.superset(0, query);
  EXPECT_EQ(result.stats.levels,
            static_cast<std::size_t>(t.index->cube().zero_count(root)) + 1);
}

TEST(HyperCupIndex, ThresholdTruncatesAndPrunes) {
  CupNet t(8);
  for (ObjectId o = 1; o <= 60; ++o)
    t.index->insert(0, o, KeywordSet({"pop", "x" + std::to_string(o)}));
  t.clock.run();
  const auto some = t.superset(0, KeywordSet({"pop"}), 5);
  EXPECT_EQ(some.hits.size(), 5u);
  EXPECT_FALSE(some.stats.complete);
  const auto all = t.superset(0, KeywordSet({"pop"}), 0);
  EXPECT_EQ(all.hits.size(), 60u);
  // Credits prune branches: the bounded search sends fewer messages.
  EXPECT_LT(some.stats.messages, all.stats.messages);
}

TEST(HyperCupIndex, RemoveDeletesEntry) {
  CupNet t(6);
  const KeywordSet k({"z"});
  t.index->insert(0, 9, k);
  t.clock.run();
  t.index->remove(0, 9, k);
  t.clock.run();
  EXPECT_TRUE(t.superset(0, k).hits.empty());
}

TEST(HyperCupIndex, CorrectUnderMessageReordering) {
  // The tree-forwarding flood and its convergecast must complete with
  // exact results under arbitrary message reordering.
  sim::EventQueue clock;
  sim::Network net(clock, std::make_unique<sim::UniformLatency>(1, 40), 5);
  HyperCupNetwork cup(net, {.r = 7});
  HyperCupIndex index(cup, {});
  index::LogicalIndex logical({.r = 7});
  Rng rng(9);
  for (ObjectId id = 1; id <= 150; ++id) {
    std::vector<Keyword> words;
    const int n = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < n; ++i)
      words.push_back("w" + std::to_string(rng.next_below(25)));
    const KeywordSet k(words);
    index.insert(rng.next_below(128), id, k);
    logical.insert(id, k);
  }
  clock.run();

  for (int trial = 0; trial < 10; ++trial) {
    const KeywordSet query({"w" + std::to_string(rng.next_below(25))});
    std::optional<index::SearchResult> result;
    index.superset_search(rng.next_below(128), query, 0,
                          [&](const index::SearchResult& r) { result = r; });
    clock.run();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(ids_of(result->hits),
              ids_of(logical.superset_search(query).hits))
        << query.to_string();
    EXPECT_TRUE(result->stats.complete);
  }
}

TEST(HyperCupIndex, MessageCountScalesWithSubcubeNotCube) {
  // A query with more keywords explores a smaller subcube and costs fewer
  // messages — the core efficiency claim, on the physical substrate.
  CupNet t(10);
  Rng rng(3);
  for (ObjectId o = 1; o <= 300; ++o) {
    std::vector<Keyword> words{"k1", "k2", "k3"};
    words.push_back("v" + std::to_string(o));
    t.index->insert(rng.next_below(1024), o, KeywordSet(std::move(words)));
  }
  t.clock.run();
  const auto wide = t.superset(0, KeywordSet({"k1"}));
  const auto narrow = t.superset(0, KeywordSet({"k1", "k2", "k3"}));
  EXPECT_EQ(ids_of(wide.hits), ids_of(narrow.hits));
  EXPECT_GT(wide.stats.messages, narrow.stats.messages);
  EXPECT_GT(wide.stats.nodes_contacted, narrow.stats.nodes_contacted);
}

}  // namespace
}  // namespace hkws::cubenet
