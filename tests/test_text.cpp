#include "workload/text.hpp"

#include <gtest/gtest.h>

namespace hkws::workload {
namespace {

TEST(Text, BasicTokenization) {
  const auto k = keywords_from_text("Largest ISP in Taiwan!");
  EXPECT_EQ(k, KeywordSet({"largest", "isp", "taiwan"}));  // "in" is a stop word
}

TEST(Text, CaseFoldingAndDeduplication) {
  const auto k = keywords_from_text("News NEWS news TVBS tvbs");
  EXPECT_EQ(k, KeywordSet({"news", "tvbs"}));
}

TEST(Text, PreservesProgrammingTokens) {
  const auto k = keywords_from_text("We use C++ and C#, plus e-mail.");
  EXPECT_TRUE(k.contains("c++"));
  EXPECT_TRUE(k.contains("c#"));
  EXPECT_TRUE(k.contains("e-mail"));
}

TEST(Text, LengthFilters) {
  TokenizerOptions opts;
  opts.min_length = 3;
  opts.max_length = 6;
  const auto k = keywords_from_text("ab abc abcdef abcdefg", opts);
  EXPECT_EQ(k, KeywordSet({"abc", "abcdef"}));
}

TEST(Text, CapsKeywordCount) {
  TokenizerOptions opts;
  opts.max_keywords = 3;
  const auto k = keywords_from_text("one two three four five", opts);
  EXPECT_EQ(k.size(), 3u);
  // First-come order before canonicalization.
  EXPECT_TRUE(k.contains("one"));
  EXPECT_TRUE(k.contains("two"));
  EXPECT_TRUE(k.contains("three"));
}

TEST(Text, CustomStopWords) {
  TokenizerOptions opts;
  opts.stop_words = {"der", "die", "das"};
  const auto k = keywords_from_text("der die das hund", opts);
  EXPECT_EQ(k, KeywordSet({"hund"}));
}

TEST(Text, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(keywords_from_text("").empty());
  EXPECT_TRUE(keywords_from_text("... !!! ???").empty());
}

TEST(Text, NoLowercaseOption) {
  TokenizerOptions opts;
  opts.lowercase = false;
  const auto k = keywords_from_text("TVBS News", opts);
  EXPECT_TRUE(k.contains("TVBS"));
  EXPECT_TRUE(k.contains("News"));
}

TEST(Text, DigitsAndMixedTokens) {
  const auto k = keywords_from_text("mp3 h264 4k video");
  EXPECT_TRUE(k.contains("mp3"));
  EXPECT_TRUE(k.contains("h264"));
  EXPECT_TRUE(k.contains("4k"));
}

}  // namespace
}  // namespace hkws::workload
