#include "analysis/occupancy.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "analysis/load_metrics.hpp"
#include "common/rng.hpp"

namespace hkws::analysis {
namespace {

TEST(Occupancy, DegenerateCases) {
  EXPECT_DOUBLE_EQ(occupancy_pmf(10, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(occupancy_pmf(10, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(occupancy_pmf(10, 5, 0), 0.0);
  EXPECT_DOUBLE_EQ(occupancy_pmf(10, 5, 6), 0.0);   // j > m
  EXPECT_DOUBLE_EQ(occupancy_pmf(4, 10, 5), 0.0);   // j > r
  EXPECT_THROW(occupancy_pmf(0, 1, 1), std::invalid_argument);
}

TEST(Occupancy, OneKeywordAlwaysOneBit) {
  for (int r : {2, 8, 16}) {
    EXPECT_NEAR(occupancy_pmf(r, 1, 1), 1.0, 1e-12);
    EXPECT_NEAR(occupancy_expected(r, 1), 1.0, 1e-12);
  }
}

TEST(Occupancy, TwoKeywordsCollideWithProbOneOverR) {
  const int r = 10;
  EXPECT_NEAR(occupancy_pmf(r, 2, 1), 1.0 / r, 1e-12);
  EXPECT_NEAR(occupancy_pmf(r, 2, 2), 1.0 - 1.0 / r, 1e-12);
}

class OccupancySums : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(OccupancySums, DistributionSumsToOne) {
  const auto [r, m] = GetParam();
  const auto dist = occupancy_distribution(r, m);
  double sum = 0;
  for (double p : dist) {
    EXPECT_GE(p, -1e-9);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-8) << "r=" << r << " m=" << m;
}

TEST_P(OccupancySums, ExpectationMatchesClosedForm) {
  const auto [r, m] = GetParam();
  const auto dist = occupancy_distribution(r, m);
  double mean = 0;
  for (std::size_t j = 0; j < dist.size(); ++j)
    mean += static_cast<double>(j) * dist[j];
  EXPECT_NEAR(mean, occupancy_expected(r, m), 1e-6) << "r=" << r << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OccupancySums,
    ::testing::Values(std::pair{2, 1}, std::pair{8, 3}, std::pair{10, 7},
                      std::pair{10, 20}, std::pair{12, 7}, std::pair{16, 30},
                      std::pair{32, 12}, std::pair{63, 63}));

TEST(Occupancy, StableRecurrenceMatchesEq1WhereEq1IsStable) {
  // The production DP must agree with the paper's literal Eq. (1) wherever
  // the alternating sum is numerically trustworthy.
  for (int r : {2, 6, 10, 16, 24}) {
    for (int m : {1, 2, 5, 7, 12}) {
      for (int j = 0; j <= r; ++j) {
        EXPECT_NEAR(occupancy_pmf(r, m, j), occupancy_pmf_eq1(r, m, j), 1e-9)
            << "r=" << r << " m=" << m << " j=" << j;
      }
    }
  }
}

TEST(Occupancy, MatchesMonteCarlo) {
  constexpr int kR = 10, kM = 7, kTrials = 200000;
  hkws::Rng rng(77);
  std::vector<int> counts(kR + 1, 0);
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t mask = 0;
    for (int i = 0; i < kM; ++i) mask |= 1ULL << rng.next_below(kR);
    ++counts[std::popcount(mask)];
  }
  for (int j = 0; j <= kR; ++j) {
    const double expected = occupancy_pmf(kR, kM, j) * kTrials;
    EXPECT_NEAR(static_cast<double>(counts[j]), expected,
                5 * std::sqrt(expected + 1) + 5)
        << "j=" << j;
  }
}

TEST(Occupancy, ExpectedSearchFractionApproaches2ToMinusM) {
  // For m << r, |One| = m almost surely, so the fraction is ~2^-m.
  EXPECT_NEAR(expected_search_fraction(32, 1), 0.5, 1e-9);
  EXPECT_NEAR(expected_search_fraction(32, 2), 0.25, 0.02);
  EXPECT_NEAR(expected_search_fraction(32, 3), 0.125, 0.02);
  // For small r, keyword collisions inflate it above 2^-m (the paper's
  // observation that r = 8 sits above the 2^-m line).
  EXPECT_GT(expected_search_fraction(8, 3), 0.125);
  EXPECT_GT(expected_search_fraction(8, 5), expected_search_fraction(12, 5));
  // m = 0 (empty query) would have to search everything.
  EXPECT_DOUBLE_EQ(expected_search_fraction(10, 0), 1.0);
}

TEST(Occupancy, NodeDistributionIsBinomialHalf) {
  const auto dist = node_one_bits_distribution(4);
  ASSERT_EQ(dist.size(), 5u);
  EXPECT_NEAR(dist[0], 1.0 / 16, 1e-12);
  EXPECT_NEAR(dist[1], 4.0 / 16, 1e-12);
  EXPECT_NEAR(dist[2], 6.0 / 16, 1e-12);
  // Matches the measured node census.
  const auto measured = node_fraction_by_one_bits(4);
  for (std::size_t i = 0; i < dist.size(); ++i)
    EXPECT_NEAR(dist[i], measured[i], 1e-12);
}

TEST(Occupancy, ObjectDistributionMixesBySetSize) {
  hkws::Histogram sizes;
  sizes.add(1, 50);
  sizes.add(3, 50);
  const auto dist = object_one_bits_distribution(6, sizes);
  // Half the mass has exactly 1 bit plus the 3-keyword collapse cases.
  EXPECT_NEAR(dist[1], 0.5 + 0.5 * occupancy_pmf(6, 3, 1), 1e-9);
  double sum = 0;
  for (double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Occupancy, TotalVariationBasics) {
  EXPECT_DOUBLE_EQ(total_variation({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(total_variation({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(total_variation({1.0}, {0.0, 1.0}), 1.0);  // padding
}

TEST(Occupancy, RecommendDimensionPrefersPaperRange) {
  // A PCHome-like size histogram (mean ~7.3) should recommend r near 10
  // (the paper's empirically best dimension, Figs. 6-7).
  hkws::Histogram sizes;
  sizes.add(3, 10);
  sizes.add(5, 20);
  sizes.add(6, 25);
  sizes.add(7, 20);
  sizes.add(8, 15);
  sizes.add(10, 14);
  sizes.add(13, 10);
  sizes.add(16, 5);
  sizes.add(20, 2);
  const int r = recommend_dimension(sizes, 6, 16);
  EXPECT_GE(r, 8);
  EXPECT_LE(r, 12);
}

TEST(Occupancy, RecommendDimensionValidatesRange) {
  hkws::Histogram sizes;
  sizes.add(5, 1);
  EXPECT_THROW(recommend_dimension(sizes, 0, 4), std::invalid_argument);
  EXPECT_THROW(recommend_dimension(sizes, 8, 4), std::invalid_argument);
}

TEST(LoadMetrics, DirectHashLoadsSumToObjectCount) {
  const auto loads = direct_hash_loads(5000, 6, 3);
  EXPECT_EQ(loads.size(), 64u);
  std::size_t total = 0;
  for (std::size_t l : loads) total += l;
  EXPECT_EQ(total, 5000u);
}

TEST(LoadMetrics, LoadFractionByOneBits) {
  std::vector<std::size_t> loads(8, 0);  // r = 3
  loads[0b000] = 10;
  loads[0b011] = 30;
  loads[0b111] = 60;
  const auto frac = load_fraction_by_one_bits(loads, 3);
  EXPECT_DOUBLE_EQ(frac[0], 0.1);
  EXPECT_DOUBLE_EQ(frac[2], 0.3);
  EXPECT_DOUBLE_EQ(frac[3], 0.6);
  EXPECT_THROW(load_fraction_by_one_bits(loads, 4), std::invalid_argument);
}

}  // namespace
}  // namespace hkws::analysis
