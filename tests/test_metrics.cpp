#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hkws::sim {
namespace {

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  EXPECT_EQ(m.counter("net.messages"), 0u);
  m.count("net.messages");
  m.count("net.messages", 4);
  EXPECT_EQ(m.counter("net.messages"), 5u);
}

TEST(Metrics, ExactSeriesKeepsEverything) {
  Metrics m;
  for (int i = 0; i < 100; ++i) m.observe("lat", i);
  EXPECT_EQ(m.samples("lat").size(), 100u);
  EXPECT_EQ(m.sample_count("lat"), 100u);
  EXPECT_DOUBLE_EQ(m.sample_mean("lat"), 49.5);
}

TEST(Metrics, ReservoirBoundsRetentionButCountsExactly) {
  Metrics m;
  m.set_reservoir("lat", 16);
  for (int i = 0; i < 1000; ++i) m.observe("lat", i);
  EXPECT_EQ(m.samples("lat").size(), 16u);
  EXPECT_EQ(m.sample_count("lat"), 1000u);
  EXPECT_DOUBLE_EQ(m.sample_mean("lat"), 499.5);
}

std::vector<double> reservoir_after(Metrics& m, std::size_t cap,
                                    std::size_t n) {
  m.set_reservoir("lat", cap);
  for (std::size_t i = 0; i < n; ++i)
    m.observe("lat", static_cast<double>(i));
  return m.samples("lat");
}

TEST(Metrics, ResetReseedsReservoirRng) {
  // Regression: reset() cleared the counters and series but left the
  // reservoir RNG mid-stream, so a seeded run that resets between phases
  // drew a *different* subsample in phase two — nondeterministic-looking
  // output from a deterministic simulation.
  Metrics m;
  const auto first = reservoir_after(m, 16, 1000);
  m.reset();
  const auto second = reservoir_after(m, 16, 1000);
  EXPECT_EQ(first, second);

  // And a reset instance behaves exactly like a fresh one.
  Metrics fresh;
  const auto pristine = reservoir_after(fresh, 16, 1000);
  EXPECT_EQ(second, pristine);
}

TEST(Metrics, ResetClearsState) {
  Metrics m;
  m.count("c", 3);
  m.observe("s", 1.0);
  m.reset();
  EXPECT_EQ(m.counter("c"), 0u);
  EXPECT_TRUE(m.samples("s").empty());
  EXPECT_EQ(m.sample_count("s"), 0u);
}

}  // namespace
}  // namespace hkws::sim
