#include "cube/hypercube.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hkws::cube {
namespace {

TEST(Hypercube, RejectsBadDimensions) {
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
  EXPECT_THROW(Hypercube(64), std::invalid_argument);
  EXPECT_NO_THROW(Hypercube(1));
  EXPECT_NO_THROW(Hypercube(63));
}

TEST(Hypercube, NodeCountAndMask) {
  Hypercube h(4);
  EXPECT_EQ(h.node_count(), 16u);
  EXPECT_EQ(h.full_mask(), 0xFu);
  EXPECT_TRUE(h.valid(0xF));
  EXPECT_FALSE(h.valid(0x10));
}

TEST(Hypercube, OneZeroPositions) {
  // v = 010100 from the paper: One(v) = {2,4}, Zero(v) = {0,1,3,5}.
  Hypercube h(6);
  const CubeId v = 0b010100;
  EXPECT_EQ(Hypercube::one_positions(v), (std::vector<int>{2, 4}));
  EXPECT_EQ(h.zero_positions(v), (std::vector<int>{0, 1, 3, 5}));
  EXPECT_EQ(Hypercube::one_count(v), 2);
  EXPECT_EQ(h.zero_count(v), 4);
}

TEST(Hypercube, ContainsIsBitwiseImplication) {
  EXPECT_TRUE(Hypercube::contains(0b1110, 0b0110));
  EXPECT_TRUE(Hypercube::contains(0b1110, 0b1110));
  EXPECT_TRUE(Hypercube::contains(0b1110, 0));
  EXPECT_FALSE(Hypercube::contains(0b0110, 0b1110));
  EXPECT_FALSE(Hypercube::contains(0b1010, 0b0100));
}

TEST(Hypercube, HammingDistance) {
  EXPECT_EQ(Hypercube::hamming(0b0000, 0b1111), 4);
  EXPECT_EQ(Hypercube::hamming(0b1010, 0b1010), 0);
  EXPECT_EQ(Hypercube::hamming(0b100, 0b001), 2);
}

TEST(Hypercube, NeighborFlipsOneBit) {
  Hypercube h(4);
  EXPECT_EQ(h.neighbor(0b0100, 2), 0b0000u);
  EXPECT_EQ(h.neighbor(0b0100, 0), 0b0101u);
  EXPECT_THROW(h.neighbor(0, 4), std::out_of_range);
  EXPECT_THROW(h.neighbor(0, -1), std::out_of_range);
}

TEST(Hypercube, NeighborIsInvolution) {
  Hypercube h(6);
  for (CubeId u = 0; u < h.node_count(); ++u)
    for (int d = 0; d < 6; ++d) EXPECT_EQ(h.neighbor(h.neighbor(u, d), d), u);
}

TEST(Hypercube, SubcubeSizeMatchesZeroCount) {
  Hypercube h(4);
  // Paper Fig. 3: H_4(0100) is isomorphic to H_3 — 8 nodes.
  EXPECT_EQ(h.subcube_size(0b0100), 8u);
  EXPECT_EQ(h.subcube_size(0), 16u);
  EXPECT_EQ(h.subcube_size(0b1111), 1u);
}

TEST(Hypercube, SubcubeMembersAllContainRoot) {
  Hypercube h(5);
  const CubeId u = 0b01010;
  const auto members = h.subcube_members(u);
  EXPECT_EQ(members.size(), h.subcube_size(u));
  std::set<CubeId> distinct(members.begin(), members.end());
  EXPECT_EQ(distinct.size(), members.size());
  for (CubeId w : members) EXPECT_TRUE(Hypercube::contains(w, u));
  // Conversely, every node containing u is a member.
  std::size_t containing = 0;
  for (CubeId w = 0; w < h.node_count(); ++w)
    if (Hypercube::contains(w, u)) ++containing;
  EXPECT_EQ(containing, members.size());
}

TEST(Hypercube, ExpandCompressRoundTrip) {
  Hypercube h(6);
  const CubeId u = 0b010100;
  for (std::uint64_t packed = 0; packed < h.subcube_size(u); ++packed) {
    const CubeId w = h.expand_into_subcube(u, packed);
    EXPECT_TRUE(Hypercube::contains(w, u));
    EXPECT_EQ(h.compress_from_subcube(u, w), packed);
  }
}

TEST(Hypercube, ExpandZeroIsRootItself) {
  Hypercube h(8);
  EXPECT_EQ(h.expand_into_subcube(0b10010001, 0), 0b10010001u);
}

class HypercubeDims : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeDims, SubcubeIsomorphismIsBijective) {
  // expand_into_subcube must be a bijection {0..2^f-1} -> members, and
  // neighbors in the packed space must be neighbors in the cube (the
  // isomorphism of Definition 3.1's remark).
  Hypercube h(GetParam());
  const CubeId u = h.full_mask() & 0b1001001001001001ULL;
  std::set<CubeId> seen;
  const std::uint64_t f = h.subcube_size(u);
  for (std::uint64_t p = 0; p < f; ++p) {
    const CubeId w = h.expand_into_subcube(u, p);
    EXPECT_TRUE(seen.insert(w).second);
  }
  for (std::uint64_t p = 0; p < f; ++p) {
    for (int b = 0; (1ULL << b) < f; ++b) {
      const CubeId a = h.expand_into_subcube(u, p);
      const CubeId c = h.expand_into_subcube(u, p ^ (1ULL << b));
      EXPECT_EQ(Hypercube::hamming(a, c), 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeDims, ::testing::Values(2, 5, 8, 12));

}  // namespace
}  // namespace hkws::cube
