#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dht/chord_network.hpp"
#include "engine/query_engine.hpp"
#include "obs/trace_reader.hpp"
#include "obs/trace_summary.hpp"
#include "obs/windowed.hpp"
#include "torture/scenario.hpp"

namespace hkws::obs {
namespace {

// --- Tracer -----------------------------------------------------------------

TEST(Tracer, TracksOpenSpansPerTrack) {
  Tracer t;
  t.begin(10, 1, "query");
  t.begin(12, 1, "root_lookup");
  t.begin(11, 2, "query");
  EXPECT_EQ(t.open_spans(1), 2u);
  EXPECT_EQ(t.open_top(1), "root_lookup");
  EXPECT_EQ(t.open_top(2), "query");
  t.end(20, 1);
  EXPECT_EQ(t.open_top(1), "query");
  t.close_open(30, 1);
  EXPECT_EQ(t.open_spans(1), 0u);
  EXPECT_EQ(t.open_spans(2), 1u);
  EXPECT_TRUE(span_imbalance(t.events()).count(2));
  t.close_open(31, 2);
  EXPECT_TRUE(span_imbalance(t.events()).empty());
}

TEST(Tracer, EndWithoutOpenSpanIsIgnored) {
  Tracer t;
  t.end(5, 7);
  EXPECT_TRUE(t.events().empty());
  EXPECT_TRUE(span_imbalance(t.events()).empty());
}

TEST(Tracer, CapKeepsTraceBalanced) {
  // Past the cap, new spans and instants are dropped (and counted) but the
  // end events of already-open spans are still recorded: a truncated trace
  // must still balance or traceview --check would reject every capped run.
  Tracer t(3);
  t.begin(1, 1, "query");
  t.begin(2, 1, "root_lookup");
  t.instant(3, 1, "scan");          // 3rd event: at cap
  t.instant(4, 1, "scan");          // dropped
  t.begin(5, 2, "query");           // dropped
  t.end(6, 2);                      // no open span on 2: ignored
  t.end(7, 1);                      // recorded: root_lookup was open
  t.close_open(8, 1);               // recorded: query was open
  EXPECT_EQ(t.events().size(), 5u);
  EXPECT_EQ(t.dropped(), 2u);
  EXPECT_TRUE(span_imbalance(t.events()).empty());
}

// --- Chrome JSON round trip -------------------------------------------------

TEST(TraceJson, RoundTripsThroughParser) {
  Tracer t;
  t.begin(100, 1, "query", "engine", 3);
  t.begin(120, 1, "root_lookup", "engine");
  t.instant(150, 1, "root", "proto", 9, 4);
  t.end(150, 1);
  t.begin(150, 1, "level", "proto", 0, 2);
  t.instant(160, 1, "scan", "proto", 17, 5);
  t.end(170, 1);
  t.instant(170, 1, "complete", "engine", 12);
  t.close_open(170, 1);
  t.instant(105, 0, "T_QUERY", "net", 2, 9);

  const ParsedTrace parsed = parse_chrome_trace(t.to_chrome_json());
  ASSERT_EQ(parsed.events.size(), t.events().size());
  EXPECT_EQ(parsed.dropped, 0u);
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    const TraceEvent& want = t.events()[i];
    const TraceEvent& got = parsed.events[i];
    EXPECT_EQ(got.ts, want.ts) << i;
    EXPECT_EQ(got.tid, want.tid) << i;
    EXPECT_EQ(got.ph, want.ph) << i;
    EXPECT_EQ(got.name, want.name) << i;
    EXPECT_EQ(got.a, want.a) << i;
    EXPECT_EQ(got.b, want.b) << i;
  }
  EXPECT_TRUE(span_imbalance(parsed.events).empty());
}

TEST(TraceJson, EscapesAndReportsDropped) {
  Tracer t(1);
  t.instant(1, 0, "he said \"hi\"\n", "cat\\path");
  t.instant(2, 0, "over cap");
  const ParsedTrace parsed = parse_chrome_trace(t.to_chrome_json());
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0].name, "he said \"hi\"\n");
  EXPECT_EQ(parsed.events[0].cat, "cat\\path");
  EXPECT_EQ(parsed.dropped, 1u);
}

TEST(TraceJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_chrome_trace("not json"), std::runtime_error);
  EXPECT_THROW(parse_chrome_trace("{\"traceEvents\":[{]}"),
               std::runtime_error);
  EXPECT_THROW(parse_chrome_trace("{\"noEvents\":1}"), std::runtime_error);
}

TEST(TraceJson, ParsesBareArraysAndSkipsMetadataEvents) {
  const char* doc =
      "[{\"name\":\"q\",\"ph\":\"B\",\"ts\":5,\"pid\":1,\"tid\":3},"
      " {\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,"
      "\"tid\":0},"
      " {\"name\":\"q\",\"ph\":\"E\",\"ts\":9,\"pid\":1,\"tid\":3}]";
  const ParsedTrace parsed = parse_chrome_trace(doc);
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0].ph, 'B');
  EXPECT_EQ(parsed.events[1].ph, 'E');
  EXPECT_TRUE(span_imbalance(parsed.events).empty());
}

// --- Engine integration round trip ------------------------------------------

struct EngineNet {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<index::KeywordSearchService> service;

  EngineNet() {
    net = std::make_unique<sim::Network>(
        clock, std::make_unique<sim::UniformLatency>(1, 20), 99);
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, 24, {}));
    service = std::make_unique<index::KeywordSearchService>(
        *dht, index::KeywordSearchService::Options{.r = 6});
  }
};

TEST(TraceJson, EngineRunExportsBalancedTrace) {
  EngineNet t;
  const std::vector<KeywordSet> sets = {
      KeywordSet{"alpha", "beta"}, KeywordSet{"beta", "gamma"},
      KeywordSet{"alpha", "gamma"}, KeywordSet{"beta"},
  };
  for (std::size_t i = 0; i < sets.size(); ++i)
    t.service->publish(2 + i % 10, static_cast<ObjectId>(i + 1), sets[i]);
  t.clock.run();

  Tracer tracer;
  WindowedMetrics windows(50);
  engine::EngineConfig cfg;
  cfg.max_in_flight = 2;  // forces backlog spans
  cfg.search.limit = 0;
  cfg.tracer = &tracer;
  cfg.windows = &windows;
  engine::QueryEngine engine(*t.service, t.clock, cfg);
  attach_network(tracer, *t.net);

  const std::vector<KeywordSet> queries = {
      KeywordSet{"alpha"}, KeywordSet{"beta"}, KeywordSet{"gamma"},
      KeywordSet{"alpha", "beta"}, KeywordSet{"beta", "gamma"},
  };
  for (const auto& q : queries) engine.submit(3, q);
  t.clock.run();
  ASSERT_EQ(engine.records().size(), queries.size());

  // Round trip: export, parse, balance per query track.
  const ParsedTrace parsed = parse_chrome_trace(tracer.to_chrome_json());
  EXPECT_FALSE(parsed.events.empty());
  EXPECT_TRUE(span_imbalance(parsed.events).empty());

  // Every query shows up as a timeline with a terminal outcome.
  const TraceSummary summary = summarize(parsed.events);
  EXPECT_TRUE(summary.balanced);
  ASSERT_EQ(summary.queries.size(), queries.size());
  for (const auto& q : summary.queries) {
    EXPECT_EQ(q.outcome, "complete") << "query " << q.id;
    EXPECT_GE(q.finish, q.start);
  }
  EXPECT_EQ(summary.outcomes.at("complete"), queries.size());

  // The wire traffic landed on the global track.
  bool saw_net = false;
  for (const auto& e : parsed.events)
    if (e.tid == 0 && e.ph == 'i') saw_net = true;
  EXPECT_TRUE(saw_net);

  // And the windowed sink saw the run.
  EXPECT_FALSE(windows.empty());
  std::uint64_t completed = 0;
  for (const auto& [k, w] : windows.windows()) {
    const auto it = w.counters.find("completed");
    if (it != w.counters.end()) completed += it->second;
  }
  EXPECT_EQ(completed, queries.size());
}

TEST(TraceJson, TortureRunnerExportsBalancedTrace) {
  Tracer tracer;
  torture::ScenarioRunner runner;
  runner.set_tracer(&tracer);
  const auto cfg = torture::ScenarioConfig::from_seed(
      3, torture::Deployment::kChord,
      index::SearchStrategy::kTopDownSequential);
  const auto rep = runner.run(cfg);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_FALSE(tracer.events().empty());
  const ParsedTrace parsed = parse_chrome_trace(tracer.to_chrome_json());
  EXPECT_TRUE(span_imbalance(parsed.events).empty());
  // Rounds were traced on the global track; wire sends rode along.
  std::size_t rounds = 0;
  bool saw_net = false;
  for (const auto& e : parsed.events) {
    if (e.ph == 'B' && e.name == "round") ++rounds;
    if (e.cat == "net" || e.cat == "net.lost") saw_net = true;
  }
  EXPECT_EQ(rounds, cfg.rounds);
  EXPECT_TRUE(saw_net);
}

// --- Windowed metrics -------------------------------------------------------

TEST(WindowedMetrics, BucketsBySimTime) {
  WindowedMetrics w(100);
  w.count(0, "submitted");
  w.count(99, "submitted");
  w.count(100, "submitted");
  w.gauge(10, "in_flight", 3);
  w.gauge(20, "in_flight", 7);
  w.gauge(30, "in_flight", 5);
  w.observe(150, "latency", 10);
  w.observe(160, "latency", 30);

  ASSERT_EQ(w.windows().size(), 2u);
  const auto& w0 = w.windows().at(0);
  const auto& w1 = w.windows().at(1);
  EXPECT_EQ(w0.start, 0u);
  EXPECT_EQ(w1.start, 100u);
  EXPECT_EQ(w0.counters.at("submitted"), 2u);
  EXPECT_EQ(w1.counters.at("submitted"), 1u);
  EXPECT_DOUBLE_EQ(w0.gauges.at("in_flight"), 7.0);  // max within window
  ASSERT_EQ(w1.samples.at("latency").size(), 2u);
}

// Windows are half-open [k*width, (k+1)*width): the last tick of window k
// and the first tick of window k+1 must never share a bucket, and window
// indices are computed in 64 bits (a long-horizon serving run overflows
// 32-bit index arithmetic).
TEST(WindowedMetrics, WindowBoundariesAreHalfOpenAndSixtyFourBit) {
  WindowedMetrics w(100);
  w.count(199, "x");  // last tick of window 1
  w.count(200, "x");  // first tick of window 2
  w.count(200, "x");
  w.gauge(299, "g", 9);  // last tick of window 2
  w.gauge(300, "g", 2);  // first tick of window 3: no max-carryover
  ASSERT_EQ(w.windows().size(), 3u);
  EXPECT_EQ(w.windows().at(1).start, 100u);
  EXPECT_EQ(w.windows().at(2).start, 200u);
  EXPECT_EQ(w.windows().at(3).start, 300u);
  EXPECT_EQ(w.windows().at(1).counters.at("x"), 1u);
  EXPECT_EQ(w.windows().at(2).counters.at("x"), 2u);
  EXPECT_DOUBLE_EQ(w.windows().at(2).gauges.at("g"), 9.0);
  EXPECT_DOUBLE_EQ(w.windows().at(3).gauges.at("g"), 2.0);

  // Width 1: every tick is its own window.
  WindowedMetrics fine(1);
  fine.count(0, "x");
  fine.count(1, "x");
  ASSERT_EQ(fine.windows().size(), 2u);
  EXPECT_EQ(fine.windows().at(0).counters.at("x"), 1u);
  EXPECT_EQ(fine.windows().at(1).counters.at("x"), 1u);

  // Past 2^32 ticks the index and start must still be exact.
  WindowedMetrics wide(100);
  const sim::Time far = 10'000'000'001ULL;
  wide.count(far, "x");
  ASSERT_EQ(wide.windows().size(), 1u);
  const auto& [idx, win] = *wide.windows().begin();
  EXPECT_EQ(idx, 100'000'000u);
  EXPECT_EQ(win.start, 10'000'000'000ULL);
}

TEST(WindowedMetrics, RejectsZeroWidth) {
  EXPECT_THROW(WindowedMetrics(0), std::invalid_argument);
}

TEST(WindowedMetrics, JsonExportHasSchema) {
  WindowedMetrics w(100);
  w.count(5, "submitted", 3);
  w.observe(7, "latency", 12.5);
  w.gauge(9, "backlog", 4);
  const std::string json = w.to_json();
  EXPECT_NE(json.find("\"window\":100"), std::string::npos);
  EXPECT_NE(json.find("\"start\":0"), std::string::npos);
  EXPECT_NE(json.find("\"submitted\":3"), std::string::npos);
  EXPECT_NE(json.find("\"backlog\":4"), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(WindowedMetrics, PrometheusExportAggregates) {
  WindowedMetrics w(100);
  w.count(5, "submitted", 3);
  w.count(150, "submitted", 2);
  w.observe(10, "latency ms", 5);   // name gets sanitized
  w.observe(120, "latency ms", 15);
  w.gauge(10, "in_flight", 9);
  w.gauge(150, "in_flight", 4);
  const std::string text = w.to_prometheus();
  EXPECT_NE(text.find("hkws_submitted_total 5"), std::string::npos);
  EXPECT_NE(text.find("hkws_latency_ms{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("hkws_latency_ms_count 2"), std::string::npos);
  // Gauge reports the latest window's level, not the all-run max.
  EXPECT_NE(text.find("hkws_in_flight 4"), std::string::npos);
}

// --- Golden summaries -------------------------------------------------------

/// A fixed two-query trace: query 1 waits in the backlog, resolves its root,
/// scans two levels and completes; query 2 is shed at admission.
std::vector<TraceEvent> golden_events() {
  Tracer t;
  t.begin(100, 1, "query", "engine", 0);
  t.begin(100, 1, "backlog", "engine");
  t.end(140, 1);
  t.begin(140, 1, "root_lookup", "engine");
  t.instant(180, 1, "root", "proto", 7, 3);
  t.end(180, 1);
  t.begin(180, 1, "level", "proto", 0, 1);
  t.instant(200, 1, "scan", "proto", 4, 7);
  t.end(210, 1);
  t.begin(210, 1, "level", "proto", 1, 2);
  t.instant(230, 1, "scan", "proto", 5, 9);
  t.instant(240, 1, "retransmit", "proto", 9);
  t.instant(260, 1, "complete", "engine", 12);
  t.close_open(260, 1);
  t.begin(150, 2, "query", "engine", 1);
  t.instant(150, 2, "shed", "engine");
  t.close_open(150, 2);
  return t.events();
}

TEST(TraceSummaryGolden, RenderSummary) {
  const TraceSummary summary = summarize(golden_events());
  const std::string golden =
      "trace summary: 18 events, 2 queries, spans balanced\n"
      "outcomes: complete=1 shed=1\n"
      "phase breakdown over 1 completed queries (ticks):\n"
      "  backlog      mean=40.0 p50=40.0 p95=40.0\n"
      "  root_lookup  mean=40.0 p50=40.0 p95=40.0\n"
      "  scan         mean=80.0 p50=80.0 p95=80.0\n"
      "  total        mean=160.0 p50=160.0 p95=160.0\n"
      "slowest queries:\n"
      "  id       latency  backlog  root     scan     levels scans rtx "
      "outcome\n"
      "  1        160      40       40       80       2      2     1   "
      "complete\n";
  EXPECT_EQ(render_summary(summary, 5), golden);
}

TEST(TraceSummaryGolden, RenderHopTree) {
  const std::string golden =
      "query 1 hop tree:\n"
      "  query (priority=0) @100\n"
      "    backlog @100\n"
      "    root_lookup @140\n"
      "      root: peer=7 hops=3 @180\n"
      "    level 0 (width 1) @180\n"
      "      scan: cube=4 peer=7 @200\n"
      "    level 1 (width 2) @210\n"
      "      scan: cube=5 peer=9 @230\n"
      "      retransmit: node=9 @240\n"
      "      complete: hits=12 @260\n";
  EXPECT_EQ(render_hop_tree(golden_events(), 1), golden);
  EXPECT_TRUE(render_hop_tree(golden_events(), 99).empty());
}

}  // namespace
}  // namespace hkws::obs
