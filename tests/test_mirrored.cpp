#include "index/mirrored.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "obs/windowed.hpp"

namespace hkws::index {
namespace {

std::set<ObjectId> ids_of(const std::vector<Hit>& hits) {
  std::set<ObjectId> out;
  for (const Hit& h : hits) out.insert(h.object);
  return out;
}

struct MirrorNet {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<dht::Dolr> dolr;
  std::unique_ptr<MirroredIndex> index;

  explicit MirrorNet(std::size_t n, OverlayIndex::Config cfg = {.r = 6}) {
    net = std::make_unique<sim::Network>(clock);
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, n, {}));
    dolr = std::make_unique<dht::Dolr>(*dht, dht::Dolr::Config{3});
    index = std::make_unique<MirroredIndex>(*dolr, cfg);
  }

  SearchResult superset(const KeywordSet& q, std::size_t t = 0) {
    std::optional<SearchResult> result;
    index->superset_search(1, q, t, SearchStrategy::kTopDownSequential,
                           [&](const SearchResult& r) { result = r; });
    clock.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(SearchResult{});
  }
};

std::map<ObjectId, KeywordSet> sample_objects(std::size_t n,
                                              std::uint64_t seed) {
  std::map<ObjectId, KeywordSet> out;
  Rng rng(seed);
  for (ObjectId id = 1; id <= n; ++id) {
    std::vector<Keyword> words{"base"};
    const int size = static_cast<int>(rng.next_below(4));
    for (int i = 0; i < size; ++i)
      words.push_back("w" + std::to_string(rng.next_below(20)));
    out[id] = KeywordSet(std::move(words));
  }
  return out;
}

TEST(Mirrored, PublishCreatesEntriesInBothCubes) {
  MirrorNet t(16);
  const KeywordSet k({"news", "tv"});
  t.index->publish(1, 7, k);
  t.clock.run();
  const auto up = t.index->primary().responsible_node(k);
  const auto um = t.index->mirror().responsible_node(k);
  ASSERT_NE(t.index->primary().table_of(up), nullptr);
  ASSERT_NE(t.index->mirror().table_of(um), nullptr);
  EXPECT_EQ(t.index->primary().table_of(up)->exact(k),
            std::vector<ObjectId>{7});
  EXPECT_EQ(t.index->mirror().table_of(um)->exact(k),
            std::vector<ObjectId>{7});
}

TEST(Mirrored, MirrorUsesIndependentMappings) {
  MirrorNet t(16);
  // The two cubes must not systematically agree on placement: across many
  // keyword sets, responsible nodes and ring keys should differ often.
  int same_node = 0, same_peer = 0;
  for (int i = 0; i < 100; ++i) {
    const KeywordSet k({"kw" + std::to_string(i)});
    const auto up = t.index->primary().responsible_node(k);
    const auto um = t.index->mirror().responsible_node(k);
    if (up == um) ++same_node;
    if (t.index->primary().ring_key_of(up) == t.index->mirror().ring_key_of(um))
      ++same_peer;
  }
  EXPECT_LT(same_node, 20);  // chance collisions only (r=6 -> 1/64 per bit)
  EXPECT_EQ(same_peer, 0);
}

TEST(Mirrored, SearchUnionsBothCubes) {
  MirrorNet t(24);
  const auto objects = sample_objects(60, 51);
  std::size_t i = 0;
  for (const auto& [id, k] : objects) t.index->publish(1 + (i++ % 24), id, k);
  t.clock.run();
  const auto result = t.superset(KeywordSet({"base"}));
  EXPECT_EQ(ids_of(result.hits).size(), objects.size());
  EXPECT_TRUE(result.stats.complete);
}

TEST(Mirrored, SurvivesLossOfPrimaryEntriesWithoutRepair) {
  MirrorNet t(12, {.r = 6});
  const auto objects = sample_objects(80, 52);
  std::size_t i = 0;
  for (const auto& [id, k] : objects) t.index->publish(1 + (i++ % 12), id, k);
  t.clock.run();

  // Simulate total loss of the PRIMARY index state (as if every peer
  // holding primary entries crashed and purged): the mirror must still
  // answer the full result set.
  t.index->primary().purge_dead();  // no-op; now nuke primary state:
  // Fail three peers; purge both cubes' state for them. Whatever entries
  // lived there are gone from one cube or the other — never both, for any
  // given object, unless both its entries were on failed peers.
  t.dht->fail(3);
  t.dht->fail(7);
  t.dht->fail(11);
  for (int round = 0; round < 30; ++round) t.dht->stabilize_all();
  t.index->purge_dead();
  t.index->repair_placement();
  t.clock.run();

  const auto result = t.superset(KeywordSet({"base"}));
  // Count objects whose BOTH entries were lost (possible but should be a
  // small minority with independent placement).
  const std::size_t found = ids_of(result.hits).size();
  EXPECT_GT(found, objects.size() * 8 / 10)
      << "mirror should cover most primary losses";

  // Compare against an unmirrored index suffering the same failures: it
  // must have lost at least as much as the mirrored one found.
  std::size_t primary_only = 0;
  {
    std::optional<SearchResult> result1;
    t.index->primary().superset_search(
        1, KeywordSet({"base"}), 0, SearchStrategy::kTopDownSequential,
        [&](const SearchResult& r) { result1 = r; });
    t.clock.run();
    primary_only = ids_of(result1->hits).size();
  }
  EXPECT_GE(found, primary_only);
}

TEST(Mirrored, WithdrawRemovesBothEntries) {
  MirrorNet t(16);
  const KeywordSet k({"x", "y"});
  t.index->publish(1, 5, k);
  t.clock.run();
  std::optional<OverlayIndex::WithdrawResult> w;
  t.index->withdraw(1, 5, k, [&](const auto& r) { w = r; });
  t.clock.run();
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->index_removed);
  EXPECT_TRUE(t.superset(KeywordSet({"x"})).hits.empty());
}

TEST(Mirrored, PinSearchWorksThroughEitherCube) {
  MirrorNet t(16);
  t.index->publish(1, 5, KeywordSet({"p", "q"}));
  t.clock.run();
  std::optional<SearchResult> result;
  t.index->pin_search(2, KeywordSet({"p", "q"}),
                      [&](const SearchResult& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ids_of(result->hits), (std::set<ObjectId>{5}));
}

TEST(Mirrored, ThresholdAppliesToTheUnion) {
  MirrorNet t(16);
  for (ObjectId o = 1; o <= 30; ++o)
    t.index->publish(1 + o % 16, o, KeywordSet({"t", "v" + std::to_string(o)}));
  t.clock.run();
  const auto result = t.superset(KeywordSet({"t"}), 10);
  EXPECT_EQ(result.hits.size(), 10u);
}

TEST(Mirrored, CostIsRoughlyDoubled) {
  MirrorNet t(24);
  const auto objects = sample_objects(40, 53);
  std::size_t i = 0;
  for (const auto& [id, k] : objects) t.index->publish(1 + (i++ % 24), id, k);
  t.clock.run();

  std::optional<SearchResult> single;
  t.index->primary().superset_search(
      1, KeywordSet({"base"}), 0, SearchStrategy::kTopDownSequential,
      [&](const SearchResult& r) { single = r; });
  t.clock.run();
  const auto mirrored = t.superset(KeywordSet({"base"}));
  EXPECT_GE(mirrored.stats.nodes_contacted,
            single->stats.nodes_contacted * 3 / 2);
  EXPECT_LE(mirrored.stats.nodes_contacted,
            single->stats.nodes_contacted * 3);
}

TEST(Mirrored, BudgetedResyncConvergesCubesAfterFailures) {
  MirrorNet t(12, {.r = 6});
  const auto objects = sample_objects(80, 52);
  std::size_t i = 0;
  for (const auto& [id, k] : objects) t.index->publish(1 + (i++ % 12), id, k);
  t.clock.run();

  t.dht->fail(3);
  t.dht->fail(7);
  for (int round = 0; round < 30; ++round) t.dht->stabilize_all();
  t.index->purge_dead();
  t.index->repair_placement();
  t.clock.run();
  ASSERT_GT(t.index->resync_backlog(), 0u);

  // Anti-entropy in slices of 8: each pass reindexes a bounded batch, the
  // routed copies land, and the backlog shrinks until the cubes agree.
  int passes = 0;
  while (t.index->resync_backlog() > 0) {
    ASSERT_LT(passes++, 100) << "resync failed to converge";
    t.index->resync(8);
    t.clock.run();
  }
  // Idempotent at the fixpoint: nothing left to copy.
  EXPECT_EQ(t.index->resync(100), 0u);
  t.clock.run();

  // Both cubes now index the same surviving entries, so a single-cube scan
  // matches the mirrored union exactly.
  const auto merged = t.superset(KeywordSet({"base"}));
  std::optional<SearchResult> primary_only;
  t.index->primary().superset_search(
      1, KeywordSet({"base"}), 0, SearchStrategy::kTopDownSequential,
      [&](const SearchResult& r) { primary_only = r; });
  t.clock.run();
  ASSERT_TRUE(primary_only.has_value());
  EXPECT_EQ(ids_of(merged.hits), ids_of(primary_only->hits));
}

/// Drops every message of one kind originated by one endpoint — the
/// surgical fault that silences a single cube's pin replies. (Matching on
/// the sender, not the receiver, keeps the other cube's multi-hop route
/// safe even if it transits the victim.)
class TargetedDrop final : public sim::DropModel {
 public:
  TargetedDrop(std::string kind, sim::EndpointId from)
      : kind_(std::move(kind)), from_(from) {}
  bool drop(sim::EndpointId from, sim::EndpointId, const std::string& kind,
            Rng&) override {
    return from == from_ && kind == kind_;
  }

 private:
  std::string kind_;
  sim::EndpointId from_;
};

TEST(Mirrored, SingleCubeFailoverCountedAndWindowed) {
  MirrorNet t(16, {.r = 6, .step_timeout = 50, .max_retries = 2,
                   .failover_after = 2});
  obs::WindowedMetrics windows(100);
  t.index->set_windows(&windows);

  // Find a keyword set whose primary and mirror pin roots live on
  // different peers, so starving the primary root leaves the mirror whole.
  KeywordSet k;
  sim::EndpointId primary_root = 0;
  for (int attempt = 0; attempt < 32; ++attempt) {
    k = KeywordSet({"fo" + std::to_string(attempt)});
    const auto pk = t.index->primary().ring_key_of(
        t.index->primary().responsible_node(k));
    const auto mk = t.index->mirror().ring_key_of(
        t.index->mirror().responsible_node(k));
    const sim::EndpointId pe = t.dht->endpoint_of(t.dht->owner_of(pk));
    const sim::EndpointId me = t.dht->endpoint_of(t.dht->owner_of(mk));
    // The root must not be the searcher (self-sends bypass the drop model).
    if (pe != me && pe != 2) {
      primary_root = pe;
      break;
    }
  }
  ASSERT_NE(primary_root, 0u);
  t.index->publish(1, 9, k);
  t.clock.run();

  // Silence the primary cube's pin replies: its retries exhaust and that
  // traversal reports failure while the mirror answers — the merge must
  // turn this into a degraded (not failed) result and count the failover.
  t.net->set_drop_model(std::make_unique<TargetedDrop>("kws.pin_reply",
                                                       primary_root));
  std::optional<SearchResult> result;
  t.index->pin_search(2, k, [&](const SearchResult& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->stats.failed);
  EXPECT_TRUE(result->stats.degraded);
  EXPECT_GE(result->stats.failovers, 1u);
  EXPECT_EQ(ids_of(result->hits), (std::set<ObjectId>{9}));

  EXPECT_EQ(t.index->failover_count(), 1u);
  EXPECT_EQ(t.net->metrics().counter("kws.mirror_failover"), 1u);
  std::uint64_t windowed = 0;
  for (const auto& [w, win] : windows.windows()) {
    const auto it = win.counters.find("mirror.failover");
    if (it != win.counters.end()) windowed += it->second;
  }
  EXPECT_EQ(windowed, 1u);
}

}  // namespace
}  // namespace hkws::index
