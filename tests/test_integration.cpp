// End-to-end tests across every layer: synthetic corpus -> DOLR publication
// -> hypercube index over the Chord overlay -> searches under churn, checked
// against the in-process LogicalIndex and a brute-force oracle.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "index/logical_index.hpp"
#include "index/overlay_index.hpp"
#include "index/ranking.hpp"
#include "workload/corpus_generator.hpp"
#include "workload/query_generator.hpp"

namespace hkws {
namespace {

using index::Hit;
using index::SearchResult;

std::set<ObjectId> ids_of(const std::vector<Hit>& hits) {
  std::set<ObjectId> out;
  for (const Hit& h : hits) out.insert(h.object);
  return out;
}

class FullStack : public ::testing::Test {
 protected:
  static constexpr std::size_t kPeers = 32;
  static constexpr int kR = 8;

  void SetUp() override {
    net_ = std::make_unique<sim::Network>(clock_);
    dht_ = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net_, kPeers, {}));
    dolr_ = std::make_unique<dht::Dolr>(*dht_, dht::Dolr::Config{3});
    overlay_ = std::make_unique<index::OverlayIndex>(
        *dolr_, index::OverlayIndex::Config{.r = kR, .cache_capacity = 128});
    logical_ = std::make_unique<index::LogicalIndex>(
        index::LogicalIndex::Config{.r = kR});

    workload::CorpusConfig ccfg;
    ccfg.object_count = 600;
    ccfg.vocabulary_size = 400;
    corpus_ = workload::CorpusGenerator(ccfg).generate();
    for (const auto& rec : corpus_.records()) {
      overlay_->publish(1 + rec.id % kPeers, rec.id, rec.keywords);
      logical_->insert(rec.id, rec.keywords);
    }
    clock_.run();
  }

  std::set<ObjectId> oracle_supersets(const KeywordSet& q) const {
    std::set<ObjectId> out;
    for (const auto& rec : corpus_.records())
      if (q.subset_of(rec.keywords)) out.insert(rec.id);
    return out;
  }

  SearchResult overlay_superset(const KeywordSet& q, std::size_t t = 0) {
    std::optional<SearchResult> result;
    overlay_->superset_search(
        1, q, t, index::SearchStrategy::kTopDownSequential,
        [&](const SearchResult& r) { result = r; });
    clock_.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(SearchResult{});
  }

  sim::EventQueue clock_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<dht::ChordNetwork> dht_;
  std::unique_ptr<dht::Dolr> dolr_;
  std::unique_ptr<index::OverlayIndex> overlay_;
  std::unique_ptr<index::LogicalIndex> logical_;
  workload::Corpus corpus_;
};

TEST_F(FullStack, AllObjectsIndexedExactlyOnce) {
  std::size_t total = 0;
  for (std::size_t l : overlay_->loads_by_cube_node()) total += l;
  EXPECT_EQ(total, corpus_.size());
  std::size_t logical_total = 0;
  for (std::size_t l : logical_->loads()) logical_total += l;
  EXPECT_EQ(logical_total, corpus_.size());
}

TEST_F(FullStack, PlacementAgreesBetweenOverlayAndLogical) {
  EXPECT_EQ(overlay_->loads_by_cube_node(), logical_->loads());
}

TEST_F(FullStack, QueriesMatchOracleAndLogicalIndex) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const auto& rec = corpus_[rng.next_below(corpus_.size())];
    const KeywordSet query({rec.keywords.words().front()});
    const auto expected = oracle_supersets(query);
    const auto overlay_result = overlay_superset(query);
    EXPECT_EQ(ids_of(overlay_result.hits), expected) << query.to_string();
    EXPECT_EQ(ids_of(logical_->superset_search(query).hits), expected);
  }
}

TEST_F(FullStack, DolrResolvesEveryPublishedObject) {
  Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    const auto& rec = corpus_[rng.next_below(corpus_.size())];
    std::optional<dht::Dolr::ReadResult> read;
    dolr_->read(2, rec.id, [&](const auto& r) { read = r; });
    clock_.run();
    ASSERT_TRUE(read.has_value());
    EXPECT_FALSE(read->holders.empty()) << "object " << rec.id;
  }
}

TEST_F(FullStack, SearchSurvivesGrowthWithRepair) {
  const KeywordSet query({corpus_[0].keywords.words().front()});
  const auto expected = oracle_supersets(query);
  for (sim::EndpointId e = kPeers + 1; e <= kPeers + 8; ++e)
    dht_->join(e, 1);
  for (int round = 0; round < 40; ++round) dht_->stabilize_all();
  overlay_->repair_placement();
  dolr_->repair_replicas();
  clock_.run();
  EXPECT_EQ(ids_of(overlay_superset(query).hits), expected);
}

TEST_F(FullStack, LostEntriesAreRestoredByRepublication) {
  // Fail two peers; their index entries vanish. Republishing the affected
  // objects (paper's recovery model) restores full searchability.
  dht_->fail(5);
  dht_->fail(9);
  for (int round = 0; round < 40; ++round) dht_->stabilize_all();
  overlay_->purge_dead();
  overlay_->repair_placement();
  // References survive via replication, so publish() alone would not
  // recreate lost index entries (not a first copy); the reindex repair
  // path restores them.
  for (const auto& rec : corpus_.records())
    overlay_->reindex(1 + rec.id % 3, rec.id, rec.keywords);
  clock_.run();

  Rng rng(33);
  for (int trial = 0; trial < 8; ++trial) {
    const auto& rec = corpus_[rng.next_below(corpus_.size())];
    const KeywordSet query({rec.keywords.words().front()});
    EXPECT_EQ(ids_of(overlay_superset(query).hits), oracle_supersets(query));
  }
}

TEST_F(FullStack, RealQueryLogAgreesAcrossModes) {
  workload::QueryLogConfig qcfg;
  qcfg.query_count = 60;
  qcfg.distinct_queries = 30;
  workload::QueryLogGenerator gen(corpus_, qcfg);
  const workload::QueryLog log = gen.generate();
  for (const auto& q : log.queries()) {
    const auto overlay_result = overlay_superset(q.keywords);
    const auto logical_result = logical_->superset_search(q.keywords);
    EXPECT_EQ(ids_of(overlay_result.hits), ids_of(logical_result.hits));
  }
}

TEST_F(FullStack, RankingPipelineOnLiveResults) {
  // Find a query with a mix of exact and extended matches, then rank.
  const auto& rec = corpus_[7];
  const KeywordSet query({rec.keywords.words().front()});
  auto result = overlay_superset(query);
  ASSERT_FALSE(result.hits.empty());
  auto hits = result.hits;
  index::order_hits(hits, query, index::RankingPreference::kGeneralFirst);
  for (std::size_t i = 1; i < hits.size(); ++i)
    EXPECT_LE(hits[i - 1].keywords.size(), hits[i].keywords.size());
  const auto refinements = index::sample_refinements(hits, query, 3, 10);
  for (const auto& r : refinements) {
    EXPECT_FALSE(r.extra.empty());
    EXPECT_LE(r.samples.size(), 3u);
  }
}

TEST_F(FullStack, RandomizedChurnStress) {
  // Interleave joins, graceful leaves, abrupt failures, repairs, and
  // queries for many rounds; after each repair cycle the overlay must
  // agree with the brute-force oracle (anti-entropy reindexing restores
  // entries lost to failures).
  Rng rng(77);
  sim::EndpointId next_endpoint = kPeers + 1;
  for (int round = 0; round < 10; ++round) {
    const auto action = rng.next_below(3);
    if (action == 0) {
      dht_->join(next_endpoint++, 1);
    } else if (action == 1 && dht_->size() > 8) {
      // Leave gracefully with a random live non-bootstrap peer.
      const auto ids = dht_->live_ids();
      const auto victim =
          dht_->endpoint_of(ids[1 + rng.next_below(ids.size() - 1)]);
      if (victim != 1) dht_->leave(victim);
    } else if (dht_->size() > 8) {
      const auto ids = dht_->live_ids();
      const auto victim =
          dht_->endpoint_of(ids[1 + rng.next_below(ids.size() - 1)]);
      if (victim != 1) dht_->fail(victim);
    }
    for (int s = 0; s < 20; ++s) dht_->stabilize_all();
    overlay_->purge_dead();
    overlay_->repair_placement();
    dolr_->repair_replicas();
    clock_.run();
    // Anti-entropy pass: every publisher re-asserts its index entries.
    for (const auto& rec : corpus_.records())
      overlay_->reindex(1, rec.id, rec.keywords);
    clock_.run();

    // Spot-check three random queries against the oracle.
    for (int q = 0; q < 3; ++q) {
      const auto& rec = corpus_[rng.next_below(corpus_.size())];
      const KeywordSet query({rec.keywords.words().front()});
      EXPECT_EQ(ids_of(overlay_superset(query).hits), oracle_supersets(query))
          << "round " << round << " query " << query.to_string();
    }
  }
}

TEST_F(FullStack, CumulativeBrowsingMatchesOneShotSearch) {
  const auto& rec = corpus_[11];
  const KeywordSet query({rec.keywords.words().front()});
  const auto expected = oracle_supersets(query);
  auto session = logical_->begin_cumulative(query);
  std::set<ObjectId> collected;
  while (!session.exhausted()) {
    const auto batch = session.next(5);
    if (batch.hits.empty()) break;
    for (const Hit& h : batch.hits) collected.insert(h.object);
  }
  EXPECT_EQ(collected, expected);
}

TEST(Determinism, IdenticalRunsProduceIdenticalTraffic) {
  // The whole stack — hashing, RNG, event ordering, protocols — must be
  // bit-for-bit reproducible: two identical runs end with identical
  // network metrics and identical result sets.
  auto run_once = [] {
    sim::EventQueue clock;
    sim::Network net(clock, std::make_unique<sim::UniformLatency>(1, 20), 3);
    auto dht = dht::ChordNetwork::build(net, 24, {});
    dht::Dolr dolr(dht, dht::Dolr::Config{2});
    index::OverlayIndex idx(dolr, {.r = 7, .cache_capacity = 16});

    workload::CorpusConfig ccfg;
    ccfg.object_count = 300;
    ccfg.vocabulary_size = 200;
    const auto corpus = workload::CorpusGenerator(ccfg).generate();
    for (const auto& rec : corpus.records())
      idx.publish(1 + rec.id % 24, rec.id, rec.keywords);
    clock.run();

    std::vector<std::size_t> hit_counts;
    for (int q = 0; q < 10; ++q) {
      const KeywordSet query(
          {corpus[static_cast<std::size_t>(q * 13)].keywords.words().front()});
      std::optional<SearchResult> result;
      idx.superset_search(2, query, 0,
                          index::SearchStrategy::kTopDownSequential,
                          [&](const SearchResult& r) { result = r; });
      clock.run();
      hit_counts.push_back(result ? result->hits.size() : 0);
    }
    return std::pair{net.metrics().counters(), hit_counts};
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);    // every per-kind message counter
  EXPECT_EQ(a.second, b.second);  // every result count
}

}  // namespace
}  // namespace hkws
