// FaultTransport decorator tests: the simulator's drop / duplicate / delay /
// partition fault semantics applied at the transport narrow waist, over both
// backends. The load-bearing properties: a drop never reaches the inner
// transport but is fully accounted (sent + lost + net.dropped.fault, observer
// lost = true), injection starts only at arm(), and the conservation identity
// net.messages == net.delivered + net.lost closes over real sockets too.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_transport.hpp"
#include "net/tcp_transport.hpp"
#include "sim/network.hpp"
#include "torture/fault_plan.hpp"

namespace hkws::net {
namespace {

using namespace std::chrono_literals;
using torture::FaultEvent;
using torture::FaultInjector;
using torture::FaultKind;
using torture::FaultPlan;

constexpr auto kIdle = 5s;

/// Plan with explicit events (no seed derivation — tests pick their targets).
FaultPlan plan_of(std::vector<FaultEvent> events) {
  FaultPlan p;
  p.events = std::move(events);
  return p;
}

TEST(FaultTransport, UnarmedPassesThroughUninspected) {
  sim::EventQueue clock;
  sim::Network inner(clock);
  FaultTransport ft(inner,
                    std::make_unique<FaultInjector>(
                        plan_of({{FaultKind::kDrop, 0, 0}})));
  ft.register_endpoint(1);
  ft.register_endpoint(2);
  std::atomic<int> ran{0};
  ft.send(1, 2, "kws.t_query", 64, [&] { ++ran; });
  clock.run();
  EXPECT_EQ(ran.load(), 1);  // the drop @0 never fired: not armed
  EXPECT_EQ(ft.wire_seq(), 0u);
  EXPECT_EQ(ft.metrics().counter("net.lost"), 0u);
}

TEST(FaultTransport, DropIsAccountedAndNeverReachesInner) {
  sim::EventQueue clock;
  sim::Network inner(clock);
  FaultTransport ft(inner,
                    std::make_unique<FaultInjector>(
                        plan_of({{FaultKind::kDrop, 0, 0}})));
  ft.register_endpoint(1);
  ft.register_endpoint(2);
  std::vector<SendRecord> seen;
  ft.set_send_observer(
      [&](const std::string&, const SendRecord& r) { seen.push_back(r); });
  ft.arm();
  std::atomic<int> ran{0};
  ft.send(1, 2, "kws.t_query", 64, [&] { ++ran; });  // seq 0: dropped
  ft.send(1, 2, "kws.t_query", 64, [&] { ++ran; });  // seq 1: clean
  clock.run();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(ft.wire_seq(), 2u);
  // Both count as sent; exactly one as lost, attributed to fault injection.
  EXPECT_EQ(ft.metrics().counter("net.messages"), 2u);
  EXPECT_EQ(ft.metrics().counter("msg.kws.t_query"), 2u);
  EXPECT_EQ(ft.metrics().counter("net.lost"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.lost.kws.t_query"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.dropped.fault"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.delivered"), 1u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].lost);
  EXPECT_FALSE(seen[1].lost);
}

TEST(FaultTransport, DuplicateDeliversExtraCopies) {
  sim::EventQueue clock;
  sim::Network inner(clock);
  FaultTransport ft(inner,
                    std::make_unique<FaultInjector>(
                        plan_of({{FaultKind::kDuplicate, 0, 0}})));
  ft.register_endpoint(1);
  ft.register_endpoint(2);
  ft.arm();
  std::atomic<int> ran{0};
  ft.send(1, 2, "kws.results", 32, [&] { ++ran; });
  clock.run();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(ft.metrics().counter("net.dup"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.messages"), 2u);  // two real sends
  EXPECT_EQ(ft.metrics().counter("net.delivered"), 2u);
}

TEST(FaultTransport, DelayDefersThroughInnerScheduler) {
  sim::EventQueue clock;
  sim::Network inner(clock);
  FaultTransport ft(inner,
                    std::make_unique<FaultInjector>(
                        plan_of({{FaultKind::kDelay, 0, 50}})));
  ft.register_endpoint(1);
  ft.register_endpoint(2);
  ft.arm();
  std::atomic<int> ran{0};
  ft.send(1, 2, "kws.t_cont", 16, [&] { ++ran; });
  clock.run_until(40);
  EXPECT_EQ(ran.load(), 0);  // still parked behind the delay spike
  clock.run();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(ft.metrics().counter("net.delayed"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.delivered"), 1u);
}

TEST(FaultTransport, LocalAndUnregisteredSendsAreNotNumbered) {
  sim::EventQueue clock;
  sim::Network inner(clock);
  FaultTransport ft(inner,
                    std::make_unique<FaultInjector>(
                        plan_of({{FaultKind::kDrop, 0, 0}})));
  ft.register_endpoint(1);
  ft.register_endpoint(2);
  ft.arm();
  std::atomic<int> ran{0};
  ft.send(1, 1, "kws.pin", 8, [&] { ++ran; });    // local: uninspected
  ft.send(1, 99, "dolr.read", 8, [&] { ++ran; }); // unregistered: uninspected
  ft.send(1, 2, "kws.t_query", 8, [&] { ++ran; }); // seq 0: dropped
  clock.run();
  EXPECT_EQ(ran.load(), 1);  // only the local send delivered
  EXPECT_EQ(ft.wire_seq(), 1u);
  EXPECT_EQ(ft.metrics().counter("net.local"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.dropped.unregistered"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.dropped.fault"), 1u);
}

TEST(FaultPlanPartition, PackRoundTripsAndSidesBisect) {
  const std::uint64_t arg = FaultEvent::pack_partition(700, 5);
  EXPECT_EQ(FaultEvent::partition_span(arg), 700u);
  EXPECT_EQ(FaultEvent::partition_bit(arg), 5u);
  // The bisection is a pure function of (endpoint, bit) and non-trivial:
  // over a modest endpoint range both sides must be populated.
  int side_a = 0, side_b = 0;
  for (EndpointId ep = 1; ep <= 64; ++ep)
    (torture::partition_side(ep, 5) ? side_a : side_b)++;
  EXPECT_GT(side_a, 0);
  EXPECT_GT(side_b, 0);
}

TEST(FaultPlanPartition, CutDropsCrossingLossableTrafficThenHeals) {
  // Cut spans wire seqs [0, 4); find an endpoint pair straddling the cut.
  FaultPlan plan = plan_of(
      {{FaultKind::kPartition, 0, FaultEvent::pack_partition(4, 3)}});
  EndpointId left = 0, right = 0;
  for (EndpointId ep = 1; ep <= 64 && (left == 0 || right == 0); ++ep)
    (torture::partition_side(ep, 3) ? left : right) = ep;
  ASSERT_NE(left, 0u);
  ASSERT_NE(right, 0u);

  sim::EventQueue clock;
  sim::Network inner(clock);
  FaultTransport ft(inner, std::make_unique<FaultInjector>(plan));
  ft.register_endpoint(left);
  ft.register_endpoint(right);
  ft.arm();
  std::atomic<int> ran{0};
  // seq 0: lossable, crosses the cut -> dropped.
  ft.send(left, right, "kws.t_query", 8, [&] { ++ran; });
  // seq 1: crosses the cut but is not loss-tolerant -> passes (the protocol
  // cannot survive losing it, so the injector never cuts it).
  ft.send(left, right, "dolr.insert", 8, [&] { ++ran; });
  // seq 2: lossable, crosses -> dropped.
  ft.send(right, left, "kws.results", 8, [&] { ++ran; });
  // seq 3: lossable but stays on one side -> passes.
  ft.send(left, left, "kws.t_query", 8, [&] { ++ran; });  // local, unnumbered
  ft.send(right, left, "maint.ack", 8, [&] { ++ran; });   // seq 3, crossing
  // seq 4: the cut healed -> passes.
  ft.send(left, right, "kws.t_query", 8, [&] { ++ran; });
  clock.run();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(ft.metrics().counter("net.dropped.fault"), 3u);
}

// The same drop semantics over the real runtime: the dropped frame never
// touches a socket, the delivered one does, and the conservation identity
// the torture harness checks — net.messages == net.delivered + net.lost —
// closes after the transport drains.
TEST(FaultTransport, DropAccountingClosesOverTcp) {
  TcpTransport tcp;
  FaultTransport ft(tcp,
                    std::make_unique<FaultInjector>(
                        plan_of({{FaultKind::kDrop, 1, 0}})));
  ft.register_endpoint(1);
  ft.register_endpoint(2);
  ft.arm();
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i)
    ft.send(1, 2, "kws.t_query", 64, [&] { ++ran; });  // seq 1 dropped
  ASSERT_TRUE(tcp.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(ft.metrics().counter("net.messages"), 4u);
  EXPECT_EQ(ft.metrics().counter("net.delivered"), 3u);
  EXPECT_EQ(ft.metrics().counter("net.lost"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.dropped.fault"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.messages"),
            ft.metrics().counter("net.delivered") +
                ft.metrics().counter("net.lost"));
}

TEST(FaultTransport, DelayedRedeliveryIsCoveredByTcpWaitIdle) {
  // A delay rides the inner dispatch strand's scheduler, so wait_idle()
  // cannot return before the deferred message lands.
  TcpTransport tcp;
  FaultTransport ft(tcp,
                    std::make_unique<FaultInjector>(
                        plan_of({{FaultKind::kDelay, 0, 80}})));
  ft.register_endpoint(1);
  ft.register_endpoint(2);
  ft.arm();
  std::atomic<int> ran{0};
  ft.send(1, 2, "kws.t_cont", 24, [&] { ++ran; });
  ASSERT_TRUE(tcp.wait_idle(kIdle));
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(ft.metrics().counter("net.delayed"), 1u);
  EXPECT_EQ(ft.metrics().counter("net.delivered"), 1u);
}

}  // namespace
}  // namespace hkws::net
