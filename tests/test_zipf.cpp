#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace hkws {
namespace {

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z(100, 1.0);
  double sum = 0;
  for (std::size_t k = 0; k < z.size(); ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, PmfIsMonotoneDecreasing) {
  ZipfDistribution z(50, 1.2);
  for (std::size_t k = 1; k < z.size(); ++k)
    EXPECT_LE(z.pmf(k), z.pmf(k - 1)) << "rank " << k;
}

TEST(Zipf, SkewZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
}

TEST(Zipf, PmfOutOfRangeIsZero) {
  ZipfDistribution z(10, 1.0);
  EXPECT_EQ(z.pmf(10), 0.0);
  EXPECT_EQ(z.pmf(1000), 0.0);
}

TEST(Zipf, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.5), std::invalid_argument);
}

TEST(Zipf, SingleRankAlwaysSamplesZero) {
  ZipfDistribution z(1, 1.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfDistribution z(20, 1.0);
  Rng rng(42);
  std::vector<std::uint64_t> counts(20, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 20; ++k) {
    const double expected = z.pmf(k) * kN;
    EXPECT_NEAR(static_cast<double>(counts[k]), expected,
                5 * std::sqrt(expected) + 5)
        << "rank " << k;
  }
}

TEST(Zipf, FitRecoversExponent) {
  // Generate exact Zipf counts and check the regression recovers s.
  for (double s : {0.7, 1.0, 1.4}) {
    std::vector<std::uint64_t> counts;
    for (int k = 1; k <= 500; ++k)
      counts.push_back(static_cast<std::uint64_t>(
          1e7 * std::pow(static_cast<double>(k), -s)));
    EXPECT_NEAR(fit_zipf_exponent(counts), s, 0.05) << "s=" << s;
  }
}

TEST(Zipf, FitHandlesDegenerateInput) {
  EXPECT_EQ(fit_zipf_exponent({}), 0.0);
  EXPECT_EQ(fit_zipf_exponent({5}), 0.0);
  EXPECT_EQ(fit_zipf_exponent({0, 0, 0}), 0.0);
  // A single observed rank among zeros still cannot determine a slope.
  EXPECT_EQ(fit_zipf_exponent({0, 7, 0, 0}), 0.0);
}

TEST(Zipf, FitSkipsZeroCountRanksWithoutCompacting) {
  // Gappy rank histogram: exact Zipf counts with every other rank zeroed.
  // Zero ranks are skipped but the surviving ranks keep their true rank
  // index (not compacted), so the fit still recovers the exponent from the
  // observed points alone.
  for (double s : {0.8, 1.2}) {
    std::vector<std::uint64_t> counts;
    for (int k = 1; k <= 400; ++k) {
      const auto c = static_cast<std::uint64_t>(
          1e7 * std::pow(static_cast<double>(k), -s));
      counts.push_back(k % 2 == 0 ? 0 : c);
    }
    EXPECT_NEAR(fit_zipf_exponent(counts), s, 0.05) << "s=" << s;
  }
  // Zero-count ranks carry no evidence: padding the tail with empty ranks
  // must leave the estimate bit-identical.
  const std::vector<std::uint64_t> base{100, 40, 20, 12, 8};
  std::vector<std::uint64_t> padded = base;
  padded.insert(padded.end(), 50, 0);
  EXPECT_DOUBLE_EQ(fit_zipf_exponent(base), fit_zipf_exponent(padded));
  EXPECT_GT(fit_zipf_exponent(base), 0.0);
}

class ZipfTopShare
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ZipfTopShare, TopTenShareGrowsWithSkew) {
  const auto [skew, min_share] = GetParam();
  ZipfDistribution z(2000, skew);
  double top10 = 0;
  for (std::size_t k = 0; k < 10; ++k) top10 += z.pmf(k);
  EXPECT_GE(top10, min_share);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfTopShare,
                         ::testing::Values(std::pair{0.8, 0.15},
                                           std::pair{1.0, 0.30},
                                           std::pair{1.5, 0.75}));

}  // namespace
}  // namespace hkws
