#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <string>
#include <vector>

namespace hkws {
namespace {

TEST(Hash, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_EQ(mix64(0xdeadbeef), mix64(0xdeadbeef));
}

TEST(Hash, Mix64SpreadsNearbyInputs) {
  // Consecutive inputs must not produce consecutive outputs.
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
  EXPECT_NE(mix64(1) - mix64(0), 1u);
}

TEST(Hash, Mix64AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = mix64(0x1234567890abcdefULL);
    const std::uint64_t b = mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    const int flipped = std::popcount(a ^ b);
    EXPECT_GT(flipped, 12) << "bit " << bit;
    EXPECT_LT(flipped, 52) << "bit " << bit;
  }
}

TEST(Hash, SplitMixAdvancesState) {
  std::uint64_t s = 7;
  const auto a = splitmix64_next(s);
  const auto b = splitmix64_next(s);
  EXPECT_NE(a, b);
  // Same seed reproduces the same stream.
  std::uint64_t s2 = 7;
  EXPECT_EQ(splitmix64_next(s2), a);
  EXPECT_EQ(splitmix64_next(s2), b);
}

TEST(Hash, BytesDeterministicAndSeedDependent) {
  EXPECT_EQ(hash_bytes("hello", 1), hash_bytes("hello", 1));
  EXPECT_NE(hash_bytes("hello", 1), hash_bytes("hello", 2));
  EXPECT_NE(hash_bytes("hello", 1), hash_bytes("hellp", 1));
}

TEST(Hash, BytesHandlesEmptyAndBinary) {
  EXPECT_EQ(hash_bytes("", 9), hash_bytes("", 9));
  EXPECT_NE(hash_bytes("", 9), hash_bytes("", 10));
  const std::string with_nul("a\0b", 3);
  const std::string without_nul("ab");
  EXPECT_NE(hash_bytes(with_nul, 9), hash_bytes(without_nul, 9));
}

TEST(Hash, SeedsGiveIndependentFunctions) {
  // Two seeds should disagree on essentially all inputs.
  int agreements = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key" + std::to_string(i);
    if ((hash_bytes(key, seeds::kKeywordHash) % 16) ==
        (hash_bytes(key, seeds::kObjectToDht) % 16))
      ++agreements;
  }
  // Chance agreement on 16 buckets is ~62/1000; allow generous slack.
  EXPECT_LT(agreements, 150);
}

TEST(Hash, CombineIsOrderDependent) {
  const auto ab = hash_combine(hash_combine(0, 1), 2);
  const auto ba = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(Hash, BytesDistributesUniformlyAcrossSmallRange) {
  // Keyword -> dimension hashing (h) depends on this being near-uniform.
  constexpr int kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i)
    ++counts[hash_bytes("kw" + std::to_string(i), seeds::kKeywordHash) %
             kBuckets];
  for (int c : counts) {
    EXPECT_GT(c, kKeys / kBuckets * 85 / 100);
    EXPECT_LT(c, kKeys / kBuckets * 115 / 100);
  }
}

}  // namespace
}  // namespace hkws
