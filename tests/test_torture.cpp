// The torture harness testing itself: seeded smoke sweeps across every
// deployment and strategy, determinism of plans and runs, schedule
// shrinking, and — the critical meta-test — proof that the harness detects
// a deliberately re-introduced QueryCache staleness bug and reproduces it
// from the printed seed.
#include <gtest/gtest.h>

#include "index/query_cache.hpp"
#include "torture/scenario.hpp"
#include "torture/shrink.hpp"

namespace hkws::torture {
namespace {

using index::SearchStrategy;

constexpr Deployment kAllDeployments[] = {
    Deployment::kDirect,   Deployment::kChord,    Deployment::kPastry,
    Deployment::kHyperCup, Deployment::kMirrored, Deployment::kDecomposed,
};
constexpr SearchStrategy kAllStrategies[] = {
    SearchStrategy::kTopDownSequential,
    SearchStrategy::kBottomUpSequential,
    SearchStrategy::kLevelParallel,
};

/// Restores the process-wide legacy-staleness flag on scope exit, so a
/// failing assertion can't poison later tests.
struct LegacyStalenessGuard {
  ~LegacyStalenessGuard() {
    index::QueryCache::set_debug_legacy_staleness(false);
  }
};

TEST(FaultPlan, SeedDerivationIsDeterministic) {
  FaultPlanConfig cfg;
  const FaultPlan a = FaultPlan::from_seed(42, cfg);
  const FaultPlan b = FaultPlan::from_seed(42, cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].target, b.events[i].target);
    EXPECT_EQ(a.events[i].arg, b.events[i].arg);
  }
  const FaultPlan c = FaultPlan::from_seed(43, cfg);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultPlan, LossableCoversExactlyTheRetransmissionGuardedKinds) {
  EXPECT_TRUE(lossable("kws.t_query"));
  EXPECT_TRUE(lossable("kws.t_cont"));
  EXPECT_TRUE(lossable("kws.t_stop"));
  EXPECT_TRUE(lossable("kws.results"));
  EXPECT_TRUE(lossable("kws.done"));
  // Heartbeats tolerate loss by design: a dropped ping/ack costs one
  // suspicion round, confirmation needs consecutive misses.
  EXPECT_TRUE(lossable("maint.ping"));
  EXPECT_TRUE(lossable("maint.ack"));
  EXPECT_FALSE(lossable("kws.c_results"));  // cumulative: no retransmission
  EXPECT_FALSE(lossable("dolr.insert"));
  EXPECT_FALSE(lossable("dht.lookup"));
  EXPECT_FALSE(lossable("hc.s_query"));
}

TEST(Torture, SmokeSweepAllDeploymentsAndStrategiesGreen) {
  ScenarioRunner runner;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (Deployment d : kAllDeployments) {
      for (SearchStrategy s : kAllStrategies) {
        if (d == Deployment::kHyperCup &&
            s != SearchStrategy::kTopDownSequential)
          continue;  // tree forwarding has no strategy knob
        const ScenarioConfig cfg = ScenarioConfig::from_seed(seed, d, s);
        const ScenarioReport rep = runner.run(cfg);
        EXPECT_TRUE(rep.ok()) << rep.to_string();
        EXPECT_GT(rep.searches, 0u);
        EXPECT_GT(rep.mutations, 0u);
      }
    }
  }
}

TEST(Torture, RunsAreDeterministicPerSeed) {
  ScenarioRunner runner;
  const ScenarioConfig cfg = ScenarioConfig::from_seed(
      7, Deployment::kChord, SearchStrategy::kTopDownSequential);
  const ScenarioReport a = runner.run(cfg);
  const ScenarioReport b = runner.run(cfg);
  EXPECT_EQ(a.searches, b.searches);
  EXPECT_EQ(a.mutations, b.mutations);
  EXPECT_EQ(a.cancels, b.cancels);
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(Torture, ChurnScenariosSurvive) {
  // Find a seed whose Chord scenario schedules a peer failure and check the
  // repair recipe keeps every invariant.
  ScenarioRunner runner;
  std::size_t churn_runs = 0;
  for (std::uint64_t seed = 1; seed <= 12 && churn_runs < 2; ++seed) {
    const ScenarioConfig cfg = ScenarioConfig::from_seed(
        seed, Deployment::kChord, SearchStrategy::kTopDownSequential);
    if (!cfg.churn) continue;
    ++churn_runs;
    const ScenarioReport rep = runner.run(cfg);
    EXPECT_TRUE(rep.ok()) << rep.to_string();
  }
  EXPECT_GE(churn_runs, 1u);
}

// The acceptance meta-test: restoring the pre-fix QueryCache behaviour
// (stale entries survive oversized refreshes and epoch invalidation is
// skipped) must be *caught* by the harness, and the failure must reproduce
// from the same seed. Seed 26 is a known catcher for both the direct and
// the Chord deployment (cache-enabled, recurring queries across mutation
// rounds); sibling seeds stay green when the fix is active.
TEST(Torture, CatchesReintroducedQueryCacheStalenessBug) {
  LegacyStalenessGuard guard;
  ScenarioRunner runner;
  const ScenarioConfig cfg = ScenarioConfig::from_seed(
      26, Deployment::kDirect, SearchStrategy::kTopDownSequential);
  ASSERT_GT(cfg.cache_capacity, 0u);

  // With the fix: green.
  index::QueryCache::set_debug_legacy_staleness(false);
  EXPECT_TRUE(runner.run(cfg).ok());

  // Bug re-introduced: caught, with an oracle violation.
  index::QueryCache::set_debug_legacy_staleness(true);
  const ScenarioReport caught = runner.run(cfg);
  ASSERT_FALSE(caught.ok());
  EXPECT_EQ(caught.violations[0].invariant, "oracle");

  // Reproduced bit-identically from the same seed.
  const ScenarioReport again = runner.run(cfg);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.violations[0].detail, caught.violations[0].detail);

  // Fix restored: green again.
  index::QueryCache::set_debug_legacy_staleness(false);
  EXPECT_TRUE(runner.run(cfg).ok());
}

TEST(Torture, CatchesStalenessBugOverTheWireToo) {
  LegacyStalenessGuard guard;
  ScenarioRunner runner;
  const ScenarioConfig cfg = ScenarioConfig::from_seed(
      26, Deployment::kChord, SearchStrategy::kTopDownSequential);
  ASSERT_GT(cfg.cache_capacity, 0u);
  index::QueryCache::set_debug_legacy_staleness(true);
  const ScenarioReport caught = runner.run(cfg);
  ASSERT_FALSE(caught.ok());
  EXPECT_EQ(caught.violations[0].invariant, "oracle");
}

// Continuous churn: peers are killed mid-run with *no* oracle-driven
// repair; the self-healing maintenance plane must detect each failure by
// heartbeat and heal incrementally while serving continues. The same
// scenario with the plane disabled must be caught — that asymmetry is the
// acceptance meta-test for the plane.
TEST(Torture, ContinuousChurnHealsWithPlaneAndFailsWithout) {
  ScenarioRunner runner;
  // Seed 3's preset schedules kills that strand index entries; known to
  // converge with the plane and be caught without it.
  const ScenarioConfig healed = ScenarioConfig::churn_preset(3);
  ASSERT_TRUE(healed.continuous_churn);
  ASSERT_GE(healed.faults.peer_failures, 2u);
  const ScenarioReport good = runner.run(healed);
  EXPECT_TRUE(good.ok()) << good.to_string();
  EXPECT_GT(good.searches, 0u);

  ScenarioConfig control = healed;
  control.self_healing = false;
  const ScenarioReport caught = runner.run(control);
  ASSERT_FALSE(caught.ok());

  // Reproduced bit-identically from the same seed.
  const ScenarioReport again = runner.run(control);
  ASSERT_FALSE(again.ok());
  ASSERT_EQ(again.violations.size(), caught.violations.size());
  EXPECT_EQ(again.violations[0].detail, caught.violations[0].detail);
}

TEST(Torture, ContinuousChurnPresetSweepIsGreen) {
  ScenarioRunner runner;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const ScenarioReport rep = runner.run(ScenarioConfig::churn_preset(seed));
    EXPECT_TRUE(rep.ok()) << rep.to_string();
  }
}

// The hot-spot preset's 0.85 recurring-query share hammers a handful of
// cube cells. With hot-cell replication the scan load spreads across the
// replica sets and every invariant (including load_balance) holds; with
// the feature off the same workload must trip load_balance — and nothing
// else, since replication is a pure load optimization.
TEST(Torture, HotSpotReplicationFlattensScanSkewAndControlIsCaught) {
  ScenarioRunner runner;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const ScenarioConfig cfg = ScenarioConfig::hot_spot_preset(seed);
    ASSERT_TRUE(cfg.hot_spot);
    ASSERT_TRUE(cfg.hot_replication);
    ASSERT_GT(cfg.max_scan_skew, 0.0);
    const ScenarioReport rep = runner.run(cfg);
    EXPECT_TRUE(rep.ok()) << rep.to_string();
    EXPECT_GT(rep.searches, 0u);
  }

  // Seeds 2 and 3 sit well above the skew bound without replication
  // (max/mean ~8.0 and ~6.4 against the 4.0 limit).
  for (std::uint64_t seed : {2, 3}) {
    ScenarioConfig control = ScenarioConfig::hot_spot_preset(seed);
    control.hot_replication = false;
    const ScenarioReport caught = runner.run(control);
    ASSERT_FALSE(caught.ok()) << "seed " << seed;
    for (const Violation& v : caught.violations)
      EXPECT_EQ(v.invariant, "load_balance") << v.detail;

    // Reproduced bit-identically from the same seed.
    const ScenarioReport again = runner.run(control);
    ASSERT_EQ(again.violations.size(), caught.violations.size());
    EXPECT_EQ(again.violations[0].detail, caught.violations[0].detail);
  }
}

// The same invariant battery over the real runtime: every wire message
// crosses a loopback TCP socket (net::TcpTransport) with the seeded fault
// schedule injected by net::FaultTransport below the codec. Message order
// is wall-clock real, so this exercises the protocol against genuine
// concurrency — the invariants must hold anyway.
TEST(TortureTcp, ChordAndChurnScenariosGreenOverRealSockets) {
  ScenarioRunner runner;
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    ScenarioConfig cfg = ScenarioConfig::from_seed(
        seed, Deployment::kChord, SearchStrategy::kLevelParallel);
    cfg.backend = Backend::kTcp;
    const ScenarioReport rep = runner.run(cfg);
    EXPECT_TRUE(rep.ok()) << rep.to_string();
    EXPECT_GT(rep.searches, 0u);
  }
  ScenarioConfig churn = ScenarioConfig::churn_preset(1);
  churn.backend = Backend::kTcp;
  const ScenarioReport rep = runner.run(churn);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// The acceptance meta-test for FaultTransport: loss injected over real
// sockets must be *observable*. With step retransmission disabled, a
// single dropped step message strands its operation forever, and the
// harness's hang invariant must catch it; the identical drop-heavy
// schedule with retransmission on must be survived. If FaultTransport
// silently failed to drop (or dropped where the protocol never noticed),
// the first run would go green and this test would fail.
TEST(TortureTcp, InjectedLossIsCaughtWhenRetransmissionIsOff) {
  ScenarioRunner runner;
  ScenarioConfig cfg = ScenarioConfig::from_seed(
      1, Deployment::kChord, SearchStrategy::kTopDownSequential);
  cfg.backend = Backend::kTcp;
  // Dense drop-only schedule: with ~1 drop per 12 wire messages, some
  // loss-guarded step (t_query / t_cont / results / done) is hit with
  // near-certainty in every run.
  cfg.faults.allow_drops = true;
  cfg.faults.allow_dups = false;
  cfg.faults.allow_delays = false;
  cfg.faults.max_events = 120;
  cfg.faults.horizon = 1500;

  // Control: same config, faults off entirely — proves the no-retransmission
  // mode itself is clean over TCP (no spurious hang).
  ScenarioConfig clean = cfg;
  clean.retransmission = false;
  clean.faults.allow_drops = false;
  clean.faults.max_events = 0;
  const ScenarioReport quiet = runner.run(clean);
  EXPECT_TRUE(quiet.ok()) << quiet.to_string();

  // Retransmission on: the drops are absorbed, everything green.
  const ScenarioReport healed = runner.run(cfg);
  EXPECT_TRUE(healed.ok()) << healed.to_string();
  EXPECT_GT(healed.faults_applied, 0u);

  // Retransmission off: the loss must surface as a caught violation.
  ScenarioConfig exposed = cfg;
  exposed.retransmission = false;
  const ScenarioReport caught = runner.run(exposed);
  ASSERT_FALSE(caught.ok()) << "FaultTransport drops were not observable";
  EXPECT_GT(caught.faults_applied, 0u);
}

TEST(Shrink, ChurnFailureShrinksToThePeerFailures) {
  // The no-plane control fails because of the kills, not the message
  // faults: shrinking must keep at least one kFailPeer event and strip the
  // drops/dups/delays.
  ScenarioRunner runner;
  ScenarioConfig control = ScenarioConfig::churn_preset(3);
  control.self_healing = false;
  const FaultPlan plan = FaultPlan::from_seed(control.seed, control.faults);
  ASSERT_GT(plan.count(FaultKind::kFailPeer), 0u);
  ASSERT_GT(plan.events.size(), plan.count(FaultKind::kFailPeer));
  const ShrinkResult min = shrink_plan(runner, control, plan);
  EXPECT_FALSE(min.report.ok());
  EXPECT_GE(min.plan.count(FaultKind::kFailPeer), 1u);
  EXPECT_EQ(min.plan.events.size(), min.plan.count(FaultKind::kFailPeer))
      << "message faults survived shrinking: " << min.plan.to_string();
  EXPECT_GT(min.runs, 1u);
}

TEST(Shrink, RemovesEveryIrrelevantFaultEvent) {
  // The staleness failure above does not depend on message faults at all,
  // so greedy shrinking must strip the Chord scenario's schedule down to
  // nothing while the failure keeps reproducing.
  LegacyStalenessGuard guard;
  index::QueryCache::set_debug_legacy_staleness(true);
  ScenarioRunner runner;
  const ScenarioConfig cfg = ScenarioConfig::from_seed(
      26, Deployment::kChord, SearchStrategy::kTopDownSequential);
  const FaultPlan plan = FaultPlan::from_seed(cfg.seed, cfg.faults);
  ASSERT_FALSE(plan.events.empty());
  const ShrinkResult min = shrink_plan(runner, cfg, plan);
  EXPECT_FALSE(min.report.ok());
  EXPECT_TRUE(min.plan.events.empty())
      << "left: " << min.plan.to_string();
  EXPECT_GT(min.runs, 1u);
}

TEST(Shrink, PassingScenarioIsReturnedUnchanged) {
  ScenarioRunner runner;
  const ScenarioConfig cfg = ScenarioConfig::from_seed(
      3, Deployment::kPastry, SearchStrategy::kBottomUpSequential);
  const FaultPlan plan = FaultPlan::from_seed(cfg.seed, cfg.faults);
  const ShrinkResult min = shrink_plan(runner, cfg, plan);
  EXPECT_TRUE(min.report.ok());
  EXPECT_EQ(min.plan.events.size(), plan.events.size());
  EXPECT_EQ(min.runs, 1u);
}

}  // namespace
}  // namespace hkws::torture
