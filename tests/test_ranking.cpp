#include "index/ranking.hpp"

#include "index/keyword_hash.hpp"

#include <gtest/gtest.h>

namespace hkws::index {
namespace {

std::vector<Hit> sample_hits() {
  return {
      Hit{1, KeywordSet({"q"})},
      Hit{2, KeywordSet({"q", "a"})},
      Hit{3, KeywordSet({"q", "b"})},
      Hit{4, KeywordSet({"q", "a", "b"})},
      Hit{5, KeywordSet({"q", "a"})},
  };
}

TEST(Ranking, GroupByExtraCountsCorrectly) {
  const KeywordSet query({"q"});
  const auto groups = group_by_extra(sample_hits(), query);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.at(0).size(), 1u);
  EXPECT_EQ(groups.at(1).size(), 3u);
  EXPECT_EQ(groups.at(2).size(), 1u);
}

TEST(Ranking, GroupByExtraEmptyInput) {
  EXPECT_TRUE(group_by_extra({}, KeywordSet({"q"})).empty());
}

TEST(Ranking, OrderGeneralFirst) {
  auto hits = sample_hits();
  order_hits(hits, KeywordSet({"q"}), RankingPreference::kGeneralFirst);
  EXPECT_EQ(hits.front().object, 1u);
  EXPECT_EQ(hits.back().object, 4u);
  for (std::size_t i = 1; i < hits.size(); ++i)
    EXPECT_LE(hits[i - 1].keywords.size(), hits[i].keywords.size());
}

TEST(Ranking, OrderSpecificFirst) {
  auto hits = sample_hits();
  order_hits(hits, KeywordSet({"q"}), RankingPreference::kSpecificFirst);
  EXPECT_EQ(hits.front().object, 4u);
  EXPECT_EQ(hits.back().object, 1u);
}

TEST(Ranking, OrderingIsStableWithinATier) {
  auto hits = sample_hits();
  order_hits(hits, KeywordSet({"q"}), RankingPreference::kGeneralFirst);
  // Objects 2, 3, 5 all have one extra keyword; original order preserved.
  EXPECT_EQ(hits[1].object, 2u);
  EXPECT_EQ(hits[2].object, 3u);
  EXPECT_EQ(hits[3].object, 5u);
}

// Regression: a malformed hit with *fewer* keywords than the query (buggy
// backend, fault-injected duplicate) used to wrap the unsigned subtraction
// |K_hit| - |query| to a huge "extra" count. It must be clamped to the
// exact-match tier, not explode the group map or sort to the wrong end.
TEST(Ranking, MalformedHitDoesNotUnderflowGrouping) {
  const KeywordSet query({"q", "r"});
  std::vector<Hit> hits{
      Hit{1, KeywordSet({"q", "r", "a"})},  // 1 extra
      Hit{2, KeywordSet({"q"})},            // malformed: fewer than query
      Hit{3, KeywordSet({"q", "r"})},       // exact
  };
  const auto groups = group_by_extra(hits, query);
  ASSERT_EQ(groups.size(), 2u);  // tiers 0 and 1 only — no 2^64-ish key
  EXPECT_EQ(groups.begin()->first, 0u);
  EXPECT_EQ(groups.rbegin()->first, 1u);
  ASSERT_EQ(groups.at(0).size(), 2u);  // malformed clamps to the exact tier
  EXPECT_EQ(groups.at(0)[0].object, 2u);
  EXPECT_EQ(groups.at(0)[1].object, 3u);
}

TEST(Ranking, MalformedHitDoesNotUnderflowOrdering) {
  const KeywordSet query({"q", "r"});
  std::vector<Hit> hits{
      Hit{1, KeywordSet({"q", "r", "a", "b"})},  // 2 extra
      Hit{2, KeywordSet({"q"})},                 // malformed
      Hit{3, KeywordSet({"q", "r", "a"})},       // 1 extra
  };
  order_hits(hits, query, RankingPreference::kGeneralFirst);
  // The malformed hit ranks as an exact match (0 extra), not as a hit
  // with ~2^64 extras pushed to the specific end.
  EXPECT_EQ(hits[0].object, 2u);
  EXPECT_EQ(hits[1].object, 3u);
  EXPECT_EQ(hits[2].object, 1u);

  order_hits(hits, query, RankingPreference::kSpecificFirst);
  EXPECT_EQ(hits.back().object, 2u);
}

TEST(Ranking, SampleRefinementsGroupsByExtraSet) {
  const auto samples = sample_refinements(sample_hits(), KeywordSet({"q"}), 2);
  // Categories: {a} (objects 2,5), {b} (3), {a,b} (4); exact match skipped.
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].extra, KeywordSet({"a"}));
  EXPECT_EQ(samples[0].category_size, 2u);
  EXPECT_EQ(samples[0].samples.size(), 2u);
  EXPECT_EQ(samples[1].extra, KeywordSet({"b"}));
  EXPECT_EQ(samples[2].extra, KeywordSet({"a", "b"}));
}

TEST(Ranking, SampleRefinementsHonorsPerCategoryLimit) {
  std::vector<Hit> hits;
  for (ObjectId o = 1; o <= 10; ++o) hits.push_back(Hit{o, KeywordSet({"q", "a"})});
  const auto samples = sample_refinements(hits, KeywordSet({"q"}), 3);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].samples.size(), 3u);
  EXPECT_EQ(samples[0].category_size, 10u);
}

TEST(Ranking, SampleRefinementsHonorsMaxCategories) {
  std::vector<Hit> hits;
  for (ObjectId o = 1; o <= 6; ++o)
    hits.push_back(Hit{o, KeywordSet({"q", "x" + std::to_string(o)})});
  const auto samples = sample_refinements(hits, KeywordSet({"q"}), 1, 2);
  EXPECT_EQ(samples.size(), 2u);
}

TEST(Ranking, SmallerExtraSetsComeFirst) {
  std::vector<Hit> hits{
      Hit{1, KeywordSet({"q", "x", "y"})},
      Hit{2, KeywordSet({"q", "z"})},
  };
  const auto samples = sample_refinements(hits, KeywordSet({"q"}), 1);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].extra, KeywordSet({"z"}));
  EXPECT_EQ(samples[1].extra, KeywordSet({"x", "y"}));
}

TEST(Ranking, ExpandQueryPicksEvenSplit) {
  // "a" covers 3 of 5 hits; "b" covers 2 of 5; "c" covers 1.
  std::vector<Hit> hits{
      Hit{1, KeywordSet({"q", "a"})},      Hit{2, KeywordSet({"q", "a", "b"})},
      Hit{3, KeywordSet({"q", "a", "c"})}, Hit{4, KeywordSet({"q", "b"})},
      Hit{5, KeywordSet({"q"})},
  };
  const auto expanded = expand_query(hits, KeywordSet({"q"}));
  ASSERT_TRUE(expanded.has_value());
  // Ideal split is 2.5; "a" (3) and "b" (2) tie in distance; map order
  // makes the scan deterministic ("a" first, strict <).
  EXPECT_EQ(*expanded, KeywordSet({"q", "a"}));
}

TEST(Ranking, ExpandQueryRespectsMinShare) {
  std::vector<Hit> hits;
  for (ObjectId o = 1; o <= 20; ++o) hits.push_back(Hit{o, KeywordSet({"q"})});
  hits.push_back(Hit{99, KeywordSet({"q", "rare"})});
  // "rare" covers ~4.8% of hits: below the default 25% floor.
  EXPECT_FALSE(expand_query(hits, KeywordSet({"q"})).has_value());
  EXPECT_TRUE(expand_query(hits, KeywordSet({"q"}), 0.01).has_value());
}

// Regression: the old implementation chose the best half-split keyword
// first and only then applied min_share — so a rare keyword sitting closer
// to the half mark made expansion fail even though a dominant keyword
// passed the share floor. Eligibility must be filtered before the pick.
TEST(Ranking, ExpandQueryRareKeywordDoesNotShadowViableOne) {
  // 10 hits: "dom" covers 9 (share 0.9, gap |9-5|=4), "rare" covers 4
  // (share 0.4 — below the 0.5 floor, but gap |4-5|=1 wins on distance).
  std::vector<Hit> hits;
  for (ObjectId o = 1; o <= 4; ++o)
    hits.push_back(Hit{o, KeywordSet({"q", "dom", "rare"})});
  for (ObjectId o = 5; o <= 9; ++o)
    hits.push_back(Hit{o, KeywordSet({"q", "dom"})});
  hits.push_back(Hit{10, KeywordSet({"q"})});

  const auto expanded = expand_query(hits, KeywordSet({"q"}), 0.5);
  ASSERT_TRUE(expanded.has_value());  // pre-fix: nullopt ("rare" shadowed)
  EXPECT_EQ(*expanded, KeywordSet({"dom", "q"}));
}

TEST(Ranking, ExpandQueryEmptyCases) {
  EXPECT_FALSE(expand_query({}, KeywordSet({"q"})).has_value());
  // All hits exactly match the query: nothing to expand with.
  std::vector<Hit> exact{Hit{1, KeywordSet({"q"})}};
  EXPECT_FALSE(expand_query(exact, KeywordSet({"q"})).has_value());
}

TEST(Ranking, ExpandQueryNarrowsTheSearchSpace) {
  // The expanded query's responsible node has at least as many one-bits,
  // so its subhypercube is no larger (Lemma 3.3 direction).
  std::vector<Hit> hits{
      Hit{1, KeywordSet({"q", "x"})},
      Hit{2, KeywordSet({"q", "x", "y"})},
  };
  const auto expanded = expand_query(hits, KeywordSet({"q"}), 0.1);
  ASSERT_TRUE(expanded.has_value());
  KeywordHasher hasher(10);
  EXPECT_TRUE(cube::Hypercube::contains(
      hasher.responsible_node(*expanded),
      hasher.responsible_node(KeywordSet({"q"}))));
}

}  // namespace
}  // namespace hkws::index
