#include "index/query_cache.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace hkws::index {
namespace {

CachedTraversal summary_of(std::initializer_list<cube::CubeId> nodes,
                           bool complete = true) {
  CachedTraversal t;
  for (cube::CubeId n : nodes) t.contributors.emplace_back(n, 1u);
  t.complete = complete;
  return t;
}

TEST(QueryCache, MissThenHit) {
  QueryCache c(10);
  const KeywordSet q({"a"});
  EXPECT_EQ(c.lookup(q), nullptr);
  c.insert(q, summary_of({1, 2}));
  const auto* got = c.lookup(q);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->contributors.size(), 2u);
  EXPECT_TRUE(got->complete);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(QueryCache, ZeroCapacityDisablesCaching) {
  QueryCache c(0);
  c.insert(KeywordSet({"a"}), summary_of({1}));
  EXPECT_EQ(c.lookup(KeywordSet({"a"})), nullptr);
  EXPECT_EQ(c.occupancy(), 0u);
}

TEST(QueryCache, FifoEvictionOrder) {
  QueryCache c(3);
  c.insert(KeywordSet({"a"}), summary_of({1}));
  c.insert(KeywordSet({"b"}), summary_of({2}));
  c.insert(KeywordSet({"c"}), summary_of({3}));
  // Touch "a" (a hit) — FIFO must NOT refresh it.
  EXPECT_NE(c.lookup(KeywordSet({"a"})), nullptr);
  c.insert(KeywordSet({"d"}), summary_of({4}));
  EXPECT_EQ(c.lookup(KeywordSet({"a"})), nullptr);  // oldest evicted
  EXPECT_NE(c.lookup(KeywordSet({"b"})), nullptr);
  EXPECT_NE(c.lookup(KeywordSet({"d"})), nullptr);
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(QueryCache, OccupancyCountsRecords) {
  QueryCache c(10);
  c.insert(KeywordSet({"a"}), summary_of({1, 2, 3}));
  EXPECT_EQ(c.occupancy(), 3u);
  c.insert(KeywordSet({"b"}), summary_of({4}));
  EXPECT_EQ(c.occupancy(), 4u);
  c.erase(KeywordSet({"a"}));
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(QueryCache, EmptyCompleteSummaryOccupiesOneRecord) {
  QueryCache c(5);
  c.insert(KeywordSet({"nothing"}), summary_of({}));
  EXPECT_EQ(c.occupancy(), 1u);
  const auto* got = c.lookup(KeywordSet({"nothing"}));
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(got->contributors.empty());
  EXPECT_TRUE(got->complete);
}

TEST(QueryCache, MultiRecordEvictionUntilFit) {
  QueryCache c(4);
  c.insert(KeywordSet({"a"}), summary_of({1, 2}));
  c.insert(KeywordSet({"b"}), summary_of({3, 4}));
  // Needs 3 records: must evict both older entries.
  c.insert(KeywordSet({"c"}), summary_of({5, 6, 7}));
  EXPECT_EQ(c.lookup(KeywordSet({"a"})), nullptr);
  EXPECT_EQ(c.lookup(KeywordSet({"b"})), nullptr);
  EXPECT_NE(c.lookup(KeywordSet({"c"})), nullptr);
  EXPECT_EQ(c.occupancy(), 3u);
}

TEST(QueryCache, OversizedSummaryIsNotCached) {
  QueryCache c(2);
  c.insert(KeywordSet({"big"}), summary_of({1, 2, 3}));
  EXPECT_EQ(c.lookup(KeywordSet({"big"})), nullptr);
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_EQ(c.evictions(), 0u);
}

TEST(QueryCache, OversizedRefreshErasesStaleEntry) {
  // Regression: an oversized refresh used to early-return and leave the
  // previous (now stale) summary in the cache, to be served forever after.
  QueryCache c(3);
  c.insert(KeywordSet({"q"}), summary_of({1, 2}));
  ASSERT_NE(c.lookup(KeywordSet({"q"})), nullptr);
  c.insert(KeywordSet({"q"}), summary_of({1, 2, 3}));  // refresh grew to cap
  EXPECT_EQ(c.lookup(KeywordSet({"q"})), nullptr);
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_EQ(c.entry_count(), 0u);
}

TEST(QueryCache, ExactCapacitySummaryDoesNotWipeCache) {
  // Regression: a summary of exactly `capacity` records used to be
  // admitted, evicting every prior entry for one query's benefit — a whole
  // cache wiped by a single popular query. It must be rejected like the
  // strictly oversized ones, leaving the existing entries alone.
  QueryCache c(4);
  c.insert(KeywordSet({"a"}), summary_of({1}));
  c.insert(KeywordSet({"b"}), summary_of({2}));
  c.insert(KeywordSet({"big"}), summary_of({1, 2, 3, 4}));
  EXPECT_EQ(c.lookup(KeywordSet({"big"})), nullptr);
  EXPECT_NE(c.lookup(KeywordSet({"a"})), nullptr);
  EXPECT_NE(c.lookup(KeywordSet({"b"})), nullptr);
  EXPECT_EQ(c.occupancy(), 2u);
  EXPECT_EQ(c.evictions(), 0u);
}

TEST(QueryCache, CapacityOneCacheStillAdmitsExactFit) {
  // The one useful admission a capacity-1 cache has *is* the exact fit; the
  // whole-capacity rejection must not brick minimum-size caches (which
  // popularity-proportional sizing now produces routinely).
  QueryCache c(1);
  c.insert(KeywordSet({"a"}), summary_of({7}));
  ASSERT_NE(c.lookup(KeywordSet({"a"})), nullptr);
  c.insert(KeywordSet({"b"}), summary_of({9}));  // replaces via eviction
  EXPECT_EQ(c.lookup(KeywordSet({"a"})), nullptr);
  EXPECT_NE(c.lookup(KeywordSet({"b"})), nullptr);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(QueryCache, SetCapacityShrinkEvictsOldestFirst) {
  QueryCache c(6);
  c.insert(KeywordSet({"a"}), summary_of({1, 2}));
  c.insert(KeywordSet({"b"}), summary_of({3, 4}));
  c.insert(KeywordSet({"c"}), summary_of({5, 6}));
  c.set_capacity(3);
  EXPECT_EQ(c.lookup(KeywordSet({"a"})), nullptr);
  EXPECT_EQ(c.lookup(KeywordSet({"b"})), nullptr);
  EXPECT_NE(c.lookup(KeywordSet({"c"})), nullptr);
  EXPECT_EQ(c.occupancy(), 2u);
  EXPECT_EQ(c.evictions(), 2u);
  // Growing back does not resurrect anything but re-opens admission.
  c.set_capacity(6);
  c.insert(KeywordSet({"d"}), summary_of({7, 8}));
  EXPECT_NE(c.lookup(KeywordSet({"d"})), nullptr);
}

TEST(QueryCache, SetCapacityZeroClearsAndDisables) {
  QueryCache c(4);
  c.insert(KeywordSet({"a"}), summary_of({1}));
  c.lookup(KeywordSet({"a"}));
  c.set_capacity(0);
  EXPECT_EQ(c.entry_count(), 0u);
  EXPECT_EQ(c.occupancy(), 0u);
  c.insert(KeywordSet({"b"}), summary_of({2}));
  EXPECT_EQ(c.lookup(KeywordSet({"b"})), nullptr);
  EXPECT_EQ(c.hits(), 1u);  // statistics survive the resize
}

TEST(QueryCache, ReinsertReplacesValueMovesToBack) {
  QueryCache c(10);
  c.insert(KeywordSet({"a"}), summary_of({1}));
  c.insert(KeywordSet({"b"}), summary_of({2}));
  c.insert(KeywordSet({"a"}), summary_of({9, 8}));
  EXPECT_EQ(c.entry_count(), 2u);
  EXPECT_EQ(c.occupancy(), 3u);
  const auto* got = c.lookup(KeywordSet({"a"}));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->contributors[0].first, 9u);
  // The refresh moved "a" to the back (FIFO by last write), so a tight
  // insert evicts "b" — the least recently *written* entry — not "a".
  QueryCache c2(3);
  c2.insert(KeywordSet({"a"}), summary_of({1}));
  c2.insert(KeywordSet({"b"}), summary_of({2}));
  c2.insert(KeywordSet({"a"}), summary_of({1}));  // replace, move to back
  c2.insert(KeywordSet({"c"}), summary_of({3, 4}));
  EXPECT_NE(c2.lookup(KeywordSet({"a"})), nullptr);
  EXPECT_EQ(c2.lookup(KeywordSet({"b"})), nullptr);
}

TEST(QueryCache, StaleEpochEntryIsDroppedOnLookup) {
  QueryCache c(10);
  c.insert(KeywordSet({"q"}), summary_of({1, 2}), /*epoch=*/5);
  EXPECT_NE(c.lookup(KeywordSet({"q"}), 5), nullptr);  // same epoch: fresh
  EXPECT_NE(c.lookup(KeywordSet({"q"}), 5), nullptr);  // hit does not age it
  EXPECT_EQ(c.stale_hits(), 0u);
  // The index mutated since the entry was recorded: treat as a miss + drop.
  EXPECT_EQ(c.lookup(KeywordSet({"q"}), 6), nullptr);
  EXPECT_EQ(c.stale_hits(), 1u);
  EXPECT_EQ(c.entry_count(), 0u);
  EXPECT_EQ(c.occupancy(), 0u);
}

TEST(QueryCache, LegacyStalenessDebugFlagRestoresOldBehavior) {
  QueryCache::set_debug_legacy_staleness(true);
  QueryCache c(3);
  c.insert(KeywordSet({"q"}), summary_of({1, 2}), 1);
  c.insert(KeywordSet({"q"}), summary_of({1, 2, 3}), 2);  // oversized refresh
  // Pre-fix behavior: the stale 2-record entry survives and epoch checks
  // are skipped, so the stale value is served.
  EXPECT_NE(c.lookup(KeywordSet({"q"}), 2), nullptr);
  QueryCache::set_debug_legacy_staleness(false);
  EXPECT_EQ(c.lookup(KeywordSet({"q"}), 2), nullptr);  // fix re-engaged
}

TEST(QueryCache, EraseIfPredicate) {
  QueryCache c(10);
  c.insert(KeywordSet({"a"}), summary_of({1}));
  c.insert(KeywordSet({"a", "b"}), summary_of({2}));
  c.insert(KeywordSet({"c"}), summary_of({3}));
  c.erase_if([](const KeywordSet& q) { return q.contains("a"); });
  EXPECT_EQ(c.entry_count(), 1u);
  EXPECT_EQ(c.lookup(KeywordSet({"a"})), nullptr);
  EXPECT_NE(c.lookup(KeywordSet({"c"})), nullptr);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(QueryCache, ClearResetsContentButNotStats) {
  QueryCache c(10);
  c.insert(KeywordSet({"a"}), summary_of({1}));
  c.lookup(KeywordSet({"a"}));
  c.clear();
  EXPECT_EQ(c.entry_count(), 0u);
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_EQ(c.hits(), 1u);  // statistics survive
  EXPECT_EQ(c.lookup(KeywordSet({"a"})), nullptr);
}

TEST(QueryCache, EraseMissingKeyIsNoop) {
  QueryCache c(5);
  c.insert(KeywordSet({"a"}), summary_of({1}));
  c.erase(KeywordSet({"zzz"}));
  EXPECT_EQ(c.entry_count(), 1u);
}

// Randomized differential test: drive QueryCache with arbitrary operation
// sequences and check every observable against a simple reference model.
class QueryCacheFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryCacheFuzz, MatchesReferenceModel) {
  constexpr std::size_t kCapacity = 12;
  QueryCache cache(kCapacity);

  // Reference: an ordered list of (key, record-count) honoring FIFO.
  std::vector<std::pair<KeywordSet, std::size_t>> model;
  auto model_occupancy = [&] {
    std::size_t total = 0;
    for (const auto& [k, n] : model) total += n;
    return total;
  };
  auto model_find = [&](const KeywordSet& k) {
    for (auto it = model.begin(); it != model.end(); ++it)
      if (it->first == k) return it;
    return model.end();
  };

  Rng rng(GetParam());
  for (int step = 0; step < 2000; ++step) {
    const KeywordSet key({"k" + std::to_string(rng.next_below(8))});
    switch (rng.next_below(3)) {
      case 0: {  // insert with 1..13 records (straddles the capacity edge)
        const auto records = 1 + rng.next_below(13);
        CachedTraversal t;
        for (std::uint64_t i = 0; i < records; ++i)
          t.contributors.emplace_back(i, 1u);
        t.complete = true;
        cache.insert(key, t);
        if (records < kCapacity) {
          // Replace or insert; either way the entry moves to the back
          // (eviction is strictly FIFO by last write).
          if (auto it = model_find(key); it != model.end()) model.erase(it);
          model.emplace_back(key, records);
          while (model_occupancy() > kCapacity) model.erase(model.begin());
        } else {
          // At-or-over-capacity refresh: rejected, and the old entry must
          // be gone too.
          if (auto it = model_find(key); it != model.end()) model.erase(it);
        }
        break;
      }
      case 1: {  // lookup
        const auto* got = cache.lookup(key);
        const auto it = model_find(key);
        EXPECT_EQ(got != nullptr, it != model.end()) << "step " << step;
        if (got != nullptr && it != model.end())
          EXPECT_EQ(got->records(), it->second) << "step " << step;
        break;
      }
      case 2: {  // erase
        cache.erase(key);
        if (auto it = model_find(key); it != model.end()) model.erase(it);
        break;
      }
    }
    ASSERT_EQ(cache.occupancy(), model_occupancy()) << "step " << step;
    ASSERT_EQ(cache.entry_count(), model.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryCacheFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hkws::index
