#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hkws {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // The all-zero state is forbidden for xoshiro; SplitMix64 seeding avoids
  // it, so the stream must not be stuck at zero.
  bool nonzero = false;
  for (int i = 0; i < 10; ++i) nonzero |= (r.next_u64() != 0);
  EXPECT_TRUE(nonzero);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(6);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextInIsInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(8);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanIsNearHalf) {
  Rng r(9);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng a(10);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  const auto orig = v;
  Rng r(11);
  std::shuffle(v.begin(), v.end(), r);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);  // permutation
}

class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, NextBelowIsRoughlyUniform) {
  const std::uint64_t buckets = GetParam();
  Rng r(1234 + buckets);
  std::vector<int> counts(buckets, 0);
  const int per_bucket = 2000;
  const int total = static_cast<int>(buckets) * per_bucket;
  for (int i = 0; i < total; ++i) ++counts[r.next_below(buckets)];
  for (std::uint64_t b = 0; b < buckets; ++b) {
    EXPECT_GT(counts[b], per_bucket * 80 / 100) << "bucket " << b;
    EXPECT_LT(counts[b], per_bucket * 120 / 100) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformity,
                         ::testing::Values(2, 3, 7, 10, 16, 33));

}  // namespace
}  // namespace hkws
