#include "index/service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>

#include "dht/chord_network.hpp"
#include "dht/pastry_network.hpp"

namespace hkws::index {
namespace {

struct ServiceNet {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<KeywordSearchService> service;

  explicit ServiceNet(KeywordSearchService::Options opts = {}) {
    net = std::make_unique<sim::Network>(clock);
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, 24, {}));
    service = std::make_unique<KeywordSearchService>(*dht, opts);
  }

  KeywordSearchService::Answer search(
      const KeywordSet& q, KeywordSearchService::SearchOptions opts = {}) {
    std::optional<KeywordSearchService::Answer> answer;
    service->search(1, q, opts,
                    [&](const KeywordSearchService::Answer& a) { answer = a; });
    clock.run();
    EXPECT_TRUE(answer.has_value());
    return answer.value_or(KeywordSearchService::Answer{});
  }
};

void publish_catalogue(ServiceNet& t) {
  t.service->publish(2, 1, KeywordSet({"music", "mp3"}));
  t.service->publish(3, 2, KeywordSet({"music", "mp3", "live"}));
  t.service->publish(4, 3, KeywordSet({"music", "flac"}));
  t.service->publish(5, 4, KeywordSet({"video", "live"}));
  t.clock.run();
}

TEST(Service, PublishSearchRoundTrip) {
  ServiceNet t({.r = 6});
  publish_catalogue(t);
  const auto answer = t.search(KeywordSet({"music"}));
  std::set<ObjectId> ids;
  for (const auto& h : answer.hits) ids.insert(h.object);
  EXPECT_EQ(ids, (std::set<ObjectId>{1, 2, 3}));
  EXPECT_TRUE(answer.stats.complete);
}

TEST(Service, RankingOrderApplied) {
  ServiceNet t({.r = 6});
  publish_catalogue(t);
  KeywordSearchService::SearchOptions opts;
  opts.order = RankingPreference::kSpecificFirst;
  const auto specific = t.search(KeywordSet({"music"}), opts);
  ASSERT_EQ(specific.hits.size(), 3u);
  EXPECT_EQ(specific.hits.front().keywords.size(), 3u);  // live,mp3,music
  opts.order = RankingPreference::kGeneralFirst;
  const auto general = t.search(KeywordSet({"music"}), opts);
  EXPECT_EQ(general.hits.front().keywords.size(), 2u);
}

TEST(Service, RefinementsAndExpansionAttached) {
  ServiceNet t({.r = 6});
  publish_catalogue(t);
  KeywordSearchService::SearchOptions opts;
  opts.refinement_categories = 5;
  opts.suggest_expansion = true;
  const auto answer = t.search(KeywordSet({"music"}), opts);
  EXPECT_FALSE(answer.refinements.empty());
  ASSERT_TRUE(answer.expansion.has_value());
  EXPECT_TRUE(KeywordSet({"music"}).subset_of(*answer.expansion));
  EXPECT_GT(answer.expansion->size(), 1u);
}

TEST(Service, PinIsExact) {
  ServiceNet t({.r = 6});
  publish_catalogue(t);
  std::optional<KeywordSearchService::Answer> answer;
  t.service->pin(1, KeywordSet({"music", "mp3"}),
                 [&](const KeywordSearchService::Answer& a) { answer = a; });
  t.clock.run();
  ASSERT_TRUE(answer.has_value());
  ASSERT_EQ(answer->hits.size(), 1u);
  EXPECT_EQ(answer->hits[0].object, 1u);
}

TEST(Service, BrowsePagesAreDisjoint) {
  ServiceNet t({.r = 6});
  for (ObjectId o = 1; o <= 17; ++o)
    t.service->publish(2, o, KeywordSet({"page", "v" + std::to_string(o)}));
  t.clock.run();
  const auto session = t.service->open_browse(1, KeywordSet({"page"}));
  std::set<ObjectId> seen;
  while (!t.service->browse_done(session)) {
    std::optional<KeywordSearchService::Answer> page;
    t.service->browse_next(session, 5,
                           [&](const KeywordSearchService::Answer& a) {
                             page = a;
                           });
    t.clock.run();
    ASSERT_TRUE(page.has_value());
    EXPECT_LE(page->hits.size(), 5u);
    for (const auto& h : page->hits)
      EXPECT_TRUE(seen.insert(h.object).second);
    if (page->hits.empty()) break;
  }
  EXPECT_EQ(seen.size(), 17u);
  t.service->close_browse(session);
  EXPECT_TRUE(t.service->browse_done(session));
}

TEST(Service, ResolveFindsReplicaHolders) {
  ServiceNet t({.r = 6, .replication_factor = 3});
  publish_catalogue(t);
  std::optional<dht::Dolr::ReadResult> read;
  t.service->resolve(7, 2, [&](const dht::Dolr::ReadResult& r) { read = r; });
  t.clock.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->holders, std::vector<sim::EndpointId>{3});
}

TEST(Service, WithdrawRemovesFromSearch) {
  ServiceNet t({.r = 6});
  publish_catalogue(t);
  t.service->withdraw(3, 2, KeywordSet({"music", "mp3", "live"}));
  t.clock.run();
  const auto answer = t.search(KeywordSet({"music"}));
  EXPECT_EQ(answer.hits.size(), 2u);
}

TEST(Service, MirroredModeSurvivesFailuresWithRepair) {
  ServiceNet t({.r = 6, .replication_factor = 3, .mirror_index = true});
  publish_catalogue(t);
  t.dht->fail(5);
  t.dht->fail(9);
  for (int round = 0; round < 30; ++round) t.dht->stabilize_all();
  t.service->repair();
  t.clock.run();
  const auto answer = t.search(KeywordSet({"music"}));
  EXPECT_EQ(answer.hits.size(), 3u);
}

TEST(Service, BrowseWorksInMirroredMode) {
  ServiceNet t({.r = 6, .mirror_index = true});
  for (ObjectId o = 1; o <= 12; ++o)
    t.service->publish(2, o, KeywordSet({"page", "v" + std::to_string(o)}));
  t.clock.run();
  const auto session = t.service->open_browse(1, KeywordSet({"page"}));
  std::set<ObjectId> seen;
  while (!t.service->browse_done(session)) {
    std::optional<KeywordSearchService::Answer> page;
    t.service->browse_next(session, 4,
                           [&](const KeywordSearchService::Answer& a) {
                             page = a;
                           });
    t.clock.run();
    ASSERT_TRUE(page.has_value());
    for (const auto& h : page->hits) seen.insert(h.object);
    if (page->hits.empty()) break;
  }
  EXPECT_EQ(seen.size(), 12u);
}

TEST(Service, PinMissIsEmptyNotError) {
  ServiceNet t({.r = 6});
  publish_catalogue(t);
  std::optional<KeywordSearchService::Answer> answer;
  t.service->pin(1, KeywordSet({"does", "not", "exist"}),
                 [&](const KeywordSearchService::Answer& a) { answer = a; });
  t.clock.run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_TRUE(answer->hits.empty());
  EXPECT_TRUE(answer->stats.complete);
}

TEST(Service, WorksOverPastryToo) {
  sim::EventQueue clock;
  sim::Network net(clock);
  auto pastry = dht::PastryNetwork::build(net, 24, {});
  KeywordSearchService service(pastry, {.r = 6});
  service.publish(2, 1, KeywordSet({"a", "b"}));
  clock.run();
  std::optional<KeywordSearchService::Answer> answer;
  service.search(1, KeywordSet({"a"}), {},
                 [&](const KeywordSearchService::Answer& a) { answer = a; });
  clock.run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->hits.size(), 1u);
}

}  // namespace
}  // namespace hkws::index
