// Split-overlay equivalence: ONE overlay's peers divided across transport
// instances must serve byte-for-byte the hit sequences of the all-in-process
// LogicalIndex, with the paper's cost accounting intact (PeerSlice's
// messages count is LogicalIndex's + 1, the final reply — OverlayIndex's
// done-notification convention). The TCP tests pin exact equality over a
// reliable wire; the UDP test pins result equality *through* seeded packet
// loss, with every loss conserved and attributed at the transport.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "index/logical_index.hpp"
#include "index/peer_slice.hpp"
#include "net/tcp_transport.hpp"
#include "net/udp_transport.hpp"

namespace hkws::index {
namespace {

using namespace std::chrono_literals;
using net::TcpTransport;
using net::UdpTransport;

constexpr auto kWait = 20s;  // generous; loopback settles in milliseconds

std::uint64_t counter(const net::SocketTransport& t, const std::string& key) {
  return t.metrics().counter(key);
}

TcpTransport::Config fast_tcp() {
  TcpTransport::Config cfg;
  cfg.tick = std::chrono::microseconds{100};
  return cfg;
}

/// One-shot result mailbox: the search callback fires on the transport's
/// dispatch strand, the test thread blocks here.
class ResultBox {
 public:
  void put(SearchResult r) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      result_ = std::move(r);
    }
    cv_.notify_all();
  }
  std::optional<SearchResult> take(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return result_.has_value(); }))
      return std::nullopt;
    return std::move(result_);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::optional<SearchResult> result_;
};

/// Counts publish/withdraw acks up to an expected total.
class AckLatch {
 public:
  void hit() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++count_;
    }
    cv_.notify_all();
  }
  bool wait(std::size_t target, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return count_ >= target; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_ = 0;
};

/// A deterministic corpus: keyword sets drawn from a small vocabulary so
/// superset queries have real multi-node traversals.
std::vector<std::pair<ObjectId, KeywordSet>> make_corpus(int r,
                                                         std::size_t objects,
                                                         std::uint64_t seed) {
  const std::vector<Keyword> vocab = {
      "peer",    "network", "keyword", "search", "dht",   "overlay",
      "chord",   "cube",    "index",   "query",  "table", "route"};
  Rng rng(seed);
  (void)r;
  std::vector<std::pair<ObjectId, KeywordSet>> corpus;
  corpus.reserve(objects);
  for (std::size_t i = 0; i < objects; ++i) {
    const std::size_t n = 2 + rng.next_below(4);  // 2..5 words
    std::vector<Keyword> words;
    for (std::size_t j = 0; j < n; ++j)
      words.push_back(vocab[rng.next_below(vocab.size())]);
    corpus.emplace_back(static_cast<ObjectId>(1000 + i), KeywordSet(words));
  }
  return corpus;
}

/// Queries: subsets of corpus keyword sets (guaranteed non-empty result
/// space) plus a miss that matches nothing.
std::vector<KeywordSet> make_queries(
    const std::vector<std::pair<ObjectId, KeywordSet>>& corpus) {
  std::vector<KeywordSet> queries;
  for (std::size_t i = 0; i < corpus.size(); i += 7) {
    const auto& words = corpus[i].second.words();
    queries.emplace_back(std::vector<Keyword>{words.front()});
    if (words.size() >= 2)
      queries.emplace_back(std::vector<Keyword>{words[0], words[1]});
  }
  queries.emplace_back(std::vector<Keyword>{"nonesuch"});
  return queries;
}

/// Tells each transport where the other rank's peer endpoints live.
void cross_wire(PeerSlice& a, net::Transport& ta, std::uint16_t port_a,
                net::Transport& tb, std::uint16_t port_b) {
  for (net::EndpointId ep = 1; ep <= a.config().n_peers; ++ep) {
    if (a.rank_of(ep) == 0)
      tb.set_peer_address(ep, net::PeerAddr{"127.0.0.1", port_a});
    else
      ta.set_peer_address(ep, net::PeerAddr{"127.0.0.1", port_b});
  }
}

SearchResult run_search(PeerSlice& slice, const KeywordSet& query,
                        std::size_t threshold) {
  ResultBox box;
  slice.superset_search(query, threshold,
                        [&box](SearchResult r) { box.put(std::move(r)); });
  auto got = box.take(kWait);
  EXPECT_TRUE(got.has_value()) << "search timed out";
  return got.has_value() ? std::move(*got) : SearchResult{};
}

SearchResult run_pin(PeerSlice& slice, const KeywordSet& keywords) {
  ResultBox box;
  slice.pin_search(keywords,
                   [&box](SearchResult r) { box.put(std::move(r)); });
  auto got = box.take(kWait);
  EXPECT_TRUE(got.has_value()) << "pin search timed out";
  return got.has_value() ? std::move(*got) : SearchResult{};
}

void expect_matches_logical(const SearchResult& got,
                            const SearchResult& expected) {
  EXPECT_EQ(got.hits, expected.hits);  // byte-for-byte hit sequence
  EXPECT_EQ(got.stats.nodes_contacted, expected.stats.nodes_contacted);
  EXPECT_EQ(got.stats.rounds, expected.stats.rounds);
  // One extra message: the coordinator's final reply to the searcher.
  EXPECT_EQ(got.stats.messages, expected.stats.messages + 1);
  EXPECT_EQ(got.stats.complete, expected.stats.complete);
  EXPECT_FALSE(got.stats.failed);
}

// The ownership map is pure config: two ranks must derive identical
// node-to-peer assignments or the overlay silently shears apart.
TEST(PeerSlice, OwnershipMapAgreesAcrossRanks) {
  TcpTransport ta(fast_tcp()), tb(fast_tcp());
  PeerSlice::Config cfg;
  cfg.r = 6;
  cfg.n_peers = 6;
  cfg.procs = 2;
  cfg.rank = 0;
  PeerSlice a(ta, cfg);
  cfg.rank = 1;
  PeerSlice b(tb, cfg);
  for (cube::CubeId u = 0; u < a.cube().node_count(); ++u) {
    EXPECT_EQ(a.peer_of(u), b.peer_of(u)) << "node " << u;
    EXPECT_GE(a.peer_of(u), 1u);
    EXPECT_LE(a.peer_of(u), cfg.n_peers);
  }
  ta.drain_and_stop(kWait);
  tb.drain_and_stop(kWait);
}

// One process owning every peer: the protocol loops every step through the
// local wire codec and must still reproduce LogicalIndex exactly.
TEST(PeerSlice, SingleProcessSliceMatchesLogicalIndex) {
  const auto corpus = make_corpus(6, 48, 0xc0ffee);
  LogicalIndex logical(LogicalIndex::Config{6, seeds::kKeywordHash, 0});
  for (const auto& [o, k] : corpus) logical.insert(o, k);

  TcpTransport t(fast_tcp());
  PeerSlice::Config cfg;
  cfg.r = 6;
  cfg.n_peers = 4;
  cfg.procs = 1;
  cfg.rank = 0;
  PeerSlice slice(t, cfg);

  AckLatch acks;
  for (const auto& [o, k] : corpus) slice.publish(o, k, [&acks] { acks.hit(); });
  ASSERT_TRUE(acks.wait(corpus.size(), kWait));
  EXPECT_EQ(slice.local_object_count(), logical.object_count());

  for (const KeywordSet& q : make_queries(corpus)) {
    for (std::size_t threshold : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{7}}) {
      SCOPED_TRACE(q.words().front() + " t=" + std::to_string(threshold));
      expect_matches_logical(run_search(slice, q, threshold),
                             logical.superset_search(q, threshold));
    }
  }
  EXPECT_TRUE(t.drain_and_stop(kWait));
  EXPECT_EQ(t.decode_errors(), 0u);
}

// The tentpole property: peers of one overlay split across two transport
// instances (two listen sockets, two strands — process boundaries as far as
// the protocol can tell), every cross-slice step a serialized frame over
// TCP, and the hit sequences still match LogicalIndex byte-for-byte from
// searchers in BOTH slices.
TEST(PeerSlice, SplitOverlayMatchesLogicalIndexByteForByte) {
  const auto corpus = make_corpus(6, 60, 0x5eed);
  LogicalIndex logical(LogicalIndex::Config{6, seeds::kKeywordHash, 0});
  for (const auto& [o, k] : corpus) logical.insert(o, k);

  TcpTransport ta(fast_tcp()), tb(fast_tcp());
  PeerSlice::Config cfg;
  cfg.r = 6;
  cfg.n_peers = 6;
  cfg.procs = 2;
  cfg.rank = 0;
  PeerSlice a(ta, cfg);
  cfg.rank = 1;
  PeerSlice b(tb, cfg);
  cross_wire(a, ta, ta.port(), tb, tb.port());

  AckLatch acks;
  for (const auto& [o, k] : corpus) a.publish(o, k, [&acks] { acks.hit(); });
  ASSERT_TRUE(acks.wait(corpus.size(), kWait));
  // Every object landed in exactly one slice of the overlay.
  EXPECT_EQ(a.local_object_count() + b.local_object_count(),
            logical.object_count());
  EXPECT_GT(a.local_object_count(), 0u);
  EXPECT_GT(b.local_object_count(), 0u);

  const auto queries = make_queries(corpus);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const KeywordSet& q = queries[qi];
    for (std::size_t threshold : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{7}}) {
      SCOPED_TRACE(q.words().front() + " t=" + std::to_string(threshold));
      // Alternate the searching slice: replies and acks must route to
      // whichever process initiated.
      PeerSlice& searcher = (qi % 2 == 0) ? a : b;
      expect_matches_logical(run_search(searcher, q, threshold),
                             logical.superset_search(q, threshold));
    }
  }

  // Pin searches: exact-match lookups against both slices.
  for (std::size_t i = 0; i < corpus.size(); i += 13) {
    PeerSlice& searcher = (i % 2 == 0) ? b : a;
    const SearchResult expected = logical.pin_search(corpus[i].second);
    const SearchResult got = run_pin(searcher, corpus[i].second);
    EXPECT_EQ(got.hits, expected.hits);
    EXPECT_EQ(got.stats.messages, expected.stats.messages);
    EXPECT_TRUE(got.stats.complete);
  }

  // Withdraw a stripe of the corpus from slice B's side and re-check: the
  // split index must track the logical one through mutation.
  AckLatch removed;
  std::size_t withdrawn = 0;
  for (std::size_t i = 0; i < corpus.size(); i += 5) {
    logical.remove(corpus[i].first, corpus[i].second);
    b.withdraw(corpus[i].first, corpus[i].second, [&removed] { removed.hit(); });
    ++withdrawn;
  }
  ASSERT_TRUE(removed.wait(withdrawn, kWait));
  EXPECT_EQ(a.local_object_count() + b.local_object_count(),
            logical.object_count());
  for (std::size_t qi = 0; qi < queries.size(); qi += 3) {
    SCOPED_TRACE("post-withdraw " + queries[qi].words().front());
    expect_matches_logical(run_search(a, queries[qi], 0),
                           logical.superset_search(queries[qi], 0));
  }

  EXPECT_TRUE(ta.drain_and_stop(kWait));
  EXPECT_TRUE(tb.drain_and_stop(kWait));
  // Conservation per process over traffic it originated.
  for (const TcpTransport* t : {&ta, &tb}) {
    EXPECT_EQ(counter(*t, "net.messages"),
              counter(*t, "net.delivered") + counter(*t, "net.lost"));
    EXPECT_EQ(t->decode_errors(), 0u);
    EXPECT_GT(counter(*t, "net.remote.out"), 0u);
    EXPECT_GT(counter(*t, "net.remote.in"), 0u);
  }
}

// The loss smoke the UDP backend exists for: seeded Bernoulli drops on both
// slices, every guarded protocol step retransmitting, and the split overlay
// still returns LogicalIndex's exact results — while the transports'
// conservation identities close with every loss attributed to the drop
// model (net.dropped.fault) or the sweep (net.dropped.conn).
TEST(PeerSlice, SplitOverlaySurvivesSeededUdpLossWithRetransmission) {
  const auto corpus = make_corpus(5, 36, 0x10dad);
  LogicalIndex logical(LogicalIndex::Config{5, seeds::kKeywordHash, 0});
  for (const auto& [o, k] : corpus) logical.insert(o, k);

  UdpTransport::Config ucfg;
  ucfg.tick = std::chrono::microseconds{100};
  ucfg.seed = 7;
  UdpTransport ta(ucfg);
  ucfg.seed = 8;
  UdpTransport tb(ucfg);

  PeerSlice::Config cfg;
  cfg.r = 5;
  cfg.n_peers = 5;
  cfg.procs = 2;
  cfg.step_timeout = 300;  // 30ms at the 100us tick
  cfg.max_retries = 10;
  cfg.rank = 0;
  PeerSlice a(ta, cfg);
  cfg.rank = 1;
  PeerSlice b(tb, cfg);
  cross_wire(a, ta, ta.port(), tb, tb.port());

  // Publish losslessly — on a datagram wire the index must settle before
  // queries fly (the ack barrier is the settle point).
  AckLatch acks;
  for (const auto& [o, k] : corpus) a.publish(o, k, [&acks] { acks.hit(); });
  ASSERT_TRUE(acks.wait(corpus.size(), kWait));
  EXPECT_EQ(a.local_object_count() + b.local_object_count(),
            logical.object_count());

  // Arm the drop model on both slices and search through the loss.
  ta.set_drop_rate(0.2);
  tb.set_drop_rate(0.2);
  std::size_t total_retransmits = 0;
  const auto queries = make_queries(corpus);
  for (std::size_t qi = 0; qi < queries.size(); qi += 4) {
    const KeywordSet& q = queries[qi];
    for (std::size_t threshold : {std::size_t{0}, std::size_t{4}}) {
      SCOPED_TRACE(q.words().front() + " t=" + std::to_string(threshold));
      const SearchResult expected = logical.superset_search(q, threshold);
      const SearchResult got = run_search(qi % 2 == 0 ? a : b, q, threshold);
      EXPECT_EQ(got.hits, expected.hits);
      EXPECT_EQ(got.stats.nodes_contacted, expected.stats.nodes_contacted);
      EXPECT_EQ(got.stats.complete, expected.stats.complete);
      EXPECT_FALSE(got.stats.failed);
      total_retransmits += got.stats.retransmits;
    }
  }
  // At 20% loss over hundreds of protocol messages, a loss-free run is
  // statistically impossible — retransmission must have fired.
  EXPECT_GT(total_retransmits, 0u);

  ta.set_drop_rate(0.0);
  tb.set_drop_rate(0.0);
  ta.drain_and_stop(kWait);
  tb.drain_and_stop(kWait);
  for (const UdpTransport* t : {&ta, &tb}) {
    EXPECT_EQ(counter(*t, "net.messages"),
              counter(*t, "net.delivered") + counter(*t, "net.lost"));
    EXPECT_EQ(counter(*t, "net.lost"), counter(*t, "net.dropped.fault") +
                                           counter(*t, "net.dropped.conn"));
    EXPECT_EQ(t->decode_errors(), 0u);
  }
}

}  // namespace
}  // namespace hkws::index
