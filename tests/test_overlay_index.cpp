#include "index/overlay_index.hpp"

#include "dht/chord_network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/rng.hpp"
#include "index/logical_index.hpp"

namespace hkws::index {
namespace {

std::set<ObjectId> ids_of(const std::vector<Hit>& hits) {
  std::set<ObjectId> out;
  for (const Hit& h : hits) out.insert(h.object);
  return out;
}

struct OverlayNet {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<dht::ChordNetwork> dht;
  std::unique_ptr<dht::Dolr> dolr;
  std::unique_ptr<OverlayIndex> index;
  std::size_t peers;

  explicit OverlayNet(std::size_t n, OverlayIndex::Config cfg = {.r = 6})
      : peers(n) {
    net = std::make_unique<sim::Network>(clock);
    dht = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*net, n, {}));
    dolr = std::make_unique<dht::Dolr>(*dht);
    index = std::make_unique<OverlayIndex>(*dolr, cfg);
  }

  sim::EndpointId peer(std::size_t i) const {
    return static_cast<sim::EndpointId>(1 + i % peers);
  }

  void publish_all(const std::map<ObjectId, KeywordSet>& objects) {
    std::size_t i = 0;
    for (const auto& [id, k] : objects) index->publish(peer(i++), id, k);
    clock.run();
  }

  SearchResult superset(const KeywordSet& query, std::size_t threshold = 0,
                        SearchStrategy strategy =
                            SearchStrategy::kTopDownSequential) {
    std::optional<SearchResult> result;
    index->superset_search(peer(0), query, threshold, strategy,
                           [&](const SearchResult& r) { result = r; });
    clock.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(SearchResult{});
  }
};

std::map<ObjectId, KeywordSet> random_objects(std::size_t n, std::size_t vocab,
                                              std::uint64_t seed) {
  std::map<ObjectId, KeywordSet> out;
  Rng rng(seed);
  for (ObjectId id = 1; id <= n; ++id) {
    std::vector<Keyword> words;
    const int size = 1 + static_cast<int>(rng.next_below(5));
    for (int i = 0; i < size; ++i)
      words.push_back("w" + std::to_string(rng.next_below(vocab)));
    out[id] = KeywordSet(std::move(words));
  }
  return out;
}

TEST(OverlayIndex, PublishFirstCopyCreatesIndexEntry) {
  OverlayNet t(16);
  const KeywordSet k({"isp", "network"});
  std::optional<OverlayIndex::PublishResult> result;
  t.index->publish(1, 42, k, [&](const auto& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->indexed);
  const auto u = t.index->responsible_node(k);
  const IndexTable* table = t.index->table_of(u);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->exact(k), std::vector<ObjectId>{42});
}

TEST(OverlayIndex, SecondCopyDoesNotReindex) {
  OverlayNet t(16);
  const KeywordSet k({"news"});
  t.index->publish(1, 42, k);
  t.clock.run();
  std::optional<OverlayIndex::PublishResult> result;
  t.index->publish(2, 42, k, [&](const auto& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->indexed);
  const IndexTable* table = t.index->table_of(t.index->responsible_node(k));
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->object_count(), 1u);
}

TEST(OverlayIndex, WithdrawLastCopyRemovesEntry) {
  OverlayNet t(16);
  const KeywordSet k({"tv", "news"});
  t.index->publish(1, 7, k);
  t.index->publish(2, 7, k);
  t.clock.run();
  std::optional<OverlayIndex::WithdrawResult> w1, w2;
  t.index->withdraw(1, 7, k, [&](const auto& r) { w1 = r; });
  t.clock.run();
  EXPECT_FALSE(w1->index_removed);
  t.index->withdraw(2, 7, k, [&](const auto& r) { w2 = r; });
  t.clock.run();
  EXPECT_TRUE(w2->index_removed);
  const IndexTable* table = t.index->table_of(t.index->responsible_node(k));
  EXPECT_TRUE(table == nullptr || table->exact(k).empty());
}

TEST(OverlayIndex, PublishRejectsEmptyKeywords) {
  OverlayNet t(4);
  EXPECT_THROW(t.index->publish(1, 1, KeywordSet{}), std::invalid_argument);
}

TEST(OverlayIndex, PinSearchFindsExactSet) {
  OverlayNet t(16);
  t.index->publish(1, 1, KeywordSet({"a", "b"}));
  t.index->publish(2, 2, KeywordSet({"a", "b", "c"}));
  t.clock.run();
  std::optional<SearchResult> result;
  t.index->pin_search(3, KeywordSet({"a", "b"}),
                      [&](const SearchResult& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ids_of(result->hits), (std::set<ObjectId>{1}));
  EXPECT_EQ(result->stats.nodes_contacted, 1u);
  EXPECT_TRUE(result->stats.complete);
}

TEST(OverlayIndex, SupersetAgreesWithLogicalIndex) {
  const OverlayIndex::Config cfg{.r = 6};
  OverlayNet t(24, cfg);
  LogicalIndex logical({.r = cfg.r, .hash_seed = cfg.hash_seed});
  const auto objects = random_objects(150, 25, 21);
  t.publish_all(objects);
  for (const auto& [id, k] : objects) logical.insert(id, k);

  Rng rng(22);
  for (int trial = 0; trial < 25; ++trial) {
    auto it = objects.begin();
    std::advance(it, rng.next_below(objects.size()));
    const KeywordSet query({it->second.words().front()});
    const auto overlay_result = t.superset(query);
    const auto logical_result = logical.superset_search(query);
    EXPECT_EQ(ids_of(overlay_result.hits), ids_of(logical_result.hits))
        << query.to_string();
    EXPECT_EQ(overlay_result.stats.nodes_contacted,
              logical_result.stats.nodes_contacted);
    EXPECT_TRUE(overlay_result.stats.complete);
  }
}

TEST(OverlayIndex, AllStrategiesAgreeOnHitSets) {
  OverlayNet t(16, {.r = 6});
  const auto objects = random_objects(100, 15, 23);
  t.publish_all(objects);
  const KeywordSet query({objects.begin()->second.words().front()});
  const auto td = t.superset(query, 0, SearchStrategy::kTopDownSequential);
  const auto bu = t.superset(query, 0, SearchStrategy::kBottomUpSequential);
  const auto lp = t.superset(query, 0, SearchStrategy::kLevelParallel);
  EXPECT_EQ(ids_of(td.hits), ids_of(bu.hits));
  EXPECT_EQ(ids_of(td.hits), ids_of(lp.hits));
  EXPECT_FALSE(td.hits.empty());
}

TEST(OverlayIndex, ThresholdLimitsResults) {
  OverlayNet t(16, {.r = 6});
  std::map<ObjectId, KeywordSet> objects;
  for (ObjectId o = 1; o <= 40; ++o)
    objects[o] = KeywordSet({"pop", "e" + std::to_string(o)});
  t.publish_all(objects);
  const auto result = t.superset(KeywordSet({"pop"}), 10);
  EXPECT_EQ(result.hits.size(), 10u);
  EXPECT_FALSE(result.stats.complete);
  const auto all = t.superset(KeywordSet({"pop"}), 0);
  EXPECT_EQ(all.hits.size(), 40u);
}

TEST(OverlayIndex, QueryCacheServesRepeatsWithFewerContacts) {
  OverlayNet t(16, {.r = 8, .cache_capacity = 64});
  std::map<ObjectId, KeywordSet> objects;
  for (ObjectId o = 1; o <= 20; ++o)
    objects[o] = KeywordSet({"hot", "v" + std::to_string(o % 3)});
  t.publish_all(objects);
  const KeywordSet query({"hot"});
  const auto cold = t.superset(query);
  const auto warm = t.superset(query);
  EXPECT_FALSE(cold.stats.cache_hit);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(ids_of(cold.hits), ids_of(warm.hits));
  EXPECT_LT(warm.stats.nodes_contacted, cold.stats.nodes_contacted);
  EXPECT_LT(warm.stats.messages, cold.stats.messages);
}

TEST(OverlayIndex, ContactCachingCutsRoutingCost) {
  OverlayNet t(32, {.r = 6, .cache_capacity = 0, .cache_contacts = true});
  const auto objects = random_objects(60, 10, 24);
  t.publish_all(objects);
  const KeywordSet query({objects.begin()->second.words().front()});
  const auto cold = t.superset(query);
  const auto warm = t.superset(query);
  // Same traversal, but resolved contacts replace multi-hop routing.
  EXPECT_EQ(warm.stats.nodes_contacted, cold.stats.nodes_contacted);
  EXPECT_LE(warm.stats.messages, cold.stats.messages);
}

TEST(OverlayIndex, RepairPlacementAfterMembershipChange) {
  OverlayNet t(12, {.r = 6});
  const auto objects = random_objects(80, 12, 25);
  t.publish_all(objects);
  const KeywordSet query({objects.begin()->second.words().front()});
  const auto before = t.superset(query);

  // Grow the ring: ownership of some cube nodes moves to the newcomers.
  for (sim::EndpointId e = 13; e <= 18; ++e) t.dht->join(e, 1);
  for (int round = 0; round < 30; ++round) t.dht->stabilize_all();
  t.index->repair_placement();

  const auto after = t.superset(query);
  EXPECT_EQ(ids_of(before.hits), ids_of(after.hits));
  EXPECT_TRUE(after.stats.complete);
}

TEST(OverlayIndex, PurgeDeadDropsLostEntries) {
  OverlayNet t(8, {.r = 6});
  const auto objects = random_objects(100, 12, 26);
  t.publish_all(objects);
  auto loads_sum = [&] {
    std::size_t total = 0;
    for (std::size_t l : t.index->loads_by_cube_node()) total += l;
    return total;
  };
  const std::size_t before = loads_sum();
  EXPECT_EQ(before, objects.size());
  // Fail a peer abruptly; its index entries are gone (paper fault model).
  t.dht->fail(3);
  for (int round = 0; round < 20; ++round) t.dht->stabilize_all();
  t.index->purge_dead();
  t.index->repair_placement();
  EXPECT_LT(loads_sum(), before);
}

TEST(OverlayIndex, CorrectUnderMessageReordering) {
  // Random per-message latencies reorder deliveries arbitrarily; the
  // protocol's completion rule (done + all result messages received) must
  // still produce exact, complete answers.
  sim::EventQueue clock;
  sim::Network net(clock, std::make_unique<sim::UniformLatency>(1, 50), 99);
  auto dht = dht::ChordNetwork::build(net, 24, {});
  dht::Dolr dolr(dht);
  OverlayIndex index(dolr, {.r = 6});
  LogicalIndex logical({.r = 6});

  const auto objects = random_objects(120, 20, 28);
  std::size_t i = 0;
  for (const auto& [id, k] : objects) {
    index.publish(1 + (i++ % 24), id, k);
    logical.insert(id, k);
  }
  clock.run();

  Rng rng(29);
  for (int trial = 0; trial < 15; ++trial) {
    auto it = objects.begin();
    std::advance(it, rng.next_below(objects.size()));
    const KeywordSet query({it->second.words().front()});
    std::optional<SearchResult> result;
    index.superset_search(1, query, 0,
                          SearchStrategy::kTopDownSequential,
                          [&](const SearchResult& r) { result = r; });
    clock.run();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(ids_of(result->hits),
              ids_of(logical.superset_search(query).hits))
        << query.to_string();
    EXPECT_TRUE(result->stats.complete);
  }
}

TEST(OverlayIndex, LevelParallelCorrectUnderReordering) {
  sim::EventQueue clock;
  sim::Network net(clock, std::make_unique<sim::UniformLatency>(1, 50), 17);
  auto dht = dht::ChordNetwork::build(net, 16, {});
  dht::Dolr dolr(dht);
  OverlayIndex index(dolr, {.r = 6});
  const auto objects = random_objects(80, 12, 30);
  std::size_t i = 0;
  for (const auto& [id, k] : objects) index.publish(1 + (i++ % 16), id, k);
  clock.run();

  const KeywordSet query({objects.begin()->second.words().front()});
  std::optional<SearchResult> seq, par;
  index.superset_search(1, query, 0, SearchStrategy::kTopDownSequential,
                        [&](const SearchResult& r) { seq = r; });
  clock.run();
  index.superset_search(1, query, 0, SearchStrategy::kLevelParallel,
                        [&](const SearchResult& r) { par = r; });
  clock.run();
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(par.has_value());
  EXPECT_EQ(ids_of(seq->hits), ids_of(par->hits));
}

TEST(OverlayIndex, WithdrawOfUnknownObjectIsHarmless) {
  OverlayNet t(8, {.r = 6});
  std::optional<OverlayIndex::WithdrawResult> result;
  t.index->withdraw(1, 99999, KeywordSet({"ghost"}),
                    [&](const auto& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->index_removed);
}

TEST(OverlayIndex, RepublishWithDifferentKeywordsKeepsFirstEntry) {
  // Keyword sets are immutable per object id in this scheme: a second
  // publish of the same object id is "another copy", so it never creates a
  // second index entry even if the metadata differs. To change metadata,
  // withdraw all copies (deleting the entry) and publish afresh.
  OverlayNet t(16, {.r = 6});
  const KeywordSet original({"music", "mp3"});
  const KeywordSet changed({"video", "avi"});
  t.index->publish(1, 7, original);
  t.clock.run();
  std::optional<OverlayIndex::PublishResult> second;
  t.index->publish(2, 7, changed, [&](const auto& r) { second = r; });
  t.clock.run();
  EXPECT_FALSE(second->indexed);
  EXPECT_FALSE(t.superset(KeywordSet({"music"})).hits.empty());
  EXPECT_TRUE(t.superset(KeywordSet({"video"})).hits.empty());

  // The documented metadata-change flow.
  t.index->withdraw(1, 7, original);
  t.index->withdraw(2, 7, original);
  t.clock.run();
  t.index->publish(2, 7, changed);
  t.clock.run();
  EXPECT_TRUE(t.superset(KeywordSet({"music"})).hits.empty());
  EXPECT_FALSE(t.superset(KeywordSet({"video"})).hits.empty());
}

TEST(OverlayIndexCumulative, BatchesAreDisjointAndExhaustive) {
  OverlayNet t(16, {.r = 6});
  const auto objects = random_objects(150, 18, 31);
  t.publish_all(objects);
  const KeywordSet query({objects.begin()->second.words().front()});

  // Oracle: the one-shot full search.
  const auto full = t.superset(query);
  const auto expected = ids_of(full.hits);
  ASSERT_FALSE(expected.empty());

  const auto session = t.index->open_cumulative(1, query);
  std::set<ObjectId> collected;
  int batches = 0;
  while (!t.index->cumulative_exhausted(session) && batches < 200) {
    std::optional<SearchResult> batch;
    t.index->cumulative_next(session, 4,
                             [&](const SearchResult& r) { batch = r; });
    t.clock.run();
    ASSERT_TRUE(batch.has_value());
    EXPECT_LE(batch->hits.size(), 4u);
    for (const Hit& h : batch->hits)
      EXPECT_TRUE(collected.insert(h.object).second)
          << "duplicate " << h.object;
    ++batches;
    if (batch->hits.empty() && batch->stats.complete) break;
  }
  EXPECT_EQ(collected, expected);
  EXPECT_TRUE(t.index->cumulative_exhausted(session));
  if (expected.size() > 4) EXPECT_GT(batches, 1);
}

TEST(OverlayIndexCumulative, ExhaustedSessionReturnsEmptyComplete) {
  OverlayNet t(8, {.r = 6});
  t.index->publish(1, 1, KeywordSet({"only"}));
  t.clock.run();
  const auto session = t.index->open_cumulative(1, KeywordSet({"only"}));
  std::optional<SearchResult> first, after;
  t.index->cumulative_next(session, 100,
                           [&](const SearchResult& r) { first = r; });
  t.clock.run();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->hits.size(), 1u);
  EXPECT_TRUE(first->stats.complete);
  t.index->cumulative_next(session, 100,
                           [&](const SearchResult& r) { after = r; });
  t.clock.run();
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->hits.empty());
  EXPECT_TRUE(after->stats.complete);
  EXPECT_EQ(after->stats.messages, 0u);  // answered without network traffic
}

TEST(OverlayIndexCumulative, SecondBatchSkipsRouting) {
  OverlayNet t(24, {.r = 6});
  std::map<ObjectId, KeywordSet> objects;
  for (ObjectId o = 1; o <= 30; ++o)
    objects[o] = KeywordSet({"page", "e" + std::to_string(o)});
  t.publish_all(objects);
  const auto session = t.index->open_cumulative(1, KeywordSet({"page"}));
  std::optional<SearchResult> b1, b2;
  t.index->cumulative_next(session, 5, [&](const SearchResult& r) { b1 = r; });
  t.clock.run();
  t.index->cumulative_next(session, 5, [&](const SearchResult& r) { b2 = r; });
  t.clock.run();
  ASSERT_TRUE(b1 && b2);
  EXPECT_EQ(b1->hits.size(), 5u);
  EXPECT_EQ(b2->hits.size(), 5u);
  // No node prefix is re-visited across pages: two cumulative pages of 5
  // touch at most one node more (a partially-consumed one) than a single
  // one-shot search for 10.
  const auto oneshot = t.superset(KeywordSet({"page"}), 10);
  EXPECT_LE(b1->stats.nodes_contacted + b2->stats.nodes_contacted,
            oneshot.stats.nodes_contacted + 2);
}

TEST(OverlayIndexCumulative, SessionLifecycleErrors) {
  OverlayNet t(8, {.r = 6});
  EXPECT_THROW(t.index->open_cumulative(1, KeywordSet{}),
               std::invalid_argument);
  const auto session = t.index->open_cumulative(1, KeywordSet({"x"}));
  EXPECT_THROW(t.index->cumulative_next(session, 0, [](const auto&) {}),
               std::invalid_argument);
  t.index->close_cumulative(session);
  EXPECT_TRUE(t.index->cumulative_exhausted(session));
  EXPECT_THROW(t.index->cumulative_next(session, 5, [](const auto&) {}),
               std::invalid_argument);
}

TEST(OverlayIndex, MessagesAreAccountedByKind) {
  OverlayNet t(16, {.r = 6});
  const auto objects = random_objects(30, 8, 27);
  t.publish_all(objects);
  t.superset(KeywordSet({objects.begin()->second.words().front()}));
  const auto& m = t.net->metrics();
  EXPECT_GT(m.counter("msg.dolr.insert"), 0u);
  EXPECT_GT(m.counter("msg.kws.insert"), 0u);
  EXPECT_GT(m.counter("msg.kws.t_query"), 0u);
  EXPECT_GT(m.counter("msg.kws.t_cont"), 0u);
  EXPECT_GT(m.counter("msg.kws.done"), 0u);
}

}  // namespace
}  // namespace hkws::index
