#include "index/logical_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hkws::index {
namespace {

// A tiny in-memory corpus plus a brute-force oracle.
struct MiniCorpus {
  std::map<ObjectId, KeywordSet> objects;

  std::set<ObjectId> supersets(const KeywordSet& query) const {
    std::set<ObjectId> out;
    for (const auto& [id, k] : objects)
      if (query.subset_of(k)) out.insert(id);
    return out;
  }
  std::set<ObjectId> exact(const KeywordSet& query) const {
    std::set<ObjectId> out;
    for (const auto& [id, k] : objects)
      if (k == query) out.insert(id);
    return out;
  }
};

MiniCorpus random_corpus(std::size_t n, std::size_t vocab, Rng& rng) {
  MiniCorpus c;
  for (ObjectId id = 1; id <= n; ++id) {
    const int size = 1 + static_cast<int>(rng.next_below(6));
    std::vector<Keyword> words;
    for (int i = 0; i < size; ++i)
      words.push_back("w" + std::to_string(rng.next_below(vocab)));
    c.objects[id] = KeywordSet(std::move(words));
  }
  return c;
}

std::set<ObjectId> ids_of(const std::vector<Hit>& hits) {
  std::set<ObjectId> out;
  for (const Hit& h : hits) out.insert(h.object);
  return out;
}

TEST(LogicalIndex, InsertRejectsEmptySet) {
  LogicalIndex idx({.r = 4});
  EXPECT_THROW(idx.insert(1, KeywordSet{}), std::invalid_argument);
}

TEST(LogicalIndex, RejectsUnmaterializableDimensions) {
  EXPECT_THROW(LogicalIndex({.r = 25}), std::invalid_argument);
  EXPECT_THROW(LogicalIndex({.r = 0}), std::invalid_argument);
}

TEST(LogicalIndex, PinSearchFindsExactSetsOnly) {
  LogicalIndex idx({.r = 8});
  idx.insert(1, KeywordSet({"news", "tv"}));
  idx.insert(2, KeywordSet({"news", "tv"}));
  idx.insert(3, KeywordSet({"news", "tv", "hbo"}));
  const auto result = idx.pin_search(KeywordSet({"news", "tv"}));
  EXPECT_EQ(ids_of(result.hits), (std::set<ObjectId>{1, 2}));
  // Pin search costs one query + one reply (paper §3.5).
  EXPECT_EQ(result.stats.nodes_contacted, 1u);
  EXPECT_EQ(result.stats.messages, 2u);
}

TEST(LogicalIndex, PinSearchMissIsEmpty) {
  LogicalIndex idx({.r = 8});
  idx.insert(1, KeywordSet({"a"}));
  EXPECT_TRUE(idx.pin_search(KeywordSet({"b"})).hits.empty());
}

TEST(LogicalIndex, RemoveDeletesIndexEntry) {
  LogicalIndex idx({.r = 8});
  const KeywordSet k({"x", "y"});
  idx.insert(1, k);
  EXPECT_EQ(idx.object_count(), 1u);
  EXPECT_TRUE(idx.remove(1, k));
  EXPECT_FALSE(idx.remove(1, k));
  EXPECT_EQ(idx.object_count(), 0u);
  EXPECT_TRUE(idx.pin_search(k).hits.empty());
}

TEST(LogicalIndex, ObjectIndexedAtExactlyOneNode) {
  LogicalIndex idx({.r = 10});
  Rng rng(1);
  auto corpus = random_corpus(300, 60, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);
  std::size_t total = 0;
  for (std::size_t load : idx.loads()) total += load;
  EXPECT_EQ(total, corpus.objects.size());
}

TEST(LogicalIndex, SupersetSearchMatchesOracle) {
  Rng rng(2);
  LogicalIndex idx({.r = 8});
  auto corpus = random_corpus(400, 40, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);

  int nonempty_queries = 0;
  for (int trial = 0; trial < 120; ++trial) {
    // Query = subset of a random object's keywords (likely non-empty result).
    auto it = corpus.objects.begin();
    std::advance(it, rng.next_below(corpus.objects.size()));
    std::vector<Keyword> q;
    for (const auto& w : it->second)
      if (rng.next_bool(0.6)) q.push_back(w);
    if (q.empty()) q.push_back(it->second.words().front());
    const KeywordSet query(q);

    const auto expected = corpus.supersets(query);
    if (!expected.empty()) ++nonempty_queries;
    const auto result = idx.superset_search(query);
    EXPECT_EQ(ids_of(result.hits), expected) << "query " << query.to_string();
    EXPECT_TRUE(result.stats.complete);
  }
  EXPECT_GT(nonempty_queries, 100);
}

TEST(LogicalIndex, AllStrategiesReturnTheSameHitSet) {
  Rng rng(3);
  LogicalIndex idx({.r = 8});
  auto corpus = random_corpus(300, 30, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);

  for (int trial = 0; trial < 40; ++trial) {
    auto it = corpus.objects.begin();
    std::advance(it, rng.next_below(corpus.objects.size()));
    const KeywordSet query({it->second.words().front()});
    const auto td =
        idx.superset_search(query, 0, SearchStrategy::kTopDownSequential);
    const auto bu =
        idx.superset_search(query, 0, SearchStrategy::kBottomUpSequential);
    const auto lp =
        idx.superset_search(query, 0, SearchStrategy::kLevelParallel);
    EXPECT_EQ(ids_of(td.hits), ids_of(bu.hits));
    EXPECT_EQ(ids_of(td.hits), ids_of(lp.hits));
    EXPECT_EQ(ids_of(td.hits), corpus.supersets(query));
  }
}

TEST(LogicalIndex, ThresholdBoundsResultCount) {
  Rng rng(4);
  LogicalIndex idx({.r = 6});
  for (ObjectId id = 1; id <= 200; ++id)
    idx.insert(id, KeywordSet({"common", "extra" + std::to_string(id % 37)}));
  const auto result = idx.superset_search(KeywordSet({"common"}), 10);
  EXPECT_EQ(result.hits.size(), 10u);
  EXPECT_FALSE(result.stats.complete);
  // min(t, |O_K|): threshold above the population returns everything.
  const auto all = idx.superset_search(KeywordSet({"common"}), 10000);
  EXPECT_EQ(all.hits.size(), 200u);
  EXPECT_TRUE(all.stats.complete);
}

TEST(LogicalIndex, ThresholdStopsEarlyAndContactsFewerNodes) {
  LogicalIndex idx({.r = 10});
  for (ObjectId id = 1; id <= 500; ++id)
    idx.insert(id, KeywordSet({"popular", "x" + std::to_string(id)}));
  const auto all = idx.superset_search(KeywordSet({"popular"}), 0);
  const auto some = idx.superset_search(KeywordSet({"popular"}), 5);
  EXPECT_LT(some.stats.nodes_contacted, all.stats.nodes_contacted);
  EXPECT_LT(some.stats.messages, all.stats.messages);
}

TEST(LogicalIndex, TopDownYieldsDepthMonotoneHits) {
  // BFS order: the SBT depth of each hit's indexing node never decreases
  // (Lemma 3.2 in action).
  Rng rng(5);
  LogicalIndex idx({.r = 8});
  auto corpus = random_corpus(400, 25, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);
  const KeywordSet query({corpus.objects.begin()->second.words().front()});
  const auto root = idx.hasher().responsible_node(query);
  const auto result =
      idx.superset_search(query, 0, SearchStrategy::kTopDownSequential);
  int last_depth = 0;
  for (const Hit& h : result.hits) {
    const auto node = idx.hasher().responsible_node(h.keywords);
    const int depth = cube::Hypercube::hamming(node, root);
    EXPECT_GE(depth, last_depth);
    last_depth = depth;
  }
}

TEST(LogicalIndex, BottomUpYieldsDepthAntitoneHits) {
  Rng rng(6);
  LogicalIndex idx({.r = 8});
  auto corpus = random_corpus(400, 25, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);
  const KeywordSet query({corpus.objects.begin()->second.words().front()});
  const auto root = idx.hasher().responsible_node(query);
  const auto result =
      idx.superset_search(query, 0, SearchStrategy::kBottomUpSequential);
  int last_depth = 1 << 20;
  for (const Hit& h : result.hits) {
    const auto node = idx.hasher().responsible_node(h.keywords);
    const int depth = cube::Hypercube::hamming(node, root);
    EXPECT_LE(depth, last_depth);
    last_depth = depth;
  }
}

TEST(LogicalIndex, HitDepthLowerBoundsExtraKeywords) {
  // Lemma 3.2: a hit indexed d levels deep has >= d extra keywords.
  Rng rng(7);
  LogicalIndex idx({.r = 10});
  auto corpus = random_corpus(500, 30, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);
  const KeywordSet query({corpus.objects.begin()->second.words().front()});
  const auto root = idx.hasher().responsible_node(query);
  for (const Hit& h : idx.superset_search(query).hits) {
    const int depth = cube::Hypercube::hamming(
        idx.hasher().responsible_node(h.keywords), root);
    EXPECT_GE(static_cast<int>(h.keywords.size() - query.size()), depth);
  }
}

TEST(LogicalIndex, SupersetSearchCostBoundedBySubcube) {
  LogicalIndex idx({.r = 10});
  idx.insert(1, KeywordSet({"a", "b", "c"}));
  const KeywordSet query({"a", "b"});
  const auto root = idx.hasher().responsible_node(query);
  const auto result = idx.superset_search(query);
  EXPECT_EQ(result.stats.nodes_contacted, idx.cube().subcube_size(root));
  // Message bound: 2 * 2^(r - |One|) coordination + results (§3.5).
  EXPECT_LE(result.stats.messages, 2 * idx.cube().subcube_size(root) + 2);
}

TEST(LogicalIndex, LevelParallelLatencyIsSubcubeDimension) {
  LogicalIndex idx({.r = 12});
  idx.insert(1, KeywordSet({"a", "b"}));
  const KeywordSet query({"a", "b"});
  const auto root = idx.hasher().responsible_node(query);
  const auto result =
      idx.superset_search(query, 0, SearchStrategy::kLevelParallel);
  EXPECT_EQ(result.stats.levels,
            static_cast<std::size_t>(idx.cube().zero_count(root)) + 1);
}

TEST(LogicalIndex, TraversalProfilePredictsSearchCost) {
  Rng rng(9);
  LogicalIndex idx({.r = 8});
  auto corpus = random_corpus(400, 25, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);
  for (int trial = 0; trial < 30; ++trial) {
    auto it = corpus.objects.begin();
    std::advance(it, rng.next_below(corpus.objects.size()));
    const KeywordSet query({it->second.words().front()});
    const auto profile = idx.traversal_profile(query);
    const auto full = idx.superset_search(query);
    EXPECT_EQ(profile.total_hits, full.hits.size());
    EXPECT_EQ(profile.total_nodes,
              idx.cube().subcube_size(profile.root));
    EXPECT_EQ(full.stats.nodes_contacted, profile.total_nodes);
    for (std::uint64_t t : {1ULL, 3ULL, 7ULL}) {
      if (t > profile.total_hits) break;
      const auto bounded = idx.superset_search(query, t);
      EXPECT_EQ(bounded.stats.nodes_contacted, profile.nodes_to_collect(t))
          << query.to_string() << " t=" << t;
    }
  }
}

TEST(LogicalIndex, TraversalProfileDegenerateTargets) {
  LogicalIndex idx({.r = 6});
  idx.insert(1, KeywordSet({"only"}));
  const auto profile = idx.traversal_profile(KeywordSet({"only"}));
  EXPECT_EQ(profile.nodes_to_collect(0), profile.total_nodes);
  EXPECT_EQ(profile.nodes_to_collect(1), 1u);  // the root holds the match
  EXPECT_EQ(profile.nodes_to_collect(99), profile.total_nodes);
}

// --- Cache behaviour -------------------------------------------------------

TEST(LogicalIndexCache, RepeatQueryContactsOnlyContributors) {
  LogicalIndex idx({.r = 8, .cache_capacity = 64});
  for (ObjectId id = 1; id <= 20; ++id)
    idx.insert(id, KeywordSet({"cached", "v" + std::to_string(id % 3)}));
  const KeywordSet query({"cached"});
  const auto cold = idx.superset_search(query);
  const auto warm = idx.superset_search(query);
  EXPECT_FALSE(cold.stats.cache_hit);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(ids_of(cold.hits), ids_of(warm.hits));
  EXPECT_LT(warm.stats.nodes_contacted, cold.stats.nodes_contacted);
  EXPECT_TRUE(warm.stats.complete);
  // Contributors only: at most one node per distinct keyword set + root.
  EXPECT_LE(warm.stats.nodes_contacted, 4u);
}

TEST(LogicalIndexCache, InsertInvalidatesAffectedQuery) {
  LogicalIndex idx({.r = 8, .cache_capacity = 64});
  idx.insert(1, KeywordSet({"q", "a"}));
  const KeywordSet query({"q"});
  const auto first = idx.superset_search(query);
  EXPECT_EQ(first.hits.size(), 1u);
  // New matching object: placed at a different cube node in general, but
  // the root's cached plan for `query` must not hide it if it happens to
  // land at the root itself; the invalidation removes the plan when the
  // new object's set contains the query and maps to the cached root.
  idx.insert(2, KeywordSet({"q"}));  // maps exactly to the root of `query`
  const auto second = idx.superset_search(query);
  EXPECT_EQ(ids_of(second.hits), (std::set<ObjectId>{1, 2}));
}

TEST(LogicalIndexCache, PartialTraversalUsableForSmallerThreshold) {
  LogicalIndex idx({.r = 8, .cache_capacity = 64});
  for (ObjectId id = 1; id <= 50; ++id)
    idx.insert(id, KeywordSet({"p", "e" + std::to_string(id)}));
  // Cold partial search caches an incomplete plan with >= 10 results.
  const auto cold = idx.superset_search(KeywordSet({"p"}), 10);
  EXPECT_FALSE(cold.stats.complete);
  // Smaller threshold can be served from the cached partial plan.
  const auto warm = idx.superset_search(KeywordSet({"p"}), 5);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.hits.size(), 5u);
  // Larger threshold cannot: full traversal re-runs.
  const auto full = idx.superset_search(KeywordSet({"p"}), 40);
  EXPECT_FALSE(full.stats.cache_hit);
  EXPECT_EQ(full.hits.size(), 40u);
}

TEST(LogicalIndexCache, StatsAccumulate) {
  LogicalIndex idx({.r = 6, .cache_capacity = 16});
  idx.insert(1, KeywordSet({"s"}));
  idx.superset_search(KeywordSet({"s"}));
  idx.superset_search(KeywordSet({"s"}));
  const auto stats = idx.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  idx.clear_caches();
  const auto after = idx.superset_search(KeywordSet({"s"}));
  EXPECT_FALSE(after.stats.cache_hit);
}

// --- Cumulative search -------------------------------------------------------

TEST(LogicalIndexCumulative, BatchesAreDisjointAndExhaustive) {
  Rng rng(8);
  LogicalIndex idx({.r = 8});
  auto corpus = random_corpus(300, 20, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);
  const KeywordSet query({corpus.objects.begin()->second.words().front()});
  const auto expected = corpus.supersets(query);

  auto session = idx.begin_cumulative(query);
  std::set<ObjectId> all;
  std::size_t batches = 0;
  while (!session.exhausted()) {
    const auto batch = session.next(7);
    if (batch.hits.empty()) break;
    ++batches;
    for (const Hit& h : batch.hits)
      EXPECT_TRUE(all.insert(h.object).second) << "duplicate " << h.object;
  }
  EXPECT_EQ(all, expected);
  if (expected.size() > 7) EXPECT_GT(batches, 1u);
}

TEST(LogicalIndexCumulative, BatchSizeIsRespected) {
  LogicalIndex idx({.r = 6});
  for (ObjectId id = 1; id <= 30; ++id)
    idx.insert(id, KeywordSet({"c", "z" + std::to_string(id)}));
  auto session = idx.begin_cumulative(KeywordSet({"c"}));
  std::size_t total = 0;
  while (!session.exhausted()) {
    const auto batch = session.next(4);
    EXPECT_LE(batch.hits.size(), 4u);
    total += batch.hits.size();
    if (batch.hits.empty()) break;
  }
  EXPECT_EQ(total, 30u);
}

TEST(LogicalIndexCumulative, SplitsWithinASingleNode) {
  LogicalIndex idx({.r = 6});
  const KeywordSet k({"same", "set"});
  for (ObjectId id = 1; id <= 10; ++id) idx.insert(id, k);  // one node
  auto session = idx.begin_cumulative(KeywordSet({"same"}));
  const auto b1 = session.next(4);
  const auto b2 = session.next(4);
  const auto b3 = session.next(4);
  EXPECT_EQ(b1.hits.size(), 4u);
  EXPECT_EQ(b2.hits.size(), 4u);
  EXPECT_EQ(b3.hits.size(), 2u);
  std::set<ObjectId> all;
  for (const auto* b : {&b1, &b2, &b3})
    for (const Hit& h : b->hits) all.insert(h.object);
  EXPECT_EQ(all.size(), 10u);
}

TEST(LogicalIndexCumulative, NextZeroThrows) {
  LogicalIndex idx({.r = 4});
  auto session = idx.begin_cumulative(KeywordSet({"q"}));
  EXPECT_THROW(session.next(0), std::invalid_argument);
}

TEST(LogicalIndex, EmptyIndexSearchesReturnNothing) {
  LogicalIndex idx({.r = 8});
  const auto result = idx.superset_search(KeywordSet({"anything"}));
  EXPECT_TRUE(result.hits.empty());
  EXPECT_TRUE(result.stats.complete);
  EXPECT_TRUE(idx.pin_search(KeywordSet({"anything"})).hits.empty());
}

TEST(LogicalIndex, UnknownKeywordsStillSearchTheirSubcube) {
  LogicalIndex idx({.r = 6});
  idx.insert(1, KeywordSet({"known"}));
  // A query for a keyword nobody used must still explore (and find
  // nothing) — the scheme has no global vocabulary to consult.
  const auto result = idx.superset_search(KeywordSet({"never-seen"}));
  EXPECT_TRUE(result.hits.empty());
  EXPECT_GE(result.stats.nodes_contacted, 1u);
}

TEST(LogicalIndex, DimensionOneCube) {
  // r = 1: two nodes. Everything still works.
  LogicalIndex idx({.r = 1});
  idx.insert(1, KeywordSet({"a"}));
  idx.insert(2, KeywordSet({"a", "b"}));
  const auto result = idx.superset_search(KeywordSet({"a"}));
  EXPECT_EQ(result.hits.size(), 2u);
  EXPECT_LE(result.stats.nodes_contacted, 2u);
}

TEST(LogicalIndex, ManyObjectsOneKeywordSet) {
  // Thousands of objects under the same set pile onto one node — the
  // degenerate hot placement the paper accepts (same metadata => same
  // node) — and search still returns them all from a single contact.
  LogicalIndex idx({.r = 10});
  const KeywordSet k({"same", "three", "words"});
  for (ObjectId o = 1; o <= 2000; ++o) idx.insert(o, k);
  std::size_t max_load = 0;
  for (std::size_t l : idx.loads()) max_load = std::max(max_load, l);
  EXPECT_EQ(max_load, 2000u);
  const auto pin = idx.pin_search(k);
  EXPECT_EQ(pin.hits.size(), 2000u);
  EXPECT_EQ(pin.stats.nodes_contacted, 1u);
}

class LogicalIndexDims : public ::testing::TestWithParam<int> {};

TEST_P(LogicalIndexDims, OracleEquivalenceAcrossDimensions) {
  const int r = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(r));
  LogicalIndex idx({.r = r});
  auto corpus = random_corpus(200, 25, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);
  for (int trial = 0; trial < 30; ++trial) {
    auto it = corpus.objects.begin();
    std::advance(it, rng.next_below(corpus.objects.size()));
    const KeywordSet query({it->second.words().front()});
    EXPECT_EQ(ids_of(idx.superset_search(query).hits),
              corpus.supersets(query));
    EXPECT_EQ(ids_of(idx.pin_search(it->second).hits),
              corpus.exact(it->second));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LogicalIndexDims,
                         ::testing::Values(2, 4, 6, 8, 10, 12));

// Full sweep: every strategy x threshold x dimension combination must
// return correct results — exactly min(t, |O_K|) hits, all true matches,
// and a truthful completeness flag.
struct SweepParam {
  int r;
  SearchStrategy strategy;
  std::size_t threshold;
};

class LogicalIndexSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(LogicalIndexSweep, ThresholdedSearchIsCorrect) {
  const auto [r, strategy, threshold] = GetParam();
  Rng rng(500 + static_cast<std::uint64_t>(r) +
          static_cast<std::uint64_t>(threshold));
  LogicalIndex idx({.r = r});
  auto corpus = random_corpus(250, 20, rng);
  for (const auto& [id, k] : corpus.objects) idx.insert(id, k);

  for (int trial = 0; trial < 15; ++trial) {
    auto it = corpus.objects.begin();
    std::advance(it, rng.next_below(corpus.objects.size()));
    const KeywordSet query({it->second.words().front()});
    const auto expected = corpus.supersets(query);
    const auto result = idx.superset_search(query, threshold, strategy);

    const std::size_t want =
        threshold == 0 ? expected.size()
                       : std::min(threshold, expected.size());
    // Level-parallel can only stop at level boundaries, so it may return
    // more than the threshold asked for; never fewer.
    if (strategy == SearchStrategy::kLevelParallel && threshold != 0) {
      EXPECT_GE(result.hits.size(), want);
    } else {
      EXPECT_EQ(result.hits.size(), want);
    }
    for (const Hit& h : result.hits) {
      EXPECT_TRUE(expected.contains(h.object));
      EXPECT_TRUE(query.subset_of(h.keywords));
    }
    if (result.stats.complete)
      EXPECT_EQ(ids_of(result.hits), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LogicalIndexSweep,
    ::testing::Values(
        SweepParam{4, SearchStrategy::kTopDownSequential, 0},
        SweepParam{4, SearchStrategy::kBottomUpSequential, 0},
        SweepParam{4, SearchStrategy::kLevelParallel, 0},
        SweepParam{8, SearchStrategy::kTopDownSequential, 1},
        SweepParam{8, SearchStrategy::kBottomUpSequential, 1},
        SweepParam{8, SearchStrategy::kLevelParallel, 1},
        SweepParam{8, SearchStrategy::kTopDownSequential, 5},
        SweepParam{8, SearchStrategy::kBottomUpSequential, 5},
        SweepParam{8, SearchStrategy::kLevelParallel, 5},
        SweepParam{10, SearchStrategy::kTopDownSequential, 3},
        SweepParam{10, SearchStrategy::kBottomUpSequential, 7},
        SweepParam{10, SearchStrategy::kLevelParallel, 7},
        SweepParam{12, SearchStrategy::kTopDownSequential, 100},
        SweepParam{12, SearchStrategy::kBottomUpSequential, 100},
        SweepParam{12, SearchStrategy::kLevelParallel, 100}));

}  // namespace
}  // namespace hkws::index
