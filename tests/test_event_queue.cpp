#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace hkws::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_in(30, [&] { order.push_back(3); });
  q.schedule_in(10, [&] { order.push_back(1); });
  q.schedule_in(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_in(5, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<Time> times;
  q.schedule_in(1, [&] {
    times.push_back(q.now());
    q.schedule_in(5, [&] { times.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(times, (std::vector<Time>{1, 6}));
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTime) {
  EventQueue q;
  bool ran = false;
  q.schedule_in(7, [&] { q.schedule_in(0, [&] { ran = true; }); });
  q.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 7u);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_in(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<Time> times;
  for (Time t : {5, 10, 15, 20})
    q.schedule_at(t, [&, t] { times.push_back(t); });
  EXPECT_EQ(q.run_until(12), 2u);
  EXPECT_EQ(times, (std::vector<Time>{5, 10}));
  EXPECT_EQ(q.pending(), 2u);
  q.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue q;
  int count = 0;
  q.schedule_in(1, [&] { ++count; });
  q.schedule_in(2, [&] { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, EmptyQueueRunsZeroEvents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
  EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, TimerFiresOnce) {
  EventQueue q;
  int fired = 0;
  const auto id = q.set_timer(10, [&] { ++fired; });
  EXPECT_NE(id, 0u);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 10u);
  // A fired timer cannot be cancelled.
  EXPECT_FALSE(q.cancel_timer(id));
}

TEST(EventQueue, CancelledTimerNeverRuns) {
  EventQueue q;
  int fired = 0;
  const auto id = q.set_timer(10, [&] { ++fired; });
  q.schedule_in(20, [&] {});
  EXPECT_TRUE(q.cancel_timer(id));
  EXPECT_FALSE(q.cancel_timer(id));  // double-cancel reports false
  EXPECT_EQ(q.pending(), 1u);        // only the plain event remains
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.now(), 20u);  // the dead timer did not advance time
}

TEST(EventQueue, CancelUnknownTimerReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel_timer(0));
  EXPECT_FALSE(q.cancel_timer(12345));
}

TEST(EventQueue, QueueOfOnlyCancelledTimersIsEmpty) {
  EventQueue q;
  const auto a = q.set_timer(5, [] {});
  const auto b = q.set_timer(6, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel_timer(a);
  q.cancel_timer(b);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, TimersMayRescheduleThemselves) {
  EventQueue q;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 3) q.set_timer(10, tick);
  };
  q.set_timer(10, tick);
  q.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 30u);
}

// Same-tick timers and plain events interleave strictly in schedule order
// even though consecutive same-expiry timers share one heap entry.
TEST(EventQueue, SameTickTimersAndEventsKeepScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.set_timer(5, [&] { order.push_back(0); });
  q.set_timer(5, [&] { order.push_back(1); });   // batched with 0
  q.schedule_in(5, [&] { order.push_back(2); }); // closes the batch
  q.set_timer(5, [&] { order.push_back(3); });   // new batch
  q.set_timer(5, [&] { order.push_back(4); });
  q.set_timer(7, [&] { order.push_back(5); });   // different expiry
  EXPECT_EQ(q.run(), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

// step() fires exactly one member of a batched timer group per call.
TEST(EventQueue, StepFiresOneBatchedTimerAtATime) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 4; ++i) q.set_timer(3, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_TRUE(q.step());
  EXPECT_TRUE(q.step());
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(fired, 4);
}

// Cancelling some members of a batch must not fire them, advance time for
// them, or disturb the survivors' order.
TEST(EventQueue, CancelInsideBatchSkipsOnlyTheCancelled) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventQueue::TimerId> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(q.set_timer(10, [&order, i] { order.push_back(i); }));
  q.cancel_timer(ids[0]);
  q.cancel_timer(ids[2]);
  q.cancel_timer(ids[5]);
  EXPECT_EQ(q.pending(), 3u);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(q.now(), 10u);
}

// A timer firing may cancel later members of its own (already re-heaped)
// batch; the cancelled members must not run.
TEST(EventQueue, BatchMemberMayCancelItsSiblings) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventQueue::TimerId> ids(3, 0);
  ids[0] = q.set_timer(4, [&] {
    order.push_back(0);
    q.cancel_timer(ids[2]);
  });
  ids[1] = q.set_timer(4, [&] { order.push_back(1); });
  ids[2] = q.set_timer(4, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(q.live_timer_count(), 0u);
}

// Retransmission-style churn: arm-and-cancel cycles at a scale that used to
// leave every tombstone (closure included) in the heap until its expiry came
// up. Storage must stay bounded by compaction, cancelled closures must be
// released immediately, and no cancelled callback may ever fire.
TEST(EventQueue, CancelChurnKeepsHeapBoundedAndSilent) {
  EventQueue q;
  int cancelled_fired = 0;
  int live_fired = 0;
  std::size_t max_entries = 0;
  std::size_t max_tombstones = 0;
  // Shared payload: instrument release so we can prove cancel frees the
  // closure's captures immediately rather than at pop time.
  auto payload = std::make_shared<std::vector<int>>(64, 7);
  for (int round = 0; round < 200; ++round) {
    std::vector<EventQueue::TimerId> ids;
    for (int i = 0; i < 50; ++i)
      ids.push_back(q.set_timer(1000, [&cancelled_fired, payload] {
        ++cancelled_fired;
      }));
    for (const auto id : ids) EXPECT_TRUE(q.cancel_timer(id));
    max_entries = std::max(max_entries, q.heap_entries());
    max_tombstones = std::max(max_tombstones, q.cancelled_in_heap());
    // A sprinkle of live work so time advances like a real run.
    q.set_timer(1, [&live_fired] { ++live_fired; });
    q.run_until(q.now() + 1);
  }
  // 10000 arm/cancel cycles; the old heap would hold every one of them.
  EXPECT_LT(max_entries, 500u);
  EXPECT_LT(max_tombstones, 200u);
  EXPECT_EQ(q.live_timer_count(), 0u);
  // Only our instrumented handle remains: every cancelled closure's capture
  // was released at cancel time.
  EXPECT_EQ(payload.use_count(), 1);
  q.run();
  EXPECT_EQ(cancelled_fired, 0);
  EXPECT_EQ(live_fired, 200);
}

// pending()/empty() stay exact while tombstones await compaction.
TEST(EventQueue, CountsIgnoreTombstones) {
  EventQueue q;
  std::vector<EventQueue::TimerId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(q.set_timer(50, [] {}));
  q.schedule_in(60, [] {});
  for (const auto id : ids) q.cancel_timer(id);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.run(), 1u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace hkws::sim
