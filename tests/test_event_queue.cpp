#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace hkws::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_in(30, [&] { order.push_back(3); });
  q.schedule_in(10, [&] { order.push_back(1); });
  q.schedule_in(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_in(5, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<Time> times;
  q.schedule_in(1, [&] {
    times.push_back(q.now());
    q.schedule_in(5, [&] { times.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(times, (std::vector<Time>{1, 6}));
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTime) {
  EventQueue q;
  bool ran = false;
  q.schedule_in(7, [&] { q.schedule_in(0, [&] { ran = true; }); });
  q.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 7u);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_in(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<Time> times;
  for (Time t : {5, 10, 15, 20})
    q.schedule_at(t, [&, t] { times.push_back(t); });
  EXPECT_EQ(q.run_until(12), 2u);
  EXPECT_EQ(times, (std::vector<Time>{5, 10}));
  EXPECT_EQ(q.pending(), 2u);
  q.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue q;
  int count = 0;
  q.schedule_in(1, [&] { ++count; });
  q.schedule_in(2, [&] { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, EmptyQueueRunsZeroEvents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
  EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, TimerFiresOnce) {
  EventQueue q;
  int fired = 0;
  const auto id = q.set_timer(10, [&] { ++fired; });
  EXPECT_NE(id, 0u);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 10u);
  // A fired timer cannot be cancelled.
  EXPECT_FALSE(q.cancel_timer(id));
}

TEST(EventQueue, CancelledTimerNeverRuns) {
  EventQueue q;
  int fired = 0;
  const auto id = q.set_timer(10, [&] { ++fired; });
  q.schedule_in(20, [&] {});
  EXPECT_TRUE(q.cancel_timer(id));
  EXPECT_FALSE(q.cancel_timer(id));  // double-cancel reports false
  EXPECT_EQ(q.pending(), 1u);        // only the plain event remains
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.now(), 20u);  // the dead timer did not advance time
}

TEST(EventQueue, CancelUnknownTimerReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel_timer(0));
  EXPECT_FALSE(q.cancel_timer(12345));
}

TEST(EventQueue, QueueOfOnlyCancelledTimersIsEmpty) {
  EventQueue q;
  const auto a = q.set_timer(5, [] {});
  const auto b = q.set_timer(6, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel_timer(a);
  q.cancel_timer(b);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, TimersMayRescheduleThemselves) {
  EventQueue q;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 3) q.set_timer(10, tick);
  };
  q.set_timer(10, tick);
  q.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 30u);
}

}  // namespace
}  // namespace hkws::sim
