#include "workload/corpus_generator.hpp"

#include <gtest/gtest.h>

#include "common/zipf.hpp"

namespace hkws::workload {
namespace {

CorpusConfig small_config() {
  CorpusConfig cfg;
  cfg.object_count = 20000;
  cfg.vocabulary_size = 8000;
  return cfg;
}

TEST(CorpusGenerator, ValidatesConfig) {
  CorpusConfig bad = small_config();
  bad.object_count = 0;
  EXPECT_THROW(CorpusGenerator{bad}, std::invalid_argument);
  bad = small_config();
  bad.min_keywords = 0;
  EXPECT_THROW(CorpusGenerator{bad}, std::invalid_argument);
  bad = small_config();
  bad.max_keywords = 50000;
  EXPECT_THROW(CorpusGenerator{bad}, std::invalid_argument);
}

TEST(CorpusGenerator, ProducesRequestedObjectCount) {
  const auto corpus = CorpusGenerator(small_config()).generate();
  EXPECT_EQ(corpus.size(), 20000u);
}

TEST(CorpusGenerator, MeanKeywordsMatchesPaper) {
  const auto corpus = CorpusGenerator(small_config()).generate();
  EXPECT_NEAR(corpus.mean_keywords(), 7.3, 0.25);
}

TEST(CorpusGenerator, SetSizesWithinBounds) {
  const auto cfg = small_config();
  const auto corpus = CorpusGenerator(cfg).generate();
  const auto hist = corpus.keyword_size_histogram();
  EXPECT_GE(hist.min_value(), cfg.min_keywords);
  EXPECT_LE(hist.max_value(), cfg.max_keywords);
}

TEST(CorpusGenerator, SizeDistributionIsUnimodalNearMedian) {
  // Fig. 5 shape: the peak sits in the 4..9 range, tails are thin.
  const auto corpus = CorpusGenerator(small_config()).generate();
  const auto hist = corpus.keyword_size_histogram();
  std::int64_t mode = 1;
  std::uint64_t best = 0;
  for (const auto& [v, c] : hist.bins())
    if (c > best) {
      best = c;
      mode = v;
    }
  EXPECT_GE(mode, 4);
  EXPECT_LE(mode, 9);
  EXPECT_LT(hist.fraction(1), 0.05);
  EXPECT_LT(hist.fraction(25), 0.01);
}

TEST(CorpusGenerator, DeterministicPerSeed) {
  const auto a = CorpusGenerator(small_config()).generate();
  const auto b = CorpusGenerator(small_config()).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(a[i].keywords, b[i].keywords);
  CorpusConfig other = small_config();
  other.seed = 999;
  const auto c = CorpusGenerator(other).generate();
  int same = 0;
  for (std::size_t i = 0; i < 100; ++i)
    if (a[i].keywords == c[i].keywords) ++same;
  EXPECT_LT(same, 5);
}

TEST(CorpusGenerator, KeywordPopularityIsZipfLike) {
  const auto corpus = CorpusGenerator(small_config()).generate();
  const auto freq = corpus.keyword_frequencies();
  ASSERT_GT(freq.size(), 1000u);
  std::vector<std::uint64_t> counts;
  for (std::size_t i = 0; i < 1000; ++i) counts.push_back(freq[i].second);
  const double s = fit_zipf_exponent(counts);
  EXPECT_GT(s, 0.35);  // generation skew is 0.6; sampling without
  EXPECT_LT(s, 0.9);   // replacement flattens the head slightly
}

TEST(CorpusGenerator, TopKeywordFrequencyIsDirectoryLike) {
  // Calibration target: the hottest keyword should appear in a few percent
  // of records, as in curated directories — not in half of them.
  const auto corpus = CorpusGenerator(small_config()).generate();
  const auto freq = corpus.keyword_frequencies();
  const double top_df =
      static_cast<double>(freq[0].second) / static_cast<double>(corpus.size());
  EXPECT_GT(top_df, 0.005);
  EXPECT_LT(top_df, 0.10);
}

TEST(CorpusGenerator, RecordsHaveTableOneFields) {
  const auto corpus = CorpusGenerator(small_config()).generate();
  const auto& rec = corpus[0];
  EXPECT_NE(rec.id, kInvalidObject);
  EXPECT_FALSE(rec.title.empty());
  EXPECT_EQ(rec.url.rfind("http://", 0), 0u);
  EXPECT_EQ(rec.category.size(), 10u);
  EXPECT_FALSE(rec.description.empty());
  EXPECT_FALSE(rec.keywords.empty());
}

TEST(CorpusGenerator, KeywordsAreDistinctWithinObject) {
  const auto corpus = CorpusGenerator(small_config()).generate();
  for (std::size_t i = 0; i < 200; ++i) {
    const auto& words = corpus[i].keywords.words();
    for (std::size_t j = 1; j < words.size(); ++j)
      EXPECT_LT(words[j - 1], words[j]);  // canonical => sorted unique
  }
}

TEST(CorpusGenerator, BundlesCreateKeywordCorrelation) {
  // Popular multi-keyword queries only have large result sets if keywords
  // co-occur beyond chance; the bundle mechanism must deliver that.
  const auto corpus = CorpusGenerator(small_config()).generate();
  const auto freq = corpus.keyword_frequencies();
  std::vector<Keyword> top;
  for (std::size_t i = 0; i < 30 && i < freq.size(); ++i)
    top.push_back(freq[i].first);
  // Count pairwise co-occurrence among the top keywords in one pass.
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> pairs;
  for (const auto& rec : corpus.records()) {
    std::vector<std::size_t> present;
    for (std::size_t i = 0; i < top.size(); ++i)
      if (rec.keywords.contains(top[i])) present.push_back(i);
    for (std::size_t a = 0; a < present.size(); ++a)
      for (std::size_t b = a + 1; b < present.size(); ++b)
        ++pairs[{present[a], present[b]}];
  }
  double best_lift = 0;
  std::map<Keyword, std::uint64_t> df(freq.begin(), freq.end());
  for (const auto& [pair, count] : pairs) {
    const double expected = static_cast<double>(df[top[pair.first]]) *
                            static_cast<double>(df[top[pair.second]]) /
                            static_cast<double>(corpus.size());
    if (expected > 0)
      best_lift = std::max(best_lift, static_cast<double>(count) / expected);
  }
  EXPECT_GT(best_lift, 3.0);  // some pair co-occurs far beyond independence
}

TEST(CorpusGenerator, BundleValidation) {
  CorpusConfig bad = small_config();
  bad.bundle_probability = 1.5;
  EXPECT_THROW(CorpusGenerator{bad}, std::invalid_argument);
  bad = small_config();
  bad.bundle_size = 0;
  EXPECT_THROW(CorpusGenerator{bad}, std::invalid_argument);
  // Bundles can be disabled entirely.
  CorpusConfig plain = small_config();
  plain.bundle_probability = 0.0;
  EXPECT_NO_THROW(CorpusGenerator{plain}.generate());
}

TEST(Corpus, StatisticsOnHandBuiltRecords) {
  std::vector<ObjectRecord> recs(3);
  recs[0].keywords = KeywordSet({"a", "b"});
  recs[1].keywords = KeywordSet({"a"});
  recs[2].keywords = KeywordSet({"a", "b", "c"});
  const Corpus corpus(std::move(recs));
  EXPECT_EQ(corpus.vocabulary_size(), 3u);
  EXPECT_DOUBLE_EQ(corpus.mean_keywords(), 2.0);
  const auto freq = corpus.keyword_frequencies();
  EXPECT_EQ(freq[0].first, "a");
  EXPECT_EQ(freq[0].second, 3u);
}

}  // namespace
}  // namespace hkws::workload
