#include "workload/corpus_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/corpus_generator.hpp"

namespace hkws::workload {
namespace {

Corpus tiny_corpus() {
  std::vector<ObjectRecord> recs(2);
  recs[0] = {11, "Hinet", "http://www.hinet.net", "0818013020",
             "Largest ISP in Taiwan",
             KeywordSet({"isp", "telecommunication", "network", "download"})};
  recs[1] = {18491, "TVBS News", "http://www.tvbs.com.tw", "0318201207",
             "Providing daily news", KeywordSet({"tvbs", "news"})};
  return Corpus(std::move(recs));
}

TEST(CorpusIo, RoundTripPreservesRecords) {
  const Corpus original = tiny_corpus();
  std::stringstream buffer;
  save_corpus_tsv(original, buffer);
  const Corpus loaded = load_corpus_tsv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_EQ(loaded[i].title, original[i].title);
    EXPECT_EQ(loaded[i].url, original[i].url);
    EXPECT_EQ(loaded[i].category, original[i].category);
    EXPECT_EQ(loaded[i].description, original[i].description);
    EXPECT_EQ(loaded[i].keywords, original[i].keywords);
  }
}

TEST(CorpusIo, RoundTripOnGeneratedCorpus) {
  CorpusConfig cfg;
  cfg.object_count = 500;
  cfg.vocabulary_size = 300;
  const Corpus original = CorpusGenerator(cfg).generate();
  std::stringstream buffer;
  save_corpus_tsv(original, buffer);
  const Corpus loaded = load_corpus_tsv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.keyword_size_histogram().hist_mean(),
            original.keyword_size_histogram().hist_mean());
  for (std::size_t i = 0; i < original.size(); i += 37)
    EXPECT_EQ(loaded[i].keywords, original[i].keywords);
}

TEST(CorpusIo, SkipsCommentsAndBlankLines) {
  std::stringstream in(
      "# header comment\n"
      "\n"
      "1\tA\thttp://a\tcat\tdesc\tx,y\n"
      "# trailing comment\n");
  const Corpus loaded = load_corpus_tsv(in);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].keywords, KeywordSet({"x", "y"}));
}

TEST(CorpusIo, RejectsMalformedLines) {
  {
    std::stringstream in("1\tA\thttp://a\tcat\tdesc\n");  // 5 fields
    EXPECT_THROW(load_corpus_tsv(in), std::runtime_error);
  }
  {
    std::stringstream in("notanumber\tA\tu\tc\td\tx\n");
    EXPECT_THROW(load_corpus_tsv(in), std::runtime_error);
  }
  {
    std::stringstream in("1\tA\tu\tc\td\t\n");  // empty keywords
    EXPECT_THROW(load_corpus_tsv(in), std::runtime_error);
  }
}

TEST(CorpusIo, RejectsDelimitersInFields) {
  std::vector<ObjectRecord> recs(1);
  recs[0] = {1, "bad\ttitle", "u", "c", "d", KeywordSet({"x"})};
  std::stringstream buffer;
  EXPECT_THROW(save_corpus_tsv(Corpus(std::move(recs)), buffer),
               std::runtime_error);

  std::vector<ObjectRecord> recs2(1);
  recs2[0] = {1, "ok", "u", "c", "d", KeywordSet({"x,y"})};
  std::stringstream buffer2;
  EXPECT_THROW(save_corpus_tsv(Corpus(std::move(recs2)), buffer2),
               std::runtime_error);
}

TEST(CorpusIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hyperkws_corpus.tsv";
  const Corpus original = tiny_corpus();
  save_corpus_tsv(original, path);
  const Corpus loaded = load_corpus_tsv(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded[1].keywords, original[1].keywords);
}

TEST(CorpusIo, MissingFileThrows) {
  EXPECT_THROW(load_corpus_tsv("/nonexistent/path/corpus.tsv"),
               std::runtime_error);
}

}  // namespace
}  // namespace hkws::workload
