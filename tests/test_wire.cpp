// Codec tests for net/wire.hpp: round-trip every registered message kind,
// then hold the malformed-input contract — truncated, bit-flipped, and
// hostile-length-prefix frames must be *rejected* (nullopt), never crash,
// never read out of bounds, never allocate unboundedly. The corruption
// corpus is seeded and deterministic; the CI sanitize job (ASan/UBSan) runs
// this binary, which is what turns "no crash" into a checked property.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/wire.hpp"

namespace hkws::net {
namespace {

std::vector<WireHit> sample_hits() {
  return {WireHit{7, {"database", "peer"}}, WireHit{91, {"overlay"}},
          WireHit{12, {}}};
}

/// One representative message per registered kind (shared layouts get the
/// same struct with kind-appropriate field values).
std::vector<std::pair<MsgKind, WireMessage>> sample_frames() {
  std::vector<std::pair<MsgKind, WireMessage>> out;
  const RefMsg ref{0x1234'5678'9abc'def0ull, 42, 7};
  for (const MsgKind k : {MsgKind::kDolrInsert, MsgKind::kDolrReplicate,
                          MsgKind::kDolrDelete, MsgKind::kDolrUnreplicate})
    out.emplace_back(k, ref);
  out.emplace_back(MsgKind::kDolrRead, ReadMsg{42, 9});
  out.emplace_back(MsgKind::kDolrReply, HoldersMsg{42, {1, 2, 0xffffffffull}});
  const EntryMsg entry{42, {"keyword", "search", "dht"}, 0x9001, 3};
  for (const MsgKind k : {MsgKind::kKwsInsert, MsgKind::kKwsDelete,
                          MsgKind::kHcInsert, MsgKind::kHcDelete})
    out.emplace_back(k, entry);
  const PinMsg pin{5, 3, {"exact", "set"}};
  for (const MsgKind k : {MsgKind::kKwsPin, MsgKind::kHcPin})
    out.emplace_back(k, pin);
  const HitsMsg hits{5, 17, sample_hits()};
  for (const MsgKind k :
       {MsgKind::kKwsPinReply, MsgKind::kKwsResults, MsgKind::kKwsCResults,
        MsgKind::kHcPinReply, MsgKind::kHcResults})
    out.emplace_back(k, hits);
  const QueryMsg query{5, 17, 3, 10, 2, {"a", "bb"}};
  for (const MsgKind k :
       {MsgKind::kKwsTQuery, MsgKind::kKwsCQuery, MsgKind::kHcSQuery})
    out.emplace_back(k, query);
  const ControlMsg control{5, 17, 4, true};
  for (const MsgKind k : {MsgKind::kKwsTCont, MsgKind::kKwsTStop,
                          MsgKind::kKwsCCont, MsgKind::kHcSDone})
    out.emplace_back(k, control);
  const DoneMsg done{5, 12};
  for (const MsgKind k :
       {MsgKind::kKwsDone, MsgKind::kKwsCDone, MsgKind::kHcDone})
    out.emplace_back(k, done);
  out.emplace_back(MsgKind::kKwsSReply,
                   SearchReplyMsg{5, 4, 9, 3, 1, true, false, sample_hits()});
  out.emplace_back(MsgKind::kKwsVisitBatch,
                   VisitBatchMsg{5, 10, {3, 9, 12}, {"a", "bb"}});
  out.emplace_back(
      MsgKind::kKwsBatchResults,
      BatchResultsMsg{5,
                      {BatchResultsMsg::NodeBatch{3, sample_hits()},
                       BatchResultsMsg::NodeBatch{9, {}}}});
  out.emplace_back(MsgKind::kKwsBatchReply,
                   BatchReplyMsg{5,
                                 {BatchReplyMsg::NodeVerdict{3, 2, false},
                                  BatchReplyMsg::NodeVerdict{9, 0, true}}});
  out.emplace_back(MsgKind::kKwsCOpen, COpenMsg{77, 3, {"browse"}});
  out.emplace_back(MsgKind::kKwsCNext, CNextMsg{77, 20});
  out.emplace_back(MsgKind::kDhtJoin, JoinMsg{11, 2});
  out.emplace_back(MsgKind::kDhtFixFinger, FixFingerMsg{11, 30});
  out.emplace_back(MsgKind::kFeQuery, FeQueryMsg{4, 1, {"web", "index"}});
  out.emplace_back(MsgKind::kFeReply, FeReplyMsg{true, 123, sample_hits()});
  EnvelopeMsg env;
  env.inner_kind = MsgKind::kKwsTQuery;
  env.msg_id = 99;
  env.from = 3;
  env.to = 7;
  env.declared_bytes = 512;
  env.pad = 16;
  out.emplace_back(MsgKind::kEnvelope, env);
  EnvelopeMsg opaque;
  opaque.inner_kind = MsgKind::kOpaque;
  opaque.label = "maint.ping";
  opaque.msg_id = 100;
  opaque.from = 1;
  opaque.to = 2;
  opaque.declared_bytes = 8;
  opaque.pad = 8;
  out.emplace_back(MsgKind::kEnvelope, opaque);
  EnvelopeMsg addressed;  // cross-process mode: payload carries inner frame
  addressed.inner_kind = MsgKind::kKwsTQuery;
  addressed.msg_id = 101;
  addressed.from = 3;
  addressed.to = 7;
  addressed.payload = encode_frame(MsgKind::kKwsTQuery, WireMessage{query});
  addressed.declared_bytes = addressed.payload.size();
  out.emplace_back(MsgKind::kEnvelope, addressed);
  return out;
}

TEST(Wire, RoundTripEveryKind) {
  for (const auto& [kind, msg] : sample_frames()) {
    SCOPED_TRACE(kind_name(kind));
    const std::vector<std::uint8_t> frame = encode_frame(kind, msg);
    ASSERT_FALSE(frame.empty());
    ASSERT_GE(frame.size(), kWireHeaderSize);

    const auto sized = frame_size(frame.data(), frame.size());
    ASSERT_TRUE(sized.has_value());
    EXPECT_EQ(*sized, frame.size());

    const auto decoded = decode_frame(frame.data(), frame.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->kind, kind);
    EXPECT_EQ(decoded->frame_size, frame.size());
    EXPECT_EQ(decoded->msg, msg);
  }
}

TEST(Wire, KindNamesRoundTrip) {
  for (const auto& [kind, msg] : sample_frames()) {
    const std::string name = kind_name(kind);
    ASSERT_FALSE(name.empty());
    const auto back = kind_of(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_STREQ(kind_name(MsgKind::kOpaque), "");
  EXPECT_STREQ(kind_name(static_cast<MsgKind>(0x7777)), "");
  EXPECT_FALSE(kind_of("no.such.kind").has_value());
  EXPECT_FALSE(kind_of("").has_value());
}

TEST(Wire, ExtraBytesAfterFrameAreIgnored) {
  auto frame = encode_frame(MsgKind::kKwsCNext, WireMessage{CNextMsg{1, 2}});
  const std::size_t size = frame.size();
  frame.push_back(0xAA);
  frame.push_back(0xBB);
  const auto decoded = decode_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->frame_size, size);  // caller resumes at the next frame
}

TEST(Wire, EncodeRejectsLayoutMismatch) {
  // dolr.insert carries a RefMsg; handing it a DoneMsg is a programming
  // error encode reports by returning the (otherwise impossible) empty
  // vector rather than framing garbage.
  EXPECT_TRUE(encode_frame(MsgKind::kDolrInsert, WireMessage{DoneMsg{}}).empty());
  EXPECT_TRUE(encode_frame(MsgKind::kOpaque, WireMessage{DoneMsg{}}).empty());
  EXPECT_TRUE(
      encode_frame(static_cast<MsgKind>(0x7777), WireMessage{DoneMsg{}}).empty());
}

TEST(Wire, HeaderRejections) {
  const auto good =
      encode_frame(MsgKind::kDolrRead, WireMessage{ReadMsg{1, 2}});
  ASSERT_FALSE(good.empty());

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(frame_size(bad_magic.data(), bad_magic.size()).has_value());
  EXPECT_FALSE(decode_frame(bad_magic.data(), bad_magic.size()).has_value());

  auto bad_version = good;
  bad_version[2] = kWireVersion + 1;
  EXPECT_FALSE(decode_frame(bad_version.data(), bad_version.size()).has_value());

  auto bad_kind = good;
  bad_kind[4] = 0x77;
  bad_kind[5] = 0x77;
  EXPECT_FALSE(decode_frame(bad_kind.data(), bad_kind.size()).has_value());

  auto huge_body = good;
  huge_body[11] = 0xFF;  // body length high byte -> > kMaxBody
  EXPECT_FALSE(frame_size(huge_body.data(), huge_body.size()).has_value());
}

TEST(Wire, IncompleteHeaderWantsMoreBytes) {
  const auto frame =
      encode_frame(MsgKind::kDolrRead, WireMessage{ReadMsg{1, 2}});
  for (std::size_t n = 0; n < kWireHeaderSize; ++n) {
    const auto sized = frame_size(frame.data(), n);
    ASSERT_TRUE(sized.has_value()) << n;
    EXPECT_EQ(*sized, 0u) << n;  // 0 = incomplete, keep reading
  }
}

TEST(Wire, EveryTruncationRejected) {
  for (const auto& [kind, msg] : sample_frames()) {
    SCOPED_TRACE(kind_name(kind));
    const auto frame = encode_frame(kind, msg);
    for (std::size_t n = 0; n < frame.size(); ++n)
      EXPECT_FALSE(decode_frame(frame.data(), n).has_value()) << n;
  }
}

TEST(Wire, TrailingGarbageInsideBodyRejected) {
  // Grow the declared body by one byte the decoder will not consume:
  // bodies must be read exactly, so this is malformed, not padding.
  auto frame = encode_frame(MsgKind::kDolrRead, WireMessage{ReadMsg{5, 6}});
  frame[8] = static_cast<std::uint8_t>(frame[8] + 1);  // body_len += 1
  frame.push_back(0);
  EXPECT_FALSE(decode_frame(frame.data(), frame.size()).has_value());
}

TEST(Wire, HostileLengthPrefixesRejectedBeforeAllocation) {
  // A dolr.reply whose holder count claims 2^32-1 elements in a 12-byte
  // body. The codec must reject against bytes-present, not trust the count.
  std::vector<std::uint8_t> frame = {
      0x48, 0x4B, kWireVersion, 0,              // magic, version, reserved
      0x06, 0x00, 0x00, 0x00,                   // kind = kDolrReply
      12,   0x00, 0x00, 0x00,                   // body_len = 12
      0,    0,    0,    0,    0, 0, 0, 0,       // object
      0xFF, 0xFF, 0xFF, 0xFF,                   // count = 0xFFFFFFFF
  };
  EXPECT_FALSE(decode_frame(frame.data(), frame.size()).has_value());

  // Same attack through the string-vector path (kws.insert).
  frame[4] = 0x10;  // kind = kKwsInsert
  EXPECT_FALSE(decode_frame(frame.data(), frame.size()).has_value());

  // And through the hit-vector path (kws.results): request + node + count.
  std::vector<std::uint8_t> hitsf = {
      0x48, 0x4B, kWireVersion, 0,
      0x23, 0x00, 0x00, 0x00,                   // kind = kKwsResults
      20,   0x00, 0x00, 0x00,                   // body_len = 20
      0,    0,    0,    0,    0, 0, 0, 0,       // request
      0,    0,    0,    0,    0, 0, 0, 0,       // node
      0xFF, 0xFF, 0xFF, 0xFF,                   // hit count = 0xFFFFFFFF
  };
  EXPECT_FALSE(decode_frame(hitsf.data(), hitsf.size()).has_value());
}

TEST(Wire, EnvelopePadMustFitBody) {
  EnvelopeMsg env;
  env.inner_kind = MsgKind::kKwsDone;
  env.msg_id = 1;
  env.pad = 32;
  auto frame = encode_frame(MsgKind::kEnvelope, WireMessage{env});
  ASSERT_FALSE(frame.empty());
  // Corrupt the pad count upward without providing the bytes. Body layout:
  // inner_kind(2) msg_id(8) from(8) to(8) declared(8) payload_len(4) pad(4).
  const std::size_t pad_off = kWireHeaderSize + 2 + 8 * 4 + 4;
  frame[pad_off] = 0xFF;
  frame[pad_off + 1] = 0xFF;
  EXPECT_FALSE(decode_frame(frame.data(), frame.size()).has_value());
}

TEST(Wire, AddressedEnvelopeRoundTripsPayloadBytes) {
  // The cross-process delivery frame: from/to endpoints plus a complete
  // encoded inner frame in the payload field, decodable after the hop.
  const QueryMsg inner{9, 0b1010, 3, 5, 0, {"peer", "network"}};
  EnvelopeMsg env;
  env.inner_kind = MsgKind::kKwsTQuery;
  env.msg_id = 424242;
  env.from = 11;
  env.to = 205;
  env.payload = encode_frame(MsgKind::kKwsTQuery, WireMessage{inner});
  env.declared_bytes = env.payload.size();
  ASSERT_FALSE(env.payload.empty());

  const auto frame = encode_frame(MsgKind::kEnvelope, WireMessage{env});
  ASSERT_FALSE(frame.empty());
  const auto decoded = decode_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<EnvelopeMsg>(decoded->msg);
  EXPECT_EQ(got, env);
  EXPECT_EQ(got.from, 11u);
  EXPECT_EQ(got.to, 205u);

  // The payload is itself a valid frame for the declared inner kind.
  const auto inner_decoded = decode_frame(got.payload.data(),
                                          got.payload.size());
  ASSERT_TRUE(inner_decoded.has_value());
  EXPECT_EQ(inner_decoded->kind, MsgKind::kKwsTQuery);
  EXPECT_EQ(std::get<QueryMsg>(inner_decoded->msg), inner);
}

TEST(Wire, EnvelopePayloadLengthMustFitBody) {
  EnvelopeMsg env;
  env.inner_kind = MsgKind::kKwsDone;
  env.msg_id = 1;
  env.payload = {1, 2, 3, 4};
  auto frame = encode_frame(MsgKind::kEnvelope, WireMessage{env});
  ASSERT_FALSE(frame.empty());
  // Inflate the payload length prefix beyond the bytes present.
  const std::size_t len_off = kWireHeaderSize + 2 + 8 * 4;
  frame[len_off] = 0xFF;
  frame[len_off + 1] = 0xFF;
  frame[len_off + 2] = 0xFF;
  EXPECT_FALSE(decode_frame(frame.data(), frame.size()).has_value());
}

TEST(Wire, TruncatedAddressedEnvelopeIsRejected) {
  EnvelopeMsg env;
  env.inner_kind = MsgKind::kKwsInsert;
  env.msg_id = 77;
  env.from = 1;
  env.to = 2;
  env.payload = encode_frame(
      MsgKind::kKwsInsert, WireMessage{EntryMsg{42, {"truncate", "me"}}});
  env.declared_bytes = env.payload.size();
  const auto frame = encode_frame(MsgKind::kEnvelope, WireMessage{env});
  ASSERT_FALSE(frame.empty());
  // Every truncation point: either "need more bytes" (frame_size bigger
  // than what's offered) or a hard reject — never a successful decode.
  for (std::size_t len = 0; len < frame.size(); ++len)
    EXPECT_FALSE(decode_frame(frame.data(), len).has_value()) << len;
}

// The fuzz-ish corpus: seeded random corruptions of valid frames. Every
// outcome must be "decoded something" or "rejected" — never a crash, hang,
// or sanitizer report. Single-bit flips, multi-byte stomps, and random
// splices all run through the same decode entry points the transport uses.
TEST(Wire, SeededCorruptionCorpusNeverMisbehaves) {
  const auto frames = sample_frames();
  Rng corrupt(0x5eed'c0de'2026'0808ull);
  std::size_t rejected = 0, survived = 0;

  for (int iter = 0; iter < 4000; ++iter) {
    const auto& [kind, msg] =
        frames[corrupt.next_below(frames.size())];
    std::vector<std::uint8_t> frame = encode_frame(kind, msg);
    const int mode = static_cast<int>(corrupt.next_below(3));
    if (mode == 0) {
      // Single bit flip anywhere in the frame.
      const std::size_t bit = corrupt.next_below(frame.size() * 8);
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    } else if (mode == 1) {
      // Stomp 1-8 random bytes.
      const std::size_t n = 1 + corrupt.next_below(8);
      for (std::size_t i = 0; i < n; ++i)
        frame[corrupt.next_below(frame.size())] =
            static_cast<std::uint8_t>(corrupt.next_below(256));
    } else {
      // Random truncation (header kept so decode gets past frame_size).
      const std::size_t keep =
          kWireHeaderSize + corrupt.next_below(frame.size() - kWireHeaderSize + 1);
      frame.resize(keep);
    }
    const auto decoded = decode_frame(frame.data(), frame.size());
    if (decoded.has_value())
      ++survived;  // corruption hit padding/ignored bits; still well-formed
    else
      ++rejected;
  }
  // The corpus must actually exercise the rejection paths.
  EXPECT_GT(rejected, 1000u);
  EXPECT_EQ(rejected + survived, 4000u);
}

TEST(Wire, PureGarbageNeverDecodes) {
  Rng rng(0xdeadbeefull);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.next_below(256));
    for (auto& b : junk)
      b = static_cast<std::uint8_t>(rng.next_below(256));
    // Without the magic, frame_size must reject or want more; decode_frame
    // must never produce a message from noise (magic collision odds are
    // ~2^-16 per draw; assert no crash rather than no decode).
    const auto decoded = decode_frame(junk.data(), junk.size());
    if (decoded.has_value()) {
      EXPECT_LE(decoded->frame_size, junk.size());
    }
  }
}

}  // namespace
}  // namespace hkws::net
