#include "dht/chord_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace hkws::dht {
namespace {

struct TestNet {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<ChordNetwork> dht;

  explicit TestNet(std::size_t n, ChordNetwork::Config cfg = {}) {
    net = std::make_unique<sim::Network>(clock);
    dht = std::make_unique<ChordNetwork>(ChordNetwork::build(*net, n, cfg));
  }
};

// Successor/predecessor/finger links must equal the global steady state.
void expect_steady_state(const ChordNetwork& dht) {
  const auto ids = dht.live_ids();
  ASSERT_FALSE(ids.empty());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ChordNode& n = dht.node(ids[i]);
    const RingId expected_succ = ids[(i + 1) % ids.size()];
    const RingId expected_pred = ids[(i + ids.size() - 1) % ids.size()];
    ASSERT_TRUE(n.successor().has_value());
    EXPECT_EQ(*n.successor(), ids.size() == 1 ? ids[i] : expected_succ);
    ASSERT_TRUE(n.predecessor().has_value());
    EXPECT_EQ(*n.predecessor(), ids.size() == 1 ? ids[i] : expected_pred);
  }
}

TEST(ChordBuild, CreatesDistinctNodes) {
  TestNet t(50);
  EXPECT_EQ(t.dht->size(), 50u);
  auto ids = t.dht->live_ids();
  auto sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(sorted.size(), 50u);
}

TEST(ChordBuild, SteadyStateLinks) {
  TestNet t(32);
  expect_steady_state(*t.dht);
}

TEST(ChordBuild, FingersPointAtOwners) {
  TestNet t(32, {.id_bits = 16});
  for (RingId id : t.dht->live_ids()) {
    const ChordNode& n = t.dht->node(id);
    for (int i = 0; i < 16; ++i) {
      const RingId target = t.dht->space().add_pow2(id, i);
      ASSERT_TRUE(n.fingers()[static_cast<std::size_t>(i)].has_value());
      EXPECT_EQ(*n.fingers()[static_cast<std::size_t>(i)],
                t.dht->owner_of(target));
    }
  }
}

TEST(ChordOwner, MatchesManualSuccessorScan) {
  TestNet t(40);
  auto ids = t.dht->live_ids();  // sorted ascending
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    auto it = std::lower_bound(ids.begin(), ids.end(), key);
    const RingId expected = it == ids.end() ? ids.front() : *it;
    EXPECT_EQ(t.dht->owner_of(key), expected);
  }
}

TEST(ChordLookup, ReachesOwnerFromEveryStart) {
  TestNet t(64);
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId owner = t.dht->owner_of(key);
    for (RingId start : t.dht->live_ids()) {
      const auto r = t.dht->lookup_now(start, key, "test");
      EXPECT_EQ(r.owner, owner) << "start " << start << " key " << key;
    }
  }
}

TEST(ChordLookup, HopCountIsLogarithmic) {
  TestNet t(256, {.id_bits = 32});
  Rng rng(3);
  double total_hops = 0;
  int lookups = 0;
  const auto ids = t.dht->live_ids();
  for (int trial = 0; trial < 500; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    total_hops += t.dht->lookup_now(start, key, "test").hops;
    ++lookups;
  }
  const double avg = total_hops / lookups;
  // Chord's bound is ~0.5 log2(n) = 4; allow slack but catch linear walks.
  EXPECT_LT(avg, 2.0 * std::log2(256.0));
  EXPECT_GT(avg, 1.0);
}

TEST(ChordRoute, AsyncAgreesWithSyncLookup) {
  TestNet t(48);
  Rng rng(4);
  const auto ids = t.dht->live_ids();
  for (int trial = 0; trial < 50; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    const auto sync = t.dht->lookup_now(start, key, "sync");
    bool called = false;
    t.dht->route(t.dht->endpoint_of(start), key, "async", 8,
                 [&](const ChordNetwork::RouteResult& r) {
                   called = true;
                   EXPECT_EQ(r.owner, sync.owner);
                   EXPECT_EQ(r.hops, sync.hops);
                 });
    t.clock.run();
    EXPECT_TRUE(called);
  }
}

TEST(ChordRoute, FromDeadOriginIsDropped) {
  TestNet t(8);
  const auto ep = t.dht->endpoint_of(t.dht->live_ids().front());
  t.dht->fail(ep);
  bool called = false;
  t.dht->route(ep, 123, "x", 8, [&](const auto&) { called = true; });
  t.clock.run();
  EXPECT_FALSE(called);
  EXPECT_EQ(t.net->metrics().counter("dht.route_lost"), 1u);
}

TEST(ChordSingleNode, OwnsEverything) {
  TestNet t(1);
  const RingId only = t.dht->live_ids().front();
  EXPECT_EQ(t.dht->owner_of(0), only);
  EXPECT_EQ(t.dht->owner_of(~0ULL), only);
  const auto r = t.dht->lookup_now(only, 42, "t");
  EXPECT_EQ(r.owner, only);
  EXPECT_EQ(r.hops, 0);
}

TEST(ChordJoin, IntegratesAndTakesOverKeys) {
  sim::EventQueue clock;
  sim::Network net(clock);
  ChordNetwork dht(net, {});
  dht.create_ring(1);
  for (sim::EndpointId e = 2; e <= 20; ++e) dht.join(e, 1);
  for (int round = 0; round < 40; ++round) dht.stabilize_all();
  EXPECT_EQ(dht.size(), 20u);
  expect_steady_state(dht);

  // Lookups route correctly after incremental construction.
  Rng rng(5);
  const auto ids = dht.live_ids();
  for (int trial = 0; trial < 200; ++trial) {
    const RingId key = dht.space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    EXPECT_EQ(dht.lookup_now(start, key, "t").owner, dht.owner_of(key));
  }
}

TEST(ChordJoin, MovesReferencesToTheJoiner) {
  sim::EventQueue clock;
  sim::Network net(clock);
  ChordNetwork dht(net, {});
  dht.create_ring(1);
  const RingId first = *dht.ring_id_of(1);
  // Stash references across the whole ring on the only node.
  for (std::uint64_t k = 0; k < 64; ++k)
    dht.node(first).add_ref(
        StoredRef{dht.space().clamp(k * 0x0404040404040404ULL), k, 1});
  const std::size_t before = dht.node(first).ref_count();
  dht.join(2, 1);
  const RingId second = *dht.ring_id_of(2);
  EXPECT_EQ(dht.node(first).ref_count() + dht.node(second).ref_count(),
            before);
  EXPECT_GT(dht.node(second).ref_count(), 0u);
  // Every reference now sits at its owner.
  for (RingId id : dht.live_ids())
    for (const auto& ref : dht.node(id).all_refs())
      EXPECT_EQ(dht.owner_of(ref.key), id);
}

TEST(ChordLeave, SplicesRingAndHandsOffRefs) {
  TestNet t(10);
  auto ids = t.dht->live_ids();
  const RingId leaver = ids[3];
  t.dht->node(leaver).add_ref(StoredRef{leaver, 77, 5});
  const auto succ = *t.dht->node(leaver).successor();
  t.dht->leave(t.dht->endpoint_of(leaver));
  EXPECT_EQ(t.dht->size(), 9u);
  EXPECT_FALSE(t.dht->node(succ).refs_of(77).empty());
  for (int round = 0; round < 10; ++round) t.dht->stabilize_all();
  expect_steady_state(*t.dht);
}

TEST(ChordFail, StabilizationRepairsTheRing) {
  TestNet t(40, {.id_bits = 24});
  auto ids = t.dht->live_ids();
  Rng rng(6);
  // Kill 8 random nodes abruptly.
  for (int k = 0; k < 8; ++k) {
    const auto live = t.dht->live_ids();
    t.dht->fail(t.dht->endpoint_of(live[rng.next_below(live.size())]));
  }
  EXPECT_EQ(t.dht->size(), 32u);
  for (int round = 0; round < 50; ++round) t.dht->stabilize_all();
  expect_steady_state(*t.dht);
  // Lookups still land on the correct surviving owner.
  for (int trial = 0; trial < 200; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const auto live = t.dht->live_ids();
    const RingId start = live[rng.next_below(live.size())];
    EXPECT_EQ(t.dht->lookup_now(start, key, "t").owner, t.dht->owner_of(key));
  }
}

TEST(ChordFail, SurvivesMajorityFailureWithStabilization) {
  TestNet t(32, {.successor_list_size = 16});
  Rng rng(7);
  for (int k = 0; k < 20; ++k) {
    const auto live = t.dht->live_ids();
    t.dht->fail(t.dht->endpoint_of(live[rng.next_below(live.size())]));
    t.dht->stabilize_all();
  }
  for (int round = 0; round < 40; ++round) t.dht->stabilize_all();
  expect_steady_state(*t.dht);
}

TEST(ChordFail, RoutingSurvivesUnrepairedFailures) {
  // Before any stabilization, fingers and successor entries still point at
  // dead nodes; next-hop selection must skip them (timeout modelling) and
  // reach the correct surviving owner via the successor list.
  TestNet t(64);
  Rng rng(9);
  for (int k = 0; k < 5; ++k) {
    const auto live = t.dht->live_ids();
    t.dht->fail(t.dht->endpoint_of(live[rng.next_below(live.size())]));
  }
  // NO stabilize_all() here.
  const auto ids = t.dht->live_ids();
  for (int trial = 0; trial < 300; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    EXPECT_EQ(t.dht->lookup_now(start, key, "t").owner, t.dht->owner_of(key));
  }
}

TEST(ChordKeyOf, DeterministicAndSaltDependent) {
  TestNet t(4);
  EXPECT_EQ(t.dht->key_of("obj", 1), t.dht->key_of("obj", 1));
  EXPECT_NE(t.dht->key_of("obj", 1), t.dht->key_of("obj", 2));
}

TEST(ChordConfig, RejectsBadParameters) {
  sim::EventQueue clock;
  sim::Network net(clock);
  EXPECT_THROW(ChordNetwork(net, {.id_bits = 0}), std::invalid_argument);
  EXPECT_THROW(ChordNetwork(net, {.id_bits = 65}), std::invalid_argument);
  EXPECT_THROW(ChordNetwork(net, {.successor_list_size = 0}),
               std::invalid_argument);
}

class ChordSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChordSizes, LookupCorrectAtEveryScale) {
  TestNet t(GetParam());
  Rng rng(8);
  const auto ids = t.dht->live_ids();
  for (int trial = 0; trial < 100; ++trial) {
    const RingId key = t.dht->space().clamp(rng.next_u64());
    const RingId start = ids[rng.next_below(ids.size())];
    EXPECT_EQ(t.dht->lookup_now(start, key, "t").owner, t.dht->owner_of(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ChordSizes,
                         ::testing::Values(1, 2, 3, 5, 17, 100, 513));

}  // namespace
}  // namespace hkws::dht
