#include "dht/dolr.hpp"

#include "dht/chord_network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace hkws::dht {
namespace {

struct DolrNet {
  sim::EventQueue clock;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<ChordNetwork> dht;
  std::unique_ptr<Dolr> dolr;

  explicit DolrNet(std::size_t n, Dolr::Config cfg = {},
                   ChordNetwork::Config dcfg = {}) {
    net = std::make_unique<sim::Network>(clock);
    dht = std::make_unique<ChordNetwork>(ChordNetwork::build(*net, n, dcfg));
    dolr = std::make_unique<Dolr>(*dht, cfg);
  }
};

TEST(Dolr, InsertPlacesReferenceAtOwner) {
  DolrNet t(20);
  std::optional<Dolr::InsertResult> result;
  t.dolr->insert(3, 42, [&](const auto& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->first_copy);
  EXPECT_EQ(result->owner, t.dht->owner_of(t.dolr->object_key(42)));
  EXPECT_EQ(t.dht->node(result->owner).refs_of(42),
            std::vector<sim::EndpointId>{3});
}

TEST(Dolr, SecondCopyIsNotFirst) {
  DolrNet t(20);
  t.dolr->insert(3, 42);
  t.clock.run();
  std::optional<Dolr::InsertResult> result;
  t.dolr->insert(4, 42, [&](const auto& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->first_copy);
  EXPECT_EQ(t.dht->node(result->owner).refs_of(42).size(), 2u);
}

TEST(Dolr, ReinsertingSameCopyIsIdempotent) {
  DolrNet t(10);
  t.dolr->insert(3, 42);
  t.clock.run();
  std::optional<Dolr::InsertResult> result;
  t.dolr->insert(3, 42, [&](const auto& r) { result = r; });
  t.clock.run();
  EXPECT_FALSE(result->first_copy);
  EXPECT_EQ(t.dht->node(result->owner).refs_of(42).size(), 1u);
}

TEST(Dolr, ReadReturnsAllHolders) {
  DolrNet t(20);
  t.dolr->insert(3, 7);
  t.dolr->insert(5, 7);
  t.clock.run();
  std::optional<Dolr::ReadResult> result;
  t.dolr->read(9, 7, [&](const auto& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->holders.size(), 2u);
}

TEST(Dolr, ReadUnknownObjectIsEmpty) {
  DolrNet t(20);
  std::optional<Dolr::ReadResult> result;
  t.dolr->read(1, 999, [&](const auto& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->holders.empty());
}

TEST(Dolr, RemoveReportsLastCopy) {
  DolrNet t(20);
  t.dolr->insert(3, 7);
  t.dolr->insert(5, 7);
  t.clock.run();
  std::optional<Dolr::DeleteResult> r1, r2;
  t.dolr->remove(3, 7, [&](const auto& r) { r1 = r; });
  t.clock.run();
  EXPECT_FALSE(r1->last_copy);
  t.dolr->remove(5, 7, [&](const auto& r) { r2 = r; });
  t.clock.run();
  EXPECT_TRUE(r2->last_copy);
  std::optional<Dolr::ReadResult> read;
  t.dolr->read(1, 7, [&](const auto& r) { read = r; });
  t.clock.run();
  EXPECT_TRUE(read->holders.empty());
}

TEST(Dolr, RemovingAbsentObjectIsNotLastCopy) {
  DolrNet t(10);
  std::optional<Dolr::DeleteResult> result;
  t.dolr->remove(3, 12345, [&](const auto& r) { result = r; });
  t.clock.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->last_copy);
}

TEST(Dolr, ReplicatesToSuccessors) {
  DolrNet t(20, {.replication_factor = 3});
  std::optional<Dolr::InsertResult> result;
  t.dolr->insert(3, 42, [&](const auto& r) { result = r; });
  t.clock.run();
  const ChordNode& owner = t.dht->node(result->owner);
  int replicas = 0;
  for (int i = 0; i < 2; ++i) {
    const RingId s = owner.successor_list()[static_cast<std::size_t>(i)];
    if (!t.dht->node(s).refs_of(42).empty()) ++replicas;
  }
  EXPECT_EQ(replicas, 2);
}

TEST(Dolr, RemovePropagatesToReplicas) {
  DolrNet t(20, {.replication_factor = 3});
  t.dolr->insert(3, 42);
  t.clock.run();
  t.dolr->remove(3, 42);
  t.clock.run();
  for (RingId id : t.dht->live_ids())
    EXPECT_TRUE(t.dht->node(id).refs_of(42).empty()) << "node " << id;
}

TEST(Dolr, ReferenceSurvivesOwnerFailureWithReplication) {
  DolrNet t(30, {.replication_factor = 3});
  std::optional<Dolr::InsertResult> ins;
  t.dolr->insert(3, 42, [&](const auto& r) { ins = r; });
  t.clock.run();
  const auto owner_ep = t.dht->endpoint_of(ins->owner);
  ASSERT_NE(owner_ep, 3u);  // publisher must survive for the read below
  t.dht->fail(owner_ep);
  for (int round = 0; round < 30; ++round) t.dht->stabilize_all();

  // The new owner of the key is the old first successor, which holds a
  // replica, so the reference is still readable.
  std::optional<Dolr::ReadResult> read;
  t.dolr->read(3, 42, [&](const auto& r) { read = r; });
  t.clock.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->holders, std::vector<sim::EndpointId>{3});
}

TEST(Dolr, RepairRestoresReplicationAfterFailure) {
  DolrNet t(30, {.replication_factor = 3});
  for (ObjectId o = 1; o <= 50; ++o) t.dolr->insert(1, o);
  t.clock.run();
  // Fail a third of the network, stabilize, repair.
  auto live = t.dht->live_ids();
  for (std::size_t i = 0; i < 10; ++i)
    t.dht->fail(t.dht->endpoint_of(live[i * 2 + 1]));
  for (int round = 0; round < 40; ++round) t.dht->stabilize_all();
  t.dolr->repair_replicas();
  t.clock.run();
  // Every object is still resolvable (some may have lost all replicas only
  // if owner + both replicas failed; with 1/3 failures that is possible but
  // rare — require at least 45 of 50 alive, and repair to have re-pushed).
  int alive = 0;
  const auto reader = t.dht->endpoint_of(t.dht->live_ids().front());
  for (ObjectId o = 1; o <= 50; ++o) {
    std::optional<Dolr::ReadResult> read;
    t.dolr->read(reader, o, [&](const auto& r) { read = r; });
    t.clock.run();
    if (read && !read->holders.empty()) ++alive;
  }
  EXPECT_GE(alive, 45);
}

TEST(Dolr, BudgetedRepairIsIdempotentAcrossSuccessiveFailures) {
  DolrNet t(30, {.replication_factor = 3});
  for (ObjectId o = 1; o <= 40; ++o) t.dolr->insert(1, o);
  t.clock.run();

  // The replication invariant: each object's reference sits at its owner
  // and the owner's (factor - 1) live successors.
  const auto fully_replicated = [&] {
    for (ObjectId o = 1; o <= 40; ++o) {
      const RingId owner = t.dht->owner_of(t.dolr->object_key(o));
      if (t.dht->node(owner).refs_of(o).empty()) return false;
      const auto& succ = t.dht->node(owner).successor_list();
      for (std::size_t i = 0; i + 1 < 3 && i < succ.size(); ++i)
        if (t.dht->node(succ[i]).refs_of(o).empty()) return false;
    }
    return true;
  };

  // One peer at a time, repairing to a fixpoint between failures: with
  // factor 3 no reference is ever lost, and each round must restore the
  // full factor again.
  for (int round = 0; round < 4; ++round) {
    sim::EndpointId victim = 0;
    for (RingId id : t.dht->live_ids())
      if (t.dht->endpoint_of(id) != 1) {
        victim = t.dht->endpoint_of(id);
        break;
      }
    ASSERT_NE(victim, 0u);
    t.dht->fail(victim);
    for (int s = 0; s < 30; ++s) t.dht->stabilize_all();

    int passes = 0;
    while (t.dolr->replication_backlog() > 0) {
      ASSERT_LT(passes++, 200) << "repair failed to converge, round " << round;
      t.dolr->repair_replicas(8);
      t.clock.run();
    }
    // Idempotent at the fixpoint: another call finds nothing to copy.
    EXPECT_EQ(t.dolr->repair_replicas(1000), 0u);
    t.clock.run();
    EXPECT_TRUE(fully_replicated()) << "round " << round;
  }
}

TEST(Dolr, RejectsBadReplicationFactor) {
  DolrNet t(5);
  EXPECT_THROW(Dolr(*t.dht, {.replication_factor = 0}), std::invalid_argument);
}

TEST(Dolr, ObjectKeyIsDeterministicAndSpread) {
  DolrNet t(5);
  EXPECT_EQ(t.dolr->object_key(1), t.dolr->object_key(1));
  // Consecutive object ids should scatter across the ring.
  std::uint64_t min_gap = ~0ULL;
  for (ObjectId o = 0; o < 100; ++o) {
    const auto a = t.dolr->object_key(o);
    const auto b = t.dolr->object_key(o + 1);
    min_gap = std::min(min_gap, a > b ? a - b : b - a);
  }
  EXPECT_GT(min_gap, 0u);
}

}  // namespace
}  // namespace hkws::dht
