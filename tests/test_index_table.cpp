#include "index/index_table.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hkws::index {
namespace {

TEST(IndexTable, AddAndExact) {
  IndexTable t;
  const KeywordSet k({"news", "tv"});
  EXPECT_TRUE(t.add(k, 1));
  EXPECT_TRUE(t.add(k, 2));
  EXPECT_FALSE(t.add(k, 1));  // duplicate
  EXPECT_EQ(t.exact(k), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(t.object_count(), 2u);
  EXPECT_EQ(t.entry_count(), 1u);  // combined entry <K, {1,2}>
}

TEST(IndexTable, ExactMissIsEmpty) {
  IndexTable t;
  t.add(KeywordSet({"a"}), 1);
  EXPECT_TRUE(t.exact(KeywordSet({"b"})).empty());
  EXPECT_TRUE(t.exact(KeywordSet({"a", "b"})).empty());
}

TEST(IndexTable, RemoveSemantics) {
  IndexTable t;
  const KeywordSet k({"x"});
  t.add(k, 1);
  t.add(k, 2);
  EXPECT_TRUE(t.remove(k, 1));
  EXPECT_FALSE(t.remove(k, 1));  // already gone
  EXPECT_FALSE(t.remove(KeywordSet({"y"}), 2));
  EXPECT_EQ(t.object_count(), 1u);
  EXPECT_TRUE(t.remove(k, 2));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.entry_count(), 0u);
}

TEST(IndexTable, SupersetsMatchesContainment) {
  IndexTable t;
  t.add(KeywordSet({"a", "b"}), 1);
  t.add(KeywordSet({"a", "b", "c"}), 2);
  t.add(KeywordSet({"a", "c"}), 3);
  t.add(KeywordSet({"b", "c"}), 4);

  const auto hits = t.supersets(KeywordSet({"a", "b"}));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].object, 1u);
  EXPECT_EQ(hits[1].object, 2u);
  EXPECT_EQ(hits[1].keywords, KeywordSet({"a", "b", "c"}));
}

TEST(IndexTable, SupersetsRespectsLimit) {
  IndexTable t;
  const KeywordSet k({"q"});
  for (ObjectId o = 1; o <= 10; ++o)
    t.add(KeywordSet({"q", "extra" + std::to_string(o)}), o);
  EXPECT_EQ(t.supersets(k).size(), 10u);
  EXPECT_EQ(t.supersets(k, 3).size(), 3u);
  EXPECT_EQ(t.supersets(k, 100).size(), 10u);
}

TEST(IndexTable, SupersetLimitCutsInsideAnEntry) {
  IndexTable t;
  const KeywordSet k({"q"});
  for (ObjectId o = 1; o <= 5; ++o) t.add(k, o);
  EXPECT_EQ(t.supersets(k, 2).size(), 2u);
}

TEST(IndexTable, ForEachSupersetEarlyStop) {
  IndexTable t;
  for (ObjectId o = 1; o <= 5; ++o)
    t.add(KeywordSet({"q", "x" + std::to_string(o)}), o);
  int calls = 0;
  t.for_each_superset(KeywordSet({"q"}),
                      [&](const KeywordSet&, const std::set<ObjectId>&) {
                        ++calls;
                        return calls < 2;
                      });
  EXPECT_EQ(calls, 2);
}

TEST(IndexTable, EmptyQueryMatchesEverything) {
  IndexTable t;
  t.add(KeywordSet({"a"}), 1);
  t.add(KeywordSet({"b"}), 2);
  EXPECT_EQ(t.supersets(KeywordSet{}).size(), 2u);
}

TEST(IndexTable, DisjointQueryMatchesNothing) {
  IndexTable t;
  t.add(KeywordSet({"a", "b"}), 1);
  EXPECT_TRUE(t.supersets(KeywordSet({"z"})).empty());
}

// Pins the deterministic hit order: entries are visited in keyword-set
// (std::map) order regardless of insertion order, and objects within an
// entry in ascending id order. Result batching, cumulative sessions and
// the torture oracle all rely on this exact sequence.
TEST(IndexTable, SupersetHitOrderIsKeywordSetOrder) {
  IndexTable t;
  t.add(KeywordSet({"q", "z"}), 9);
  t.add(KeywordSet({"a", "q"}), 4);
  t.add(KeywordSet({"a", "q"}), 3);
  t.add(KeywordSet({"m", "n", "q"}), 7);
  t.add(KeywordSet({"b", "q"}), 5);

  const auto hits = t.supersets(KeywordSet({"q"}));
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits[0].keywords, KeywordSet({"a", "q"}));
  EXPECT_EQ(hits[0].object, 3u);
  EXPECT_EQ(hits[1].keywords, KeywordSet({"a", "q"}));
  EXPECT_EQ(hits[1].object, 4u);
  EXPECT_EQ(hits[2].keywords, KeywordSet({"b", "q"}));
  EXPECT_EQ(hits[2].object, 5u);
  EXPECT_EQ(hits[3].keywords, KeywordSet({"m", "n", "q"}));
  EXPECT_EQ(hits[3].object, 7u);
  EXPECT_EQ(hits[4].keywords, KeywordSet({"q", "z"}));
  EXPECT_EQ(hits[4].object, 9u);
}

// The limit boundary in detail: cutting mid-entry keeps the prefix of the
// entry's object set, and the truncation flag reports the cut — including
// the silent case where the limit lands exactly on an entry boundary but
// matching objects remain beyond it.
TEST(IndexTable, SupersetLimitMidEntryBoundary) {
  IndexTable t;
  t.add(KeywordSet({"a", "q"}), 1);
  t.add(KeywordSet({"a", "q"}), 2);
  t.add(KeywordSet({"a", "q"}), 3);
  t.add(KeywordSet({"b", "q"}), 4);

  bool truncated = false;
  auto hits = t.supersets(KeywordSet({"q"}), 2, &truncated);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].object, 1u);
  EXPECT_EQ(hits[1].object, 2u);
  EXPECT_TRUE(truncated);  // cut inside <{a,q}, {1,2,3}>

  hits = t.supersets(KeywordSet({"q"}), 3, &truncated);
  EXPECT_EQ(hits.size(), 3u);
  EXPECT_TRUE(truncated);  // exact entry boundary, but {b,q} remains

  hits = t.supersets(KeywordSet({"q"}), 4, &truncated);
  EXPECT_EQ(hits.size(), 4u);
  EXPECT_FALSE(truncated);  // exactly everything

  hits = t.supersets(KeywordSet({"q"}), 0, &truncated);
  EXPECT_EQ(hits.size(), 4u);
  EXPECT_FALSE(truncated);  // no limit, nothing cut
}

// Differential check: the signature-indexed scan must produce the same
// (entry, objects) sequence as the retained linear reference scan, on a
// randomized table, across add/remove churn and query shapes.
TEST(IndexTable, SignatureScanMatchesLinearReference) {
  Rng rng(0x5eed5);
  const std::vector<std::string> vocab = {"a", "b", "c", "d", "e",
                                          "f", "g", "h", "i", "j"};
  IndexTable t;
  std::vector<std::pair<KeywordSet, ObjectId>> live;
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.next_double() < 0.7) {
      std::vector<Keyword> words;
      const std::size_t n = 1 + rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i)
        words.push_back(vocab[rng.next_below(vocab.size())]);
      const KeywordSet k(words);
      const auto object = static_cast<ObjectId>(rng.next_below(64));
      if (t.add(k, object)) live.emplace_back(k, object);
    } else {
      const std::size_t pick = rng.next_below(live.size());
      EXPECT_TRUE(t.remove(live[pick].first, live[pick].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    // Probe with a random query (sometimes empty, sometimes unindexed).
    std::vector<Keyword> qwords;
    const std::size_t qn = rng.next_below(4);
    for (std::size_t i = 0; i < qn; ++i)
      qwords.push_back(vocab[rng.next_below(vocab.size())]);
    if (rng.next_double() < 0.1) qwords.push_back("unseen");
    const KeywordSet query(qwords);

    std::vector<Hit> fast;
    t.for_each_superset(query, [&](const KeywordSet& k,
                                   const std::set<ObjectId>& objects) {
      for (ObjectId o : objects) fast.push_back(Hit{o, k});
      return true;
    });
    std::vector<Hit> ref;
    t.for_each_superset_linear(query, [&](const KeywordSet& k,
                                          const std::set<ObjectId>& objects) {
      for (ObjectId o : objects) ref.push_back(Hit{o, k});
      return true;
    });
    ASSERT_EQ(fast, ref) << "query=" << query.to_string();
  }
}

// The signature index must actually skip work: on a table where most
// entries don't contain the probe keyword, candidates examined stay far
// below what the linear scan would touch.
TEST(IndexTable, ScanStatsShowSublinearWork) {
  IndexTable t;
  for (ObjectId o = 0; o < 200; ++o)
    t.add(KeywordSet({"bulk" + std::to_string(o)}), o);
  t.add(KeywordSet({"rare", "x"}), 1000);
  t.add(KeywordSet({"rare", "y"}), 1001);

  t.reset_scan_stats();
  const auto hits = t.supersets(KeywordSet({"rare"}));
  EXPECT_EQ(hits.size(), 2u);
  const auto& s = t.scan_stats();
  EXPECT_EQ(s.scans, 1u);
  EXPECT_EQ(s.candidates, 2u);  // only the "rare" posting list
  EXPECT_EQ(s.matches, 2u);
  EXPECT_EQ(s.linear_equivalent, t.entry_count());
  EXPECT_LT(s.candidates, s.linear_equivalent);
}

}  // namespace
}  // namespace hkws::index
