#include "index/index_table.hpp"

#include <gtest/gtest.h>

namespace hkws::index {
namespace {

TEST(IndexTable, AddAndExact) {
  IndexTable t;
  const KeywordSet k({"news", "tv"});
  EXPECT_TRUE(t.add(k, 1));
  EXPECT_TRUE(t.add(k, 2));
  EXPECT_FALSE(t.add(k, 1));  // duplicate
  EXPECT_EQ(t.exact(k), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(t.object_count(), 2u);
  EXPECT_EQ(t.entry_count(), 1u);  // combined entry <K, {1,2}>
}

TEST(IndexTable, ExactMissIsEmpty) {
  IndexTable t;
  t.add(KeywordSet({"a"}), 1);
  EXPECT_TRUE(t.exact(KeywordSet({"b"})).empty());
  EXPECT_TRUE(t.exact(KeywordSet({"a", "b"})).empty());
}

TEST(IndexTable, RemoveSemantics) {
  IndexTable t;
  const KeywordSet k({"x"});
  t.add(k, 1);
  t.add(k, 2);
  EXPECT_TRUE(t.remove(k, 1));
  EXPECT_FALSE(t.remove(k, 1));  // already gone
  EXPECT_FALSE(t.remove(KeywordSet({"y"}), 2));
  EXPECT_EQ(t.object_count(), 1u);
  EXPECT_TRUE(t.remove(k, 2));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.entry_count(), 0u);
}

TEST(IndexTable, SupersetsMatchesContainment) {
  IndexTable t;
  t.add(KeywordSet({"a", "b"}), 1);
  t.add(KeywordSet({"a", "b", "c"}), 2);
  t.add(KeywordSet({"a", "c"}), 3);
  t.add(KeywordSet({"b", "c"}), 4);

  const auto hits = t.supersets(KeywordSet({"a", "b"}));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].object, 1u);
  EXPECT_EQ(hits[1].object, 2u);
  EXPECT_EQ(hits[1].keywords, KeywordSet({"a", "b", "c"}));
}

TEST(IndexTable, SupersetsRespectsLimit) {
  IndexTable t;
  const KeywordSet k({"q"});
  for (ObjectId o = 1; o <= 10; ++o)
    t.add(KeywordSet({"q", "extra" + std::to_string(o)}), o);
  EXPECT_EQ(t.supersets(k).size(), 10u);
  EXPECT_EQ(t.supersets(k, 3).size(), 3u);
  EXPECT_EQ(t.supersets(k, 100).size(), 10u);
}

TEST(IndexTable, SupersetLimitCutsInsideAnEntry) {
  IndexTable t;
  const KeywordSet k({"q"});
  for (ObjectId o = 1; o <= 5; ++o) t.add(k, o);
  EXPECT_EQ(t.supersets(k, 2).size(), 2u);
}

TEST(IndexTable, ForEachSupersetEarlyStop) {
  IndexTable t;
  for (ObjectId o = 1; o <= 5; ++o)
    t.add(KeywordSet({"q", "x" + std::to_string(o)}), o);
  int calls = 0;
  t.for_each_superset(KeywordSet({"q"}),
                      [&](const KeywordSet&, const std::set<ObjectId>&) {
                        ++calls;
                        return calls < 2;
                      });
  EXPECT_EQ(calls, 2);
}

TEST(IndexTable, EmptyQueryMatchesEverything) {
  IndexTable t;
  t.add(KeywordSet({"a"}), 1);
  t.add(KeywordSet({"b"}), 2);
  EXPECT_EQ(t.supersets(KeywordSet{}).size(), 2u);
}

TEST(IndexTable, DisjointQueryMatchesNothing) {
  IndexTable t;
  t.add(KeywordSet({"a", "b"}), 1);
  EXPECT_TRUE(t.supersets(KeywordSet({"z"})).empty());
}

}  // namespace
}  // namespace hkws::index
