// File-sharing scenario (the application the paper's intro motivates):
// peers publish media files described by keyword metadata, peers come and
// go (churn), and searches keep working thanks to reference replication,
// ring stabilization, and index repair. Also demonstrates the two ranking
// orders: general-objects-first vs specific-objects-first.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "index/overlay_index.hpp"
#include "index/ranking.hpp"

namespace {

using namespace hkws;

struct SharedFile {
  ObjectId id;
  std::string name;
  KeywordSet keywords;
};

std::vector<SharedFile> catalogue() {
  return {
      {1, "madonna-live.mp3", KeywordSet({"music", "mp3", "madonna", "live"})},
      {2, "madonna-hits.mp3", KeywordSet({"music", "mp3", "madonna"})},
      {3, "jazz-classics.flac", KeywordSet({"music", "flac", "jazz"})},
      {4, "concert-video.avi",
       KeywordSet({"video", "concert", "music", "live"})},
      {5, "lecture-dht.mp4", KeywordSet({"video", "lecture", "p2p", "dht"})},
      {6, "chord-paper.pdf", KeywordSet({"paper", "p2p", "dht", "chord"})},
      {7, "madonna-remix.mp3",
       KeywordSet({"music", "mp3", "madonna", "remix", "dance"})},
      {8, "dance-mix.mp3", KeywordSet({"music", "mp3", "dance"})},
  };
}

void print_hits(const char* label, const std::vector<index::Hit>& hits) {
  std::printf("%s\n", label);
  for (const auto& h : hits)
    std::printf("  #%llu [%s]\n", static_cast<unsigned long long>(h.object),
                h.keywords.to_string().c_str());
}

}  // namespace

int main() {
  sim::EventQueue clock;
  sim::Network net(clock);
  auto overlay_net = dht::ChordNetwork::build(net, 48, {});
  dht::Dolr dolr(overlay_net, {.replication_factor = 3});
  index::OverlayIndex index(dolr, {.r = 8});

  // Every file is shared by two peers (two references per object).
  for (const auto& f : catalogue()) {
    index.publish(1 + f.id, f.id, f.keywords);
    index.publish(20 + f.id, f.id, f.keywords);
  }
  clock.run();

  // A peer searches for madonna mp3s, general matches first.
  std::optional<index::SearchResult> result;
  const KeywordSet query({"music", "mp3", "madonna"});
  index.superset_search(3, query, 0,
                        index::SearchStrategy::kTopDownSequential,
                        [&](const index::SearchResult& r) { result = r; });
  clock.run();
  auto hits = result->hits;
  index::order_hits(hits, query, index::RankingPreference::kGeneralFirst);
  print_hits("\n{madonna,mp3,music} — general first:", hits);
  index::order_hits(hits, query, index::RankingPreference::kSpecificFirst);
  print_hits("{madonna,mp3,music} — specific first:", hits);

  // Churn: one seeder leaves gracefully, one peer fails abruptly, two new
  // peers join. The system repairs itself.
  std::printf("\n--- churn: leave(21), fail(22), join(101), join(102) ---\n");
  overlay_net.leave(21);
  overlay_net.fail(22);
  overlay_net.join(101, 1);
  overlay_net.join(102, 1);
  for (int round = 0; round < 40; ++round) overlay_net.stabilize_all();
  index.purge_dead();
  index.repair_placement();
  dolr.repair_replicas();
  clock.run();
  // Anti-entropy: surviving seeders re-assert their files' index entries.
  for (const auto& f : catalogue()) index.reindex(1 + f.id, f.id, f.keywords);
  clock.run();

  // The same search still answers in full after churn.
  result.reset();
  index.superset_search(3, query, 0,
                        index::SearchStrategy::kTopDownSequential,
                        [&](const index::SearchResult& r) { result = r; });
  clock.run();
  std::printf("after churn: %zu hits (complete=%s)\n", result->hits.size(),
              result->stats.complete ? "yes" : "no");

  // Downloads still resolve to live replica holders through the DOLR.
  dolr.read(3, 1, [](const dht::Dolr::ReadResult& r) {
    std::printf("madonna-live.mp3 held by %zu peer(s)\n", r.holders.size());
  });
  clock.run();

  std::printf("total network messages: %llu\n",
              static_cast<unsigned long long>(net.messages_sent()));
  return 0;
}
