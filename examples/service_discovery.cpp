// Service/resource discovery with attribute search (the paper's §5 target
// use case) over a *decomposed* index (§3.4): attributes fall into disjoint
// groups — service type, region, capability — each indexed by its own small
// hypercube, which keeps per-query search spaces tiny.
#include <cstdio>
#include <string>
#include <vector>

#include "index/decomposed.hpp"

namespace {

using namespace hkws;

// Attribute groups by prefix: "type:*" -> 0, "region:*" -> 1, rest -> 2.
std::size_t group_of(const Keyword& w) {
  if (w.rfind("type:", 0) == 0) return 0;
  if (w.rfind("region:", 0) == 0) return 1;
  return 2;
}

struct Service {
  ObjectId id;
  std::string name;
  KeywordSet attributes;
};

std::vector<Service> registry() {
  return {
      {1, "eu-transcoder",
       KeywordSet({"type:transcode", "region:eu", "h264", "gpu"})},
      {2, "us-transcoder",
       KeywordSet({"type:transcode", "region:us", "h264"})},
      {3, "eu-storage",
       KeywordSet({"type:storage", "region:eu", "ssd", "replicated"})},
      {4, "asia-storage", KeywordSet({"type:storage", "region:asia", "ssd"})},
      {5, "eu-compute",
       KeywordSet({"type:compute", "region:eu", "gpu", "x86"})},
      {6, "eu-compute-arm",
       KeywordSet({"type:compute", "region:eu", "arm"})},
      {7, "us-compute", KeywordSet({"type:compute", "region:us", "gpu"})},
  };
}

void run_query(index::DecomposedIndex& idx, const KeywordSet& query) {
  const auto result = idx.superset_search(query);
  std::printf("query [%s]: %zu services, %zu logical nodes contacted\n",
              query.to_string().c_str(), result.hits.size(),
              result.stats.nodes_contacted);
  for (const auto& h : result.hits)
    std::printf("  service #%llu  [%s]\n",
                static_cast<unsigned long long>(h.object),
                h.keywords.to_string().c_str());
}

}  // namespace

int main() {
  using namespace hkws;

  // Three groups: a tiny r=4 cube for type, r=4 for region, r=8 for
  // free-form capabilities.
  index::DecomposedIndex idx(
      {index::DecomposedIndex::GroupSpec{4}, index::DecomposedIndex::GroupSpec{4},
       index::DecomposedIndex::GroupSpec{8}},
      group_of);

  for (const auto& s : registry()) idx.insert(s.id, s.attributes);
  std::printf("registered %zu services across %zu attribute-group cubes\n\n",
              registry().size(), idx.group_count());

  // Single-group queries.
  run_query(idx, KeywordSet({"type:compute"}));
  run_query(idx, KeywordSet({"region:eu"}));
  // Cross-group conjunctions (answered by the most selective projection,
  // post-filtered against full attribute sets).
  run_query(idx, KeywordSet({"type:compute", "region:eu"}));
  run_query(idx, KeywordSet({"type:transcode", "region:eu", "gpu"}));
  // Capability-only query.
  run_query(idx, KeywordSet({"gpu"}));

  // Pin search: exact attribute set (deterministic 'is this exact service
  // registered?' check).
  const auto pin =
      idx.pin_search(KeywordSet({"type:compute", "region:eu", "arm"}));
  std::printf("\npin [arm,region:eu,type:compute]: %zu exact match(es)\n",
              pin.hits.size());

  // A service deregisters; queries reflect it immediately.
  idx.remove(5, registry()[4].attributes);
  std::printf("\nafter deregistering eu-compute:\n");
  run_query(idx, KeywordSet({"type:compute", "region:eu"}));
  return 0;
}
