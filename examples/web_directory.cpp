// Web-directory scenario — the paper's own evaluation setting: a
// PCHome-like corpus of website records indexed by keyword metadata, a
// skewed daily query log, cumulative result browsing ("next page"), and
// query refinement from extra-keyword samples.
#include <cstdio>
#include <string>

#include "index/logical_index.hpp"
#include "index/ranking.hpp"
#include "workload/corpus_generator.hpp"
#include "workload/corpus_io.hpp"
#include "workload/query_generator.hpp"

int main() {
  using namespace hkws;

  // A scaled-down directory (the full 131k-record experiments live in
  // bench/); same distributions as the paper's data.
  workload::CorpusConfig ccfg;
  ccfg.object_count = 30000;
  workload::Corpus corpus = workload::CorpusGenerator(ccfg).generate();
  std::printf("directory: %zu records, %.1f keywords/record, %zu distinct "
              "keywords\n",
              corpus.size(), corpus.mean_keywords(), corpus.vocabulary_size());

  // Index it in an r=10 hypercube with a small per-node query cache.
  index::LogicalIndex idx({.r = 10, .cache_capacity = 21});
  for (const auto& rec : corpus.records()) idx.insert(rec.id, rec.keywords);

  // A popular query from the daily log.
  workload::QueryLogConfig qcfg;
  qcfg.query_count = 2000;
  qcfg.distinct_queries = 400;
  workload::QueryLogGenerator queries(corpus, qcfg);
  const KeywordSet query = queries.universe().front();
  std::printf("\nuser searches for [%s]\n", query.to_string().c_str());

  // Browse results page by page (cumulative superset search: the root
  // keeps the traversal queue between pages, §3.3).
  auto session = idx.begin_cumulative(query);
  for (int page = 1; page <= 3 && !session.exhausted(); ++page) {
    const auto batch = session.next(5);
    if (batch.hits.empty()) break;
    std::printf("-- page %d (%zu nodes contacted) --\n", page,
                batch.stats.nodes_contacted);
    for (const auto& h : batch.hits) {
      const auto& rec = corpus[static_cast<std::size_t>(h.object - 1)];
      std::printf("  %-10s %-28s [%s]\n", rec.title.c_str(), rec.url.c_str(),
                  h.keywords.to_string().c_str());
    }
  }

  // Offer refinements based on the extra keywords of the full result set.
  const auto full = idx.superset_search(query);
  std::printf("\n%zu total matches; refinements:\n", full.hits.size());
  for (const auto& s : index::sample_refinements(full.hits, query, 1, 5))
    std::printf("  +[%s] -> %zu matches\n", s.extra.to_string().c_str(),
                s.category_size);

  // Repeating the query hits the root's cache: far fewer nodes contacted.
  const auto cold_nodes = full.stats.nodes_contacted;
  const auto warm = idx.superset_search(query);
  std::printf("\nrepeat query: %zu nodes contacted (first time: %zu, "
              "cache hit: %s)\n",
              warm.stats.nodes_contacted, cold_nodes,
              warm.stats.cache_hit ? "yes" : "no");

  // The directory can be exported and re-imported as TSV, so these
  // experiments can also run on a real data set (see workload/corpus_io.hpp
  // for the format).
  const std::string tsv = "/tmp/hyperkws_directory.tsv";
  workload::save_corpus_tsv(corpus, tsv);
  const auto reloaded = workload::load_corpus_tsv(tsv);
  std::printf("\nexported and re-imported %zu records via %s\n",
              reloaded.size(), tsv.c_str());

  // Replay a day's worth of queries and report the cache's effect.
  const auto log = queries.generate();
  std::size_t contacted = 0;
  for (const auto& q : log.queries())
    contacted += idx.superset_search(q.keywords, 20).stats.nodes_contacted;
  const auto stats = idx.cache_stats();
  std::printf("\nreplayed %zu queries: avg %.1f nodes/query, cache hit rate "
              "%.1f%%\n",
              log.size(),
              static_cast<double>(contacted) /
                  static_cast<double>(log.size()),
              100.0 * static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses));
  return 0;
}
