// Document retrieval over the keyword-search layer (one of the paper's
// Fig. 2 application layers): free-text snippets are tokenized into
// keyword sets (workload/text.hpp) and served through the high-level
// KeywordSearchService facade — publish, ranked search with refinement
// advice, browse, resolve.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "dht/chord_network.hpp"
#include "index/service.hpp"
#include "workload/text.hpp"

namespace {

using namespace hkws;

struct Document {
  ObjectId id;
  const char* title;
  const char* body;
};

std::vector<Document> library() {
  return {
      {1, "Chord",
       "Chord: a scalable peer-to-peer lookup service for internet "
       "applications, using consistent hashing on a ring."},
      {2, "Pastry",
       "Pastry: scalable, decentralized object location and routing for "
       "large-scale peer-to-peer systems with prefix routing."},
      {3, "CAN",
       "A scalable content-addressable network partitions a d-dimensional "
       "torus among peers."},
      {4, "HyperCuP",
       "HyperCuP: hypercubes, ontologies and efficient search on "
       "peer-to-peer networks."},
      {5, "Inverted index survey",
       "Inverted index structures for keyword search in information "
       "retrieval systems."},
      {6, "This paper",
       "Keyword search in DHT-based peer-to-peer networks with a hypercube "
       "index over keyword sets."},
  };
}

}  // namespace

int main() {
  sim::EventQueue clock;
  sim::Network net(clock);
  auto overlay = dht::ChordNetwork::build(net, 32, {});
  index::KeywordSearchService service(
      overlay, {.r = 8, .replication_factor = 2});

  // Publish each document under the keyword set of its title + body.
  for (const auto& doc : library()) {
    const KeywordSet keywords = workload::keywords_from_text(
        std::string(doc.title) + " " + doc.body);
    std::printf("indexing #%llu %-22s [%s]\n",
                static_cast<unsigned long long>(doc.id), doc.title,
                keywords.to_string().c_str());
    service.publish(1 + doc.id % 32, doc.id, keywords);
  }
  clock.run();

  // A ranked search with refinement advice.
  const KeywordSet query = workload::keywords_from_text("peer-to-peer search");
  index::KeywordSearchService::SearchOptions opts;
  opts.order = index::RankingPreference::kGeneralFirst;
  opts.refinement_categories = 4;
  opts.suggest_expansion = true;
  std::optional<index::KeywordSearchService::Answer> answer;
  service.search(5, query, opts,
                 [&](const index::KeywordSearchService::Answer& a) {
                   answer = a;
                 });
  clock.run();

  std::printf("\nquery [%s]: %zu documents (%zu nodes contacted)\n",
              query.to_string().c_str(), answer->hits.size(),
              answer->stats.nodes_contacted);
  for (const auto& h : answer->hits)
    std::printf("  doc #%llu (+%zu extra keywords)\n",
                static_cast<unsigned long long>(h.object),
                h.keywords.size() - query.size());
  for (const auto& r : answer->refinements)
    std::printf("  refine: +[%s] (%zu docs)\n", r.extra.to_string().c_str(),
                r.category_size);
  if (answer->expansion)
    std::printf("  suggested narrower query: [%s]\n",
                answer->expansion->to_string().c_str());

  // Resolve a hit to its replica holders (the download step).
  service.resolve(5, answer->hits.front().object,
                  [](const dht::Dolr::ReadResult& r) {
                    std::printf("\ntop document held by %zu peer(s), %d "
                                "routing hops to resolve\n",
                                r.holders.size(), r.hops);
                  });
  clock.run();
  return 0;
}
