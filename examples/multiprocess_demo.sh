#!/usr/bin/env bash
# Multi-process keyword-search demo — and the CI smoke test for the
# real-process runtime.
#
# Launches SHARDS peerd processes (each a complete Chord+DOLR+hypercube
# cluster over real loopback sockets, holding one slice of the seeded demo
# corpus), then runs the peerd query front-end against all of them: one
# superset query scattered over inter-process TCP as fe.query wire frames,
# gathered, merged, and — with --check — verified object-for-object against
# an in-process LogicalIndex over the full corpus. Any mismatch, protocol
# error, or unreachable shard exits nonzero.
#
# Usage: multiprocess_demo.sh /path/to/peerd [shards]
set -euo pipefail

PEERD=${1:?usage: multiprocess_demo.sh /path/to/peerd [shards]}
SHARDS=${2:-3}
WORKDIR=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== launching $SHARDS shard processes =="
for ((i = 0; i < SHARDS; i++)); do
  "$PEERD" serve --shard "$i" --shards "$SHARDS" >"$WORKDIR/shard$i.log" 2>&1 &
  PIDS+=($!)
done

# Each shard prints PORT=<n> once its cluster has settled and the front-end
# listener is up.
PORTS=""
for ((i = 0; i < SHARDS; i++)); do
  for ((t = 0; t < 300; t++)); do
    if port=$(grep -o 'PORT=[0-9]*' "$WORKDIR/shard$i.log" 2>/dev/null); then
      break
    fi
    if ! kill -0 "${PIDS[$i]}" 2>/dev/null; then
      echo "shard $i died during startup:" >&2
      cat "$WORKDIR/shard$i.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  port=${port#PORT=}
  if [[ -z "${port:-}" ]]; then
    echo "shard $i never announced its port" >&2
    exit 1
  fi
  echo "  shard $i ready on port $port"
  PORTS="$PORTS${PORTS:+,}$port"
done

echo "== querying all shards =="
# Three queries across strategies; --check asserts each distributed answer
# equals the LogicalIndex ground truth, end to end.
"$PEERD" query --ports "$PORTS" --shards "$SHARDS" --check -- w3
"$PEERD" query --ports "$PORTS" --shards "$SHARDS" --check \
  --strategy level-parallel -- w1 w4
"$PEERD" query --ports "$PORTS" --shards "$SHARDS" --check \
  --strategy bottom-up -- w0
echo "== demo ok =="
