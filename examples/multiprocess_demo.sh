#!/usr/bin/env bash
# Multi-process keyword-search demo — and the CI smoke test for the
# real-process runtime.
#
# Launches SHARDS peerd processes (each a complete Chord+DOLR+hypercube
# cluster over real loopback sockets, holding one slice of the seeded demo
# corpus), then runs the peerd query front-end against all of them: one
# superset query scattered over inter-process TCP as fe.query wire frames,
# gathered, merged, and — with --check — verified object-for-object against
# an in-process LogicalIndex over the full corpus. Any mismatch, protocol
# error, or unreachable shard exits nonzero.
#
# With --restart the script additionally exercises the crash-restart path:
# shard 0 is killed outright (SIGKILL, no drain), relaunched with the same
# flags, re-derives and re-publishes its seeded corpus slice, announces a
# fresh port — and every query answer must be byte-for-byte identical to the
# pre-crash run. Finally a SIGTERM to shard 0 must produce a graceful drain
# (DRAIN=clean in its log).
#
# Usage: multiprocess_demo.sh /path/to/peerd [shards] [--restart]
set -euo pipefail

PEERD=${1:?usage: multiprocess_demo.sh /path/to/peerd [shards] [--restart]}
SHARDS=${2:-3}
RESTART=0
[[ "${3:-}" == "--restart" ]] && RESTART=1
WORKDIR=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Polls a shard's log for its PORT=<n> announcement (printed once the
# cluster has settled and the front-end listener is up).
wait_port() { # shard-index log-file pid -> sets PORT
  local i=$1 log=$2 pid=$3 t port=""
  for ((t = 0; t < 300; t++)); do
    if port=$(grep -o 'PORT=[0-9]*' "$log" 2>/dev/null); then
      break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "shard $i died during startup:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  port=${port#PORT=}
  if [[ -z "${port:-}" ]]; then
    echo "shard $i never announced its port" >&2
    exit 1
  fi
  PORT=$port
}

echo "== launching $SHARDS shard processes =="
for ((i = 0; i < SHARDS; i++)); do
  "$PEERD" serve --shard "$i" --shards "$SHARDS" >"$WORKDIR/shard$i.log" 2>&1 &
  PIDS+=($!)
done

PORTS=""
SHARD_PORTS=()
for ((i = 0; i < SHARDS; i++)); do
  wait_port "$i" "$WORKDIR/shard$i.log" "${PIDS[$i]}"
  echo "  shard $i ready on port $PORT"
  SHARD_PORTS+=("$PORT")
  PORTS="$PORTS${PORTS:+,}$PORT"
done

# Three queries across strategies; --check asserts each distributed answer
# equals the LogicalIndex ground truth, end to end.
run_queries() { # output-file
  {
    "$PEERD" query --ports "$PORTS" --shards "$SHARDS" --check -- w3
    "$PEERD" query --ports "$PORTS" --shards "$SHARDS" --check \
      --strategy level-parallel -- w1 w4
    "$PEERD" query --ports "$PORTS" --shards "$SHARDS" --check \
      --strategy bottom-up -- w0
  } | tee "$1"
}

echo "== querying all shards =="
run_queries "$WORKDIR/answers.before"

if [[ "$RESTART" == 1 ]]; then
  echo "== crash-restarting shard 0 (SIGKILL, no drain) =="
  kill -9 "${PIDS[0]}" 2>/dev/null || true
  wait "${PIDS[0]}" 2>/dev/null || true
  "$PEERD" serve --shard 0 --shards "$SHARDS" \
    >"$WORKDIR/shard0.restart.log" 2>&1 &
  PIDS[0]=$!
  wait_port 0 "$WORKDIR/shard0.restart.log" "${PIDS[0]}"
  echo "  shard 0 back on port $PORT"
  SHARD_PORTS[0]=$PORT
  PORTS=$(IFS=,; echo "${SHARD_PORTS[*]}")

  echo "== re-querying after restart =="
  run_queries "$WORKDIR/answers.after"
  # The corpus is seeded, so the restarted shard must reproduce its slice
  # exactly: every hit line byte-for-byte identical to the pre-crash run.
  # Only the messages= statistic is masked — protocol message counts depend
  # on cache/replication state the surviving shards warmed up, not on what
  # the answers contain.
  if ! diff -u <(sed 's/messages=[0-9]*/messages=_/' "$WORKDIR/answers.before") \
              <(sed 's/messages=[0-9]*/messages=_/' "$WORKDIR/answers.after"); then
    echo "restart changed the answers" >&2
    exit 1
  fi
  echo "  answers identical across the restart"

  echo "== graceful stop (SIGTERM) of shard 0 =="
  kill -TERM "${PIDS[0]}" 2>/dev/null || true
  for ((t = 0; t < 100; t++)); do
    kill -0 "${PIDS[0]}" 2>/dev/null || break
    sleep 0.1
  done
  if ! grep -q 'DRAIN=clean' "$WORKDIR/shard0.restart.log"; then
    echo "shard 0 did not drain cleanly on SIGTERM:" >&2
    cat "$WORKDIR/shard0.restart.log" >&2
    exit 1
  fi
  echo "  shard 0 drained cleanly"
fi

echo "== demo ok =="
