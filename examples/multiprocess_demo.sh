#!/usr/bin/env bash
# Multi-process keyword-search demo — and the CI smoke test for the
# real-process runtime.
#
# Launches SHARDS peerd processes (each a complete Chord+DOLR+hypercube
# cluster over real loopback sockets, holding one slice of the seeded demo
# corpus), then runs the peerd query front-end against all of them: one
# superset query scattered over inter-process TCP as fe.query wire frames,
# gathered, merged, and — with --check — verified object-for-object against
# an in-process LogicalIndex over the full corpus. Any mismatch, protocol
# error, or unreachable shard exits nonzero.
#
# With --restart the script additionally exercises the crash-restart path:
# shard 0 is killed outright (SIGKILL, no drain), relaunched with the same
# flags, re-derives and re-publishes its seeded corpus slice, announces a
# fresh port — and every query answer must be byte-for-byte identical to the
# pre-crash run. Finally a SIGTERM to shard 0 must produce a graceful drain
# (DRAIN=clean in its log).
#
# With --split the script instead runs the split-overlay deployment: PROCS
# `peerd peer` processes sharing ONE overlay (each owns a slice of its
# peers, every cross-slice protocol step crosses a real process boundary),
# rendezvousing through a mesh directory. Queries go to rank 0's front-end
# and are --check-verified against LogicalIndex ground truth. With
# `--split N udp RATE` the mesh runs over UDP datagrams with seeded loss,
# recovered by per-step retransmission — the answers must still be exact.
#
# Usage: multiprocess_demo.sh /path/to/peerd [shards] [--restart]
#        multiprocess_demo.sh /path/to/peerd --split [procs] [tcp|udp] [drop]
set -euo pipefail

PEERD=${1:?usage: multiprocess_demo.sh /path/to/peerd [shards|--split] ...}
SPLIT=0
if [[ "${2:-}" == "--split" ]]; then
  SPLIT=1
  PROCS=${3:-3}
  TRANSPORT=${4:-tcp}
  DROP=${5:-0}
fi
SHARDS=${2:-3}
RESTART=0
[[ "${3:-}" == "--restart" ]] && RESTART=1
WORKDIR=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Polls a shard's log for its PORT=<n> announcement (printed once the
# cluster has settled and the front-end listener is up).
wait_port() { # shard-index log-file pid -> sets PORT
  local i=$1 log=$2 pid=$3 t port=""
  for ((t = 0; t < 300; t++)); do
    if port=$(grep -om1 '^PORT=[0-9]*' "$log" 2>/dev/null); then
      break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "shard $i died during startup:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  port=${port#PORT=}
  if [[ -z "${port:-}" ]]; then
    echo "shard $i never announced its port" >&2
    exit 1
  fi
  PORT=$port
}

if [[ "$SPLIT" == 1 ]]; then
  # --- split-overlay mode: PROCS processes, ONE overlay --------------------
  MESH="$WORKDIR/mesh"
  mkdir -p "$MESH"
  echo "== launching $PROCS split-overlay peers (transport=$TRANSPORT drop=$DROP) =="
  for ((i = PROCS - 1; i >= 0; i--)); do
    "$PEERD" peer --rank "$i" --procs "$PROCS" --mesh-dir "$MESH" \
      --transport "$TRANSPORT" --drop "$DROP" \
      >"$WORKDIR/rank$i.log" 2>&1 &
    PIDS+=($!)
  done
  # PIDS[k] is rank PROCS-1-k; rank 0 (the front-end) was launched last.
  RANK0_PID=${PIDS[$((PROCS - 1))]}
  wait_port 0 "$WORKDIR/rank0.log" "$RANK0_PID"
  echo "  rank 0 front-end on port $PORT (corpus settled)"

  echo "== querying the split overlay =="
  "$PEERD" query --ports "$PORT" --check -- w3
  "$PEERD" query --ports "$PORT" --check --threshold 2 -- w1 w4
  "$PEERD" query --ports "$PORT" --check -- w0

  echo "== graceful stop (SIGTERM) of all ranks =="
  for pid in "${PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
  for ((i = 0; i < PROCS; i++)); do
    if ! grep -q 'DRAIN=clean' "$WORKDIR/rank$i.log"; then
      echo "rank $i did not drain cleanly:" >&2
      cat "$WORKDIR/rank$i.log" >&2
      exit 1
    fi
  done
  echo "  all ranks drained cleanly"
  echo "== split demo ok =="
  exit 0
fi

echo "== launching $SHARDS shard processes =="
for ((i = 0; i < SHARDS; i++)); do
  "$PEERD" serve --shard "$i" --shards "$SHARDS" >"$WORKDIR/shard$i.log" 2>&1 &
  PIDS+=($!)
done

PORTS=""
SHARD_PORTS=()
for ((i = 0; i < SHARDS; i++)); do
  wait_port "$i" "$WORKDIR/shard$i.log" "${PIDS[$i]}"
  echo "  shard $i ready on port $PORT"
  SHARD_PORTS+=("$PORT")
  PORTS="$PORTS${PORTS:+,}$PORT"
done

# Three queries across strategies; --check asserts each distributed answer
# equals the LogicalIndex ground truth, end to end.
run_queries() { # output-file
  {
    "$PEERD" query --ports "$PORTS" --shards "$SHARDS" --check -- w3
    "$PEERD" query --ports "$PORTS" --shards "$SHARDS" --check \
      --strategy level-parallel -- w1 w4
    "$PEERD" query --ports "$PORTS" --shards "$SHARDS" --check \
      --strategy bottom-up -- w0
  } | tee "$1"
}

echo "== querying all shards =="
run_queries "$WORKDIR/answers.before"

if [[ "$RESTART" == 1 ]]; then
  echo "== crash-restarting shard 0 (SIGKILL, no drain) =="
  kill -9 "${PIDS[0]}" 2>/dev/null || true
  wait "${PIDS[0]}" 2>/dev/null || true
  "$PEERD" serve --shard 0 --shards "$SHARDS" \
    >"$WORKDIR/shard0.restart.log" 2>&1 &
  PIDS[0]=$!
  wait_port 0 "$WORKDIR/shard0.restart.log" "${PIDS[0]}"
  echo "  shard 0 back on port $PORT"
  SHARD_PORTS[0]=$PORT
  PORTS=$(IFS=,; echo "${SHARD_PORTS[*]}")

  echo "== re-querying after restart =="
  run_queries "$WORKDIR/answers.after"
  # The corpus is seeded, so the restarted shard must reproduce its slice
  # exactly: every hit line byte-for-byte identical to the pre-crash run.
  # Only the messages= statistic is masked — protocol message counts depend
  # on cache/replication state the surviving shards warmed up, not on what
  # the answers contain.
  if ! diff -u <(sed 's/messages=[0-9]*/messages=_/' "$WORKDIR/answers.before") \
              <(sed 's/messages=[0-9]*/messages=_/' "$WORKDIR/answers.after"); then
    echo "restart changed the answers" >&2
    exit 1
  fi
  echo "  answers identical across the restart"

  echo "== graceful stop (SIGTERM) of shard 0 =="
  kill -TERM "${PIDS[0]}" 2>/dev/null || true
  for ((t = 0; t < 100; t++)); do
    kill -0 "${PIDS[0]}" 2>/dev/null || break
    sleep 0.1
  done
  if ! grep -q 'DRAIN=clean' "$WORKDIR/shard0.restart.log"; then
    echo "shard 0 did not drain cleanly on SIGTERM:" >&2
    cat "$WORKDIR/shard0.restart.log" >&2
    exit 1
  fi
  echo "  shard 0 drained cleanly"
fi

echo "== demo ok =="
