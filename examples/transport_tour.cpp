// Transport tour: the same application logic on three deployment
// substrates (paper §2.1/§3.2) — a Chord-style DHT, a Pastry-style DHT, and
// a physical HyperCuP hypercube — plus the mirrored (secondary-hypercube,
// §3.4) configuration. The keyword-search semantics are identical
// everywhere; only cost profiles differ.
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "cubenet/hypercup_index.hpp"
#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "dht/pastry_network.hpp"
#include "index/mirrored.hpp"
#include "index/overlay_index.hpp"

namespace {

using namespace hkws;

struct Item {
  ObjectId id;
  KeywordSet keywords;
};

std::vector<Item> library() {
  return {
      {1, KeywordSet({"p2p", "dht", "chord"})},
      {2, KeywordSet({"p2p", "dht", "pastry"})},
      {3, KeywordSet({"p2p", "hypercube", "search"})},
      {4, KeywordSet({"p2p", "dht", "keyword", "search"})},
      {5, KeywordSet({"database", "btree"})},
  };
}

void report(const char* name, const index::SearchResult& r,
            std::uint64_t wire_messages) {
  std::printf("%-22s %zu hits, %zu cube nodes, %llu wire messages\n", name,
              r.hits.size(), r.stats.nodes_contacted,
              static_cast<unsigned long long>(wire_messages));
}

template <typename OverlayT>
void run_dht(const char* name) {
  sim::EventQueue clock;
  sim::Network net(clock);
  auto overlay = OverlayT::build(net, 32, {});
  dht::Dolr dolr(overlay);
  index::OverlayIndex index(dolr, {.r = 6});
  for (const auto& item : library())
    index.publish(1 + item.id % 32, item.id, item.keywords);
  clock.run();

  const auto before = net.messages_sent();
  std::optional<index::SearchResult> result;
  index.superset_search(1, KeywordSet({"p2p", "dht"}), 0,
                        index::SearchStrategy::kTopDownSequential,
                        [&](const index::SearchResult& r) { result = r; });
  clock.run();
  report(name, *result, net.messages_sent() - before);
}

}  // namespace

int main() {
  std::printf("query [dht,p2p] over %zu published objects\n\n",
              library().size());

  run_dht<dht::ChordNetwork>("Chord DHT");
  run_dht<dht::PastryNetwork>("Pastry DHT");

  {  // Physical hypercube: peers ARE the 2^6 cube nodes.
    sim::EventQueue clock;
    sim::Network net(clock);
    cubenet::HyperCupNetwork cup(net, {.r = 6});
    cubenet::HyperCupIndex index(cup, {});
    for (const auto& item : library())
      index.insert(item.id % cup.size(), item.id, item.keywords);
    clock.run();
    const auto before = net.messages_sent();
    std::optional<index::SearchResult> result;
    index.superset_search(0, KeywordSet({"p2p", "dht"}), 0,
                          [&](const index::SearchResult& r) { result = r; });
    clock.run();
    report("HyperCuP (physical)", *result, net.messages_sent() - before);
  }

  {  // Mirrored index over Chord: secondary hypercube for fault tolerance.
    sim::EventQueue clock;
    sim::Network net(clock);
    auto chord = dht::ChordNetwork::build(net, 32, {});
    dht::Dolr dolr(chord);
    index::MirroredIndex index(dolr, {.r = 6});
    for (const auto& item : library())
      index.publish(1 + item.id % 32, item.id, item.keywords);
    clock.run();
    const auto before = net.messages_sent();
    std::optional<index::SearchResult> result;
    index.superset_search(1, KeywordSet({"p2p", "dht"}), 0,
                          index::SearchStrategy::kTopDownSequential,
                          [&](const index::SearchResult& r) { result = r; });
    clock.run();
    report("Mirrored over Chord", *result, net.messages_sent() - before);
  }

  std::printf(
      "\nSame hits everywhere; HyperCuP pays tree-edge messages, the DHTs\n"
      "pay routing hops, and the mirror roughly doubles cost for index\n"
      "fault tolerance.\n");
  return 0;
}
