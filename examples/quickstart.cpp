// Quickstart: stand up a simulated P2P network, publish a few objects with
// keyword metadata, and run pin and superset searches through the full
// stack (Chord overlay -> DOLR -> hypercube keyword index).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <optional>

#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "index/overlay_index.hpp"
#include "index/ranking.hpp"

int main() {
  using namespace hkws;

  // 1. A 32-peer overlay on a simulated network.
  sim::EventQueue clock;
  sim::Network net(clock);
  auto overlay_net = dht::ChordNetwork::build(net, 32, {});
  dht::Dolr dolr(overlay_net, {.replication_factor = 2});

  // 2. The keyword-search layer: an r=8 hypercube mapped onto the peers.
  index::OverlayIndex index(dolr, {.r = 8, .cache_capacity = 32});

  // 3. Peers publish objects (paper Table 1 flavour). The reference goes to
  //    the DOLR; the first copy also creates the keyword index entry.
  struct Item {
    ObjectId id;
    const char* what;
    KeywordSet keywords;
  };
  const Item items[] = {
      {11, "Hinet (ISP portal)",
       KeywordSet({"isp", "telecommunication", "network", "download"})},
      {12, "TVBS News", KeywordSet({"tvbs", "news"})},
      {13, "Taiwan News Network", KeywordSet({"news", "network"})},
      {14, "Game mirror", KeywordSet({"download", "games"})},
      {15, "Another TVBS mirror", KeywordSet({"tvbs", "news"})},
  };
  for (const auto& item : items) {
    index.publish(/*publisher peer=*/1 + item.id % 32, item.id, item.keywords,
                  [&](const index::OverlayIndex::PublishResult& r) {
                    std::printf("published %llu (%s): indexed=%s, hops=%d+%d\n",
                                static_cast<unsigned long long>(item.id),
                                item.what, r.indexed ? "yes" : "no",
                                r.dolr_hops, r.index_hops);
                  });
  }
  clock.run();  // drive the simulation until idle

  // 4. Pin search: exact keyword set, one lookup (paper §3.5).
  index.pin_search(7, KeywordSet({"tvbs", "news"}),
                   [](const index::SearchResult& r) {
                     std::printf("\npin search {news,tvbs}: %zu objects, "
                                 "%zu messages\n",
                                 r.hits.size(), r.stats.messages);
                     for (const auto& h : r.hits)
                       std::printf("  object %llu\n",
                                   static_cast<unsigned long long>(h.object));
                   });
  clock.run();

  // 5. Superset search: everything describable by {news}, general first.
  index.superset_search(
      7, KeywordSet({"news"}), /*threshold=*/0,
      index::SearchStrategy::kTopDownSequential,
      [](const index::SearchResult& r) {
        std::printf("\nsuperset search {news}: %zu objects, %zu hypercube "
                    "nodes contacted, %zu messages\n",
                    r.hits.size(), r.stats.nodes_contacted, r.stats.messages);
        for (const auto& h : r.hits)
          std::printf("  object %llu  keywords [%s]\n",
                      static_cast<unsigned long long>(h.object),
                      h.keywords.to_string().c_str());
        // Refinement suggestions from the extra keywords (paper §1).
        for (const auto& s :
             index::sample_refinements(r.hits, KeywordSet({"news"}), 2))
          std::printf("  refine with +[%s] (%zu objects)\n",
                      s.extra.to_string().c_str(), s.category_size);
      });
  clock.run();

  // 6. Resolve an object to its replica holders through the DOLR.
  dolr.read(7, 12, [](const dht::Dolr::ReadResult& r) {
    std::printf("\nobject 12 replicas at peers:");
    for (auto ep : r.holders)
      std::printf(" %llu", static_cast<unsigned long long>(ep));
    std::printf(" (%d routing hops)\n", r.hops);
  });
  clock.run();

  std::printf("\nnetwork totals: %llu messages\n",
              static_cast<unsigned long long>(net.messages_sent()));
  return 0;
}
