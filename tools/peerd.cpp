// peerd — the keyword-search cluster as real processes.
//
// Two subcommands, one binary:
//
//   peerd serve --shard I --shards N [--peers P] [--objects M] [--seed S]
//     Hosts one *shard* of the demo corpus: a complete Chord+DOLR+hypercube
//     cluster of P peers running over its own net::TcpTransport (real
//     loopback sockets, real threads), holding every corpus object whose id
//     maps to shard I. Listens on an ephemeral front-end TCP port — printed
//     as "PORT=<n>" on stdout — and answers fe.query wire frames
//     (net/wire.hpp) with fe.reply frames carrying the shard's
//     deterministic hit sequence.
//
//   peerd query --ports P1,P2,... [--threshold T] [--strategy name]
//               [--check] [--seed S] [--objects M] [--shards N] -- kw...
//     The front-end: scatters one superset query to every shard process,
//     gathers the fe.reply frames, merges hits in shard order, and prints
//     them. With --check it recomputes the expected answer with an
//     in-process LogicalIndex over the full corpus and exits nonzero unless
//     the distributed answer matches object-for-object, keywords and all —
//     the end-to-end assertion examples/multiprocess_demo.sh runs in CI.
//
//   peerd peer --rank I --procs N --mesh-dir D [--peers P] [--objects M]
//              [--seed S] [--transport tcp|udp] [--drop RATE]
//     The split-overlay deployment (index::PeerSlice): N processes share
//     ONE overlay — each owns the index tables of the peers hashing into
//     its slice, and every cross-slice protocol step (kws.insert,
//     kws.t_query, kws.results, kws.s_reply, ...) crosses a real process
//     boundary as a serialized frame, over TCP streams or UDP datagrams
//     (--transport udp adds seeded loss via --drop, recovered by the
//     slice's per-step retransmission). Processes rendezvous through
//     --mesh-dir: each writes rank.<I> with its transport port (announced
//     as NETPORT=<n>) and polls for the others. Rank 0 publishes the whole
//     seeded corpus (acknowledged, so the index settles before queries),
//     then serves the same fe.query front-end as `serve` — so `peerd query
//     --ports <rank0> --check` asserts the split overlay's answers against
//     LogicalIndex ground truth end to end.
//
// The corpus is generated, not loaded: seeded, so every process derives the
// same objects independently and the query side can reconstruct ground
// truth without any shared files. That also makes crash-restart trivial:
// a shard killed outright (SIGKILL) is relaunched with the same flags,
// re-derives and re-publishes its slice, and announces a fresh PORT= —
// examples/multiprocess_demo.sh --restart exercises exactly that and
// re-checks the answers byte-for-byte.
//
// Shutdown: SIGTERM/SIGINT stop the front-end loop and drain the transport
// gracefully (drain_and_stop — in-flight protocol work completes before the
// sockets close); "DRAIN=clean" on stdout confirms nothing was dropped.
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "index/logical_index.hpp"
#include "index/overlay_index.hpp"
#include "index/peer_slice.hpp"
#include "net/tcp_transport.hpp"
#include "net/udp_transport.hpp"
#include "net/wire.hpp"

namespace {

using namespace hkws;

constexpr int kR = 6;

// SIGTERM/SIGINT → graceful drain. The handler is async-signal-safe: it
// flips the flag and shuts down the listen socket, which pops the accept
// loop out of its block; everything orderly happens on the main thread.
volatile std::sig_atomic_t g_stop = 0;
std::sig_atomic_t g_listen_fd = -1;

void on_terminate(int) {
  g_stop = 1;
  if (g_listen_fd >= 0) ::shutdown(g_listen_fd, SHUT_RDWR);
}

struct Options {
  std::size_t shard = 0;
  std::size_t shards = 1;
  std::size_t peers = 8;
  std::size_t objects = 200;
  std::size_t vocab = 12;
  std::uint64_t seed = 0xc0ffee;
  std::size_t threshold = 0;
  index::SearchStrategy strategy = index::SearchStrategy::kTopDownSequential;
  bool check = false;
  std::vector<std::uint16_t> ports;
  std::vector<std::string> keywords;
  // peer (split-overlay) mode
  int rank = 0;
  int procs = 1;
  std::string transport = "tcp";
  std::string mesh_dir;
  double drop = 0.0;
};

/// The full demo corpus; every process derives it identically from the
/// seed. Shard assignment is by object id, round-robin.
std::map<ObjectId, KeywordSet> make_corpus(const Options& opt) {
  std::map<ObjectId, KeywordSet> out;
  Rng rng(opt.seed);
  for (ObjectId id = 1; id <= opt.objects; ++id) {
    std::vector<Keyword> words;
    const std::size_t n = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < n; ++i)
      words.push_back("w" + std::to_string(rng.next_below(opt.vocab)));
    out[id] = KeywordSet(std::move(words));
  }
  return out;
}

std::optional<index::SearchStrategy> strategy_of(const std::string& name) {
  if (name == "top-down") return index::SearchStrategy::kTopDownSequential;
  if (name == "bottom-up") return index::SearchStrategy::kBottomUpSequential;
  if (name == "level-parallel") return index::SearchStrategy::kLevelParallel;
  return std::nullopt;
}

bool read_frame(int fd, std::vector<std::uint8_t>& buf,
                std::optional<net::DecodedFrame>& out) {
  std::uint8_t chunk[4096];
  while (true) {
    const std::optional<std::size_t> need =
        net::frame_size(buf.data(), buf.size());
    if (!need.has_value()) return false;  // malformed header
    if (*need != 0 && *need <= buf.size()) {
      out = net::decode_frame(buf.data(), *need);
      return out.has_value();
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer closed mid-frame
    }
    buf.insert(buf.end(), chunk, chunk + n);
  }
}

bool write_frame(int fd, const std::vector<std::uint8_t>& frame) {
  const std::uint8_t* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<net::WireHit> to_wire(const std::vector<index::Hit>& hits) {
  std::vector<net::WireHit> out;
  out.reserve(hits.size());
  for (const index::Hit& h : hits)
    out.push_back(net::WireHit{h.object, h.keywords.words()});
  return out;
}

// --- front-end listener -----------------------------------------------------

/// Binds an ephemeral loopback listener, announces "PORT=<n>", and answers
/// fe.query frames with `answer`'s fe.reply until SIGTERM/SIGINT. Returns
/// false only if the listener could not be set up.
bool serve_front_end(
    const std::function<net::FeReplyMsg(const net::FeQueryMsg&)>& answer) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) return false;
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(lfd, 16) != 0) {
    ::close(lfd);
    return false;
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen);
  std::printf("PORT=%u\n", static_cast<unsigned>(ntohs(addr.sin_port)));
  std::fflush(stdout);

  g_listen_fd = lfd;
  std::signal(SIGTERM, on_terminate);
  std::signal(SIGINT, on_terminate);

  while (g_stop == 0) {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR && g_stop == 0) continue;
      break;
    }
    std::vector<std::uint8_t> buf;
    std::optional<net::DecodedFrame> frame;
    if (!read_frame(cfd, buf, frame) || frame->kind != net::MsgKind::kFeQuery) {
      ::close(cfd);
      continue;  // malformed request: drop, keep serving
    }
    const net::FeReplyMsg reply = answer(std::get<net::FeQueryMsg>(frame->msg));
    write_frame(cfd, net::encode_frame(net::MsgKind::kFeReply,
                                       net::WireMessage{reply}));
    ::close(cfd);
  }
  ::close(lfd);
  return true;
}

// --- serve ------------------------------------------------------------------

int run_serve(const Options& opt) {
  net::TcpTransport transport;
  auto dht = std::make_unique<dht::ChordNetwork>(
      dht::ChordNetwork::build(transport, opt.peers, {}));
  auto dolr = std::make_unique<dht::Dolr>(*dht);
  auto idx = std::make_unique<index::OverlayIndex>(
      *dolr, index::OverlayIndex::Config{.r = kR});

  // Publish this shard's slice of the corpus (strand-confined, like every
  // protocol initiation).
  {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    transport.schedule_in(0, [&] {
      for (const auto& [id, k] : make_corpus(opt))
        if (id % opt.shards == opt.shard) idx->publish(1, id, k);
      std::lock_guard<std::mutex> lk(mu);
      done = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done; });
  }
  if (!transport.wait_idle(std::chrono::seconds(60))) {
    std::fprintf(stderr, "peerd: shard %zu failed to settle\n", opt.shard);
    return 1;
  }

  // Front-end listener: ephemeral port, announced on stdout for the
  // launcher script.
  const bool served = serve_front_end([&](const net::FeQueryMsg& q) {
    const auto strategy = static_cast<index::SearchStrategy>(q.strategy);
    std::mutex mu;
    std::condition_variable cv;
    std::optional<index::SearchResult> result;
    transport.schedule_in(0, [&] {
      std::vector<Keyword> words(q.keywords.begin(), q.keywords.end());
      idx->superset_search(2, KeywordSet(std::move(words)), q.threshold,
                           strategy, [&](const index::SearchResult& r) {
                             std::lock_guard<std::mutex> lk(mu);
                             result = r;
                             cv.notify_all();
                           });
    });
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait_for(lk, std::chrono::seconds(60),
                  [&] { return result.has_value(); });
    }
    net::FeReplyMsg reply;
    if (result.has_value()) {
      reply.complete = result->stats.complete;
      reply.messages = result->stats.messages;
      reply.hits = to_wire(result->hits);
    }
    transport.wait_idle(std::chrono::seconds(60));
    return reply;
  });
  if (!served) return 1;

  // Graceful shutdown: no new work is being initiated (the accept loop is
  // done), so drain whatever protocol traffic is still in flight before
  // tearing the runtime down. DRAIN=clean is the launcher's assertion that
  // the stop lost nothing.
  const bool clean = transport.drain_and_stop(std::chrono::seconds(10));
  std::printf("DRAIN=%s\n", clean ? "clean" : "dirty");
  std::fflush(stdout);
  return clean ? 0 : 1;
}

// --- peer (split overlay) ---------------------------------------------------

// Mesh rendezvous: each process publishes "rank.<I>" in --mesh-dir holding
// its transport port. Written tmp-then-rename so a polling reader never
// sees a partial file.
bool write_mesh_entry(const std::string& dir, int rank, std::uint16_t port) {
  const std::string tmp = dir + "/.rank." + std::to_string(rank) + ".tmp";
  const std::string path = dir + "/rank." + std::to_string(rank);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << port << "\n";
    out.flush();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<std::uint16_t> read_mesh_entry(const std::string& dir, int rank) {
  std::ifstream in(dir + "/rank." + std::to_string(rank));
  unsigned port = 0;
  if (!(in >> port) || port == 0 || port > 65535) return std::nullopt;
  return static_cast<std::uint16_t>(port);
}

bool touch_mesh_marker(const std::string& dir, const std::string& name) {
  const std::string tmp = dir + "/." + name + ".tmp";
  const std::string path = dir + "/" + name;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "1\n";
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool mesh_marker_present(const std::string& dir, const std::string& name) {
  return std::ifstream(dir + "/" + name).good();
}

int run_peer(const Options& opt) {
  const bool udp = opt.transport == "udp";
  std::unique_ptr<net::SocketTransport> transport;
  net::UdpTransport* udp_t = nullptr;
  std::uint16_t net_port = 0;
  if (udp) {
    net::UdpTransport::Config cfg;
    cfg.seed = opt.seed + 0x517 * static_cast<std::uint64_t>(opt.rank + 1);
    auto t = std::make_unique<net::UdpTransport>(cfg);
    net_port = t->port();
    udp_t = t.get();
    transport = std::move(t);
  } else {
    auto t = std::make_unique<net::TcpTransport>();
    net_port = t->port();
    transport = std::move(t);
  }

  index::PeerSlice slice(
      *transport,
      index::PeerSlice::Config{
          .r = kR,
          .n_peers = static_cast<net::EndpointId>(opt.peers),
          .procs = opt.procs,
          .rank = opt.rank,
          // UDP datagrams get lost; give every guarded step a generous
          // retransmission budget. TCP delivers or fails loudly — leave
          // retransmission off like the in-process tests do.
          .step_timeout = udp ? net::Time{300} : net::Time{0},
          .max_retries = 10,
      });

  if (!write_mesh_entry(opt.mesh_dir, opt.rank, net_port)) {
    std::fprintf(stderr, "peerd peer: cannot write mesh entry in %s\n",
                 opt.mesh_dir.c_str());
    return 1;
  }
  std::printf("NETPORT=%u\n", static_cast<unsigned>(net_port));
  std::fflush(stdout);

  // Wait for every other rank's entry, then wire the peer-address table:
  // each remote peer endpoint routes to its owner's transport port.
  std::vector<std::uint16_t> mesh(static_cast<std::size_t>(opt.procs), 0);
  mesh[static_cast<std::size_t>(opt.rank)] = net_port;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (int j = 0; j < opt.procs; ++j) {
    if (j == opt.rank) continue;
    while (true) {
      if (const auto p = read_mesh_entry(opt.mesh_dir, j)) {
        mesh[static_cast<std::size_t>(j)] = *p;
        break;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "peerd peer: rank %d never joined the mesh\n", j);
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  for (net::EndpointId ep = 1; ep <= opt.peers; ++ep) {
    const int owner = slice.rank_of(ep);
    if (owner != opt.rank)
      transport->set_peer_address(ep, {"127.0.0.1", mesh[owner]});
  }

  // Second rendezvous phase: nobody may emit protocol traffic until EVERY
  // rank has wired its peer-address table — a frame arriving earlier would
  // provoke a reply toward an endpoint whose route is not yet installed,
  // an unregistered drop that a reliable wire (step_timeout 0) never
  // repairs. Rank 0 is the only traffic initiator, so it alone waits.
  if (!touch_mesh_marker(opt.mesh_dir, "wired." + std::to_string(opt.rank))) {
    std::fprintf(stderr, "peerd peer: cannot write wired marker\n");
    return 1;
  }
  if (opt.rank == 0) {
    for (int j = 1; j < opt.procs; ++j) {
      while (!mesh_marker_present(opt.mesh_dir, "wired." + std::to_string(j))) {
        if (std::chrono::steady_clock::now() > deadline) {
          std::fprintf(stderr, "peerd peer: rank %d never wired\n", j);
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }

  // Loss is armed only once the mesh is wired. The publishes below run
  // through it — they are acknowledged and retransmitted, so the index
  // still settles exactly.
  if (udp_t != nullptr && opt.drop > 0.0) udp_t->set_drop_rate(opt.drop);

  int rc = 0;
  if (opt.rank == 0) {
    // Rank 0 drives the demo: publish the whole seeded corpus (every
    // entry lands on its owning slice via the wire), wait for all acks,
    // then serve the fe.query front-end against the split overlay.
    const std::map<ObjectId, KeywordSet> corpus = make_corpus(opt);
    {
      std::mutex mu;
      std::condition_variable cv;
      std::size_t acked = 0;
      for (const auto& [id, k] : corpus)
        slice.publish(id, k, [&] {
          std::lock_guard<std::mutex> lk(mu);
          ++acked;
          cv.notify_all();
        });
      std::unique_lock<std::mutex> lk(mu);
      if (!cv.wait_for(lk, std::chrono::seconds(60),
                       [&] { return acked == corpus.size(); })) {
        std::fprintf(stderr, "peerd peer: corpus failed to settle\n");
        return 1;
      }
    }

    const bool served = serve_front_end([&](const net::FeQueryMsg& q) {
      // The split overlay runs the paper's main algorithm; the strategy
      // field is accepted but only top-down is served.
      std::mutex mu;
      std::condition_variable cv;
      std::optional<index::SearchResult> result;
      std::vector<Keyword> words(q.keywords.begin(), q.keywords.end());
      slice.superset_search(KeywordSet(std::move(words)), q.threshold,
                            [&](index::SearchResult r) {
                              std::lock_guard<std::mutex> lk(mu);
                              result = std::move(r);
                              cv.notify_all();
                            });
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait_for(lk, std::chrono::seconds(60),
                    [&] { return result.has_value(); });
      }
      net::FeReplyMsg reply;
      if (result.has_value() && !result->stats.failed) {
        reply.complete = result->stats.complete;
        reply.messages = result->stats.messages;
        reply.hits = to_wire(result->hits);
      }
      return reply;
    });
    if (!served) rc = 1;
  } else {
    // Follower ranks serve their slice of the overlay until told to stop.
    std::signal(SIGTERM, on_terminate);
    std::signal(SIGINT, on_terminate);
    std::printf("READY=1\n");
    std::fflush(stdout);
    while (g_stop == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // A lossy mesh never goes fully quiet (retransmits of steps whose acks
  // died with the remote peer); give the drain a bounded window and report
  // honestly.
  const bool clean = transport->drain_and_stop(std::chrono::seconds(10));
  std::printf("DRAIN=%s\n", clean ? "clean" : "dirty");
  std::fflush(stdout);
  return rc != 0 ? rc : (clean ? 0 : 1);
}

// --- query ------------------------------------------------------------------

int connect_with_retry(std::uint16_t port) {
  auto backoff = std::chrono::milliseconds(5);
  for (int attempt = 0; attempt < 40; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    ::close(fd);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(200));
  }
  return -1;
}

int run_query(const Options& opt) {
  net::FeQueryMsg q;
  q.threshold = opt.threshold;
  q.strategy = static_cast<std::uint8_t>(opt.strategy);
  q.keywords = opt.keywords;
  const auto request =
      net::encode_frame(net::MsgKind::kFeQuery, net::WireMessage{q});

  // Scatter-gather: one connection per shard, merged in shard order so the
  // output is deterministic.
  std::vector<net::FeReplyMsg> replies(opt.ports.size());
  for (std::size_t i = 0; i < opt.ports.size(); ++i) {
    const int fd = connect_with_retry(opt.ports[i]);
    if (fd < 0) {
      std::fprintf(stderr, "peerd query: cannot reach shard on port %u\n",
                   static_cast<unsigned>(opt.ports[i]));
      return 1;
    }
    std::vector<std::uint8_t> buf;
    std::optional<net::DecodedFrame> frame;
    if (!write_frame(fd, request) || !read_frame(fd, buf, frame) ||
        frame->kind != net::MsgKind::kFeReply) {
      std::fprintf(stderr, "peerd query: shard %zu protocol error\n", i);
      ::close(fd);
      return 1;
    }
    replies[i] = std::get<net::FeReplyMsg>(frame->msg);
    ::close(fd);
  }

  std::uint64_t messages = 0;
  std::vector<net::WireHit> merged;
  bool complete = true;
  for (const net::FeReplyMsg& r : replies) {
    messages += r.messages;
    complete = complete && r.complete;
    merged.insert(merged.end(), r.hits.begin(), r.hits.end());
  }
  for (const net::WireHit& h : merged) {
    std::string words;
    for (const std::string& w : h.keywords) {
      if (!words.empty()) words += ",";
      words += w;
    }
    std::printf("hit object=%llu keywords=%s\n",
                static_cast<unsigned long long>(h.object), words.c_str());
  }
  std::printf("total=%zu shards=%zu messages=%llu complete=%d\n",
              merged.size(), opt.ports.size(),
              static_cast<unsigned long long>(messages), complete ? 1 : 0);

  if (opt.check) {
    // Ground truth: the same seeded corpus through the in-process
    // reference index. The distributed answer must contain exactly the
    // same (object, keyword-set) pairs.
    index::LogicalIndex logical({.r = kR});
    for (const auto& [id, k] : make_corpus(opt)) logical.insert(id, k);
    std::vector<Keyword> words(opt.keywords.begin(), opt.keywords.end());
    const index::SearchResult ref = logical.superset_search(
        KeywordSet(std::move(words)), opt.threshold, opt.strategy);
    std::map<ObjectId, std::vector<std::string>> want, got;
    for (const index::Hit& h : ref.hits) want[h.object] = h.keywords.words();
    for (const net::WireHit& h : merged) got[h.object] = h.keywords;
    if (want != got) {
      std::fprintf(stderr,
                   "peerd query: CHECK FAILED — expected %zu hits, got %zu\n",
                   want.size(), got.size());
      return 2;
    }
    std::printf("check=ok expected=%zu\n", want.size());
  }
  return 0;
}

// --- argv -------------------------------------------------------------------

std::optional<Options> parse(int argc, char** argv, std::string& mode) {
  if (argc < 2) return std::nullopt;
  mode = argv[1];
  Options opt;
  int i = 2;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--") {
      ++i;
      break;
    } else if (arg == "--shard") {
      opt.shard = std::stoul(next());
    } else if (arg == "--shards") {
      opt.shards = std::stoul(next());
    } else if (arg == "--peers") {
      opt.peers = std::stoul(next());
    } else if (arg == "--objects") {
      opt.objects = std::stoul(next());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else if (arg == "--threshold") {
      opt.threshold = std::stoul(next());
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--strategy") {
      const auto s = strategy_of(next());
      if (!s.has_value()) return std::nullopt;
      opt.strategy = *s;
    } else if (arg == "--rank") {
      opt.rank = std::stoi(next());
    } else if (arg == "--procs") {
      opt.procs = std::stoi(next());
    } else if (arg == "--transport") {
      opt.transport = next();
      if (opt.transport != "tcp" && opt.transport != "udp")
        return std::nullopt;
    } else if (arg == "--mesh-dir") {
      opt.mesh_dir = next();
    } else if (arg == "--drop") {
      opt.drop = std::stod(next());
      if (opt.drop < 0.0 || opt.drop >= 1.0) return std::nullopt;
    } else if (arg == "--ports") {
      std::string list = next();
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        opt.ports.push_back(static_cast<std::uint16_t>(std::stoul(tok)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      return std::nullopt;
    }
  }
  for (; i < argc; ++i) opt.keywords.emplace_back(argv[i]);
  if (opt.shards == 0 || opt.shard >= opt.shards) return std::nullopt;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  const std::optional<Options> opt = parse(argc, argv, mode);
  if (opt.has_value() && mode == "serve") return run_serve(*opt);
  if (opt.has_value() && mode == "query" && !opt->ports.empty() &&
      !opt->keywords.empty())
    return run_query(*opt);
  if (opt.has_value() && mode == "peer" && !opt->mesh_dir.empty() &&
      opt->procs >= 1 && opt->rank >= 0 && opt->rank < opt->procs &&
      opt->peers >= static_cast<std::size_t>(opt->procs))
    return run_peer(*opt);
  std::fprintf(
      stderr,
      "usage:\n"
      "  peerd serve --shard I --shards N [--peers P] [--objects M] "
      "[--seed S]\n"
      "  peerd peer --rank I --procs N --mesh-dir D [--peers P] "
      "[--objects M]\n"
      "             [--seed S] [--transport tcp|udp] [--drop RATE]\n"
      "  peerd query --ports P1,P2,... [--threshold T]\n"
      "              [--strategy top-down|bottom-up|level-parallel]\n"
      "              [--check] [--shards N] [--objects M] [--seed S] -- kw "
      "[kw...]\n");
  return 64;
}
