// mkcorpus — generate a reproducible synthetic corpus (and optionally a
// query log) as TSV, for running the experiments outside the bench
// harnesses or seeding external tools.
//
//   mkcorpus --objects 131180 --vocab 50000 --seed 2005 \
//            --mean-keywords 7.3 --out corpus.tsv \
//            [--queries 178000 --distinct 5000 --query-out queries.txt]
//
// The query log is one query per line: comma-separated keywords.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "workload/corpus_generator.hpp"
#include "workload/corpus_io.hpp"
#include "workload/query_generator.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--objects N] [--vocab N] [--seed N] [--mean-keywords F]\n"
      "          [--zipf-skew F] [--zipf-shift F] --out corpus.tsv\n"
      "          [--queries N] [--distinct N] [--query-out queries.txt]\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hkws;
  workload::CorpusConfig ccfg;
  workload::QueryLogConfig qcfg;
  std::string out, query_out;
  std::size_t query_count = 0;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--objects") == 0) {
      ccfg.object_count = std::strtoull(need("--objects"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--vocab") == 0) {
      ccfg.vocabulary_size = std::strtoull(need("--vocab"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      ccfg.seed = std::strtoull(need("--seed"), nullptr, 10);
      qcfg.seed = ccfg.seed ^ 0x51ed;
    } else if (std::strcmp(argv[i], "--mean-keywords") == 0) {
      ccfg.mean_keywords = std::strtod(need("--mean-keywords"), nullptr);
    } else if (std::strcmp(argv[i], "--zipf-skew") == 0) {
      ccfg.zipf_skew = std::strtod(need("--zipf-skew"), nullptr);
    } else if (std::strcmp(argv[i], "--zipf-shift") == 0) {
      ccfg.zipf_shift = std::strtod(need("--zipf-shift"), nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = need("--out");
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      query_count = std::strtoull(need("--queries"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--distinct") == 0) {
      qcfg.distinct_queries = std::strtoull(need("--distinct"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--query-out") == 0) {
      query_out = need("--query-out");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  if (out.empty()) usage(argv[0]);

  try {
    const auto corpus = workload::CorpusGenerator(ccfg).generate();
    workload::save_corpus_tsv(corpus, out);
    std::printf("wrote %zu records to %s (mean %.2f keywords, %zu distinct)\n",
                corpus.size(), out.c_str(), corpus.mean_keywords(),
                corpus.vocabulary_size());

    if (query_count != 0) {
      if (query_out.empty()) {
        std::fprintf(stderr, "--queries requires --query-out\n");
        return 2;
      }
      qcfg.query_count = query_count;
      workload::QueryLogGenerator gen(corpus, qcfg);
      const auto log = gen.generate();
      std::ofstream qf(query_out);
      if (!qf) {
        std::fprintf(stderr, "cannot open %s\n", query_out.c_str());
        return 1;
      }
      for (const auto& q : log.queries())
        qf << q.keywords.to_string() << '\n';
      std::printf("wrote %zu queries to %s (top-10 share %.1f%%)\n",
                  log.size(), query_out.c_str(), 100.0 * log.top_share(10));
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
