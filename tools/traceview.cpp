// Trace inspection CLI for Chrome trace-event JSON files produced by
// obs::Tracer (bench/serving_latency, tools/torture, or any harness that
// wires a Tracer in).
//
//     tools/traceview TRACE.json              # summary + slowest queries
//     tools/traceview TRACE.json --top 20     # widen the slowest-query table
//     tools/traceview TRACE.json --tree 17    # hop tree for query id 17
//     tools/traceview TRACE.json --check      # validate only (CI smoke):
//                                             # parses + spans balanced,
//                                             # exit 1 otherwise
//
// See docs/OBSERVABILITY.md for the span schema the renderer understands.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>

#include "obs/trace_reader.hpp"
#include "obs/trace_summary.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s TRACE.json [--top N] [--tree QUERY_ID] [--check]\n",
               argv0);
}

std::optional<std::uint64_t> parse_u64(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 5;
  std::optional<std::uint64_t> tree_id;
  bool check_only = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check_only = true;
    } else if (std::strcmp(arg, "--top") == 0 && i + 1 < argc) {
      const auto n = parse_u64(argv[++i]);
      if (!n) {
        usage(argv[0]);
        return 2;
      }
      top_n = static_cast<std::size_t>(*n);
    } else if (std::strcmp(arg, "--tree") == 0 && i + 1 < argc) {
      tree_id = parse_u64(argv[++i]);
      if (!tree_id) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    usage(argv[0]);
    return 2;
  }

  hkws::obs::ParsedTrace trace;
  try {
    trace = hkws::obs::read_chrome_trace(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "traceview: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  const auto imbalance = hkws::obs::span_imbalance(trace.events);
  if (check_only) {
    if (!imbalance.empty()) {
      for (const auto& [tid, delta] : imbalance)
        std::fprintf(stderr,
                     "traceview: track %llu has %lld unmatched span %s\n",
                     static_cast<unsigned long long>(tid),
                     static_cast<long long>(delta > 0 ? delta : -delta),
                     delta > 0 ? "begin(s)" : "end(s)");
      return 1;
    }
    std::printf("ok: %zu events, spans balanced, %llu dropped\n",
                trace.events.size(),
                static_cast<unsigned long long>(trace.dropped));
    return 0;
  }

  if (tree_id) {
    const std::string tree =
        hkws::obs::render_hop_tree(trace.events, *tree_id);
    if (tree.empty()) {
      std::fprintf(stderr, "traceview: no events for query %llu\n",
                   static_cast<unsigned long long>(*tree_id));
      return 1;
    }
    std::fputs(tree.c_str(), stdout);
    return 0;
  }

  const auto summary = hkws::obs::summarize(trace.events);
  std::fputs(hkws::obs::render_summary(summary, top_n).c_str(), stdout);
  if (trace.dropped != 0)
    std::printf("(%llu events dropped at capture: tracer cap reached)\n",
                static_cast<unsigned long long>(trace.dropped));
  return summary.balanced ? 0 : 1;
}
