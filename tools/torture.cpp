// Seed-driven protocol torture CLI.
//
// Default run: a sweep of seeded scenarios across every search strategy and
// deployment (>= 200 scenarios), printing one line per failure and exiting
// non-zero if any invariant was violated. A failing seed is reproduced with
//
//     tools/torture --seed N [--deployment D] [--strategy S]
//
// which replays exactly that scenario, shrinks its fault schedule to the
// minimal failing subset, and prints the full report. See docs/TESTING.md.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "torture/scenario.hpp"
#include "torture/shrink.hpp"

namespace {

using hkws::index::SearchStrategy;
using namespace hkws::torture;

constexpr Deployment kDeployments[] = {
    Deployment::kDirect,   Deployment::kChord,    Deployment::kPastry,
    Deployment::kHyperCup, Deployment::kMirrored, Deployment::kDecomposed,
};
constexpr SearchStrategy kStrategies[] = {
    SearchStrategy::kTopDownSequential,
    SearchStrategy::kBottomUpSequential,
    SearchStrategy::kLevelParallel,
};

std::optional<Deployment> parse_deployment(const std::string& s) {
  for (Deployment d : kDeployments)
    if (s == to_string(d)) return d;
  return std::nullopt;
}

std::optional<SearchStrategy> parse_strategy(const std::string& s) {
  for (SearchStrategy st : kStrategies)
    if (s == to_string(st)) return st;
  return std::nullopt;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--seeds COUNT] [--start N]\n"
      "          [--deployment direct|chord|pastry|hypercup|mirrored|"
      "decomposed]\n"
      "          [--strategy top-down|bottom-up|level-parallel]\n"
      "          [--transport sim|tcp|udp]\n"
      "          [--churn] [--no-heal] [--no-shrink] [--verbose]\n"
      "\n"
      "Without --seed: sweeps COUNT seeds (default 15) starting at --start\n"
      "(default 1) over every strategy x deployment combination. With\n"
      "--seed: replays that single seed (optionally filtered), shrinking\n"
      "the fault schedule of any failure.\n"
      "\n"
      "--transport tcp|udp: runs the battery on the real runtime — every\n"
      "wire message crosses a loopback socket (TCP streams, or one UDP\n"
      "datagram per frame) with net::FaultTransport injecting the same\n"
      "seeded fault schedule below the protocol. Per seed: chord (top-down\n"
      "+ level-parallel), pastry, the hot-spot preset, and the\n"
      "continuous-churn preset (the socket-capable deployments; default 8\n"
      "seeds). Schedule shrinking is skipped — message order is wall-clock\n"
      "real, so a minimized schedule would not replay deterministically\n"
      "anyway.\n"
      "\n"
      "--churn: continuous-churn preset (mirrored deployment, kill-only\n"
      "peer failures, self-healing maintenance plane racing the workload).\n"
      "Adds the *convergence invariant*: after the last fault the plane\n"
      "must report converged() — failures detected, placement and mirror\n"
      "backlogs drained, replication restored — within a bounded number of\n"
      "repair windows, after which strict verification searches must match\n"
      "the oracle exactly. --no-heal disables the plane (the control run\n"
      "that demonstrates the invariants break without it).\n",
      argv0);
}

/// Runs one scenario; on failure prints the seed, the (optionally
/// minimized) fault schedule, and the violations. Returns whether it passed.
bool run_one(ScenarioRunner& runner, const ScenarioConfig& cfg, bool shrink,
             bool verbose, std::size_t& scenarios) {
  ScenarioReport rep = runner.run(cfg);
  ++scenarios;
  if (rep.ok()) {
    if (verbose)
      std::printf("ok    %s (searches=%zu mutations=%zu cancels=%zu "
                  "faults=%llu)\n",
                  cfg.to_string().c_str(), rep.searches, rep.mutations,
                  rep.cancels,
                  static_cast<unsigned long long>(rep.faults_applied));
    return true;
  }
  std::printf("FAIL  %s\n", cfg.to_string().c_str());
  if (shrink && !rep.plan.events.empty()) {
    const ShrinkResult min = shrink_plan(runner, cfg, rep.plan);
    scenarios += min.runs;
    std::printf("--- minimized fault schedule (%zu -> %zu events, %zu "
                "runs) ---\n",
                rep.plan.events.size(), min.plan.events.size(), min.runs);
    rep = min.report;
  }
  std::printf("%s", rep.to_string().c_str());
  const char* transport = "";
  if (cfg.backend == Backend::kTcp) transport = " --transport tcp";
  if (cfg.backend == Backend::kUdp) transport = " --transport udp";
  if (cfg.continuous_churn)
    std::printf("reproduce: tools/torture --churn%s%s --seed %llu\n",
                cfg.self_healing ? "" : " --no-heal", transport,
                static_cast<unsigned long long>(cfg.seed));
  else
    std::printf("reproduce: tools/torture%s --seed %llu --deployment %s "
                "--strategy %s\n",
                transport, static_cast<unsigned long long>(cfg.seed),
                to_string(cfg.deployment), to_string(cfg.strategy));
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::uint64_t> single_seed;
  std::uint64_t start = 1;
  std::optional<std::size_t> count;
  std::optional<Deployment> only_deployment;
  std::optional<SearchStrategy> only_strategy;
  bool shrink = true;
  bool verbose = false;
  bool churn = false;
  bool heal = true;
  Backend backend = Backend::kSim;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      single_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--seeds") {
      count = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--start") {
      start = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--deployment") {
      only_deployment = parse_deployment(next());
      if (!only_deployment) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--strategy") {
      only_strategy = parse_strategy(next());
      if (!only_strategy) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--transport") {
      const std::string t = next();
      if (t == "tcp") {
        backend = Backend::kTcp;
      } else if (t == "udp") {
        backend = Backend::kUdp;
      } else if (t != "sim") {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--churn") {
      churn = true;
    } else if (arg == "--no-heal") {
      heal = false;
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else {
      usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  // Schedule shrinking re-runs the scenario with event subsets and relies
  // on deterministic replay; over real sockets message order is wall-clock,
  // so a minimized schedule would not reproduce the failure. Skip it.
  const bool sock = backend != Backend::kSim;
  if (sock) shrink = false;

  ScenarioRunner runner;
  std::size_t scenarios = 0;
  std::size_t failures = 0;

  const auto sweep_seed = [&](std::uint64_t seed) {
    if (churn) {
      // Continuous-churn preset: one mirrored scenario per seed, the
      // self-healing plane racing kill-only failures (unless --no-heal).
      ScenarioConfig cfg = ScenarioConfig::churn_preset(seed);
      cfg.self_healing = heal;
      cfg.backend = backend;
      if (!run_one(runner, cfg, shrink, verbose, scenarios)) ++failures;
      return;
    }
    if (sock) {
      // Real-runtime battery: the socket-capable deployments, each
      // scenario over loopback sockets (TCP streams or UDP datagrams) with
      // the seeded fault schedule injected by net::FaultTransport. Reduced
      // relative to the sim sweep (each scenario costs real wall-clock),
      // but it covers both overlay routers, the strategy extremes, the
      // hot-spot replication path and the continuous-churn maintenance
      // plane per seed.
      ScenarioConfig battery[] = {
          ScenarioConfig::from_seed(seed, Deployment::kChord,
                                    SearchStrategy::kTopDownSequential),
          ScenarioConfig::from_seed(seed, Deployment::kChord,
                                    SearchStrategy::kLevelParallel),
          ScenarioConfig::from_seed(seed, Deployment::kPastry,
                                    SearchStrategy::kBottomUpSequential),
          ScenarioConfig::hot_spot_preset(seed),
          ScenarioConfig::churn_preset(seed),
      };
      for (ScenarioConfig& cfg : battery) {
        if (only_deployment && cfg.deployment != *only_deployment) continue;
        if (only_strategy && cfg.strategy != *only_strategy) continue;
        cfg.backend = backend;
        if (!run_one(runner, cfg, shrink, verbose, scenarios)) ++failures;
      }
      return;
    }
    for (Deployment d : kDeployments) {
      if (only_deployment && d != *only_deployment) continue;
      for (SearchStrategy s : kStrategies) {
        if (only_strategy && s != *only_strategy) continue;
        // HyperCuP tree forwarding has no strategy knob; run it once.
        if (d == Deployment::kHyperCup &&
            s != SearchStrategy::kTopDownSequential && !only_strategy)
          continue;
        if (!run_one(runner, ScenarioConfig::from_seed(seed, d, s), shrink,
                     verbose, scenarios))
          ++failures;
      }
    }
  };

  if (single_seed) {
    sweep_seed(*single_seed);
  } else {
    const std::size_t n = count.value_or(sock ? 8 : 15);
    for (std::uint64_t seed = start; seed < start + n; ++seed)
      sweep_seed(seed);
  }

  std::printf("%zu scenario(s), %zu failure(s)\n", scenarios, failures);
  return failures == 0 ? 0 : 1;
}
