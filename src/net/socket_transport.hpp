// Shared machinery of the socket Transport backends (TcpTransport,
// UdpTransport): everything between the Transport interface and the actual
// sockets lives here, so both backends carry identical semantics —
//
//   * the dispatch strand: one thread executing delivered handlers and due
//     timers serialized, the simulator's single-event-loop discipline;
//   * the parked-handler table: closure-based send() parks the delivery
//     handler, ships an addressed envelope through the backend's wire, and
//     redeems the handler by message id when the envelope returns. Entries
//     carry a deadline; a periodic sweep (driven from the backend's io
//     loop) releases entries whose envelope died on the wire — counted
//     net.dropped.conn, net.lost — so a read-side frame death can never
//     leak an in-flight slot and wedge drain_and_stop();
//   * the peer-address table: endpoints owned by other processes, mapped
//     to their socket addresses. send_payload() to an addressed endpoint
//     serializes the real message (wire codec frame inside the envelope's
//     payload field) and routes it to the owning process, which decodes it
//     and dispatches to its payload handler on its own strand;
//   * accounting: the simulator's counters and conservation identity
//     (net.messages == net.delivered + net.lost) per process, with every
//     loss attributed to exactly one cause counter. Outbound cross-process
//     messages count net.delivered at the sender once the wire accepts the
//     frame (plus net.remote.out); the receiving process counts only
//     net.remote.in — so each process's identity closes over traffic it
//     originated.
//
// Backends implement the wire: wire_send() writes one encoded envelope
// frame either to the loopback self-wire (remote == nullptr) or to a
// remote process's address, and their io threads feed received envelopes
// back through on_envelope() and call sweep_parked() periodically.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "net/wire.hpp"

namespace hkws::net {

class SocketTransport : public Transport {
 public:
  /// Knobs every socket backend shares (each backend's Config embeds one).
  struct CommonConfig {
    /// Wall-clock duration of one transport tick. Protocol timeout
    /// constants are written in ticks (sim convention: ~1ms); the default
    /// compresses them 10x so loss-recovery tests stay fast.
    std::chrono::microseconds tick{100};
    /// Cap on per-frame padding bytes (real serialization cost tracks the
    /// declared payload size up to this bound).
    std::uint32_t max_pad = 64 * 1024;
    /// How long a parked delivery handler may wait for its envelope before
    /// the sweep declares the frame dead on the wire (net.dropped.conn).
    /// Generous vs loopback latency; tests shrink it to exercise the sweep.
    std::chrono::milliseconds parked_ttl{3000};
  };

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // --- Transport interface ------------------------------------------------

  void register_endpoint(EndpointId id) override;
  void unregister_endpoint(EndpointId id) override;
  bool is_registered(EndpointId id) const override;

  void send(EndpointId from, EndpointId to, std::string kind,
            std::size_t payload_bytes, Handler deliver) override;

  bool set_peer_address(EndpointId id, const PeerAddr& addr) override;
  bool has_peer_address(EndpointId id) const override;
  void send_payload(EndpointId from, EndpointId to, MsgKind kind,
                    const WireMessage& msg) override;

  Time now() const override;
  void schedule_in(Time delay, Handler fn) override;
  TimerId set_timer(Time delay, Handler fn) override;
  bool cancel_timer(TimerId id) override;

  sim::Metrics& metrics() override { return metrics_; }
  const sim::Metrics& metrics() const override { return metrics_; }
  void set_send_observer(SendObserver fn) override;

  // --- Runtime control ----------------------------------------------------

  /// Blocks until no message is in flight, the dispatch queue is empty, and
  /// no plain scheduled event (schedule_in) is pending — cancelable timers
  /// (retransmission guards) do not count. Returns false on timeout.
  bool wait_idle(std::chrono::milliseconds timeout);

  /// Stops the runtime: closes sockets, joins threads, drops queued work.
  /// Idempotent; the destructor calls it.
  virtual void stop() = 0;

  /// Graceful shutdown: waits (up to `timeout`) for in-flight messages and
  /// plain scheduled events to drain, then stops. Returns whether the
  /// runtime actually went idle before stopping — false means queued work
  /// was dropped, exactly what stop() alone always does.
  bool drain_and_stop(std::chrono::milliseconds timeout);

  /// Peer-down hook: invoked on the dispatch strand when the transport
  /// positively observes a destination's connection die under a frame (a
  /// wire write fails). Fires at most once per endpoint between
  /// registrations. This is the fast-path liveness signal the maintenance
  /// plane's FailureDetector consumes instead of waiting out heartbeat
  /// misses. Install before traffic starts; nullptr removes.
  using PeerDownObserver = std::function<void(EndpointId)>;
  void set_peer_down_observer(PeerDownObserver fn);

  /// Cancelable timers currently pending (the torture harness's timer
  /// invariant reads this; parity with sim::EventQueue::live_timer_count).
  std::size_t live_timer_count() const;

  /// Wall-clock duration of one transport tick (backend-configured).
  std::chrono::microseconds tick() const noexcept { return common_.tick; }

  /// Wire frames that failed envelope (or inner payload) decode — 0 in a
  /// healthy runtime.
  std::uint64_t decode_errors() const;

  /// Test/fault hook: the io thread silently discards the next `n` inbound
  /// envelopes, exactly as if the frames had died on the read side of the
  /// wire. Parked senders then wait on the deadline sweep — this is how the
  /// parked-leak regression test kills frames deterministically.
  void drop_inbound(std::uint64_t n);

 protected:
  using Clock = std::chrono::steady_clock;

  explicit SocketTransport(CommonConfig common);

  /// How the wire disposed of one envelope frame.
  enum class WireResult {
    kOk,        ///< accepted by the socket
    kConnDead,  ///< connection dead / socket gone (net.dropped.conn)
    kDropped,   ///< backend drop model discarded it (net.dropped.fault)
  };

  /// Writes one encoded envelope frame. `remote` is nullptr for the
  /// loopback self-wire (parked-handler mode) or the owning process's
  /// address for cross-process payload frames.
  virtual WireResult wire_send(const std::vector<std::uint8_t>& frame,
                               const sockaddr_in* remote) = 0;

  /// Launches the dispatch thread (call once sockets are up).
  void start_dispatch();

  /// Flags the runtime stopping and wakes every waiter. Returns false if
  /// already stopping (stop() must then return without re-joining).
  bool begin_stop();
  void join_dispatch();
  bool stopping() const { return halted_.load(std::memory_order_acquire); }

  /// Inbound envelope from the backend's io thread: redeems a parked
  /// handler (empty payload) or decodes + dispatches a cross-process
  /// payload message (non-empty payload).
  void on_envelope(const EnvelopeMsg& env);

  /// Releases parked entries past their deadline as net.dropped.conn.
  /// Backends call this from their io loop (each poll timeout tick).
  void sweep_parked();

  /// Looks up `id` in the peer-address table. False if it has no address
  /// (the endpoint is local or unknown).
  bool lookup_addr(EndpointId id, sockaddr_in* out) const;

  /// Counts one failed envelope/payload decode (decode_errors()).
  void note_decode_error();

  const CommonConfig& common() const noexcept { return common_; }

 private:
  /// Per-peer node state. Counters are atomic: sends bump them under the
  /// shared (reader) side of peers_mu_, concurrently.
  struct PeerState {
    bool registered = false;
    std::atomic<std::uint64_t> sent{0};       ///< wire messages originated
    std::atomic<std::uint64_t> delivered{0};  ///< handlers executed here
  };

  /// A parked delivery handler waiting for its envelope to return.
  struct ParkedEntry {
    Handler fn;
    EndpointId to = 0;
    std::string kind;             ///< for loss attribution if swept
    Clock::time_point deadline;   ///< sweep releases past this
  };

  /// Schedule key: (deadline, insertion seq) — FIFO among equal deadlines,
  /// the simulator's tie-break discipline.
  using ScheduleKey = std::pair<Clock::time_point, std::uint64_t>;

  struct TimerEntry {
    TimerId id = 0;  ///< 0 = plain event (schedule_in, not cancelable)
    Handler fn;
  };

  void dispatch_loop();
  void enqueue_ready(Handler fn, EndpointId at, bool counts_delivery);
  void report_peer_down(EndpointId to);
  /// Counts one wire loss: net.lost[.kind], net.dropped[.kind], plus the
  /// cause counter (net.dropped.conn or net.dropped.fault).
  void count_loss(const std::string& kind, WireResult why);

  CommonConfig common_;
  Clock::time_point start_;

  // Per-peer endpoint state: reader-writer lock, sends read, membership
  // writes.
  mutable std::shared_mutex peers_mu_;
  std::unordered_map<EndpointId, PeerState> peers_;

  // Endpoints owned by other processes, keyed to their socket address.
  mutable std::shared_mutex addrs_mu_;
  std::unordered_map<EndpointId, sockaddr_in> addrs_;

  // Parked delivery handlers keyed by envelope message id.
  std::mutex handlers_mu_;
  std::unordered_map<std::uint64_t, ParkedEntry> parked_;
  std::uint64_t next_msg_ = 1;

  // Dispatch strand state.
  mutable std::mutex strand_mu_;
  std::condition_variable strand_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::pair<Handler, EndpointId>> ready_;  ///< delivered, FIFO
  std::map<ScheduleKey, TimerEntry> schedule_;  ///< timers + plain events
  std::unordered_map<TimerId, ScheduleKey> timer_keys_;  ///< cancel index
  std::uint64_t pending_events_ = 0;  ///< schedule_ entries with id == 0
  std::uint64_t next_timer_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t inflight_ = 0;  ///< sent-not-yet-executed messages
  bool stopping_ = false;
  std::atomic<bool> halted_{false};  ///< lock-free mirror of stopping_

  // Accounting (metrics_mu_ also serializes the observer, matching the
  // sim's synchronous-from-send() contract).
  mutable std::mutex metrics_mu_;
  sim::Metrics metrics_;
  SendObserver observer_;
  PeerDownObserver peer_down_;
  std::uint64_t decode_errors_ = 0;

  // Endpoints already reported down (avoids a storm of peer-down callbacks
  // when many frames hit the same dead connection). Guarded by peers_mu_.
  std::unordered_map<EndpointId, bool> down_reported_;

  std::atomic<std::uint64_t> drop_inbound_{0};

  std::thread dispatch_thread_;
};

}  // namespace hkws::net
