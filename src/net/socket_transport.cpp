#include "net/socket_transport.hpp"

#include <arpa/inet.h>

#include <cstring>

namespace hkws::net {

SocketTransport::SocketTransport(CommonConfig common)
    : common_(common), start_(Clock::now()) {}

SocketTransport::~SocketTransport() {
  // Backends stop themselves in their destructors (they own the sockets and
  // io thread); this is the backstop so a half-constructed backend cannot
  // leak the dispatch thread.
  if (dispatch_thread_.joinable()) {
    begin_stop();
    dispatch_thread_.join();
  }
}

void SocketTransport::start_dispatch() {
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

bool SocketTransport::begin_stop() {
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    if (stopping_) return false;
    stopping_ = true;
  }
  halted_.store(true, std::memory_order_release);
  strand_cv_.notify_all();
  idle_cv_.notify_all();
  return true;
}

void SocketTransport::join_dispatch() {
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
}

// --- Endpoints (reader-writer-locked per-peer state) ------------------------

void SocketTransport::register_endpoint(EndpointId id) {
  std::unique_lock<std::shared_mutex> lk(peers_mu_);
  peers_[id].registered = true;
  down_reported_[id] = false;  // a re-registered peer may be reported again
}

void SocketTransport::unregister_endpoint(EndpointId id) {
  std::unique_lock<std::shared_mutex> lk(peers_mu_);
  const auto it = peers_.find(id);
  if (it != peers_.end()) it->second.registered = false;
}

bool SocketTransport::is_registered(EndpointId id) const {
  std::shared_lock<std::shared_mutex> lk(peers_mu_);
  const auto it = peers_.find(id);
  return it != peers_.end() && it->second.registered;
}

// --- Peer-address table -----------------------------------------------------

bool SocketTransport::set_peer_address(EndpointId id, const PeerAddr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (addr.host.empty() || addr.host == "localhost") {
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    return false;
  }
  std::unique_lock<std::shared_mutex> lk(addrs_mu_);
  addrs_[id] = sa;
  return true;
}

bool SocketTransport::has_peer_address(EndpointId id) const {
  std::shared_lock<std::shared_mutex> lk(addrs_mu_);
  return addrs_.find(id) != addrs_.end();
}

bool SocketTransport::lookup_addr(EndpointId id, sockaddr_in* out) const {
  std::shared_lock<std::shared_mutex> lk(addrs_mu_);
  const auto it = addrs_.find(id);
  if (it == addrs_.end()) return false;
  *out = it->second;
  return true;
}

// --- Send (parked-handler mode) ---------------------------------------------

void SocketTransport::send(EndpointId from, EndpointId to, std::string kind,
                           std::size_t payload_bytes, Handler deliver) {
  if (from == to) {
    // Local call: no wire traffic, async delivery — the simulator's
    // contract, preserved so protocol code behaves identically.
    {
      std::lock_guard<std::mutex> lk(metrics_mu_);
      metrics_.count("net.local");
    }
    enqueue_ready(std::move(deliver), to, /*counts_delivery=*/false);
    return;
  }
  if (!is_registered(to)) {
    std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.count("net.dropped");
    metrics_.count("net.dropped." + kind);
    metrics_.count("net.dropped.unregistered");
    return;
  }

  // Park the delivery handler; the io thread redeems it by message id when
  // the envelope comes back off the socket. The deadline bounds how long a
  // frame the wire swallowed can hold its in-flight slot (sweep_parked).
  std::uint64_t msg_id;
  {
    std::lock_guard<std::mutex> lk(handlers_mu_);
    msg_id = next_msg_++;
    parked_.emplace(msg_id, ParkedEntry{std::move(deliver), to, kind,
                                        Clock::now() + common_.parked_ttl});
  }
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    ++inflight_;
  }
  {
    std::shared_lock<std::shared_mutex> lk(peers_mu_);
    const auto it = peers_.find(from);
    if (it != peers_.end())
      it->second.sent.fetch_add(1, std::memory_order_relaxed);
  }

  EnvelopeMsg env;
  const std::optional<MsgKind> known = kind_of(kind);
  env.inner_kind = known.value_or(MsgKind::kOpaque);
  if (!known.has_value()) env.label = kind;
  env.msg_id = msg_id;
  env.from = from;
  env.to = to;
  env.declared_bytes = payload_bytes;
  env.pad = static_cast<std::uint32_t>(
      std::min<std::size_t>(payload_bytes, common_.max_pad));
  const std::vector<std::uint8_t> frame =
      encode_frame(MsgKind::kEnvelope, WireMessage{env});

  {
    std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.count("net.messages");
    metrics_.count("net.bytes", payload_bytes);
    metrics_.count("net.wire_bytes", frame.size());
    metrics_.count("msg." + kind);
  }

  const WireResult res = wire_send(frame, nullptr);
  if (res != WireResult::kOk) {
    // The wire swallowed the frame (connection death, stop() racing a late
    // send, or the backend's drop model): the message is lost, not
    // delivered. Release the parked handler and attribute the loss; a dead
    // connection is additionally a positive liveness signal the failure
    // detector can act on immediately.
    {
      std::lock_guard<std::mutex> lk(handlers_mu_);
      parked_.erase(msg_id);
    }
    {
      std::lock_guard<std::mutex> lk(strand_mu_);
      --inflight_;
    }
    idle_cv_.notify_all();
    count_loss(kind, res);
    if (res == WireResult::kConnDead) report_peer_down(to);
  }
  // Observe after the wire has decided the frame's fate, so SendRecord.lost
  // is truthful — a frame the connection swallowed is never reported
  // delivered.
  std::lock_guard<std::mutex> lk(metrics_mu_);
  if (observer_) {
    const Time at = now();
    observer_(kind,
              SendRecord{at, from, to, payload_bytes, res != WireResult::kOk,
                         at});
  }
}

// --- Send (cross-process payload mode) --------------------------------------

void SocketTransport::send_payload(EndpointId from, EndpointId to,
                                   MsgKind kind, const WireMessage& msg) {
  sockaddr_in remote;
  if (!lookup_addr(to, &remote)) {
    // No address: the endpoint is local — loop the encoded frame through
    // the parked-handler wire so accounting and codec coverage match.
    Transport::send_payload(from, to, kind, msg);
    return;
  }
  const std::string kind_label = kind_name(kind);
  std::vector<std::uint8_t> inner = encode_frame(kind, msg);
  if (inner.empty()) return;  // layout mismatch: programming error upstream
  const std::size_t declared = inner.size();

  EnvelopeMsg env;
  env.inner_kind = kind;
  {
    std::lock_guard<std::mutex> lk(handlers_mu_);
    env.msg_id = next_msg_++;
  }
  env.from = from;
  env.to = to;
  env.declared_bytes = declared;
  env.payload = std::move(inner);
  env.pad = 0;  // the payload itself is the serialization cost
  const std::vector<std::uint8_t> frame =
      encode_frame(MsgKind::kEnvelope, WireMessage{std::move(env)});

  {
    std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.count("net.messages");
    metrics_.count("net.bytes", declared);
    metrics_.count("net.wire_bytes", frame.size());
    metrics_.count("msg." + kind_label);
    metrics_.count("net.remote.out");
  }
  {
    std::shared_lock<std::shared_mutex> lk(peers_mu_);
    const auto it = peers_.find(from);
    if (it != peers_.end())
      it->second.sent.fetch_add(1, std::memory_order_relaxed);
  }

  const WireResult res = wire_send(frame, &remote);
  if (res == WireResult::kOk) {
    // The frame is on its way to another process; this process's
    // conservation identity closes at the wire (the receiver counts it as
    // net.remote.in, not net.delivered).
    std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.count("net.delivered");
  } else {
    count_loss(kind_label, res);
    if (res == WireResult::kConnDead) report_peer_down(to);
  }
  std::lock_guard<std::mutex> lk(metrics_mu_);
  if (observer_) {
    const Time at = now();
    observer_(kind_label,
              SendRecord{at, from, to, declared, res != WireResult::kOk, at});
  }
}

void SocketTransport::count_loss(const std::string& kind, WireResult why) {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  metrics_.count("net.lost");
  metrics_.count("net.lost." + kind);
  metrics_.count("net.dropped." + kind);
  metrics_.count(why == WireResult::kDropped ? "net.dropped.fault"
                                             : "net.dropped.conn");
}

void SocketTransport::report_peer_down(EndpointId to) {
  {
    // At most one report per endpoint per registration: many frames can
    // hit the same dead wire.
    std::unique_lock<std::shared_mutex> lk(peers_mu_);
    if (down_reported_[to]) return;
    down_reported_[to] = true;
  }
  PeerDownObserver cb;
  {
    std::lock_guard<std::mutex> lk(metrics_mu_);
    cb = peer_down_;
  }
  if (!cb) return;
  // Marshal onto the dispatch strand: the consumer is protocol code
  // (FailureDetector) that must only ever run strand-serialized.
  schedule_in(0, [cb = std::move(cb), to] { cb(to); });
}

void SocketTransport::enqueue_ready(Handler fn, EndpointId at,
                                    bool counts_delivery) {
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    if (stopping_) return;
    if (!counts_delivery) ++inflight_;  // wire sends already counted
    ready_.emplace_back(
        [this, fn = std::move(fn), at, counts_delivery] {
          if (counts_delivery) {
            std::lock_guard<std::mutex> lk2(metrics_mu_);
            metrics_.count("net.delivered");
          }
          {
            std::shared_lock<std::shared_mutex> lk2(peers_mu_);
            const auto it = peers_.find(at);
            if (it != peers_.end())
              it->second.delivered.fetch_add(1, std::memory_order_relaxed);
          }
          fn();
        },
        at);
  }
  strand_cv_.notify_one();
}

// --- Inbound envelopes (io threads) -----------------------------------------

void SocketTransport::on_envelope(const EnvelopeMsg& env) {
  // Test/fault hook: discard the next N inbound envelopes as if the frames
  // had died on the read side of the wire.
  std::uint64_t budget = drop_inbound_.load(std::memory_order_relaxed);
  while (budget > 0 &&
         !drop_inbound_.compare_exchange_weak(budget, budget - 1,
                                              std::memory_order_relaxed)) {
  }
  if (budget > 0) return;

  if (!env.payload.empty()) {
    // Cross-process payload: decode the inner frame and dispatch it to the
    // payload handler on the strand. The sender's process counted delivery;
    // here it is remote traffic in.
    std::optional<DecodedFrame> inner =
        decode_frame(env.payload.data(), env.payload.size());
    if (!inner.has_value() || inner->kind != env.inner_kind) {
      note_decode_error();
      return;
    }
    if (!payload_handler_) {
      std::lock_guard<std::mutex> lk(metrics_mu_);
      metrics_.count("net.stray");
      return;
    }
    {
      std::lock_guard<std::mutex> lk(metrics_mu_);
      metrics_.count("net.remote.in");
      metrics_.count("net.remote.in." + std::string(kind_name(inner->kind)));
    }
    enqueue_ready(
        [this, from = env.from, to = env.to, kind = inner->kind,
         msg = std::move(inner->msg)] { payload_handler_(from, to, kind, msg); },
        env.to, /*counts_delivery=*/false);
    return;
  }

  Handler h;
  EndpointId at = 0;
  {
    std::lock_guard<std::mutex> lk(handlers_mu_);
    const auto it = parked_.find(env.msg_id);
    if (it == parked_.end()) {
      // Unknown message id: a duplicate or stray frame. Count and drop.
      std::lock_guard<std::mutex> mlk(metrics_mu_);
      metrics_.count("net.stray");
      return;
    }
    h = std::move(it->second.fn);
    at = it->second.to;
    parked_.erase(it);
  }
  enqueue_ready(std::move(h), at, /*counts_delivery=*/true);
}

void SocketTransport::sweep_parked() {
  std::vector<ParkedEntry> dead;
  const Clock::time_point now_tp = Clock::now();
  {
    std::lock_guard<std::mutex> lk(handlers_mu_);
    for (auto it = parked_.begin(); it != parked_.end();) {
      if (it->second.deadline <= now_tp) {
        dead.push_back(std::move(it->second));
        it = parked_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (dead.empty()) return;
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    inflight_ -= std::min<std::uint64_t>(inflight_, dead.size());
  }
  idle_cv_.notify_all();
  // The envelope never came back: the frame died on the wire. Attribute
  // like any other connection loss — but no peer-down report; a lost frame
  // is packet death, not positive evidence the destination process died.
  for (const ParkedEntry& e : dead) count_loss(e.kind, WireResult::kConnDead);
}

void SocketTransport::note_decode_error() {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  ++decode_errors_;
}

// --- Dispatch strand --------------------------------------------------------

void SocketTransport::dispatch_loop() {
  std::unique_lock<std::mutex> lk(strand_mu_);
  while (true) {
    if (stopping_) break;
    const Clock::time_point now_tp = Clock::now();

    if (!ready_.empty()) {
      auto [fn, at] = std::move(ready_.front());
      ready_.pop_front();
      lk.unlock();
      fn();
      lk.lock();
      --inflight_;
      idle_cv_.notify_all();
      continue;
    }
    if (!schedule_.empty() && schedule_.begin()->first.first <= now_tp) {
      auto it = schedule_.begin();
      TimerEntry entry = std::move(it->second);
      if (entry.id != 0) timer_keys_.erase(entry.id);
      schedule_.erase(it);
      lk.unlock();
      entry.fn();
      lk.lock();
      // Plain events count toward idleness until their handler has run.
      if (entry.id == 0) --pending_events_;
      idle_cv_.notify_all();
      continue;
    }
    if (!schedule_.empty()) {
      // Copy the deadline out of the map node: cancel_timer may erase that
      // node (freeing the key) while this thread is blocked on it.
      const Clock::time_point deadline = schedule_.begin()->first.first;
      strand_cv_.wait_until(lk, deadline);
    } else {
      strand_cv_.wait(lk);
    }
  }
}

// --- Time and timers --------------------------------------------------------

Time SocketTransport::now() const {
  const auto elapsed = Clock::now() - start_;
  return static_cast<Time>(elapsed / common_.tick);
}

void SocketTransport::schedule_in(Time delay, Handler fn) {
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    if (stopping_) return;
    const ScheduleKey key{Clock::now() + common_.tick * delay, next_seq_++};
    schedule_.emplace(key, TimerEntry{0, std::move(fn)});
    ++pending_events_;
  }
  strand_cv_.notify_one();
}

Transport::TimerId SocketTransport::set_timer(Time delay, Handler fn) {
  TimerId id;
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    if (stopping_) return 0;
    id = next_timer_++;
    const ScheduleKey key{Clock::now() + common_.tick * delay, next_seq_++};
    schedule_.emplace(key, TimerEntry{id, std::move(fn)});
    timer_keys_.emplace(id, key);
  }
  strand_cv_.notify_one();
  return id;
}

bool SocketTransport::cancel_timer(TimerId id) {
  std::lock_guard<std::mutex> lk(strand_mu_);
  const auto it = timer_keys_.find(id);
  if (it == timer_keys_.end()) return false;
  schedule_.erase(it->second);
  timer_keys_.erase(it);
  return true;
}

// --- Accounting / control ---------------------------------------------------

void SocketTransport::set_send_observer(SendObserver fn) {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  observer_ = std::move(fn);
}

void SocketTransport::set_peer_down_observer(PeerDownObserver fn) {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  peer_down_ = std::move(fn);
}

std::size_t SocketTransport::live_timer_count() const {
  std::lock_guard<std::mutex> lk(strand_mu_);
  return timer_keys_.size();
}

bool SocketTransport::drain_and_stop(std::chrono::milliseconds timeout) {
  const bool idle = wait_idle(timeout);
  stop();
  return idle;
}

bool SocketTransport::wait_idle(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(strand_mu_);
  return idle_cv_.wait_for(lk, timeout, [this] {
    return stopping_ ||
           (inflight_ == 0 && ready_.empty() && pending_events_ == 0);
  });
}

std::uint64_t SocketTransport::decode_errors() const {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  return decode_errors_;
}

void SocketTransport::drop_inbound(std::uint64_t n) {
  drop_inbound_.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace hkws::net
