// The real-socket Transport backend: the same protocol state machines that
// run on the simulator, carried over loopback TCP with real serialization,
// real syscalls, and real threads.
//
// Architecture (per instance):
//
//   caller threads ──send()──► envelope codec ──write──► loopback TCP ─┐
//                                                                      │
//   io thread: poll() over the listen socket + accepted connections ◄──┘
//     reads byte streams, reassembles frames (net/wire.hpp), looks up the
//     parked delivery handler by message id, enqueues it for dispatch
//
//   dispatch thread ("the strand"): executes delivered handlers and due
//     timers one at a time, in arrival/deadline order
//
// Every send() serializes a real EnvelopeMsg frame — version byte, kind id,
// endpoints, declared payload size — plus payload-sized padding (capped by
// Config::max_pad), so serialization and socket cost track the protocol's
// byte accounting. The frame crosses a real kernel socket even though
// sender and receiver share an address space: this backend gives the state
// machines a real concurrent runtime while the closure-based handler model
// keeps them unchanged. (Cross-process deployment composes these instances
// per process and speaks codec frames between processes: see tools/peerd.)
//
// Threading contract: protocol state machines are NOT thread-safe — they
// were written against the simulator's single event loop. The dispatch
// strand preserves exactly that discipline: all handlers and timers run on
// one thread, serialized. Code that *initiates* protocol operations from
// another thread (a test's main thread, peerd's front-end accept loop) must
// marshal onto the strand with schedule_in(0, ...). The transport's own
// shared state is what real threads contend on, and it is locked for real:
// per-peer endpoint state behind a reader-writer lock (sends take the read
// side, membership changes the write side), the in-flight handler table and
// metrics behind mutexes.
//
// Accounting parity: the same counters as the simulator — net.messages,
// net.bytes, msg.<kind>, net.local, net.dropped[.kind], net.delivered —
// and the same per-send observer hook, so obs tracing and per-kind metrics
// stay truthful on the socket path. Drop causes are attributed:
// net.dropped.unregistered (absent peer), net.dropped.conn (the wire died
// under a frame — also counted net.lost, and reported to the observer with
// SendRecord.lost = true), and net.dropped.fault (injected, by the
// FaultTransport decorator; this class never counts it itself).
//
// Time: now() counts ticks of Config::tick wall-clock duration since
// construction; set_timer/schedule_in deadlines are wall-clock. The sim
// backend stays bit-identical because nothing here touches it — determinism
// on this backend is the protocol's order-independence (visit-order hit
// assembly), not event-order reproduction.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace hkws::net {

class TcpTransport final : public Transport {
 public:
  struct Config {
    /// Wall-clock duration of one transport tick. Protocol timeout
    /// constants are written in ticks (sim convention: ~1ms); the default
    /// compresses them 10x so loss-recovery tests stay fast.
    std::chrono::microseconds tick{100};
    /// Parallel loopback connections (sends round-robin across them, so
    /// concurrent senders do not serialize on one stream).
    int wire_connections = 2;
    /// Connection establishment: attempts and exponential backoff bounds.
    int connect_attempts = 20;
    std::chrono::milliseconds connect_backoff{2};
    std::chrono::milliseconds connect_backoff_cap{100};
    /// Cap on per-frame padding bytes (real serialization cost tracks the
    /// declared payload size up to this bound).
    std::uint32_t max_pad = 64 * 1024;
    /// Seed for the backoff jitter RNG (determinism discipline: every
    /// random draw in the runtime is seeded).
    std::uint64_t seed = 1;
  };

  explicit TcpTransport(Config cfg);
  TcpTransport() : TcpTransport(Config{}) {}
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // --- Transport interface ------------------------------------------------

  void register_endpoint(EndpointId id) override;
  void unregister_endpoint(EndpointId id) override;
  bool is_registered(EndpointId id) const override;

  void send(EndpointId from, EndpointId to, std::string kind,
            std::size_t payload_bytes, Handler deliver) override;

  Time now() const override;
  void schedule_in(Time delay, Handler fn) override;
  TimerId set_timer(Time delay, Handler fn) override;
  bool cancel_timer(TimerId id) override;

  sim::Metrics& metrics() override { return metrics_; }
  const sim::Metrics& metrics() const override { return metrics_; }
  void set_send_observer(SendObserver fn) override;

  // --- Runtime control ----------------------------------------------------

  /// The loopback port this instance listens on (ephemeral, bound at
  /// construction).
  std::uint16_t port() const noexcept { return port_; }

  const Config& config() const noexcept { return cfg_; }

  /// Blocks until no message is in flight, the dispatch queue is empty, and
  /// no plain scheduled event (schedule_in) is pending — cancelable timers
  /// (retransmission guards) do not count. Returns false on timeout.
  bool wait_idle(std::chrono::milliseconds timeout);

  /// Stops the runtime: closes sockets, joins threads, drops queued work.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Graceful shutdown: waits (up to `timeout`) for in-flight messages and
  /// plain scheduled events to drain, then stops. Returns whether the
  /// runtime actually went idle before stopping — false means queued work
  /// was dropped, exactly what stop() alone always does. peerd's SIGTERM
  /// path: stop initiating work, then drain_and_stop().
  bool drain_and_stop(std::chrono::milliseconds timeout);

  /// Peer-down hook: invoked on the dispatch strand when the transport
  /// positively observes a destination's connection die under a frame (a
  /// wire write fails). Fires at most once per endpoint between
  /// registrations. This is the fast-path liveness signal the maintenance
  /// plane's FailureDetector consumes instead of waiting out heartbeat
  /// misses. Install before traffic starts; nullptr removes.
  using PeerDownObserver = std::function<void(EndpointId)>;
  void set_peer_down_observer(PeerDownObserver fn);

  /// Test/fault hook: shuts down every outbound wire connection, so each
  /// subsequent wire send fails deterministically (and is accounted
  /// net.dropped.conn, SendRecord.lost = true). Frames already written
  /// still drain to the reader — the cut is clean at a frame boundary,
  /// never mid-frame.
  void sever_wire();

  /// Cancelable timers currently pending (the torture harness's timer
  /// invariant reads this; parity with sim::EventQueue::live_timer_count).
  std::size_t live_timer_count() const;

  /// Wire frames that failed envelope decode (0 in a healthy runtime; the
  /// connection that produced one is dropped).
  std::uint64_t decode_errors() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Schedule key: (deadline, insertion seq) — FIFO among equal deadlines,
  /// the simulator's tie-break discipline.
  using ScheduleKey = std::pair<Clock::time_point, std::uint64_t>;

  struct TimerEntry {
    TimerId id = 0;  ///< 0 = plain event (schedule_in, not cancelable)
    Handler fn;
  };

  /// Per-peer node state (reader-writer locked: see peers_mu_).
  struct PeerState {
    bool registered = false;
    std::uint64_t sent = 0;       ///< wire messages originated by this peer
    std::uint64_t delivered = 0;  ///< handlers executed at this peer
  };

  void io_loop();
  void dispatch_loop();
  /// Fires the peer-down observer for `to` (once per registration),
  /// marshaled onto the dispatch strand.
  void report_peer_down(EndpointId to);
  /// Parses complete frames out of a connection's read buffer; returns
  /// false when the connection must be dropped (decode error).
  bool drain_buffer(std::vector<std::uint8_t>& buf);
  void on_envelope(const EnvelopeMsg& env);
  void enqueue_ready(Handler fn, EndpointId at, bool counts_delivery);
  int connect_loopback();
  void close_fd(int& fd);

  Config cfg_;
  Clock::time_point start_;

  // Sockets. listen_fd_ accepts; out_fds_ are the client ends sends write
  // to (each guarded by its own write mutex so concurrent senders can use
  // distinct streams in parallel); accepted connections live in the io
  // thread only.
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< unblocks the io thread's poll on stop
  std::uint16_t port_ = 0;
  std::vector<int> out_fds_;
  std::unique_ptr<std::mutex[]> out_mu_;
  std::atomic<std::uint64_t> round_robin_{0};

  // Per-peer endpoint state: reader-writer lock, sends read, membership
  // writes.
  mutable std::shared_mutex peers_mu_;
  std::unordered_map<EndpointId, PeerState> peers_;

  // Parked delivery handlers keyed by envelope message id.
  std::mutex handlers_mu_;
  std::unordered_map<std::uint64_t, std::pair<Handler, EndpointId>> parked_;
  std::uint64_t next_msg_ = 1;

  // Dispatch strand state.
  mutable std::mutex strand_mu_;
  std::condition_variable strand_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::pair<Handler, EndpointId>> ready_;  ///< delivered, FIFO
  std::map<ScheduleKey, TimerEntry> schedule_;  ///< timers + plain events
  std::unordered_map<TimerId, ScheduleKey> timer_keys_;  ///< cancel index
  std::uint64_t pending_events_ = 0;  ///< schedule_ entries with id == 0
  std::uint64_t next_timer_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t inflight_ = 0;  ///< sent-not-yet-executed messages
  bool stopping_ = false;

  // Accounting (metrics_mu_ also serializes the observer, matching the
  // sim's synchronous-from-send() contract).
  mutable std::mutex metrics_mu_;
  sim::Metrics metrics_;
  SendObserver observer_;
  PeerDownObserver peer_down_;
  std::uint64_t decode_errors_ = 0;

  // Endpoints already reported down (avoids a storm of peer-down callbacks
  // when many frames hit the same dead connection). Guarded by peers_mu_.
  std::unordered_map<EndpointId, bool> down_reported_;

  Rng backoff_rng_;

  std::thread io_thread_;
  std::thread dispatch_thread_;
};

}  // namespace hkws::net
