// The TCP Transport backend: the same protocol state machines that run on
// the simulator, carried over loopback TCP with real serialization, real
// syscalls, and real threads.
//
// Architecture (per instance):
//
//   caller threads ──send()──► envelope codec ──write──► loopback TCP ─┐
//                                                                      │
//   io thread: poll() over the listen socket + accepted connections ◄──┘
//     reads byte streams, reassembles frames (net/wire.hpp), redeems the
//     parked delivery handler by message id — or, for frames carrying a
//     payload, decodes the inner message — and enqueues for dispatch
//
//   dispatch thread ("the strand"): executes delivered handlers and due
//     timers one at a time, in arrival/deadline order
//
// Two kinds of traffic share the wire (see net/socket_transport.hpp and
// docs/PROTOCOL.md "Addressing & delivery"):
//  * closure sends (send()) park the delivery handler and loop an
//    addressed envelope through this instance's own listen socket — a real
//    kernel socket even though sender and receiver share an address space;
//  * payload sends (send_payload()) to endpoints in the peer-address table
//    serialize the real message through the wire codec and write it on a
//    per-address outbound connection to the owning process, whose io
//    thread decodes and dispatches it on its own strand.
//
// Threading contract, accounting parity, and time semantics are the
// SocketTransport base contract. This class owns only the sockets: the
// listen socket + self-wire lanes, lazily-connected per-address remote
// connections, and the io thread that feeds frames back to the base.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/socket_transport.hpp"

namespace hkws::net {

class TcpTransport final : public SocketTransport {
 public:
  struct Config {
    /// Wall-clock duration of one transport tick. Protocol timeout
    /// constants are written in ticks (sim convention: ~1ms); the default
    /// compresses them 10x so loss-recovery tests stay fast.
    std::chrono::microseconds tick{100};
    /// Parallel loopback connections (sends round-robin across them, so
    /// concurrent senders do not serialize on one stream).
    int wire_connections = 2;
    /// Connection establishment: attempts and exponential backoff bounds.
    int connect_attempts = 20;
    std::chrono::milliseconds connect_backoff{2};
    std::chrono::milliseconds connect_backoff_cap{100};
    /// Cap on per-frame padding bytes (real serialization cost tracks the
    /// declared payload size up to this bound).
    std::uint32_t max_pad = 64 * 1024;
    /// Deadline for parked delivery handlers (see CommonConfig::parked_ttl).
    std::chrono::milliseconds parked_ttl{3000};
    /// Seed for the backoff jitter RNG (determinism discipline: every
    /// random draw in the runtime is seeded).
    std::uint64_t seed = 1;
  };

  explicit TcpTransport(Config cfg);
  TcpTransport() : TcpTransport(Config{}) {}
  ~TcpTransport() override;

  // --- Runtime control ----------------------------------------------------

  /// The loopback port this instance listens on (ephemeral, bound at
  /// construction). Other processes route payload frames here once it is
  /// in their peer-address tables.
  std::uint16_t port() const noexcept { return port_; }

  const Config& config() const noexcept { return cfg_; }

  void stop() override;

  /// Test/fault hook: shuts down every outbound wire connection (self-wire
  /// lanes and remote connections), so each subsequent wire send fails
  /// deterministically (and is accounted net.dropped.conn,
  /// SendRecord.lost = true). Frames already written still drain to the
  /// reader — the cut is clean at a frame boundary, never mid-frame.
  void sever_wire();

 private:
  WireResult wire_send(const std::vector<std::uint8_t>& frame,
                       const sockaddr_in* remote) override;

  void io_loop();
  /// Parses complete frames out of a connection's read buffer; returns
  /// false when the connection must be dropped (decode error).
  bool drain_buffer(std::vector<std::uint8_t>& buf);
  int connect_loopback();
  int connect_to(const sockaddr_in& addr);
  void close_fd(int& fd);

  /// One lazily-established outbound connection to a remote process.
  /// A single ordered stream per address: frames to the same process
  /// arrive FIFO (publish-before-query ordering for the split overlay).
  struct RemoteConn {
    int fd = -1;
    std::mutex mu;
  };

  Config cfg_;

  // Sockets. listen_fd_ accepts; out_fds_ are the self-wire client ends
  // sends write to (each guarded by its own write mutex so concurrent
  // senders can use distinct streams in parallel); accepted connections
  // live in the io thread only.
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< unblocks the io thread's poll on stop
  std::uint16_t port_ = 0;
  std::vector<int> out_fds_;
  std::unique_ptr<std::mutex[]> out_mu_;
  std::atomic<std::uint64_t> round_robin_{0};

  // Outbound connections to other processes, keyed by (ip, port).
  std::mutex remotes_mu_;
  std::map<std::uint64_t, std::unique_ptr<RemoteConn>> remotes_;

  std::mutex rng_mu_;  ///< connect_to runs on concurrent sender threads
  Rng backoff_rng_;

  std::thread io_thread_;
};

}  // namespace hkws::net
