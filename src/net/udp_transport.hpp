// The UDP Transport backend: every envelope is one datagram, and the
// medium genuinely loses packets — which is the point. The loss machinery
// the protocol layers grew against the simulator's drop models (step
// timeouts, retransmission, exponential backoff, failover) runs here
// against a wire where loss is the transport's native failure mode, not a
// decorator's injection.
//
// Architecture (per instance): one loopback UDP socket, bound ephemeral.
// Self-wire frames (parked-handler sends) and cross-process payload frames
// (peer-address table) both go out as single datagrams via sendto(); the
// io thread recvfrom()s whole envelopes — no stream reassembly, datagram
// boundaries are frame boundaries — and feeds them to the SocketTransport
// base exactly like the TCP backend.
//
// Loss semantics (docs/ROBUSTNESS.md):
//  * the seeded drop model discards a frame at send time — counted
//    net.dropped.fault + net.lost, like a sim drop model, with no
//    peer-down report (packet loss is not peer death);
//  * a frame the kernel or the read side swallows (buffer overrun,
//    drop_inbound) leaks no state: the parked-handler sweep releases the
//    sender's slot as net.dropped.conn after parked_ttl;
//  * frames larger than one datagram (kMaxDatagram) cannot be carried and
//    are counted net.dropped.conn at send.
// Either way the conservation identity net.messages == net.delivered +
// net.lost closes per process; retransmission above (OverlayIndex /
// PeerSlice step timers) is what masks the loss from the application.
//
// Unlike TCP there is no per-destination ordering guarantee; protocol
// layers that need publish-before-query ordering must settle between
// phases (index::PeerSlice::publish does).
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/socket_transport.hpp"

namespace hkws::net {

class UdpTransport final : public SocketTransport {
 public:
  /// Largest envelope frame one datagram carries (conservative loopback
  /// UDP payload bound).
  static constexpr std::size_t kMaxDatagram = 60 * 1024;

  struct Config {
    /// Wall-clock duration of one transport tick (see TcpTransport).
    std::chrono::microseconds tick{100};
    /// Cap on per-frame padding bytes. Capped harder than TCP so padded
    /// envelopes always fit one datagram.
    std::uint32_t max_pad = 32 * 1024;
    /// Deadline for parked delivery handlers (see CommonConfig::parked_ttl).
    std::chrono::milliseconds parked_ttl{3000};
    /// Probability in [0,1] that the drop model discards an outbound
    /// frame. Runtime-adjustable via set_drop_rate() so tests arm loss
    /// only after a lossless publish phase.
    double drop_rate = 0.0;
    /// Seed for the drop-model RNG.
    std::uint64_t seed = 1;
  };

  explicit UdpTransport(Config cfg);
  UdpTransport() : UdpTransport(Config{}) {}
  ~UdpTransport() override;

  /// The loopback port this instance's socket is bound to.
  std::uint16_t port() const noexcept { return port_; }

  const Config& config() const noexcept { return cfg_; }

  /// Re-arms the seeded drop model (0 disarms). Applies to frames sent
  /// after the call.
  void set_drop_rate(double rate);

  void stop() override;

 private:
  WireResult wire_send(const std::vector<std::uint8_t>& frame,
                       const sockaddr_in* remote) override;
  void io_loop();

  Config cfg_;

  int fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  sockaddr_in self_addr_{};

  std::mutex send_mu_;  ///< serializes sendto + the drop-model RNG draw
  Rng drop_rng_;
  std::atomic<std::uint64_t> drop_ppm_{0};  ///< drop_rate in parts-per-million

  std::thread io_thread_;
};

}  // namespace hkws::net
