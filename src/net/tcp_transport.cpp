#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace hkws::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

/// Full write with partial-write/EINTR handling. MSG_NOSIGNAL so a peer
/// closing mid-write surfaces as EPIPE, not a process signal.
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(Config cfg)
    : cfg_(cfg), start_(Clock::now()), backoff_rng_(cfg.seed) {
  if (cfg_.wire_connections < 1) cfg_.wire_connections = 1;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bind/listen failed");
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: pipe failed");
  }

  // The wire: a small pool of loopback connections the senders round-robin
  // across. connect() succeeds against the listen backlog even before the
  // io thread accepts, but retry with seeded exponential backoff anyway —
  // the same policy a cross-process front-end uses against a peer that is
  // still starting up.
  out_mu_ = std::make_unique<std::mutex[]>(
      static_cast<std::size_t>(cfg_.wire_connections));
  for (int i = 0; i < cfg_.wire_connections; ++i) {
    const int fd = connect_loopback();
    if (fd < 0) {
      stop();
      throw std::runtime_error("TcpTransport: loopback connect failed");
    }
    out_fds_.push_back(fd);
  }

  io_thread_ = std::thread([this] { io_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

TcpTransport::~TcpTransport() { stop(); }

int TcpTransport::connect_loopback() {
  auto backoff = cfg_.connect_backoff;
  for (int attempt = 0; attempt < cfg_.connect_attempts; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    // Exponential backoff with seeded jitter, capped.
    const auto jitter = std::chrono::milliseconds(
        backoff_rng_.next_below(static_cast<std::uint64_t>(
            backoff.count() / 2 + 1)));
    std::this_thread::sleep_for(backoff + jitter);
    backoff = std::min(backoff * 2, cfg_.connect_backoff_cap);
  }
  return -1;
}

void TcpTransport::close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void TcpTransport::stop() {
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  strand_cv_.notify_all();
  idle_cv_.notify_all();
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (io_thread_.joinable()) io_thread_.join();
  for (int& fd : out_fds_) close_fd(fd);
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

// --- Endpoints (reader-writer-locked per-peer state) ------------------------

void TcpTransport::register_endpoint(EndpointId id) {
  std::unique_lock<std::shared_mutex> lk(peers_mu_);
  peers_[id].registered = true;
  down_reported_[id] = false;  // a re-registered peer may be reported again
}

void TcpTransport::unregister_endpoint(EndpointId id) {
  std::unique_lock<std::shared_mutex> lk(peers_mu_);
  const auto it = peers_.find(id);
  if (it != peers_.end()) it->second.registered = false;
}

bool TcpTransport::is_registered(EndpointId id) const {
  std::shared_lock<std::shared_mutex> lk(peers_mu_);
  const auto it = peers_.find(id);
  return it != peers_.end() && it->second.registered;
}

// --- Send -------------------------------------------------------------------

void TcpTransport::send(EndpointId from, EndpointId to, std::string kind,
                        std::size_t payload_bytes, Handler deliver) {
  if (from == to) {
    // Local call: no wire traffic, async delivery — the simulator's
    // contract, preserved so protocol code behaves identically.
    {
      std::lock_guard<std::mutex> lk(metrics_mu_);
      metrics_.count("net.local");
    }
    enqueue_ready(std::move(deliver), to, /*counts_delivery=*/false);
    return;
  }
  if (!is_registered(to)) {
    std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.count("net.dropped");
    metrics_.count("net.dropped." + kind);
    metrics_.count("net.dropped.unregistered");
    return;
  }

  // Park the delivery handler; the io thread redeems it by message id when
  // the envelope comes back off the socket.
  std::uint64_t msg_id;
  {
    std::lock_guard<std::mutex> lk(handlers_mu_);
    msg_id = next_msg_++;
    parked_.emplace(msg_id, std::make_pair(std::move(deliver), to));
  }
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    ++inflight_;
  }
  {
    std::shared_lock<std::shared_mutex> lk(peers_mu_);
    const auto it = peers_.find(from);
    if (it != peers_.end())
      ++const_cast<PeerState&>(it->second).sent;
  }

  EnvelopeMsg env;
  const std::optional<MsgKind> known = kind_of(kind);
  env.inner_kind = known.value_or(MsgKind::kOpaque);
  if (!known.has_value()) env.label = kind;
  env.msg_id = msg_id;
  env.from = from;
  env.to = to;
  env.declared_bytes = payload_bytes;
  env.pad = static_cast<std::uint32_t>(
      std::min<std::size_t>(payload_bytes, cfg_.max_pad));
  const std::vector<std::uint8_t> frame =
      encode_frame(MsgKind::kEnvelope, WireMessage{env});

  {
    std::lock_guard<std::mutex> lk(metrics_mu_);
    metrics_.count("net.messages");
    metrics_.count("net.bytes", payload_bytes);
    metrics_.count("net.wire_bytes", frame.size());
    metrics_.count("msg." + kind);
  }

  const std::size_t lane =
      round_robin_.fetch_add(1, std::memory_order_relaxed) % out_fds_.size();
  bool ok;
  {
    std::lock_guard<std::mutex> lk(out_mu_[lane]);
    ok = write_all(out_fds_[lane], frame.data(), frame.size());
  }
  if (!ok) {
    // The connection died under the frame (peer teardown, sever_wire, or
    // stop() racing a late send): the message is lost, not delivered.
    // Release the parked handler, attribute the loss (net.dropped.conn),
    // and report the destination down — connection death is a positive
    // liveness signal the failure detector can act on immediately.
    {
      std::lock_guard<std::mutex> lk(handlers_mu_);
      parked_.erase(msg_id);
    }
    {
      std::lock_guard<std::mutex> lk(strand_mu_);
      --inflight_;
    }
    idle_cv_.notify_all();
    {
      std::lock_guard<std::mutex> mlk(metrics_mu_);
      metrics_.count("net.lost");
      metrics_.count("net.lost." + kind);
      metrics_.count("net.dropped." + kind);
      metrics_.count("net.dropped.conn");
    }
    report_peer_down(to);
  }
  // Observe after the wire has decided the frame's fate, so SendRecord.lost
  // is truthful — a frame the connection swallowed is never reported
  // delivered.
  std::lock_guard<std::mutex> lk(metrics_mu_);
  if (observer_) {
    const Time at = now();
    observer_(kind, SendRecord{at, from, to, payload_bytes, !ok, at});
  }
}

void TcpTransport::report_peer_down(EndpointId to) {
  {
    // At most one report per endpoint per registration: many frames can
    // hit the same dead wire.
    std::unique_lock<std::shared_mutex> lk(peers_mu_);
    if (down_reported_[to]) return;
    down_reported_[to] = true;
  }
  PeerDownObserver cb;
  {
    std::lock_guard<std::mutex> lk(metrics_mu_);
    cb = peer_down_;
  }
  if (!cb) return;
  // Marshal onto the dispatch strand: the consumer is protocol code
  // (FailureDetector) that must only ever run strand-serialized.
  schedule_in(0, [cb = std::move(cb), to] { cb(to); });
}

void TcpTransport::enqueue_ready(Handler fn, EndpointId at,
                                 bool counts_delivery) {
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    if (stopping_) return;
    if (!counts_delivery) ++inflight_;  // wire sends already counted
    ready_.emplace_back(
        [this, fn = std::move(fn), at, counts_delivery] {
          if (counts_delivery) {
            std::lock_guard<std::mutex> lk2(metrics_mu_);
            metrics_.count("net.delivered");
          }
          {
            std::shared_lock<std::shared_mutex> lk2(peers_mu_);
            const auto it = peers_.find(at);
            if (it != peers_.end())
              ++const_cast<PeerState&>(it->second).delivered;
          }
          fn();
        },
        at);
  }
  strand_cv_.notify_one();
}

// --- IO thread --------------------------------------------------------------

void TcpTransport::on_envelope(const EnvelopeMsg& env) {
  Handler h;
  EndpointId at = 0;
  {
    std::lock_guard<std::mutex> lk(handlers_mu_);
    const auto it = parked_.find(env.msg_id);
    if (it == parked_.end()) {
      // Unknown message id: a duplicate or stray frame. Count and drop.
      std::lock_guard<std::mutex> mlk(metrics_mu_);
      metrics_.count("net.stray");
      return;
    }
    h = std::move(it->second.first);
    at = it->second.second;
    parked_.erase(it);
  }
  enqueue_ready(std::move(h), at, /*counts_delivery=*/true);
}

bool TcpTransport::drain_buffer(std::vector<std::uint8_t>& buf) {
  std::size_t off = 0;
  while (true) {
    const std::optional<std::size_t> need =
        frame_size(buf.data() + off, buf.size() - off);
    if (!need.has_value()) {
      std::lock_guard<std::mutex> lk(metrics_mu_);
      ++decode_errors_;
      return false;  // malformed header: drop the connection
    }
    if (*need == 0 || *need > buf.size() - off) break;  // incomplete frame
    const std::optional<DecodedFrame> frame =
        decode_frame(buf.data() + off, *need);
    if (!frame.has_value() || frame->kind != MsgKind::kEnvelope) {
      std::lock_guard<std::mutex> lk(metrics_mu_);
      ++decode_errors_;
      return false;
    }
    on_envelope(std::get<EnvelopeMsg>(frame->msg));
    off += *need;
  }
  if (off > 0) buf.erase(buf.begin(), buf.begin() + static_cast<long>(off));
  return true;
}

void TcpTransport::io_loop() {
  struct Conn {
    int fd;
    std::vector<std::uint8_t> buf;
  };
  std::vector<Conn> conns;

  while (true) {
    {
      std::lock_guard<std::mutex> lk(strand_mu_);
      if (stopping_) break;
    }
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const Conn& c : conns) fds.push_back({c.fd, POLLIN, 0});
    if (::poll(fds.data(), fds.size(), 100) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns.push_back(Conn{fd, {}});
        continue;  // re-poll with the new connection included
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Conn& c = conns[i - 2];
      std::uint8_t chunk[kReadChunk];
      const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        c.buf.insert(c.buf.end(), chunk, chunk + n);
        if (!drain_buffer(c.buf)) c.fd = -1;  // decode error: drop below
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        c.fd = -1;  // closed or errored
      }
    }
    for (std::size_t i = conns.size(); i-- > 0;) {
      if (conns[i].fd < 0) {
        conns.erase(conns.begin() + static_cast<long>(i));
      }
    }
  }
  for (Conn& c : conns) ::close(c.fd);
}

// --- Dispatch strand --------------------------------------------------------

void TcpTransport::dispatch_loop() {
  std::unique_lock<std::mutex> lk(strand_mu_);
  while (true) {
    if (stopping_) break;
    const Clock::time_point now_tp = Clock::now();

    if (!ready_.empty()) {
      auto [fn, at] = std::move(ready_.front());
      ready_.pop_front();
      lk.unlock();
      fn();
      lk.lock();
      --inflight_;
      idle_cv_.notify_all();
      continue;
    }
    if (!schedule_.empty() && schedule_.begin()->first.first <= now_tp) {
      auto it = schedule_.begin();
      TimerEntry entry = std::move(it->second);
      if (entry.id != 0) timer_keys_.erase(entry.id);
      schedule_.erase(it);
      lk.unlock();
      entry.fn();
      lk.lock();
      // Plain events count toward idleness until their handler has run.
      if (entry.id == 0) --pending_events_;
      idle_cv_.notify_all();
      continue;
    }
    if (!schedule_.empty()) {
      // Copy the deadline out of the map node: cancel_timer may erase that
      // node (freeing the key) while this thread is blocked on it.
      const Clock::time_point deadline = schedule_.begin()->first.first;
      strand_cv_.wait_until(lk, deadline);
    } else {
      strand_cv_.wait(lk);
    }
  }
}

// --- Time and timers --------------------------------------------------------

Time TcpTransport::now() const {
  const auto elapsed = Clock::now() - start_;
  return static_cast<Time>(elapsed / cfg_.tick);
}

void TcpTransport::schedule_in(Time delay, Handler fn) {
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    if (stopping_) return;
    const ScheduleKey key{Clock::now() + cfg_.tick * delay, next_seq_++};
    schedule_.emplace(key, TimerEntry{0, std::move(fn)});
    ++pending_events_;
  }
  strand_cv_.notify_one();
}

Transport::TimerId TcpTransport::set_timer(Time delay, Handler fn) {
  TimerId id;
  {
    std::lock_guard<std::mutex> lk(strand_mu_);
    if (stopping_) return 0;
    id = next_timer_++;
    const ScheduleKey key{Clock::now() + cfg_.tick * delay, next_seq_++};
    schedule_.emplace(key, TimerEntry{id, std::move(fn)});
    timer_keys_.emplace(id, key);
  }
  strand_cv_.notify_one();
  return id;
}

bool TcpTransport::cancel_timer(TimerId id) {
  std::lock_guard<std::mutex> lk(strand_mu_);
  const auto it = timer_keys_.find(id);
  if (it == timer_keys_.end()) return false;
  schedule_.erase(it->second);
  timer_keys_.erase(it);
  return true;
}

// --- Accounting / control ---------------------------------------------------

void TcpTransport::set_send_observer(SendObserver fn) {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  observer_ = std::move(fn);
}

void TcpTransport::set_peer_down_observer(PeerDownObserver fn) {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  peer_down_ = std::move(fn);
}

void TcpTransport::sever_wire() {
  for (std::size_t lane = 0; lane < out_fds_.size(); ++lane) {
    std::lock_guard<std::mutex> lk(out_mu_[lane]);
    if (out_fds_[lane] >= 0) ::shutdown(out_fds_[lane], SHUT_RDWR);
  }
}

std::size_t TcpTransport::live_timer_count() const {
  std::lock_guard<std::mutex> lk(strand_mu_);
  return timer_keys_.size();
}

bool TcpTransport::drain_and_stop(std::chrono::milliseconds timeout) {
  const bool idle = wait_idle(timeout);
  stop();
  return idle;
}

bool TcpTransport::wait_idle(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(strand_mu_);
  return idle_cv_.wait_for(lk, timeout, [this] {
    return stopping_ ||
           (inflight_ == 0 && ready_.empty() && pending_events_ == 0);
  });
}

std::uint64_t TcpTransport::decode_errors() const {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  return decode_errors_;
}

}  // namespace hkws::net
