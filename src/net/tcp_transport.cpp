#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace hkws::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

/// Full write with partial-write/EINTR handling. MSG_NOSIGNAL so a peer
/// closing mid-write surfaces as EPIPE, not a process signal.
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t addr_key(const sockaddr_in& sa) {
  return (static_cast<std::uint64_t>(sa.sin_addr.s_addr) << 16) |
         ntohs(sa.sin_port);
}

}  // namespace

TcpTransport::TcpTransport(Config cfg)
    : SocketTransport(CommonConfig{cfg.tick, cfg.max_pad, cfg.parked_ttl}),
      cfg_(cfg),
      backoff_rng_(cfg.seed) {
  if (cfg_.wire_connections < 1) cfg_.wire_connections = 1;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bind/listen failed");
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: pipe failed");
  }

  // The self-wire: a small pool of loopback connections the senders
  // round-robin across. connect() succeeds against the listen backlog even
  // before the io thread accepts, but retry with seeded exponential backoff
  // anyway — the same policy a cross-process sender uses against a peer
  // that is still starting up.
  out_mu_ = std::make_unique<std::mutex[]>(
      static_cast<std::size_t>(cfg_.wire_connections));
  for (int i = 0; i < cfg_.wire_connections; ++i) {
    const int fd = connect_loopback();
    if (fd < 0) {
      stop();
      throw std::runtime_error("TcpTransport: loopback connect failed");
    }
    out_fds_.push_back(fd);
  }

  io_thread_ = std::thread([this] { io_loop(); });
  start_dispatch();
}

TcpTransport::~TcpTransport() { stop(); }

int TcpTransport::connect_loopback() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  return connect_to(addr);
}

int TcpTransport::connect_to(const sockaddr_in& addr) {
  auto backoff = cfg_.connect_backoff;
  for (int attempt = 0; attempt < cfg_.connect_attempts; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in a = addr;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&a), sizeof(a)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    if (stopping()) return -1;
    // Exponential backoff with seeded jitter, capped.
    std::chrono::milliseconds jitter;
    {
      std::lock_guard<std::mutex> lk(rng_mu_);
      jitter = std::chrono::milliseconds(backoff_rng_.next_below(
          static_cast<std::uint64_t>(backoff.count() / 2 + 1)));
    }
    std::this_thread::sleep_for(backoff + jitter);
    backoff = std::min(backoff * 2, cfg_.connect_backoff_cap);
  }
  return -1;
}

void TcpTransport::close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void TcpTransport::stop() {
  if (!begin_stop()) return;
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  join_dispatch();
  if (io_thread_.joinable()) io_thread_.join();
  // Tear the out-fds down under their lane locks: a racing late send sees
  // fd == -1 and counts a connection loss instead of writing a dead fd.
  for (std::size_t lane = 0; lane < out_fds_.size(); ++lane) {
    std::lock_guard<std::mutex> lk(out_mu_[lane]);
    close_fd(out_fds_[lane]);
  }
  {
    std::lock_guard<std::mutex> lk(remotes_mu_);
    for (auto& [key, rc] : remotes_) {
      std::lock_guard<std::mutex> clk(rc->mu);
      close_fd(rc->fd);
    }
  }
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

// --- The wire ---------------------------------------------------------------

SocketTransport::WireResult TcpTransport::wire_send(
    const std::vector<std::uint8_t>& frame, const sockaddr_in* remote) {
  if (stopping()) return WireResult::kConnDead;
  if (remote == nullptr) {
    // Self-wire: round-robin over the loopback lanes. Guard the lane math —
    // a send racing stop() (or a constructor that never built lanes) must
    // count a loss, not divide by zero.
    const std::size_t lanes = out_fds_.size();
    if (lanes == 0) return WireResult::kConnDead;
    const std::size_t lane =
        round_robin_.fetch_add(1, std::memory_order_relaxed) % lanes;
    std::lock_guard<std::mutex> lk(out_mu_[lane]);
    if (out_fds_[lane] < 0) return WireResult::kConnDead;
    return write_all(out_fds_[lane], frame.data(), frame.size())
               ? WireResult::kOk
               : WireResult::kConnDead;
  }
  // Cross-process: one ordered stream per destination address, established
  // lazily and re-established after failure (a restarted process gets a
  // fresh connection on the next frame).
  RemoteConn* rc;
  {
    std::lock_guard<std::mutex> lk(remotes_mu_);
    auto& slot = remotes_[addr_key(*remote)];
    if (!slot) slot = std::make_unique<RemoteConn>();
    rc = slot.get();
  }
  std::lock_guard<std::mutex> lk(rc->mu);
  if (rc->fd < 0) rc->fd = connect_to(*remote);
  if (rc->fd < 0) return WireResult::kConnDead;
  if (!write_all(rc->fd, frame.data(), frame.size())) {
    close_fd(rc->fd);
    return WireResult::kConnDead;
  }
  return WireResult::kOk;
}

void TcpTransport::sever_wire() {
  for (std::size_t lane = 0; lane < out_fds_.size(); ++lane) {
    std::lock_guard<std::mutex> lk(out_mu_[lane]);
    if (out_fds_[lane] >= 0) ::shutdown(out_fds_[lane], SHUT_RDWR);
  }
  std::lock_guard<std::mutex> lk(remotes_mu_);
  for (auto& [key, rc] : remotes_) {
    std::lock_guard<std::mutex> clk(rc->mu);
    if (rc->fd >= 0) ::shutdown(rc->fd, SHUT_RDWR);
  }
}

// --- IO thread --------------------------------------------------------------

bool TcpTransport::drain_buffer(std::vector<std::uint8_t>& buf) {
  std::size_t off = 0;
  while (true) {
    const std::optional<std::size_t> need =
        frame_size(buf.data() + off, buf.size() - off);
    if (!need.has_value()) {
      note_decode_error();
      return false;  // malformed header: drop the connection
    }
    if (*need == 0 || *need > buf.size() - off) break;  // incomplete frame
    const std::optional<DecodedFrame> frame =
        decode_frame(buf.data() + off, *need);
    if (!frame.has_value() || frame->kind != MsgKind::kEnvelope) {
      note_decode_error();
      return false;
    }
    on_envelope(std::get<EnvelopeMsg>(frame->msg));
    off += *need;
  }
  if (off > 0) buf.erase(buf.begin(), buf.begin() + static_cast<long>(off));
  return true;
}

void TcpTransport::io_loop() {
  struct Conn {
    int fd;
    std::vector<std::uint8_t> buf;
  };
  std::vector<Conn> conns;

  while (true) {
    if (stopping()) break;
    sweep_parked();
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const Conn& c : conns) fds.push_back({c.fd, POLLIN, 0});
    if (::poll(fds.data(), fds.size(), 100) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns.push_back(Conn{fd, {}});
        continue;  // re-poll with the new connection included
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Conn& c = conns[i - 2];
      std::uint8_t chunk[kReadChunk];
      const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        c.buf.insert(c.buf.end(), chunk, chunk + n);
        if (!drain_buffer(c.buf)) {
          ::close(c.fd);
          c.fd = -1;  // decode error: drop below
        }
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        ::close(c.fd);
        c.fd = -1;  // closed or errored
      }
    }
    for (std::size_t i = conns.size(); i-- > 0;) {
      if (conns[i].fd < 0) {
        conns.erase(conns.begin() + static_cast<long>(i));
      }
    }
  }
  for (Conn& c : conns) ::close(c.fd);
}

}  // namespace hkws::net
