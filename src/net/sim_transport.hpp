// The simulator as a Transport implementation. sim::Network implements the
// net::Transport interface directly — the discrete-event simulator *is* the
// sim backend, with zero adaptation overhead — so SimTransport is an alias,
// kept so deployment code can name its substrate uniformly:
//
//   net::SimTransport fabric(clock);          // deterministic, virtual time
//   net::TcpTransport fabric(net::TcpTransport::Config{});  // real sockets
//   auto dht = dht::ChordNetwork::build(fabric, n, {});     // same machines
#pragma once

#include "sim/network.hpp"

namespace hkws::net {

using SimTransport = sim::Network;

}  // namespace hkws::net
