// FaultTransport: deterministic fault injection at the transport narrow
// waist, as a composable decorator over any net::Transport.
//
// The simulator injects faults inside sim::Network::send(); the real TCP
// backend has no such hook — its sockets only ever lose frames when a
// connection actually dies. FaultTransport closes that gap: it wraps an
// inner transport and consults a sim::FaultModel (in practice the torture
// harness's seeded FaultInjector) on every armed wire send, applying the
// same drop / duplicate / delay / partition semantics the simulator
// applies, with the same accounting:
//
//  * drop       — the message never reaches the inner transport. Counted
//                 net.messages / net.bytes / msg.<kind> (it was "put on the
//                 wire" as far as the protocol is concerned) plus net.lost /
//                 net.lost.<kind> / net.dropped.fault, and reported to the
//                 send observer with SendRecord.lost = true.
//  * duplicate  — N extra inner sends, each a full wire message on the
//                 inner backend, plus net.dup per extra copy.
//  * delay      — the inner send is deferred via inner.schedule_in(), and
//                 net.delayed is counted. On the TCP backend the deferral
//                 rides the dispatch strand's timer queue, so wait_idle()
//                 still accounts for in-flight delayed messages.
//
// Injection sits *below* the protocol layers and *above* the codec: a
// dropped message is dropped whole (the inner transport never serializes
// it) and a duplicate is a complete independent frame. Partial-frame
// corruption is the codec corpus's job (tests/test_wire.cpp), not ours.
//
// Sequencing: faults target wire sequence numbers. The decorator numbers
// armed, non-local sends to registered endpoints 0,1,2,... — local sends
// and sends to unregistered endpoints pass through unnumbered and
// uninspected, exactly like the simulator. arm() starts the numbering: the
// torture harness builds the overlay first and arms afterwards, so seq 0
// is the first workload message on both backends.
//
// Threading: the decorator's own state (model, rng, seq counter) is guarded
// by a mutex, so sends may arrive from any thread the inner transport
// allows. Counter updates go into the inner transport's Metrics registry
// from the caller's context — same discipline as the protocol layers,
// which count into metrics() from transport-serialized handlers.
#pragma once

#include <memory>
#include <mutex>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/network.hpp"

namespace hkws::net {

class FaultTransport final : public Transport {
 public:
  /// @param inner  the transport actually moving messages (not owned)
  /// @param model  fault schedule consulted per armed wire send (owned);
  ///               nullptr = pass-through
  /// @param seed   seed for the Rng handed to the model's inspect()
  FaultTransport(Transport& inner, std::unique_ptr<sim::FaultModel> model,
                 std::uint64_t seed = 1);

  /// Starts fault injection. Before arm(), every send passes through
  /// uninspected and unnumbered (overlay construction traffic stays
  /// pristine, and seq 0 lands on the first post-arm message).
  void arm();
  bool armed() const;

  /// Replaces the fault model (nullptr = pass-through). Keeps the wire
  /// sequence counter — swapping models mid-run continues the numbering.
  void set_fault_model(std::unique_ptr<sim::FaultModel> model);

  /// Armed wire sends inspected so far (== next relative sequence number).
  std::uint64_t wire_seq() const;

  // --- Transport interface (decorated) -------------------------------------

  void register_endpoint(EndpointId id) override;
  void unregister_endpoint(EndpointId id) override;
  bool is_registered(EndpointId id) const override;

  void send(EndpointId from, EndpointId to, std::string kind,
            std::size_t payload_bytes, Handler deliver) override;

  // Cross-process plumbing forwards to the inner backend; payload sends go
  // through the same armed inspection as closure sends (one wire sequence,
  // whichever path the protocol uses).
  bool set_peer_address(EndpointId id, const PeerAddr& addr) override;
  bool has_peer_address(EndpointId id) const override;
  void set_payload_handler(PayloadHandler fn) override;
  void send_payload(EndpointId from, EndpointId to, MsgKind kind,
                    const WireMessage& msg) override;

  Time now() const override;
  void schedule_in(Time delay, Handler fn) override;
  TimerId set_timer(Time delay, Handler fn) override;
  bool cancel_timer(TimerId id) override;

  sim::Metrics& metrics() override;
  const sim::Metrics& metrics() const override;

  void set_send_observer(SendObserver fn) override;

 private:
  Transport& inner_;
  mutable std::mutex mu_;
  std::unique_ptr<sim::FaultModel> model_;
  Rng rng_;
  std::uint64_t seq_ = 0;
  bool armed_ = false;
  SendObserver observer_;  ///< copy for drop records (inner never sees them)
};

}  // namespace hkws::net
