#include "net/fault_transport.hpp"

#include <utility>

namespace hkws::net {

FaultTransport::FaultTransport(Transport& inner,
                               std::unique_ptr<sim::FaultModel> model,
                               std::uint64_t seed)
    : inner_(inner), model_(std::move(model)), rng_(seed) {}

void FaultTransport::arm() {
  std::lock_guard<std::mutex> lk(mu_);
  armed_ = true;
}

bool FaultTransport::armed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return armed_;
}

void FaultTransport::set_fault_model(std::unique_ptr<sim::FaultModel> model) {
  std::lock_guard<std::mutex> lk(mu_);
  model_ = std::move(model);
}

std::uint64_t FaultTransport::wire_seq() const {
  std::lock_guard<std::mutex> lk(mu_);
  return seq_;
}

void FaultTransport::register_endpoint(EndpointId id) {
  inner_.register_endpoint(id);
}

void FaultTransport::unregister_endpoint(EndpointId id) {
  inner_.unregister_endpoint(id);
}

bool FaultTransport::is_registered(EndpointId id) const {
  return inner_.is_registered(id);
}

void FaultTransport::send(EndpointId from, EndpointId to, std::string kind,
                          std::size_t payload_bytes, Handler deliver) {
  // Local and unregistered-destination sends are not wire messages: pass
  // them straight down (the inner transport counts net.local /
  // net.dropped.unregistered) without numbering or inspection — mirroring
  // the simulator, which numbers only real wire traffic.
  if (from == to || !inner_.is_registered(to)) {
    inner_.send(from, to, std::move(kind), payload_bytes, std::move(deliver));
    return;
  }

  sim::FaultActions fault;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_) {
      if (model_ != nullptr)
        fault = model_->inspect(from, to, kind, seq_, rng_);
      ++seq_;
    }
  }

  if (fault.drop) {
    // The inner transport never sees a dropped message, so the decorator
    // supplies the simulator's accounting itself: the message counts as
    // sent (the protocol paid for it) and as lost, attributed to fault
    // injection. The observer sees lost = true so traces and the torture
    // conservation identity stay truthful.
    sim::Metrics& m = inner_.metrics();
    m.count("net.messages");
    m.count("net.bytes", payload_bytes);
    m.count("msg." + kind);
    m.count("net.lost");
    m.count("net.lost." + kind);
    m.count("net.dropped.fault");
    SendObserver observer;
    {
      std::lock_guard<std::mutex> lk(mu_);
      observer = observer_;
    }
    if (observer) {
      const Time at = inner_.now();
      observer(kind, SendRecord{at, from, to, payload_bytes, true, at});
    }
    return;
  }

  const std::uint32_t copies = 1 + fault.duplicates;
  if (fault.duplicates != 0)
    inner_.metrics().count("net.dup", fault.duplicates);

  if (fault.extra_delay != 0) {
    inner_.metrics().count("net.delayed");
    // Defer through the inner transport's own scheduler so the delay is
    // tracked by its idle/drain accounting (the TCP dispatch strand's
    // pending-event count; the sim event queue).
    Transport* inner = &inner_;
    inner_.schedule_in(
        fault.extra_delay,
        [inner, from, to, kind = std::move(kind), payload_bytes,
         deliver = std::move(deliver), copies]() mutable {
          for (std::uint32_t i = 0; i + 1 < copies; ++i)
            inner->send(from, to, kind, payload_bytes, deliver);
          inner->send(from, to, std::move(kind), payload_bytes,
                      std::move(deliver));
        });
    return;
  }

  for (std::uint32_t i = 0; i + 1 < copies; ++i)
    inner_.send(from, to, kind, payload_bytes, deliver);
  inner_.send(from, to, std::move(kind), payload_bytes, std::move(deliver));
}

bool FaultTransport::set_peer_address(EndpointId id, const PeerAddr& addr) {
  return inner_.set_peer_address(id, addr);
}

bool FaultTransport::has_peer_address(EndpointId id) const {
  return inner_.has_peer_address(id);
}

void FaultTransport::set_payload_handler(PayloadHandler fn) {
  inner_.set_payload_handler(std::move(fn));
}

void FaultTransport::send_payload(EndpointId from, EndpointId to,
                                  MsgKind kind, const WireMessage& msg) {
  // Same pass-through rule as send(): only real wire traffic is numbered
  // and inspected. A payload send is wire traffic when its destination is
  // deliverable — locally registered or owned by another process.
  if (from == to ||
      (!inner_.is_registered(to) && !inner_.has_peer_address(to))) {
    inner_.send_payload(from, to, kind, msg);
    return;
  }

  const std::string kind_label = kind_name(kind);
  sim::FaultActions fault;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_) {
      if (model_ != nullptr)
        fault = model_->inspect(from, to, kind_label, seq_, rng_);
      ++seq_;
    }
  }

  if (fault.drop) {
    // The inner transport never sees the message; supply the accounting
    // here, with the encoded inner frame as the byte cost (what the wire
    // would have carried).
    const std::size_t bytes = encode_frame(kind, msg).size();
    sim::Metrics& m = inner_.metrics();
    m.count("net.messages");
    m.count("net.bytes", bytes);
    m.count("msg." + kind_label);
    m.count("net.lost");
    m.count("net.lost." + kind_label);
    m.count("net.dropped." + kind_label);
    m.count("net.dropped.fault");
    SendObserver observer;
    {
      std::lock_guard<std::mutex> lk(mu_);
      observer = observer_;
    }
    if (observer) {
      const Time at = inner_.now();
      observer(kind_label, SendRecord{at, from, to, bytes, true, at});
    }
    return;
  }

  const std::uint32_t copies = 1 + fault.duplicates;
  if (fault.duplicates != 0)
    inner_.metrics().count("net.dup", fault.duplicates);

  if (fault.extra_delay != 0) {
    inner_.metrics().count("net.delayed");
    Transport* inner = &inner_;
    inner_.schedule_in(fault.extra_delay,
                       [inner, from, to, kind, msg, copies] {
                         for (std::uint32_t i = 0; i < copies; ++i)
                           inner->send_payload(from, to, kind, msg);
                       });
    return;
  }

  for (std::uint32_t i = 0; i < copies; ++i)
    inner_.send_payload(from, to, kind, msg);
}

Time FaultTransport::now() const { return inner_.now(); }

void FaultTransport::schedule_in(Time delay, Handler fn) {
  inner_.schedule_in(delay, std::move(fn));
}

Transport::TimerId FaultTransport::set_timer(Time delay, Handler fn) {
  return inner_.set_timer(delay, std::move(fn));
}

bool FaultTransport::cancel_timer(TimerId id) {
  return inner_.cancel_timer(id);
}

sim::Metrics& FaultTransport::metrics() { return inner_.metrics(); }

const sim::Metrics& FaultTransport::metrics() const {
  return inner_.metrics();
}

void FaultTransport::set_send_observer(SendObserver fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    observer_ = fn;
  }
  inner_.set_send_observer(std::move(fn));
}

}  // namespace hkws::net
