// The Transport abstraction: the narrow waist between the protocol state
// machines (DOLR, overlay routing, the hypercube keyword index, the
// maintenance plane, the serving engine) and whatever actually moves their
// messages. Everything a protocol layer may do to the outside world goes
// through this interface:
//
//  * message dispatch — send() delivers a handler at a destination endpoint
//    after the transport's notion of latency;
//  * time — now(), one-shot events (schedule_in) and cancelable timers
//    (set_timer / cancel_timer), the hooks behind every protocol timeout;
//  * endpoint liveness — register/unregister/is_registered;
//  * accounting — a Metrics registry fed with the same counter names on
//    every backend (net.messages, msg.<kind>, net.bytes, ...), and a
//    per-send observer for the tracing subsystem, so per-kind counters and
//    hop traces stay truthful whichever backend carries the traffic.
//
// Three implementations ship today:
//  * sim::Network — the deterministic discrete-event simulator (see
//    src/sim/network.hpp). It *is* the SimTransport: the event queue
//    supplies virtual time, latency/drop/fault models shape the fabric, and
//    seeded RNG keeps runs bit-identical.
//  * net::TcpTransport — the real runtime (see src/net/tcp_transport.hpp):
//    loopback TCP sockets, an I/O thread pool, wall-clock timers, and the
//    binary envelope codec of src/net/wire.hpp on every wire message.
//  * net::UdpTransport — the lossy datagram runtime (see
//    src/net/udp_transport.hpp): one socket per process, every envelope a
//    datagram, with a seeded drop model standing in for real packet loss.
// The TCP/UDP backends share net::SocketTransport (strand, timers, parked
// handlers, peer-address routing); both deliver cross-process payload
// messages to other processes listed in the peer-address table.
//
// Contract notes shared by all implementations (inherited from the
// simulator's semantics, which the protocol layers were written against):
//  * Local sends (from == to) are free: delivered asynchronously but not
//    counted as network messages ("net.local").
//  * Sends to unregistered endpoints are silently discarded and counted as
//    "net.dropped" / "net.dropped.<kind>" (models absent peers).
//  * Every discarded or lost message is attributed to exactly one cause
//    counter: "net.dropped.unregistered" (absent peer),
//    "net.dropped.fault" (a drop/fault model or the FaultTransport
//    decorator lost it), or "net.dropped.conn" (TCP backend only: the
//    connection died under the frame). Fault and conn losses also count
//    "net.lost" / "net.lost.<kind>" — they were on the wire — so the
//    conservation identity net.messages == net.delivered + net.lost holds
//    per backend once traffic drains.
//  * Handlers run one at a time, in delivery order, never re-entrantly
//    inside send() — protocol state machines are single-threaded with
//    respect to their transport (the sim's event loop; the TCP backend's
//    dispatch strand).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/wire.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace hkws::net {

/// Identifies a process/endpoint (a physical peer). Shared with the
/// simulator's EndpointId — one flat 64-bit space on every backend.
using EndpointId = std::uint64_t;

/// Transport time in abstract ticks. The simulator's virtual clock and the
/// TCP backend's wall clock (scaled by its configured tick duration) both
/// count in these units, so protocol timeout constants are portable.
using Time = sim::Time;

/// One wire message, reported to the send observer after the backend has
/// decided its fate. Duplicated messages report once per wire copy; local
/// sends and sends to unregistered endpoints do not report.
struct SendRecord {
  Time at = 0;  ///< send time
  EndpointId from = 0;
  EndpointId to = 0;
  std::size_t bytes = 0;
  bool lost = false;   ///< dropped by a drop or fault model
  Time deliver_at = 0; ///< arrival time (== at when lost)
};

/// Where a remote endpoint's owning process listens. Socket backends route
/// sends to endpoints with a registered address across process boundaries;
/// everything else stays in-process.
struct PeerAddr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class Transport {
 public:
  /// Delivery action run at the destination when a message arrives.
  using Handler = std::function<void()>;

  /// Handle of a cancelable timer. 0 is never a valid handle.
  using TimerId = std::uint64_t;

  using SendObserver =
      std::function<void(const std::string& kind, const SendRecord&)>;

  virtual ~Transport() = default;

  // --- Endpoints ----------------------------------------------------------

  /// Declares an endpoint reachable. Sends to unregistered endpoints are
  /// counted as "net.dropped" and silently discarded.
  virtual void register_endpoint(EndpointId id) = 0;
  virtual void unregister_endpoint(EndpointId id) = 0;
  virtual bool is_registered(EndpointId id) const = 0;

  // --- Message dispatch ---------------------------------------------------

  /// Sends one message. `kind` labels the protocol message type for
  /// accounting ("dolr.insert", "kws.t_query", ...; the labels of
  /// docs/PROTOCOL.md). `deliver` runs at the destination after the
  /// backend's latency; `payload_bytes` feeds byte accounting (and, on the
  /// TCP backend, sizes the frame actually serialized onto the socket).
  virtual void send(EndpointId from, EndpointId to, std::string kind,
                    std::size_t payload_bytes, Handler deliver) = 0;

  // --- Cross-process addressing & payload delivery ------------------------
  //
  // send() carries a closure, which cannot cross a process boundary. The
  // payload path carries the message itself: a wire-codec frame addressed
  // (from, to) that the destination process decodes and hands to its
  // payload handler on the dispatch strand. Backends without cross-process
  // support (the simulator) loop the encoded frame back through send(), so
  // the codec is exercised and accounting is identical either way.

  /// Delivery hook for payload messages. Runs on the dispatch strand (or
  /// the sim event loop), one at a time, like send() handlers.
  using PayloadHandler = std::function<void(
      EndpointId from, EndpointId to, MsgKind kind, const WireMessage& msg)>;

  /// Declares that `id` lives in the process listening at `addr`. Sends to
  /// `id` are then serialized and routed there instead of delivered
  /// in-process. Returns false if the backend cannot route cross-process
  /// (the simulator, decorators over it).
  virtual bool set_peer_address(EndpointId id, const PeerAddr& addr) {
    (void)id;
    (void)addr;
    return false;
  }

  /// True if `id` has a peer address (lives in another process).
  virtual bool has_peer_address(EndpointId id) const {
    (void)id;
    return false;
  }

  /// Installs the handler payload messages are dispatched to. Install it
  /// before traffic starts; one handler per transport.
  virtual void set_payload_handler(PayloadHandler fn) {
    payload_handler_ = std::move(fn);
  }

  /// Sends `msg` (layout must match `kind`) from `from` to `to` through the
  /// wire codec. Local and sim deliveries decode the frame back and invoke
  /// the payload handler; remote deliveries ship it to the owning process.
  /// Accounting matches send(): same counters, same conservation identity.
  virtual void send_payload(EndpointId from, EndpointId to, MsgKind kind,
                            const WireMessage& msg) {
    std::vector<std::uint8_t> frame = encode_frame(kind, msg);
    if (frame.empty()) return;  // layout mismatch: programming error upstream
    const std::size_t bytes = frame.size();
    send(from, to, kind_name(kind), bytes,
         [this, from, to, frame = std::move(frame)]() {
           if (!payload_handler_) return;
           std::optional<DecodedFrame> d =
               decode_frame(frame.data(), frame.size());
           if (d.has_value()) payload_handler_(from, to, d->kind, d->msg);
         });
  }

  // --- Time and timers ----------------------------------------------------

  /// Current transport time in ticks.
  virtual Time now() const = 0;

  /// Schedules `fn` to run at now() + delay (a plain one-shot event).
  virtual void schedule_in(Time delay, Handler fn) = 0;

  /// Schedules a cancelable timer firing once at now() + delay.
  virtual TimerId set_timer(Time delay, Handler fn) = 0;

  /// Cancels a pending timer. Returns true if it was still pending (it will
  /// now never fire); false if it already fired or never existed.
  virtual bool cancel_timer(TimerId id) = 0;

  // --- Accounting ---------------------------------------------------------

  virtual sim::Metrics& metrics() = 0;
  virtual const sim::Metrics& metrics() const = 0;

  /// Installs (or, with nullptr, removes) a per-send observer — the tracing
  /// hook (see src/obs). Invoked synchronously from send(); keep it cheap.
  /// The observer must outlive the transport or be removed first.
  virtual void set_send_observer(SendObserver fn) = 0;

 protected:
  /// Installed by set_payload_handler(); read by delivery paths.
  PayloadHandler payload_handler_;
};

}  // namespace hkws::net
