#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace hkws::net {

UdpTransport::UdpTransport(Config cfg)
    : SocketTransport(CommonConfig{
          cfg.tick,
          std::min<std::uint32_t>(cfg.max_pad,
                                  static_cast<std::uint32_t>(kMaxDatagram / 2)),
          cfg.parked_ttl}),
      cfg_(cfg),
      drop_rng_(cfg.seed) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("UdpTransport: socket failed");
  // Generous buffers: a burst of envelopes must not turn into silent
  // kernel-side loss beyond what the drop model injects deliberately.
  const int bufsz = 4 * 1024 * 1024;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bufsz, sizeof(bufsz));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bufsz, sizeof(bufsz));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw std::runtime_error("UdpTransport: bind failed");
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  self_addr_ = addr;

  if (::pipe(wake_pipe_) != 0) {
    ::close(fd_);
    throw std::runtime_error("UdpTransport: pipe failed");
  }

  set_drop_rate(cfg.drop_rate);

  io_thread_ = std::thread([this] { io_loop(); });
  start_dispatch();
}

UdpTransport::~UdpTransport() { stop(); }

void UdpTransport::set_drop_rate(double rate) {
  if (rate < 0) rate = 0;
  if (rate > 1) rate = 1;
  drop_ppm_.store(static_cast<std::uint64_t>(rate * 1e6),
                  std::memory_order_relaxed);
}

void UdpTransport::stop() {
  if (!begin_stop()) return;
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  join_dispatch();
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> lk(send_mu_);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

SocketTransport::WireResult UdpTransport::wire_send(
    const std::vector<std::uint8_t>& frame, const sockaddr_in* remote) {
  if (stopping()) return WireResult::kConnDead;
  if (frame.size() > kMaxDatagram) return WireResult::kConnDead;
  const sockaddr_in dest = remote != nullptr ? *remote : self_addr_;

  std::lock_guard<std::mutex> lk(send_mu_);
  if (fd_ < 0) return WireResult::kConnDead;
  // The seeded drop model: the frame dies here, exactly where a real
  // congested path would discard the datagram.
  const std::uint64_t ppm = drop_ppm_.load(std::memory_order_relaxed);
  if (ppm > 0 && drop_rng_.next_below(1000000) < ppm)
    return WireResult::kDropped;
  const ssize_t n =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  return n == static_cast<ssize_t>(frame.size()) ? WireResult::kOk
                                                 : WireResult::kConnDead;
}

void UdpTransport::io_loop() {
  std::vector<std::uint8_t> buf(64 * 1024);
  while (true) {
    if (stopping()) break;
    sweep_parked();
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, 100) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      const ssize_t n =
          ::recvfrom(fd_, buf.data(), buf.size(), MSG_DONTWAIT, nullptr,
                     nullptr);
      if (n <= 0) break;
      // One datagram, one frame: no reassembly. A malformed or truncated
      // datagram is counted and dropped; the socket lives on.
      const std::optional<DecodedFrame> frame =
          decode_frame(buf.data(), static_cast<std::size_t>(n));
      if (!frame.has_value() || frame->kind != MsgKind::kEnvelope) {
        note_decode_error();
        continue;
      }
      on_envelope(std::get<EnvelopeMsg>(frame->msg));
    }
  }
}

}  // namespace hkws::net
