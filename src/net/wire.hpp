// Binary wire codec for the protocol of docs/PROTOCOL.md ("Wire format"
// section): a compact, versioned, length-prefixed frame for every message
// kind the system puts on a wire — the DOLR reference service (`dolr.*`),
// keyword-index maintenance and search (`kws.*`, including the VisitBatch
// fast-path kinds), the physical hypercube (`hc.*`), overlay maintenance
// (`dht.*`), and the peerd front-end pair (`fe.*`).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       2     magic 0x4B48 ("HK")
//   2       1     version (kWireVersion)
//   3       1     reserved (0)
//   4       2     kind id (MsgKind)
//   6       2     reserved (0)
//   8       4     body length in bytes (<= kMaxBody)
//   12      n     body — kind-specific fields, see the payload structs
//
// Field encodings: u8/u16/u32/u64 fixed-width little-endian; strings and
// vectors are length-prefixed (u32 count, then elements). Strings cap at
// kMaxString bytes, collections at kMaxCount elements.
//
// Decode discipline — malformed input is DATA, not a programming error:
// every decode path returns std::nullopt on any violation (bad magic,
// unknown version or kind, truncation, oversized length prefix, trailing
// garbage) and never throws, crashes, or allocates memory beyond a small
// multiple of the input size. Length prefixes are validated against the
// bytes actually present *before* any allocation, so a hostile 4-billion
// count costs nothing. The fuzz corpus in tests/test_wire.cpp holds this
// contract under ASan/UBSan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace hkws::net {

inline constexpr std::uint16_t kWireMagic = 0x4B48;  // "HK"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderSize = 12;
inline constexpr std::size_t kMaxBody = 1u << 24;    // 16 MiB per frame
inline constexpr std::size_t kMaxString = 1u << 16;  // per keyword/label
inline constexpr std::size_t kMaxCount = 1u << 20;   // per collection

/// Every message kind with a wire identity. Values are the on-wire ids —
/// append only, never renumber (the version byte covers layout changes).
enum class MsgKind : std::uint16_t {
  kOpaque = 0,  ///< unregistered kind; the envelope carries its label

  // DOLR reference service (paper §2.1).
  kDolrInsert = 1,
  kDolrReplicate = 2,
  kDolrDelete = 3,
  kDolrUnreplicate = 4,
  kDolrRead = 5,
  kDolrReply = 6,

  // Keyword-index maintenance (paper §3.3).
  kKwsInsert = 16,
  kKwsDelete = 17,

  // Pin search.
  kKwsPin = 24,
  kKwsPinReply = 25,

  // Superset search, top-down protocol.
  kKwsTQuery = 32,
  kKwsTCont = 33,
  kKwsTStop = 34,
  kKwsResults = 35,
  kKwsDone = 36,
  kKwsSReply = 37,

  // Co-host visit coalescing (level-parallel fast path).
  kKwsVisitBatch = 40,
  kKwsBatchResults = 41,
  kKwsBatchReply = 42,

  // Cumulative search.
  kKwsCOpen = 48,
  kKwsCNext = 49,
  kKwsCQuery = 50,
  kKwsCCont = 51,
  kKwsCResults = 52,
  kKwsCDone = 53,

  // Physical hypercube (paper §3.2).
  kHcInsert = 64,
  kHcDelete = 65,
  kHcPin = 66,
  kHcPinReply = 67,
  kHcSQuery = 68,
  kHcResults = 69,
  kHcSDone = 70,
  kHcDone = 71,

  // Overlay maintenance.
  kDhtJoin = 80,
  kDhtFixFinger = 81,

  // peerd front-end protocol (tools/peerd).
  kFeQuery = 96,
  kFeReply = 97,

  // Transport envelope (TcpTransport framing; carries any inner kind).
  kEnvelope = 128,
};

/// Wire name of a kind — exactly the `msg.<kind>` metrics label of
/// docs/PROTOCOL.md. Returns "" for kOpaque and unknown values.
const char* kind_name(MsgKind kind);

/// Inverse of kind_name. Unregistered labels (ad-hoc test kinds,
/// "maint.ping", ...) map to nullopt; the envelope then carries the label
/// inline as an opaque kind.
std::optional<MsgKind> kind_of(const std::string& name);

// --- Payload structs --------------------------------------------------------
//
// One struct per field layout; several kinds share a layout (the kind id in
// the frame header disambiguates). Field meaning per kind is documented in
// docs/PROTOCOL.md's tables.

/// One search hit: the object and its full keyword set (ranking needs the
/// keywords; see index::Hit).
struct WireHit {
  std::uint64_t object = 0;
  std::vector<std::string> keywords;
  bool operator==(const WireHit&) const = default;
};

/// dolr.insert / dolr.replicate / dolr.delete / dolr.unreplicate: one
/// object reference (sigma, holder) plus its ring key.
struct RefMsg {
  std::uint64_t key = 0;     ///< L(sigma)
  std::uint64_t object = 0;  ///< sigma
  std::uint64_t holder = 0;  ///< endpoint holding the copy
  bool operator==(const RefMsg&) const = default;
};

/// dolr.read: resolve an object to its holder list.
struct ReadMsg {
  std::uint64_t object = 0;
  std::uint64_t reader = 0;  ///< endpoint the reply goes to
  bool operator==(const ReadMsg&) const = default;
};

/// dolr.reply: the holder list.
struct HoldersMsg {
  std::uint64_t object = 0;
  std::vector<std::uint64_t> holders;
  bool operator==(const HoldersMsg&) const = default;
};

/// kws.insert / kws.delete / hc.insert / hc.delete: one index entry
/// <keywords, object>. `request`/`publisher` are 0 for fire-and-forget
/// inserts; a guarded publish (PeerSlice over a lossy wire) sets both so
/// the owner can acknowledge with kws.done back to the publisher.
struct EntryMsg {
  std::uint64_t object = 0;
  std::vector<std::string> keywords;
  std::uint64_t request = 0;    ///< publish-ack correlation id (0 = no ack)
  std::uint64_t publisher = 0;  ///< endpoint the ack goes to
  bool operator==(const EntryMsg&) const = default;
};

/// kws.pin / hc.pin: exact-set lookup.
struct PinMsg {
  std::uint64_t request = 0;
  std::uint64_t searcher = 0;
  std::vector<std::string> keywords;
  bool operator==(const PinMsg&) const = default;
};

/// kws.pin_reply / kws.results / kws.c_results / hc.pin_reply / hc.results:
/// one node's result batch, shipped directly to the searcher.
struct HitsMsg {
  std::uint64_t request = 0;
  std::uint64_t node = 0;  ///< contributing cube node (0 for pin replies)
  std::vector<WireHit> hits;
  bool operator==(const HitsMsg&) const = default;
};

/// kws.t_query / kws.c_query / hc.s_query: visit a cube node for a query.
/// `offset` is the cumulative-search consumption offset (0 elsewhere);
/// `want` the remaining result credit (0 = unlimited).
struct QueryMsg {
  std::uint64_t request = 0;
  std::uint64_t node = 0;
  std::uint64_t searcher = 0;
  std::uint64_t want = 0;
  std::uint64_t offset = 0;
  std::vector<std::string> query;
  bool operator==(const QueryMsg&) const = default;
};

/// kws.t_cont / kws.t_stop / kws.c_cont / hc.s_done: per-node control
/// reply to the coordinator.
struct ControlMsg {
  std::uint64_t request = 0;
  std::uint64_t node = 0;
  std::uint64_t count = 0;  ///< matches found (c_cont: taken)
  bool stop = false;        ///< threshold met, stop exploring
  bool operator==(const ControlMsg&) const = default;
};

/// kws.done / kws.c_done / hc.done: search complete. `results_expected`
/// lets the searcher complete exactly under arbitrary reordering.
struct DoneMsg {
  std::uint64_t request = 0;
  std::uint64_t results_expected = 0;
  bool operator==(const DoneMsg&) const = default;
};

/// kws.s_reply: a split-overlay search completion, coordinator -> searcher.
/// Carries the assembled deterministic hit sequence (concatenated in visit
/// order at the coordinator, so it is byte-identical to the LogicalIndex
/// traversal regardless of message arrival order) plus the paper-unit cost
/// accounting of the traversal. Acknowledged by the searcher with kws.done
/// so the coordinator can retire its state under loss.
struct SearchReplyMsg {
  std::uint64_t request = 0;
  std::uint64_t nodes_contacted = 0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  std::uint64_t retransmits = 0;
  bool complete = false;
  bool failed = false;  ///< a protocol step exhausted its retry budget
  std::vector<WireHit> hits;
  bool operator==(const SearchReplyMsg&) const = default;
};

/// kws.visit_batch: visit these co-hosted cube nodes (one wire message
/// replacing one t_query per node).
struct VisitBatchMsg {
  std::uint64_t request = 0;
  std::uint64_t want = 0;
  std::vector<std::uint64_t> nodes;
  std::vector<std::string> query;
  bool operator==(const VisitBatchMsg&) const = default;
};

/// kws.batch_results: the round's matches, batched per logical node (empty
/// nodes ride free).
struct BatchResultsMsg {
  struct NodeBatch {
    std::uint64_t node = 0;
    std::vector<WireHit> hits;
    bool operator==(const NodeBatch&) const = default;
  };
  std::uint64_t request = 0;
  std::vector<NodeBatch> batches;
  bool operator==(const BatchResultsMsg&) const = default;
};

/// kws.batch_reply: per-node (count, verdict) control replies, merged.
struct BatchReplyMsg {
  struct NodeVerdict {
    std::uint64_t node = 0;
    std::uint64_t count = 0;
    bool stop = false;
    bool operator==(const NodeVerdict&) const = default;
  };
  std::uint64_t request = 0;
  std::vector<NodeVerdict> verdicts;
  bool operator==(const BatchReplyMsg&) const = default;
};

/// kws.c_open: open a cumulative browsing session at the root.
struct COpenMsg {
  std::uint64_t session = 0;
  std::uint64_t searcher = 0;
  std::vector<std::string> query;
  bool operator==(const COpenMsg&) const = default;
};

/// kws.c_next: fetch the next page.
struct CNextMsg {
  std::uint64_t session = 0;
  std::uint64_t count = 0;
  bool operator==(const CNextMsg&) const = default;
};

/// dht.join: locate the joiner's position from a bootstrap node.
struct JoinMsg {
  std::uint64_t joiner = 0;
  std::uint64_t bootstrap = 0;
  bool operator==(const JoinMsg&) const = default;
};

/// dht.fix_finger: repair one finger (Chord stabilization).
struct FixFingerMsg {
  std::uint64_t node = 0;
  std::uint32_t finger = 0;
  bool operator==(const FixFingerMsg&) const = default;
};

/// fe.query: a front-end superset query against a peerd shard.
struct FeQueryMsg {
  std::uint64_t threshold = 0;
  std::uint8_t strategy = 0;  ///< index::SearchStrategy value
  std::vector<std::string> keywords;
  bool operator==(const FeQueryMsg&) const = default;
};

/// fe.reply: a shard's answer — the deterministic hit sequence plus the
/// wire-message cost of serving it.
struct FeReplyMsg {
  bool complete = false;
  std::uint64_t messages = 0;
  std::vector<WireHit> hits;
  bool operator==(const FeReplyMsg&) const = default;
};

/// net.envelope: the socket-transport frame wrapped around every in-flight
/// protocol message. `inner_kind`/`label` identify the protocol kind for
/// accounting; `declared_bytes` is the protocol-level payload size (the
/// byte accounting of the cost model).
///
/// Two delivery modes share this frame (docs/PROTOCOL.md "Addressing &
/// delivery"):
///  * `payload` empty — legacy parked-handler mode: the envelope is an
///    addressed receipt; the delivery closure waits at the sender and is
///    redeemed by `msg_id` when the envelope returns off the socket. `pad`
///    zero bytes (capped by the transport) follow the fields so
///    serialization cost tracks the modeled message size.
///  * `payload` non-empty — cross-process mode: the bytes are a complete
///    encoded inner frame (header + body of `inner_kind`), decoded and
///    dispatched to the destination process's payload handler. No handler
///    is parked; `pad` is 0 (the payload itself is the serialization cost).
struct EnvelopeMsg {
  MsgKind inner_kind = MsgKind::kOpaque;
  std::string label;  ///< set when inner_kind == kOpaque
  std::uint64_t msg_id = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t declared_bytes = 0;
  std::vector<std::uint8_t> payload;  ///< encoded inner frame ("" = parked)
  std::uint32_t pad = 0;  ///< padding bytes appended to the body
  bool operator==(const EnvelopeMsg&) const = default;
};

using WireMessage =
    std::variant<RefMsg, ReadMsg, HoldersMsg, EntryMsg, PinMsg, HitsMsg,
                 QueryMsg, ControlMsg, DoneMsg, SearchReplyMsg, VisitBatchMsg,
                 BatchResultsMsg, BatchReplyMsg, COpenMsg, CNextMsg, JoinMsg,
                 FixFingerMsg, FeQueryMsg, FeReplyMsg, EnvelopeMsg>;

// --- Encode / decode --------------------------------------------------------

/// Serializes one frame (header + body). The message's alternative must
/// match `kind`'s layout (checked; mismatch returns an empty vector, which
/// encode never otherwise produces).
std::vector<std::uint8_t> encode_frame(MsgKind kind, const WireMessage& msg);

struct DecodedFrame {
  MsgKind kind = MsgKind::kOpaque;
  WireMessage msg;
  std::size_t frame_size = 0;  ///< header + body bytes consumed
};

/// Parses one complete frame from the front of [data, data+len). Returns
/// nullopt on any malformation; never throws. Extra bytes after the frame
/// are ignored (frame_size tells the caller where the next frame starts).
std::optional<DecodedFrame> decode_frame(const std::uint8_t* data,
                                         std::size_t len);

/// Stream framing helper: how many bytes the frame at the front of the
/// buffer occupies in total. Returns 0 if the header is incomplete (read
/// more), nullopt if the header is malformed (drop the connection).
std::optional<std::size_t> frame_size(const std::uint8_t* data,
                                      std::size_t len);

}  // namespace hkws::net
