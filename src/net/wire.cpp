#include "net/wire.hpp"

#include <cstring>
#include <unordered_map>

namespace hkws::net {
namespace {

// --- Primitives -------------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void strings(const std::vector<std::string>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& s : v) str(s);
  }
  void u64s(const std::vector<std::uint64_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::uint64_t x : v) u64(x);
  }
  void bytes(const std::vector<std::uint8_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    out_.insert(out_.end(), v.begin(), v.end());
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked reader. Every accessor validates the remaining length
/// first and latches a failure flag; after a failure all reads return
/// zero values and ok() is false. Length prefixes are checked against the
/// bytes actually remaining before anything is allocated.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : p_(data), end_(data + len) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return *p_++;
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(p_[0] | (p_[1] << 8));
    p_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > kMaxString || !need(n)) {
      fail();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }
  std::vector<std::string> strings() {
    const std::uint32_t n = u32();
    // Each element costs >= 4 bytes of length prefix, so a count larger
    // than remaining()/4 is provably a lie — reject before allocating.
    if (n > kMaxCount || n > remaining() / 4) {
      fail();
      return {};
    }
    std::vector<std::string> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n && ok(); ++i) v.push_back(str());
    return v;
  }
  std::vector<std::uint64_t> u64s() {
    const std::uint32_t n = u32();
    if (n > kMaxCount || n > remaining() / 8) {
      fail();
      return {};
    }
    std::vector<std::uint64_t> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n && ok(); ++i) v.push_back(u64());
    return v;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    if (n > kMaxBody || !need(n)) {
      fail();
      return {};
    }
    std::vector<std::uint8_t> v(p_, p_ + n);
    p_ += n;
    return v;
  }
  void skip(std::size_t n) {
    if (need(n)) p_ += n;
  }

  std::size_t remaining() const {
    return ok_ ? static_cast<std::size_t>(end_ - p_) : 0;
  }
  bool ok() const { return ok_; }
  void fail() { ok_ = false; }
  /// Frame bodies must be fully consumed: trailing garbage is a malformed
  /// frame, not padding.
  bool done() const { return ok_ && p_ == end_; }

 private:
  bool need(std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

// --- Per-layout encode/decode ----------------------------------------------

void put(Writer& w, const WireHit& h) {
  w.u64(h.object);
  w.strings(h.keywords);
}
WireHit get_hit(Reader& r) {
  WireHit h;
  h.object = r.u64();
  h.keywords = r.strings();
  return h;
}
void put_hits(Writer& w, const std::vector<WireHit>& hits) {
  w.u32(static_cast<std::uint32_t>(hits.size()));
  for (const auto& h : hits) put(w, h);
}
std::vector<WireHit> get_hits(Reader& r) {
  const std::uint32_t n = r.u32();
  if (n > kMaxCount || n > r.remaining() / 12) {  // u64 + empty strings
    r.fail();
    return {};
  }
  std::vector<WireHit> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) v.push_back(get_hit(r));
  return v;
}

void put(Writer& w, const RefMsg& m) {
  w.u64(m.key);
  w.u64(m.object);
  w.u64(m.holder);
}
void put(Writer& w, const ReadMsg& m) {
  w.u64(m.object);
  w.u64(m.reader);
}
void put(Writer& w, const HoldersMsg& m) {
  w.u64(m.object);
  w.u64s(m.holders);
}
void put(Writer& w, const EntryMsg& m) {
  w.u64(m.object);
  w.strings(m.keywords);
  w.u64(m.request);
  w.u64(m.publisher);
}
void put(Writer& w, const PinMsg& m) {
  w.u64(m.request);
  w.u64(m.searcher);
  w.strings(m.keywords);
}
void put(Writer& w, const HitsMsg& m) {
  w.u64(m.request);
  w.u64(m.node);
  put_hits(w, m.hits);
}
void put(Writer& w, const QueryMsg& m) {
  w.u64(m.request);
  w.u64(m.node);
  w.u64(m.searcher);
  w.u64(m.want);
  w.u64(m.offset);
  w.strings(m.query);
}
void put(Writer& w, const ControlMsg& m) {
  w.u64(m.request);
  w.u64(m.node);
  w.u64(m.count);
  w.u8(m.stop ? 1 : 0);
}
void put(Writer& w, const DoneMsg& m) {
  w.u64(m.request);
  w.u64(m.results_expected);
}
void put(Writer& w, const SearchReplyMsg& m) {
  w.u64(m.request);
  w.u64(m.nodes_contacted);
  w.u64(m.messages);
  w.u64(m.rounds);
  w.u64(m.retransmits);
  w.u8(m.complete ? 1 : 0);
  w.u8(m.failed ? 1 : 0);
  put_hits(w, m.hits);
}
void put(Writer& w, const VisitBatchMsg& m) {
  w.u64(m.request);
  w.u64(m.want);
  w.u64s(m.nodes);
  w.strings(m.query);
}
void put(Writer& w, const BatchResultsMsg& m) {
  w.u64(m.request);
  w.u32(static_cast<std::uint32_t>(m.batches.size()));
  for (const auto& b : m.batches) {
    w.u64(b.node);
    put_hits(w, b.hits);
  }
}
void put(Writer& w, const BatchReplyMsg& m) {
  w.u64(m.request);
  w.u32(static_cast<std::uint32_t>(m.verdicts.size()));
  for (const auto& v : m.verdicts) {
    w.u64(v.node);
    w.u64(v.count);
    w.u8(v.stop ? 1 : 0);
  }
}
void put(Writer& w, const COpenMsg& m) {
  w.u64(m.session);
  w.u64(m.searcher);
  w.strings(m.query);
}
void put(Writer& w, const CNextMsg& m) {
  w.u64(m.session);
  w.u64(m.count);
}
void put(Writer& w, const JoinMsg& m) {
  w.u64(m.joiner);
  w.u64(m.bootstrap);
}
void put(Writer& w, const FixFingerMsg& m) {
  w.u64(m.node);
  w.u32(m.finger);
}
void put(Writer& w, const FeQueryMsg& m) {
  w.u64(m.threshold);
  w.u8(m.strategy);
  w.strings(m.keywords);
}
void put(Writer& w, const FeReplyMsg& m) {
  w.u8(m.complete ? 1 : 0);
  w.u64(m.messages);
  put_hits(w, m.hits);
}
void put(Writer& w, const EnvelopeMsg& m) {
  w.u16(static_cast<std::uint16_t>(m.inner_kind));
  if (m.inner_kind == MsgKind::kOpaque) w.str(m.label);
  w.u64(m.msg_id);
  w.u64(m.from);
  w.u64(m.to);
  w.u64(m.declared_bytes);
  w.bytes(m.payload);
  w.u32(m.pad);
  for (std::uint32_t i = 0; i < m.pad; ++i) w.u8(0);
}

template <typename T>
std::optional<WireMessage> finish(Reader& r, T&& msg) {
  if (!r.done()) return std::nullopt;
  return WireMessage{std::forward<T>(msg)};
}

std::optional<WireMessage> decode_body(MsgKind kind, Reader& r) {
  switch (kind) {
    case MsgKind::kDolrInsert:
    case MsgKind::kDolrReplicate:
    case MsgKind::kDolrDelete:
    case MsgKind::kDolrUnreplicate: {
      RefMsg m;
      m.key = r.u64();
      m.object = r.u64();
      m.holder = r.u64();
      return finish(r, m);
    }
    case MsgKind::kDolrRead: {
      ReadMsg m;
      m.object = r.u64();
      m.reader = r.u64();
      return finish(r, m);
    }
    case MsgKind::kDolrReply: {
      HoldersMsg m;
      m.object = r.u64();
      m.holders = r.u64s();
      return finish(r, m);
    }
    case MsgKind::kKwsInsert:
    case MsgKind::kKwsDelete:
    case MsgKind::kHcInsert:
    case MsgKind::kHcDelete: {
      EntryMsg m;
      m.object = r.u64();
      m.keywords = r.strings();
      m.request = r.u64();
      m.publisher = r.u64();
      return finish(r, m);
    }
    case MsgKind::kKwsPin:
    case MsgKind::kHcPin: {
      PinMsg m;
      m.request = r.u64();
      m.searcher = r.u64();
      m.keywords = r.strings();
      return finish(r, m);
    }
    case MsgKind::kKwsPinReply:
    case MsgKind::kKwsResults:
    case MsgKind::kKwsCResults:
    case MsgKind::kHcPinReply:
    case MsgKind::kHcResults: {
      HitsMsg m;
      m.request = r.u64();
      m.node = r.u64();
      m.hits = get_hits(r);
      return finish(r, m);
    }
    case MsgKind::kKwsTQuery:
    case MsgKind::kKwsCQuery:
    case MsgKind::kHcSQuery: {
      QueryMsg m;
      m.request = r.u64();
      m.node = r.u64();
      m.searcher = r.u64();
      m.want = r.u64();
      m.offset = r.u64();
      m.query = r.strings();
      return finish(r, m);
    }
    case MsgKind::kKwsTCont:
    case MsgKind::kKwsTStop:
    case MsgKind::kKwsCCont:
    case MsgKind::kHcSDone: {
      ControlMsg m;
      m.request = r.u64();
      m.node = r.u64();
      m.count = r.u64();
      m.stop = r.u8() != 0;
      return finish(r, m);
    }
    case MsgKind::kKwsDone:
    case MsgKind::kKwsCDone:
    case MsgKind::kHcDone: {
      DoneMsg m;
      m.request = r.u64();
      m.results_expected = r.u64();
      return finish(r, m);
    }
    case MsgKind::kKwsSReply: {
      SearchReplyMsg m;
      m.request = r.u64();
      m.nodes_contacted = r.u64();
      m.messages = r.u64();
      m.rounds = r.u64();
      m.retransmits = r.u64();
      m.complete = r.u8() != 0;
      m.failed = r.u8() != 0;
      m.hits = get_hits(r);
      return finish(r, m);
    }
    case MsgKind::kKwsVisitBatch: {
      VisitBatchMsg m;
      m.request = r.u64();
      m.want = r.u64();
      m.nodes = r.u64s();
      m.query = r.strings();
      return finish(r, m);
    }
    case MsgKind::kKwsBatchResults: {
      BatchResultsMsg m;
      m.request = r.u64();
      const std::uint32_t n = r.u32();
      if (n > kMaxCount || n > r.remaining() / 12) return std::nullopt;
      m.batches.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        BatchResultsMsg::NodeBatch b;
        b.node = r.u64();
        b.hits = get_hits(r);
        m.batches.push_back(std::move(b));
      }
      return finish(r, std::move(m));
    }
    case MsgKind::kKwsBatchReply: {
      BatchReplyMsg m;
      m.request = r.u64();
      const std::uint32_t n = r.u32();
      if (n > kMaxCount || n > r.remaining() / 17) return std::nullopt;
      m.verdicts.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        BatchReplyMsg::NodeVerdict v;
        v.node = r.u64();
        v.count = r.u64();
        v.stop = r.u8() != 0;
        m.verdicts.push_back(v);
      }
      return finish(r, std::move(m));
    }
    case MsgKind::kKwsCOpen: {
      COpenMsg m;
      m.session = r.u64();
      m.searcher = r.u64();
      m.query = r.strings();
      return finish(r, m);
    }
    case MsgKind::kKwsCNext: {
      CNextMsg m;
      m.session = r.u64();
      m.count = r.u64();
      return finish(r, m);
    }
    case MsgKind::kDhtJoin: {
      JoinMsg m;
      m.joiner = r.u64();
      m.bootstrap = r.u64();
      return finish(r, m);
    }
    case MsgKind::kDhtFixFinger: {
      FixFingerMsg m;
      m.node = r.u64();
      m.finger = r.u32();
      return finish(r, m);
    }
    case MsgKind::kFeQuery: {
      FeQueryMsg m;
      m.threshold = r.u64();
      m.strategy = r.u8();
      m.keywords = r.strings();
      return finish(r, m);
    }
    case MsgKind::kFeReply: {
      FeReplyMsg m;
      m.complete = r.u8() != 0;
      m.messages = r.u64();
      m.hits = get_hits(r);
      return finish(r, m);
    }
    case MsgKind::kEnvelope: {
      EnvelopeMsg m;
      const std::uint16_t inner = r.u16();
      m.inner_kind = static_cast<MsgKind>(inner);
      if (m.inner_kind != MsgKind::kOpaque &&
          kind_name(m.inner_kind)[0] == '\0')
        return std::nullopt;  // unknown inner kind id
      if (m.inner_kind == MsgKind::kOpaque) m.label = r.str();
      m.msg_id = r.u64();
      m.from = r.u64();
      m.to = r.u64();
      m.declared_bytes = r.u64();
      m.payload = r.bytes();
      m.pad = r.u32();
      if (m.pad > r.remaining()) return std::nullopt;
      r.skip(m.pad);
      return finish(r, std::move(m));
    }
    case MsgKind::kOpaque:
      return std::nullopt;  // opaque kinds travel only inside envelopes
  }
  return std::nullopt;  // unknown kind id
}

struct KindEntry {
  MsgKind kind;
  const char* name;
  std::size_t layout;  ///< WireMessage variant index this kind decodes to
};

template <typename T>
std::size_t layout_of() {
  return WireMessage(std::in_place_type<T>).index();
}

const KindEntry kKinds[] = {
    {MsgKind::kDolrInsert, "dolr.insert", layout_of<RefMsg>()},
    {MsgKind::kDolrReplicate, "dolr.replicate", layout_of<RefMsg>()},
    {MsgKind::kDolrDelete, "dolr.delete", layout_of<RefMsg>()},
    {MsgKind::kDolrUnreplicate, "dolr.unreplicate", layout_of<RefMsg>()},
    {MsgKind::kDolrRead, "dolr.read", layout_of<ReadMsg>()},
    {MsgKind::kDolrReply, "dolr.reply", layout_of<HoldersMsg>()},
    {MsgKind::kKwsInsert, "kws.insert", layout_of<EntryMsg>()},
    {MsgKind::kKwsDelete, "kws.delete", layout_of<EntryMsg>()},
    {MsgKind::kKwsPin, "kws.pin", layout_of<PinMsg>()},
    {MsgKind::kKwsPinReply, "kws.pin_reply", layout_of<HitsMsg>()},
    {MsgKind::kKwsTQuery, "kws.t_query", layout_of<QueryMsg>()},
    {MsgKind::kKwsTCont, "kws.t_cont", layout_of<ControlMsg>()},
    {MsgKind::kKwsTStop, "kws.t_stop", layout_of<ControlMsg>()},
    {MsgKind::kKwsResults, "kws.results", layout_of<HitsMsg>()},
    {MsgKind::kKwsDone, "kws.done", layout_of<DoneMsg>()},
    {MsgKind::kKwsSReply, "kws.s_reply", layout_of<SearchReplyMsg>()},
    {MsgKind::kKwsVisitBatch, "kws.visit_batch", layout_of<VisitBatchMsg>()},
    {MsgKind::kKwsBatchResults, "kws.batch_results",
     layout_of<BatchResultsMsg>()},
    {MsgKind::kKwsBatchReply, "kws.batch_reply", layout_of<BatchReplyMsg>()},
    {MsgKind::kKwsCOpen, "kws.c_open", layout_of<COpenMsg>()},
    {MsgKind::kKwsCNext, "kws.c_next", layout_of<CNextMsg>()},
    {MsgKind::kKwsCQuery, "kws.c_query", layout_of<QueryMsg>()},
    {MsgKind::kKwsCCont, "kws.c_cont", layout_of<ControlMsg>()},
    {MsgKind::kKwsCResults, "kws.c_results", layout_of<HitsMsg>()},
    {MsgKind::kKwsCDone, "kws.c_done", layout_of<DoneMsg>()},
    {MsgKind::kHcInsert, "hc.insert", layout_of<EntryMsg>()},
    {MsgKind::kHcDelete, "hc.delete", layout_of<EntryMsg>()},
    {MsgKind::kHcPin, "hc.pin", layout_of<PinMsg>()},
    {MsgKind::kHcPinReply, "hc.pin_reply", layout_of<HitsMsg>()},
    {MsgKind::kHcSQuery, "hc.s_query", layout_of<QueryMsg>()},
    {MsgKind::kHcResults, "hc.results", layout_of<HitsMsg>()},
    {MsgKind::kHcSDone, "hc.s_done", layout_of<ControlMsg>()},
    {MsgKind::kHcDone, "hc.done", layout_of<DoneMsg>()},
    {MsgKind::kDhtJoin, "dht.join", layout_of<JoinMsg>()},
    {MsgKind::kDhtFixFinger, "dht.fix_finger", layout_of<FixFingerMsg>()},
    {MsgKind::kFeQuery, "fe.query", layout_of<FeQueryMsg>()},
    {MsgKind::kFeReply, "fe.reply", layout_of<FeReplyMsg>()},
    {MsgKind::kEnvelope, "net.envelope", layout_of<EnvelopeMsg>()},
};

const KindEntry* entry_of(MsgKind kind) {
  for (const auto& e : kKinds)
    if (e.kind == kind) return &e;
  return nullptr;
}

}  // namespace

const char* kind_name(MsgKind kind) {
  const KindEntry* e = entry_of(kind);
  return e != nullptr ? e->name : "";
}

std::optional<MsgKind> kind_of(const std::string& name) {
  static const std::unordered_map<std::string, MsgKind> index = [] {
    std::unordered_map<std::string, MsgKind> m;
    for (const auto& e : kKinds) m.emplace(e.name, e.kind);
    return m;
  }();
  const auto it = index.find(name);
  if (it == index.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint8_t> encode_frame(MsgKind kind, const WireMessage& msg) {
  const KindEntry* e = entry_of(kind);
  if (e == nullptr || e->layout != msg.index()) return {};
  Writer body;
  std::visit([&body](const auto& m) { put(body, m); }, msg);
  std::vector<std::uint8_t> b = body.take();
  if (b.size() > kMaxBody) return {};

  Writer w;
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(0);
  w.u16(static_cast<std::uint16_t>(kind));
  w.u16(0);
  w.u32(static_cast<std::uint32_t>(b.size()));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

std::optional<std::size_t> frame_size(const std::uint8_t* data,
                                      std::size_t len) {
  if (len < kWireHeaderSize) return 0;  // need more bytes
  Reader r(data, kWireHeaderSize);
  if (r.u16() != kWireMagic) return std::nullopt;
  if (r.u8() != kWireVersion) return std::nullopt;
  r.u8();   // reserved
  r.u16();  // kind (validated by decode_frame)
  r.u16();  // reserved
  const std::uint32_t body = r.u32();
  if (body > kMaxBody) return std::nullopt;
  return kWireHeaderSize + body;
}

std::optional<DecodedFrame> decode_frame(const std::uint8_t* data,
                                         std::size_t len) {
  const std::optional<std::size_t> total = frame_size(data, len);
  if (!total.has_value() || *total == 0 || *total > len) return std::nullopt;
  Reader h(data, kWireHeaderSize);
  h.u16();  // magic (validated by frame_size)
  h.u8();   // version
  h.u8();
  const MsgKind kind = static_cast<MsgKind>(h.u16());
  h.u16();
  h.u32();

  Reader body(data + kWireHeaderSize, *total - kWireHeaderSize);
  std::optional<WireMessage> msg = decode_body(kind, body);
  if (!msg.has_value()) return std::nullopt;
  return DecodedFrame{kind, std::move(*msg), *total};
}

}  // namespace hkws::net
