// Simulated point-to-point message network. Endpoints register handlers;
// sends are delivered as events after a pluggable latency, and every send is
// accounted in Metrics by message kind. Both the DHT overlay and the
// hypercube index protocol run entirely on top of this class — a "message"
// here corresponds to one physical network message in the paper's cost model.
//
// Two pluggable models shape the fabric:
//  * LatencyModel — one-way delay per (from, to) pair. FixedLatency and
//    UniformLatency cover the paper's regime; LogNormalLatency adds the
//    heavy-tailed WAN delays that make p99 behaviour under load meaningful.
//  * DropModel — per-message loss. A lossless Network is the default;
//    installing a drop model (or constructing a LossyNetwork) makes sends
//    vanish with a seeded probability, which is what exercises the serving
//    engine's timeout/retransmission machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace hkws::sim {

/// Identifies a process/endpoint in the simulation (a physical peer).
using EndpointId = net::EndpointId;

/// Pluggable one-way latency model.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Time latency(EndpointId from, EndpointId to, Rng& rng) = 0;
};

/// Constant latency for every pair.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(Time ticks) : ticks_(ticks) {}
  Time latency(EndpointId, EndpointId, Rng&) override { return ticks_; }

 private:
  Time ticks_;
};

/// Uniform random latency in [lo, hi] (inclusive), deterministic per seed.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Time lo, Time hi) : lo_(lo), hi_(hi) {}
  Time latency(EndpointId, EndpointId, Rng& rng) override {
    return lo_ + rng.next_below(hi_ - lo_ + 1);
  }

 private:
  Time lo_, hi_;
};

/// Heavy-tailed latency: ticks = median * exp(sigma * N(0,1)), i.e.
/// log-normal with the given median and log-space spread `sigma`. Results
/// are clamped to >= 1 tick and, if `cap` > 0, to <= cap (a crude stand-in
/// for transport-level retransmission bounding the delay of a surviving
/// packet). sigma ~ 0.4-0.6 reproduces typical WAN RTT tails.
class LogNormalLatency final : public LatencyModel {
 public:
  explicit LogNormalLatency(double median_ticks, double sigma = 0.5,
                            Time cap = 0);
  Time latency(EndpointId, EndpointId, Rng& rng) override;

 private:
  double median_;
  double sigma_;
  Time cap_;
};

/// Pluggable per-message loss model. Local sends (from == to) are exempt.
class DropModel {
 public:
  virtual ~DropModel() = default;
  virtual bool drop(EndpointId from, EndpointId to, const std::string& kind,
                    Rng& rng) = 0;
};

/// Drops every message independently with probability `p`.
class BernoulliDrop final : public DropModel {
 public:
  explicit BernoulliDrop(double p) : p_(p) {}
  bool drop(EndpointId, EndpointId, const std::string&, Rng& rng) override {
    return rng.next_bool(p_);
  }

 private:
  double p_;
};

/// What a FaultModel decided to do to one wire message. Defaults = deliver
/// untouched.
struct FaultActions {
  bool drop = false;             ///< lose the message entirely
  std::uint32_t duplicates = 0;  ///< extra copies, each delivered separately
  Time extra_delay = 0;          ///< added one-way latency (reorders traffic)
};

/// Pluggable deterministic fault scheduler, richer than DropModel: besides
/// loss it can duplicate a message or spike its delay. `seq` is the 0-based
/// sequence number of wire messages (local sends and sends to unregistered
/// endpoints are not numbered), so a seeded schedule of faults replays
/// bit-identically. Consulted after the DropModel (a message the drop model
/// already lost is never inspected).
class FaultModel {
 public:
  virtual ~FaultModel() = default;
  virtual FaultActions inspect(EndpointId from, EndpointId to,
                               const std::string& kind, std::uint64_t seq,
                               Rng& rng) = 0;
};

/// The message-passing fabric — the simulator's implementation of the
/// net::Transport interface (the "SimTransport"; see src/net/transport.hpp
/// and src/net/sim_transport.hpp). Protocol layers talk to the interface;
/// simulation drivers additionally reach the event queue (clock()) and the
/// latency/drop/fault models through this concrete class.
class Network : public net::Transport {
 public:
  /// Delivery action run at the destination when a message arrives.
  using Handler = net::Transport::Handler;

  /// @param clock    event queue driving the simulation (not owned)
  /// @param latency  latency model (owned); nullptr = FixedLatency(1)
  /// @param seed     seed for latency/loss randomness
  explicit Network(EventQueue& clock,
                   std::unique_ptr<LatencyModel> latency = nullptr,
                   std::uint64_t seed = 1);

  /// Declares an endpoint reachable. Sends to unregistered endpoints are
  /// counted as "net.dropped" and silently discarded (models absent peers).
  void register_endpoint(EndpointId id) override;
  void unregister_endpoint(EndpointId id) override;
  bool is_registered(EndpointId id) const override;

  /// Installs (or, with nullptr, removes) a message-loss model. Lost sends
  /// are counted under "net.lost" / "net.lost.<kind>" — and still under
  /// "net.messages", since they were put on the wire — but never delivered.
  void set_drop_model(std::unique_ptr<DropModel> model);
  bool lossy() const noexcept { return drop_ != nullptr; }

  /// Installs (or, with nullptr, removes) a fault-injection model. Injected
  /// drops count under "net.lost" like drop-model losses; duplicates count
  /// as full wire messages plus "net.dup"; delay spikes count "net.delayed".
  void set_fault_model(std::unique_ptr<FaultModel> model);

  /// One wire message, reported to the send observer after the drop/fault
  /// models have decided its fate. Duplicated messages report once per wire
  /// copy; local sends and sends to unregistered endpoints do not report.
  using SendRecord = net::SendRecord;
  using SendObserver = net::Transport::SendObserver;

  /// Installs (or, with nullptr, removes) a per-send observer — the tracing
  /// hook (see src/obs). Invoked synchronously from send(); keep it cheap.
  /// The observer must outlive the network or be removed first.
  void set_send_observer(SendObserver fn) override { observer_ = std::move(fn); }

  /// Sends one message. `kind` labels the protocol message type for
  /// accounting ("dht.lookup", "kws.t_query", ...). `deliver` runs at the
  /// destination after the modeled latency; `payload_bytes` feeds byte
  /// accounting only. Local sends (from == to) are free: delivered
  /// immediately-after (same tick) and not counted as network messages.
  void send(EndpointId from, EndpointId to, std::string kind,
            std::size_t payload_bytes, Handler deliver) override;

  // --- Transport time/timer hooks (delegate to the event queue) -----------

  Time now() const override { return clock_.now(); }
  void schedule_in(Time delay, Handler fn) override {
    clock_.schedule_in(delay, std::move(fn));
  }
  TimerId set_timer(Time delay, Handler fn) override {
    return clock_.set_timer(delay, std::move(fn));
  }
  bool cancel_timer(TimerId id) override { return clock_.cancel_timer(id); }

  EventQueue& clock() noexcept { return clock_; }
  Metrics& metrics() noexcept override { return metrics_; }
  const Metrics& metrics() const noexcept override { return metrics_; }

  /// Total messages actually put on the wire (excludes local sends).
  std::uint64_t messages_sent() const { return metrics_.counter("net.messages"); }

  /// Total messages lost in flight (drop model + injected faults).
  std::uint64_t messages_lost() const { return metrics_.counter("net.lost"); }

  /// Total messages handed to a destination handler. After the event queue
  /// drains, conservation holds: net.messages == net.delivered + net.lost.
  std::uint64_t messages_delivered() const {
    return metrics_.counter("net.delivered");
  }

 private:
  /// Schedules one delivery of `deliver` after `delay`, counting
  /// "net.delivered" at arrival time.
  void deliver_after(Time delay, const Handler& deliver);

  EventQueue& clock_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<DropModel> drop_;
  std::unique_ptr<FaultModel> fault_;
  SendObserver observer_;
  Rng rng_;
  Metrics metrics_;
  std::uint64_t wire_seq_ = 0;  ///< next wire-message sequence number
  std::unordered_map<EndpointId, bool> endpoints_;
};

/// Convenience: a Network born with a BernoulliDrop(loss_p) installed.
class LossyNetwork final : public Network {
 public:
  LossyNetwork(EventQueue& clock, double loss_p,
               std::unique_ptr<LatencyModel> latency = nullptr,
               std::uint64_t seed = 1)
      : Network(clock, std::move(latency), seed) {
    set_drop_model(std::make_unique<BernoulliDrop>(loss_p));
  }
};

}  // namespace hkws::sim
