// Simulated point-to-point message network. Endpoints register handlers;
// sends are delivered as events after a pluggable latency, and every send is
// accounted in Metrics by message kind. Both the DHT overlay and the
// hypercube index protocol run entirely on top of this class — a "message"
// here corresponds to one physical network message in the paper's cost model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace hkws::sim {

/// Identifies a process/endpoint in the simulation (a physical peer).
using EndpointId = std::uint64_t;

/// Pluggable one-way latency model.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Time latency(EndpointId from, EndpointId to, Rng& rng) = 0;
};

/// Constant latency for every pair.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(Time ticks) : ticks_(ticks) {}
  Time latency(EndpointId, EndpointId, Rng&) override { return ticks_; }

 private:
  Time ticks_;
};

/// Uniform random latency in [lo, hi] (inclusive), deterministic per seed.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Time lo, Time hi) : lo_(lo), hi_(hi) {}
  Time latency(EndpointId, EndpointId, Rng& rng) override {
    return lo_ + rng.next_below(hi_ - lo_ + 1);
  }

 private:
  Time lo_, hi_;
};

/// The message-passing fabric.
class Network {
 public:
  /// Delivery action run at the destination when a message arrives.
  using Handler = std::function<void()>;

  /// @param clock    event queue driving the simulation (not owned)
  /// @param latency  latency model (owned); nullptr = FixedLatency(1)
  /// @param seed     seed for latency randomness
  explicit Network(EventQueue& clock,
                   std::unique_ptr<LatencyModel> latency = nullptr,
                   std::uint64_t seed = 1);

  /// Declares an endpoint reachable. Sends to unregistered endpoints are
  /// counted as "net.dropped" and silently discarded (models absent peers).
  void register_endpoint(EndpointId id);
  void unregister_endpoint(EndpointId id);
  bool is_registered(EndpointId id) const;

  /// Sends one message. `kind` labels the protocol message type for
  /// accounting ("dht.lookup", "kws.t_query", ...). `deliver` runs at the
  /// destination after the modeled latency; `payload_bytes` feeds byte
  /// accounting only. Local sends (from == to) are free: delivered
  /// immediately-after (same tick) and not counted as network messages.
  void send(EndpointId from, EndpointId to, std::string kind,
            std::size_t payload_bytes, Handler deliver);

  EventQueue& clock() noexcept { return clock_; }
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }

  /// Total messages actually put on the wire (excludes local sends).
  std::uint64_t messages_sent() const { return metrics_.counter("net.messages"); }

 private:
  EventQueue& clock_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  Metrics metrics_;
  std::unordered_map<EndpointId, bool> endpoints_;
};

}  // namespace hkws::sim
