#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hkws::sim {

void EventQueue::schedule_in(Time delay, Event event) {
  schedule_at(now_ + delay, std::move(event));
}

void EventQueue::schedule_at(Time at, Event event) {
  if (at < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  flush_staged();
  heap_.push_back(Entry{at, next_seq_++, std::move(event), {}, 0});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++plain_count_;
}

EventQueue::TimerId EventQueue::set_timer(Time delay, Event event) {
  const TimerId id = next_timer_++;
  timers_.emplace(id, std::move(event));
  const Time at = now_ + delay;
  // Same-expiry batching: a run of set_timer calls with one expiry (a level
  // fan-out arming N step timers in one tick) shares one heap entry. Members
  // keep insertion order; the batch holds the first member's seq, and every
  // member's would-be seq is consumed, so relative order against any later
  // schedule is unchanged.
  if (staged_.has_value() && staged_->at == at) {
    staged_->ids.push_back(id);
    ++next_seq_;
  } else {
    flush_staged();
    staged_ = Entry{at, next_seq_++, Event{}, {id}, 0};
  }
  return id;
}

bool EventQueue::cancel_timer(TimerId id) {
  if (timers_.erase(id) == 0) return false;
  ++dead_ids_;  // the id stays heaped as a tombstone until pop/compaction
  maybe_compact();
  return true;
}

void EventQueue::flush_staged() {
  if (!staged_.has_value()) return;
  heap_.push_back(std::move(*staged_));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  staged_.reset();
}

void EventQueue::prune_front() {
  while (!heap_.empty()) {
    Entry& e = heap_.front();
    if (e.ids.empty()) return;  // plain events are always live
    while (e.head < e.ids.size() && !timers_.contains(e.ids[e.head])) {
      ++e.head;
      --dead_ids_;
    }
    if (e.head < e.ids.size()) return;
    // Every member cancelled: discard the entry without running anything.
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void EventQueue::maybe_compact() {
  // Tombstones cost 8 bytes each (the closure is already freed), so sweep
  // only once they dominate: bounded memory under set/cancel churn without
  // per-cancel heap surgery.
  const std::size_t heaped = timers_.size() + dead_ids_;
  if (dead_ids_ < 64 || dead_ids_ * 2 < heaped) return;
  flush_staged();
  std::vector<Entry> kept;
  kept.reserve(heap_.size());
  for (Entry& e : heap_) {
    if (e.ids.empty()) {
      kept.push_back(std::move(e));
      continue;
    }
    std::vector<TimerId> live;
    live.reserve(e.ids.size() - e.head);
    for (std::size_t i = e.head; i < e.ids.size(); ++i)
      if (timers_.contains(e.ids[i])) live.push_back(e.ids[i]);
    if (live.empty()) continue;
    e.ids = std::move(live);
    e.head = 0;
    kept.push_back(std::move(e));
  }
  heap_ = std::move(kept);
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  dead_ids_ = 0;
}

bool EventQueue::step() {
  flush_staged();
  prune_front();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  now_ = e.at;
  if (e.ids.empty()) {
    --plain_count_;
    Event ev = std::move(e.event);
    ev();
    return true;
  }
  // Timer batch: fire exactly one member (step()'s contract), re-heap the
  // remainder under the same (at, seq) so they surface next, in order.
  const TimerId id = e.ids[e.head++];
  const auto it = timers_.find(id);  // live: prune_front guarantees it
  Event ev = std::move(it->second);
  timers_.erase(it);
  if (e.head < e.ids.size()) {
    heap_.push_back(std::move(e));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  ev();
  return true;
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(Time deadline) {
  std::size_t executed = 0;
  while (true) {
    flush_staged();
    prune_front();
    if (heap_.empty() || heap_.front().at > deadline) break;
    if (!step()) break;
    ++executed;
  }
  return executed;
}

}  // namespace hkws::sim
