#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace hkws::sim {

void EventQueue::schedule_in(Time delay, Event event) {
  schedule_at(now_ + delay, std::move(event));
}

void EventQueue::schedule_at(Time at, Event event) {
  if (at < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  heap_.push(Entry{at, next_seq_++, std::move(event), 0});
}

EventQueue::TimerId EventQueue::set_timer(Time delay, Event event) {
  const TimerId id = next_timer_++;
  live_timers_.insert(id);
  heap_.push(Entry{now_ + delay, next_seq_++, std::move(event), id});
  return id;
}

bool EventQueue::cancel_timer(TimerId id) {
  if (live_timers_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && heap_.top().timer != 0 &&
         cancelled_.contains(heap_.top().timer)) {
    cancelled_.erase(heap_.top().timer);
    heap_.pop();
  }
}

bool EventQueue::step() {
  drop_cancelled();
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the closure handle (shared ownership is fine at this rate).
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.at;
  if (entry.timer != 0) live_timers_.erase(entry.timer);
  entry.event();
  return true;
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(Time deadline) {
  std::size_t executed = 0;
  while (true) {
    drop_cancelled();
    if (heap_.empty() || heap_.top().at > deadline) break;
    if (!step()) break;
    ++executed;
  }
  return executed;
}

}  // namespace hkws::sim
