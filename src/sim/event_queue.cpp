#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace hkws::sim {

void EventQueue::schedule_in(Time delay, Event event) {
  schedule_at(now_ + delay, std::move(event));
}

void EventQueue::schedule_at(Time at, Event event) {
  if (at < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  heap_.push(Entry{at, next_seq_++, std::move(event)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the closure handle (shared ownership is fine at this rate).
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.at;
  entry.event();
  return true;
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(Time deadline) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= deadline && step()) ++executed;
  return executed;
}

}  // namespace hkws::sim
