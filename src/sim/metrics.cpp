#include "sim/metrics.hpp"

#include <numeric>
#include <sstream>

namespace hkws::sim {

void Metrics::count(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t Metrics::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::observe(const std::string& name, double value) {
  samples_[name].push_back(value);
}

const std::vector<double>& Metrics::samples(const std::string& name) const {
  static const std::vector<double> kEmpty;
  const auto it = samples_.find(name);
  return it == samples_.end() ? kEmpty : it->second;
}

double Metrics::sample_mean(const std::string& name) const {
  const auto& xs = samples(name);
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

void Metrics::reset() {
  counters_.clear();
  samples_.clear();
}

std::string Metrics::to_string() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_)
    out << name << " = " << value << "\n";
  for (const auto& [name, xs] : samples_)
    out << name << " (samples) = " << xs.size()
        << ", mean = " << sample_mean(name) << "\n";
  return out.str();
}

}  // namespace hkws::sim
