#include "sim/metrics.hpp"

#include <sstream>

namespace hkws::sim {

void Metrics::count(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t Metrics::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::observe(const std::string& name, double value) {
  auto [it, created] = series_.try_emplace(name);
  Series& s = it->second;
  if (created) s.cap = default_cap_;
  ++s.n;
  s.sum += value;
  if (s.cap == 0 || s.values.size() < s.cap) {
    s.values.push_back(value);
    return;
  }
  // Reservoir replacement (algorithm R): keep each of the n observations
  // with equal probability cap/n.
  const std::uint64_t j = reservoir_rng_.next_below(s.n);
  if (j < s.cap) s.values[static_cast<std::size_t>(j)] = value;
}

const std::vector<double>& Metrics::samples(const std::string& name) const {
  static const std::vector<double> kEmpty;
  const auto it = series_.find(name);
  return it == series_.end() ? kEmpty : it->second.values;
}

std::uint64_t Metrics::sample_count(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? 0 : it->second.n;
}

double Metrics::sample_mean(const std::string& name) const {
  const auto it = series_.find(name);
  if (it == series_.end() || it->second.n == 0) return 0.0;
  return it->second.sum / static_cast<double>(it->second.n);
}

void Metrics::set_reservoir(const std::string& name, std::size_t cap) {
  Series& s = series_[name];
  s.cap = cap;
  if (cap == 0 || s.values.size() <= cap) return;
  // Subsample the existing series down to the cap (uniform without
  // replacement via partial Fisher-Yates).
  for (std::size_t i = 0; i < cap; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(
                reservoir_rng_.next_below(s.values.size() - i));
    std::swap(s.values[i], s.values[j]);
  }
  s.values.resize(cap);
  s.values.shrink_to_fit();
}

void Metrics::reset() {
  counters_.clear();
  series_.clear();
  reservoir_rng_ = Rng(kReservoirSeed);
}

std::string Metrics::to_string() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_)
    out << name << " = " << value << "\n";
  for (const auto& [name, s] : series_) {
    out << name << " (samples) = " << s.n;
    if (s.cap != 0 && s.n > s.values.size())
      out << " (reservoir of " << s.values.size() << ")";
    out << ", mean = " << sample_mean(name) << "\n";
  }
  return out.str();
}

}  // namespace hkws::sim
