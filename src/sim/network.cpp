#include "sim/network.hpp"

#include <utility>

namespace hkws::sim {

Network::Network(EventQueue& clock, std::unique_ptr<LatencyModel> latency,
                 std::uint64_t seed)
    : clock_(clock),
      latency_(latency ? std::move(latency)
                       : std::make_unique<FixedLatency>(1)),
      rng_(seed) {}

void Network::register_endpoint(EndpointId id) { endpoints_[id] = true; }

void Network::unregister_endpoint(EndpointId id) { endpoints_.erase(id); }

bool Network::is_registered(EndpointId id) const {
  return endpoints_.contains(id);
}

void Network::send(EndpointId from, EndpointId to, std::string kind,
                   std::size_t payload_bytes, Handler deliver) {
  if (from == to) {
    // Local call: no network traffic, but preserve async semantics so
    // protocol code behaves identically for local and remote destinations.
    metrics_.count("net.local");
    clock_.schedule_in(0, std::move(deliver));
    return;
  }
  if (!endpoints_.contains(to)) {
    metrics_.count("net.dropped");
    metrics_.count("net.dropped." + kind);
    return;
  }
  metrics_.count("net.messages");
  metrics_.count("net.bytes", payload_bytes);
  metrics_.count("msg." + kind);
  const Time delay = latency_->latency(from, to, rng_);
  clock_.schedule_in(delay, std::move(deliver));
}

}  // namespace hkws::sim
