#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace hkws::sim {

LogNormalLatency::LogNormalLatency(double median_ticks, double sigma, Time cap)
    : median_(median_ticks), sigma_(sigma), cap_(cap) {}

Time LogNormalLatency::latency(EndpointId, EndpointId, Rng& rng) {
  // Box-Muller; one variate per call keeps the stream draw-count stable.
  const double u1 = std::max(rng.next_double(), 1e-12);
  const double u2 = rng.next_double();
  const double normal =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  double ticks = median_ * std::exp(sigma_ * normal);
  if (cap_ != 0) ticks = std::min(ticks, static_cast<double>(cap_));
  return static_cast<Time>(std::llround(std::max(ticks, 1.0)));
}

Network::Network(EventQueue& clock, std::unique_ptr<LatencyModel> latency,
                 std::uint64_t seed)
    : clock_(clock),
      latency_(latency ? std::move(latency)
                       : std::make_unique<FixedLatency>(1)),
      rng_(seed) {}

void Network::register_endpoint(EndpointId id) { endpoints_[id] = true; }

void Network::unregister_endpoint(EndpointId id) { endpoints_.erase(id); }

bool Network::is_registered(EndpointId id) const {
  return endpoints_.contains(id);
}

void Network::set_drop_model(std::unique_ptr<DropModel> model) {
  drop_ = std::move(model);
}

void Network::set_fault_model(std::unique_ptr<FaultModel> model) {
  fault_ = std::move(model);
}

void Network::deliver_after(Time delay, const Handler& deliver) {
  clock_.schedule_in(delay, [this, deliver] {
    metrics_.count("net.delivered");
    deliver();
  });
}

void Network::send(EndpointId from, EndpointId to, std::string kind,
                   std::size_t payload_bytes, Handler deliver) {
  if (from == to) {
    // Local call: no network traffic, but preserve async semantics so
    // protocol code behaves identically for local and remote destinations.
    metrics_.count("net.local");
    clock_.schedule_in(0, std::move(deliver));
    return;
  }
  if (!endpoints_.contains(to)) {
    metrics_.count("net.dropped");
    metrics_.count("net.dropped." + kind);
    metrics_.count("net.dropped.unregistered");
    return;
  }
  metrics_.count("net.messages");
  metrics_.count("net.bytes", payload_bytes);
  metrics_.count("msg." + kind);
  const Time now = clock_.now();
  const auto observe = [&](bool lost, Time deliver_at) {
    if (observer_)
      observer_(kind, SendRecord{now, from, to, payload_bytes, lost,
                                 lost ? now : deliver_at});
  };
  if (drop_ != nullptr && drop_->drop(from, to, kind, rng_)) {
    metrics_.count("net.lost");
    metrics_.count("net.lost." + kind);
    metrics_.count("net.dropped.fault");
    observe(true, 0);
    return;
  }
  FaultActions fault;
  if (fault_ != nullptr)
    fault = fault_->inspect(from, to, kind, wire_seq_, rng_);
  ++wire_seq_;
  if (fault.drop) {
    metrics_.count("net.lost");
    metrics_.count("net.lost." + kind);
    metrics_.count("net.dropped.fault");
    observe(true, 0);
    return;
  }
  const Time base = latency_->latency(from, to, rng_);
  if (fault.extra_delay != 0) metrics_.count("net.delayed");
  observe(false, now + base + fault.extra_delay);
  deliver_after(base + fault.extra_delay, deliver);
  for (std::uint32_t i = 0; i < fault.duplicates; ++i) {
    // Each duplicate is a real wire message with its own latency draw, so
    // copies overtake each other (the interesting reordering case).
    metrics_.count("net.messages");
    metrics_.count("net.bytes", payload_bytes);
    metrics_.count("msg." + kind);
    metrics_.count("net.dup");
    const Time dup_latency = latency_->latency(from, to, rng_);
    observe(false, now + dup_latency);
    deliver_after(dup_latency, deliver);
  }
}

}  // namespace hkws::sim
