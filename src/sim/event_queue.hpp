// Discrete-event scheduler: the heart of the network simulator. Events are
// closures ordered by (time, insertion sequence), so simulations are fully
// deterministic — ties break in schedule order, never by allocation address.
//
// Besides plain one-shot events the queue offers cancelable *timers*
// (set_timer / cancel_timer). Timers back every timeout in the query-serving
// engine: protocol retransmission, per-query deadlines, and arrival pacing.
//
// Storage layout (the serving hot path lives here):
//  * The heap is a plain vector managed with push_heap/pop_heap, so entries
//    are *moved* out at delivery — closures and their captured payloads are
//    never copied on the hot path.
//  * Timer closures live in a side map keyed by TimerId; the heap entry
//    holds only the ids. cancel_timer frees the closure (and whatever it
//    captured) immediately — a cancelled timer leaves behind nothing but an
//    8-byte tombstone id, which compaction sweeps once tombstones dominate.
//  * Consecutive set_timer calls with the same absolute expiry batch into
//    one heap entry (the common case: a protocol level fanning out N step
//    timers in one tick pays one heap push, not N). Batching never reorders:
//    members fire in insertion order at the batch's sequence point, and any
//    intervening schedule/cancel/run closes the batch.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace hkws::sim {

/// Simulated time in abstract ticks (we treat one tick as ~1 ms when a unit
/// is needed, but nothing depends on the unit).
using Time = std::uint64_t;

/// An executable simulation event.
using Event = std::function<void()>;

/// Priority queue of timed events with deterministic FIFO tie-breaking.
class EventQueue {
 public:
  /// Handle of a cancelable timer. 0 is never a valid handle.
  using TimerId = std::uint64_t;

  /// Current simulated time (time of the last executed event).
  Time now() const noexcept { return now_; }

  /// Schedules `event` to run at now() + delay.
  void schedule_in(Time delay, Event event);

  /// Schedules `event` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, Event event);

  /// Schedules a cancelable timer to fire at now() + delay. Fires exactly
  /// once unless cancelled first.
  TimerId set_timer(Time delay, Event event);

  /// Cancels a pending timer. Returns true if the timer was still pending
  /// (it will now never fire); false if it already fired, was already
  /// cancelled, or never existed. The timer's closure — and everything it
  /// captured — is released immediately, not at pop time.
  bool cancel_timer(TimerId id);

  /// Runs events until the queue is empty. Returns #events executed
  /// (cancelled timers are discarded silently and not counted).
  std::size_t run();

  /// Runs events with time <= `deadline`. Returns #events executed.
  std::size_t run_until(Time deadline);

  /// Executes just the next live event, if any. Returns whether one ran.
  bool step();

  bool empty() const noexcept { return plain_count_ == 0 && timers_.empty(); }
  std::size_t pending() const noexcept {
    return plain_count_ + timers_.size();
  }

  /// Timers that are still pending (set, not yet fired, not cancelled).
  /// A protocol that cancels every timer on terminal transitions leaves this
  /// at 0 once all its operations have completed — the torture harness's
  /// no-dangling-timer invariant.
  std::size_t live_timer_count() const noexcept { return timers_.size(); }

  // --- Storage introspection (tests / diagnostics) -------------------------

  /// Heap entries currently held (live + tombstoned), including the staged
  /// batch. Bounded by compaction even under pathological set/cancel churn.
  std::size_t heap_entries() const noexcept {
    return heap_.size() + (staged_.has_value() ? 1 : 0);
  }
  /// Cancelled-timer tombstone ids still awaiting pop or compaction.
  std::size_t cancelled_in_heap() const noexcept { return dead_ids_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Event event;                ///< plain-event payload; unused for timers
    std::vector<TimerId> ids;   ///< timer batch (empty = plain event)
    std::size_t head = 0;       ///< first unconsumed index into `ids`
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// Pushes the staged timer batch (if any) into the heap; closes batching.
  void flush_staged();
  /// Skips tombstoned ids so the heap front starts with a live payload.
  void prune_front();
  /// Rebuilds the heap without tombstones once they dominate storage.
  void maybe_compact();

  std::vector<Entry> heap_;
  std::optional<Entry> staged_;  ///< open same-expiry timer batch
  /// Pending timer closures. Erased on cancel (frees captures immediately)
  /// and on fire. A heaped id absent here is a tombstone.
  std::unordered_map<TimerId, Event> timers_;
  std::size_t plain_count_ = 0;  ///< non-timer entries in heap_
  std::size_t dead_ids_ = 0;     ///< tombstone ids in heap_ + staged_
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_timer_ = 1;
};

}  // namespace hkws::sim
