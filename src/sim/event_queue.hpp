// Discrete-event scheduler: the heart of the network simulator. Events are
// closures ordered by (time, insertion sequence), so simulations are fully
// deterministic — ties break in schedule order, never by allocation address.
//
// Besides plain one-shot events the queue offers cancelable *timers*
// (set_timer / cancel_timer). Timers back every timeout in the query-serving
// engine: protocol retransmission, per-query deadlines, and arrival pacing.
// A cancelled timer stays in the heap until its time comes up and is then
// discarded without running and without advancing now().
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace hkws::sim {

/// Simulated time in abstract ticks (we treat one tick as ~1 ms when a unit
/// is needed, but nothing depends on the unit).
using Time = std::uint64_t;

/// An executable simulation event.
using Event = std::function<void()>;

/// Priority queue of timed events with deterministic FIFO tie-breaking.
class EventQueue {
 public:
  /// Handle of a cancelable timer. 0 is never a valid handle.
  using TimerId = std::uint64_t;

  /// Current simulated time (time of the last executed event).
  Time now() const noexcept { return now_; }

  /// Schedules `event` to run at now() + delay.
  void schedule_in(Time delay, Event event);

  /// Schedules `event` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, Event event);

  /// Schedules a cancelable timer to fire at now() + delay. Fires exactly
  /// once unless cancelled first.
  TimerId set_timer(Time delay, Event event);

  /// Cancels a pending timer. Returns true if the timer was still pending
  /// (it will now never fire); false if it already fired, was already
  /// cancelled, or never existed.
  bool cancel_timer(TimerId id);

  /// Runs events until the queue is empty. Returns #events executed
  /// (cancelled timers are discarded silently and not counted).
  std::size_t run();

  /// Runs events with time <= `deadline`. Returns #events executed.
  std::size_t run_until(Time deadline);

  /// Executes just the next live event, if any. Returns whether one ran.
  bool step();

  bool empty() const noexcept { return heap_.size() == cancelled_.size(); }
  std::size_t pending() const noexcept {
    return heap_.size() - cancelled_.size();
  }

  /// Timers that are still pending (set, not yet fired, not cancelled).
  /// A protocol that cancels every timer on terminal transitions leaves this
  /// at 0 once all its operations have completed — the torture harness's
  /// no-dangling-timer invariant.
  std::size_t live_timer_count() const noexcept { return live_timers_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Event event;
    TimerId timer;  ///< 0 for plain events
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// Discards cancelled timers sitting at the head of the heap.
  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<TimerId> live_timers_;  ///< pending, not cancelled
  std::unordered_set<TimerId> cancelled_;    ///< cancelled but still heaped
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_timer_ = 1;
};

}  // namespace hkws::sim
