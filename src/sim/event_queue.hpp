// Discrete-event scheduler: the heart of the network simulator. Events are
// closures ordered by (time, insertion sequence), so simulations are fully
// deterministic — ties break in schedule order, never by allocation address.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hkws::sim {

/// Simulated time in abstract ticks (we treat one tick as ~1 ms when a unit
/// is needed, but nothing depends on the unit).
using Time = std::uint64_t;

/// An executable simulation event.
using Event = std::function<void()>;

/// Priority queue of timed events with deterministic FIFO tie-breaking.
class EventQueue {
 public:
  /// Current simulated time (time of the last executed event).
  Time now() const noexcept { return now_; }

  /// Schedules `event` to run at now() + delay.
  void schedule_in(Time delay, Event event);

  /// Schedules `event` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, Event event);

  /// Runs events until the queue is empty. Returns #events executed.
  std::size_t run();

  /// Runs events with time <= `deadline`. Returns #events executed.
  std::size_t run_until(Time deadline);

  /// Executes just the next event, if any. Returns whether one ran.
  bool step();

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hkws::sim
