// Named counters and samples for experiment accounting: message counts per
// protocol type, bytes, hops, nodes contacted, etc. All experiment numbers
// the bench harnesses print flow through a Metrics instance.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hkws::sim {

/// Simple registry of named monotonic counters and value samples.
class Metrics {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void count(const std::string& name, std::uint64_t delta = 1);

  /// Current value of counter `name` (0 if never touched).
  std::uint64_t counter(const std::string& name) const;

  /// Records one observation of the sampled series `name`.
  void observe(const std::string& name, double value);

  /// All observations of series `name` (empty if none).
  const std::vector<double>& samples(const std::string& name) const;

  double sample_mean(const std::string& name) const;

  /// Resets every counter and sample series.
  void reset();

  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }

  /// Human-readable dump, one "name = value" per line, sorted by name.
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace hkws::sim
