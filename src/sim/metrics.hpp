// Named counters and samples for experiment accounting: message counts per
// protocol type, bytes, hops, nodes contacted, etc. All experiment numbers
// the bench harnesses print flow through a Metrics instance.
//
// Sample series are exact by default (every observation retained). Long
// open-loop serving runs observe millions of latencies, so a series can
// instead be put into *bounded-reservoir* mode: at most `cap` observations
// are kept, replaced by uniform reservoir sampling (Vitter's algorithm R),
// while the observation count and sum — and therefore sample_mean() — stay
// exact. Percentiles computed from a reservoir are approximations whose
// accuracy grows with the cap.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hkws::sim {

/// Simple registry of named monotonic counters and value samples.
class Metrics {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void count(const std::string& name, std::uint64_t delta = 1);

  /// Current value of counter `name` (0 if never touched).
  std::uint64_t counter(const std::string& name) const;

  /// Records one observation of the sampled series `name`.
  void observe(const std::string& name, double value);

  /// Stored observations of series `name` (empty if none). In reservoir
  /// mode this is a uniform subsample of everything observed; use
  /// sample_count() for the true observation count.
  const std::vector<double>& samples(const std::string& name) const;

  /// Total observations of series `name`, regardless of retention mode.
  std::uint64_t sample_count(const std::string& name) const;

  /// Exact mean of all observations (running sum, even in reservoir mode).
  double sample_mean(const std::string& name) const;

  /// Caps series `name` at `cap` retained observations (0 restores exact
  /// mode for future series growth; already-dropped values are gone). An
  /// existing oversized series is subsampled down to the cap.
  void set_reservoir(const std::string& name, std::size_t cap);

  /// Default cap applied to series created after this call (0 = exact).
  void set_default_reservoir(std::size_t cap) { default_cap_ = cap; }

  /// Resets every counter and sample series (per-series caps included; the
  /// default reservoir cap survives) and re-seeds the reservoir RNG, so a
  /// seeded run that resets between phases draws identical reservoir
  /// subsamples in every phase.
  void reset();

  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }

  /// Human-readable dump, one "name = value" per line, sorted by name.
  std::string to_string() const;

 private:
  struct Series {
    std::vector<double> values;  ///< all (exact) or a reservoir subset
    std::uint64_t n = 0;         ///< total observations
    double sum = 0.0;            ///< exact running sum
    std::size_t cap = 0;         ///< 0 = exact mode
  };

  static constexpr std::uint64_t kReservoirSeed = 0x9e3779b97f4a7c15ULL;

  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Series> series_;
  std::size_t default_cap_ = 0;
  Rng reservoir_rng_{kReservoirSeed};
};

}  // namespace hkws::sim
