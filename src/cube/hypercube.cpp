#include "cube/hypercube.hpp"

namespace hkws::cube {

Hypercube::Hypercube(int r) : r_(r) {
  if (r < 1 || r > 63)
    throw std::invalid_argument("Hypercube: dimension must be in [1,63]");
}

std::vector<int> Hypercube::one_positions(CubeId u) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(popcount64(u)));
  for_each_set_bit(u, [&](int i) { out.push_back(i); });
  return out;
}

std::vector<int> Hypercube::zero_positions(CubeId u) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(zero_count(u)));
  for (int i = 0; i < r_; ++i)
    if ((u & (1ULL << i)) == 0) out.push_back(i);
  return out;
}

CubeId Hypercube::neighbor(CubeId u, int dim) const {
  if (dim < 0 || dim >= r_)
    throw std::out_of_range("Hypercube::neighbor: bad dimension");
  return u ^ (1ULL << dim);
}

void Hypercube::for_each_in_subcube(
    CubeId u, const std::function<void(CubeId)>& fn) const {
  const std::uint64_t n = subcube_size(u);
  for (std::uint64_t packed = 0; packed < n; ++packed)
    fn(expand_into_subcube(u, packed));
}

std::vector<CubeId> Hypercube::subcube_members(CubeId u) const {
  std::vector<CubeId> out;
  out.reserve(subcube_size(u));
  for_each_in_subcube(u, [&](CubeId w) { out.push_back(w); });
  return out;
}

CubeId Hypercube::expand_into_subcube(CubeId u, std::uint64_t packed) const {
  // Deposit `packed` bit-by-bit onto the zero positions of u (PDEP, done
  // portably: the free positions are at most 63 and typically <= 16).
  CubeId result = u;
  std::uint64_t bit = 1;
  for (int i = 0; i < r_; ++i) {
    if ((u & (1ULL << i)) != 0) continue;  // occupied by One(u)
    if ((packed & bit) != 0) result |= (1ULL << i);
    bit <<= 1;
  }
  return result;
}

std::uint64_t Hypercube::compress_from_subcube(CubeId u, CubeId w) const {
  std::uint64_t packed = 0;
  std::uint64_t bit = 1;
  for (int i = 0; i < r_; ++i) {
    if ((u & (1ULL << i)) != 0) continue;
    if ((w & (1ULL << i)) != 0) packed |= bit;
    bit <<= 1;
  }
  return packed;
}

}  // namespace hkws::cube
