// Spanning binomial trees (paper Def. 3.2) on H_r and on induced
// subhypercubes H_r(u). The tree rooted at `root` with free-dimension mask
// `free_mask` (= Zero(root) restricted to the cube for the induced tree,
// or all r bits for the full cube) has:
//
//   * parent(v)  = v with its lowest root-differing bit cleared,
//   * children(v) = v with one free bit below its lowest root-differing bit
//                   flipped on (all free bits if v == root),
//   * depth(v)   = Hamming(v, root).
//
// The superset-search protocol (§3.3) explores exactly this tree breadth-
// first; Lemma 3.2 (depth d => >= d extra keywords) rests on the depth
// property, which the tests verify exhaustively.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cube/hypercube.hpp"

namespace hkws::cube {

/// A spanning binomial tree over the nodes {root | any subset of free_mask}.
class SpanningBinomialTree {
 public:
  /// Tree over the subhypercube induced by `root` inside `cube`
  /// (free dimensions = Zero(root)).
  SpanningBinomialTree(const Hypercube& cube, CubeId root);

  /// Tree with an explicit free-dimension mask (must not intersect root).
  SpanningBinomialTree(CubeId root, std::uint64_t free_mask);

  CubeId root() const noexcept { return root_; }
  std::uint64_t free_mask() const noexcept { return free_; }

  /// Number of nodes in the tree (= subhypercube size).
  std::uint64_t size() const noexcept {
    return 1ULL << popcount64(free_);
  }

  /// Tree depth of v (Hamming distance to the root). v must be a member.
  int depth(CubeId v) const noexcept { return popcount64(v ^ root_); }

  bool is_member(CubeId v) const noexcept {
    return (v & ~(root_ | free_)) == 0 && (v & root_) == root_;
  }

  /// Parent in the tree; nullopt for the root.
  std::optional<CubeId> parent(CubeId v) const;

  /// Children of v, in descending dimension order (the order the paper's
  /// queue discipline generates them is ascending; callers choose).
  std::vector<CubeId> children(CubeId v) const;

  /// The paper's child rule: dimensions eligible for children of v are the
  /// free dimensions strictly below v's lowest root-differing bit
  /// (all free dimensions when v == root).
  std::vector<int> child_dimensions(CubeId v) const;

  /// Full breadth-first order starting at the root (the top-down search
  /// order; level by level, ascending dimension inside a level's expansion).
  std::vector<CubeId> bfs_order() const;

  /// Nodes grouped by depth: levels()[d] = all nodes at depth d.
  std::vector<std::vector<CubeId>> levels() const;

  /// Bottom-up order: deepest level first (the specific-objects-first
  /// ranking variant of §3.3).
  std::vector<CubeId> bottom_up_order() const;

 private:
  CubeId root_;
  std::uint64_t free_;
};

}  // namespace hkws::cube
