#include "cube/sbt.hpp"

#include <deque>
#include <stdexcept>

namespace hkws::cube {

SpanningBinomialTree::SpanningBinomialTree(const Hypercube& cube, CubeId root)
    : root_(root), free_(cube.full_mask() & ~root) {
  if (!cube.valid(root))
    throw std::invalid_argument("SBT: root outside the cube");
}

SpanningBinomialTree::SpanningBinomialTree(CubeId root, std::uint64_t free_mask)
    : root_(root), free_(free_mask) {
  if ((root & free_mask) != 0)
    throw std::invalid_argument("SBT: free_mask intersects the root");
}

std::optional<CubeId> SpanningBinomialTree::parent(CubeId v) const {
  const std::uint64_t diff = v ^ root_;
  if (diff == 0) return std::nullopt;
  // Clear the lowest differing bit: one step toward the root.
  return v ^ (1ULL << lowest_set_bit(diff));
}

std::vector<int> SpanningBinomialTree::child_dimensions(CubeId v) const {
  // Free dimensions strictly below v's lowest root-differing bit; all free
  // dimensions for the root itself (p = -1 case of Def. 3.2).
  const std::uint64_t diff = v ^ root_;
  std::uint64_t eligible = free_;
  if (diff != 0) eligible &= low_mask(lowest_set_bit(diff));
  std::vector<int> dims;
  dims.reserve(static_cast<std::size_t>(popcount64(eligible)));
  for_each_set_bit(eligible, [&](int i) { dims.push_back(i); });
  return dims;
}

std::vector<CubeId> SpanningBinomialTree::children(CubeId v) const {
  std::vector<CubeId> out;
  for (int d : child_dimensions(v)) out.push_back(v | (1ULL << d));
  return out;
}

std::vector<CubeId> SpanningBinomialTree::bfs_order() const {
  // Exactly the paper's queue discipline: start with the root's neighbors
  // (ascending dimension), then each popped node appends its children.
  std::vector<CubeId> order;
  order.reserve(size());
  order.push_back(root_);
  std::deque<CubeId> queue;
  for (int d : child_dimensions(root_)) queue.push_back(root_ | (1ULL << d));
  while (!queue.empty()) {
    const CubeId v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (int d : child_dimensions(v)) queue.push_back(v | (1ULL << d));
  }
  return order;
}

std::vector<std::vector<CubeId>> SpanningBinomialTree::levels() const {
  std::vector<std::vector<CubeId>> by_depth(
      static_cast<std::size_t>(popcount64(free_)) + 1);
  for (CubeId v : bfs_order())
    by_depth[static_cast<std::size_t>(depth(v))].push_back(v);
  return by_depth;
}

std::vector<CubeId> SpanningBinomialTree::bottom_up_order() const {
  std::vector<CubeId> order;
  order.reserve(size());
  const auto by_depth = levels();
  for (auto it = by_depth.rbegin(); it != by_depth.rend(); ++it)
    for (CubeId v : *it) order.push_back(v);
  return order;
}

}  // namespace hkws::cube
