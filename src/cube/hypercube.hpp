// The r-dimensional hypercube vector space of paper §3.1. Logical node IDs
// are r-bit strings packed into a uint64_t (r <= 63 — the paper never needs
// more than 16). All operations are O(1) bit math or O(size) enumeration.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "common/bitops.hpp"

namespace hkws::cube {

/// A hypercube node: the low r bits encode the ID, bit i = u[i] of the
/// paper (counting from the right).
using CubeId = std::uint64_t;

/// Geometry and combinatorics of H_r plus its induced subhypercubes.
class Hypercube {
 public:
  /// @param r  dimension; 1 <= r <= 63
  explicit Hypercube(int r);

  int dimension() const noexcept { return r_; }

  /// 2^r.
  std::uint64_t node_count() const noexcept { return 1ULL << r_; }

  /// Mask with bits 0..r-1 set (all valid ID bits).
  CubeId full_mask() const noexcept { return low_mask(r_); }

  bool valid(CubeId u) const noexcept { return (u & ~full_mask()) == 0; }

  /// |One(u)| — number of set bits.
  static int one_count(CubeId u) noexcept { return popcount64(u); }

  /// |Zero(u)| within this cube's r dimensions.
  int zero_count(CubeId u) const noexcept { return r_ - popcount64(u); }

  /// Positions of '1' bits, ascending (the set One(u)).
  static std::vector<int> one_positions(CubeId u);

  /// Positions of '0' bits within dimension r, ascending (the set Zero(u)).
  std::vector<int> zero_positions(CubeId u) const;

  /// True iff `big` contains `small`: One(small) ⊆ One(big).
  static bool contains(CubeId big, CubeId small) noexcept {
    return (big & small) == small;
  }

  /// Hamming distance.
  static int hamming(CubeId u, CubeId v) noexcept { return popcount64(u ^ v); }

  /// Neighbor across dimension `dim` (flip bit `dim`).
  CubeId neighbor(CubeId u, int dim) const;

  /// Number of nodes of the subhypercube induced by u: 2^|Zero(u)|.
  std::uint64_t subcube_size(CubeId u) const noexcept {
    return 1ULL << zero_count(u);
  }

  /// Invokes fn(w) for every node w of the subhypercube induced by u
  /// (every w containing u), in increasing numeric order of the free bits.
  /// O(2^|Zero(u)|).
  void for_each_in_subcube(CubeId u, const std::function<void(CubeId)>& fn) const;

  /// All members of the subhypercube induced by u (ordered as above).
  std::vector<CubeId> subcube_members(CubeId u) const;

  /// Spreads the low |Zero(u)| bits of `packed` onto the free (zero)
  /// positions of u and ORs in u itself: the isomorphism from the
  /// |Zero(u)|-dimensional hypercube onto H_r(u) (paper Def. 3.1 remark).
  CubeId expand_into_subcube(CubeId u, std::uint64_t packed) const;

  /// Inverse of expand_into_subcube: extracts the free-position bits of a
  /// subcube member w back into a packed |Zero(u)|-bit string.
  std::uint64_t compress_from_subcube(CubeId u, CubeId w) const;

 private:
  int r_;
};

}  // namespace hkws::cube
