// Load-distribution metrics for the Fig. 6/7 experiments: ranked cumulative
// load curves per scheme, object-vs-node distributions by |One(u)|, and the
// reference lines (Perfect, DHT-r).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace hkws::analysis {

/// Converts integer per-node loads into the double vector the curve and
/// Gini helpers take.
std::vector<double> to_double_loads(const std::vector<std::size_t>& loads);

/// Fig. 6 reference line "DHT-r": `objects` hashed directly (uniformly at
/// random) onto 2^r nodes; returns the per-node loads.
std::vector<std::size_t> direct_hash_loads(std::size_t objects, int r,
                                           std::uint64_t seed);

/// Fig. 7 "object distribution": given per-cube-node loads, the fraction
/// of objects indexed at nodes with |One(u)| = x, for x in [0, r].
std::vector<double> load_fraction_by_one_bits(
    const std::vector<std::size_t>& loads, int r);

/// Fig. 7 "node distribution" measured (not analytic): the fraction of the
/// 2^r node IDs with |One(u)| = x. Matches node_one_bits_distribution.
std::vector<double> node_fraction_by_one_bits(int r);

}  // namespace hkws::analysis
