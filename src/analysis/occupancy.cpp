#include "analysis/occupancy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hkws::analysis {

namespace {
long double log_choose(int n, int k) {
  return std::lgamma(static_cast<long double>(n) + 1) -
         std::lgamma(static_cast<long double>(k) + 1) -
         std::lgamma(static_cast<long double>(n - k) + 1);
}
}  // namespace

double occupancy_pmf_eq1(int r, int m, int j) {
  if (r < 1) throw std::invalid_argument("occupancy_pmf_eq1: r must be >= 1");
  if (m < 0 || j < 0) return 0.0;
  if (m == 0) return j == 0 ? 1.0 : 0.0;
  if (j == 0 || j > r || j > m) return 0.0;
  // Eq. (1): C(r,j) * sum_i (-1)^i C(j,i) ((j-i)/r)^m, term-wise in log
  // space. The alternating sum cancels catastrophically for large r and m;
  // use occupancy_pmf for production values.
  const long double log_crj = log_choose(r, j);
  long double sum = 0.0L;
  for (int i = 0; i < j; ++i) {  // i == j term is (0/r)^m = 0
    const long double log_term =
        log_choose(j, i) +
        static_cast<long double>(m) *
            std::log(static_cast<long double>(j - i) /
                     static_cast<long double>(r));
    const long double term = std::exp(log_crj + log_term);
    sum += (i % 2 == 0) ? term : -term;
  }
  if (sum < 0) sum = 0;  // residual cancellation noise
  return static_cast<double>(sum);
}

std::vector<double> occupancy_distribution(int r, int m) {
  if (r < 1)
    throw std::invalid_argument("occupancy_distribution: r must be >= 1");
  if (m < 0) throw std::invalid_argument("occupancy_distribution: m < 0");
  // Drop the m keywords one at a time: a new keyword lands in an already
  // occupied dimension with probability j/r. Stable for any r, m.
  std::vector<double> dist(static_cast<std::size_t>(r) + 1, 0.0);
  dist[0] = 1.0;
  const double dr = static_cast<double>(r);
  for (int ball = 0; ball < m; ++ball) {
    for (int j = std::min(ball + 1, r); j >= 1; --j) {
      dist[static_cast<std::size_t>(j)] =
          dist[static_cast<std::size_t>(j)] * (static_cast<double>(j) / dr) +
          dist[static_cast<std::size_t>(j - 1)] *
              (dr - static_cast<double>(j - 1)) / dr;
    }
    dist[0] = 0.0;
  }
  return dist;
}

double occupancy_pmf(int r, int m, int j) {
  if (r < 1) throw std::invalid_argument("occupancy_pmf: r must be >= 1");
  if (m < 0 || j < 0 || j > r) return 0.0;
  return occupancy_distribution(r, m)[static_cast<std::size_t>(j)];
}

double occupancy_expected(int r, int m) {
  // E[|One|] has the closed form r (1 - (1 - 1/r)^m): linearity over the
  // per-dimension hit indicators. Cheaper and more stable than summing
  // Eq. (1); tests assert both agree.
  const double miss = std::pow(1.0 - 1.0 / static_cast<double>(r),
                               static_cast<double>(m));
  return static_cast<double>(r) * (1.0 - miss);
}

double expected_search_fraction(int r, int m) {
  const auto dist = occupancy_distribution(r, m);
  double fraction = 0;
  for (std::size_t j = 0; j < dist.size(); ++j)
    fraction += dist[j] * std::pow(2.0, -static_cast<double>(j));
  return fraction;
}

std::vector<double> node_one_bits_distribution(int r) {
  std::vector<double> dist(static_cast<std::size_t>(r) + 1, 0.0);
  for (int x = 0; x <= r; ++x)
    dist[static_cast<std::size_t>(x)] = static_cast<double>(
        std::exp(log_choose(r, x) -
                 static_cast<long double>(r) * std::log(2.0L)));
  return dist;
}

std::vector<double> object_one_bits_distribution(int r,
                                                 const Histogram& set_sizes) {
  std::vector<double> dist(static_cast<std::size_t>(r) + 1, 0.0);
  if (set_sizes.empty()) return dist;
  for (const auto& [m, count] : set_sizes.bins()) {
    const double weight = static_cast<double>(count) /
                          static_cast<double>(set_sizes.total());
    const auto occ = occupancy_distribution(r, static_cast<int>(m));
    for (std::size_t j = 0; j < dist.size(); ++j) dist[j] += weight * occ[j];
  }
  return dist;
}

double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  double tv = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double av = i < a.size() ? a[i] : 0.0;
    const double bv = i < b.size() ? b[i] : 0.0;
    tv += std::abs(av - bv);
  }
  return tv / 2.0;
}

int recommend_dimension(const Histogram& set_sizes, int r_min, int r_max) {
  if (r_min < 1 || r_max < r_min)
    throw std::invalid_argument("recommend_dimension: bad range");
  int best_r = r_min;
  double best_d = 2.0;
  for (int r = r_min; r <= r_max; ++r) {
    const double d = total_variation(object_one_bits_distribution(r, set_sizes),
                                     node_one_bits_distribution(r));
    if (d < best_d) {
      best_d = d;
      best_r = r;
    }
  }
  return best_r;
}

}  // namespace hkws::analysis
