#include "analysis/load_metrics.hpp"

#include <stdexcept>

#include "common/bitops.hpp"

namespace hkws::analysis {

std::vector<double> to_double_loads(const std::vector<std::size_t>& loads) {
  std::vector<double> out;
  out.reserve(loads.size());
  for (std::size_t v : loads) out.push_back(static_cast<double>(v));
  return out;
}

std::vector<std::size_t> direct_hash_loads(std::size_t objects, int r,
                                           std::uint64_t seed) {
  if (r < 1 || r > 30)
    throw std::invalid_argument("direct_hash_loads: r out of range");
  std::vector<std::size_t> loads(1ULL << r, 0);
  hkws::Rng rng(seed);
  for (std::size_t i = 0; i < objects; ++i)
    ++loads[static_cast<std::size_t>(rng.next_below(loads.size()))];
  return loads;
}

std::vector<double> load_fraction_by_one_bits(
    const std::vector<std::size_t>& loads, int r) {
  if (loads.size() != (1ULL << r))
    throw std::invalid_argument("load_fraction_by_one_bits: size != 2^r");
  std::vector<double> fractions(static_cast<std::size_t>(r) + 1, 0.0);
  std::size_t total = 0;
  for (std::size_t u = 0; u < loads.size(); ++u) {
    fractions[static_cast<std::size_t>(popcount64(u))] +=
        static_cast<double>(loads[u]);
    total += loads[u];
  }
  if (total != 0)
    for (auto& f : fractions) f /= static_cast<double>(total);
  return fractions;
}

std::vector<double> node_fraction_by_one_bits(int r) {
  std::vector<double> fractions(static_cast<std::size_t>(r) + 1, 0.0);
  const std::size_t n = 1ULL << r;
  for (std::size_t u = 0; u < n; ++u)
    fractions[static_cast<std::size_t>(popcount64(u))] += 1.0;
  for (auto& f : fractions) f /= static_cast<double>(n);
  return fractions;
}

}  // namespace hkws::analysis
