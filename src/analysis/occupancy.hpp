// The occupancy analysis of paper §3.5: when m keywords are hashed
// uniformly onto r dimensions, Eq. (1) gives the distribution of
// |One(F_h(K))| — "m distinct balls into r distinct buckets, exactly j
// buckets non-empty" — and from it the expected superset-search space
// 2^(r - |One|). Also the node-side distribution (binomial) used by
// Fig. 7 and the dimension-recommendation rule the paper sketches
// ("by using Equation (1), we can calculate an appropriate r").
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"

namespace hkws::analysis {

/// P(|One(F_h(K))| = j) for |K| = m keywords over r dimensions.
/// Returns 0 for j outside [1, min(r, m)] (or j==0 when m==0).
/// Computed by the numerically stable one-ball-at-a-time recurrence
/// P_m(j) = P_{m-1}(j) * j/r + P_{m-1}(j-1) * (r-j+1)/r, which equals the
/// paper's Eq. (1) exactly (tests cross-check against occupancy_pmf_eq1).
double occupancy_pmf(int r, int m, int j);

/// The paper's Eq. (1) evaluated literally (inclusion-exclusion form).
/// Subject to catastrophic cancellation for large r and m (~> 40); kept as
/// the reference form for validation.
double occupancy_pmf_eq1(int r, int m, int j);

/// The full distribution, indexed by j in [0, r].
std::vector<double> occupancy_distribution(int r, int m);

/// E[|One(F_h(K))|].
double occupancy_expected(int r, int m);

/// Expected fraction of hypercube nodes a 100%-recall superset search for
/// an m-keyword query must visit: E[2^(r-|One|)] / 2^r = E[2^-|One|],
/// taken over Eq. (1). For m << r this approaches 2^-m — the paper's
/// Fig. 8 rule of thumb; for small r the collapse of |One| raises it.
double expected_search_fraction(int r, int m);

/// P(|One(u)| = x) for u uniform over the 2^r hypercube nodes:
/// binomial(r, 1/2) — the "node distribution" curve of Fig. 7.
std::vector<double> node_one_bits_distribution(int r);

/// The "object distribution" Fig. 7 predicts analytically: the occupancy
/// mixture over a keyword-set-size histogram.
std::vector<double> object_one_bits_distribution(int r,
                                                 const Histogram& set_sizes);

/// Total-variation distance between two distributions over the same support
/// (shorter one padded with zeros).
double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b);

/// The paper's r-selection rule: pick r in [r_min, r_max] minimizing the
/// distance between the predicted object distribution and the node
/// distribution (the two curves of Fig. 7 "most close to each other").
int recommend_dimension(const Histogram& set_sizes, int r_min, int r_max);

}  // namespace hkws::analysis
