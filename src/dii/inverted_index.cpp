#include "dii/inverted_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace hkws::dii {

InvertedIndex::InvertedIndex(Config cfg) : cfg_(cfg) {
  if (cfg.r < 1 || cfg.r > 24)
    throw std::invalid_argument("InvertedIndex: r must be in [1,24]");
  postings_.resize(1ULL << cfg.r);
  posting_counts_.resize(1ULL << cfg.r, 0);
}

std::uint64_t InvertedIndex::node_of(const Keyword& w) const {
  return hash_bytes(w, cfg_.hash_seed) & ((1ULL << cfg_.r) - 1);
}

void InvertedIndex::insert(ObjectId object, const KeywordSet& keywords) {
  if (keywords.empty())
    throw std::invalid_argument("InvertedIndex::insert: empty keyword set");
  for (const auto& w : keywords) {
    const auto node = static_cast<std::size_t>(node_of(w));
    if (postings_[node][w].insert(object).second) ++posting_counts_[node];
  }
  metadata_[object] = keywords;
}

bool InvertedIndex::remove(ObjectId object, const KeywordSet& keywords) {
  bool removed = false;
  for (const auto& w : keywords) {
    const auto node = static_cast<std::size_t>(node_of(w));
    const auto it = postings_[node].find(w);
    if (it == postings_[node].end()) continue;
    if (it->second.erase(object) != 0) {
      --posting_counts_[node];
      removed = true;
    }
    if (it->second.empty()) postings_[node].erase(it);
  }
  if (removed) metadata_.erase(object);
  return removed;
}

index::SearchResult InvertedIndex::search(const KeywordSet& query,
                                          std::size_t threshold) const {
  if (query.empty())
    throw std::invalid_argument("InvertedIndex::search: empty query");
  index::SearchResult result;
  index::SearchStats& st = result.stats;

  // One node per distinct query keyword; the same node may own several
  // keywords, but each keyword still costs a separate lookup + transfer.
  std::vector<const std::set<ObjectId>*> lists;
  std::size_t shipped = 0;
  std::set<std::uint64_t> distinct_nodes;
  for (const auto& w : query) {
    const auto node = node_of(w);
    distinct_nodes.insert(node);
    st.messages += 2;  // lookup + posting-list reply
    const auto& table = postings_[static_cast<std::size_t>(node)];
    const auto it = table.find(w);
    static const std::set<ObjectId> kEmpty;
    const auto* list = it == table.end() ? &kEmpty : &it->second;
    shipped += list->size();
    lists.push_back(list);
  }
  st.nodes_contacted = distinct_nodes.size();
  st.rounds = shipped;  // transfer volume proxy (posting entries shipped)

  // Intersect, smallest list first.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  for (ObjectId o : *lists.front()) {
    bool everywhere = true;
    for (std::size_t i = 1; i < lists.size() && everywhere; ++i)
      everywhere = lists[i]->contains(o);
    if (!everywhere) continue;
    const auto mit = metadata_.find(o);
    result.hits.push_back(
        index::Hit{o, mit == metadata_.end() ? query : mit->second});
    if (threshold != 0 && result.hits.size() >= threshold) break;
  }
  st.complete = threshold == 0 || result.hits.size() < threshold;
  return result;
}

std::vector<std::size_t> InvertedIndex::loads() const { return posting_counts_; }

}  // namespace hkws::dii
