// Baseline: the distributed inverted index ("DII" in paper Fig. 6), the
// standard keyword-search design the paper argues against (§1). Each
// keyword is hashed to a single node, which stores one posting (object
// reference) for every object containing that keyword. We host it on the
// same 2^r logical node space as the hypercube index so the two schemes'
// load distributions are directly comparable.
//
// Known properties the experiments exhibit:
//  * storage per node is wildly skewed under Zipf keyword popularity,
//  * an object with k keywords costs k index nodes (k lookups to
//    insert/delete),
//  * every query on a keyword hits the single node owning it (hot spots),
//  * multi-keyword queries ship posting lists and intersect them.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/keyword.hpp"
#include "index/search_types.hpp"

namespace hkws::dii {

class InvertedIndex {
 public:
  struct Config {
    int r = 10;  ///< the node space is 2^r, matching the hypercube setup
    std::uint64_t hash_seed = seeds::kKeywordHash;
  };

  explicit InvertedIndex(Config cfg);

  /// The node responsible for a keyword.
  std::uint64_t node_of(const Keyword& w) const;

  /// Indexes `object` under every keyword it has (k postings, k nodes).
  void insert(ObjectId object, const KeywordSet& keywords);

  /// Removes all of the object's postings. Returns whether any existed.
  bool remove(ObjectId object, const KeywordSet& keywords);

  /// Conjunctive query: objects containing every keyword of `query`.
  /// Contacts one node per query keyword, ships each posting list to the
  /// searcher, intersects there (the classic DII query plan). Stats count
  /// nodes contacted, messages (query + reply per keyword), and posting
  /// entries shipped (in `rounds`, reused as the transfer-volume proxy).
  index::SearchResult search(const KeywordSet& query,
                             std::size_t threshold = 0) const;

  /// Postings held per node (the Fig. 6 "DII-r" load metric).
  std::vector<std::size_t> loads() const;

  std::size_t object_count() const noexcept { return metadata_.size(); }
  std::uint64_t node_count() const noexcept { return 1ULL << cfg_.r; }

 private:
  Config cfg_;
  /// postings_[node][keyword] = objects containing the keyword.
  std::vector<std::map<Keyword, std::set<ObjectId>>> postings_;
  std::vector<std::size_t> posting_counts_;
  /// Full keyword sets, used to materialize hits (object metadata).
  std::unordered_map<ObjectId, KeywordSet> metadata_;
};

}  // namespace hkws::dii
