// Physical hypercube overlay (paper §3.2: "the hypercube can be constructed
// directly from a physical hypercube (e.g. HyperCuP)"). Here the logical
// index structure *is* the network: 2^r peers, peer u linked to its r
// bit-flip neighbors, messages routed along cube edges with e-cube
// (lowest-differing-bit-first) dimension ordering. A hop costs exactly one
// message, so reaching node w from node v costs Hamming(v, w) messages —
// and spanning-binomial-tree edges are single physical links, which is what
// makes tree-forwarding search natural on this substrate.
//
// The network is fully populated (every cube id is a live peer); partial
// population belongs to the DHT-mapped deployment (OverlayIndex), which
// handles it with surrogate routing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cube/hypercube.hpp"
#include "sim/network.hpp"

namespace hkws::cubenet {

class HyperCupNetwork {
 public:
  struct Config {
    int r = 6;  ///< dimension; the network has 2^r peers
  };

  HyperCupNetwork(sim::Network& net, Config cfg);

  const cube::Hypercube& cube() const noexcept { return cube_; }
  std::uint64_t size() const noexcept { return cube_.node_count(); }

  /// Peers are endpoints 1..2^r; cube node u lives at endpoint u + 1.
  sim::EndpointId endpoint_of(cube::CubeId u) const {
    return static_cast<sim::EndpointId>(u) + 1;
  }
  cube::CubeId node_of(sim::EndpointId ep) const {
    return static_cast<cube::CubeId>(ep - 1);
  }

  /// Messages needed from `from` to `to` (the e-cube path length).
  int path_length(cube::CubeId from, cube::CubeId to) const {
    return cube::Hypercube::hamming(from, to);
  }

  /// Routes a `kind` message along cube edges, fixing differing dimensions
  /// lowest-first (e-cube routing: deterministic, deadlock-free). Each edge
  /// is one simulated message; `at_target(hops)` runs at the destination.
  void route(cube::CubeId from, cube::CubeId to, std::string kind,
             std::size_t payload_bytes,
             std::function<void(int hops)> at_target);

  /// Sends across a single cube edge (from and to must be neighbors).
  void send_edge(cube::CubeId from, cube::CubeId to, std::string kind,
                 std::size_t payload_bytes, std::function<void()> deliver);

  sim::Network& net() noexcept { return net_; }

 private:
  struct HopState;
  void route_step(std::shared_ptr<HopState> state, cube::CubeId at);

  sim::Network& net_;
  cube::Hypercube cube_;
};

}  // namespace hkws::cubenet
