#include "cubenet/hypercup_index.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hkws::cubenet {

namespace {
constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();
constexpr std::size_t kHitBytes = 48;
constexpr std::size_t kCtrlBytes = 64;
}  // namespace

HyperCupIndex::HyperCupIndex(HyperCupNetwork& net, Config cfg)
    : net_(net), cfg_(cfg), hasher_(net.cube().dimension(), cfg.hash_seed) {
  tables_.resize(net.cube().node_count());
}

HyperCupIndex::Request* HyperCupIndex::find(std::uint64_t id) {
  const auto it = requests_.find(id);
  return it == requests_.end() ? nullptr : it->second.get();
}

void HyperCupIndex::insert(cube::CubeId publisher, ObjectId object,
                           const KeywordSet& keywords, OpCallback done) {
  if (keywords.empty())
    throw std::invalid_argument("HyperCupIndex::insert: empty keyword set");
  const cube::CubeId u = hasher_.responsible_node(keywords);
  net_.route(publisher, u, "hc.insert", kCtrlBytes + keywords.size() * 12,
             [this, u, object, keywords, done](int hops) {
               tables_[static_cast<std::size_t>(u)].add(keywords, object);
               if (done) done(hops);
             });
}

void HyperCupIndex::remove(cube::CubeId publisher, ObjectId object,
                           const KeywordSet& keywords, OpCallback done) {
  const cube::CubeId u = hasher_.responsible_node(keywords);
  net_.route(publisher, u, "hc.delete", kCtrlBytes,
             [this, u, object, keywords, done](int hops) {
               tables_[static_cast<std::size_t>(u)].remove(keywords, object);
               if (done) done(hops);
             });
}

void HyperCupIndex::pin_search(cube::CubeId searcher,
                               const KeywordSet& keywords,
                               SearchCallback done) {
  const cube::CubeId u = hasher_.responsible_node(keywords);
  net_.route(
      searcher, u, "hc.pin", kCtrlBytes + keywords.size() * 12,
      [this, u, keywords, searcher, done = std::move(done)](int hops) {
        index::SearchResult result;
        for (ObjectId o : tables_[static_cast<std::size_t>(u)].exact(keywords))
          result.hits.push_back(index::Hit{o, keywords});
        result.stats.nodes_contacted = 1;
        result.stats.messages = static_cast<std::size_t>(hops);
        result.stats.complete = true;
        net_.route(u, searcher, "hc.pin_reply",
                   result.hits.size() * kHitBytes,
                   [done, result](int reply_hops) mutable {
                     result.stats.messages +=
                         static_cast<std::size_t>(reply_hops);
                     done(result);
                   });
      });
}

void HyperCupIndex::superset_search(cube::CubeId searcher,
                                    const KeywordSet& query,
                                    std::size_t threshold,
                                    SearchCallback done) {
  if (query.empty())
    throw std::invalid_argument("HyperCupIndex: empty query");
  const std::uint64_t id = next_request_++;
  auto req = std::make_unique<Request>();
  req->id = id;
  req->query = query;
  req->threshold = threshold;
  req->searcher = searcher;
  req->root = hasher_.responsible_node(query);
  req->done = std::move(done);
  requests_[id] = std::move(req);

  net_.route(searcher, requests_[id]->root, "hc.s_query",
             kCtrlBytes + query.size() * 12, [this, id](int hops) {
               Request* r = find(id);
               if (!r) return;
               r->stats.messages += static_cast<std::size_t>(hops);
               at_node(id, r->root,
                       r->threshold == 0 ? kUnlimited : r->threshold);
             });
}

void HyperCupIndex::at_node(std::uint64_t req_id, cube::CubeId w,
                            std::size_t credit) {
  Request* req = find(req_id);
  if (!req) return;
  ++req->stats.nodes_contacted;
  const int depth = cube::Hypercube::hamming(w, req->root);
  req->stats.levels =
      std::max(req->stats.levels, static_cast<std::size_t>(depth) + 1);

  // Scan the local table, up to the branch credit.
  auto batch = tables_[static_cast<std::size_t>(w)].supersets(
      req->query, credit == kUnlimited ? 0 : credit);
  if (!batch.empty()) {
    // Results travel straight to the searcher along an e-cube path.
    ++req->results_expected;
    req->stats.messages +=
        static_cast<std::size_t>(net_.path_length(w, req->searcher));
    net_.route(w, req->searcher, "hc.results", batch.size() * kHitBytes,
               [this, req_id, batch](int) {
                 Request* r = find(req_id);
                 if (!r) return;
                 r->hits.insert(r->hits.end(), batch.begin(), batch.end());
                 ++r->results_received;
                 maybe_complete(req_id);
               });
  }
  std::size_t remaining = credit;
  if (credit != kUnlimited)
    remaining = credit > batch.size() ? credit - batch.size() : 0;

  // Forward down the spanning binomial tree; every child is a neighbor.
  const cube::SpanningBinomialTree sbt(net_.cube(), req->root);
  const auto children = sbt.children(w);
  if (children.empty() || remaining == 0) {
    node_finished(req_id, w);
    return;
  }
  req->outstanding[w] = children.size();
  for (cube::CubeId child : children) {
    ++req->stats.messages;
    net_.send_edge(w, child, "hc.s_query", kCtrlBytes,
                   [this, req_id, child, remaining] {
                     at_node(req_id, child, remaining);
                   });
  }
}

void HyperCupIndex::node_finished(std::uint64_t req_id, cube::CubeId w) {
  Request* req = find(req_id);
  if (!req) return;
  if (w == req->root) {
    // Convergecast reached the root: tell the searcher how it went.
    req->stats.complete = req->threshold == 0;
    req->stats.messages +=
        static_cast<std::size_t>(net_.path_length(req->root, req->searcher));
    net_.route(req->root, req->searcher, "hc.done", kCtrlBytes,
               [this, req_id](int) {
                 Request* r = find(req_id);
                 if (!r) return;
                 r->done_received = true;
                 maybe_complete(req_id);
               });
    return;
  }
  // One DONE message up the tree edge to the parent.
  const cube::SpanningBinomialTree sbt(net_.cube(), req->root);
  const cube::CubeId parent = *sbt.parent(w);
  ++req->stats.messages;
  net_.send_edge(w, parent, "hc.s_done", kCtrlBytes,
                 [this, req_id, parent] {
                   Request* r = find(req_id);
                   if (!r) return;
                   auto it = r->outstanding.find(parent);
                   if (it == r->outstanding.end()) return;
                   if (--it->second == 0) {
                     r->outstanding.erase(it);
                     node_finished(req_id, parent);
                   }
                 });
}

void HyperCupIndex::maybe_complete(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req) return;
  if (!req->done_received || req->results_received != req->results_expected)
    return;
  index::SearchResult result;
  result.hits = std::move(req->hits);
  // Credits may overshoot the threshold across branches; truncate.
  if (req->threshold != 0 && result.hits.size() > req->threshold)
    result.hits.resize(req->threshold);
  result.stats = req->stats;
  SearchCallback cb = std::move(req->done);
  requests_.erase(req_id);
  if (cb) cb(result);
}

std::vector<std::size_t> HyperCupIndex::loads() const {
  std::vector<std::size_t> out(tables_.size());
  for (std::size_t i = 0; i < tables_.size(); ++i)
    out[i] = tables_[i].object_count();
  return out;
}

}  // namespace hkws::cubenet
