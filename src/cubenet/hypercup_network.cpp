#include "cubenet/hypercup_network.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "common/bitops.hpp"

namespace hkws::cubenet {

struct HyperCupNetwork::HopState {
  cube::CubeId target = 0;
  std::string kind;
  std::size_t bytes = 0;
  std::function<void(int)> at_target;
  int hops = 0;
};

HyperCupNetwork::HyperCupNetwork(sim::Network& net, Config cfg)
    : net_(net), cube_(cfg.r) {
  if (cfg.r > 20)
    throw std::invalid_argument(
        "HyperCupNetwork: a fully-populated cube beyond 2^20 peers is not a "
        "sensible simulation");
  for (cube::CubeId u = 0; u < cube_.node_count(); ++u)
    net_.register_endpoint(endpoint_of(u));
}

void HyperCupNetwork::send_edge(cube::CubeId from, cube::CubeId to,
                                std::string kind, std::size_t payload_bytes,
                                std::function<void()> deliver) {
  if (cube::Hypercube::hamming(from, to) != 1)
    throw std::invalid_argument("send_edge: nodes are not cube neighbors");
  net_.send(endpoint_of(from), endpoint_of(to), std::move(kind),
            payload_bytes, std::move(deliver));
}

void HyperCupNetwork::route_step(std::shared_ptr<HopState> state,
                                 cube::CubeId at) {
  const std::uint64_t diff = at ^ state->target;
  if (diff == 0) {
    state->at_target(state->hops);
    return;
  }
  // e-cube: correct the lowest differing dimension next.
  const cube::CubeId next = at ^ (1ULL << lowest_set_bit(diff));
  ++state->hops;
  net_.send(endpoint_of(at), endpoint_of(next), state->kind, state->bytes,
            [this, state, next] { route_step(std::move(state), next); });
}

void HyperCupNetwork::route(cube::CubeId from, cube::CubeId to,
                            std::string kind, std::size_t payload_bytes,
                            std::function<void(int hops)> at_target) {
  if (!cube_.valid(from) || !cube_.valid(to))
    throw std::invalid_argument("route: node outside the cube");
  auto state = std::make_shared<HopState>();
  state->target = to;
  state->kind = std::move(kind);
  state->bytes = payload_bytes;
  state->at_target = std::move(at_target);
  net_.clock().schedule_in(0, [this, state, from]() mutable {
    route_step(std::move(state), from);
  });
}

}  // namespace hkws::cubenet
