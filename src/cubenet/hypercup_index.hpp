// The keyword index on a physical hypercube (paper §3.2 construction):
// g is the identity — logical node u's index table lives at peer u — and
// superset search runs as *tree forwarding*: the T_QUERY propagates down
// the spanning binomial tree, where every tree edge is a single physical
// link; termination is detected by a convergecast of DONE messages back up
// the tree. Matching IDs travel directly (e-cube paths) to the searcher.
//
// Compared with the root-coordinated protocol of the DHT deployment
// (OverlayIndex), tree forwarding trades exact threshold bookkeeping for
// parallelism: a credit rides down each branch, so slightly more than
// `threshold` results may be produced; the searcher truncates. The
// ablation bench quantifies the message/latency trade.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/keyword.hpp"
#include "cube/sbt.hpp"
#include "cubenet/hypercup_network.hpp"
#include "index/index_table.hpp"
#include "index/keyword_hash.hpp"
#include "index/search_types.hpp"

namespace hkws::cubenet {

class HyperCupIndex {
 public:
  struct Config {
    std::uint64_t hash_seed = seeds::kKeywordHash;
  };

  HyperCupIndex(HyperCupNetwork& net, Config cfg);

  using SearchCallback = std::function<void(const index::SearchResult&)>;
  using OpCallback = std::function<void(int hops)>;

  /// F_h(K).
  cube::CubeId responsible_node(const KeywordSet& keywords) const {
    return hasher_.responsible_node(keywords);
  }

  /// Index the object at F_h(keywords); costs Hamming(publisher, F_h(K))
  /// messages.
  void insert(cube::CubeId publisher, ObjectId object,
              const KeywordSet& keywords, OpCallback done = nullptr);

  /// Remove the index entry; same cost as insert.
  void remove(cube::CubeId publisher, ObjectId object,
              const KeywordSet& keywords, OpCallback done = nullptr);

  /// Exact-set search: one query path + one reply path.
  void pin_search(cube::CubeId searcher, const KeywordSet& keywords,
                  SearchCallback done);

  /// Tree-forwarding superset search (threshold 0 = everything).
  void superset_search(cube::CubeId searcher, const KeywordSet& query,
                       std::size_t threshold, SearchCallback done);

  const index::IndexTable& table_at(cube::CubeId u) const {
    return tables_[static_cast<std::size_t>(u)];
  }
  std::vector<std::size_t> loads() const;
  const cube::Hypercube& cube() const noexcept { return net_.cube(); }
  const index::KeywordHasher& hasher() const noexcept { return hasher_; }

 private:
  struct Request {
    std::uint64_t id = 0;
    KeywordSet query;
    std::size_t threshold = 0;
    cube::CubeId searcher = 0;
    cube::CubeId root = 0;
    std::vector<index::Hit> hits;
    index::SearchStats stats;
    std::size_t results_expected = 0;
    std::size_t results_received = 0;
    bool done_received = false;
    /// Convergecast: children still owed a DONE, per tree node.
    std::unordered_map<cube::CubeId, std::size_t> outstanding;
    SearchCallback done;
  };

  Request* find(std::uint64_t id);
  /// Handles S_QUERY arrival at tree node `w` with `credit` results wanted.
  void at_node(std::uint64_t req_id, cube::CubeId w, std::size_t credit);
  /// Handles a DONE from a child of `w` (or w's own completion).
  void node_finished(std::uint64_t req_id, cube::CubeId w);
  void maybe_complete(std::uint64_t req_id);

  HyperCupNetwork& net_;
  Config cfg_;
  index::KeywordHasher hasher_;
  std::vector<index::IndexTable> tables_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Request>> requests_;
  std::uint64_t next_request_ = 1;
};

}  // namespace hkws::cubenet
