// Deterministic random number generation for simulations and workload
// synthesis. Xoshiro256** seeded via SplitMix64, plus the uniform-variate
// helpers the generators need. Header-only; trivially copyable so simulation
// components can fork independent streams.
#pragma once

#include <cstdint>
#include <limits>

#include "common/hash.hpp"

namespace hkws {

/// Xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
class Rng {
 public:
  /// Seeds the four state words from `seed` via SplitMix64 (never all-zero).
  explicit Rng(std::uint64_t seed = 0) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Bernoulli trial with success probability `p`.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Forks an independent stream (derived deterministically from this one).
  Rng fork() noexcept { return Rng(mix64(next_u64())); }

  // UniformRandomBitGenerator interface, for std::shuffle etc.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next_u64(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace hkws
