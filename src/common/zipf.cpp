#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hkws {

ZipfDistribution::ZipfDistribution(std::size_t n, double s, double q)
    : s_(s), q_(q) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  if (s < 0) throw std::invalid_argument("ZipfDistribution: s must be >= 0");
  if (q < 0) throw std::invalid_argument("ZipfDistribution: q must be >= 0");
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1) + q, -s);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail unreachable
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

double fit_zipf_exponent(const std::vector<std::uint64_t>& counts_by_rank) {
  // Least-squares slope of log(count) on log(rank+1); Zipf exponent = -slope.
  //
  // Zero-count ranks are skipped, not interpolated: log(0) is undefined and
  // a rank that was never observed carries no evidence about the exponent.
  // On a sparse tail (gappy histogram) this keeps the fit anchored to the
  // observed ranks' true positions — the rank index k is NOT compacted over
  // the gaps — at the cost of weighting the fit toward the head, so the
  // estimate is biased low on heavily truncated samples. Callers needing an
  // unbiased tail fit should aggregate ranks into log-spaced bins first.
  // Fewer than two nonzero ranks cannot determine a slope; returns 0.0.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t k = 0; k < counts_by_rank.size(); ++k) {
    if (counts_by_rank[k] == 0) continue;
    const double x = std::log(static_cast<double>(k + 1));
    const double y = std::log(static_cast<double>(counts_by_rank[k]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0) return 0.0;
  return -(dn * sxy - sx * sy) / denom;
}

}  // namespace hkws
