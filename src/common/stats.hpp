// Descriptive statistics used by the experiment harnesses: moments,
// percentiles, Gini coefficient (load-imbalance summary), ranked cumulative
// load curves (paper Fig. 6), and a simple integer histogram (Figs. 5, 7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace hkws {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);   ///< population variance
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::vector<double> xs, double p);

/// Linear-interpolated percentiles for several p values at once (each in
/// [0, 100]), sorting the input a single time instead of once per call.
/// Returns one value per entry of `ps`, in the same order.
std::vector<double> percentiles(std::vector<double> xs,
                                const std::vector<double>& ps);

/// Gini coefficient of non-negative values: 0 = perfectly even,
/// -> 1 = maximally concentrated. Used to summarize index-load skew.
double gini(std::vector<double> xs);

/// A point on a ranked cumulative load curve: after the heaviest
/// `node_fraction` of nodes, `load_fraction` of total load is covered.
struct LoadCurvePoint {
  double node_fraction;
  double load_fraction;
};

/// Ranked cumulative load curve (paper Fig. 6): nodes sorted heavy-to-light,
/// cumulative share of load vs share of nodes. Includes the origin (0,0) and
/// endpoint (1,1); `loads` may contain zeros. Emits at most `max_points + 2`
/// points, uniformly spaced in node rank (full resolution if max_points==0).
std::vector<LoadCurvePoint> ranked_load_curve(std::vector<double> loads,
                                              std::size_t max_points = 0);

/// Integer-keyed histogram with counting, normalization and moments.
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t count = 1);

  std::uint64_t count(std::int64_t value) const;
  std::uint64_t total() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  /// Fraction of mass at `value` (0 if the histogram is empty).
  double fraction(std::int64_t value) const;

  double hist_mean() const;
  std::int64_t min_value() const;  ///< throws std::logic_error if empty()
  std::int64_t max_value() const;  ///< throws std::logic_error if empty()

  const std::map<std::int64_t, std::uint64_t>& bins() const noexcept {
    return bins_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace hkws
