// Thin wrappers over <bit> plus set-bit iteration used throughout the
// hypercube layer, where node IDs are r-bit masks in a uint64_t.
#pragma once

#include <bit>
#include <cstdint>

namespace hkws {

/// Number of set bits.
inline int popcount64(std::uint64_t x) noexcept { return std::popcount(x); }

/// Index of the lowest set bit. Precondition: x != 0.
inline int lowest_set_bit(std::uint64_t x) noexcept {
  return std::countr_zero(x);
}

/// Index of the highest set bit. Precondition: x != 0.
inline int highest_set_bit(std::uint64_t x) noexcept {
  return 63 - std::countl_zero(x);
}

/// Mask with the low `n` bits set (n in [0, 64]).
inline std::uint64_t low_mask(int n) noexcept {
  return n >= 64 ? ~0ULL : (1ULL << n) - 1;
}

/// Invokes `fn(i)` for each set-bit index i of `x`, lowest first.
template <typename Fn>
void for_each_set_bit(std::uint64_t x, Fn&& fn) {
  while (x != 0) {
    const int i = std::countr_zero(x);
    fn(i);
    x &= x - 1;  // clear lowest set bit
  }
}

}  // namespace hkws
