// Keywords, keyword sets, and object identities — the vocabulary shared by
// every layer (paper §2.2). A KeywordSet is canonical (sorted, unique) so
// that equality, hashing, and subset tests are well defined and cheap.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"

namespace hkws {

/// A keyword (attribute token). Plain UTF-8 text; the scheme never
/// interprets keyword contents, only hashes them.
using Keyword = std::string;

/// An object identifier, unique across the network (paper §2.1).
using ObjectId = std::uint64_t;

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObject = ~0ULL;

/// An immutable-by-convention canonical set of keywords: sorted, no
/// duplicates. This is `K_sigma` for objects and `K` for queries.
class KeywordSet {
 public:
  KeywordSet() = default;

  /// Canonicalizes: sorts and removes duplicates.
  explicit KeywordSet(std::vector<Keyword> keywords);
  KeywordSet(std::initializer_list<std::string_view> keywords);

  /// True if every keyword of this set is in `other` (this ⊆ other).
  bool subset_of(const KeywordSet& other) const noexcept;

  /// True if this set contains every keyword of `other` (this ⊇ other).
  bool superset_of(const KeywordSet& other) const noexcept {
    return other.subset_of(*this);
  }

  bool contains(std::string_view keyword) const noexcept;

  /// Set union (canonical).
  KeywordSet union_with(const KeywordSet& other) const;

  /// Keywords in this set but not in `other` (the "extra" keywords that
  /// drive the paper's ranking-by-specificity).
  KeywordSet difference(const KeywordSet& other) const;

  std::size_t size() const noexcept { return words_.size(); }
  bool empty() const noexcept { return words_.empty(); }
  const std::vector<Keyword>& words() const noexcept { return words_; }
  auto begin() const noexcept { return words_.begin(); }
  auto end() const noexcept { return words_.end(); }

  bool operator==(const KeywordSet&) const = default;
  auto operator<=>(const KeywordSet&) const = default;

  /// Order-independent 64-bit hash (seeded); used as a map key and as the
  /// query identity in caches.
  std::uint64_t hash(std::uint64_t seed = 0) const noexcept;

  /// 64-bit Bloom-style signature: the OR of one bit per keyword, where the
  /// bit index is a seeded hash of the word. Monotone under set inclusion —
  /// A ⊆ B implies signature(A) bits ⊆ signature(B) bits — so
  /// `(sig_query & ~sig_entry) != 0` disproves containment with a single
  /// AND; collisions only ever cost a redundant exact subset check.
  std::uint64_t signature() const noexcept;

  /// Signature bit of a single keyword (the one-word case of signature()).
  static std::uint64_t signature_bit(std::string_view keyword) noexcept;

  /// "a,b,c" rendering for logs and examples.
  std::string to_string() const;

 private:
  std::vector<Keyword> words_;
};

/// Hasher so KeywordSet can key unordered containers.
struct KeywordSetHash {
  std::size_t operator()(const KeywordSet& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};

}  // namespace hkws
