// Zipf (power-law) sampling. Keyword popularity in real corpora follows
// Zipf's law (paper §1), and PCHome query popularity is heavily skewed
// (paper §4, footnote 1: top-10 queries > 60% of daily volume), so both the
// corpus and the query-log generators are built on this sampler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hkws {

/// Samples ranks 1..n with P(rank = k) proportional to 1 / (k + q)^s —
/// the Zipf-Mandelbrot law. q = 0 is classic Zipf; q > 0 flattens the head
/// while keeping the tail slope, which is how real curated vocabularies
/// behave (no single keyword covers half the corpus, but the top hundred
/// are all hot).
///
/// Uses an explicit inverse-CDF table (O(n) memory, O(log n) per sample),
/// which is exact and fast for the vocabulary sizes we use (<= a few
/// million). The distribution object is immutable after construction and
/// safe to share across threads; sampling takes the caller's Rng.
class ZipfDistribution {
 public:
  /// @param n  number of ranks (must be >= 1)
  /// @param s  skew exponent (s = 0 is uniform; s ~ 1 is classic Zipf)
  /// @param q  Mandelbrot shift (>= 0; 0 = classic Zipf)
  ZipfDistribution(std::size_t n, double s, double q = 0.0);

  /// Draws a rank in [0, n): rank 0 is the most popular item.
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k (0-based).
  double pmf(std::size_t k) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double skew() const noexcept { return s_; }
  double shift() const noexcept { return q_; }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), strictly increasing
  double s_;
  double q_;
};

/// Fits the Zipf exponent of observed rank frequencies by least squares in
/// log-log space (frequency vs rank). Ranks with zero count are skipped.
/// Returns the fitted exponent; used by tests to validate generators.
double fit_zipf_exponent(const std::vector<std::uint64_t>& counts_by_rank);

}  // namespace hkws
