#include "common/hash.hpp"

namespace hkws {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed) noexcept {
  // FNV-1a with a seeded basis; the final mix64 repairs FNV's weak high bits.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ mix64(seed);
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

}  // namespace hkws
