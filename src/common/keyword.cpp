#include "common/keyword.hpp"

#include <algorithm>

namespace hkws {

KeywordSet::KeywordSet(std::vector<Keyword> keywords) : words_(std::move(keywords)) {
  std::sort(words_.begin(), words_.end());
  words_.erase(std::unique(words_.begin(), words_.end()), words_.end());
}

KeywordSet::KeywordSet(std::initializer_list<std::string_view> keywords) {
  words_.reserve(keywords.size());
  for (auto kw : keywords) words_.emplace_back(kw);
  std::sort(words_.begin(), words_.end());
  words_.erase(std::unique(words_.begin(), words_.end()), words_.end());
}

bool KeywordSet::subset_of(const KeywordSet& other) const noexcept {
  return std::includes(other.words_.begin(), other.words_.end(),
                       words_.begin(), words_.end());
}

bool KeywordSet::contains(std::string_view keyword) const noexcept {
  return std::binary_search(words_.begin(), words_.end(), keyword);
}

KeywordSet KeywordSet::union_with(const KeywordSet& other) const {
  std::vector<Keyword> merged;
  merged.reserve(words_.size() + other.words_.size());
  std::set_union(words_.begin(), words_.end(), other.words_.begin(),
                 other.words_.end(), std::back_inserter(merged));
  KeywordSet result;
  result.words_ = std::move(merged);  // already sorted and unique
  return result;
}

KeywordSet KeywordSet::difference(const KeywordSet& other) const {
  std::vector<Keyword> diff;
  std::set_difference(words_.begin(), words_.end(), other.words_.begin(),
                      other.words_.end(), std::back_inserter(diff));
  KeywordSet result;
  result.words_ = std::move(diff);
  return result;
}

std::uint64_t KeywordSet::hash(std::uint64_t seed) const noexcept {
  // Order independent by construction: words_ is canonical (sorted).
  std::uint64_t h = mix64(seed ^ 0xa0761d6478bd642fULL);
  for (const auto& w : words_) h = hash_combine(h, hash_bytes(w, seed));
  return h;
}

std::uint64_t KeywordSet::signature_bit(std::string_view keyword) noexcept {
  return 1ULL << (hash_bytes(keyword, seeds::kSignature) & 63U);
}

std::uint64_t KeywordSet::signature() const noexcept {
  std::uint64_t sig = 0;
  for (const auto& w : words_) sig |= signature_bit(w);
  return sig;
}

std::string KeywordSet::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (i != 0) out += ",";
    out += words_[i];
  }
  return out;
}

}  // namespace hkws
