// Deterministic, seedable 64-bit hashing.
//
// Everything in hyperkws that needs a hash uses these functions rather than
// std::hash: experiment results must be reproducible bit-for-bit across
// platforms and standard-library implementations, and several layers (the
// keyword hash h, the DHT object/node mapping L, the logical-to-physical map
// g) need *independent* hash functions, which we obtain via distinct seeds.
#pragma once

#include <cstdint>
#include <string_view>

namespace hkws {

/// One step of the SplitMix64 generator; also an excellent 64->64 mixer.
/// Advances `state` and returns the next output.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// Stateless 64->64 bit mixer (the SplitMix64 finalizer). Bijective.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// Seeded FNV-1a over a byte string, post-mixed for avalanche.
/// Distinct seeds give (empirically) independent hash functions.
std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed) noexcept;

/// Combine an accumulated hash with a new 64-bit value (order dependent).
std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept;

/// Well-known seeds for the independent hash functions used by the layers.
/// Centralized so tests and production code agree.
namespace seeds {
inline constexpr std::uint64_t kKeywordHash = 0x9e3779b97f4a7c15ULL;   ///< h: W -> {0..r-1}
inline constexpr std::uint64_t kObjectToDht = 0xbf58476d1ce4e5b9ULL;   ///< L: O -> DHT id
inline constexpr std::uint64_t kCubeToDht = 0x94d049bb133111ebULL;     ///< g: cube node -> DHT id
inline constexpr std::uint64_t kNodeId = 0xd6e8feb86659fd93ULL;        ///< peer address -> DHT id
inline constexpr std::uint64_t kSignature = 0x2545f4914f6cdd1dULL;     ///< keyword -> signature bit
}  // namespace seeds

}  // namespace hkws
