#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hkws {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

namespace {

double percentile_sorted(const std::vector<double>& xs, double p) {
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[lo + 1] * frac;
}

}  // namespace

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, p);
}

std::vector<double> percentiles(std::vector<double> xs,
                                const std::vector<double>& ps) {
  if (xs.empty()) throw std::invalid_argument("percentiles: empty input");
  for (double p : ps)
    if (p < 0 || p > 100)
      throw std::invalid_argument("percentiles: p out of range");
  std::sort(xs.begin(), xs.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile_sorted(xs, p));
  return out;
}

double gini(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  double weighted = 0, total = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * xs[i];
    total += xs[i];
  }
  if (total == 0) return 0.0;
  return weighted / (n * total);
}

std::vector<LoadCurvePoint> ranked_load_curve(std::vector<double> loads,
                                              std::size_t max_points) {
  std::vector<LoadCurvePoint> curve;
  if (loads.empty()) return curve;
  std::sort(loads.begin(), loads.end(), std::greater<>());
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  const double n = static_cast<double>(loads.size());

  // Choose which ranks to emit: all of them, or at most max_points evenly
  // spaced. The step rounds *up* — truncating division would emit up to
  // ~2x max_points points (e.g. 1999 loads, max 1000 -> step 1).
  std::size_t step = 1;
  if (max_points != 0 && loads.size() > max_points) {
    step = (loads.size() + max_points - 1) / max_points;
  }
  curve.push_back({0.0, 0.0});
  double acc = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    acc += loads[i];
    if ((i + 1) % step == 0 || i + 1 == loads.size()) {
      curve.push_back({static_cast<double>(i + 1) / n,
                       total == 0 ? 0.0 : acc / total});
    }
  }
  return curve;
}

void Histogram::add(std::int64_t value, std::uint64_t count) {
  bins_[value] += count;
  total_ += count;
}

std::uint64_t Histogram::count(std::int64_t value) const {
  const auto it = bins_.find(value);
  return it == bins_.end() ? 0 : it->second;
}

double Histogram::fraction(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

double Histogram::hist_mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0;
  for (const auto& [v, c] : bins_)
    acc += static_cast<double>(v) * static_cast<double>(c);
  return acc / static_cast<double>(total_);
}

std::int64_t Histogram::min_value() const {
  if (bins_.empty()) throw std::logic_error("Histogram::min_value: empty");
  return bins_.begin()->first;
}

std::int64_t Histogram::max_value() const {
  if (bins_.empty()) throw std::logic_error("Histogram::max_value: empty");
  return bins_.rbegin()->first;
}

}  // namespace hkws
