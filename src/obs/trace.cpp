#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

#include "net/transport.hpp"

namespace hkws::obs {

namespace {

/// JSON string escaping for names/categories (control chars, quote, slash).
void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool Tracer::admit() {
  if (max_events_ == 0 || events_.size() < max_events_) return true;
  ++dropped_;
  return false;
}

void Tracer::begin(sim::Time ts, std::uint64_t tid, std::string name,
                   std::string cat, std::uint64_t a, std::uint64_t b) {
  if (!admit()) return;
  open_[tid].push_back(name);
  events_.push_back(
      TraceEvent{ts, tid, 'B', std::move(name), std::move(cat), a, b});
}

void Tracer::end(sim::Time ts, std::uint64_t tid) {
  const auto it = open_.find(tid);
  if (it == open_.end() || it->second.empty()) return;
  // An 'E' that closes an admitted 'B' is always recorded, even over the
  // cap — a capped trace must still balance.
  events_.push_back(TraceEvent{ts, tid, 'E', it->second.back(), "", 0, 0});
  it->second.pop_back();
  if (it->second.empty()) open_.erase(it);
}

void Tracer::instant(sim::Time ts, std::uint64_t tid, std::string name,
                     std::string cat, std::uint64_t a, std::uint64_t b) {
  if (!admit()) return;
  events_.push_back(
      TraceEvent{ts, tid, 'i', std::move(name), std::move(cat), a, b});
}

void Tracer::close_open(sim::Time ts, std::uint64_t tid) {
  while (open_spans(tid) > 0) end(ts, tid);
}

const std::string& Tracer::open_top(std::uint64_t tid) const {
  static const std::string kNone;
  const auto it = open_.find(tid);
  return it == open_.end() || it->second.empty() ? kNone : it->second.back();
}

std::size_t Tracer::open_spans(std::uint64_t tid) const {
  const auto it = open_.find(tid);
  return it == open_.end() ? 0 : it->second.size();
}

std::string Tracer::to_chrome_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 128);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, e.cat.empty() ? std::string("default") : e.cat);
    out += "\",\"ph\":\"";
    out += e.ph;
    out += "\",\"ts\":" + std::to_string(e.ts);
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    // Chrome requires 'i' events to carry a scope; "t" = thread-scoped.
    if (e.ph == 'i') out += ",\"s\":\"t\"";
    if (e.ph != 'E')
      out += ",\"args\":{\"a\":" + std::to_string(e.a) +
             ",\"b\":" + std::to_string(e.b) + "}";
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" +
         std::to_string(dropped_) + "}}";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << to_chrome_json() << "\n";
  return static_cast<bool>(file);
}

void attach_network(Tracer& tracer, net::Transport& net) {
  net.set_send_observer(
      [&tracer](const std::string& kind, const net::SendRecord& s) {
        tracer.instant(s.at, 0, kind, s.lost ? "net.lost" : "net", s.from,
                       s.to);
      });
}

}  // namespace hkws::obs
