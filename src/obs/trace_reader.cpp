#include "obs/trace_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace hkws::obs {

namespace {

// A minimal recursive-descent JSON parser covering the subset trace files
// use: objects, arrays, strings with escapes, numbers, true/false/null.
// Values are held in a small variant-ish node tree.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::shared_ptr<JsonObject> object;
  std::shared_ptr<JsonArray> array;

  const JsonValue* field(const std::string& name) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object->find(name);
    return it == object->end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object = std::make_shared<JsonObject>();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      (*v.object)[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array = std::make_shared<JsonArray>();
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'n': v.string += '\n'; break;
        case 't': v.string += '\t'; break;
        case 'r': v.string += '\r'; break;
        case 'b': v.string += '\b'; break;
        case 'f': v.string += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Traces only escape control characters; non-ASCII code points
          // are preserved as a replacement to keep the parser small.
          v.string += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::uint64_t as_u64(const JsonValue* v) {
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return 0;
  return static_cast<std::uint64_t>(v->number);
}

}  // namespace

ParsedTrace parse_chrome_trace(const std::string& json) {
  const JsonValue root = Parser(json).parse();
  const JsonValue* events = &root;
  ParsedTrace out;
  if (root.kind == JsonValue::Kind::kObject) {
    events = root.field("traceEvents");
    if (events == nullptr)
      throw std::runtime_error("trace JSON: no traceEvents array");
    if (const JsonValue* other = root.field("otherData"))
      out.dropped = as_u64(other->field("dropped"));
  }
  if (events->kind != JsonValue::Kind::kArray)
    throw std::runtime_error("trace JSON: traceEvents is not an array");
  for (const JsonValue& ev : *events->array) {
    if (ev.kind != JsonValue::Kind::kObject)
      throw std::runtime_error("trace JSON: event is not an object");
    const JsonValue* ph = ev.field("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->string.size() != 1)
      throw std::runtime_error("trace JSON: event without a phase");
    const char phase = ph->string[0];
    if (phase != 'B' && phase != 'E' && phase != 'i') continue;
    TraceEvent e;
    e.ph = phase;
    e.ts = as_u64(ev.field("ts"));
    e.tid = as_u64(ev.field("tid"));
    if (const JsonValue* name = ev.field("name")) e.name = name->string;
    if (const JsonValue* cat = ev.field("cat")) e.cat = cat->string;
    if (const JsonValue* args = ev.field("args")) {
      e.a = as_u64(args->field("a"));
      e.b = as_u64(args->field("b"));
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

ParsedTrace read_chrome_trace(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read trace file: " + path);
  std::ostringstream buf;
  buf << file.rdbuf();
  return parse_chrome_trace(buf.str());
}

std::map<std::uint64_t, std::int64_t> span_imbalance(
    const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, std::int64_t> net;
  for (const TraceEvent& e : events) {
    if (e.ph == 'B') ++net[e.tid];
    if (e.ph == 'E') --net[e.tid];
  }
  for (auto it = net.begin(); it != net.end();)
    it = it->second == 0 ? net.erase(it) : std::next(it);
  return net;
}

}  // namespace hkws::obs
