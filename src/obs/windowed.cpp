#include "obs/windowed.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "common/stats.hpp"

namespace hkws::obs {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name)
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return out;
}

void append_number(std::ostringstream& os, double v) {
  // Integral values print without a trailing ".0" so counters stay integers.
  if (v == static_cast<double>(static_cast<long long>(v)))
    os << static_cast<long long>(v);
  else
    os << v;
}

}  // namespace

WindowedMetrics::WindowedMetrics(sim::Time width) : width_(width) {
  if (width == 0)
    throw std::invalid_argument("WindowedMetrics: width must be > 0");
}

WindowedMetrics::Window& WindowedMetrics::window_at(sim::Time at) {
  const std::uint64_t index = at / width_;
  Window& w = windows_[index];
  w.start = index * width_;
  return w;
}

void WindowedMetrics::count(sim::Time at, const std::string& name,
                            std::uint64_t delta) {
  window_at(at).counters[name] += delta;
}

void WindowedMetrics::observe(sim::Time at, const std::string& name,
                              double value) {
  window_at(at).samples[name].push_back(value);
}

void WindowedMetrics::gauge(sim::Time at, const std::string& name,
                            double value) {
  auto& slot = window_at(at).gauges;
  const auto it = slot.find(name);
  if (it == slot.end())
    slot.emplace(name, value);
  else
    it->second = std::max(it->second, value);
}

std::string WindowedMetrics::to_json() const {
  std::ostringstream os;
  os << "{\"window\":" << width_ << ",\"windows\":[";
  bool first_window = true;
  for (const auto& [index, w] : windows_) {
    if (!first_window) os << ",";
    first_window = false;
    os << "{\"start\":" << w.start;
    os << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : w.counters) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << v;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : w.gauges) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":";
      append_number(os, v);
    }
    os << "},\"series\":{";
    first = true;
    for (const auto& [name, xs] : w.samples) {
      if (!first) os << ",";
      first = false;
      const std::vector<double> qs = percentiles(xs, {50.0, 90.0, 99.0});
      os << "\"" << name << "\":{\"count\":" << xs.size() << ",\"mean\":";
      append_number(os, mean(xs));
      os << ",\"p50\":";
      append_number(os, qs[0]);
      os << ",\"p90\":";
      append_number(os, qs[1]);
      os << ",\"p99\":";
      append_number(os, qs[2]);
      os << "}";
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string WindowedMetrics::to_prometheus() const {
  // Aggregate across windows: counter totals, pooled observations, and the
  // most recent window's gauge levels.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::vector<double>> samples;
  std::map<std::string, double> gauges;
  for (const auto& [index, w] : windows_) {
    for (const auto& [name, v] : w.counters) counters[name] += v;
    for (const auto& [name, xs] : w.samples) {
      auto& pool = samples[name];
      pool.insert(pool.end(), xs.begin(), xs.end());
    }
    for (const auto& [name, v] : w.gauges) gauges[name] = v;  // latest wins
  }

  std::ostringstream os;
  for (const auto& [name, v] : counters) {
    const std::string metric = "hkws_" + sanitize(name) + "_total";
    os << "# TYPE " << metric << " counter\n" << metric << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string metric = "hkws_" + sanitize(name);
    os << "# TYPE " << metric << " gauge\n" << metric << " ";
    append_number(os, v);
    os << "\n";
  }
  for (const auto& [name, xs] : samples) {
    const std::string metric = "hkws_" + sanitize(name);
    const std::vector<double> qs = percentiles(xs, {50.0, 90.0, 99.0});
    double sum = 0;
    for (double x : xs) sum += x;
    os << "# TYPE " << metric << " summary\n";
    const char* labels[] = {"0.5", "0.9", "0.99"};
    for (std::size_t i = 0; i < 3; ++i) {
      os << metric << "{quantile=\"" << labels[i] << "\"} ";
      append_number(os, qs[i]);
      os << "\n";
    }
    os << metric << "_sum ";
    append_number(os, sum);
    os << "\n" << metric << "_count " << xs.size() << "\n";
  }
  return os.str();
}

}  // namespace hkws::obs
