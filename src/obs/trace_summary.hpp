// Turns a parsed trace back into per-query timelines: phase latency
// breakdowns (backlog wait vs root lookup vs level-k scanning), hop trees,
// and a top-N slowest-query table. This is the analysis core of
// tools/traceview, kept in the library so tests can golden-check the
// rendered output and harnesses can post-process traces programmatically.
//
// The phase model matches the spans the query engine emits (see
// docs/OBSERVABILITY.md): a "query" span enclosing an optional "backlog"
// span, a "root_lookup" span, and one "level" span per SBT level, with
// "scan" / "retransmit" instants inside and a terminal outcome instant
// ("complete", "timeout", "failed", or "shed").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hkws::obs {

/// One query's reconstructed life, in ticks.
struct QueryTimeline {
  std::uint64_t id = 0;
  sim::Time start = 0;
  sim::Time finish = 0;
  sim::Time backlog = 0;  ///< time queued before admission
  sim::Time root = 0;     ///< root-lookup phase (admit -> root resolved)
  sim::Time scan = 0;     ///< summed "level" span durations
  std::size_t levels = 0;
  std::size_t scans = 0;
  std::size_t retransmits = 0;
  std::uint64_t hits = 0;
  std::string outcome;  ///< terminal instant name; "" if the trace is open

  sim::Time latency() const noexcept { return finish - start; }
};

struct TraceSummary {
  std::size_t events = 0;
  bool balanced = true;  ///< span begin/end balance across all tracks
  std::vector<QueryTimeline> queries;           ///< sorted by id
  std::map<std::string, std::size_t> outcomes;  ///< outcome -> count
};

TraceSummary summarize(const std::vector<TraceEvent>& events);

/// Event counts, outcome tally, per-phase latency breakdown over completed
/// queries, and the top_n slowest-query table, as printable text.
std::string render_summary(const TraceSummary& summary, std::size_t top_n = 5);

/// The hop tree of one query: its events in order, indented by span depth.
/// Empty string if the trace holds no events for `query_id`.
std::string render_hop_tree(const std::vector<TraceEvent>& events,
                            std::uint64_t query_id);

}  // namespace hkws::obs
