// Structured span tracing on sim-time. A Tracer collects begin/end/instant
// events — each carrying a sim-time timestamp, a track id (tid; the engine
// uses the query id, 0 is the global track), a name, a category, and two
// point-specific integer args — and exports them as Chrome trace-event JSON,
// loadable in chrome://tracing or Perfetto. With tid = query id, each query
// renders as its own "thread", so a superset query's SBT hop tree is visible
// level by level: the "query" span encloses "backlog" / "root_lookup" /
// per-"level" child spans with "scan" and "retransmit" instants inside.
//
// Balance guarantee: the Tracer tracks open spans per tid. end() closes the
// innermost open span and close_open() closes all of them, so a producer
// that calls close_open() on every terminal transition exports a trace in
// which 'B' and 'E' events balance per tid — which is what trace_reader's
// span_imbalance() verifies and tools/traceview --check enforces.
//
// Bounded capture: with max_events != 0 the Tracer stops *opening* new
// spans and recording instants once the cap is reached, but still records
// the 'E' events of spans it already opened (so the capped trace stays
// balanced). Dropped events are counted and exported in the JSON metadata —
// a truncated trace never silently poses as a complete one.
//
// Feeding a Tracer: engine::EngineConfig::tracer instruments the query
// engine, attach_network() instruments every wire send, and
// torture::ScenarioRunner::set_tracer instruments scenario rounds. All
// timestamps are passed in explicitly, so one Tracer can serve components
// on different clocks (ticks are exported as-is; one tick ~ 1 ms).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"

namespace hkws::net {
class Transport;
}

namespace hkws::obs {

/// One Chrome trace-event. `ph` is the trace-event phase: 'B' span begin,
/// 'E' span end, 'i' instant.
struct TraceEvent {
  sim::Time ts = 0;
  std::uint64_t tid = 0;  ///< track: engine query id; 0 = global track
  char ph = 'i';
  std::string name;
  std::string cat;
  std::uint64_t a = 0;  ///< exported as args.a (point-specific)
  std::uint64_t b = 0;  ///< exported as args.b (point-specific)
};

class Tracer {
 public:
  /// @param max_events  0 = unbounded; otherwise new spans/instants beyond
  ///                    the cap are dropped (and counted in dropped()).
  explicit Tracer(std::size_t max_events = 0) : max_events_(max_events) {}

  /// Opens a span on track `tid`.
  void begin(sim::Time ts, std::uint64_t tid, std::string name,
             std::string cat = "", std::uint64_t a = 0, std::uint64_t b = 0);

  /// Closes the innermost open span on track `tid` (no-op if none).
  void end(sim::Time ts, std::uint64_t tid);

  /// Records a point event on track `tid`.
  void instant(sim::Time ts, std::uint64_t tid, std::string name,
               std::string cat = "", std::uint64_t a = 0, std::uint64_t b = 0);

  /// Closes every open span on track `tid`, innermost first. Producers call
  /// this on terminal transitions so exported traces balance per track.
  void close_open(sim::Time ts, std::uint64_t tid);

  /// Name of the innermost open span on `tid` ("" if none).
  const std::string& open_top(std::uint64_t tid) const;
  std::size_t open_spans(std::uint64_t tid) const;

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t dropped() const noexcept { return dropped_; }

  /// The whole trace as one Chrome trace-event JSON document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms","otherData":{...}}.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`. Returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  /// True if a new event may be recorded (cap not reached).
  bool admit();

  std::size_t max_events_ = 0;
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  /// Names of currently-open spans per track, outermost first.
  std::unordered_map<std::uint64_t, std::vector<std::string>> open_;
};

/// Instruments every wire send of `net` as an instant event on the global
/// track: name = message kind, cat = "net" ("net.lost" for messages the
/// drop/fault model lost), args a/b = from/to endpoints. Works on any
/// Transport backend — the simulator and the TCP runtime report through the
/// same per-send observer, so hop traces stay truthful on both. The tracer
/// must outlive the transport (or the observer must be removed first).
void attach_network(Tracer& tracer, net::Transport& net);

}  // namespace hkws::obs
