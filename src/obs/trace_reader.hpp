// Reading side of the trace pipeline: parses a Chrome trace-event JSON
// document (the Tracer's own output, or any document using the same subset
// of the format) back into TraceEvents, and checks the span-balance
// invariant. Used by tools/traceview and by the round-trip tests; no
// third-party JSON dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hkws::obs {

struct ParsedTrace {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;  ///< otherData.dropped, 0 if absent
};

/// Parses a Chrome trace-event JSON document: either the object form
/// {"traceEvents":[...], ...} or a bare event array. Events with phases
/// other than B/E/i (metadata events etc.) are skipped. Throws
/// std::runtime_error naming the byte offset on malformed input.
ParsedTrace parse_chrome_trace(const std::string& json);

/// Reads `path` and parses it. Throws std::runtime_error if unreadable.
ParsedTrace read_chrome_trace(const std::string& path);

/// Net open-span count per track: #B - #E. An empty map means every track's
/// begin/end events balance (the Tracer's close_open() guarantee).
std::map<std::uint64_t, std::int64_t> span_imbalance(
    const std::vector<TraceEvent>& events);

}  // namespace hkws::obs
