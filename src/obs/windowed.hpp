// Windowed time-series aggregation on sim-time. Where sim::Metrics keeps
// whole-run totals, WindowedMetrics buckets everything into fixed-width
// sim-time windows so a run's *shape* is visible: throughput ramping,
// in-flight buildup, drop/retransmit bursts, and latency quantiles drifting
// under load. Three primitive kinds per window:
//
//   count(at, name)    monotonic within the window (throughput, drops)
//   observe(at, name)  value series; quantiles computed per window at export
//   gauge(at, name)    instantaneous level; the window keeps the maximum
//
// Exports: to_json() — the machine-readable `timeseries` section embedded
// in BENCH_serving.json — and to_prometheus(), Prometheus exposition-style
// text over the whole run (counter totals, summary quantiles, last-window
// gauges). The engine feeds one of these via EngineConfig::windows; see
// docs/OBSERVABILITY.md for the exact schema.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace hkws::obs {

class WindowedMetrics {
 public:
  /// @param width  window width in ticks (> 0); window k covers
  ///               [k*width, (k+1)*width).
  explicit WindowedMetrics(sim::Time width);

  sim::Time width() const noexcept { return width_; }

  void count(sim::Time at, const std::string& name, std::uint64_t delta = 1);
  void observe(sim::Time at, const std::string& name, double value);
  void gauge(sim::Time at, const std::string& name, double value);

  struct Window {
    sim::Time start = 0;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::vector<double>> samples;
    std::map<std::string, double> gauges;  ///< max observed in the window
  };

  /// Windows in time order. Only windows that saw at least one event exist.
  const std::map<std::uint64_t, Window>& windows() const noexcept {
    return windows_;
  }
  bool empty() const noexcept { return windows_.empty(); }

  /// {"window":W,"windows":[{"start":...,"counters":{...},"gauges":{...},
  ///  "series":{"name":{"count":N,"mean":M,"p50":...,"p90":...,"p99":...}}}]}
  std::string to_json() const;

  /// Prometheus exposition-style text: hkws_<name> counter totals,
  /// hkws_<name>{quantile="..."} summaries over all observations, and
  /// last-window gauge levels. Metric names are sanitized to [a-zA-Z0-9_].
  std::string to_prometheus() const;

 private:
  Window& window_at(sim::Time at);

  sim::Time width_;
  std::map<std::uint64_t, Window> windows_;
};

}  // namespace hkws::obs
