#include "obs/trace_summary.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <unordered_map>

#include "common/stats.hpp"
#include "obs/trace_reader.hpp"

namespace hkws::obs {

namespace {

bool is_outcome(const std::string& name) {
  return name == "complete" || name == "timeout" || name == "failed" ||
         name == "shed";
}

/// One formatted line of the instant/begin events inside a hop tree.
std::string describe(const TraceEvent& e) {
  std::ostringstream os;
  if (e.name == "query") {
    os << "query (priority=" << e.a << ")";
  } else if (e.name == "level") {
    os << "level " << e.a << " (width " << e.b << ")";
  } else if (e.name == "root") {
    os << "root: peer=" << e.a << " hops=" << e.b;
  } else if (e.name == "scan") {
    os << "scan: cube=" << e.a << " peer=" << e.b;
  } else if (e.name == "retransmit") {
    os << "retransmit: node=" << e.a;
  } else if (e.name == "complete") {
    os << "complete: hits=" << e.a;
  } else if (e.name == "submit") {
    os << "submit (priority=" << e.a << ")";
  } else if (e.name == "admit") {
    os << "admit (in_flight=" << e.a << ")";
  } else if (e.name == "backlog" || e.name == "root_lookup" ||
             e.a + e.b == 0) {
    os << e.name;
  } else {
    os << e.name << ": a=" << e.a << " b=" << e.b;
  }
  return os.str();
}

std::string fmt1(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << v;
  return os.str();
}

}  // namespace

TraceSummary summarize(const std::vector<TraceEvent>& events) {
  TraceSummary out;
  out.events = events.size();
  out.balanced = span_imbalance(events).empty();

  struct OpenSpan {
    std::string name;
    sim::Time ts;
  };
  std::unordered_map<std::uint64_t, std::vector<OpenSpan>> stacks;
  std::map<std::uint64_t, QueryTimeline> queries;

  for (const TraceEvent& e : events) {
    if (e.tid == 0) continue;  // global track: net sends, torture rounds
    QueryTimeline& q = queries[e.tid];
    q.id = e.tid;
    switch (e.ph) {
      case 'B':
        if (e.name == "query") q.start = e.ts;
        if (e.name == "level") ++q.levels;
        stacks[e.tid].push_back({e.name, e.ts});
        break;
      case 'E': {
        auto& stack = stacks[e.tid];
        if (stack.empty()) break;
        const OpenSpan span = stack.back();
        stack.pop_back();
        const sim::Time dur = e.ts - span.ts;
        if (span.name == "query") q.finish = e.ts;
        else if (span.name == "backlog") q.backlog += dur;
        else if (span.name == "root_lookup") q.root += dur;
        else if (span.name == "level") q.scan += dur;
        break;
      }
      case 'i':
        if (e.name == "scan") ++q.scans;
        else if (e.name == "retransmit") ++q.retransmits;
        else if (is_outcome(e.name)) {
          q.outcome = e.name;
          if (e.name == "complete") q.hits = e.a;
        }
        break;
      default: break;
    }
  }

  for (auto& [id, q] : queries) {
    out.outcomes[q.outcome.empty() ? "open" : q.outcome] += 1;
    out.queries.push_back(std::move(q));
  }
  return out;
}

std::string render_summary(const TraceSummary& summary, std::size_t top_n) {
  std::ostringstream os;
  os << "trace summary: " << summary.events << " events, "
     << summary.queries.size() << " queries, spans "
     << (summary.balanced ? "balanced" : "UNBALANCED") << "\n";
  os << "outcomes:";
  if (summary.outcomes.empty()) os << " none";
  for (const auto& [name, n] : summary.outcomes)
    os << " " << name << "=" << n;
  os << "\n";

  std::vector<double> backlog, root, scan, latency;
  for (const QueryTimeline& q : summary.queries) {
    if (q.outcome != "complete") continue;
    backlog.push_back(static_cast<double>(q.backlog));
    root.push_back(static_cast<double>(q.root));
    scan.push_back(static_cast<double>(q.scan));
    latency.push_back(static_cast<double>(q.latency()));
  }
  if (!latency.empty()) {
    os << "phase breakdown over " << latency.size()
       << " completed queries (ticks):\n";
    const auto row = [&os](const char* name, const std::vector<double>& xs) {
      const std::vector<double> ps = percentiles(xs, {50.0, 95.0});
      os << "  " << std::left << std::setw(12) << name
         << " mean=" << fmt1(mean(xs)) << " p50=" << fmt1(ps[0])
         << " p95=" << fmt1(ps[1]) << "\n";
    };
    row("backlog", backlog);
    row("root_lookup", root);
    row("scan", scan);
    row("total", latency);
  }

  std::vector<const QueryTimeline*> slow;
  for (const QueryTimeline& q : summary.queries)
    if (!q.outcome.empty() && q.outcome != "shed") slow.push_back(&q);
  std::sort(slow.begin(), slow.end(),
            [](const QueryTimeline* x, const QueryTimeline* y) {
              return x->latency() != y->latency()
                         ? x->latency() > y->latency()
                         : x->id < y->id;
            });
  if (slow.size() > top_n) slow.resize(top_n);
  if (!slow.empty()) {
    os << "slowest queries:\n";
    os << "  id       latency  backlog  root     scan     levels scans rtx "
          "outcome\n";
    for (const QueryTimeline* q : slow) {
      os << "  " << std::left << std::setw(8) << q->id << " " << std::setw(8)
         << q->latency() << " " << std::setw(8) << q->backlog << " "
         << std::setw(8) << q->root << " " << std::setw(8) << q->scan << " "
         << std::setw(6) << q->levels << " " << std::setw(5) << q->scans
         << " " << std::setw(3) << q->retransmits << " " << q->outcome
         << "\n";
    }
  }
  return os.str();
}

std::string render_hop_tree(const std::vector<TraceEvent>& events,
                            std::uint64_t query_id) {
  std::ostringstream os;
  std::size_t depth = 0;
  bool any = false;
  for (const TraceEvent& e : events) {
    if (e.tid != query_id) continue;
    if (!any) {
      os << "query " << query_id << " hop tree:\n";
      any = true;
    }
    if (e.ph == 'E') {
      if (depth > 0) --depth;
      continue;
    }
    os << std::string(2 * (depth + 1), ' ') << describe(e) << " @" << e.ts
       << "\n";
    if (e.ph == 'B') ++depth;
  }
  return any ? os.str() : std::string();
}

}  // namespace hkws::obs
