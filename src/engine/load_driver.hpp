// LoadDriver — open-loop replay of a query log against a QueryEngine. The
// arrival process (workload::ArrivalProcess, typically Poisson) decides the
// submission times up front; whether the engine keeps up only changes its
// backlog and shed counts, never the offered rate. Submission is paced with
// the EventQueue's cancelable timers, so a driver can be destroyed (or the
// run truncated with run_until) without leaving a live callback behind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/query_engine.hpp"
#include "sim/event_queue.hpp"
#include "workload/arrivals.hpp"
#include "workload/query_log.hpp"

namespace hkws::engine {

class LoadDriver {
 public:
  /// @param searchers  endpoints the submissions rotate over (round-robin);
  ///                   must be non-empty before start().
  LoadDriver(QueryEngine& engine, sim::EventQueue& clock,
             std::vector<sim::EndpointId> searchers);
  ~LoadDriver();

  LoadDriver(const LoadDriver&) = delete;
  LoadDriver& operator=(const LoadDriver&) = delete;

  /// Schedules the replay of `log` with gaps drawn from `arrivals`. The
  /// first query is submitted after one gap; the caller then drives the
  /// clock (run()/run_until()). Both references must outlive the replay.
  void start(const workload::QueryLog& log,
             workload::ArrivalProcess& arrivals);

  /// Queries submitted so far.
  std::size_t submitted() const noexcept { return position_; }
  /// Whether the whole log has been submitted.
  bool done() const noexcept { return log_ == nullptr; }

 private:
  void arm_next();
  void fire();

  QueryEngine& engine_;
  sim::EventQueue& clock_;
  std::vector<sim::EndpointId> searchers_;
  const workload::QueryLog* log_ = nullptr;
  workload::ArrivalProcess* arrivals_ = nullptr;
  std::size_t position_ = 0;
  sim::EventQueue::TimerId timer_ = 0;
};

}  // namespace hkws::engine
