#include "engine/query_engine.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/trace.hpp"
#include "obs/windowed.hpp"

namespace hkws::engine {

const char* to_string(QueryOutcome outcome) noexcept {
  switch (outcome) {
    case QueryOutcome::kCompleted: return "completed";
    case QueryOutcome::kDegraded: return "degraded";
    case QueryOutcome::kTimedOut: return "timed_out";
    case QueryOutcome::kFailed: return "failed";
    case QueryOutcome::kShed: return "shed";
  }
  return "?";
}

QueryEngine::QueryEngine(index::KeywordSearchService& service,
                         sim::EventQueue& clock, EngineConfig cfg)
    : service_(service), clock_(clock), cfg_(cfg) {
  limit_ = static_cast<double>(
      cfg_.adaptive.enabled
          ? std::clamp(cfg_.max_in_flight, cfg_.adaptive.min_in_flight,
                       cfg_.adaptive.max_in_flight)
          : cfg_.max_in_flight);
  if (cfg_.latency_reservoir != 0)
    metrics_.set_reservoir("engine.latency", cfg_.latency_reservoir);
  // The protocol trace feeds two consumers: per-query trace records
  // (attributed through the service ticket, which equals the request id for
  // non-mirrored services) and the global per-peer scan-load histogram.
  service_.primary_index().set_trace(
      [this](const index::OverlayIndex::Trace& t) { on_trace(t); });
}

QueryEngine::~QueryEngine() {
  service_.primary_index().set_trace(nullptr);
  // Orphaned searches must not call back into a dead engine.
  for (auto& [id, act] : active_) {
    if (act.deadline_timer != 0) clock_.cancel_timer(act.deadline_timer);
    service_.cancel_search(act.ticket);
  }
}

std::size_t QueryEngine::in_flight_limit() const noexcept {
  if (!cfg_.adaptive.enabled) return cfg_.max_in_flight;
  return std::clamp(static_cast<std::size_t>(limit_),
                    cfg_.adaptive.min_in_flight, cfg_.adaptive.max_in_flight);
}

std::size_t QueryEngine::backlog_limit() const noexcept {
  if (!cfg_.adaptive.enabled) return cfg_.max_backlog;
  const auto scaled = static_cast<std::size_t>(
      cfg_.adaptive.backlog_per_slot * static_cast<double>(in_flight_limit()));
  return std::max(cfg_.max_backlog, scaled);
}

void QueryEngine::sync_gauges() {
  // High-water marks move on *every* transition — submit-time-only sampling
  // under-read peaks that built up between submissions (e.g. a pump wave).
  in_flight_high_water_ = std::max(in_flight_high_water_, active_.size());
  backlog_high_water_ = std::max(backlog_high_water_, backlog_.size());
  if (cfg_.windows == nullptr) return;
  const sim::Time now = clock_.now();
  cfg_.windows->gauge(now, "in_flight", static_cast<double>(active_.size()));
  cfg_.windows->gauge(now, "backlog", static_cast<double>(backlog_.size()));
  if (cfg_.adaptive.enabled) {
    cfg_.windows->gauge(now, "admit_limit",
                        static_cast<double>(in_flight_limit()));
    cfg_.windows->gauge(now, "backlog_limit",
                        static_cast<double>(backlog_limit()));
  }
}

sim::Time QueryEngine::adapt_target() const noexcept {
  if (cfg_.adaptive.latency_target != 0) return cfg_.adaptive.latency_target;
  if (cfg_.deadline != 0)
    return static_cast<sim::Time>(cfg_.adaptive.headroom *
                                  static_cast<double>(cfg_.deadline));
  return 0;
}

void QueryEngine::adapt_on_completion(sim::Time service_latency) {
  if (!cfg_.adaptive.enabled) return;
  const sim::Time target = adapt_target();
  if (target != 0 && service_latency > target) {
    adapt_on_overload();
    return;
  }
  limit_ += slow_start_ ? cfg_.adaptive.increase
                        : cfg_.adaptive.increase / std::max(1.0, limit_);
  limit_ = std::min(limit_,
                    static_cast<double>(cfg_.adaptive.max_in_flight));
}

void QueryEngine::adapt_on_overload() {
  if (!cfg_.adaptive.enabled) return;
  slow_start_ = false;
  const sim::Time now = clock_.now();
  const sim::Time target = adapt_target();
  const sim::Time cooldown = target != 0 ? target : cfg_.deadline;
  // One multiplicative decrease per target interval: a burst of queries
  // timing out together is one congestion event, not limit^-N of them.
  if (any_decrease_ && now < last_decrease_ + cooldown) return;
  any_decrease_ = true;
  last_decrease_ = now;
  limit_ = std::max(limit_ * cfg_.adaptive.decrease,
                    static_cast<double>(cfg_.adaptive.min_in_flight));
  metrics_.count("engine.admit_decrease");
  sync_gauges();
}

std::uint64_t QueryEngine::submit(sim::EndpointId searcher,
                                  const KeywordSet& query, int priority) {
  const std::uint64_t id = next_id_++;
  const sim::Time now = clock_.now();
  if (!any_submit_) {
    first_submit_ = now;
    any_submit_ = true;
  }
  metrics_.count("engine.submitted");
  if (cfg_.windows != nullptr) cfg_.windows->count(now, "submitted");
  if (cfg_.tracer != nullptr)
    cfg_.tracer->begin(now, id, "query", "engine",
                       static_cast<std::uint64_t>(priority));

  QueryRecord rec;
  rec.id = id;
  rec.priority = priority;
  rec.submitted = now;

  if (active_.size() >= in_flight_limit() &&
      backlog_.size() >= backlog_limit()) {
    // The backlog looks full, but entries whose deadline already burned out
    // are dead weight: time them out first (their true outcome) instead of
    // shedding the live newcomer against phantom occupancy.
    expire_stale_backlog();
  }
  if (active_.size() >= in_flight_limit() &&
      backlog_.size() >= backlog_limit()) {
    // Saturated: shed at the door rather than grow an unbounded queue.
    rec.outcome = QueryOutcome::kShed;
    rec.finished = now;
    if (cfg_.record_traces) rec.trace.push_back({now, "shed", 0, 0});
    metrics_.count("engine.shed");
    if (cfg_.windows != nullptr) cfg_.windows->count(now, "shed");
    if (cfg_.tracer != nullptr) {
      cfg_.tracer->instant(now, id, "shed", "engine");
      cfg_.tracer->close_open(now, id);
    }
    sync_gauges();
    records_.push_back(std::move(rec));
    if (on_finished_) on_finished_(records_.back());
    return id;
  }

  pending_.emplace(id, std::move(rec));
  note(id, "submit", static_cast<std::uint64_t>(priority));
  if (active_.size() < in_flight_limit()) {
    launch(id, searcher, query);
  } else {
    if (cfg_.tracer != nullptr)
      cfg_.tracer->begin(now, id, "backlog", "engine");
    backlog_.push_back(Waiting{id, searcher, query});
    sync_gauges();
  }
  return id;
}

void QueryEngine::expire_stale_backlog() {
  if (cfg_.deadline == 0 || backlog_.empty()) return;
  const sim::Time now = clock_.now();
  const auto expired = [&](const Waiting& w, sim::Time& expires) {
    const auto it = pending_.find(w.id);
    if (it == pending_.end()) return true;  // defensive; should not happen
    expires = it->second.submitted + cfg_.deadline;
    return expires <= now;
  };
  if (cfg_.policy == BacklogPolicy::kFifo) {
    // FIFO is submission-ordered, so expired entries form a prefix.
    sim::Time expires = 0;
    while (!backlog_.empty() && expired(backlog_.front(), expires)) {
      const std::uint64_t id = backlog_.front().id;
      backlog_.pop_front();
      metrics_.count("engine.timed_out_queued");
      seal(id, QueryOutcome::kTimedOut, expires);
    }
  } else {
    for (std::size_t i = 0; i < backlog_.size();) {
      sim::Time expires = 0;
      if (!expired(backlog_[i], expires)) {
        ++i;
        continue;
      }
      const std::uint64_t id = backlog_[i].id;
      backlog_.erase(backlog_.begin() + static_cast<std::ptrdiff_t>(i));
      metrics_.count("engine.timed_out_queued");
      seal(id, QueryOutcome::kTimedOut, expires);
    }
  }
  sync_gauges();
}

void QueryEngine::launch(std::uint64_t id, sim::EndpointId searcher,
                         const KeywordSet& query) {
  const sim::Time now = clock_.now();
  QueryRecord& rec = pending_[id];
  Active act;
  if (cfg_.deadline != 0) {
    const sim::Time expires = rec.submitted + cfg_.deadline;
    if (expires <= now) {
      // The deadline burned out while the query sat in the backlog. Seal at
      // the *true* expiry, not the pop time — latency must read `deadline`.
      metrics_.count("engine.timed_out_queued");
      seal(id, QueryOutcome::kTimedOut, expires);
      return;
    }
    act.deadline_timer =
        clock_.set_timer(expires - now, [this, id] { on_deadline(id); });
  }
  rec.admitted = now;
  note(id, "admit", active_.size());
  if (cfg_.tracer != nullptr) {
    if (cfg_.tracer->open_top(id) == "backlog") cfg_.tracer->end(now, id);
    cfg_.tracer->begin(now, id, "root_lookup", "engine");
  }
  auto [it, inserted] = active_.emplace(id, act);
  sync_gauges();
  const std::uint64_t ticket = service_.search(
      searcher, query, cfg_.search,
      [this, id](const index::KeywordSearchService::Answer& answer) {
        on_answer(id, answer);
      });
  it->second.ticket = ticket;
  by_ticket_.emplace(ticket, id);
}

void QueryEngine::pump() {
  if (pumping_) return;
  pumping_ = true;
  while (active_.size() < in_flight_limit() && !backlog_.empty()) {
    Waiting w = pop_backlog();
    launch(w.id, w.searcher, w.query);
  }
  pumping_ = false;
  sync_gauges();
}

QueryEngine::Waiting QueryEngine::pop_backlog() {
  auto it = backlog_.begin();
  if (cfg_.policy == BacklogPolicy::kPriority) {
    // Stable scan: highest priority, earliest submission wins. Backlogs are
    // bounded (max_backlog), so linear selection is fine at sim scale.
    for (auto cand = backlog_.begin(); cand != backlog_.end(); ++cand) {
      const auto pending_priority = [this](const Waiting& w) {
        const auto p = pending_.find(w.id);
        return p == pending_.end() ? 0 : p->second.priority;
      };
      if (pending_priority(*cand) > pending_priority(*it)) it = cand;
    }
  }
  Waiting w = std::move(*it);
  backlog_.erase(it);
  return w;
}

void QueryEngine::on_answer(std::uint64_t id,
                            const index::KeywordSearchService::Answer& answer) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;  // raced with a deadline; already sealed
  if (it->second.deadline_timer != 0)
    clock_.cancel_timer(it->second.deadline_timer);
  by_ticket_.erase(it->second.ticket);
  active_.erase(it);
  QueryRecord& rec = pending_[id];
  rec.hits = answer.hits.size();
  rec.stats = answer.stats;
  // Verdict precedence mirrors SearchStats: failed > degraded > completed.
  const QueryOutcome outcome = answer.stats.failed
                                   ? QueryOutcome::kFailed
                                   : answer.stats.degraded
                                         ? QueryOutcome::kDegraded
                                         : QueryOutcome::kCompleted;
  // AIMD signal: the query's *service* time (admission to answer). Protocol
  // failures are loss, not congestion — they neither grow nor shrink.
  if (outcome != QueryOutcome::kFailed)
    adapt_on_completion(clock_.now() - rec.admitted);
  seal(id, outcome);
  pump();
}

void QueryEngine::on_deadline(std::uint64_t id) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  service_.cancel_search(it->second.ticket);
  by_ticket_.erase(it->second.ticket);
  active_.erase(it);
  // An admitted query that blew its deadline is the congestion signal.
  adapt_on_overload();
  seal(id, QueryOutcome::kTimedOut);
  pump();
}

void QueryEngine::seal(std::uint64_t id, QueryOutcome outcome) {
  seal(id, outcome, clock_.now());
}

void QueryEngine::seal(std::uint64_t id, QueryOutcome outcome,
                       sim::Time finished_at) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  QueryRecord& rec = it->second;
  const sim::Time now = clock_.now();
  rec.outcome = outcome;
  rec.finished = finished_at;
  const char* outcome_point = "shed";
  switch (outcome) {
    case QueryOutcome::kCompleted:
      metrics_.count("engine.completed");
      metrics_.observe("engine.latency", static_cast<double>(rec.latency()));
      metrics_.observe("engine.queue_wait",
                       static_cast<double>(rec.queue_wait()));
      last_finish_ = std::max(last_finish_, now);
      note(id, "complete", rec.hits);
      outcome_point = "complete";
      if (cfg_.windows != nullptr) {
        cfg_.windows->count(now, "completed");
        cfg_.windows->observe(now, "latency",
                              static_cast<double>(rec.latency()));
        cfg_.windows->observe(now, "queue_wait",
                              static_cast<double>(rec.queue_wait()));
      }
      break;
    case QueryOutcome::kDegraded:
      // A degraded answer was still served within the deadline, so it
      // belongs in the latency distribution — only completeness suffered.
      metrics_.count("engine.degraded");
      metrics_.observe("engine.latency", static_cast<double>(rec.latency()));
      metrics_.observe("engine.queue_wait",
                       static_cast<double>(rec.queue_wait()));
      last_finish_ = std::max(last_finish_, now);
      note(id, "degraded", rec.hits, rec.stats.failovers);
      outcome_point = "degraded";
      if (cfg_.windows != nullptr) {
        cfg_.windows->count(now, "degraded");
        cfg_.windows->observe(now, "latency",
                              static_cast<double>(rec.latency()));
        cfg_.windows->observe(now, "queue_wait",
                              static_cast<double>(rec.queue_wait()));
      }
      break;
    case QueryOutcome::kTimedOut:
      metrics_.count("engine.timed_out");
      note(id, "timeout");
      outcome_point = "timeout";
      if (cfg_.windows != nullptr) cfg_.windows->count(now, "timed_out");
      break;
    case QueryOutcome::kFailed:
      metrics_.count("engine.failed");
      note(id, "failed");
      outcome_point = "failed";
      if (cfg_.windows != nullptr) cfg_.windows->count(now, "failed");
      break;
    case QueryOutcome::kShed:
      metrics_.count("engine.shed");
      if (cfg_.windows != nullptr) cfg_.windows->count(now, "shed");
      break;
  }
  if (cfg_.tracer != nullptr) {
    cfg_.tracer->instant(now, id, outcome_point, "engine", rec.hits);
    cfg_.tracer->close_open(now, id);
  }
  records_.push_back(std::move(rec));
  pending_.erase(it);
  if (on_finished_) on_finished_(records_.back());
}

void QueryEngine::on_trace(const index::OverlayIndex::Trace& t) {
  if (std::strcmp(t.point, "scan") == 0)
    scans_per_peer_.add(static_cast<std::int64_t>(t.b));
  if (cfg_.windows != nullptr && std::strcmp(t.point, "retransmit") == 0)
    cfg_.windows->count(clock_.now(), "retransmit");
  const auto it = by_ticket_.find(t.request);
  if (it == by_ticket_.end()) return;
  note(it->second, t.point, t.a, t.b);
  if (cfg_.tracer != nullptr) emit_span(it->second, t.point, t.a, t.b);
}

void QueryEngine::emit_span(std::uint64_t id, const char* point,
                            std::uint64_t a, std::uint64_t b) {
  obs::Tracer& tracer = *cfg_.tracer;
  const sim::Time now = clock_.now();
  if (std::strcmp(point, "root") == 0) {
    // Root resolved: the root_lookup phase ends, exploration begins.
    if (tracer.open_top(id) == "root_lookup") tracer.end(now, id);
    tracer.instant(now, id, "root", "proto", a, b);
  } else if (std::strcmp(point, "level") == 0) {
    // One span per SBT level; consecutive levels abut.
    if (tracer.open_top(id) == "level") tracer.end(now, id);
    tracer.begin(now, id, "level", "proto", a, b);
  } else {
    tracer.instant(now, id, point, "proto", a, b);
  }
}

void QueryEngine::note(std::uint64_t id, const char* point, std::uint64_t a,
                       std::uint64_t b) {
  if (!cfg_.record_traces) return;
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  it->second.trace.push_back(TracePoint{clock_.now(), point, a, b});
}

EngineReport QueryEngine::report() const {
  EngineReport r;
  r.submitted = metrics_.counter("engine.submitted");
  r.completed = metrics_.counter("engine.completed");
  r.degraded = metrics_.counter("engine.degraded");
  r.timed_out = metrics_.counter("engine.timed_out");
  r.timed_out_in_backlog = metrics_.counter("engine.timed_out_queued");
  r.failed = metrics_.counter("engine.failed");
  r.shed = metrics_.counter("engine.shed");
  const std::vector<double>& lat = metrics_.samples("engine.latency");
  if (!lat.empty()) {
    r.latency_mean = metrics_.sample_mean("engine.latency");
    const std::vector<double> qs = percentiles(lat, {50.0, 95.0, 99.0});
    r.latency_p50 = qs[0];
    r.latency_p95 = qs[1];
    r.latency_p99 = qs[2];
  }
  if (r.completed + r.degraded > 0 && last_finish_ > first_submit_)
    r.achieved_qps = static_cast<double>(r.completed + r.degraded) * 1000.0 /
                     static_cast<double>(last_finish_ - first_submit_);
  r.in_flight_high_water = in_flight_high_water_;
  r.backlog_high_water = backlog_high_water_;
  r.admit_limit = in_flight_limit();
  const sim::Metrics& net_metrics =
      service_.primary_index().dolr().overlay().transport().metrics();
  r.retransmits = net_metrics.counter("kws.retransmit");
  r.failovers = net_metrics.counter("kws.failover");
  r.mirror_failovers = net_metrics.counter("kws.mirror_failover");
  r.scans_per_peer = scans_per_peer_;
  r.live_peers =
      service_.primary_index().dolr().overlay().live_ids().size();
  if (r.live_peers > 0 && !scans_per_peer_.empty()) {
    std::uint64_t max_load = 0;
    for (const auto& [peer, n] : scans_per_peer_.bins())
      max_load = std::max(max_load, n);
    const double mean = static_cast<double>(scans_per_peer_.total()) /
                        static_cast<double>(r.live_peers);
    if (mean > 0.0)
      r.scan_skew_max_over_mean = static_cast<double>(max_load) / mean;
  }
  return r;
}

std::string EngineReport::to_string() const {
  std::ostringstream os;
  os << "queries: submitted=" << submitted << " completed=" << completed
     << " degraded=" << degraded << " timed_out=" << timed_out
     << " (in_backlog=" << timed_out_in_backlog << ")"
     << " failed=" << failed << " shed=" << shed << "\n";
  os << "latency (ticks): mean=" << latency_mean << " p50=" << latency_p50
     << " p95=" << latency_p95 << " p99=" << latency_p99 << "\n";
  os << "achieved_qps=" << achieved_qps << " admit_limit=" << admit_limit
     << " in_flight_hwm=" << in_flight_high_water
     << " backlog_hwm=" << backlog_high_water
     << " retransmits=" << retransmits << " failovers=" << failovers
     << " mirror_failovers=" << mirror_failovers << "\n";
  if (!scans_per_peer.empty()) {
    // Mean over every live peer, not just the ones that served a scan —
    // idle peers are exactly what a load-imbalance number must count.
    const std::size_t peers =
        live_peers > 0 ? live_peers : scans_per_peer.bins().size();
    std::uint64_t max_load = 0;
    for (const auto& [peer, n] : scans_per_peer.bins())
      max_load = std::max(max_load, n);
    os << "scan load: peers=" << peers
       << " serving=" << scans_per_peer.bins().size()
       << " scans=" << scans_per_peer.total()
       << " mean=" << (static_cast<double>(scans_per_peer.total()) /
                       static_cast<double>(peers))
       << " max_per_peer=" << max_load
       << " skew_max_over_mean=" << scan_skew_max_over_mean << "\n";
  }
  return os.str();
}

std::string EngineReport::to_json() const {
  std::ostringstream os;
  os << "{"
     << "\"submitted\":" << submitted << ",\"completed\":" << completed
     << ",\"degraded\":" << degraded
     << ",\"timed_out\":" << timed_out
     << ",\"timed_out_in_backlog\":" << timed_out_in_backlog
     << ",\"failed\":" << failed
     << ",\"shed\":" << shed << ",\"latency_mean\":" << latency_mean
     << ",\"latency_p50\":" << latency_p50
     << ",\"latency_p95\":" << latency_p95
     << ",\"latency_p99\":" << latency_p99
     << ",\"achieved_qps\":" << achieved_qps
     << ",\"admit_limit\":" << admit_limit
     << ",\"in_flight_high_water\":" << in_flight_high_water
     << ",\"backlog_high_water\":" << backlog_high_water
     << ",\"retransmits\":" << retransmits
     << ",\"failovers\":" << failovers
     << ",\"mirror_failovers\":" << mirror_failovers
     << ",\"live_peers\":" << live_peers
     << ",\"scan_skew_max_over_mean\":" << scan_skew_max_over_mean
     << ",\"scans_per_peer\":{";
  bool first = true;
  for (const auto& [peer, n] : scans_per_peer.bins()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << peer << "\":" << n;
  }
  os << "}}";
  return os.str();
}

}  // namespace hkws::engine
