#include "engine/load_driver.hpp"

#include <utility>

namespace hkws::engine {

LoadDriver::LoadDriver(QueryEngine& engine, sim::EventQueue& clock,
                       std::vector<sim::EndpointId> searchers)
    : engine_(engine), clock_(clock), searchers_(std::move(searchers)) {}

LoadDriver::~LoadDriver() {
  if (timer_ != 0) clock_.cancel_timer(timer_);
}

void LoadDriver::start(const workload::QueryLog& log,
                       workload::ArrivalProcess& arrivals) {
  if (timer_ != 0) clock_.cancel_timer(timer_);
  log_ = &log;
  arrivals_ = &arrivals;
  position_ = 0;
  timer_ = 0;
  if (log.size() == 0) {
    log_ = nullptr;
    return;
  }
  arm_next();
}

void LoadDriver::arm_next() {
  const workload::Ticks gap = arrivals_->next_gap();
  timer_ = clock_.set_timer(static_cast<sim::Time>(gap), [this] { fire(); });
}

void LoadDriver::fire() {
  timer_ = 0;
  const workload::Query& q = (*log_)[position_];
  const sim::EndpointId searcher =
      searchers_[position_ % searchers_.size()];
  ++position_;
  // Open loop: the next arrival is armed before (and regardless of) how the
  // engine handles this one.
  if (position_ < log_->size())
    arm_next();
  else
    log_ = nullptr;
  engine_.submit(searcher, q.keywords);
}

}  // namespace hkws::engine
