// QueryEngine — the concurrent query-serving runtime. It sits on top of
// index::KeywordSearchService and turns the one-shot search API into a
// server: many overlapping searches in flight, admission control in front,
// deadlines behind, and SLO accounting throughout.
//
//   submit() ──► admission ──► in-flight search ──► completion record
//                  │  ▲              │
//                  ▼  └── pump ◄─────┤ (slot freed)
//               backlog              ▼
//             (FIFO/priority)   deadline timer ──► cancel + kTimedOut
//
// Semantics:
//  * At most max_in_flight searches run concurrently; excess submissions
//    wait in a bounded backlog (FIFO or priority order) and are *shed*
//    (rejected immediately, outcome kShed) when the backlog is full.
//  * A query's deadline is measured from submission, not admission — time
//    spent queued burns budget, so an overloaded server times queries out
//    instead of serving arbitrarily stale answers. On expiry the in-flight
//    search is cancelled (OverlayIndex sends T_STOP) and the query is
//    recorded as kTimedOut; a query whose deadline passed while still
//    queued is timed out at pop without ever touching the network.
//  * Loss recovery (timeout/retransmission of protocol messages) lives in
//    the index layer; the engine selects it via the service Options and
//    surfaces the retransmission totals in its report.
//  * Observability: a per-query trace (submit/admit/root/level/scan/…,
//    timestamped), engine-level latency series (optionally reservoir-
//    sampled), and an EngineReport with p50/p95/p99, achieved QPS, shed /
//    timeout / retry counts and the per-peer scan-load histogram.
//
// Single-threaded by construction: everything runs as events on the one
// sim::EventQueue, so no locking — but the engine is re-entrant-safe in the
// sense that completion callbacks may submit new queries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "index/service.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace hkws::obs {
class Tracer;
class WindowedMetrics;
}

namespace hkws::engine {

/// How a submitted query left the engine.
enum class QueryOutcome {
  kCompleted,  ///< search finished within the deadline, fully served
  kDegraded,   ///< answered, but via failover / partial coverage (results
               ///< may be incomplete; see SearchStats::degraded)
  kTimedOut,   ///< deadline expired (in backlog or in flight)
  kFailed,     ///< protocol gave up (retransmission budget exhausted)
  kShed,       ///< rejected at admission: backlog full
};

const char* to_string(QueryOutcome outcome) noexcept;

/// Order of the admission backlog.
enum class BacklogPolicy {
  kFifo,      ///< arrival order
  kPriority,  ///< highest priority first, FIFO within a priority
};

/// AIMD controller for the admission limits. Instead of a fixed in-flight
/// cap, the engine tracks a floating limit: completions whose *service*
/// latency (finished - admitted; queue wait excluded — waiting is an
/// under-provisioning signal, not an over-concurrency one) lands under the
/// target grow the limit, while in-flight deadline expiries and over-target
/// completions shrink it multiplicatively (rate-limited to one decrease per
/// target interval, so a burst of simultaneous timeouts costs one halving,
/// not a collapse to the floor). Growth is slow-start-style (+increase per
/// good completion) until the first decrease, then classic congestion
/// avoidance (+increase/limit). The backlog bound scales with the limit.
/// See docs/TUNING.md for the knob guide.
struct AdaptiveAdmission {
  bool enabled = false;
  /// Floor/ceiling of the floating in-flight limit.
  std::size_t min_in_flight = 4;
  std::size_t max_in_flight = 4096;
  /// Additive step per good completion (divided by the current limit once
  /// out of slow start).
  double increase = 1.0;
  /// Multiplicative factor applied on an overload signal.
  double decrease = 0.5;
  /// Service-latency target as a fraction of the deadline; used when
  /// latency_target is 0 and a deadline is set.
  double headroom = 0.5;
  /// Explicit service-latency target in ticks (overrides headroom).
  sim::Time latency_target = 0;
  /// Adaptive backlog bound = max(max_backlog, backlog_per_slot * limit).
  double backlog_per_slot = 8.0;
};

struct EngineConfig {
  /// Concurrent searches allowed on the wire. With adaptive admission
  /// enabled this is only the controller's starting point.
  std::size_t max_in_flight = 64;
  /// Queued submissions allowed beyond that; the next one is shed. With
  /// adaptive admission enabled this is the backlog bound's floor.
  std::size_t max_backlog = 1024;
  /// Floating-limit admission control; disabled = fixed limits above.
  AdaptiveAdmission adaptive;
  /// Per-query deadline in ticks from submission; 0 = none.
  sim::Time deadline = 0;
  BacklogPolicy policy = BacklogPolicy::kFifo;
  /// Options forwarded to every KeywordSearchService::search call.
  index::KeywordSearchService::SearchOptions search;
  /// Reservoir cap for the engine's latency series (0 = keep everything).
  std::size_t latency_reservoir = 0;
  /// Record the per-query protocol trace (root/level/scan milestones).
  bool record_traces = true;
  /// Optional span tracer (not owned, may be null): each query becomes a
  /// "query" span with "backlog"/"root_lookup"/"level" child spans and
  /// "scan"/"retransmit" instants — see docs/OBSERVABILITY.md.
  obs::Tracer* tracer = nullptr;
  /// Optional windowed time-series sink (not owned, may be null): per-window
  /// submitted/completed/shed/... counts, latency quantiles, and
  /// in-flight/backlog gauges.
  obs::WindowedMetrics* windows = nullptr;
};

/// One timestamped milestone in a query's life.
struct TracePoint {
  sim::Time at = 0;
  /// "submit", "admit", "shed", "root", "level", "scan", "retransmit",
  /// "failed", "complete", "timeout" — see docs/ENGINE.md.
  const char* point = "";
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Everything the engine remembers about one finished query.
struct QueryRecord {
  std::uint64_t id = 0;        ///< engine-assigned, dense from 1
  QueryOutcome outcome = QueryOutcome::kCompleted;
  int priority = 0;
  sim::Time submitted = 0;
  sim::Time admitted = 0;      ///< == submitted unless it waited; 0 if shed
  sim::Time finished = 0;      ///< completion/timeout/shed time
  std::size_t hits = 0;        ///< results delivered (post-ranking)
  index::SearchStats stats;    ///< protocol cost of the search
  std::vector<TracePoint> trace;

  /// End-to-end latency (finished - submitted).
  sim::Time latency() const noexcept { return finished - submitted; }
  /// Admission delay (admitted - submitted).
  sim::Time queue_wait() const noexcept {
    return admitted >= submitted ? admitted - submitted : 0;
  }
};

/// Aggregate serving report over the engine's lifetime.
struct EngineReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Served, but degraded: the search failed over to a surrogate owner or
  /// a single cube of a mirrored pair, so results may be incomplete.
  /// Disjoint from `completed` and from the failure buckets below —
  /// deadline misses (timed_out), protocol give-ups (failed), and
  /// admission rejections (shed) each stay separately accounted.
  std::uint64_t degraded = 0;
  std::uint64_t timed_out = 0;
  /// Of the timed_out, how many expired while still queued (never launched).
  std::uint64_t timed_out_in_backlog = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  /// Latency stats over *served* (completed + degraded) queries, in ticks.
  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  /// Completions per kilotick (= QPS at 1 tick = 1 ms), measured from the
  /// first submission to the last completion.
  double achieved_qps = 0.0;
  std::size_t in_flight_high_water = 0;
  std::size_t backlog_high_water = 0;
  /// In-flight limit at report time (the AIMD limit when adaptive admission
  /// is on; the fixed max_in_flight otherwise).
  std::size_t admit_limit = 0;
  /// Protocol-message retransmissions across all queries.
  std::uint64_t retransmits = 0;
  /// Mid-query failovers (stale contact re-routes, surrogate-root
  /// re-resolutions, dead-origin batch write-offs) across all queries.
  std::uint64_t failovers = 0;
  /// Mirrored deployments: searches one cube failed and the other served
  /// alone (primary-miss -> mirror-hit and converse).
  std::uint64_t mirror_failovers = 0;
  /// T_QUERY scans served per peer (the per-node serving-load histogram).
  /// Peers that served nothing do not appear as bins but still count in
  /// `live_peers` and the skew denominator below.
  Histogram scans_per_peer;
  /// Live peers in the overlay at report time — the denominator for the
  /// scan-load mean. The histogram alone under-reports imbalance: idle
  /// peers never get a bin, so a mean over bins flattens the very skew
  /// this report exists to expose.
  std::size_t live_peers = 0;
  /// Serving-load imbalance: max scans on any one peer over the mean across
  /// *all* live peers (1.0 = perfectly balanced). 0 when nothing scanned.
  double scan_skew_max_over_mean = 0.0;

  std::string to_string() const;
  std::string to_json() const;  ///< single JSON object, machine-readable
};

class QueryEngine {
 public:
  using CompletionFn = std::function<void(const QueryRecord&)>;

  QueryEngine(index::KeywordSearchService& service, sim::EventQueue& clock,
              EngineConfig cfg);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Submits one query from `searcher`. Returns the engine query id; the
  /// outcome lands in records() (and the completion hook) when known.
  /// Sheds synchronously if the engine is saturated.
  std::uint64_t submit(sim::EndpointId searcher,
                       const KeywordSet& query, int priority = 0);

  /// Optional per-query completion hook (any outcome, including shed).
  void set_on_finished(CompletionFn fn) { on_finished_ = std::move(fn); }

  // --- Introspection --------------------------------------------------------

  std::size_t in_flight() const noexcept { return active_.size(); }
  std::size_t backlog() const noexcept { return backlog_.size(); }
  /// Current admission bounds (floating when adaptive admission is on).
  std::size_t in_flight_limit() const noexcept;
  std::size_t backlog_limit() const noexcept;
  /// Finished queries, in finish order.
  const std::vector<QueryRecord>& records() const noexcept { return records_; }
  /// The engine's own metrics (latency series "engine.latency", counters).
  const sim::Metrics& metrics() const noexcept { return metrics_; }

  /// Snapshot report over everything finished so far.
  EngineReport report() const;

 private:
  struct Waiting {
    std::uint64_t id = 0;
    sim::EndpointId searcher = 0;
    KeywordSet query;
  };
  struct Active {
    std::uint64_t ticket = 0;  ///< service ticket (cancel handle)
    sim::EventQueue::TimerId deadline_timer = 0;
  };

  /// Starts the search for a pending record (must have a free slot).
  void launch(std::uint64_t id, sim::EndpointId searcher,
              const KeywordSet& query);
  /// Admits from the backlog while slots are free.
  void pump();
  /// Pops the next backlog entry per policy.
  Waiting pop_backlog();
  void on_answer(std::uint64_t id,
                 const index::KeywordSearchService::Answer& answer);
  void on_deadline(std::uint64_t id);
  /// Times out backlog entries whose deadline already passed. Lazy: called
  /// only when the backlog bound is hit (amortized O(1)) and at pop — but
  /// correct: sealed with the *true* expiry time, and never counted as shed.
  void expire_stale_backlog();
  /// Refreshes high-water marks and windowed gauges after any
  /// in-flight/backlog/limit transition.
  void sync_gauges();
  /// AIMD hooks (no-ops unless cfg_.adaptive.enabled).
  void adapt_on_completion(sim::Time service_latency);
  void adapt_on_overload();
  sim::Time adapt_target() const noexcept;
  /// Moves a pending record to records_ with the given outcome, finishing
  /// at `finished_at` (backlog expiries backdate to the true deadline).
  void seal(std::uint64_t id, QueryOutcome outcome, sim::Time finished_at);
  void seal(std::uint64_t id, QueryOutcome outcome);
  void on_trace(const index::OverlayIndex::Trace& t);
  void note(std::uint64_t id, const char* point, std::uint64_t a = 0,
            std::uint64_t b = 0);
  /// Converts one protocol trace point into tracer span/instant events.
  void emit_span(std::uint64_t id, const char* point, std::uint64_t a,
                 std::uint64_t b);

  index::KeywordSearchService& service_;
  sim::EventQueue& clock_;
  EngineConfig cfg_;
  CompletionFn on_finished_;

  std::uint64_t next_id_ = 1;
  /// Records of queries not yet finished (backlogged or in flight).
  std::unordered_map<std::uint64_t, QueryRecord> pending_;
  std::unordered_map<std::uint64_t, Active> active_;
  std::deque<Waiting> backlog_;
  /// Service ticket -> engine id, for trace attribution.
  std::unordered_map<std::uint64_t, std::uint64_t> by_ticket_;
  std::vector<QueryRecord> records_;
  sim::Metrics metrics_;
  Histogram scans_per_peer_;
  std::size_t in_flight_high_water_ = 0;
  std::size_t backlog_high_water_ = 0;
  sim::Time first_submit_ = 0;
  bool any_submit_ = false;
  sim::Time last_finish_ = 0;
  bool pumping_ = false;  ///< re-entrancy guard for pump()
  // AIMD state (meaningful only with cfg_.adaptive.enabled).
  double limit_ = 0.0;          ///< floating in-flight limit
  bool slow_start_ = true;      ///< fast additive ramp until first decrease
  sim::Time last_decrease_ = 0; ///< decrease rate-limit anchor
  bool any_decrease_ = false;
};

}  // namespace hkws::engine
