#include "torture/fault_plan.hpp"

#include <array>
#include <sstream>

#include "common/hash.hpp"

namespace hkws::torture {

namespace {
/// Stream salt keeping plan randomness independent of workload randomness
/// derived from the same scenario seed.
constexpr std::uint64_t kPlanSalt = 0xfa017a9bc4e1d2f3ULL;
}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kFailPeer: return "fail-peer";
    case FaultKind::kPartition: return "partition";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::ostringstream out;
  out << torture::to_string(kind);
  switch (kind) {
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
      out << " @wire " << target;
      break;
    case FaultKind::kDelay:
      out << " @wire " << target << " +" << arg << " ticks";
      break;
    case FaultKind::kFailPeer:
      out << " @round " << target << " victim#" << arg;
      break;
    case FaultKind::kPartition:
      out << " @wire " << target << " span " << partition_span(arg)
          << " bit " << partition_bit(arg);
      break;
  }
  return out.str();
}

namespace {
constexpr std::uint64_t kSpanMask = (1ULL << 48) - 1;
constexpr unsigned kBitShift = 48;
constexpr unsigned kBitMask = 0x3f;
}  // namespace

std::uint64_t FaultEvent::pack_partition(std::uint64_t span, unsigned bit) {
  return (span & kSpanMask) |
         (static_cast<std::uint64_t>(bit & kBitMask) << kBitShift);
}

std::uint64_t FaultEvent::partition_span(std::uint64_t arg) {
  return arg & kSpanMask;
}

unsigned FaultEvent::partition_bit(std::uint64_t arg) {
  return static_cast<unsigned>((arg >> kBitShift) & kBitMask);
}

bool partition_side(sim::EndpointId ep, unsigned bit) {
  return ((mix64(static_cast<std::uint64_t>(ep)) >> (bit & kBitMask)) & 1) !=
         0;
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed,
                               const FaultPlanConfig& cfg) {
  FaultPlan plan;
  Rng rng(mix64(seed ^ kPlanSalt));

  std::vector<FaultKind> menu;
  if (cfg.allow_drops) menu.push_back(FaultKind::kDrop);
  if (cfg.allow_dups) menu.push_back(FaultKind::kDuplicate);
  if (cfg.allow_delays) menu.push_back(FaultKind::kDelay);
  if (!menu.empty()) {
    const std::size_t n = cfg.max_events == 0
                              ? 0
                              : 1 + rng.next_below(cfg.max_events);
    for (std::size_t i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.kind = menu[rng.next_below(menu.size())];
      ev.target = rng.next_below(cfg.horizon);
      if (ev.kind == FaultKind::kDelay)
        ev.arg = 1 + rng.next_below(cfg.max_delay);
      plan.events.push_back(ev);
    }
  }
  for (std::size_t i = 0; i < cfg.peer_failures; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kFailPeer;
    ev.target = rng.next_below(cfg.rounds == 0 ? 1 : cfg.rounds);
    ev.arg = rng.next_below(64);
    plan.events.push_back(ev);
  }
  for (std::size_t i = 0; i < cfg.partitions; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kPartition;
    ev.target = rng.next_below(cfg.horizon);
    const std::uint64_t span =
        1 + rng.next_below(cfg.max_partition_span == 0
                               ? 1
                               : cfg.max_partition_span);
    const unsigned bit = static_cast<unsigned>(rng.next_below(8));
    ev.arg = FaultEvent::pack_partition(span, bit);
    plan.events.push_back(ev);
  }
  return plan;
}

std::size_t FaultPlan::count(FaultKind kind) const {
  std::size_t n = 0;
  for (const FaultEvent& ev : events)
    if (ev.kind == kind) ++n;
  return n;
}

std::string FaultPlan::to_string() const {
  if (events.empty()) return "(no faults)\n";
  std::ostringstream out;
  for (const FaultEvent& ev : events) out << ev.to_string() << "\n";
  return out.str();
}

bool lossable(const std::string& kind) {
  // Exactly the steps the OverlayIndex retransmission layer guards — the
  // routed/direct T_QUERY, the coalesced VisitBatch round (its merged
  // results and control reply included: per-node step timers cover every
  // node of a lost batch, and the retransmit path replays each memoized
  // scan individually), the T_CONT/T_STOP control replies, result-batch
  // delivery, and the final done notification — plus the maintenance
  // plane's heartbeats, which tolerate loss by design (a dropped ping or
  // ack costs one suspicion round; confirmation needs consecutive misses).
  // Everything else (DHT routing and maintenance, publish/withdraw, pin,
  // cumulative sessions, HyperCuP tree forwarding) has no retransmission
  // and must not be dropped.
  static const std::array<const char*, 10> kinds = {
      "kws.t_query", "kws.t_cont", "kws.t_stop",
      "kws.results", "kws.done",   "kws.visit_batch",
      "kws.batch_results", "kws.batch_reply",
      "maint.ping",  "maint.ack"};
  for (const char* k : kinds)
    if (kind == k) return true;
  return false;
}

FaultInjector::FaultInjector(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events) {
    switch (ev.kind) {
      case FaultKind::kDrop:
        by_seq_[ev.target].drop = true;
        break;
      case FaultKind::kDuplicate:
        ++by_seq_[ev.target].duplicates;
        break;
      case FaultKind::kDelay:
        by_seq_[ev.target].extra_delay += static_cast<sim::Time>(ev.arg);
        break;
      case FaultKind::kFailPeer:
        break;  // executed by the ScenarioRunner, not on the wire
      case FaultKind::kPartition:
        partitions_.push_back(
            {ev.target, ev.target + FaultEvent::partition_span(ev.arg),
             FaultEvent::partition_bit(ev.arg)});
        break;
    }
  }
}

sim::FaultActions FaultInjector::inspect(sim::EndpointId from,
                                         sim::EndpointId to,
                                         const std::string& kind,
                                         std::uint64_t seq, Rng&) {
  sim::FaultActions actions;
  if (!seen_any_) {
    seen_any_ = true;
    base_seq_ = seq;
  }
  const std::uint64_t rel = seq - base_seq_;
  const bool tolerant = lossable(kind);
  // Partition windows: while `rel` sits inside an active cut, every
  // loss-tolerant message crossing the bisection is dropped, in both
  // directions. Non-tolerant kinds pass: the protocol's availability
  // claim is that loss-tolerant steps survive partitions, not that
  // un-guarded traffic does.
  if (tolerant) {
    for (const Partition& p : partitions_) {
      if (rel < p.start || rel >= p.end) continue;
      if (partition_side(from, p.bit) == partition_side(to, p.bit)) continue;
      actions.drop = true;
      ++partition_cuts_;
      ++applied_;
      break;
    }
  }
  const auto it = by_seq_.find(rel);
  if (it == by_seq_.end()) return actions;
  const Planned& p = it->second;
  if (p.drop && tolerant) actions.drop = true;
  if (p.duplicates != 0 && tolerant) actions.duplicates = p.duplicates;
  actions.extra_delay = p.extra_delay;
  if (actions.drop || actions.duplicates != 0 || actions.extra_delay != 0)
    ++applied_;
  return actions;
}

}  // namespace hkws::torture
