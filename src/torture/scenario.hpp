// Seed-driven protocol torture scenarios with differential oracles.
//
// One scenario = one deployment x one search strategy x one seed. The
// runner replays a randomized workload (publish / withdraw / pin /
// superset / cancel / cumulative-browse interleavings) against the chosen
// deployment while a FaultPlan injects message faults and peer failures,
// and checks a battery of invariants against a lossless in-memory oracle:
//
//  * oracle          — exhaustive searches return exactly the objects whose
//                      keyword sets contain the query, hit payloads carry
//                      the true keyword sets, thresholded searches return at
//                      least min(t, |O_K|) true matches, never a false one
//  * ranking         — ordering hits by extra-keyword count is monotone and
//                      preserves the hit multiset
//  * timers          — the instant the last outstanding operation completes,
//                      no protocol timer is live and no request state leaks
//                      (every terminal transition cancelled its timers)
//  * cancel          — a successfully cancelled search never invokes its
//                      callback
//  * hang            — the event queue drains while operations are still
//                      outstanding (a lost step nobody retransmitted)
//  * conservation    — wire accounting closes: messages == delivered + lost
//  * occupancy       — index-table occupancy equals the oracle's live set
//
// The workload op stream is generated from its own Rng stream in issuance
// order, so it is identical under every fault schedule — which is what
// makes greedy schedule shrinking (shrink.hpp) meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/search_types.hpp"
#include "torture/fault_plan.hpp"

namespace hkws::obs {
class Tracer;
}

namespace hkws::torture {

enum class Deployment : std::uint8_t {
  kDirect,      ///< LogicalIndex, in-process (the serial reference itself)
  kChord,       ///< OverlayIndex over Chord, loss-tolerant protocol
  kPastry,      ///< OverlayIndex over Pastry, loss-tolerant protocol
  kHyperCup,    ///< HyperCupIndex tree forwarding (delay faults only)
  kMirrored,    ///< MirroredIndex (dual cubes) over Chord
  kDecomposed,  ///< DecomposedIndex (grouped cubes), in-process
};

/// Execution substrate the scenario runs on. kSim is the deterministic
/// discrete-event simulator (sim::Network); kTcp and kUdp are the real
/// runtime: a net::SocketTransport over loopback sockets — TCP streams or
/// UDP datagrams (one envelope frame per datagram, where a frame can
/// genuinely vanish on the wire) — wrapped in net::FaultTransport so the
/// same seeded FaultPlan (drops, dups, delays, partitions) applies below
/// the protocol. The invariant battery is identical on all three; on the
/// socket backends the fault schedule still derives from the seed but
/// message *order* is wall-clock real, so the invariants are exercised
/// against genuine concurrency rather than replayed event order. Supported
/// for the chord, pastry and mirrored deployments; the others ignore the
/// field and run on the simulator (direct/decomposed have no wire at all,
/// hypercup's delay-only envelope adds nothing over the sim run).
enum class Backend : std::uint8_t {
  kSim,
  kTcp,
  kUdp,
};

const char* to_string(Deployment d);
const char* to_string(index::SearchStrategy s);
const char* to_string(Backend b);

/// True if the deployment exchanges simulated network messages (and can
/// therefore be fault-injected at all).
bool networked(Deployment d);

struct ScenarioConfig {
  std::uint64_t seed = 1;
  Deployment deployment = Deployment::kChord;
  index::SearchStrategy strategy = index::SearchStrategy::kTopDownSequential;
  /// Sized from the seed by from_seed():
  std::size_t peers = 16;    ///< DHT deployments
  int r = 5;                 ///< hypercube dimension
  std::size_t objects = 40;  ///< initial corpus size
  std::size_t vocab = 14;    ///< keyword vocabulary size
  std::size_t rounds = 4;    ///< mutate+search rounds
  std::size_t searches_per_round = 6;
  std::size_t mutations_per_round = 4;
  std::size_t cache_capacity = 0;  ///< per-node query-cache records
  bool churn = false;              ///< honor kFailPeer events (Chord only)
  /// Continuous churn: kFailPeer events are kill-only — no oracle-driven
  /// instant repair. A MaintenancePlane (heartbeat failure detection +
  /// budgeted background repair) runs on the same event queue and must
  /// detect and heal each failure while serving continues; mid-churn
  /// search checks are relaxed to soundness (no false positives, no
  /// duplicates, correct payloads), and strict completeness is re-checked
  /// by post-convergence verification searches. Mirrored deployment only.
  bool continuous_churn = false;
  /// With continuous_churn: run the maintenance plane (true) or leave the
  /// failures unrepaired (false — the control that shows the invariants
  /// break without the plane).
  bool self_healing = true;
  /// Convergence invariant: after the last fault, the plane must report
  /// converged() within this many 100-tick repair windows.
  std::size_t convergence_budget = 80;
  /// Hot-spot workload: the recurring-query share rises to 0.85, so a few
  /// keyword cells absorb most T_QUERY scans — the query-side load skew
  /// the hot-cell replication machinery exists to flatten (Chord only).
  bool hot_spot = false;
  /// With hot_spot: run popularity-aware hot-cell replication (true), or
  /// leave it off (false — the control that shows the load-balance
  /// invariant break without the feature).
  bool hot_replication = true;
  /// Load-balance invariant (0 = off): max per-peer scan count divided by
  /// the mean over all live peers must stay at or below this after the run.
  double max_scan_skew = 0.0;
  /// Execution substrate (see Backend). Only chord/pastry/mirrored honor
  /// the socket backends; the rest always run on the simulator.
  Backend backend = Backend::kSim;
  /// Overlay step retransmission (chord/pastry/mirrored). Off, a single
  /// dropped step message strands its search forever — which is precisely
  /// what the harness's hang invariant must catch. The meta-test that
  /// proves FaultTransport-injected loss over real sockets is *observable*
  /// runs with this off; every normal scenario keeps it on.
  bool retransmission = true;
  FaultPlanConfig faults;

  /// Fills the size knobs from the seed and adapts the fault envelope to
  /// the deployment (drops/dups only where the protocol tolerates them,
  /// churn only where the repair recipe exists).
  static ScenarioConfig from_seed(std::uint64_t seed, Deployment d,
                                  index::SearchStrategy s);

  /// Continuous-churn preset: mirrored deployment, several mid-run peer
  /// kills, self-healing enabled. The scenario passes only if the
  /// maintenance plane detects every failure and restores all invariants
  /// (occupancy, replication, search completeness, conservation) within
  /// the convergence budget.
  static ScenarioConfig churn_preset(std::uint64_t seed);

  /// Hot-spot preset: Chord deployment, zipf-like recurring-query skew,
  /// mid-run peer kills, hot-cell replication on, and the load-balance
  /// invariant armed. Lossless by construction: the owner->replica root
  /// handoff is a single unguarded hop, so drop/dup faults are excluded
  /// (delays stay). The replication-off control run must trip the
  /// load_balance invariant; the feature run must pass everything.
  static ScenarioConfig hot_spot_preset(std::uint64_t seed);

  std::string to_string() const;
};

struct Violation {
  std::string invariant;  ///< "oracle", "ranking", "timers", ...
  std::string detail;
};

struct ScenarioReport {
  ScenarioConfig config;
  FaultPlan plan;
  std::vector<Violation> violations;
  std::size_t searches = 0;
  std::size_t mutations = 0;
  std::size_t cancels = 0;
  std::uint64_t faults_applied = 0;

  bool ok() const noexcept { return violations.empty(); }
  /// Seed + config + fault schedule + violations, ready to paste into a
  /// bug report (and into `tools/torture --seed N` for replay).
  std::string to_string() const;
};

class ScenarioRunner {
 public:
  /// Runs one scenario under the plan derived from cfg.seed.
  ScenarioReport run(const ScenarioConfig& cfg);

  /// Runs one scenario under an explicit plan (schedule shrinking).
  ScenarioReport run(const ScenarioConfig& cfg, const FaultPlan& plan);

  /// Installs a span tracer (nullptr to remove; not owned, must outlive
  /// run()): each round becomes a "round" span on the global track with
  /// publish/withdraw/search/cancel instants inside, and networked
  /// deployments additionally trace every wire send. Timestamps are
  /// sim-time for networked deployments and 0 for in-process ones.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace hkws::torture
