// Deterministic fault schedules for the protocol torture harness.
//
// A FaultPlan is a small list of fault events — message drops, duplications,
// delay spikes, and abrupt peer failures — derived from a single 64-bit seed
// via the repo's own Rng. Message faults target *wire sequence numbers* (the
// deterministic numbering sim::Network assigns to every non-local send), so
// replaying the same plan against the same scenario reproduces the same run
// bit-for-bit; peer-failure events target workload round boundaries.
//
// Soundness rule: drops and duplications are applied only to message kinds
// in the loss-tolerant subset of the superset-search protocol (guarded by
// per-step timeouts, idempotent retransmission, and dedup — see
// docs/ENGINE.md). Dropping anything else (DHT routing, publishes, HyperCuP
// tree forwarding, cumulative-session traffic) is not tolerated by design
// and would fail the differential oracle for reasons the paper's protocol
// never promises to survive. Delay spikes are safe on every kind.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"

namespace hkws::torture {

enum class FaultKind : std::uint8_t {
  kDrop,       ///< lose one wire message (loss-tolerant kinds only)
  kDuplicate,  ///< deliver one extra copy (loss-tolerant kinds only)
  kDelay,      ///< add a latency spike (any kind; reorders traffic)
  kFailPeer,   ///< abrupt peer failure at a workload round boundary
  kPartition,  ///< bidirectional endpoint-set cut over a wire-seq window
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  /// kDrop/kDuplicate/kDelay: the wire sequence number to hit.
  /// kFailPeer: the 0-based workload round before which the peer dies.
  /// kPartition: the wire sequence number at which the cut starts.
  std::uint64_t target = 0;
  /// kDelay: extra one-way latency in ticks. kFailPeer: victim ordinal
  /// (mapped onto the live peer set at execution time). kPartition: cut
  /// span in wire sequence numbers (low 48 bits) plus the bisection bit
  /// index (bits 48..53) — see partition_sides(). Unused otherwise.
  std::uint64_t arg = 0;

  std::string to_string() const;

  /// Packs / unpacks a kPartition arg. `span` is how many wire sequence
  /// numbers the cut stays up for (the cut heals at target + span); `bit`
  /// selects which bit of the endpoint-id hash bisects the network.
  static std::uint64_t pack_partition(std::uint64_t span, unsigned bit);
  static std::uint64_t partition_span(std::uint64_t arg);
  static unsigned partition_bit(std::uint64_t arg);
};

/// Which side of a partition an endpoint falls on: bit `bit` of the mixed
/// endpoint id. Hashing (rather than raw id parity) makes the two sides a
/// pseudo-random bisection that is still a pure function of the endpoint,
/// so sim and TCP backends cut the identical sets for the same plan.
bool partition_side(sim::EndpointId ep, unsigned bit);

/// Knobs for seed-derived plan generation. The defaults suit the DHT
/// deployments; delay-only plans (HyperCuP, cumulative-heavy runs) switch
/// off drops and duplicates.
struct FaultPlanConfig {
  bool allow_drops = true;
  bool allow_dups = true;
  bool allow_delays = true;
  std::size_t peer_failures = 0;  ///< kFailPeer events to schedule
  std::size_t max_events = 24;    ///< message-fault events per plan
  /// kPartition events to schedule. Each cuts the endpoint set in two for
  /// a window of wire sequence numbers, dropping every loss-tolerant
  /// message that crosses the cut in either direction, then heals.
  std::size_t partitions = 0;
  std::uint64_t max_partition_span = 800;  ///< cut length upper bound
  /// Wire-sequence horizon message faults are drawn from. Targets past the
  /// run's actual traffic simply never fire — harmless.
  std::uint64_t horizon = 6000;
  sim::Time max_delay = 400;  ///< delay spikes are 1..max_delay ticks
  std::size_t rounds = 4;     ///< workload rounds peer failures spread over
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Derives a plan from `seed` (stream-separated from the workload and
  /// network seeds by fixed salts, so the three never alias).
  static FaultPlan from_seed(std::uint64_t seed, const FaultPlanConfig& cfg);

  /// Number of events of the given kind.
  std::size_t count(FaultKind kind) const;

  /// One event per line, e.g. "drop @wire 1207".
  std::string to_string() const;
};

/// True for message kinds the loss-tolerant search protocol may lose or
/// receive twice without violating its exactness guarantee.
bool lossable(const std::string& kind);

/// sim::FaultModel that executes a FaultPlan's message events. Multiple
/// events aimed at the same wire sequence number compose (e.g. duplicate +
/// delay); a drop wins over everything else.
///
/// Plan targets are interpreted *relative to the first message the injector
/// inspects*: the harness installs the injector after overlay construction,
/// so target 0 is the first workload message regardless of how much wire
/// traffic setup consumed. Replay stays bit-identical because setup traffic
/// is itself deterministic.
class FaultInjector final : public sim::FaultModel {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  sim::FaultActions inspect(sim::EndpointId from, sim::EndpointId to,
                            const std::string& kind, std::uint64_t seq,
                            Rng& rng) override;

  /// Message-fault events that actually hit a message this run.
  std::uint64_t applied() const noexcept { return applied_; }

  /// Messages dropped because they crossed an active partition cut.
  std::uint64_t partition_cuts() const noexcept { return partition_cuts_; }

 private:
  struct Planned {
    bool drop = false;
    std::uint32_t duplicates = 0;
    sim::Time extra_delay = 0;
  };
  struct Partition {
    std::uint64_t start = 0;  ///< relative wire seq the cut begins at
    std::uint64_t end = 0;    ///< relative wire seq the cut heals at
    unsigned bit = 0;         ///< endpoint-hash bisection bit
  };
  std::unordered_map<std::uint64_t, Planned> by_seq_;
  std::vector<Partition> partitions_;
  std::uint64_t applied_ = 0;
  std::uint64_t partition_cuts_ = 0;
  bool seen_any_ = false;
  std::uint64_t base_seq_ = 0;  ///< wire seq of the first inspected message
};

}  // namespace hkws::torture
