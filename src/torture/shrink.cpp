#include "torture/shrink.hpp"

#include <algorithm>

namespace hkws::torture {

ShrinkResult shrink_plan(ScenarioRunner& runner, const ScenarioConfig& cfg,
                         const FaultPlan& plan) {
  ShrinkResult result;
  result.plan = plan;
  result.report = runner.run(cfg, plan);
  ++result.runs;
  if (result.report.ok()) return result;  // nothing to shrink

  // Greedy chunk removal: for each chunk size from n/2 down to 1, sweep the
  // event list and drop every chunk whose removal keeps the failure alive.
  bool progress = true;
  while (progress && !result.plan.events.empty()) {
    progress = false;
    for (std::size_t chunk = std::max<std::size_t>(
             1, result.plan.events.size() / 2);
         ; chunk /= 2) {
      for (std::size_t begin = 0; begin < result.plan.events.size();) {
        FaultPlan candidate;
        candidate.events.reserve(result.plan.events.size());
        const std::size_t end =
            std::min(begin + chunk, result.plan.events.size());
        for (std::size_t i = 0; i < result.plan.events.size(); ++i)
          if (i < begin || i >= end)
            candidate.events.push_back(result.plan.events[i]);
        const ScenarioReport rep = runner.run(cfg, candidate);
        ++result.runs;
        if (!rep.ok()) {
          result.plan = std::move(candidate);
          result.report = rep;
          progress = true;
          // Re-test the same position: the next chunk slid into it.
        } else {
          begin = end;
        }
      }
      if (chunk == 1) break;
    }
  }
  return result;
}

}  // namespace hkws::torture
