// Greedy fault-schedule minimization (ddmin-lite).
//
// Given a scenario that fails under a fault plan, repeatedly re-runs the
// scenario with subsets of the plan's events and keeps any removal that
// still reproduces a violation. Because the workload op stream is generated
// independently of the fault schedule (see scenario.hpp), removing events
// does not perturb the workload — only the faults — so the surviving events
// are exactly the ones the failure needs.
#pragma once

#include <cstddef>

#include "torture/scenario.hpp"

namespace hkws::torture {

struct ShrinkResult {
  FaultPlan plan;          ///< minimized schedule (still failing)
  ScenarioReport report;   ///< report of the final failing run
  std::size_t runs = 0;    ///< scenario re-executions spent shrinking
};

/// Minimizes `plan` for a scenario known to fail under it. Tries removing
/// progressively smaller chunks of the event list (halves, quarters, ...,
/// single events), keeping each removal that still yields a violation.
/// If the scenario does not actually fail under `plan`, returns it
/// unchanged with the (passing) report.
ShrinkResult shrink_plan(ScenarioRunner& runner, const ScenarioConfig& cfg,
                         const FaultPlan& plan);

}  // namespace hkws::torture
