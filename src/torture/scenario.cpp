#include "torture/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "cubenet/hypercup_index.hpp"
#include "cubenet/hypercup_network.hpp"
#include "dht/chord_network.hpp"
#include "dht/dolr.hpp"
#include "dht/pastry_network.hpp"
#include "index/decomposed.hpp"
#include "index/logical_index.hpp"
#include "index/mirrored.hpp"
#include "index/overlay_index.hpp"
#include "index/ranking.hpp"
#include "maint/maintenance.hpp"
#include "net/fault_transport.hpp"
#include "net/tcp_transport.hpp"
#include "net/udp_transport.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"

namespace hkws::torture {

namespace {

using index::Hit;
using index::SearchResult;
using index::SearchStrategy;

/// Stream salts: workload, sizing, and network randomness never alias each
/// other (or the fault plan's stream) even though all derive from one seed.
constexpr std::uint64_t kConfigSalt = 0xc0f1650aa1b2c3d4ULL;
constexpr std::uint64_t kWorkloadSalt = 0x3031c10adbeefca7ULL;
constexpr std::uint64_t kNetSalt = 0x5e7700d5a9b8c7d6ULL;

std::set<ObjectId> ids_of(const std::vector<Hit>& hits) {
  std::set<ObjectId> out;
  for (const Hit& h : hits) out.insert(h.object);
  return out;
}

/// The lossless serial oracle: the ground-truth object -> keyword-set map,
/// updated in workload order while mutations are quiesced.
struct Oracle {
  std::map<ObjectId, KeywordSet> live;

  std::map<ObjectId, KeywordSet> matches(const KeywordSet& query) const {
    std::map<ObjectId, KeywordSet> out;
    for (const auto& [id, k] : live)
      if (query.subset_of(k)) out.emplace(id, k);
    return out;
  }
};

/// Execution substrate the workload engine pumps against. Exactly one of
/// the three modes is active:
///
///  * sim  — `clock` set: the deterministic event queue. Every method is a
///           thin alias for the exact calls the engine made before the TCP
///           backend existed (post_sync is a plain direct call, step() is
///           clock->step(), ...), so simulator runs stay bit-identical.
///  * socket — `sock` set: the real runtime (TCP streams or UDP
///           datagrams, both net::SocketTransport). Protocol state machines
///           are strand-confined, so anything that touches them (op
///           initiation, registry/occupancy reads, plane control) is
///           marshaled onto the dispatch strand via post_sync; "pumping" is
///           wall-clock sleep in transport ticks; draining is wait_idle.
///  * in-process — neither set: synchronous deployments; async methods are
///           no-ops.
///
/// Thread-safety protocol for socket mode, relied on throughout execute():
/// completion callbacks run on the strand and write into the report; the
/// main thread reads the report only after observing the (atomic)
/// outstanding-operation count hit zero, and every callback decrements the
/// count *after* its report writes — the release/acquire pair that makes
/// those writes visible. post_sync is the fence for everything else.
struct Runtime {
  sim::EventQueue* clock = nullptr;     ///< sim mode
  net::SocketTransport* sock = nullptr; ///< socket mode (tcp or udp)
  /// Wire-accounting source (the conservation counters); null in-process.
  net::Transport* transport = nullptr;
  /// The dispatch strand's thread id (post_sync re-entrancy guard),
  /// captured by capture_strand().
  std::thread::id strand{};
  /// Set once the transport has been stopped (hang bail-out): the strand is
  /// gone, every handler already ran or never will, direct calls are safe.
  bool halted = false;

  bool is_sim() const { return clock != nullptr; }
  bool is_socket() const { return sock != nullptr; }
  bool has_async() const { return is_sim() || is_socket(); }

  sim::Time now() const {
    if (clock != nullptr) return clock->now();
    if (sock != nullptr) return sock->now();
    return 0;
  }

  /// Runs `fn` serialized with protocol handlers and waits for completion.
  /// Sim/in-process: a direct call (the event loop never runs concurrently
  /// with the engine). Socket: marshaled onto the dispatch strand;
  /// re-entrant when already on it.
  void post_sync(const std::function<void()>& fn) {
    if (sock == nullptr || halted ||
        std::this_thread::get_id() == strand) {
      fn();
      return;
    }
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    sock->schedule_in(0, [&] {
      fn();
      std::lock_guard<std::mutex> lk(mu);
      done = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done; });
  }

  /// Learns the dispatch strand's thread id (socket mode; call before
  /// traffic).
  void capture_strand() {
    if (sock == nullptr) return;
    std::thread::id id{};
    post_sync([&id] { id = std::this_thread::get_id(); });
    strand = id;
  }

  /// Happens-before barrier with the strand (no-op off socket mode).
  void fence() {
    if (sock != nullptr) post_sync([] {});
  }

  /// One pump unit: one sim event, or one wall-clock transport tick.
  /// Returns false when a sim queue is exhausted.
  bool step() {
    if (clock != nullptr) return clock->step();
    if (sock != nullptr && !halted) {
      std::this_thread::sleep_for(sock->tick());
      return true;
    }
    return false;
  }

  /// Advances `ticks` of transport time (sim: run_until; sockets: wall
  /// sleep).
  void run_window(sim::Time ticks) {
    if (clock != nullptr) {
      clock->run_until(clock->now() + ticks);
    } else if (sock != nullptr && !halted) {
      std::this_thread::sleep_for(sock->tick() * ticks);
    }
  }

  /// Bounded drain: lets a burst land without requiring full quiescence
  /// (the maintenance plane's perpetual timers never let the wire go idle
  /// for long). Sim: run a `ticks` window. Sockets: wait for idle up to
  /// the wall-clock equivalent, settling for whatever landed.
  void drain_window(sim::Time ticks) {
    if (clock != nullptr) {
      clock->run_until(clock->now() + ticks);
    } else if (sock != nullptr && !halted) {
      sock->wait_idle(std::chrono::duration_cast<std::chrono::milliseconds>(
                          sock->tick() * ticks) +
                      std::chrono::milliseconds(1));
    }
  }

  /// Full drain to a quiet wire. Sim: run the queue dry. Sockets:
  /// wait_idle with a generous bound (in-flight frames, queued handlers and
  /// plain scheduled events — including FaultTransport's delayed
  /// redeliveries — all count toward idleness; cancelable timers do not).
  void drain_full() {
    if (clock != nullptr) {
      clock->run();
    } else if (sock != nullptr && !halted) {
      sock->wait_idle(std::chrono::seconds(30));
    }
  }

  /// Stops the socket runtime in place (hang bail-out: outstanding
  /// callbacks reference engine stack frames, so the strand must die before
  /// the engine returns). No-op off socket mode.
  void halt() {
    if (sock != nullptr && !halted) {
      sock->stop();
      halted = true;
    }
  }

  /// Live cancelable timers (the timer-leak invariant's left-hand side).
  std::size_t live_timer_count() const {
    if (clock != nullptr) return clock->live_timer_count();
    if (sock != nullptr) return sock->live_timer_count();
    return 0;
  }

  std::uint64_t counter(const char* name) const {
    return transport != nullptr ? transport->metrics().counter(name) : 0;
  }
};

/// Deployment-specific operations the generic workload drives. Optional
/// hooks are null when a deployment lacks the capability.
struct Ops {
  std::function<void(ObjectId, const KeywordSet&, std::function<void()>)>
      publish;
  std::function<void(ObjectId, const KeywordSet&, std::function<void()>)>
      withdraw;
  std::function<void(const KeywordSet&,
                     std::function<void(const SearchResult&)>)>
      pin;
  std::function<std::uint64_t(const KeywordSet&, std::size_t,
                              std::function<void(const SearchResult&)>)>
      search;
  std::function<bool(std::uint64_t)> cancel;  ///< null: not cancellable
  /// Cumulative browse: fetch everything in pages of `page`, then call back
  /// with the union and whether the session terminated cleanly.
  std::function<void(const KeywordSet&, std::size_t,
                     std::function<void(const std::vector<Hit>&, bool)>)>
      browse;
  /// Returns a violation detail if index occupancy disagrees with the
  /// oracle's live set, nullopt otherwise.
  std::function<std::optional<std::string>(
      const std::map<ObjectId, KeywordSet>&)>
      check_occupancy;
  std::function<std::size_t()> in_flight;  ///< null: no request registry
  /// Abrupt peer failure + repair; returns the oracle objects whose index
  /// entries died with the peer. Null when churn is unsupported.
  std::function<std::vector<ObjectId>(
      std::uint64_t, const std::map<ObjectId, KeywordSet>&)>
      fail_peer;
  sim::EventQueue* clock = nullptr;  ///< null for in-process deployments
  sim::Network* net = nullptr;
  /// Execution substrate. Drivers that support the tcp backend supply one;
  /// when null, execute() builds a sim/in-process Runtime from clock/net.
  Runtime* rt = nullptr;
  /// Continuous churn: the self-healing plane racing the workload (null
  /// when disabled — the control run). Not owned.
  maint::MaintenancePlane* plane = nullptr;
  /// Credit/parallel schemes may return slightly more than `threshold`.
  bool overshoot_ok = false;
};

std::string describe_query(const KeywordSet& q, std::size_t threshold) {
  std::ostringstream out;
  out << "query=" << q.to_string() << " threshold=" << threshold;
  return out.str();
}

/// Checks one completed superset search against the oracle; appends
/// violations to `rep`. With `relaxed` (continuous churn: entries may be
/// transiently unreachable while repair races the query), only the
/// soundness half is enforced — no false positives, no duplicates, correct
/// payloads, monotone ranking — and completeness / delivery counts are
/// skipped; the post-convergence verification phase restores the strict
/// checks.
void check_search_result(const SearchResult& r, const KeywordSet& query,
                         std::size_t threshold,
                         const std::map<ObjectId, KeywordSet>& expected,
                         bool overshoot_ok, ScenarioReport& rep,
                         bool relaxed = false) {
  // No false positives, correct hit payloads, no duplicate objects — these
  // hold even for failed/partial results.
  std::set<ObjectId> seen;
  for (const Hit& h : r.hits) {
    if (!seen.insert(h.object).second) {
      rep.violations.push_back(
          {"oracle", "duplicate object " + std::to_string(h.object) +
                         " in hits; " + describe_query(query, threshold)});
      return;
    }
    const auto it = expected.find(h.object);
    if (it == expected.end()) {
      rep.violations.push_back(
          {"oracle", "false positive object " + std::to_string(h.object) +
                         "; " + describe_query(query, threshold)});
      return;
    }
    if (!(h.keywords == it->second)) {
      rep.violations.push_back(
          {"oracle", "hit payload mismatch for object " +
                         std::to_string(h.object) + "; " +
                         describe_query(query, threshold)});
      return;
    }
  }

  // Ranking: ordering by extra-keyword count must be monotone and preserve
  // the hit set.
  std::vector<Hit> ordered = r.hits;
  index::order_hits(ordered, query, index::RankingPreference::kGeneralFirst);
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    if (ordered[i - 1].keywords.size() > ordered[i].keywords.size()) {
      rep.violations.push_back(
          {"ranking", "extra-keyword count not monotone after order_hits; " +
                          describe_query(query, threshold)});
      return;
    }
  }
  if (ids_of(ordered) != ids_of(r.hits)) {
    rep.violations.push_back(
        {"ranking", "order_hits changed the hit set; " +
                        describe_query(query, threshold)});
    return;
  }

  if (r.stats.failed) return;  // partial results: subset checks were enough
  if (relaxed) {
    // Mid-churn a complete-looking traversal can still miss entries that
    // sat on a just-killed peer; only over-delivery stays checkable.
    if (threshold != 0 && !overshoot_ok && r.hits.size() > threshold)
      rep.violations.push_back(
          {"oracle", "thresholded search over-delivered (" +
                         std::to_string(r.hits.size()) + " > " +
                         std::to_string(threshold) + "); " +
                         describe_query(query, threshold)});
    return;
  }

  if (threshold == 0) {
    if (!r.stats.complete) {
      rep.violations.push_back(
          {"oracle", "exhaustive search not complete; " +
                         describe_query(query, threshold)});
      return;
    }
    if (ids_of(r.hits) != [&] {
          std::set<ObjectId> ids;
          for (const auto& [id, k] : expected) ids.insert(id);
          return ids;
        }()) {
      rep.violations.push_back(
          {"oracle", "exhaustive result set differs from oracle (" +
                         std::to_string(r.hits.size()) + " vs " +
                         std::to_string(expected.size()) + "); " +
                         describe_query(query, threshold)});
    }
    return;
  }

  const std::size_t want = std::min(threshold, expected.size());
  if (r.hits.size() < want) {
    rep.violations.push_back(
        {"oracle", "thresholded search under-delivered (" +
                       std::to_string(r.hits.size()) + " < " +
                       std::to_string(want) + "); " +
                       describe_query(query, threshold)});
    return;
  }
  if (!overshoot_ok && r.hits.size() > threshold) {
    rep.violations.push_back(
        {"oracle", "thresholded search over-delivered (" +
                       std::to_string(r.hits.size()) + " > " +
                       std::to_string(threshold) + "); " +
                       describe_query(query, threshold)});
  }
}

/// Generic workload engine: drives Ops through cfg.rounds of quiesced
/// mutations followed by overlapping searches, applying churn events and
/// checking every invariant.
void execute(const ScenarioConfig& cfg, Ops& ops, ScenarioReport& rep,
             obs::Tracer* tracer) {
  Rng wl(mix64(cfg.seed ^ kWorkloadSalt));
  Oracle oracle;
  ObjectId next_id = 1;

  Runtime local_rt;
  local_rt.clock = ops.clock;
  local_rt.transport = ops.net;
  Runtime& rt = ops.rt != nullptr ? *ops.rt : local_rt;

  const auto ts = [&rt]() -> sim::Time { return rt.now(); };
  if (tracer != nullptr)
    tracer->instant(ts(), 0, "scenario", "torture", cfg.seed);

  auto make_kws = [&](std::size_t lo, std::size_t hi) {
    std::vector<Keyword> words;
    const std::size_t n = lo + wl.next_below(hi - lo + 1);
    for (std::size_t i = 0; i < n; ++i) {
      // Built with += (not "w" + to_string(...)): GCC 12's -Wrestrict
      // false-positives on the rvalue operator+ overload at -O2.
      Keyword w = "w";
      w += std::to_string(wl.next_below(cfg.vocab));
      words.push_back(std::move(w));
    }
    return KeywordSet(std::move(words));
  };

  // Recurring queries hit the query caches repeatedly across mutation
  // rounds — the sequence that flushes out cache-staleness bugs. Under the
  // hot-spot workload they dominate (zipf-like head), hammering the same
  // few cube cells so the load-balance invariant has something to measure.
  std::vector<KeywordSet> recurring;
  for (int i = 0; i < 3; ++i)
    recurring.push_back(cfg.hot_spot ? make_kws(2, 3) : make_kws(1, 2));
  const double recurring_share = cfg.hot_spot ? 0.85 : 0.4;

  auto pick_query = [&]() -> KeywordSet {
    if (wl.next_bool(recurring_share))
      return recurring[wl.next_below(recurring.size())];
    if (!oracle.live.empty() && wl.next_bool(0.8)) {
      auto it = oracle.live.begin();
      std::advance(it, wl.next_below(oracle.live.size()));
      const auto& words = it->second.words();
      std::vector<Keyword> pick{words[wl.next_below(words.size())]};
      if (words.size() > 1 && wl.next_bool(0.4))
        pick.push_back(words[wl.next_below(words.size())]);
      return KeywordSet(std::move(pick));
    }
    return make_kws(1, 2);
  };

  // Continuous churn: kills are raw (no oracle-driven repair) and the
  // maintenance plane heals in the background while serving continues.
  const bool continuous = cfg.continuous_churn && ops.fail_peer != nullptr;

  auto drain = [&] {
    if (!rt.has_async()) return;
    if (ops.plane != nullptr && ops.plane->running()) {
      // The plane's perpetual timers keep the queue non-empty, so drain a
      // bounded window instead (ample for any mutation burst to land).
      rt.drain_window(400);
    } else {
      rt.drain_full();
    }
  };

  auto do_publish = [&] {
    const ObjectId id = next_id++;
    const KeywordSet k = make_kws(1, 4);
    oracle.live[id] = k;
    if (tracer != nullptr) tracer->instant(ts(), 0, "publish", "torture", id);
    ops.publish(id, k, [] {});
    ++rep.mutations;
  };
  // Mutations inside one burst overlap on the wire, and the protocol does
  // not serialize concurrent operations on the *same* object (a withdraw
  // racing its own publish can interleave at the DOLR owner and strand the
  // index entry — a real non-guarantee, not a bug). The workload therefore
  // only withdraws objects published before the current burst.
  auto do_withdraw = [&](ObjectId burst_floor) {
    std::vector<ObjectId> eligible;
    for (const auto& [id, k] : oracle.live)
      if (id < burst_floor) eligible.push_back(id);
    if (eligible.empty()) return;
    const ObjectId id = eligible[wl.next_below(eligible.size())];
    const KeywordSet k = oracle.live.at(id);
    oracle.live.erase(id);
    if (tracer != nullptr) tracer->instant(ts(), 0, "withdraw", "torture", id);
    ops.withdraw(id, k, [] {});
    ++rep.mutations;
  };

  // Phase 0: seed corpus.
  for (std::size_t i = 0; i < cfg.objects; ++i) do_publish();
  drain();

  // Peer failures: after the first one, DOLR references may be gone while
  // index entries survive, so withdraws (which go through the DOLR) would
  // desynchronize the oracle. Publishes stay safe.
  bool withdraw_safe = true;
  // Cost-model charges during churn repair (Chord finger fixing counts
  // "net.messages" synchronously without a wire delivery) are excluded from
  // the conservation identity by measuring each repair window's imbalance
  // while the queue is otherwise drained.
  std::uint64_t synthetic_messages = 0;

  for (std::size_t round = 0; round < cfg.rounds && rep.ok(); ++round) {
    if (tracer != nullptr) tracer->begin(ts(), 0, "round", "torture", round);
    // --- Churn (abrupt peer failures scheduled for this round) ------------
    if (cfg.churn && ops.fail_peer != nullptr) {
      for (const FaultEvent& ev : rep.plan.events) {
        if (ev.kind != FaultKind::kFailPeer || ev.target != round) continue;
        if (continuous) {
          // Kill only; detection and repair are the plane's job (it tracks
          // its own synthetic stabilization charges).
          const std::vector<ObjectId> lost =
              ops.fail_peer(ev.arg, oracle.live);
          for (ObjectId id : lost) oracle.live.erase(id);
          withdraw_safe = false;
          continue;
        }
        const std::vector<ObjectId> lost =
            ops.fail_peer(ev.arg, oracle.live);
        for (ObjectId id : lost) oracle.live.erase(id);
        withdraw_safe = false;
        if (rt.transport != nullptr) {
          // fail_peer returns with the queue drained, so the *cumulative*
          // sent/delivered/lost imbalance at this instant is exactly the
          // synthetic maintenance charge so far. (A windowed delta would
          // misattribute messages that were in flight when the window
          // opened — the hot-spot plane's heartbeats, for instance.)
          // Charges the plane already accounts for via synthetic_messages()
          // — delay-induced false confirmations trigger stabilize rounds
          // between kills — are subtracted here, because the final identity
          // adds the plane's total separately.
          rt.post_sync([&] {
            synthetic_messages =
                rt.counter("net.messages") - rt.counter("net.delivered") -
                rt.counter("net.lost") -
                (ops.plane != nullptr ? ops.plane->synthetic_messages() : 0);
          });
        }
      }
    }

    // --- Quiesced mutation burst -----------------------------------------
    const ObjectId burst_floor = next_id;
    for (std::size_t m = 0; m < cfg.mutations_per_round; ++m) {
      if (withdraw_safe && wl.next_bool(0.4))
        do_withdraw(burst_floor);
      else
        do_publish();
    }
    drain();

    // --- Overlapping search burst ----------------------------------------
    // Atomic (tcp: decremented on the strand, polled by the engine); every
    // callback decrements it only after its report writes are done, so
    // outstanding == 0 implies those writes are visible here.
    std::atomic<std::size_t> outstanding{0};

    for (std::size_t s = 0; s < cfg.searches_per_round; ++s) {
      const double roll = wl.next_double();
      if (roll < 0.15 && !oracle.live.empty()) {
        // Pin search: exact keyword-set match.
        auto it = oracle.live.begin();
        std::advance(it, wl.next_below(oracle.live.size()));
        const KeywordSet k = it->second;
        std::set<ObjectId> expected;
        for (const auto& [id, kw] : oracle.live)
          if (kw == k) expected.insert(id);
        ++outstanding;
        ++rep.searches;
        if (tracer != nullptr) tracer->instant(ts(), 0, "pin", "torture");
        ops.pin(k, [&rep, &outstanding, k, expected,
                    continuous](const SearchResult& r) {
          const std::set<ObjectId> got = ids_of(r.hits);
          if (continuous) {
            // Mid-churn pins may under-deliver, never fabricate.
            if (!std::includes(expected.begin(), expected.end(), got.begin(),
                               got.end()))
              rep.violations.push_back(
                  {"oracle",
                   "pin search false positive; query=" + k.to_string()});
          } else if (got != expected) {
            rep.violations.push_back(
                {"oracle", "pin search mismatch; query=" + k.to_string()});
          }
          --outstanding;  // last: publishes the report writes above
        });
      } else if (roll < 0.3 && ops.browse != nullptr) {
        // Cumulative browse: page through the whole subhypercube.
        const KeywordSet q = pick_query();
        const auto expected = oracle.matches(q);
        const std::size_t page = 1 + wl.next_below(7);
        ++outstanding;
        ++rep.searches;
        if (tracer != nullptr)
          tracer->instant(ts(), 0, "browse", "torture", page);
        ops.browse(q, page,
                   [&rep, &outstanding, q, expected](
                       const std::vector<Hit>& all, bool clean) {
                     if (!clean) {
                       rep.violations.push_back(
                           {"hang", "cumulative session never exhausted; "
                                    "query=" + q.to_string()});
                     } else {
                       std::set<ObjectId> want;
                       for (const auto& [id, k] : expected) want.insert(id);
                       if (ids_of(all) != want)
                         rep.violations.push_back(
                             {"oracle",
                              "cumulative browse set differs from oracle (" +
                                  std::to_string(all.size()) + " vs " +
                                  std::to_string(want.size()) +
                                  "); query=" + q.to_string()});
                     }
                     --outstanding;  // last: publishes the report writes
                   });
      } else {
        const KeywordSet q = pick_query();
        const std::size_t threshold =
            wl.next_bool(0.5) ? 0 : 1 + wl.next_below(8);
        const auto expected = oracle.matches(q);
        const bool try_cancel =
            ops.cancel != nullptr && wl.next_bool(0.2);
        const std::size_t cancel_after =
            try_cancel ? wl.next_below(24) : 0;

        ++outstanding;
        ++rep.searches;
        if (tracer != nullptr)
          tracer->instant(ts(), 0, "superset", "torture", threshold);
        auto cancelled = std::make_shared<bool>(false);
        const bool overshoot_ok = ops.overshoot_ok;
        const std::uint64_t handle = ops.search(
            q, threshold,
            [&rep, &outstanding, q, threshold, expected, cancelled,
             overshoot_ok, continuous](const SearchResult& r) {
              if (*cancelled) {
                rep.violations.push_back(
                    {"cancel", "callback fired after successful cancel; " +
                                   describe_query(q, threshold)});
                return;
              }
              check_search_result(r, q, threshold, expected, overshoot_ok,
                                  rep, continuous);
              --outstanding;  // last: publishes the report writes above
            });
        if (try_cancel && rt.has_async()) {
          // Let the request make some progress, then abandon it.
          for (std::size_t i = 0; i < cancel_after && outstanding > 0; ++i)
            if (!rt.step()) break;
          // A true cancel means the callback will never run (the request
          // is gone), so writing the flag afterwards cannot race it.
          if (ops.cancel(handle)) {
            *cancelled = true;
            --outstanding;
            ++rep.cancels;
            if (tracer != nullptr)
              tracer->instant(ts(), 0, "cancel", "torture", handle);
          }
        }
      }
    }

    // --- Pump to completion; invariants at the quiescence instant ---------
    if (rt.has_async()) {
      // With the plane running the (sim) queue never empties, so a stuck
      // search is caught by a generous time bound instead of queue
      // exhaustion; on tcp there is no queue to exhaust and the bound — in
      // wall-clock transport ticks — is the only hang detector.
      const sim::Time hang_deadline = rt.now() + 60000;
      if (rt.is_sim()) {
        while (outstanding > 0 &&
               (ops.plane == nullptr || ops.clock->now() < hang_deadline) &&
               ops.clock->step()) {
        }
      } else {
        while (outstanding > 0 && rt.now() < hang_deadline) rt.step();
      }
      if (outstanding > 0) {
        rep.violations.push_back(
            {"hang", "event queue drained with " +
                         std::to_string(outstanding.load()) +
                         " operations still outstanding (round " +
                         std::to_string(round) + ")"});
        if (tracer != nullptr) tracer->close_open(ts(), 0);
        // Pending strand callbacks capture this frame; kill the runtime
        // before unwinding (sim queues just get destroyed unrun).
        rt.halt();
        return;
      }
      // The last operation just completed: every terminal transition must
      // have cancelled its timers and dropped its request state. The
      // maintenance plane's own timers (heartbeats, repair ticker) are the
      // one allowed residue. On tcp the "instant" is unobservable from
      // outside the strand — late duplicate deliveries may still be in
      // flight — so quiesce the wire first and take the readings in one
      // strand-serialized block (a consistent snapshot: timers are only
      // armed and cancelled on the strand).
      if (rt.is_socket()) rt.drain_full();
      rt.post_sync([&] {
        const std::size_t allowed =
            ops.plane != nullptr ? ops.plane->armed_timers() : 0;
        if (rt.live_timer_count() != allowed)
          rep.violations.push_back(
              {"timers", std::to_string(rt.live_timer_count()) +
                             " timer(s) still live after all operations "
                             "completed, " + std::to_string(allowed) +
                             " allowed for the maintenance plane (round " +
                             std::to_string(round) + ")"});
        if (ops.in_flight != nullptr && ops.in_flight() != 0)
          rep.violations.push_back(
              {"timers", std::to_string(ops.in_flight()) +
                             " request(s) leaked in the coordinator registry "
                             "(round " + std::to_string(round) + ")"});
      });
      // Drain stragglers (duplicate copies, cancelled-timer husks).
      drain();
    } else if (outstanding != 0) {
      rep.violations.push_back(
          {"hang", "synchronous deployment left operations outstanding"});
      if (tracer != nullptr) tracer->close_open(ts(), 0);
      return;
    }
    if (tracer != nullptr) tracer->end(ts(), 0);
  }

  // --- Convergence phase (continuous churn) -------------------------------
  // After the last fault the plane gets a bounded number of repair windows
  // to report converged(); then strict verification searches must find the
  // oracle's exact live set again — complete, not failed. Without the plane
  // (self_healing off) the same verification runs immediately and shows
  // what breaks: that asymmetry is the invariant this mode exists to pin.
  if (continuous && rt.has_async() && rep.ok()) {
    if (ops.plane != nullptr) {
      constexpr sim::Time kWindow = 100;
      const auto converged = [&] {
        bool c = false;
        rt.post_sync([&] { c = ops.plane->converged(); });
        return c;
      };
      std::size_t w = 0;
      while (!converged() && w < cfg.convergence_budget) {
        rt.run_window(kWindow);
        ++w;
      }
      if (!converged())
        rep.violations.push_back(
            {"convergence",
             "maintenance plane not converged within " +
                 std::to_string(cfg.convergence_budget) +
                 " repair windows of " + std::to_string(kWindow) +
                 " ticks after the last fault"});
    }
    if (rep.ok()) {
      std::vector<KeywordSet> probes = recurring;
      for (const auto& [id, k] : oracle.live) {
        if (probes.size() >= recurring.size() + 3) break;
        probes.push_back(KeywordSet({k.words().front()}));
      }
      for (const KeywordSet& q : probes) {
        const auto expected = oracle.matches(q);
        auto done = std::make_shared<std::atomic<bool>>(false);
        const std::uint64_t handle = ops.search(
            q, 0, [&rep, q, expected, done](const SearchResult& r) {
              if (r.stats.failed || !r.stats.complete) {
                rep.violations.push_back(
                    {"convergence",
                     "post-churn verification search " +
                         std::string(r.stats.failed ? "failed"
                                                    : "incomplete") +
                         "; " + describe_query(q, 0)});
              } else {
                check_search_result(r, q, 0, expected, false, rep);
              }
              done->store(true);  // last: publishes the report writes
            });
        const sim::Time deadline = rt.now() + 20000;
        while (!done->load() && rt.now() < deadline && rt.step()) {
        }
        if (!done->load()) {
          // Silence the straggler before writing the report from this
          // thread (a true cancel guarantees the callback never runs; a
          // failed one means it already did).
          if (rt.is_socket() && ops.cancel != nullptr) ops.cancel(handle);
          rep.violations.push_back(
              {"convergence", "post-churn verification search never "
                              "completed; " + describe_query(q, 0)});
          break;
        }
      }
    }
  }
  if (ops.plane != nullptr) {
    rt.post_sync([&] {
      synthetic_messages += ops.plane->synthetic_messages();
      ops.plane->stop();
    });
  }
  // Final drain so the whole-run invariants see a quiet wire (the
  // verification pumps above stop at first answer, not at empty queue).
  if (rt.has_async()) rt.drain_full();

  // --- Final whole-run invariants ----------------------------------------
  if (ops.check_occupancy != nullptr) {
    rt.post_sync([&] {
      if (auto err = ops.check_occupancy(oracle.live))
        rep.violations.push_back({"occupancy", *err});
    });
  }
  if (rt.transport != nullptr) {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    std::uint64_t fault = 0;
    std::uint64_t conn = 0;
    rt.post_sync([&] {
      sent = rt.counter("net.messages");
      delivered = rt.counter("net.delivered");
      lost = rt.counter("net.lost");
      fault = rt.counter("net.dropped.fault");
      conn = rt.counter("net.dropped.conn");
    });
    if (sent != delivered + lost + synthetic_messages)
      rep.violations.push_back(
          {"conservation",
           "net.messages (" + std::to_string(sent) + ") != net.delivered (" +
               std::to_string(delivered) + ") + net.lost (" +
               std::to_string(lost) + ") + maintenance charges (" +
               std::to_string(synthetic_messages) + ")"});
    // Loss attribution: every lost wire message carries exactly one cause
    // (injected fault or connection death) — an unattributed loss is an
    // accounting hole, a double-attributed one an overcount.
    if (lost != fault + conn)
      rep.violations.push_back(
          {"conservation",
           "net.lost (" + std::to_string(lost) +
               ") != net.dropped.fault (" + std::to_string(fault) +
               ") + net.dropped.conn (" + std::to_string(conn) + ")"});
  }
}

/// Sums a per-cube-node load vector.
std::size_t sum_loads(const std::vector<std::size_t>& loads) {
  std::size_t total = 0;
  for (std::size_t l : loads) total += l;
  return total;
}

/// Occupancy checker for a single OverlayIndex.
std::optional<std::string> overlay_occupancy(
    const index::OverlayIndex& oi, const char* label,
    const std::map<ObjectId, KeywordSet>& live) {
  const std::size_t have = sum_loads(oi.loads_by_cube_node());
  if (have != live.size())
    return std::string(label) + " index holds " + std::to_string(have) +
           " entries, oracle has " + std::to_string(live.size());
  return std::nullopt;
}

// --- Deployment drivers -----------------------------------------------------

void run_direct(const ScenarioConfig& cfg, ScenarioReport& rep,
                obs::Tracer* tracer) {
  index::LogicalIndex li(
      {.r = cfg.r, .cache_capacity = cfg.cache_capacity});

  Ops ops;
  ops.publish = [&](ObjectId id, const KeywordSet& k,
                    std::function<void()> done) {
    li.insert(id, k);
    done();
  };
  ops.withdraw = [&](ObjectId id, const KeywordSet& k,
                     std::function<void()> done) {
    li.remove(id, k);
    done();
  };
  ops.pin = [&](const KeywordSet& q,
                std::function<void(const SearchResult&)> cb) {
    cb(li.pin_search(q));
  };
  ops.search = [&](const KeywordSet& q, std::size_t t,
                   std::function<void(const SearchResult&)> cb) {
    cb(li.superset_search(q, t, cfg.strategy));
    return std::uint64_t{0};
  };
  ops.browse = [&](const KeywordSet& q, std::size_t page,
                   std::function<void(const std::vector<Hit>&, bool)> cb) {
    auto session = li.begin_cumulative(q);
    std::vector<Hit> all;
    std::size_t guard = 0;
    while (!session.exhausted()) {
      if (++guard > 100000) {
        cb(all, false);
        return;
      }
      const SearchResult r = session.next(page);
      all.insert(all.end(), r.hits.begin(), r.hits.end());
    }
    cb(all, true);
  };
  ops.check_occupancy =
      [&](const std::map<ObjectId, KeywordSet>& live)
      -> std::optional<std::string> {
    if (li.object_count() != live.size())
      return "object_count " + std::to_string(li.object_count()) +
             " != oracle " + std::to_string(live.size());
    if (sum_loads(li.loads()) != li.object_count())
      return "per-node loads do not sum to object_count";
    return std::nullopt;
  };
  execute(cfg, ops, rep, tracer);
}

void run_decomposed(const ScenarioConfig& cfg, ScenarioReport& rep,
                    obs::Tracer* tracer) {
  constexpr std::size_t kGroups = 2;
  index::DecomposedIndex dec =
      index::DecomposedIndex::hashed(kGroups, cfg.r);

  Ops ops;
  ops.publish = [&](ObjectId id, const KeywordSet& k,
                    std::function<void()> done) {
    dec.insert(id, k);
    done();
  };
  ops.withdraw = [&](ObjectId id, const KeywordSet& k,
                     std::function<void()> done) {
    dec.remove(id, k);
    done();
  };
  ops.pin = [&](const KeywordSet& q,
                std::function<void(const SearchResult&)> cb) {
    cb(dec.pin_search(q));
  };
  ops.search = [&](const KeywordSet& q, std::size_t t,
                   std::function<void(const SearchResult&)> cb) {
    cb(dec.superset_search(q, t, cfg.strategy));
    return std::uint64_t{0};
  };
  ops.check_occupancy =
      [&](const std::map<ObjectId, KeywordSet>& live)
      -> std::optional<std::string> {
    for (std::size_t g = 0; g < kGroups; ++g) {
      std::size_t expected = 0;
      for (const auto& [id, k] : live) {
        if (!dec.projection(k, g).empty()) ++expected;
      }
      const std::size_t have = dec.group_cube(g).object_count();
      if (have != expected)
        return "group " + std::to_string(g) + " holds " +
               std::to_string(have) + " objects, oracle projects " +
               std::to_string(expected);
    }
    return std::nullopt;
  };
  execute(cfg, ops, rep, tracer);
}

void run_hypercup(const ScenarioConfig& cfg, const FaultPlan& plan,
                  ScenarioReport& rep, obs::Tracer* tracer) {
  sim::EventQueue clock;
  sim::Network net(clock, std::make_unique<sim::UniformLatency>(1, 10),
                   mix64(cfg.seed ^ kNetSalt));
  auto injector = std::make_unique<FaultInjector>(plan);
  FaultInjector* inj = injector.get();
  net.set_fault_model(std::move(injector));
  if (tracer != nullptr) obs::attach_network(*tracer, net);
  cubenet::HyperCupNetwork hnet(net, {.r = cfg.r});
  cubenet::HyperCupIndex hidx(hnet, {});
  Rng pubs(mix64(cfg.seed ^ kNetSalt ^ 1));
  const auto publisher = [&] {
    return static_cast<cube::CubeId>(pubs.next_below(hnet.size()));
  };

  Ops ops;
  ops.clock = &clock;
  ops.net = &net;
  ops.overshoot_ok = true;  // credit-based forwarding may exceed threshold
  ops.publish = [&](ObjectId id, const KeywordSet& k,
                    std::function<void()> done) {
    hidx.insert(publisher(), id, k, [done](int) { done(); });
  };
  ops.withdraw = [&](ObjectId id, const KeywordSet& k,
                     std::function<void()> done) {
    hidx.remove(publisher(), id, k, [done](int) { done(); });
  };
  ops.pin = [&](const KeywordSet& q,
                std::function<void(const SearchResult&)> cb) {
    hidx.pin_search(0, q, std::move(cb));
  };
  ops.search = [&](const KeywordSet& q, std::size_t t,
                   std::function<void(const SearchResult&)> cb) {
    hidx.superset_search(0, q, t, std::move(cb));
    return std::uint64_t{0};
  };
  ops.check_occupancy =
      [&](const std::map<ObjectId, KeywordSet>& live)
      -> std::optional<std::string> {
    const std::size_t have = sum_loads(hidx.loads());
    if (have != live.size())
      return "index holds " + std::to_string(have) + " entries, oracle has " +
             std::to_string(live.size());
    return std::nullopt;
  };
  execute(cfg, ops, rep, tracer);
  rep.faults_applied = inj->applied();
}

/// Builds the socket substrate for a non-sim backend: TCP streams or UDP
/// datagrams (one envelope frame per datagram), seeded from the scenario.
std::unique_ptr<net::SocketTransport> make_socket(const ScenarioConfig& cfg) {
  if (cfg.backend == Backend::kUdp) {
    net::UdpTransport::Config uc;
    uc.seed = mix64(cfg.seed ^ kNetSalt);
    return std::make_unique<net::UdpTransport>(uc);
  }
  net::TcpTransport::Config tc;
  tc.seed = mix64(cfg.seed ^ kNetSalt);
  return std::make_unique<net::TcpTransport>(tc);
}

/// Shared driver for OverlayIndex over either DHT. `chord` is non-null for
/// the Chord deployment (whose stabilize recipe enables churn).
void run_overlay(const ScenarioConfig& cfg, const FaultPlan& plan,
                 ScenarioReport& rep, obs::Tracer* tracer) {
  const bool sock_mode = cfg.backend != Backend::kSim;
  sim::EventQueue clock;
  auto injector = std::make_unique<FaultInjector>(plan);
  FaultInjector* inj = injector.get();

  // Substrate: the sim fabric, or a real SocketTransport (TCP or UDP)
  // wrapped in the FaultTransport decorator so the same plan injects below
  // the protocol.
  std::unique_ptr<sim::Network> simnet;
  std::unique_ptr<net::SocketTransport> sock;
  std::unique_ptr<net::FaultTransport> faulted;
  net::Transport* transport = nullptr;
  if (sock_mode) {
    sock = make_socket(cfg);
    faulted = std::make_unique<net::FaultTransport>(
        *sock, std::move(injector), mix64(cfg.seed ^ kNetSalt ^ 2));
    transport = faulted.get();
  } else {
    simnet = std::make_unique<sim::Network>(
        clock, std::make_unique<sim::UniformLatency>(1, 12),
        mix64(cfg.seed ^ kNetSalt));
    transport = simnet.get();
  }

  Runtime rt;
  rt.clock = sock_mode ? nullptr : &clock;
  rt.sock = sock.get();
  rt.transport = transport;
  rt.capture_strand();

  std::unique_ptr<dht::Overlay> overlay;
  dht::ChordNetwork* chord = nullptr;
  if (cfg.deployment == Deployment::kChord) {
    auto c = std::make_unique<dht::ChordNetwork>(
        dht::ChordNetwork::build(*transport, cfg.peers, {}));
    chord = c.get();
    overlay = std::move(c);
  } else {
    overlay = std::make_unique<dht::PastryNetwork>(
        dht::PastryNetwork::build(*transport, cfg.peers, {}));
  }
  dht::Dolr dolr(*overlay);
  index::OverlayIndex::Config oicfg;
  oicfg.r = cfg.r;
  oicfg.cache_capacity = cfg.cache_capacity;
  // Exercise the VisitBatch path under faults: the conservation and
  // soundness invariants must hold with coalesced rounds too.
  oicfg.coalesce_visits = true;
  oicfg.step_timeout = cfg.retransmission ? 80 : 0;
  oicfg.max_retries = 8;
  // Exponential backoff with seeded jitter on the retries: under a
  // partition window, blind fixed-period retransmission would burn the
  // retry budget into the cut; backoff stretches the schedule across it.
  oicfg.backoff_cap = 640;
  oicfg.backoff_jitter = 40;
  oicfg.backoff_seed = mix64(cfg.seed ^ kNetSalt ^ 3);
  if (cfg.hot_spot) {
    // One popularity window covers the whole run, so the recurring-query
    // head accumulates scans fast enough to cross the hot threshold within
    // the first rounds.
    oicfg.hot.enabled = cfg.hot_replication;
    oicfg.hot.replicas = 3;
    oicfg.hot.window = 1 << 20;
    oicfg.hot.min_scans = 4;
    oicfg.hot.max_hot = 16;
  }
  index::OverlayIndex oi(dolr, oicfg);
  // Faults start only now: overlay construction traffic stays pristine.
  // (Same discipline on both substrates — the sim installs the model, the
  // decorator arms; either way wire numbering starts at the next message.)
  if (sock_mode)
    faulted->arm();
  else
    simnet->set_fault_model(std::move(injector));
  if (tracer != nullptr && simnet != nullptr)
    obs::attach_network(*tracer, *simnet);

  // Load-balance invariant input: scan counts per serving peer, straight
  // from the protocol trace (replica holders show up as servers here —
  // that is the point).
  std::map<sim::EndpointId, std::uint64_t> scan_loads;
  if (cfg.max_scan_skew > 0.0)
    oi.set_trace([&scan_loads](const index::OverlayIndex::Trace& t) {
      if (std::string_view(t.point) == "scan") ++scan_loads[t.b];
    });

  constexpr sim::EndpointId kHome = 1;  // publisher/searcher; never fails

  // Hot-spot runs drive replication the way production does: the plane's
  // always-on replication ticker promotes/demotes/resyncs in the
  // background while the workload races it.
  std::unique_ptr<maint::MaintenancePlane> plane;
  if (cfg.hot_spot && cfg.hot_replication && chord != nullptr) {
    maint::MaintenancePlane::Config pc;
    pc.replication_interval = 40;
    pc.replica_entries_per_tick = 512;
    plane = std::make_unique<maint::MaintenancePlane>(
        *transport, pc, [chord] { chord->stabilize_all(); },
        [&oi](std::size_t entries, std::size_t) {
          oi.purge_dead();
          return oi.repair_placement(entries);
        },
        [&oi] { return oi.misplaced_entries() + oi.replication_backlog(); });
    plane->set_replication(
        [&oi](std::size_t n) { return oi.replication_step(n); });
    if (tracer != nullptr) plane->set_tracer(tracer);
    std::vector<sim::EndpointId> members;
    for (const dht::RingId id : chord->live_ids())
      members.push_back(chord->endpoint_of(id));
    rt.post_sync([&] { plane->start(members); });
  }

  // Every op initiation below is strand-marshaled through rt.post_sync —
  // a direct call on the simulator, the thread-safety boundary on tcp.
  Ops ops;
  ops.clock = rt.clock;
  ops.net = simnet.get();
  ops.rt = &rt;
  ops.plane = plane.get();
  ops.overshoot_ok = cfg.strategy == SearchStrategy::kLevelParallel;
  ops.publish = [&](ObjectId id, const KeywordSet& k,
                    std::function<void()> done) {
    rt.post_sync([&] {
      oi.publish(
          kHome, id, k,
          [done](const index::OverlayIndex::PublishResult&) { done(); });
    });
  };
  ops.withdraw = [&](ObjectId id, const KeywordSet& k,
                     std::function<void()> done) {
    rt.post_sync([&] {
      oi.withdraw(kHome, id, k,
                  [done](const index::OverlayIndex::WithdrawResult&) {
                    done();
                  });
    });
  };
  ops.pin = [&](const KeywordSet& q,
                std::function<void(const SearchResult&)> cb) {
    rt.post_sync([&] { oi.pin_search(kHome, q, std::move(cb)); });
  };
  ops.search = [&](const KeywordSet& q, std::size_t t,
                   std::function<void(const SearchResult&)> cb) {
    std::uint64_t handle = 0;
    rt.post_sync([&] {
      handle = oi.superset_search(kHome, q, t, cfg.strategy, std::move(cb));
    });
    return handle;
  };
  ops.cancel = [&](std::uint64_t id) {
    bool cancelled = false;
    rt.post_sync([&] { cancelled = oi.cancel(id); });
    return cancelled;
  };
  ops.browse = [&](const KeywordSet& q, std::size_t page,
                   std::function<void(const std::vector<Hit>&, bool)> cb) {
    rt.post_sync([&] {
      const std::uint64_t sess = oi.open_cumulative(kHome, q);
      auto all = std::make_shared<std::vector<Hit>>();
      auto pages = std::make_shared<std::size_t>(0);
      auto step = std::make_shared<std::function<void()>>();
      *step = [&oi, sess, page, all, pages, cb, step] {
        if (++*pages > 100000) {
          oi.close_cumulative(sess);
          cb(*all, false);
          *step = nullptr;
          return;
        }
        oi.cumulative_next(
            sess, page, [&oi, sess, all, cb, step](const SearchResult& r) {
              all->insert(all->end(), r.hits.begin(), r.hits.end());
              if (r.stats.complete) {
                oi.close_cumulative(sess);
                cb(*all, true);
                *step = nullptr;  // break the self-reference cycle
              } else {
                (*step)();
              }
            });
      };
      (*step)();
    });
  };
  ops.in_flight = [&] { return oi.in_flight_requests(); };
  ops.check_occupancy =
      [&](const std::map<ObjectId, KeywordSet>& live) {
        return overlay_occupancy(oi, "overlay", live);
      };
  if (chord != nullptr) {
    ops.fail_peer = [&, chord](std::uint64_t ordinal,
                               const std::map<ObjectId, KeywordSet>& live) {
      // Kill, survivor scan and stabilization touch protocol state, so each
      // burst runs strand-serialized; the drains between them must run from
      // the engine thread (on tcp the strand cannot wait for itself).
      std::vector<ObjectId> lost;
      bool no_quorum = false;
      rt.post_sync([&] {
        std::vector<sim::EndpointId> candidates;
        for (sim::EndpointId ep = 2; ep <= cfg.peers; ++ep)
          if (chord->is_live(ep)) candidates.push_back(ep);
        if (candidates.size() < 4) {
          no_quorum = true;
          return;
        }
        const sim::EndpointId victim =
            candidates[ordinal % candidates.size()];
        if (cfg.hot_spot) {
          // Hot-spot kill: the plane is parked around the (synchronous)
          // repair so its detector never double-heals, the queue is
          // drained, and a full replication round restores owner tables
          // from any surviving replica copies — entries are only truly
          // lost when no live peer holds them in either a primary or a
          // replica table.
          if (plane != nullptr) plane->stop();
          chord->fail(victim);
          std::set<ObjectId> survivors;
          oi.for_each_entry([&](cube::CubeId, const KeywordSet&, ObjectId id,
                                sim::EndpointId ep) {
            if (chord->is_live(ep)) survivors.insert(id);
          });
          oi.for_each_replica_entry([&](cube::CubeId, const KeywordSet&,
                                        ObjectId id, sim::EndpointId ep) {
            if (chord->is_live(ep)) survivors.insert(id);
          });
          for (const auto& [id, k] : live)
            if (!survivors.contains(id)) lost.push_back(id);
          for (int i = 0; i < 30; ++i) chord->stabilize_all();
          return;
        }
        // Entries that die with the victim, per current (canonical after
        // the previous round's repair) placement.
        for (const auto& [id, k] : live)
          if (oi.peer_of(oi.responsible_node(k)) == victim)
            lost.push_back(id);
        chord->fail(victim);
        for (int i = 0; i < 30; ++i) chord->stabilize_all();
      });
      if (no_quorum) return std::vector<ObjectId>{};
      rt.drain_full();
      rt.post_sync([&] {
        oi.purge_dead();
        oi.repair_placement();
        if (cfg.hot_spot)
          oi.replication_step(std::numeric_limits<std::size_t>::max());
      });
      rt.drain_full();
      if (cfg.hot_spot && plane != nullptr) {
        std::vector<sim::EndpointId> members;
        rt.post_sync([&] {
          for (const dht::RingId id : chord->live_ids())
            members.push_back(chord->endpoint_of(id));
          plane->start(members);
        });
      }
      return lost;
    };
  }
  execute(cfg, ops, rep, tracer);
  rt.fence();
  rt.post_sync([&] {
    if (plane != nullptr) plane->stop();  // idempotent; covers early exits
  });

  // Load-balance invariant: the busiest peer's scan count vs the mean over
  // all live peers (idle peers count — that is what the skew is about).
  if (cfg.max_scan_skew > 0.0 && rep.ok()) {
    std::uint64_t total = 0;
    std::uint64_t max_load = 0;
    for (const auto& [ep, n] : scan_loads) {
      total += n;
      max_load = std::max(max_load, n);
    }
    const std::size_t live = overlay->live_ids().size();
    if (total > 0 && live > 0) {
      const double mean =
          static_cast<double>(total) / static_cast<double>(live);
      const double skew = static_cast<double>(max_load) / mean;
      if (skew > cfg.max_scan_skew) {
        std::ostringstream detail;
        detail << "max/mean scans per peer " << skew << " exceeds "
               << cfg.max_scan_skew << " (max=" << max_load
               << " total=" << total << " live_peers=" << live << ")";
        rep.violations.push_back({"load_balance", detail.str()});
      }
    }
  }
  rep.faults_applied = inj->applied();
}

void run_mirrored(const ScenarioConfig& cfg, const FaultPlan& plan,
                  ScenarioReport& rep, obs::Tracer* tracer) {
  const bool sock_mode = cfg.backend != Backend::kSim;
  sim::EventQueue clock;
  auto injector = std::make_unique<FaultInjector>(plan);
  FaultInjector* inj = injector.get();

  std::unique_ptr<sim::Network> simnet;
  std::unique_ptr<net::SocketTransport> sock;
  std::unique_ptr<net::FaultTransport> faulted;
  net::Transport* transport = nullptr;
  if (sock_mode) {
    sock = make_socket(cfg);
    faulted = std::make_unique<net::FaultTransport>(
        *sock, std::move(injector), mix64(cfg.seed ^ kNetSalt ^ 2));
    transport = faulted.get();
  } else {
    simnet = std::make_unique<sim::Network>(
        clock, std::make_unique<sim::UniformLatency>(1, 12),
        mix64(cfg.seed ^ kNetSalt));
    transport = simnet.get();
  }

  Runtime rt;
  rt.clock = sock_mode ? nullptr : &clock;
  rt.sock = sock.get();
  rt.transport = transport;
  rt.capture_strand();

  auto chord = std::make_unique<dht::ChordNetwork>(
      dht::ChordNetwork::build(*transport, cfg.peers, {}));
  // Continuous churn keeps references replicated so the DOLR layer has
  // something to repair from; the plain scenario stays unreplicated.
  dht::Dolr dolr(*chord,
                 {.replication_factor = cfg.continuous_churn ? 3 : 1});
  index::MirroredIndex mi(
      dolr, {.r = cfg.r,
             .cache_capacity = cfg.cache_capacity,
             .coalesce_visits = true,
             .step_timeout = cfg.retransmission ? sim::Time{80} : sim::Time{0},
             .max_retries = 8,
             .backoff_cap = 640,
             .backoff_jitter = 40,
             .backoff_seed = mix64(cfg.seed ^ kNetSalt ^ 3)});
  if (sock_mode)
    faulted->arm();
  else
    simnet->set_fault_model(std::move(injector));
  if (tracer != nullptr && simnet != nullptr)
    obs::attach_network(*tracer, *simnet);

  constexpr sim::EndpointId kHome = 1;
  dht::ChordNetwork* c = chord.get();

  // Self-healing plane: heartbeat detection over all peers plus the same
  // stabilize/repair recipe the service layer composes, budgeted per tick.
  std::unique_ptr<maint::MaintenancePlane> plane;
  if (cfg.continuous_churn && cfg.self_healing) {
    plane = std::make_unique<maint::MaintenancePlane>(
        *transport, maint::MaintenancePlane::Config{},
        [c] { c->stabilize_all(); },
        [&mi, &dolr](std::size_t entries, std::size_t refs) {
          mi.purge_dead();
          const std::uint64_t moved = mi.repair_placement(entries);
          std::uint64_t work = moved;
          const std::size_t left =
              entries > moved
                  ? entries - static_cast<std::size_t>(moved)
                  : 0;
          work += mi.resync(left);
          work += dolr.repair_replicas(refs);
          return work;
        },
        [&mi, &dolr] {
          return dolr.replication_backlog() + mi.misplaced_entries() +
                 mi.resync_backlog();
        });
    if (tracer != nullptr) plane->set_tracer(tracer);
    std::vector<sim::EndpointId> members;
    for (dht::RingId id : c->live_ids())
      members.push_back(c->endpoint_of(id));
    rt.post_sync([&] { plane->start(members); });
    // Real-runtime composition: connection-death reports from the socket
    // layer feed the failure detector's fast path (the observer already
    // runs on the dispatch strand, the detector's serialization domain).
    if (sock != nullptr) {
      maint::MaintenancePlane* p = plane.get();
      sock->set_peer_down_observer(
          [p](sim::EndpointId ep) { p->detector().note_transport_down(ep); });
    }
  }

  // Op initiations marshal through rt.post_sync (direct calls on the sim).
  Ops ops;
  ops.clock = rt.clock;
  ops.net = simnet.get();
  ops.rt = &rt;
  ops.plane = plane.get();
  // Each cube may overshoot under kLevelParallel but the merge truncates
  // to the threshold, so the merged result never overshoots.
  ops.overshoot_ok = false;
  ops.publish = [&](ObjectId id, const KeywordSet& k,
                    std::function<void()> done) {
    rt.post_sync([&] {
      mi.publish(
          kHome, id, k,
          [done](const index::OverlayIndex::PublishResult&) { done(); });
    });
  };
  ops.withdraw = [&](ObjectId id, const KeywordSet& k,
                     std::function<void()> done) {
    rt.post_sync([&] {
      mi.withdraw(kHome, id, k,
                  [done](const index::OverlayIndex::WithdrawResult&) {
                    done();
                  });
    });
  };
  ops.pin = [&](const KeywordSet& q,
                std::function<void(const SearchResult&)> cb) {
    rt.post_sync([&] { mi.pin_search(kHome, q, std::move(cb)); });
  };
  ops.search = [&](const KeywordSet& q, std::size_t t,
                   std::function<void(const SearchResult&)> cb) {
    std::uint64_t ticket = 0;
    rt.post_sync([&] {
      ticket = mi.superset_search(kHome, q, t, cfg.strategy, std::move(cb));
    });
    return ticket;
  };
  ops.cancel = [&](std::uint64_t ticket) {
    bool cancelled = false;
    rt.post_sync([&] { cancelled = mi.cancel(ticket); });
    return cancelled;
  };
  ops.in_flight = [&] {
    return mi.primary().in_flight_requests() +
           mi.mirror().in_flight_requests();
  };
  ops.check_occupancy =
      [&](const std::map<ObjectId, KeywordSet>& live)
      -> std::optional<std::string> {
    if (auto err = overlay_occupancy(mi.primary(), "primary", live))
      return err;
    return overlay_occupancy(mi.mirror(), "mirror", live);
  };
  if (cfg.continuous_churn) {
    // Raw kill: no stabilization, no repair — detection and healing are
    // the plane's responsibility (or deliberately nobody's, when the
    // self-healing control is off). Returns the objects that are gone for
    // good: both cube placements sat on the victim, so no copy survives to
    // repair from.
    ops.fail_peer = [&mi, c, &plane, &rt, peers = cfg.peers](
                        std::uint64_t ordinal,
                        const std::map<ObjectId, KeywordSet>& live) {
      // One strand-serialized block: the kill and the survivor scan are a
      // single recipe with no drain in the middle (detection and healing
      // belong to the plane, racing this from its own timers).
      std::vector<ObjectId> lost;
      rt.post_sync([&] {
        std::vector<sim::EndpointId> candidates;
        for (sim::EndpointId ep = 2; ep <= peers; ++ep)
          if (c->is_live(ep)) candidates.push_back(ep);
        if (candidates.size() < 6) return;
        const sim::EndpointId victim =
            candidates[ordinal % candidates.size()];
        if (plane != nullptr) plane->note_true_failure(victim);
        c->fail(victim);
        // An object is gone for good only when *neither* cube still holds
        // its entry at a live peer (back-to-back kills in one round can
        // take the primary and mirror copies with different victims before
        // the plane has had any time to heal).
        std::set<ObjectId> survivors;
        const auto collect = [&](index::OverlayIndex& cube) {
          cube.for_each_entry([&](cube::CubeId, const KeywordSet&,
                                  ObjectId id, sim::EndpointId ep) {
            if (c->is_live(ep)) survivors.insert(id);
          });
        };
        collect(mi.primary());
        collect(mi.mirror());
        for (const auto& [id, k] : live)
          if (!survivors.contains(id)) lost.push_back(id);
      });
      return lost;
    };
  }
  execute(cfg, ops, rep, tracer);
  rt.fence();
  rt.post_sync([&] {
    if (plane != nullptr) plane->stop();  // idempotent; covers early exits
  });
  // The observer closes over the plane, which is destroyed before the
  // transport: detach it before teardown.
  if (sock != nullptr) sock->set_peer_down_observer(nullptr);
  rep.faults_applied = inj->applied();
}

}  // namespace

const char* to_string(Deployment d) {
  switch (d) {
    case Deployment::kDirect: return "direct";
    case Deployment::kChord: return "chord";
    case Deployment::kPastry: return "pastry";
    case Deployment::kHyperCup: return "hypercup";
    case Deployment::kMirrored: return "mirrored";
    case Deployment::kDecomposed: return "decomposed";
  }
  return "?";
}

const char* to_string(index::SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kTopDownSequential: return "top-down";
    case SearchStrategy::kBottomUpSequential: return "bottom-up";
    case SearchStrategy::kLevelParallel: return "level-parallel";
  }
  return "?";
}

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kTcp: return "tcp";
    case Backend::kUdp: return "udp";
  }
  return "?";
}

bool networked(Deployment d) {
  switch (d) {
    case Deployment::kDirect:
    case Deployment::kDecomposed:
      return false;
    case Deployment::kChord:
    case Deployment::kPastry:
    case Deployment::kHyperCup:
    case Deployment::kMirrored:
      return true;
  }
  return false;
}

ScenarioConfig ScenarioConfig::from_seed(std::uint64_t seed, Deployment d,
                                         index::SearchStrategy s) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.deployment = d;
  cfg.strategy = s;
  Rng rng(mix64(seed ^ kConfigSalt));
  cfg.r = 4 + static_cast<int>(rng.next_below(2));  // 4..5
  cfg.peers = 12 + rng.next_below(13);              // 12..24
  cfg.objects = 30 + rng.next_below(41);            // 30..70
  cfg.vocab = 10 + rng.next_below(9);               // 10..18
  cfg.rounds = 3 + rng.next_below(3);               // 3..5
  cfg.searches_per_round = 4 + rng.next_below(5);
  cfg.mutations_per_round = 3 + rng.next_below(4);
  cfg.cache_capacity = rng.next_bool(0.5) ? 8 + rng.next_below(25) : 0;
  cfg.faults.rounds = cfg.rounds;
  switch (d) {
    case Deployment::kDirect:
    case Deployment::kDecomposed:
      // In-process: no wire, no faults. The scenario still tortures the
      // workload interleavings, caches, and occupancy accounting.
      cfg.faults.allow_drops = false;
      cfg.faults.allow_dups = false;
      cfg.faults.allow_delays = false;
      cfg.faults.max_events = 0;
      break;
    case Deployment::kHyperCup:
      // Tree forwarding has no retransmission layer: delays only.
      cfg.faults.allow_drops = false;
      cfg.faults.allow_dups = false;
      cfg.faults.max_events = 16;
      cfg.faults.max_delay = 200;
      cfg.faults.horizon = 1200;
      cfg.cache_capacity = 0;  // no query cache in this deployment
      break;
    case Deployment::kChord:
      cfg.faults.max_delay = 200;
      cfg.faults.horizon = 1200;
      cfg.churn = rng.next_bool(0.4);
      cfg.faults.peer_failures = cfg.churn ? 1 : 0;
      break;
    case Deployment::kPastry:
      // Prefix routing needs ~1 hop per route, so a whole run generates far
      // fewer wire messages than Chord; keep targets inside the traffic.
      cfg.faults.max_delay = 200;
      cfg.faults.horizon = 400;
      break;
    case Deployment::kMirrored:
      cfg.faults.max_delay = 200;
      cfg.faults.horizon = 1200;
      break;
  }
  return cfg;
}

ScenarioConfig ScenarioConfig::hot_spot_preset(std::uint64_t seed) {
  ScenarioConfig cfg = from_seed(seed, Deployment::kChord,
                                 index::SearchStrategy::kTopDownSequential);
  cfg.hot_spot = true;
  cfg.hot_replication = true;
  // Measured over seeds 1-8: replication-off runs land at 3.6-8.0,
  // replication-on runs at 1.5-3.0. The bound sits between the two bands.
  cfg.max_scan_skew = 4.0;
  // The query cache would absorb the recurring queries the workload relies
  // on to heat cells; the skew measurement wants every scan on the wire.
  cfg.cache_capacity = 0;
  cfg.peers = std::max<std::size_t>(cfg.peers, 16);
  // Enough post-promotion traffic that the spread (not the warm-up before
  // the hot threshold trips) dominates the per-peer scan totals.
  cfg.rounds = std::max<std::size_t>(cfg.rounds, 6);
  cfg.searches_per_round = std::max<std::size_t>(cfg.searches_per_round, 24);
  cfg.churn = true;
  cfg.faults.rounds = cfg.rounds;
  cfg.faults.peer_failures = 1 + seed % 2;
  // Lossless on purpose: the owner->replica root handoff is a single
  // unguarded hop (see hot_spot_preset doc). Delays stay in play.
  cfg.faults.allow_drops = false;
  cfg.faults.allow_dups = false;
  return cfg;
}

ScenarioConfig ScenarioConfig::churn_preset(std::uint64_t seed) {
  ScenarioConfig cfg = from_seed(seed, Deployment::kMirrored,
                                 index::SearchStrategy::kTopDownSequential);
  cfg.churn = true;
  cfg.continuous_churn = true;
  cfg.self_healing = true;
  cfg.peers = std::max<std::size_t>(cfg.peers, 16);
  cfg.rounds = std::max<std::size_t>(cfg.rounds, 4);
  cfg.faults.rounds = cfg.rounds;
  cfg.faults.peer_failures = 3;
  return cfg;
}

std::string ScenarioConfig::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed << " deployment=" << torture::to_string(deployment)
      << " strategy=" << torture::to_string(strategy) << " r=" << r
      << " peers=" << peers << " objects=" << objects
      << " rounds=" << rounds << " cache=" << cache_capacity
      << (churn ? " churn" : "");
  if (backend != Backend::kSim)
    out << " backend=" << torture::to_string(backend);
  if (!retransmission) out << " no-retransmission";
  if (continuous_churn)
    out << " continuous-churn"
        << (self_healing ? " self-healing" : " no-self-healing");
  if (hot_spot) {
    out << " hot-spot"
        << (hot_replication ? " hot-replication" : " no-hot-replication");
    if (max_scan_skew > 0.0) out << " max-skew=" << max_scan_skew;
  }
  return out.str();
}

std::string ScenarioReport::to_string() const {
  std::ostringstream out;
  out << config.to_string() << "\n";
  out << "searches=" << searches << " mutations=" << mutations
      << " cancels=" << cancels << " faults_applied=" << faults_applied
      << "\n";
  out << "fault plan:\n" << plan.to_string();
  if (violations.empty()) {
    out << "OK\n";
  } else {
    for (const Violation& v : violations)
      out << "VIOLATION [" << v.invariant << "] " << v.detail << "\n";
  }
  return out.str();
}

ScenarioReport ScenarioRunner::run(const ScenarioConfig& cfg) {
  return run(cfg, FaultPlan::from_seed(cfg.seed, cfg.faults));
}

ScenarioReport ScenarioRunner::run(const ScenarioConfig& cfg,
                                   const FaultPlan& plan) {
  ScenarioReport rep;
  rep.config = cfg;
  rep.plan = plan;
  switch (cfg.deployment) {
    case Deployment::kDirect:
      run_direct(cfg, rep, tracer_);
      break;
    case Deployment::kDecomposed:
      run_decomposed(cfg, rep, tracer_);
      break;
    case Deployment::kHyperCup:
      run_hypercup(cfg, plan, rep, tracer_);
      break;
    case Deployment::kChord:
    case Deployment::kPastry:
      run_overlay(cfg, plan, rep, tracer_);
      break;
    case Deployment::kMirrored:
      run_mirrored(cfg, plan, rep, tracer_);
      break;
  }
  return rep;
}

}  // namespace hkws::torture
