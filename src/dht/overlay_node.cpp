#include "dht/overlay_node.hpp"

namespace hkws::dht {

bool OverlayNode::add_ref(const StoredRef& ref) {
  auto& entry = refs_[ref.object];
  entry.key = ref.key;
  const bool first_copy = entry.holders.empty();
  if (entry.holders.insert(ref.holder).second) ++ref_count_;
  return first_copy;
}

bool OverlayNode::remove_ref(ObjectId object, sim::EndpointId holder) {
  const auto it = refs_.find(object);
  if (it == refs_.end()) return false;
  if (it->second.holders.erase(holder) != 0) --ref_count_;
  if (it->second.holders.empty()) {
    refs_.erase(it);
    return true;
  }
  return false;
}

std::vector<sim::EndpointId> OverlayNode::refs_of(ObjectId object) const {
  const auto it = refs_.find(object);
  if (it == refs_.end()) return {};
  return {it->second.holders.begin(), it->second.holders.end()};
}

bool OverlayNode::has_ref(ObjectId object, sim::EndpointId holder) const {
  const auto it = refs_.find(object);
  return it != refs_.end() && it->second.holders.contains(holder);
}

std::vector<StoredRef> OverlayNode::all_refs() const {
  std::vector<StoredRef> out;
  out.reserve(ref_count_);
  for (const auto& [object, entry] : refs_)
    for (auto holder : entry.holders)
      out.push_back(StoredRef{entry.key, object, holder});
  return out;
}

}  // namespace hkws::dht
