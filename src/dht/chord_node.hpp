// Chord-specific per-peer routing state: successor list, predecessor, and
// finger table. The DOLR reference store lives in the OverlayNode base.
// Nodes are passive state holders; routing and maintenance logic lives in
// ChordNetwork, which manipulates nodes only through information a real
// peer would have locally.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dht/overlay_node.hpp"

namespace hkws::dht {

class ChordNode final : public OverlayNode {
 public:
  ChordNode(RingId id, sim::EndpointId endpoint, int finger_count);

  // --- Ring links -----------------------------------------------------

  /// First entry of the successor list (this node's successor).
  /// Empty only before the node has joined a ring.
  std::optional<RingId> successor() const;

  const std::vector<RingId>& successor_list() const noexcept {
    return successors_;
  }
  void set_successor_list(std::vector<RingId> list);

  /// Drops `dead` from the successor list (failure handling).
  void remove_successor(RingId dead);

  std::optional<RingId> predecessor() const noexcept { return predecessor_; }
  void set_predecessor(std::optional<RingId> p) noexcept { predecessor_ = p; }

  /// Finger i targets id + 2^i; entry is the believed successor of that
  /// point, or nullopt if not yet learned.
  const std::vector<std::optional<RingId>>& fingers() const noexcept {
    return fingers_;
  }
  void set_finger(int i, std::optional<RingId> node);

  /// Best local next hop toward `key`: the finger or successor-list entry
  /// closest to (but strictly preceding) the key, per Chord. Links failing
  /// `alive` are skipped (modelling contact timeouts — this covers both
  /// failed and departed peers). Returns nullopt when no live link
  /// strictly precedes the key.
  std::optional<RingId> closest_preceding(
      RingId key, const RingSpace& space,
      const std::function<bool(RingId)>& alive) const;

 private:
  std::vector<std::optional<RingId>> fingers_;
  std::vector<RingId> successors_;
  std::optional<RingId> predecessor_;
};

}  // namespace hkws::dht
